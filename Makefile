GO ?= go

.PHONY: all build vet lint test race bench verify metrics-smoke faults-smoke trace-smoke cancel-smoke service-smoke fusion-smoke progress-smoke scale-smoke bench-snap bench-gate bench-smoke

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. staticcheck is optional locally — the
# target explains and succeeds when the binary is absent (CI installs
# and runs it unconditionally).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (CI runs it)"; \
	fi

test: metrics-smoke faults-smoke trace-smoke cancel-smoke service-smoke fusion-smoke progress-smoke scale-smoke bench-smoke
	$(GO) test ./...

# End-to-end observability check: a tiny parallel campaign must leave
# behind well-formed, non-empty JSON and Prometheus snapshots.
metrics-smoke:
	rm -rf .metrics-smoke && mkdir -p .metrics-smoke
	$(GO) run ./cmd/decepticon -scale tiny -all -workers 2 \
		-metrics .metrics-smoke/run.json,.metrics-smoke/run.prom >/dev/null
	$(GO) run ./cmd/metricscheck .metrics-smoke/run.json .metrics-smoke/run.prom
	rm -rf .metrics-smoke

# End-to-end fault-tolerance check: a tiny campaign under an aggressive
# seeded fault plan is killed mid-run by a small read budget (leaving
# per-victim checkpoints), resumed to completion, and compared against
# the same campaign run uninterrupted. The resumed run's counters must
# match the uninterrupted run's exactly — zero re-paid hammer rounds and
# reconciling accounting (timers are wall-clock and excluded).
FAULTS_SPEC = seed=11,transient=0.02,recovery=3,stuck=0.0005,outage=0.001,period=1500
faults-smoke:
	rm -rf .faults-smoke && mkdir -p .faults-smoke
	$(GO) run ./cmd/decepticon -scale tiny -all -workers 2 \
		-cache .faults-smoke/zoo -faults '$(FAULTS_SPEC)' \
		-checkpoint .faults-smoke/ckpt -read-budget 4000 \
		-metrics .faults-smoke/interrupted.json >/dev/null
	$(GO) run ./cmd/decepticon -scale tiny -all -workers 2 \
		-cache .faults-smoke/zoo -faults '$(FAULTS_SPEC)' \
		-checkpoint .faults-smoke/ckpt -resume \
		-metrics .faults-smoke/resumed.json >/dev/null
	$(GO) run ./cmd/decepticon -scale tiny -all -workers 2 \
		-cache .faults-smoke/zoo -faults '$(FAULTS_SPEC)' \
		-metrics .faults-smoke/uninterrupted.json >/dev/null
	$(GO) run ./cmd/metricscheck .faults-smoke/interrupted.json
	$(GO) run ./cmd/metricscheck -equal-counters \
		.faults-smoke/resumed.json .faults-smoke/uninterrupted.json
	rm -rf .faults-smoke

# End-to-end tracing check: the same tiny campaign at 1 and 4 workers
# must emit byte-identical Chrome trace files (trace clocks are
# simulated, never wall time), both validating under metricscheck, and
# the exported snapshot must carry consistent latency histograms. A
# second run under faults with a small read budget must leave a
# validating flight-recorder dump next to its checkpoints. The two
# trace runs deliberately do NOT share a zoo cache: a cache hit skips
# the build spans and would break the byte-identity comparison.
trace-smoke:
	rm -rf .trace-smoke && mkdir -p .trace-smoke
	$(GO) run ./cmd/decepticon -scale tiny -all -workers 1 \
		-trace .trace-smoke/w1.json \
		-metrics .trace-smoke/run.json,.trace-smoke/run.prom >/dev/null
	$(GO) run ./cmd/decepticon -scale tiny -all -workers 4 \
		-trace .trace-smoke/w4.json >/dev/null
	cmp .trace-smoke/w1.json .trace-smoke/w4.json
	$(GO) run ./cmd/metricscheck -trace .trace-smoke/w1.json \
		.trace-smoke/run.json .trace-smoke/run.prom
	$(GO) run ./cmd/decepticon -scale tiny -all -workers 2 \
		-faults '$(FAULTS_SPEC)' -checkpoint .trace-smoke/ckpt \
		-read-budget 4000 -flight .trace-smoke/flight.json >/dev/null
	$(GO) run ./cmd/metricscheck -flight .trace-smoke/flight.json
	set -e; for f in .trace-smoke/ckpt/*.flight.json; do \
		$(GO) run ./cmd/metricscheck -flight $$f; done
	rm -rf .trace-smoke

# End-to-end cancellation check: a tiny checkpointed campaign is hit
# with SIGINT mid-run — the process must drain gracefully, still write
# its -metrics and -flight artifacts, and leave resumable state. A
# -resume run then finishes the remainder, and its counters must equal a
# never-interrupted campaign's exactly (Ctrl-C behaves like a read
# budget: checkpoint, report interrupted, resume byte-identically). The
# zoo cache is pre-built so every campaign run starts from the same
# counters and the signal lands in the attack phase, not the build.
cancel-smoke:
	rm -rf .cancel-smoke && mkdir -p .cancel-smoke
	$(GO) build -o .cancel-smoke/decepticon ./cmd/decepticon
	$(GO) run ./cmd/zoo -scale tiny -cache .cancel-smoke/zoo >/dev/null
	.cancel-smoke/decepticon -scale tiny -all -workers 2 \
		-cache .cancel-smoke/zoo \
		-metrics .cancel-smoke/uninterrupted.json >/dev/null
	( .cancel-smoke/decepticon -scale tiny -all -workers 2 \
		-cache .cancel-smoke/zoo -checkpoint .cancel-smoke/ckpt \
		-metrics .cancel-smoke/interrupted.json \
		-flight .cancel-smoke/flight.json >/dev/null & \
	  pid=$$!; \
	  i=0; until ls .cancel-smoke/ckpt/*.ckpt >/dev/null 2>&1; do \
	    i=$$((i+1)); test $$i -le 600 || break; sleep 0.1; done; \
	  kill -INT $$pid 2>/dev/null; wait $$pid || true )
	test -s .cancel-smoke/interrupted.json
	test -s .cancel-smoke/flight.json
	$(GO) run ./cmd/metricscheck .cancel-smoke/interrupted.json
	$(GO) run ./cmd/metricscheck -flight .cancel-smoke/flight.json
	.cancel-smoke/decepticon -scale tiny -all -workers 2 \
		-cache .cancel-smoke/zoo -checkpoint .cancel-smoke/ckpt -resume \
		-metrics .cancel-smoke/resumed.json >/dev/null
	$(GO) run ./cmd/metricscheck -equal-counters \
		.cancel-smoke/resumed.json .cancel-smoke/uninterrupted.json
	rm -rf .cancel-smoke

# End-to-end multi-modal check: a tiny campaign measured through all
# three level-1 channels (trace, power, counters) must produce identical
# counters at 1 and 4 workers (the zoo cache is pre-built so both runs
# start from the same build counters), and a run with the power sensor
# jammed must complete gracefully — reporting degraded identification on
# the core.modality_jammed / core.identify_degraded counters rather than
# failing.
fusion-smoke:
	rm -rf .fusion-smoke && mkdir -p .fusion-smoke
	$(GO) run ./cmd/zoo -scale tiny -cache .fusion-smoke/zoo >/dev/null
	$(GO) run ./cmd/decepticon -scale tiny -all -workers 1 \
		-cache .fusion-smoke/zoo -modalities trace,power,counters \
		-metrics .fusion-smoke/w1.json >/dev/null
	$(GO) run ./cmd/decepticon -scale tiny -all -workers 4 \
		-cache .fusion-smoke/zoo -modalities trace,power,counters \
		-metrics .fusion-smoke/w4.json >/dev/null
	$(GO) run ./cmd/metricscheck -equal-counters \
		.fusion-smoke/w1.json .fusion-smoke/w4.json
	$(GO) run ./cmd/decepticon -scale tiny -all -workers 2 \
		-cache .fusion-smoke/zoo -modalities trace,power,counters \
		-jam power -metrics .fusion-smoke/jam.json >/dev/null
	$(GO) run ./cmd/metricscheck \
		-nonzero core.modality_jammed,core.identify_degraded \
		.fusion-smoke/jam.json
	rm -rf .fusion-smoke

# End-to-end zoo-store check: a cold build into a content-addressed
# store trains every model (nonzero train counters); an immediate warm
# reopen trains NOTHING (exact-zero counters — the incremental-build
# contract); deleting one fine-tuned object and reopening retrains
# exactly that one model; and a full campaign runs against the store
# with lazy handles released per victim. TestZooScale pins the rest
# (flat 10x memory, hierarchical accuracy, byte-identical retrains).
scale-smoke:
	rm -rf .scale-smoke && mkdir -p .scale-smoke
	$(GO) run ./cmd/zoo -scale tiny -store .scale-smoke/store \
		-metrics .scale-smoke/cold.json >/dev/null
	$(GO) run ./cmd/metricscheck \
		-nonzero zoo.models_pretrained,zoo.models_finetuned \
		.scale-smoke/cold.json
	$(GO) run ./cmd/zoo -scale tiny -store .scale-smoke/store \
		-metrics .scale-smoke/warm.json >/dev/null
	$(GO) run ./cmd/metricscheck \
		-counter zoo.models_pretrained=0,zoo.models_finetuned=0 \
		.scale-smoke/warm.json
	rm "$$(ls .scale-smoke/store/objects/*__ft-* | head -1)"
	$(GO) run ./cmd/zoo -scale tiny -store .scale-smoke/store \
		-metrics .scale-smoke/repair.json >/dev/null
	$(GO) run ./cmd/metricscheck \
		-counter zoo.models_pretrained=0,zoo.models_finetuned=1 \
		.scale-smoke/repair.json
	$(GO) run ./cmd/decepticon -scale tiny -all -workers 2 \
		-store .scale-smoke/store -release-models \
		-metrics .scale-smoke/campaign.json >/dev/null
	$(GO) run ./cmd/metricscheck .scale-smoke/campaign.json
	$(GO) test -run TestZooScale ./internal/experiments
	rm -rf .scale-smoke

# End-to-end daemon check (scripts/service-smoke.sh): decepticond runs
# two campaigns to completion (control), is killed with SIGTERM
# mid-extraction and restarted on the same state dir — the resumed
# campaigns' results, streams, and summaries must be byte-identical to
# the control's (zero re-paid hammer rounds) — then campaignload drives
# 100 concurrent campaigns through the bounded queue with a
# finite-budget tenant, asserting queue depth, budget enforcement,
# ordered streaming, and a bounded heap.
service-smoke:
	GO='$(GO)' sh scripts/service-smoke.sh

# End-to-end telemetry check (scripts/progress-smoke.sh): one campaign's
# event ledger validates under metricscheck -events (monotonic seq, legal
# transitions, unique terminal) across a SIGTERM kill and resume, the
# deterministic progress document is byte-identical for 1-worker,
# kill/resume, and 4-worker runs, and decepticontop renders the live
# state (campaign row at 100%, tenant budget table).
progress-smoke:
	GO='$(GO)' sh scripts/progress-smoke.sh

# Race-detector tier: the packages that gained goroutines, filtered to
# the concurrency-exercising tests so the 5-20x race overhead stays
# affordable on small machines. GOMAXPROCS is raised explicitly so the
# pool actually schedules in parallel even on a single-core host.
race:
	GOMAXPROCS=4 $(GO) test -race ./internal/parallel
	GOMAXPROCS=4 $(GO) test -race -run 'WorkerCountInvariance|ProgressSerialized' ./internal/zoo
	GOMAXPROCS=4 $(GO) test -race -run 'WorkerCountInvariance' ./internal/fingerprint
	GOMAXPROCS=4 $(GO) test -race -run 'ParallelPipelineMatchesSerial|ObsReconcilesWithCampaign|RunAllContextCancel' ./internal/core
	GOMAXPROCS=4 $(GO) test -race -run 'Snapshot|OrderedSink|Serve|Histogram|Tracer|Flight|Progress' ./internal/obs

bench:
	$(GO) test -bench=. -benchmem

# Benchmark trajectory gate (cmd/benchsnap). BENCH_extract.json holds
# deterministic extraction economics — physical reads, hammer rounds,
# clone match for the index-ordered baseline vs the information-ordered
# scheduler — compared for EXACT equality: one regressed hammer round
# fails the gate. BENCH_substrate.json holds hot-path timings normalized
# by an in-process calibration loop, compared within BENCH_TOL relative
# tolerance (default ±20%; CI relaxes it for noisy shared runners).
# Regenerate the committed snapshots with `make bench-snap` whenever a
# change intentionally moves them, and explain the delta in the PR.
BENCH_TOL ?= 0.20
bench-snap:
	$(GO) run ./cmd/benchsnap -write

bench-gate:
	$(GO) run ./cmd/benchsnap -gate -tol $(BENCH_TOL)

# The deterministic half of the gate only (no timing runs): fast enough
# to ride inside `make test` as a smoke check.
bench-smoke:
	$(GO) run ./cmd/benchsnap -gate -quick

# The full pre-commit gate.
verify: build vet lint test race

GO ?= go

.PHONY: all build vet test race bench verify

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector tier: the packages that gained goroutines, filtered to
# the concurrency-exercising tests so the 5-20x race overhead stays
# affordable on small machines. GOMAXPROCS is raised explicitly so the
# pool actually schedules in parallel even on a single-core host.
race:
	GOMAXPROCS=4 $(GO) test -race ./internal/parallel
	GOMAXPROCS=4 $(GO) test -race -run 'WorkerCountInvariance|ProgressSerialized' ./internal/zoo
	GOMAXPROCS=4 $(GO) test -race -run 'WorkerCountInvariance' ./internal/fingerprint
	GOMAXPROCS=4 $(GO) test -race -run 'ParallelPipelineMatchesSerial' ./internal/core

bench:
	$(GO) test -bench=. -benchmem

# The full pre-commit gate.
verify: build vet test race

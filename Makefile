GO ?= go

.PHONY: all build vet test race bench verify metrics-smoke

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: metrics-smoke
	$(GO) test ./...

# End-to-end observability check: a tiny parallel campaign must leave
# behind well-formed, non-empty JSON and Prometheus snapshots.
metrics-smoke:
	rm -rf .metrics-smoke && mkdir -p .metrics-smoke
	$(GO) run ./cmd/decepticon -scale tiny -all -workers 2 \
		-metrics .metrics-smoke/run.json,.metrics-smoke/run.prom >/dev/null
	$(GO) run ./cmd/metricscheck .metrics-smoke/run.json .metrics-smoke/run.prom
	rm -rf .metrics-smoke

# Race-detector tier: the packages that gained goroutines, filtered to
# the concurrency-exercising tests so the 5-20x race overhead stays
# affordable on small machines. GOMAXPROCS is raised explicitly so the
# pool actually schedules in parallel even on a single-core host.
race:
	GOMAXPROCS=4 $(GO) test -race ./internal/parallel
	GOMAXPROCS=4 $(GO) test -race -run 'WorkerCountInvariance|ProgressSerialized' ./internal/zoo
	GOMAXPROCS=4 $(GO) test -race -run 'WorkerCountInvariance' ./internal/fingerprint
	GOMAXPROCS=4 $(GO) test -race -run 'ParallelPipelineMatchesSerial|ObsReconcilesWithCampaign' ./internal/core
	GOMAXPROCS=4 $(GO) test -race -run 'Snapshot|OrderedSink|Serve' ./internal/obs

bench:
	$(GO) test -bench=. -benchmem

# The full pre-commit gate.
verify: build vet test race

package decepticon

// The benchmark harness regenerates every table and figure of the paper
// (one Benchmark per experiment id, over a shared reduced zoo) and
// measures the substrate hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// The first experiment benchmark pays the one-time zoo + classifier
// construction; subsequent ones reuse the cached environment, so each
// benchmark time is the experiment's own cost.

import (
	"io"
	"strconv"
	"sync"
	"testing"

	"decepticon/internal/adversarial"
	"decepticon/internal/core"
	"decepticon/internal/experiments"
	"decepticon/internal/extract"
	"decepticon/internal/fingerprint"
	"decepticon/internal/gpusim"
	"decepticon/internal/ieee754"
	"decepticon/internal/rng"
	"decepticon/internal/sidechannel"
	"decepticon/internal/tensor"
	"decepticon/internal/traceimg"
	"decepticon/internal/transformer"
	"decepticon/internal/zoo"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchZoo  *zoo.Zoo
)

func getBenchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv = experiments.NewEnv(experiments.ScaleSmall)
		cfg := benchEnv.ZooConfig()
		cfg.NumPretrained = 8
		cfg.NumFineTuned = 12
		benchZoo = zoo.MustBuild(cfg)
		benchEnv.UseZoo(benchZoo)
	})
	return benchEnv
}

func benchExperiment(b *testing.B, id string) {
	env := getBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := env.Run(id, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- one benchmark per paper table/figure ----

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)  { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)  { benchExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)  { benchExperiment(b, "fig19") }
func BenchmarkFig20(b *testing.B)  { benchExperiment(b, "fig20") }
func BenchmarkFig21(b *testing.B)  { benchExperiment(b, "fig21") }
func BenchmarkAlg1(b *testing.B)   { benchExperiment(b, "alg1") }

// §8 "Discussions" extensions.
func BenchmarkPruningRecovery(b *testing.B) { benchExperiment(b, "pruning") }
func BenchmarkQuantFormats(b *testing.B)    { benchExperiment(b, "quant") }
func BenchmarkOracleNoise(b *testing.B)     { benchExperiment(b, "noise") }
func BenchmarkDefense(b *testing.B)         { benchExperiment(b, "defense") }

// ---- ablations (DESIGN.md §5) ----

// BenchmarkAblationBitBudget sweeps the per-weight bit budget and reports
// the clone agreement per setting as metrics.
func BenchmarkAblationBitBudget(b *testing.B) {
	getBenchEnv(b)
	victim := benchZoo.FineTuned[0]
	for i := 0; i < b.N; i++ {
		for _, bits := range []int{1, 2, 4} {
			cfg := extract.DefaultConfig()
			cfg.MaxBitsPerWeight = bits
			ex := &extract.Extractor{
				Pre:    victim.Pretrained.Model,
				Oracle: newOracle(victim),
				Cfg:    cfg,
			}
			clone, st, err := ex.Run(victim.Task.Labels, victim.Dev)
			if err != nil {
				b.Fatal(err)
			}
			match := matchRate(victim, clone)
			b.ReportMetric(match, "match@"+strconv.Itoa(bits)+"bit")
			b.ReportMetric(float64(st.BitsChecked), "bits@"+strconv.Itoa(bits)+"bit")
		}
	}
}

// BenchmarkAblationSkipThreshold sweeps Algorithm 1's step-1 threshold.
func BenchmarkAblationSkipThreshold(b *testing.B) {
	getBenchEnv(b)
	victim := benchZoo.FineTuned[0]
	for i := 0; i < b.N; i++ {
		for _, thr := range []float64{0.0001, 0.001, 0.01} {
			cfg := extract.DefaultConfig()
			cfg.SkipThreshold = thr
			ex := &extract.Extractor{
				Pre:    victim.Pretrained.Model,
				Oracle: newOracle(victim),
				Cfg:    cfg,
			}
			clone, st, err := ex.Run(victim.Task.Labels, victim.Dev)
			if err != nil {
				b.Fatal(err)
			}
			tag := strconv.FormatFloat(thr, 'g', -1, 64)
			b.ReportMetric(matchRate(victim, clone), "match@"+tag)
			b.ReportMetric(st.SkipRate(), "skip@"+tag)
		}
	}
}

// BenchmarkAblationImageSize compares fingerprint accuracy at 32 vs 64 px.
func BenchmarkAblationImageSize(b *testing.B) {
	getBenchEnv(b)
	d := fingerprint.BuildDataset(benchZoo, 4, 77, 0)
	train, test := d.Split(0.8, 78)
	for i := 0; i < b.N; i++ {
		for _, size := range []int{32, 64} {
			clf := fingerprint.NewClassifier(size, d.Classes, 79)
			clf.Train(train, fingerprint.TrainConfig{Epochs: 60, LR: 0.002, Seed: 80})
			b.ReportMetric(clf.Accuracy(test), "acc@"+strconv.Itoa(size)+"px")
		}
	}
}

// ---- parallel execution layer ----

// benchZooBuildWorkers measures zoo construction at a fixed worker
// count. Compare Workers1 vs Workers4 to see the pool's speedup; on a
// multi-core machine the 4-worker build should be >= 1.5x faster (the
// population itself is identical for any value — see
// internal/zoo TestBuildWorkerCountInvariance).
func benchZooBuildWorkers(b *testing.B, workers int) {
	cfg := zoo.SmallBuildConfig()
	cfg.NumPretrained = 4
	cfg.NumFineTuned = 4
	cfg.PretrainExamples = 60
	cfg.FineTuneExamples = 60
	cfg.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		zoo.Build(cfg)
	}
}

func BenchmarkZooBuildWorkers1(b *testing.B) { benchZooBuildWorkers(b, 1) }
func BenchmarkZooBuildWorkers4(b *testing.B) { benchZooBuildWorkers(b, 4) }

// BenchmarkCampaignWorkers measures a RunAll campaign over every bench
// victim at 1 vs 4 workers.
func benchCampaignWorkers(b *testing.B, workers int) {
	env := getBenchEnv(b)
	atk := env.Attack()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := atk.RunAll(benchZoo.FineTuned, core.RunOptions{MeasureSeed: 5, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCampaignWorkers1(b *testing.B) { benchCampaignWorkers(b, 1) }
func BenchmarkCampaignWorkers4(b *testing.B) { benchCampaignWorkers(b, 4) }

// ---- substrate micro-benchmarks ----

func BenchmarkGEMM(b *testing.B) {
	r := rng.New(1)
	x := tensor.Randn(16, 64, 1, r)
	w := tensor.Randn(64, 64, 1, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, w)
	}
}

func BenchmarkTransformerForward(b *testing.B) {
	m := transformer.New(transformer.Family()["base"], 1)
	tokens := []int{0, 5, 9, 13, 2, 7, 11, 3, 8, 1, 6, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Logits(tokens)
	}
}

func BenchmarkTransformerTrainStep(b *testing.B) {
	m := transformer.New(transformer.Family()["base"], 1)
	tokens := []int{0, 5, 9, 13, 2, 7, 11, 3, 8, 1, 6, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.LossAndBackward(tokens, i%2)
		m.ZeroGrads()
	}
}

func BenchmarkTraceSimulation(b *testing.B) {
	cfg := transformer.Family()["large"]
	prof := gpusim.Profile{Source: "hf", Framework: gpusim.PyTorch, Seed: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gpusim.SimulateTransformer(cfg, nil, prof, gpusim.Options{})
	}
}

func BenchmarkTraceRender(b *testing.B) {
	cfg := transformer.Family()["large"]
	prof := gpusim.Profile{Source: "hf", Framework: gpusim.PyTorch, Seed: 3}
	t := gpusim.SimulateTransformer(cfg, nil, prof, gpusim.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traceimg.Render(t, 64)
	}
}

func BenchmarkLayerCountDetection(b *testing.B) {
	cfg := transformer.Family()["large"]
	prof := gpusim.Profile{Source: "hf", Framework: gpusim.PyTorch, Seed: 3}
	t := gpusim.SimulateTransformer(cfg, nil, prof, gpusim.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traceimg.DetectLayerCount(t, 32)
	}
}

func BenchmarkExtractWeight(b *testing.B) {
	cfg := extract.DefaultConfig()
	victim := float32(0.01908)
	read := func(bit int) int { return ieee754.Bit(victim, bit) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.ExtractWeight(0.018, read)
	}
}

func BenchmarkAdversarialPerturb(b *testing.B) {
	getBenchEnv(b)
	victim := benchZoo.FineTuned[0]
	ex := victim.Dev[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adversarial.Perturb(victim.Model, ex.Tokens, ex.Label, 2)
	}
}

// ---- helpers ----

func newOracle(victim *zoo.FineTuned) *sidechannel.Oracle {
	return sidechannel.NewOracle(victim.Model)
}

func matchRate(victim *zoo.FineTuned, clone *transformer.Model) float64 {
	vp := victim.Model.Predictions(victim.Dev)
	cp := clone.Predictions(victim.Dev)
	n := 0
	for i := range vp {
		if vp[i] == cp[i] {
			n++
		}
	}
	return float64(n) / float64(len(vp))
}

package decepticon

// The benchmark harness regenerates every table and figure of the paper
// (one Benchmark per experiment id, over a shared reduced zoo) and
// measures the substrate hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// The one-time zoo + classifier construction happens inside getBenchEnv
// under sync.Once and is excluded from every timing: each benchmark
// resets the timer after setup, so every reported time is the measured
// operation's own cost regardless of which benchmark runs first.
//
// cmd/benchsnap drives a curated subset of these measurements to produce
// the committed BENCH_*.json snapshots that `make bench-gate` compares
// against (see README.md).

import (
	"context"
	"io"
	"strconv"
	"sync"
	"testing"

	"decepticon/internal/adversarial"
	"decepticon/internal/core"
	"decepticon/internal/experiments"
	"decepticon/internal/extract"
	"decepticon/internal/fingerprint"
	"decepticon/internal/gpusim"
	"decepticon/internal/ieee754"
	"decepticon/internal/obs"
	"decepticon/internal/rng"
	"decepticon/internal/sidechannel"
	"decepticon/internal/tensor"
	"decepticon/internal/traceimg"
	"decepticon/internal/transformer"
	"decepticon/internal/zoo"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchZoo  *zoo.Zoo
)

func getBenchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv = experiments.NewEnv(experiments.ScaleSmall)
		cfg := benchEnv.ZooConfig()
		cfg.NumPretrained = 8
		cfg.NumFineTuned = 12
		benchZoo = zoo.MustBuild(cfg)
		benchEnv.UseZoo(benchZoo)
	})
	return benchEnv
}

func benchExperiment(b *testing.B, id string) {
	env := getBenchEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := env.Run(id, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- one benchmark per paper table/figure ----

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)  { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)  { benchExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)  { benchExperiment(b, "fig19") }
func BenchmarkFig20(b *testing.B)  { benchExperiment(b, "fig20") }
func BenchmarkFig21(b *testing.B)  { benchExperiment(b, "fig21") }
func BenchmarkAlg1(b *testing.B)   { benchExperiment(b, "alg1") }

// §8 "Discussions" extensions.
func BenchmarkPruningRecovery(b *testing.B) { benchExperiment(b, "pruning") }
func BenchmarkQuantFormats(b *testing.B)    { benchExperiment(b, "quant") }
func BenchmarkOracleNoise(b *testing.B)     { benchExperiment(b, "noise") }
func BenchmarkDefense(b *testing.B)         { benchExperiment(b, "defense") }

// ---- ablations (DESIGN.md §5) ----

// BenchmarkAblationBitBudget sweeps the per-weight bit budget and reports
// the clone agreement per setting as metrics.
func BenchmarkAblationBitBudget(b *testing.B) {
	getBenchEnv(b)
	victim := benchZoo.FineTuned[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, bits := range []int{1, 2, 4} {
			cfg := extract.DefaultConfig()
			cfg.MaxBitsPerWeight = bits
			ex := &extract.Extractor{
				Pre:    victim.Pretrained.Model(),
				Oracle: newOracle(victim),
				Cfg:    cfg,
			}
			clone, st, err := ex.Run(victim.Task.Labels, victim.Dev)
			if err != nil {
				b.Fatal(err)
			}
			match := matchRate(victim, clone)
			b.ReportMetric(match, "match@"+strconv.Itoa(bits)+"bit")
			b.ReportMetric(float64(st.BitsChecked), "bits@"+strconv.Itoa(bits)+"bit")
		}
	}
}

// BenchmarkAblationSkipThreshold sweeps Algorithm 1's step-1 threshold.
func BenchmarkAblationSkipThreshold(b *testing.B) {
	getBenchEnv(b)
	victim := benchZoo.FineTuned[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, thr := range []float64{0.0001, 0.001, 0.01} {
			cfg := extract.DefaultConfig()
			cfg.SkipThreshold = thr
			ex := &extract.Extractor{
				Pre:    victim.Pretrained.Model(),
				Oracle: newOracle(victim),
				Cfg:    cfg,
			}
			clone, st, err := ex.Run(victim.Task.Labels, victim.Dev)
			if err != nil {
				b.Fatal(err)
			}
			tag := strconv.FormatFloat(thr, 'g', -1, 64)
			b.ReportMetric(matchRate(victim, clone), "match@"+tag)
			b.ReportMetric(st.SkipRate(), "skip@"+tag)
		}
	}
}

// BenchmarkAblationImageSize compares fingerprint accuracy at 32 vs 64 px.
func BenchmarkAblationImageSize(b *testing.B) {
	getBenchEnv(b)
	d := fingerprint.BuildDataset(benchZoo, 4, 77, 0)
	train, test := d.Split(0.8, 78)
	// The dataset build and split above are setup, not the measured
	// ablation — without the reset they would be billed to iteration 1.
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, size := range []int{32, 64} {
			clf := fingerprint.NewClassifier(size, d.Classes, 79)
			clf.Train(train, fingerprint.TrainConfig{Epochs: 60, LR: 0.002, Seed: 80})
			b.ReportMetric(clf.Accuracy(test), "acc@"+strconv.Itoa(size)+"px")
		}
	}
}

// ---- extraction scheduler (DESIGN.md §12) ----

// benchExtraction runs one full extraction per iteration — index-ordered
// baseline or information-ordered scheduler — on a faulted channel at
// the voted operating point (ReadRepeats = 3). The reported hammer-round
// and physical-read metrics are deterministic counts from the simulated
// channel, so they regress exactly, not statistically.
func benchExtraction(b *testing.B, scheduled bool) {
	getBenchEnv(b)
	victim := benchZoo.FineTuned[0]
	plan := &sidechannel.FaultPlan{Seed: 9, TransientRate: 0.02, StuckRate: 0.0002}
	cfg := extract.DefaultConfig()
	cfg.ReadRepeats = 3
	cfg.StopMatchRate = 2 // full extraction: compare complete read schedules
	if scheduled {
		cfg.Schedule = extract.DefaultSchedulerConfig()
	}
	var st *extract.Stats
	var clone *transformer.Model
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := &extract.Extractor{
			Pre:    victim.Pretrained.Model(),
			Oracle: newOracleWithPlan(victim, plan),
			Cfg:    cfg,
		}
		var err error
		clone, st, err = ex.Run(victim.Task.Labels, victim.Dev)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(st.PhysicalBitReads), "phys-reads")
	b.ReportMetric(float64(st.HammerRounds()), "hammer-rounds")
	b.ReportMetric(matchRate(victim, clone), "match")
	if scheduled {
		b.ReportMetric(st.MeanVoteWidth(), "vote-width")
	}
}

func BenchmarkExtractionBaseline(b *testing.B)  { benchExtraction(b, false) }
func BenchmarkExtractionScheduled(b *testing.B) { benchExtraction(b, true) }

// ---- parallel execution layer ----

// benchZooBuildWorkers measures zoo construction at a fixed worker
// count. Compare Workers1 vs Workers4 to see the pool's speedup; on a
// multi-core machine the 4-worker build should be >= 1.5x faster (the
// population itself is identical for any value — see
// internal/zoo TestBuildWorkerCountInvariance).
func benchZooBuildWorkers(b *testing.B, workers int) {
	cfg := zoo.SmallBuildConfig()
	cfg.NumPretrained = 4
	cfg.NumFineTuned = 4
	cfg.PretrainExamples = 60
	cfg.FineTuneExamples = 60
	cfg.Workers = workers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := zoo.Build(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkZooBuildWorkers1(b *testing.B) { benchZooBuildWorkers(b, 1) }
func BenchmarkZooBuildWorkers4(b *testing.B) { benchZooBuildWorkers(b, 4) }

// benchColdStartCfg is the population the cold-start benchmarks
// materialize: trace-grade budgets, so the measured cost is the
// load/open path, not training quality.
func benchColdStartCfg() zoo.BuildConfig {
	cfg := zoo.SmallBuildConfig()
	cfg.NumPretrained = 4
	cfg.NumFineTuned = 8
	cfg.PretrainExamples = 20
	cfg.PretrainEpochs = 1
	cfg.FineTuneExamples = 20
	cfg.FineTuneEpochs = 1
	return cfg
}

// BenchmarkZooCacheLoad measures the legacy warm cold-start: decoding
// the whole monolithic cache (every model's tensors) up front.
func BenchmarkZooCacheLoad(b *testing.B) {
	cfg := benchColdStartCfg()
	path := b.TempDir() + "/zoo.gob.gz"
	z, err := zoo.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := z.SaveFile(path); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := zoo.LoadFile(path); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkZooStoreOpen measures the store's warm cold-start: a
// manifest read plus object verification, with every tensor left on
// disk behind a lazy handle. Compare against BenchmarkZooCacheLoad —
// this is the startup-latency win the store buys.
func BenchmarkZooStoreOpen(b *testing.B) {
	cfg := benchColdStartCfg()
	dir := b.TempDir()
	if _, _, err := zoo.BuildOrOpenStore(context.Background(), cfg, dir, ""); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := zoo.BuildOrOpenStore(context.Background(), cfg, dir, ""); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignWorkers measures a RunAll campaign over every bench
// victim at 1 vs 4 workers.
func benchCampaignWorkers(b *testing.B, workers int) {
	env := getBenchEnv(b)
	atk := env.Attack()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := atk.RunAll(benchZoo.FineTuned, core.RunOptions{MeasureSeed: 5, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCampaignWorkers1(b *testing.B) { benchCampaignWorkers(b, 1) }
func BenchmarkCampaignWorkers4(b *testing.B) { benchCampaignWorkers(b, 4) }

// ---- substrate micro-benchmarks ----

func BenchmarkGEMM(b *testing.B) {
	r := rng.New(1)
	x := tensor.Randn(16, 64, 1, r)
	w := tensor.Randn(64, 64, 1, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, w)
	}
}

func BenchmarkTransformerForward(b *testing.B) {
	m := transformer.New(transformer.Family()["base"], 1)
	tokens := []int{0, 5, 9, 13, 2, 7, 11, 3, 8, 1, 6, 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Logits(tokens)
	}
}

func BenchmarkTransformerTrainStep(b *testing.B) {
	m := transformer.New(transformer.Family()["base"], 1)
	tokens := []int{0, 5, 9, 13, 2, 7, 11, 3, 8, 1, 6, 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.LossAndBackward(tokens, i%2)
		m.ZeroGrads()
	}
}

func BenchmarkTraceSimulation(b *testing.B) {
	cfg := transformer.Family()["large"]
	prof := gpusim.Profile{Source: "hf", Framework: gpusim.PyTorch, Seed: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gpusim.SimulateTransformer(cfg, nil, prof, gpusim.Options{})
	}
}

func BenchmarkTraceRender(b *testing.B) {
	cfg := transformer.Family()["large"]
	prof := gpusim.Profile{Source: "hf", Framework: gpusim.PyTorch, Seed: 3}
	t := gpusim.SimulateTransformer(cfg, nil, prof, gpusim.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traceimg.Render(t, 64)
	}
}

func BenchmarkLayerCountDetection(b *testing.B) {
	cfg := transformer.Family()["large"]
	prof := gpusim.Profile{Source: "hf", Framework: gpusim.PyTorch, Seed: 3}
	t := gpusim.SimulateTransformer(cfg, nil, prof, gpusim.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traceimg.DetectLayerCount(t, 32)
	}
}

func BenchmarkExtractWeight(b *testing.B) {
	cfg := extract.DefaultConfig()
	victim := float32(0.01908)
	read := func(bit int) int { return ieee754.Bit(victim, bit) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.ExtractWeight(0.018, read)
	}
}

// ---- observability hot paths ----

// The telemetry instruments sit on the attack's innermost loops (every
// oracle read bumps counters, every tensor boundary credits progress),
// so their per-call cost must stay in the tens of nanoseconds. benchsnap
// folds these into BENCH_substrate.json so a locking or allocation
// regression fails `make bench-gate`.

func BenchmarkObsCounterAdd(b *testing.B) {
	c := obs.New().Counter("bench.counter")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkObsHistogramObserve(b *testing.B) {
	h := obs.New().Histogram("bench.hist")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000))
	}
}

func BenchmarkObsProgressComplete(b *testing.B) {
	tr := obs.NewProgress()
	it := tr.Item("victim")
	it.SetPlanned(int64(b.N) + 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.Complete(int64(i)+1, "tensor")
	}
}

func BenchmarkObsProgressSnapshot(b *testing.B) {
	tr := tenVictimTracker()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Snapshot()
	}
}

// tenVictimTracker builds a tracker shaped like a mid-flight ten-victim
// campaign — what the service snapshots on every progress event.
func tenVictimTracker() *obs.ProgressTracker {
	tr := obs.NewProgress()
	tr.SetTotalItems(10)
	for i := 0; i < 10; i++ {
		it := tr.Item("victim-" + strconv.Itoa(i))
		it.SetPlanned(50000)
		it.Complete(int64(i)*5000, "tensor")
		it.SetStage("extract")
	}
	return tr
}

func BenchmarkAdversarialPerturb(b *testing.B) {
	getBenchEnv(b)
	victim := benchZoo.FineTuned[0]
	ex := victim.Dev[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adversarial.Perturb(victim.Model(), ex.Tokens, ex.Label, 2)
	}
}

// ---- helpers ----

func newOracle(victim *zoo.FineTuned) *sidechannel.Oracle {
	return sidechannel.NewOracle(victim.Model())
}

func newOracleWithPlan(victim *zoo.FineTuned, plan *sidechannel.FaultPlan) *sidechannel.Oracle {
	o := sidechannel.NewOracle(victim.Model())
	o.SetFaultPlan(plan.ForVictim(victim.Name))
	return o
}

func matchRate(victim *zoo.FineTuned, clone *transformer.Model) float64 {
	if len(victim.Dev) == 0 {
		// 0/0 would be NaN, which poisons every metric aggregation
		// downstream; an empty dev set simply has no agreement evidence.
		return 0
	}
	vp := victim.Model().Predictions(victim.Dev)
	cp := clone.Predictions(victim.Dev)
	n := 0
	for i := range vp {
		if vp[i] == cp[i] {
			n++
		}
	}
	return float64(n) / float64(len(vp))
}

// Command benchsnap records and gates the repository's benchmark
// trajectory. It produces two committed snapshot files:
//
//	BENCH_extract.json   — deterministic extraction economics: physical
//	                       bit reads, hammer rounds, clone match, and
//	                       scheduler savings for the baseline and the
//	                       information-ordered scheduler on an identical
//	                       faulted channel. These are exact simulated
//	                       counts: the gate compares them for equality,
//	                       so a regression of even one hammer round is
//	                       visible in review.
//	BENCH_substrate.json — substrate hot-path timings (GEMM, transformer
//	                       forward/backward, trace simulation/render,
//	                       Algorithm 1) normalized by an in-process
//	                       scalar-triad calibration loop, so the numbers
//	                       track the code, not the machine. The gate
//	                       compares them within a tolerance (default
//	                       ±20%, -tol to adjust).
//
// Usage:
//
//	benchsnap -write            # regenerate both snapshots
//	benchsnap -gate             # compare current numbers to snapshots
//	benchsnap -gate -quick      # deterministic extract gate only (CI smoke)
//	benchsnap -gate -tol 0.5    # relax the timing tolerance
//
// A gate failure exits non-zero and prints every violated metric.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"

	"decepticon/internal/extract"
	"decepticon/internal/fsatomic"
	"decepticon/internal/gpusim"
	"decepticon/internal/ieee754"
	"decepticon/internal/obs"
	"decepticon/internal/rng"
	"decepticon/internal/sidechannel"
	"decepticon/internal/stats"
	"decepticon/internal/tensor"
	"decepticon/internal/traceimg"
	"decepticon/internal/transformer"
	"decepticon/internal/zoo"
)

// snapshot is one committed benchmark file. Exact metrics are
// deterministic simulated counts compared for equality; Normalized
// metrics are timing ratios compared within the gate tolerance.
type snapshot struct {
	Version    int                `json:"version"`
	Kind       string             `json:"kind"`
	Note       string             `json:"note"`
	Exact      map[string]float64 `json:"exact,omitempty"`
	Normalized map[string]float64 `json:"normalized,omitempty"`
}

const (
	extractFile   = "BENCH_extract.json"
	substrateFile = "BENCH_substrate.json"
)

func main() {
	write := flag.Bool("write", false, "regenerate the committed snapshot files")
	gate := flag.Bool("gate", false, "compare current measurements against the committed snapshots")
	quick := flag.Bool("quick", false, "deterministic extract metrics only (skip timing measurements)")
	tol := flag.Float64("tol", 0.20, "relative tolerance for normalized timing metrics")
	dir := flag.String("dir", ".", "directory holding the snapshot files")
	flag.Parse()
	if *write == *gate {
		fmt.Fprintln(os.Stderr, "benchsnap: exactly one of -write or -gate is required")
		os.Exit(2)
	}

	cur := map[string]*snapshot{extractFile: extractSnapshot()}
	if !*quick {
		cur[substrateFile] = substrateSnapshot()
	}

	if *write {
		for name, s := range cur {
			path := filepath.Join(*dir, name)
			data, err := json.MarshalIndent(s, "", "  ")
			if err != nil {
				fatal(err)
			}
			// Atomic (temp + rename): a crash mid-write must never leave a
			// truncated snapshot that would then be committed and gate
			// every future run against garbage.
			if err := fsatomic.WriteFile(path, append(data, '\n')); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
		return
	}

	failures := 0
	for name, curSnap := range cur {
		path := filepath.Join(*dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(fmt.Errorf("no committed snapshot %s (run benchsnap -write): %w", path, err))
		}
		want := &snapshot{}
		if err := json.Unmarshal(data, want); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		failures += compare(name, want, curSnap, *tol)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchsnap: gate FAILED (%d metric(s) out of bounds)\n", failures)
		os.Exit(1)
	}
	fmt.Println("benchsnap: gate passed")
}

// compare reports violations of one snapshot and returns their count.
func compare(name string, want, got *snapshot, tol float64) int {
	bad := 0
	for _, key := range sortedKeys(want.Exact) {
		w, g := want.Exact[key], got.Exact[key]
		if w != g {
			fmt.Fprintf(os.Stderr, "%s: %s = %v, snapshot says %v (exact metric — must match)\n",
				name, key, g, w)
			bad++
		}
	}
	for _, key := range sortedKeys(want.Normalized) {
		w, g := want.Normalized[key], got.Normalized[key]
		if w == 0 {
			continue
		}
		if r := math.Abs(g-w) / w; r > tol {
			fmt.Fprintf(os.Stderr, "%s: %s = %.4f, snapshot says %.4f (%.1f%% off, tolerance %.0f%%)\n",
				name, key, g, w, 100*r, 100*tol)
			bad++
		}
	}
	// New metrics the snapshot has never seen are not failures (the next
	// -write picks them up), but surface them so a stale file is visible.
	for _, key := range sortedKeys(got.Exact) {
		if _, ok := want.Exact[key]; !ok {
			fmt.Fprintf(os.Stderr, "%s: new exact metric %s = %v not in snapshot (run benchsnap -write)\n",
				name, key, got.Exact[key])
		}
	}
	return bad
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchsnap:", err)
	os.Exit(1)
}

// ----------------------------------------------------------- extract gate

// extractSnapshot runs the baseline and the information-ordered
// scheduler over the same deterministic victim and faulted channel —
// the operating point of the reliability experiment's comparison rows —
// and records the exact extraction economics. Everything here is
// simulated and seeded, so the values are bit-stable across runs and
// machines of the same architecture.
func extractSnapshot() *snapshot {
	cfg := zoo.SmallBuildConfig()
	cfg.NumPretrained = 2
	cfg.NumFineTuned = 2
	cfg.PretrainExamples = 60
	cfg.FineTuneExamples = 60
	z := zoo.MustBuild(cfg)
	victim := z.FineTuned[0]
	plan := &sidechannel.FaultPlan{Seed: 9, TransientRate: 0.02, StuckRate: 0.0002}

	run := func(scheduled bool) (*extract.Stats, float64) {
		oracle := sidechannel.NewOracle(victim.Model())
		oracle.SetFaultPlan(plan.ForVictim(victim.Name))
		ecfg := extract.DefaultConfig()
		ecfg.ReadRepeats = 3
		ecfg.StopMatchRate = 2 // full extraction: compare complete read schedules
		if scheduled {
			ecfg.Schedule = extract.DefaultSchedulerConfig()
		}
		ex := &extract.Extractor{
			Pre:    victim.Pretrained.Model(),
			Oracle: oracle,
			Cfg:    ecfg,
		}
		clone, st, err := ex.Run(victim.Task.Labels, victim.Dev)
		if err != nil {
			fatal(err)
		}
		match := stats.MatchRate(victim.Model().Predictions(victim.Dev), clone.Predictions(victim.Dev))
		return st, match
	}
	base, baseMatch := run(false)
	sched, schedMatch := run(true)

	ratio := float64(base.PhysicalBitReads) / float64(sched.PhysicalBitReads)
	if ratio < 1.5 {
		fatal(fmt.Errorf("scheduler saves only %.2fx physical reads (acceptance floor 1.5x)", ratio))
	}
	if schedMatch < baseMatch {
		fatal(fmt.Errorf("scheduled clone match %.4f below baseline %.4f", schedMatch, baseMatch))
	}

	return &snapshot{
		Version: 1,
		Kind:    "extract",
		Note:    "deterministic extraction economics on a seeded faulted channel (ReadRepeats=3); exact counts, gated for equality",
		Exact: map[string]float64{
			"baseline_phys_reads":     float64(base.PhysicalBitReads),
			"baseline_hammer_rounds":  float64(base.HammerRounds()),
			"baseline_match":          baseMatch,
			"scheduled_phys_reads":    float64(sched.PhysicalBitReads),
			"scheduled_hammer_rounds": float64(sched.HammerRounds()),
			"scheduled_match":         schedMatch,
			"scheduled_bits_elided":   float64(sched.BitsElided),
			"scheduled_vote_width":    sched.MeanVoteWidth(),
			"scheduled_probe_reads":   float64(sched.ProbeReads),
		},
	}
}

// --------------------------------------------------------- substrate gate

// calibrate measures a fixed scalar-triad loop and returns its ns per
// iteration. Dividing every substrate timing by this factor cancels the
// host's raw float throughput, leaving a machine-portable ratio that
// moves only when the measured code changes shape.
func calibrate() float64 {
	a := make([]float32, 4096)
	c := make([]float32, 4096)
	for i := range a {
		a[i] = float32(i%7) * 0.25
		c[i] = float32(i%5) * 0.5
	}
	s := float32(1.0001)
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range a {
				a[j] += s * c[j]
			}
		}
	})
	return float64(res.NsPerOp())
}

func substrateSnapshot() *snapshot {
	calib := calibrate()
	norm := map[string]float64{}
	measure := func(name string, fn func(b *testing.B)) {
		res := testing.Benchmark(fn)
		norm[name+"_norm"] = float64(res.NsPerOp()) / calib
	}

	r := rng.New(1)
	x := tensor.Randn(16, 64, 1, r)
	w := tensor.Randn(64, 64, 1, r)
	measure("gemm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.MatMul(x, w)
		}
	})
	measure("gemm_nt", func(b *testing.B) {
		wt := w.Transpose()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tensor.MatMulNT(x, wt)
		}
	})

	m := transformer.New(transformer.Family()["base"], 1)
	tokens := []int{0, 5, 9, 13, 2, 7, 11, 3, 8, 1, 6, 4}
	measure("forward", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Logits(tokens)
		}
	})
	measure("train_step", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.LossAndBackward(tokens, i%2)
			m.ZeroGrads()
		}
	})

	cfg := transformer.Family()["large"]
	prof := gpusim.Profile{Source: "hf", Framework: gpusim.PyTorch, Seed: 3}
	measure("trace_sim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gpusim.SimulateTransformer(cfg, nil, prof, gpusim.Options{})
		}
	})
	tr := gpusim.SimulateTransformer(cfg, nil, prof, gpusim.Options{})
	measure("trace_render", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			traceimg.Render(tr, 64)
		}
	})

	ecfg := extract.DefaultConfig()
	victimW := float32(0.01908)
	read := func(bit int) int { return ieee754.Bit(victimW, bit) }
	measure("extract_weight", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ecfg.ExtractWeight(0.018, read)
		}
	})

	// Telemetry instruments ride the innermost attack loops (counters on
	// every oracle read, progress credits on every tensor boundary), so
	// their per-call cost is gated alongside the substrate math.
	ctr := obs.New().Counter("bench.counter")
	measure("obs_counter_add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctr.Add(1)
		}
	})
	hist := obs.New().Histogram("bench.hist")
	measure("obs_histogram_observe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hist.Observe(float64(i % 1000))
		}
	})
	tracker := obs.NewProgress()
	item := tracker.Item("victim")
	measure("obs_progress_complete", func(b *testing.B) {
		item.SetPlanned(int64(b.N) + 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			item.Complete(int64(i)+1, "tensor")
		}
	})

	// Zoo cold start: the monolithic cache decodes every tensor up front;
	// the store reads a manifest and hands back lazy handles. The pair of
	// gated ratios keeps the startup-latency win honest over time.
	zcfg := zoo.SmallBuildConfig()
	zcfg.NumPretrained = 4
	zcfg.NumFineTuned = 8
	zcfg.PretrainExamples = 20
	zcfg.PretrainEpochs = 1
	zcfg.FineTuneExamples = 20
	zcfg.FineTuneEpochs = 1
	tmp, err := os.MkdirTemp("", "benchsnap-zoo-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(tmp)
	cachePath := filepath.Join(tmp, "zoo.gob.gz")
	if err := zoo.MustBuild(zcfg).SaveFile(cachePath); err != nil {
		fatal(err)
	}
	storeDir := filepath.Join(tmp, "store")
	if _, _, err := zoo.BuildOrOpenStore(context.Background(), zcfg, storeDir, ""); err != nil {
		fatal(err)
	}
	measure("zoo_cache_load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := zoo.LoadFile(cachePath); err != nil {
				b.Fatal(err)
			}
		}
	})
	measure("zoo_store_open", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := zoo.BuildOrOpenStore(context.Background(), zcfg, storeDir, ""); err != nil {
				b.Fatal(err)
			}
		}
	})

	return &snapshot{
		Version:    1,
		Kind:       "substrate",
		Note:       fmt.Sprintf("hot-path timings normalized by a scalar-triad calibration loop (recorded on %s/%s); gated within a relative tolerance", runtime.GOOS, runtime.GOARCH),
		Normalized: norm,
	}
}

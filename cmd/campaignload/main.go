// Command campaignload is the decepticond client and load harness.
//
// Client modes (scripting building blocks — the service smoke test is
// made of these):
//
//	campaignload -addr-file dir/decepticond.addr -submit -tenant alice -victims v1,v2
//	campaignload ... -status c000001
//	campaignload ... -wait c000001            # poll until done/failed (survives daemon restarts)
//	campaignload ... -summary c000001         # deterministic one-line summary JSON
//	campaignload ... -stream c000001          # NDJSON results to stdout, order-checked
//	campaignload ... -progress c000001        # deterministic one-line progress JSON (ETA excluded)
//	campaignload ... -events c000001          # NDJSON event ledger to stdout, follows live appends
//
// Load mode drives many concurrent campaigns through the admission
// machinery and asserts the service-level invariants:
//
//	campaignload ... -load 100 -tenants alice,bob -queue-limit 8
//
// Every submission retries on 429 honoring Retry-After (that is the
// backpressure contract, so the harness exercises it on purpose); result
// streams are checked for strict victim-order delivery; a sampler polls
// /healthz and /debug/vars proving the queue never exceeds -queue-limit
// and the heap stays bounded while hundreds of campaigns flow through.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("campaignload: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// client is a thin decepticond API client that tolerates daemon
// restarts: transport errors re-read the addr file (the restarted daemon
// republishes its bound address there) and retry until the deadline.
type client struct {
	addr     string
	addrFile string
	hc       *http.Client
	deadline time.Time
}

func (c *client) base() (string, error) {
	if c.addrFile != "" {
		data, err := os.ReadFile(c.addrFile)
		if err != nil {
			return "", err
		}
		c.addr = strings.TrimSpace(string(data))
	}
	if c.addr == "" {
		return "", fmt.Errorf("no -addr or -addr-file")
	}
	return "http://" + c.addr, nil
}

// retry reports whether another attempt fits before the deadline, after
// a short pause.
func (c *client) retry() bool {
	if time.Now().After(c.deadline) {
		return false
	}
	time.Sleep(100 * time.Millisecond)
	return true
}

// getJSON GETs path into v, retrying transport errors until deadline.
func (c *client) getJSON(path string, v any) error {
	for {
		base, err := c.base()
		if err == nil {
			var resp *http.Response
			resp, err = c.hc.Get(base + path)
			if err == nil {
				data, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr == nil && resp.StatusCode == http.StatusOK {
					return json.Unmarshal(data, v)
				}
				if resp.StatusCode == http.StatusNotFound {
					return fmt.Errorf("GET %s: 404", path)
				}
				err = fmt.Errorf("GET %s: %s", path, resp.Status)
			}
		}
		if !c.retry() {
			return fmt.Errorf("GET %s: gave up: %w", path, err)
		}
	}
}

// status mirrors service.CampaignStatus (decoded loosely so the client
// has no compile-time dependency on the server internals).
type status struct {
	ID        string          `json:"id"`
	Tenant    string          `json:"tenant"`
	State     string          `json:"state"`
	Reason    string          `json:"reason"`
	Error     string          `json:"error"`
	Victims   int             `json:"victims"`
	Delivered int             `json:"delivered"`
	Spent     int64           `json:"spent"`
	Summary   json.RawMessage `json:"summary"`
}

type tenantStatus struct {
	Name      string `json:"name"`
	Budget    int64  `json:"budget"`
	Spent     int64  `json:"spent"`
	Campaigns int    `json:"campaigns"`
}

// errBudgetRejected marks a 429 caused by tenant-budget exhaustion:
// unlike a full queue it does not clear on its own, so retrying it is
// pointless — the load harness counts it as enforcement instead.
var errBudgetRejected = fmt.Errorf("tenant budget exhausted")

// submit POSTs a spec, retrying queue-full 429s (honoring Retry-After)
// and transport errors until the deadline. It returns the accepted
// status and how many 429s were absorbed on the way in; a budget 429
// returns errBudgetRejected immediately.
func (c *client) submit(spec map[string]any) (status, int, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return status{}, 0, err
	}
	rejected := 0
	for {
		base, berr := c.base()
		if berr == nil {
			resp, perr := c.hc.Post(base+"/campaigns", "application/json", bytes.NewReader(body))
			if perr == nil {
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusAccepted:
					var st status
					if err := json.Unmarshal(data, &st); err != nil {
						return status{}, rejected, err
					}
					return st, rejected, nil
				case http.StatusTooManyRequests:
					if bytes.Contains(data, []byte("budget")) {
						return status{}, rejected, errBudgetRejected
					}
					rejected++
					if ra, err := time.ParseDuration(strings.TrimSpace(string(resp.Header.Get("Retry-After"))) + "s"); err == nil && ra > 0 {
						if time.Now().Add(ra).After(c.deadline) {
							return status{}, rejected, fmt.Errorf("submit: still rejected at deadline: %s", data)
						}
						time.Sleep(ra)
						continue
					}
				case http.StatusServiceUnavailable:
					// draining: wait for a restart via the retry loop
				default:
					return status{}, rejected, fmt.Errorf("submit: %s: %s", resp.Status, data)
				}
			}
		}
		if !c.retry() {
			return status{}, rejected, fmt.Errorf("submit: gave up before deadline")
		}
	}
}

// wait polls a campaign until it reaches a terminal state ("done" mode)
// or until it merely stops moving in this process ("stopped" mode, which
// also accepts interrupted). It survives daemon restarts.
func (c *client) wait(id, until string) (status, error) {
	for {
		var st status
		if err := c.getJSON("/campaigns/"+id, &st); err != nil {
			return st, err
		}
		switch st.State {
		case "done", "failed":
			return st, nil
		case "interrupted":
			if until == "stopped" {
				return st, nil
			}
		}
		if !c.retry() {
			return st, fmt.Errorf("wait %s: still %s at deadline", id, st.State)
		}
	}
}

// progressLine fetches /campaigns/{id}/progress and prints one
// deterministic JSON line: id, state, and the progress document with the
// wall-clock ETA field dropped — the byte-comparison unit of
// `make progress-smoke` (identical for any worker count and across
// kill/resume).
func (c *client) progressLine(id string, w io.Writer) error {
	var pr struct {
		ID       string          `json:"id"`
		State    string          `json:"state"`
		Progress json.RawMessage `json:"progress"`
	}
	if err := c.getJSON("/campaigns/"+id+"/progress", &pr); err != nil {
		return err
	}
	line, err := json.Marshal(pr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s\n", line)
	return nil
}

// events copies a campaign's NDJSON event ledger to w, verifying
// strictly increasing sequence numbers, and returns the number of
// events. Like /results the stream follows live appends until the
// campaign stops.
func (c *client) events(id string, w io.Writer) (int, error) {
	base, err := c.base()
	if err != nil {
		return 0, err
	}
	resp, err := c.hc.Get(base + "/campaigns/" + id + "/events")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("events %s: %s", id, resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	n, lastSeq := 0, int64(0)
	for sc.Scan() {
		var line struct {
			Seq int64 `json:"seq"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return n, fmt.Errorf("events %s line %d: %w", id, n, err)
		}
		if line.Seq <= lastSeq {
			return n, fmt.Errorf("events %s: seq not increasing: got %d after %d", id, line.Seq, lastSeq)
		}
		lastSeq = line.Seq
		if w != nil {
			fmt.Fprintf(w, "%s\n", sc.Bytes())
		}
		n++
	}
	return n, sc.Err()
}

// stream copies a campaign's NDJSON results to w, verifying strict
// index order, and returns the number of lines.
func (c *client) stream(id string, w io.Writer) (int, error) {
	base, err := c.base()
	if err != nil {
		return 0, err
	}
	resp, err := c.hc.Get(base + "/campaigns/" + id + "/results")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("stream %s: %s", id, resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		var line struct {
			Index int `json:"index"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return n, fmt.Errorf("stream %s line %d: %w", id, n, err)
		}
		if line.Index != n {
			return n, fmt.Errorf("stream %s: out-of-order delivery: got index %d at position %d", id, line.Index, n)
		}
		if w != nil {
			fmt.Fprintf(w, "%s\n", sc.Bytes())
		}
		n++
	}
	return n, sc.Err()
}

func run() error {
	addr := flag.String("addr", "", "decepticond address (host:port)")
	addrFile := flag.String("addr-file", "", "file holding the daemon address (written by decepticond; re-read on retries, so it follows restarts)")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall deadline for the requested operation")
	submit := flag.Bool("submit", false, "submit one campaign and print its accepted status")
	tenant := flag.String("tenant", "smoke", "tenant for -submit")
	victims := flag.String("victims", "", "comma-separated victim names for -submit (empty = all)")
	workers := flag.Int("workers", 0, "victim workers for -submit (0 = server default)")
	seed := flag.Uint64("seed", 0, "measurement seed for -submit (0 = server default)")
	readBudget := flag.Int64("read-budget", 0, "per-victim oracle budget for -submit")
	faults := flag.String("faults", "", "fault-plan spec for -submit")
	scheduled := flag.Bool("scheduled", false, "information-ordered extraction for -submit")
	statusID := flag.String("status", "", "print one campaign's status")
	waitID := flag.String("wait", "", "poll a campaign until terminal and print its final status")
	until := flag.String("until", "done", "what -wait waits for: done (terminal) | stopped (also accepts interrupted)")
	summaryID := flag.String("summary", "", "print a finished campaign's summary as one deterministic JSON line")
	streamID := flag.String("stream", "", "stream a campaign's NDJSON results to stdout (order-checked)")
	progressID := flag.String("progress", "", "print a campaign's progress as one deterministic JSON line (ETA excluded)")
	eventsID := flag.String("events", "", "stream a campaign's NDJSON event ledger to stdout (seq-checked)")
	load := flag.Int("load", 0, "drive this many concurrent campaigns through the service and assert the admission invariants")
	concurrency := flag.Int("concurrency", 32, "concurrent client goroutines in -load")
	loadTenants := flag.String("tenants", "load", "comma-separated tenants round-robined across -load campaigns")
	victimsPer := flag.Int("victims-per", 1, "victims attacked by each -load campaign")
	queueLimit := flag.Int("queue-limit", 0, "assert the daemon's queued depth never exceeds this during -load (0 = skip)")
	maxHeapMB := flag.Int("max-heap-mb", 0, "assert the daemon's HeapAlloc stays under this during -load (0 = skip)")
	flag.Parse()

	c := &client{
		addr:     *addr,
		addrFile: *addrFile,
		hc:       &http.Client{},
		deadline: time.Now().Add(*timeout),
	}
	switch {
	case *submit:
		spec := map[string]any{"tenant": *tenant}
		if *victims != "" {
			spec["victims"] = strings.Split(*victims, ",")
		}
		if *workers > 0 {
			spec["workers"] = *workers
		}
		if *seed != 0 {
			spec["measure_seed"] = *seed
		}
		if *readBudget > 0 {
			spec["read_budget"] = *readBudget
		}
		if *faults != "" {
			spec["faults"] = *faults
		}
		if *scheduled {
			spec["scheduled"] = true
		}
		st, _, err := c.submit(spec)
		if err != nil {
			return err
		}
		return json.NewEncoder(os.Stdout).Encode(st)
	case *statusID != "":
		var st status
		if err := c.getJSON("/campaigns/"+*statusID, &st); err != nil {
			return err
		}
		return json.NewEncoder(os.Stdout).Encode(st)
	case *waitID != "":
		st, err := c.wait(*waitID, *until)
		if err != nil {
			return err
		}
		if err := json.NewEncoder(os.Stdout).Encode(st); err != nil {
			return err
		}
		if st.State == "failed" {
			return fmt.Errorf("campaign %s failed: %s", st.ID, st.Error)
		}
		return nil
	case *summaryID != "":
		var st status
		if err := c.getJSON("/campaigns/"+*summaryID, &st); err != nil {
			return err
		}
		if len(st.Summary) == 0 {
			return fmt.Errorf("campaign %s has no summary (state %s)", st.ID, st.State)
		}
		fmt.Printf("%s %s\n", st.ID, st.Summary)
		return nil
	case *streamID != "":
		n, err := c.stream(*streamID, os.Stdout)
		if err != nil {
			return err
		}
		log.Printf("streamed %d results from %s", n, *streamID)
		return nil
	case *progressID != "":
		return c.progressLine(*progressID, os.Stdout)
	case *eventsID != "":
		n, err := c.events(*eventsID, os.Stdout)
		if err != nil {
			return err
		}
		log.Printf("streamed %d events from %s", n, *eventsID)
		return nil
	case *load > 0:
		return runLoad(c, *load, *concurrency, strings.Split(*loadTenants, ","), *victimsPer, *queueLimit, *maxHeapMB)
	}
	return fmt.Errorf("pick a mode: -submit, -status, -wait, -summary, -stream, -progress, -events, or -load (see -h)")
}

// runLoad floods the service with n campaigns and asserts: every stream
// is delivered in order, the queue depth never exceeds the limit, the
// heap stays bounded, and exhausted tenants are actually stopped
// (budget enforcement), while everything admitted reaches a stopped
// state.
func runLoad(c *client, n, concurrency int, tenants []string, victimsPer, queueLimit, maxHeapMB int) error {
	var victims []string
	if err := c.getJSON("/victims", &victims); err != nil {
		return err
	}
	if len(victims) == 0 {
		return fmt.Errorf("daemon has no victims")
	}
	if victimsPer > len(victims) {
		victimsPer = len(victims)
	}

	// Sampler: poll the ops surface while load flows.
	var maxQueued, maxHeap int64
	stopSample := make(chan struct{})
	var sampleWG sync.WaitGroup
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		for {
			select {
			case <-stopSample:
				return
			case <-time.After(25 * time.Millisecond):
			}
			var hz struct {
				Queued int64 `json:"queued"`
			}
			if base, err := c.base(); err == nil {
				if resp, err := c.hc.Get(base + "/healthz"); err == nil {
					json.NewDecoder(resp.Body).Decode(&hz)
					resp.Body.Close()
					if hz.Queued > atomic.LoadInt64(&maxQueued) {
						atomic.StoreInt64(&maxQueued, hz.Queued)
					}
				}
				var vars struct {
					Memstats struct {
						HeapAlloc int64 `json:"HeapAlloc"`
					} `json:"memstats"`
				}
				if resp, err := c.hc.Get(base + "/debug/vars"); err == nil {
					json.NewDecoder(resp.Body).Decode(&vars)
					resp.Body.Close()
					if vars.Memstats.HeapAlloc > atomic.LoadInt64(&maxHeap) {
						atomic.StoreInt64(&maxHeap, vars.Memstats.HeapAlloc)
					}
				}
			}
		}
	}()

	var (
		mu                        sync.Mutex
		rejections, budgetRejects int
		done, interrupted, failed int
		streamed                  int
		firstErr                  error
		byTenantDone              = map[string]int{}
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	sem := make(chan struct{}, concurrency)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			spec := map[string]any{
				"tenant":       tenants[i%len(tenants)],
				"victims":      rotate(victims, i, victimsPer),
				"measure_seed": uint64(i + 1),
			}
			st, rej, err := c.submit(spec)
			mu.Lock()
			rejections += rej
			mu.Unlock()
			if errors.Is(err, errBudgetRejected) {
				mu.Lock()
				budgetRejects++
				mu.Unlock()
				return
			}
			if err != nil {
				fail(fmt.Errorf("campaign %d: %w", i, err))
				return
			}
			lines, err := c.stream(st.ID, nil)
			if err != nil {
				fail(fmt.Errorf("campaign %s: %w", st.ID, err))
				return
			}
			final, err := c.wait(st.ID, "stopped")
			if err != nil {
				fail(err)
				return
			}
			mu.Lock()
			streamed += lines
			switch final.State {
			case "done":
				done++
				byTenantDone[final.Tenant]++
			case "interrupted":
				interrupted++
			default:
				failed++
				fail(fmt.Errorf("campaign %s failed: %s", final.ID, final.Error))
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	close(stopSample)
	sampleWG.Wait()

	var tens []tenantStatus
	if err := c.getJSON("/tenants", &tens); err != nil {
		return err
	}
	fmt.Printf("load: campaigns=%d done=%d interrupted=%d failed=%d rejected_budget=%d results_streamed=%d rejected_429=%d max_queued=%d max_heap_mb=%d\n",
		n, done, interrupted, failed, budgetRejects, streamed, rejections, maxQueued, maxHeap>>20)
	for _, t := range tens {
		fmt.Printf("load: tenant=%s budget=%d spent=%d campaigns=%d done=%d\n",
			t.Name, t.Budget, t.Spent, t.Campaigns, byTenantDone[t.Name])
	}
	if firstErr != nil {
		return firstErr
	}
	if queueLimit > 0 && maxQueued > int64(queueLimit) {
		return fmt.Errorf("queue depth %d exceeded limit %d", maxQueued, queueLimit)
	}
	if maxHeapMB > 0 && maxHeap > int64(maxHeapMB)<<20 {
		return fmt.Errorf("heap %d MB exceeded limit %d MB", maxHeap>>20, maxHeapMB)
	}
	// Budget enforcement: a tenant with a finite budget either finished
	// everything inside it, or was cut off — spent must not keep growing
	// past the allowance by more than the final in-flight victims'
	// deliveries, and none of its campaigns may still be moving (wait
	// above guarantees that); an exhausted tenant must show interruptions
	// or budget rejections.
	for _, t := range tens {
		if t.Budget > 0 && t.Spent >= t.Budget && interrupted == 0 && budgetRejects == 0 {
			return fmt.Errorf("tenant %s exhausted (spent %d >= budget %d) but nothing was interrupted or rejected", t.Name, t.Spent, t.Budget)
		}
	}
	return nil
}

// rotate picks k victims starting at offset i, wrapping.
func rotate(victims []string, i, k int) []string {
	out := make([]string, 0, k)
	for j := 0; j < k; j++ {
		out = append(out, victims[(i+j)%len(victims)])
	}
	return out
}

// Command decepticon runs the end-to-end two-level model extraction
// attack against a randomly chosen black-box victim from the model zoo
// and prints the attack report.
//
// Usage:
//
//	decepticon                 # small zoo, first victim
//	decepticon -victim 7 -adv  # attack victim #7 and run the adversarial stage
//	decepticon -scale full     # paper-sized population
//	decepticon -scale tiny -all -metrics run.json,run.prom
//	decepticon -pprof localhost:6060   # live /metrics and /debug/pprof
//	decepticon -scale tiny -all -trace trace.json -log-level info
//	decepticon -faults seed=7,transient=0.2 -flight flight.json
//
// Ctrl-C cancels the run gracefully: in-flight extractions checkpoint
// (with -checkpoint), every requested artifact (-metrics, -trace,
// -flight) is still written, and a rerun with -resume picks up exactly
// where the interrupted campaign stopped.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"strings"

	"decepticon"
	"decepticon/internal/cliconfig"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("decepticon: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var opts cliconfig.Options
	opts.RegisterCommon(flag.CommandLine)
	opts.RegisterCache(flag.CommandLine)
	opts.RegisterFaults(flag.CommandLine)
	opts.RegisterFlight(flag.CommandLine)
	opts.RegisterModalities(flag.CommandLine)
	opts.RegisterIdentify(flag.CommandLine)
	var (
		victim  = flag.Int("victim", 0, "index of the fine-tuned victim model")
		adv     = flag.Bool("adv", false, "run the adversarial stage (slower)")
		subs    = flag.Int("substitutes", 4, "number of distillation substitutes for -adv")
		all     = flag.Bool("all", false, "attack every victim and print campaign statistics")
		noise   = flag.Float64("noise", 0, "oracle bit-error rate (0 = clean channel)")
		repeats = flag.Int("repeats", 0, "majority-vote reads per bit when -noise > 0 (odd; 0 = single read)")
	)
	flag.Parse()

	cfg, err := opts.ZooConfig()
	if err != nil {
		return err
	}
	modalities, jammed, err := opts.ModalitySets()
	if err != nil {
		return err
	}
	rt, err := cliconfig.Setup(&opts)
	if err != nil {
		return err
	}
	defer rt.Close()

	cfg.Workers = opts.Workers
	cfg.Obs = rt.Registry
	log.Printf("building model zoo (%d pre-trained, %d fine-tuned)...",
		cfg.NumPretrained, cfg.NumFineTuned)
	z, err := opts.LoadZoo(rt.Ctx, cfg)
	if err != nil {
		if z == nil {
			return err
		}
		log.Printf("zoo cache: %v", err)
	}

	log.Printf("training the pre-trained model extractor...")
	prepCfg := decepticon.DefaultPrepareConfig()
	if opts.Scale == "tiny" {
		prepCfg.SamplesPerModel = 2
		prepCfg.ImgSize = 32
		prepCfg.Epochs = 8
	}
	prepCfg.Workers = opts.Workers
	prepCfg.Obs = rt.Registry
	prepCfg.Modalities = modalities
	prepCfg.Hierarchical = opts.Hier
	atk, err := decepticon.NewAttackContext(rt.Ctx, z, prepCfg)
	if err != nil {
		return err
	}
	if *noise > 0 && *repeats > 0 {
		ec := decepticon.DefaultExtractionConfig()
		ec.ReadRepeats = *repeats
		atk.ExtractCfg = ec
	}

	if *all {
		log.Printf("attacking all %d victims...", len(z.FineTuned))
		c, err := atk.RunAllContext(rt.Ctx, z.FineTuned, decepticon.RunOptions{
			MeasureSeed: 1, Workers: opts.Workers, BitErrorRate: *noise,
			FaultPlan: rt.Plan, ScheduledExtraction: opts.Scheduled,
			CheckpointDir: opts.Checkpoint, Resume: opts.Resume,
			ReadBudget: opts.ReadBudget, FlightPath: opts.Flight,
			Modalities: modalities, Jammed: jammed,
			ReleaseModels: opts.ReleaseModels,
		})
		if err != nil {
			if c != nil && errors.Is(err, context.Canceled) {
				log.Printf("interrupted after %d victims (rerun with -resume to continue)", c.Victims)
				printCampaign(c, rt)
				return nil
			}
			return err
		}
		printCampaign(c, rt)
		return nil
	}

	if *victim < 0 || *victim >= len(z.FineTuned) {
		return fmt.Errorf("victim index %d out of range [0, %d)", *victim, len(z.FineTuned))
	}
	target := z.FineTuned[*victim]
	log.Printf("attacking black-box victim %q...", target.Name)

	rep, err := atk.RunContext(rt.Ctx, target, decepticon.RunOptions{
		MeasureSeed:         uint64(*victim) + 1,
		Adversarial:         *adv,
		NumSubstitutes:      *subs,
		BitErrorRate:        *noise,
		FaultPlan:           rt.Plan,
		ScheduledExtraction: opts.Scheduled,
		CheckpointDir:       opts.Checkpoint,
		Resume:              opts.Resume,
		ReadBudget:          opts.ReadBudget,
		FlightPath:          opts.Flight,
		Modalities:          modalities,
		Jammed:              jammed,
		ReleaseModels:       opts.ReleaseModels,
	})
	if err != nil {
		return err
	}

	fmt.Println("──────────────────────── attack report ────────────────────────")
	fmt.Printf("victim:                 %s\n", rep.Victim)
	fmt.Printf("true pre-trained model: %s\n", rep.TruePretrained)
	fmt.Printf("identified:             %s (correct: %v)\n", rep.Identified, rep.CorrectIdentity)
	if len(rep.Modalities) > 0 {
		fmt.Printf("modalities:             %s\n", strings.Join(rep.Modalities, ", "))
	}
	if len(rep.JammedModalities) > 0 {
		fmt.Printf("jammed sensors:         %s (identification degraded)\n",
			strings.Join(rep.JammedModalities, ", "))
	}
	if rep.UsedQueryProbes {
		fmt.Printf("query probes:           %d black-box queries\n", rep.ProbeQueries)
	}
	if rep.ExtractError != "" {
		fmt.Printf("extraction failed:      %s\n", rep.ExtractError)
		return nil
	}
	if rep.ExtractSkipped != "" {
		fmt.Printf("extraction skipped:     %s\n", rep.ExtractSkipped)
		return nil
	}
	if rep.ExtractInterrupted {
		reason := "read budget exhausted"
		if rt.Interrupted() {
			reason = "cancelled"
		}
		fmt.Printf("extraction interrupted: %s (checkpointed; rerun with -resume)\n", reason)
		return nil
	}
	if rep.Extract == nil {
		fmt.Println("extraction skipped")
		return nil
	}
	st := rep.Extract
	fmt.Printf("weights handled:        %d (+%d head), %.1f%% correctly pruned\n",
		st.WeightsTotal, st.HeadWeights, 100*st.WeightsCorrectlyPruned())
	fmt.Printf("bits read (logical):    %d of %d (%.1fx reduction)\n",
		st.LogicalBitsRead(), st.BitsTotal+32*int64(st.HeadWeights), st.ReductionFactor())
	if st.PhysicalBitReads != st.LogicalBitsRead() {
		fmt.Printf("oracle reads (physical):%d (majority vote ×%d)\n",
			st.PhysicalBitReads, st.EffectiveReadRepeats)
	}
	if st.ReadFaults > 0 || st.Retries > 0 {
		fmt.Printf("channel faults:         %d faulted reads, %d retries, %d backoff rounds, %d escalations\n",
			st.ReadFaults, st.Retries, st.BackoffRounds, st.Escalations)
	}
	if st.WeightsDegraded > 0 {
		fmt.Printf("degraded:               %d weights (%d tensors) fell back to baseline; coverage %.1f%%\n",
			st.WeightsDegraded, st.TensorsDegraded, 100*st.Coverage())
	}
	fmt.Printf("victim acc / clone acc: %.3f / %.3f\n", rep.VictimAcc, rep.CloneAcc)
	fmt.Printf("matched predictions:    %.1f%%\n", 100*rep.MatchRate)
	if *adv {
		fmt.Printf("adversarial (clone):    %.1f%% success\n", 100*rep.AdvClone)
		for i, s := range rep.AdvSubstitutes {
			fmt.Printf("adversarial (sub %d):    %.1f%% success\n", i+1, 100*s)
		}
	}
	return nil
}

// printCampaign renders the campaign summary block, including a partial
// one from an interrupted run.
func printCampaign(c *decepticon.Campaign, rt *cliconfig.Runtime) {
	fmt.Println("──────────────────────── campaign report ───────────────────────")
	fmt.Printf("victims attacked:        %d\n", c.Victims)
	fmt.Printf("identified correctly:    %d (%.1f%%)\n", c.Identified, 100*c.IdentificationRate())
	fmt.Printf("resolved via probes:     %d\n", c.ProbeResolved)
	if c.IdentifyDegraded > 0 {
		fmt.Printf("degraded identifications:%d (jammed or absent sensors)\n", c.IdentifyDegraded)
	}
	fmt.Printf("bus-probe arch checks:   %d passed\n", c.ArchConfirmed)
	if c.ExtractFailed > 0 {
		fmt.Printf("extractions failed:      %d\n", c.ExtractFailed)
	}
	if c.ExtractSkipped > 0 {
		fmt.Printf("extractions skipped:     %d (architecture mismatch)\n", c.ExtractSkipped)
	}
	if c.ExtractInterrupted > 0 {
		fmt.Printf("extractions interrupted: %d (checkpointed; rerun with -resume)\n", c.ExtractInterrupted)
	}
	if c.TensorsDegraded > 0 || rt.Plan != nil {
		fmt.Printf("tensors degraded:        %d (mean coverage %.1f%%)\n",
			c.TensorsDegraded, 100*c.MeanCoverage)
	}
	fmt.Printf("mean clone match rate:   %.1f%%\n", 100*c.MeanMatchRate)
	fmt.Printf("mean bit-read reduction: %.1fx\n", c.MeanReduction)
	fmt.Printf("bits read (logical):     %d\n", c.TotalBitsRead)
	fmt.Printf("oracle reads (physical): %d\n", c.TotalPhysicalReads)
	fmt.Printf("rowhammer rounds:        %d\n", c.TotalHammerRounds())
}

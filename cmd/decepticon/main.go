// Command decepticon runs the end-to-end two-level model extraction
// attack against a randomly chosen black-box victim from the model zoo
// and prints the attack report.
//
// Usage:
//
//	decepticon                 # small zoo, first victim
//	decepticon -victim 7 -adv  # attack victim #7 and run the adversarial stage
//	decepticon -scale full     # paper-sized population
//	decepticon -scale tiny -all -metrics run.json,run.prom
//	decepticon -pprof localhost:6060   # live /metrics and /debug/pprof
//	decepticon -scale tiny -all -trace trace.json -log-level info
//	decepticon -faults seed=7,transient=0.2 -flight flight.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"decepticon"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("decepticon: ")
	var (
		scale   = flag.String("scale", "small", "zoo scale: tiny | small | full")
		victim  = flag.Int("victim", 0, "index of the fine-tuned victim model")
		adv     = flag.Bool("adv", false, "run the adversarial stage (slower)")
		subs    = flag.Int("substitutes", 4, "number of distillation substitutes for -adv")
		cache   = flag.String("cache", "", "zoo cache file (built once, reused afterwards)")
		all     = flag.Bool("all", false, "attack every victim and print campaign statistics")
		work    = flag.Int("workers", 0, "worker goroutines for zoo build, trace measurement, and -all campaigns (0 = all cores); results are identical for any value")
		noise   = flag.Float64("noise", 0, "oracle bit-error rate (0 = clean channel)")
		repeats = flag.Int("repeats", 0, "majority-vote reads per bit when -noise > 0 (odd; 0 = single read)")
		metrics = flag.String("metrics", "", "comma-separated snapshot files written on exit (.json = JSON, otherwise Prometheus text)")
		pprof   = flag.String("pprof", "", "serve /metrics, /metrics.json, and /debug/pprof on this address (e.g. localhost:6060)")
		faults  = flag.String("faults", "", "fault-plan spec: key=value[,key=value...] with keys seed, transient, recovery, stuck, outage, period (empty = fault-free channel)")
		ckpt    = flag.String("checkpoint", "", "directory for per-victim extraction checkpoints (created if missing)")
		resume  = flag.Bool("resume", false, "resume from checkpoints in -checkpoint instead of starting fresh")
		budget  = flag.Int64("read-budget", 0, "per-victim oracle read-attempt budget; an extraction exceeding it checkpoints and reports interrupted (0 = unlimited)")
		trace   = flag.String("trace", "", "write a Chrome/Perfetto trace_event JSON file on exit (simulated clocks; byte-identical for any -workers)")
		flight  = flag.String("flight", "", "write a flight-recorder dump to this file on exit; interrupted, failed, or degraded extractions also dump here automatically (next to the checkpoint when -checkpoint is set)")
		logLvl  = flag.String("log-level", "", "structured log level on stderr: debug | info | warn | error (default off)")
	)
	flag.Parse()

	plan, err := decepticon.ParseFaultPlan(*faults)
	if err != nil {
		log.Fatalf("-faults: %v", err)
	}
	if *resume && *ckpt == "" {
		log.Fatal("-resume requires -checkpoint")
	}

	reg := decepticon.NewMetrics()
	runID := decepticon.RunID(os.Args...)
	rec := decepticon.NewFlightRecorder(0)
	rec.RunID = runID
	reg.SetFlight(rec)
	if *flight != "" {
		defer func() {
			if err := rec.Dump(*flight, "run exit"); err != nil {
				log.Printf("flight: %v", err)
			} else {
				log.Printf("flight recorder written to %s", *flight)
			}
		}()
	}
	var tracer *decepticon.Tracer
	if *trace != "" {
		tracer = decepticon.NewTracer()
		reg.SetTracer(tracer)
		defer func() {
			if err := decepticon.WriteTraceFile(tracer, *trace); err != nil {
				log.Printf("trace: %v", err)
			} else {
				log.Printf("trace written to %s", *trace)
			}
		}()
	}
	if err := decepticon.ConfigureLogging(reg, os.Stderr, *logLvl, runID); err != nil {
		log.Fatalf("-log-level: %v", err)
	}
	if *pprof != "" {
		addr, _, err := decepticon.ServeMetrics(*pprof, reg)
		if err != nil {
			log.Fatalf("pprof server: %v", err)
		}
		log.Printf("serving metrics and pprof on http://%s", addr)
	}

	cfg := decepticon.SmallZooConfig()
	switch *scale {
	case "tiny":
		cfg = decepticon.TinyZooConfig()
	case "small":
	case "full":
		cfg = decepticon.DefaultZooConfig()
	default:
		log.Fatalf("unknown -scale %q (use tiny, small, or full)", *scale)
	}
	cfg.Workers = *work
	cfg.Obs = reg
	log.Printf("building model zoo (%d pre-trained, %d fine-tuned)...",
		cfg.NumPretrained, cfg.NumFineTuned)
	z, err := decepticon.BuildOrLoadZoo(cfg, *cache)
	if err != nil {
		log.Printf("zoo cache: %v", err)
	}

	log.Printf("training the pre-trained model extractor...")
	prepCfg := decepticon.DefaultPrepareConfig()
	if *scale == "tiny" {
		prepCfg.SamplesPerModel = 2
		prepCfg.ImgSize = 32
		prepCfg.Epochs = 8
	}
	prepCfg.Workers = *work
	prepCfg.Obs = reg
	atk, err := decepticon.NewAttack(z, prepCfg)
	if err != nil {
		log.Fatal(err)
	}
	if *noise > 0 && *repeats > 0 {
		ec := decepticon.DefaultExtractionConfig()
		ec.ReadRepeats = *repeats
		atk.ExtractCfg = ec
	}
	defer writeMetrics(reg, *metrics)

	if *all {
		log.Printf("attacking all %d victims...", len(z.FineTuned))
		c, err := atk.RunAll(z.FineTuned, decepticon.RunOptions{
			MeasureSeed: 1, Workers: *work, BitErrorRate: *noise,
			FaultPlan: plan, CheckpointDir: *ckpt, Resume: *resume, ReadBudget: *budget,
			FlightPath: *flight,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("──────────────────────── campaign report ───────────────────────")
		fmt.Printf("victims attacked:        %d\n", c.Victims)
		fmt.Printf("identified correctly:    %d (%.1f%%)\n", c.Identified, 100*c.IdentificationRate())
		fmt.Printf("resolved via probes:     %d\n", c.ProbeResolved)
		fmt.Printf("bus-probe arch checks:   %d passed\n", c.ArchConfirmed)
		if c.ExtractFailed > 0 {
			fmt.Printf("extractions failed:      %d\n", c.ExtractFailed)
		}
		if c.ExtractSkipped > 0 {
			fmt.Printf("extractions skipped:     %d (architecture mismatch)\n", c.ExtractSkipped)
		}
		if c.ExtractInterrupted > 0 {
			fmt.Printf("extractions interrupted: %d (checkpointed; rerun with -resume)\n", c.ExtractInterrupted)
		}
		if c.TensorsDegraded > 0 || plan != nil {
			fmt.Printf("tensors degraded:        %d (mean coverage %.1f%%)\n",
				c.TensorsDegraded, 100*c.MeanCoverage)
		}
		fmt.Printf("mean clone match rate:   %.1f%%\n", 100*c.MeanMatchRate)
		fmt.Printf("mean bit-read reduction: %.1fx\n", c.MeanReduction)
		fmt.Printf("bits read (logical):     %d\n", c.TotalBitsRead)
		fmt.Printf("oracle reads (physical): %d\n", c.TotalPhysicalReads)
		fmt.Printf("rowhammer rounds:        %d\n", c.TotalHammerRounds())
		return
	}

	if *victim < 0 || *victim >= len(z.FineTuned) {
		log.Fatalf("victim index %d out of range [0, %d)", *victim, len(z.FineTuned))
	}
	target := z.FineTuned[*victim]
	log.Printf("attacking black-box victim %q...", target.Name)

	rep, err := atk.Run(target, decepticon.RunOptions{
		MeasureSeed:    uint64(*victim) + 1,
		Adversarial:    *adv,
		NumSubstitutes: *subs,
		BitErrorRate:   *noise,
		FaultPlan:      plan,
		CheckpointDir:  *ckpt,
		Resume:         *resume,
		ReadBudget:     *budget,
		FlightPath:     *flight,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("──────────────────────── attack report ────────────────────────")
	fmt.Printf("victim:                 %s\n", rep.Victim)
	fmt.Printf("true pre-trained model: %s\n", rep.TruePretrained)
	fmt.Printf("identified:             %s (correct: %v)\n", rep.Identified, rep.CorrectIdentity)
	if rep.UsedQueryProbes {
		fmt.Printf("query probes:           %d black-box queries\n", rep.ProbeQueries)
	}
	if rep.ExtractError != "" {
		fmt.Printf("extraction failed:      %s\n", rep.ExtractError)
		return
	}
	if rep.ExtractSkipped != "" {
		fmt.Printf("extraction skipped:     %s\n", rep.ExtractSkipped)
		return
	}
	if rep.ExtractInterrupted {
		fmt.Println("extraction interrupted: read budget exhausted (checkpointed; rerun with -resume)")
		return
	}
	if rep.Extract == nil {
		fmt.Println("extraction skipped")
		return
	}
	st := rep.Extract
	fmt.Printf("weights handled:        %d (+%d head), %.1f%% correctly pruned\n",
		st.WeightsTotal, st.HeadWeights, 100*st.WeightsCorrectlyPruned())
	fmt.Printf("bits read (logical):    %d of %d (%.1fx reduction)\n",
		st.LogicalBitsRead(), st.BitsTotal+32*int64(st.HeadWeights), st.ReductionFactor())
	if st.PhysicalBitReads != st.LogicalBitsRead() {
		fmt.Printf("oracle reads (physical):%d (majority vote ×%d)\n",
			st.PhysicalBitReads, st.EffectiveReadRepeats)
	}
	if st.ReadFaults > 0 || st.Retries > 0 {
		fmt.Printf("channel faults:         %d faulted reads, %d retries, %d backoff rounds, %d escalations\n",
			st.ReadFaults, st.Retries, st.BackoffRounds, st.Escalations)
	}
	if st.WeightsDegraded > 0 {
		fmt.Printf("degraded:               %d weights (%d tensors) fell back to baseline; coverage %.1f%%\n",
			st.WeightsDegraded, st.TensorsDegraded, 100*st.Coverage())
	}
	fmt.Printf("victim acc / clone acc: %.3f / %.3f\n", rep.VictimAcc, rep.CloneAcc)
	fmt.Printf("matched predictions:    %.1f%%\n", 100*rep.MatchRate)
	if *adv {
		fmt.Printf("adversarial (clone):    %.1f%% success\n", 100*rep.AdvClone)
		for i, s := range rep.AdvSubstitutes {
			fmt.Printf("adversarial (sub %d):    %.1f%% success\n", i+1, 100*s)
		}
	}
}

// writeMetrics dumps the registry to every path in the comma-separated
// list; the extension picks the encoding.
func writeMetrics(reg *decepticon.Metrics, paths string) {
	for _, path := range strings.Split(paths, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		if err := decepticon.WriteMetricsFile(reg, path); err != nil {
			log.Printf("metrics: %v", err)
		} else {
			log.Printf("metrics written to %s", path)
		}
	}
}

// Command decepticond runs the Decepticon attack as a long-running
// campaign service: the zoo and level-1 extractor are prepared once at
// startup, then campaigns arrive over HTTP/JSON, queue durably under
// -dir, execute on a bounded runner pool, and stream per-victim results
// as NDJSON. Kill the daemon mid-campaign and restart it on the same
// -dir: every in-flight extraction resumes from its checkpoint with zero
// re-paid hammer rounds and the final results are byte-identical to an
// uninterrupted run.
//
//	decepticond -scale tiny -dir /var/lib/decepticon -addr localhost:8424 \
//	    -tenants 'alice:500000:2,bob:100000:1'
//
// SIGINT or SIGTERM drains gracefully: admission stops (503), running
// campaigns checkpoint, statuses persist, artifacts flush.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"decepticon"
	"decepticon/internal/cliconfig"
	"decepticon/internal/fsatomic"
	"decepticon/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("decepticond: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// parseTenants parses -tenants: comma-separated name:budget[:priority]
// entries ("alice:500000:2,bob:100000"). Budget 0 is unlimited.
func parseTenants(spec string) (map[string]service.TenantConfig, error) {
	out := map[string]service.TenantConfig{}
	if strings.TrimSpace(spec) == "" {
		return out, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if len(parts) < 2 || len(parts) > 3 || parts[0] == "" {
			return nil, fmt.Errorf("bad tenant entry %q (want name:budget[:priority])", entry)
		}
		budget, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil || budget < 0 {
			return nil, fmt.Errorf("bad tenant budget in %q", entry)
		}
		tc := service.TenantConfig{ReadBudget: budget}
		if len(parts) == 3 {
			tc.Priority, err = strconv.Atoi(parts[2])
			if err != nil {
				return nil, fmt.Errorf("bad tenant priority in %q", entry)
			}
		}
		out[parts[0]] = tc
	}
	return out, nil
}

func run() error {
	fs := flag.CommandLine
	var opts cliconfig.Options
	opts.RegisterCommon(fs)
	opts.RegisterCache(fs)
	opts.RegisterIdentify(fs)
	addr := fs.String("addr", "localhost:8424", "campaign API listen address (use :0 for an ephemeral port; the bound address lands in <dir>/decepticond.addr)")
	dir := fs.String("dir", "", "durable state directory: campaign specs, statuses, checkpoints, results (required)")
	queueLimit := fs.Int("queue-limit", 16, "max campaigns waiting for a runner; submissions beyond it get 429 + Retry-After")
	runners := fs.Int("runners", 1, "campaigns executed concurrently")
	victimWorkers := fs.Int("victim-workers", 1, "per-campaign victim concurrency when the spec does not choose")
	tenants := fs.String("tenants", "", "per-tenant allowances: name:budget[:priority],... (budget = total oracle attempts, 0 = unlimited; higher priority runs first)")
	defaultBudget := fs.Int64("default-budget", 0, "oracle-attempt budget for tenants not in -tenants (0 = unlimited)")
	defaultPriority := fs.Int("default-priority", 0, "priority for tenants not in -tenants")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint attached to 429 responses")
	drainTimeout := fs.Duration("drain-timeout", 60*time.Second, "max time to wait for running campaigns to checkpoint on shutdown")
	flag.Parse()
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	tenantCfg, err := parseTenants(*tenants)
	if err != nil {
		return fmt.Errorf("-tenants: %w", err)
	}
	zooCfg, err := opts.ZooConfig()
	if err != nil {
		return err
	}

	// SIGTERM must drain exactly like Ctrl-C: orchestrators stop daemons
	// with TERM, and the artifact flush in rt.Close rides this context.
	rt, err := cliconfig.Setup(&opts, syscall.SIGTERM)
	if err != nil {
		return err
	}
	defer rt.Close()

	zooCfg.Workers = opts.Workers
	zooCfg.Obs = rt.Registry
	log.Printf("building model zoo (%d pre-trained, %d fine-tuned)...",
		zooCfg.NumPretrained, zooCfg.NumFineTuned)
	// With -store, a restart opens the store and serves lazy handles
	// instead of rebuilding the population — the daemon's recovery path
	// costs a manifest read, not a training run.
	z, err := opts.LoadZoo(rt.Ctx, zooCfg)
	if err != nil {
		return err
	}

	log.Printf("training the pre-trained model extractor...")
	prepCfg := decepticon.DefaultPrepareConfig()
	if opts.Scale == "tiny" {
		prepCfg.SamplesPerModel = 2
		prepCfg.ImgSize = 32
		prepCfg.Epochs = 8
	}
	prepCfg.Workers = opts.Workers
	prepCfg.Obs = rt.Registry
	prepCfg.Hierarchical = opts.Hier
	atk, err := decepticon.NewAttackContext(rt.Ctx, z, prepCfg)
	if err != nil {
		return err
	}

	srv, err := service.New(service.Config{
		Dir:           *dir,
		Attack:        atk,
		Obs:           rt.Registry,
		QueueLimit:    *queueLimit,
		Runners:       *runners,
		VictimWorkers: *victimWorkers,
		Tenants:       tenantCfg,
		DefaultTenant: service.TenantConfig{ReadBudget: *defaultBudget, Priority: *defaultPriority},
		RetryAfter:    *retryAfter,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	bound := ln.Addr().String()
	// The addr file is how scripted clients find an ephemeral-port daemon;
	// atomic so a concurrent reader never sees a half-written address.
	addrFile := filepath.Join(*dir, "decepticond.addr")
	if err := fsatomic.WriteFile(addrFile, []byte(bound+"\n")); err != nil {
		return err
	}
	defer os.Remove(addrFile)

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	log.Printf("serving campaigns on http://%s (state: %s)", bound, *dir)

	select {
	case <-rt.Ctx.Done():
		log.Printf("shutdown signal; draining (timeout %s)...", *drainTimeout)
	case err := <-serveErr:
		return fmt.Errorf("http serve: %w", err)
	}
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		log.Printf("drain: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil {
		hs.Close()
	}
	log.Printf("drained; state persisted under %s", *dir)
	return nil
}

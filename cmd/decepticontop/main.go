// Command decepticontop is a terminal ops dashboard for decepticond. It
// polls the daemon's HTTP surface — /healthz for queue depth, /campaigns
// for per-campaign progress, /tenants and /metrics.json for budget
// positions and burn-rate gauges — and redraws a single screen each
// interval:
//
//	decepticontop -addr-file state/decepticond.addr
//	decepticontop -addr 127.0.0.1:8080 -interval 2s
//	decepticontop -addr-file state/decepticond.addr -once   # one frame, no ANSI
//
// Each campaign row shows its state, a progress bar driven by the
// deterministic simulated-unit fraction, completed/planned units, the
// victim tally, and the wall-clock ETA from the service's EWMA rate
// model. Each tenant row shows spend against budget plus the live
// burn-rate and time-to-exhaustion gauges. -once prints one frame
// without cursor control — scriptable, and what `make progress-smoke`
// greps.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

type campaign struct {
	ID         string    `json:"id"`
	Tenant     string    `json:"tenant"`
	State      string    `json:"state"`
	Victims    int       `json:"victims"`
	Delivered  int       `json:"delivered"`
	Spent      int64     `json:"spent"`
	ETASeconds float64   `json:"eta_seconds"`
	Progress   *progress `json:"progress"`
}

type progress struct {
	Fraction       float64 `json:"fraction"`
	PlannedUnits   int64   `json:"planned_units"`
	CompletedUnits int64   `json:"completed_units"`
	VictimsDone    int     `json:"victims_done"`
}

type tenant struct {
	Name      string `json:"name"`
	Budget    int64  `json:"budget"`
	Spent     int64  `json:"spent"`
	Campaigns int    `json:"campaigns"`
}

type health struct {
	Status  string `json:"status"`
	Queued  int    `json:"queued"`
	Running int    `json:"running"`
}

// frame is one complete poll of the daemon's surfaces.
type frame struct {
	health    health
	campaigns []campaign
	tenants   []tenant
	gauges    map[string]float64
}

type poller struct {
	addr     string
	addrFile string
	hc       *http.Client
}

func (p *poller) base() (string, error) {
	if p.addrFile != "" {
		data, err := os.ReadFile(p.addrFile)
		if err != nil {
			return "", err
		}
		p.addr = strings.TrimSpace(string(data))
	}
	if p.addr == "" {
		return "", fmt.Errorf("no -addr or -addr-file")
	}
	return "http://" + p.addr, nil
}

func (p *poller) getJSON(path string, v any) error {
	base, err := p.base()
	if err != nil {
		return err
	}
	resp, err := p.hc.Get(base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func (p *poller) poll() (frame, error) {
	var fr frame
	if err := p.getJSON("/healthz", &fr.health); err != nil {
		return fr, err
	}
	if err := p.getJSON("/campaigns", &fr.campaigns); err != nil {
		return fr, err
	}
	if err := p.getJSON("/tenants", &fr.tenants); err != nil {
		return fr, err
	}
	var snap struct {
		Gauges map[string]float64 `json:"gauges"`
	}
	if err := p.getJSON("/metrics.json", &snap); err != nil {
		return fr, err
	}
	fr.gauges = snap.Gauges
	return fr, nil
}

// bar renders a fixed-width progress bar for a fraction in [0,1].
func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	filled := int(frac*float64(width) + 0.5)
	return "[" + strings.Repeat("#", filled) + strings.Repeat(".", width-filled) + "]"
}

// eta formats a wall-clock seconds estimate; "-" when unknown (campaign
// not running, or no rate observed yet).
func eta(s float64) string {
	if s <= 0 {
		return "-"
	}
	d := time.Duration(s * float64(time.Second)).Round(time.Second)
	return d.String()
}

// gaugeName mirrors the service's tenant metric-name sanitization so the
// dashboard can look up burn gauges by tenant.
func gaugeName(tenant, suffix string) string {
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		}
		return '_'
	}, tenant)
	return "service.tenant." + name + "." + suffix
}

func render(w io.Writer, fr frame) {
	fmt.Fprintf(w, "decepticond %s  queued=%d running=%d  %s\n\n",
		fr.health.Status, fr.health.Queued, fr.health.Running,
		time.Now().Format("15:04:05"))

	fmt.Fprintf(w, "%-9s %-8s %-11s %-22s %7s %13s %9s %8s\n",
		"CAMPAIGN", "TENANT", "STATE", "PROGRESS", "FRAC", "UNITS", "VICTIMS", "ETA")
	for _, c := range fr.campaigns {
		frac, units, victims := 0.0, "-", fmt.Sprintf("%d/%d", c.Delivered, c.Victims)
		if c.Progress != nil {
			frac = c.Progress.Fraction
			units = fmt.Sprintf("%d/%d", c.Progress.CompletedUnits, c.Progress.PlannedUnits)
			victims = fmt.Sprintf("%d/%d", c.Progress.VictimsDone, c.Victims)
		}
		etaStr := "-"
		if c.State == "running" {
			etaStr = eta(c.ETASeconds)
		}
		fmt.Fprintf(w, "%-9s %-8s %-11s %s %6.1f%% %13s %9s %8s\n",
			c.ID, c.Tenant, c.State, bar(frac, 20), frac*100, units, victims, etaStr)
	}
	if len(fr.campaigns) == 0 {
		fmt.Fprintln(w, "(no campaigns)")
	}

	fmt.Fprintf(w, "\n%-10s %12s %12s %10s %12s %14s\n",
		"TENANT", "SPENT", "BUDGET", "CAMPAIGNS", "BURN/S", "TTL")
	sort.Slice(fr.tenants, func(i, j int) bool { return fr.tenants[i].Name < fr.tenants[j].Name })
	for _, t := range fr.tenants {
		budget := "unlimited"
		if t.Budget > 0 {
			budget = fmt.Sprintf("%d", t.Budget)
		}
		burn := fr.gauges[gaugeName(t.Name, "burn_rate")]
		ttl := "-"
		if v, ok := fr.gauges[gaugeName(t.Name, "ttl_exhaustion_s")]; ok && v >= 0 {
			ttl = eta(v)
		}
		fmt.Fprintf(w, "%-10s %12d %12s %10d %12.1f %14s\n",
			t.Name, t.Spent, budget, t.Campaigns, burn, ttl)
	}
	if len(fr.tenants) == 0 {
		fmt.Fprintln(w, "(no tenants)")
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("decepticontop: ")
	addr := flag.String("addr", "", "decepticond address (host:port)")
	addrFile := flag.String("addr-file", "", "file holding the daemon address (written by decepticond)")
	interval := flag.Duration("interval", time.Second, "poll and redraw interval")
	once := flag.Bool("once", false, "print a single frame without cursor control and exit")
	flag.Parse()

	p := &poller{addr: *addr, addrFile: *addrFile, hc: &http.Client{Timeout: 10 * time.Second}}
	if *once {
		fr, err := p.poll()
		if err != nil {
			log.Fatal(err)
		}
		render(os.Stdout, fr)
		return
	}
	for {
		fr, err := p.poll()
		if err != nil {
			// The daemon may be restarting; keep the last frame and retry.
			fmt.Fprintf(os.Stdout, "\x1b[2J\x1b[H(daemon unreachable: %v)\n", err)
		} else {
			// Clear and home, then draw the frame in one write so the
			// terminal never shows a half-painted screen.
			var b strings.Builder
			b.WriteString("\x1b[2J\x1b[H")
			render(&b, fr)
			io.WriteString(os.Stdout, b.String())
		}
		time.Sleep(*interval)
	}
}

// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig14
//	experiments -run fig3,fig4,fig16 -scale full
//	experiments -run all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"decepticon"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		run     = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		scale   = flag.String("scale", "small", "zoo scale: small | full")
		list    = flag.Bool("list", false, "list experiments and exit")
		quiet   = flag.Bool("q", false, "suppress progress output")
		cache   = flag.String("cache", "", "zoo cache file (built once, reused afterwards)")
		work    = flag.Int("workers", 0, "worker goroutines for zoo build and trace measurement (0 = all cores); results are identical for any value")
		metrics = flag.String("metrics", "", "comma-separated snapshot files written on exit (.json = JSON, otherwise Prometheus text)")
		pprof   = flag.String("pprof", "", "serve /metrics and /debug/pprof on this address (e.g. localhost:6060)")
		faults  = flag.String("faults", "", "fault-plan spec for attack-driving experiments: key=value[,...] with keys seed, transient, recovery, stuck, outage, period")
		ckpt    = flag.String("checkpoint", "", "directory for extraction checkpoints in attack-driving experiments")
		resume  = flag.Bool("resume", false, "resume from checkpoints in -checkpoint instead of starting fresh")
	)
	flag.Parse()

	if *list {
		for _, t := range decepticon.ExperimentTitles() {
			fmt.Println(t)
		}
		return
	}

	reg := decepticon.NewMetrics()
	if *pprof != "" {
		addr, err := decepticon.ServeMetrics(*pprof, reg)
		if err != nil {
			log.Fatalf("pprof server: %v", err)
		}
		log.Printf("serving metrics and pprof on http://%s", addr)
	}
	defer func() {
		for _, path := range strings.Split(*metrics, ",") {
			if path = strings.TrimSpace(path); path == "" {
				continue
			}
			if err := decepticon.WriteMetricsFile(reg, path); err != nil {
				log.Printf("metrics: %v", err)
			} else {
				log.Printf("metrics written to %s", path)
			}
		}
	}()

	var sc decepticon.Scale
	switch *scale {
	case "small":
		sc = decepticon.ScaleSmall
	case "full":
		sc = decepticon.ScaleFull
	default:
		log.Fatalf("unknown scale %q (small | full)", *scale)
	}

	plan, err := decepticon.ParseFaultPlan(*faults)
	if err != nil {
		log.Fatalf("-faults: %v", err)
	}
	if *resume && *ckpt == "" {
		log.Fatal("-resume requires -checkpoint")
	}

	env := decepticon.NewExperiments(sc)
	env.CachePath = *cache
	env.Workers = *work
	env.Obs = reg
	env.FaultPlan = plan
	env.CheckpointDir = *ckpt
	env.Resume = *resume
	if !*quiet {
		env.Progress = func(format string, args ...any) { log.Printf(format, args...) }
	}

	if *run == "all" {
		env.RunAll(os.Stdout)
		return
	}
	for _, id := range strings.Split(*run, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if err := env.Run(id, os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig14
//	experiments -run fig3,fig4,fig16 -scale full
//	experiments -run all
//
// Ctrl-C cancels the run at the next phase boundary (zoo build,
// classifier epoch, or extraction checkpoint); requested -metrics,
// -trace, and -flight artifacts are still written.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"decepticon"
	"decepticon/internal/cliconfig"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() (err error) {
	var opts cliconfig.Options
	opts.RegisterCommon(flag.CommandLine)
	opts.RegisterCache(flag.CommandLine)
	opts.RegisterFaults(flag.CommandLine)
	opts.RegisterFlight(flag.CommandLine)
	var (
		runIDs = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		list   = flag.Bool("list", false, "list experiments and exit")
		quiet  = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	if *list {
		for _, t := range decepticon.ExperimentTitles() {
			fmt.Println(t)
		}
		return nil
	}

	var sc decepticon.Scale
	switch opts.Scale {
	case "small":
		sc = decepticon.ScaleSmall
	case "full":
		sc = decepticon.ScaleFull
	default:
		return fmt.Errorf("unknown scale %q (small | full)", opts.Scale)
	}

	rt, err := cliconfig.Setup(&opts)
	if err != nil {
		return err
	}
	defer rt.Close()

	env := decepticon.NewExperiments(sc)
	env.Ctx = rt.Ctx
	env.CachePath = opts.Cache
	env.StorePath = opts.Store
	env.Workers = opts.Workers
	env.Obs = rt.Registry
	env.FaultPlan = rt.Plan
	env.CheckpointDir = opts.Checkpoint
	env.Resume = opts.Resume
	env.FlightPath = opts.Flight
	if !*quiet {
		env.Progress = func(format string, args ...any) { log.Printf(format, args...) }
	}

	// The environment's lazy accessors (Zoo, Attack) treat failures of the
	// package's own presets as programmer errors and panic — including the
	// cancellation a Ctrl-C injects mid-build. Recover that one case into
	// a clean exit; genuine programmer errors keep panicking.
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok && errors.Is(e, context.Canceled) {
				log.Printf("interrupted")
				err = nil
				return
			}
			panic(r)
		}
	}()

	if *runIDs == "all" {
		env.RunAll(os.Stdout)
		return nil
	}
	for _, id := range strings.Split(*runIDs, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if err := env.Run(id, os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

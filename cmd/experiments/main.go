// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig14
//	experiments -run fig3,fig4,fig16 -scale full
//	experiments -run all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"decepticon"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		run     = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		scale   = flag.String("scale", "small", "zoo scale: small | full")
		list    = flag.Bool("list", false, "list experiments and exit")
		quiet   = flag.Bool("q", false, "suppress progress output")
		cache   = flag.String("cache", "", "zoo cache file (built once, reused afterwards)")
		work    = flag.Int("workers", 0, "worker goroutines for zoo build and trace measurement (0 = all cores); results are identical for any value")
		metrics = flag.String("metrics", "", "comma-separated snapshot files written on exit (.json = JSON, otherwise Prometheus text)")
		pprof   = flag.String("pprof", "", "serve /metrics and /debug/pprof on this address (e.g. localhost:6060)")
		faults  = flag.String("faults", "", "fault-plan spec for attack-driving experiments: key=value[,...] with keys seed, transient, recovery, stuck, outage, period")
		ckpt    = flag.String("checkpoint", "", "directory for extraction checkpoints in attack-driving experiments")
		resume  = flag.Bool("resume", false, "resume from checkpoints in -checkpoint instead of starting fresh")
		trace   = flag.String("trace", "", "write a Chrome/Perfetto trace_event JSON file on exit (simulated clocks; byte-identical for any -workers)")
		flight  = flag.String("flight", "", "write a flight-recorder dump to this file on exit; interrupted, failed, or degraded extractions also dump here when -checkpoint is unset")
		logLvl  = flag.String("log-level", "", "structured log level on stderr: debug | info | warn | error (default off)")
	)
	flag.Parse()

	if *list {
		for _, t := range decepticon.ExperimentTitles() {
			fmt.Println(t)
		}
		return
	}

	reg := decepticon.NewMetrics()
	runID := decepticon.RunID(os.Args...)
	rec := decepticon.NewFlightRecorder(0)
	rec.RunID = runID
	reg.SetFlight(rec)
	if *flight != "" {
		defer func() {
			if err := rec.Dump(*flight, "run exit"); err != nil {
				log.Printf("flight: %v", err)
			} else {
				log.Printf("flight recorder written to %s", *flight)
			}
		}()
	}
	if *trace != "" {
		tracer := decepticon.NewTracer()
		reg.SetTracer(tracer)
		defer func() {
			if err := decepticon.WriteTraceFile(tracer, *trace); err != nil {
				log.Printf("trace: %v", err)
			} else {
				log.Printf("trace written to %s", *trace)
			}
		}()
	}
	if err := decepticon.ConfigureLogging(reg, os.Stderr, *logLvl, runID); err != nil {
		log.Fatalf("-log-level: %v", err)
	}
	if *pprof != "" {
		addr, _, err := decepticon.ServeMetrics(*pprof, reg)
		if err != nil {
			log.Fatalf("pprof server: %v", err)
		}
		log.Printf("serving metrics and pprof on http://%s", addr)
	}
	defer func() {
		for _, path := range strings.Split(*metrics, ",") {
			if path = strings.TrimSpace(path); path == "" {
				continue
			}
			if err := decepticon.WriteMetricsFile(reg, path); err != nil {
				log.Printf("metrics: %v", err)
			} else {
				log.Printf("metrics written to %s", path)
			}
		}
	}()

	var sc decepticon.Scale
	switch *scale {
	case "small":
		sc = decepticon.ScaleSmall
	case "full":
		sc = decepticon.ScaleFull
	default:
		log.Fatalf("unknown scale %q (small | full)", *scale)
	}

	plan, err := decepticon.ParseFaultPlan(*faults)
	if err != nil {
		log.Fatalf("-faults: %v", err)
	}
	if *resume && *ckpt == "" {
		log.Fatal("-resume requires -checkpoint")
	}

	env := decepticon.NewExperiments(sc)
	env.CachePath = *cache
	env.Workers = *work
	env.Obs = reg
	env.FaultPlan = plan
	env.CheckpointDir = *ckpt
	env.Resume = *resume
	env.FlightPath = *flight
	if !*quiet {
		env.Progress = func(format string, args ...any) { log.Printf(format, args...) }
	}

	if *run == "all" {
		env.RunAll(os.Stdout)
		return
	}
	for _, id := range strings.Split(*run, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if err := env.Run(id, os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

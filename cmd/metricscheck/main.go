// Command metricscheck validates metrics snapshot files written by the
// other commands' -metrics flag: each argument must parse (JSON for
// .json files, Prometheus text exposition otherwise) and contain at
// least one metric. It exits non-zero on the first failure — the
// building block of `make metrics-smoke`.
//
// Usage:
//
//	metricscheck run.json run.prom
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"decepticon/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("metricscheck: ")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: metricscheck <snapshot-file>...")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		snap, err := obs.ReadFile(path)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		if snap.Empty() {
			log.Fatalf("%s: snapshot holds no metrics", path)
		}
		log.Printf("%s: ok (%d counters, %d gauges, %d timers)",
			path, len(snap.Counters), len(snap.Gauges), len(snap.Timers))
	}
}

// Command metricscheck validates metrics snapshot files written by the
// other commands' -metrics flag: each argument must parse (JSON for
// .json files, Prometheus text exposition otherwise) and contain at
// least one metric. It exits non-zero on the first failure — the
// building block of `make metrics-smoke`.
//
// With -equal-counters, every file's counter section must additionally be
// identical to the first file's — the determinism check behind
// `make faults-smoke`, where a checkpoint-resumed campaign must reconcile
// byte-for-byte with an uninterrupted one. (Timers are wall-clock and
// excluded by design.)
//
// Usage:
//
//	metricscheck run.json run.prom
//	metricscheck -equal-counters resumed.json uninterrupted.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"decepticon/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("metricscheck: ")
	equal := flag.Bool("equal-counters", false, "require every file's counters to match the first file's exactly")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: metricscheck [-equal-counters] <snapshot-file>...")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	var ref obs.Snapshot
	var refPath string
	for i, path := range flag.Args() {
		snap, err := obs.ReadFile(path)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		if snap.Empty() {
			log.Fatalf("%s: snapshot holds no metrics", path)
		}
		log.Printf("%s: ok (%d counters, %d gauges, %d timers)",
			path, len(snap.Counters), len(snap.Gauges), len(snap.Timers))
		if !*equal {
			continue
		}
		if i == 0 {
			ref, refPath = snap, path
			continue
		}
		if diffs := counterDiffs(ref, snap); len(diffs) > 0 {
			for _, d := range diffs {
				log.Print(d)
			}
			log.Fatalf("%s: counters differ from %s (%d mismatches)", path, refPath, len(diffs))
		}
		log.Printf("%s: counters identical to %s", path, refPath)
	}
}

// counterDiffs lists the counters present or valued differently between
// two snapshots, sorted by name so the report is reproducible.
func counterDiffs(a, b obs.Snapshot) []string {
	names := map[string]bool{}
	for name := range a.Counters {
		names[name] = true
	}
	for name := range b.Counters {
		names[name] = true
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)
	var diffs []string
	for _, name := range sorted {
		av, aok := a.Counters[name]
		bv, bok := b.Counters[name]
		switch {
		case !aok:
			diffs = append(diffs, fmt.Sprintf("  %s: missing in first file, %d in second", name, bv))
		case !bok:
			diffs = append(diffs, fmt.Sprintf("  %s: %d in first file, missing in second", name, av))
		case av != bv:
			diffs = append(diffs, fmt.Sprintf("  %s: %d != %d", name, av, bv))
		}
	}
	return diffs
}

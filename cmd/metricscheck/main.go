// Command metricscheck validates observability artifacts written by the
// other commands. Each positional argument is a metrics snapshot file
// (-metrics flag output): it must parse (JSON for .json files,
// Prometheus text exposition otherwise), contain at least one metric,
// and every histogram must be internally consistent (bucket counts sum
// to the histogram count, bucket bounds ascend, last bound "+Inf"). It
// exits non-zero on the first failure — the building block of
// `make metrics-smoke` and `make trace-smoke`.
//
// With -equal-counters, every file's counter section must additionally be
// identical to the first file's — the determinism check behind
// `make faults-smoke`, where a checkpoint-resumed campaign must reconcile
// byte-for-byte with an uninterrupted one. (Timers are wall-clock and
// excluded by design.)
//
// -trace validates a Chrome trace_event JSON file (-trace flag output):
// span ids unique per track, parents present with intervals containing
// their children, non-negative timestamps, positive durations.
//
// -flight validates a flight-recorder dump (-flight flag output or an
// automatic crash dump): it must parse, hold at least one event, and
// carry strictly increasing sequence numbers.
//
// -events validates a campaign event ledger (a campaign directory's
// events.ndjson, or the /campaigns/{id}/events stream saved to a file):
// strictly monotonic sequence numbers, legal lifecycle transitions only,
// terminal events unique, per-victim unit counters never regressing.
//
// Usage:
//
//	metricscheck run.json run.prom
//	metricscheck -equal-counters resumed.json uninterrupted.json
//	metricscheck -trace trace.json -flight flight.json run.json
//	metricscheck -events state/campaigns/c000001/events.ndjson
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"decepticon/internal/obs"
	"decepticon/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("metricscheck: ")
	equal := flag.Bool("equal-counters", false, "require every file's counters to match the first file's exactly")
	nonzero := flag.String("nonzero", "", "comma-separated counter names every snapshot must carry with a positive value")
	counter := flag.String("counter", "", "comma-separated name=value pairs every snapshot's counters must match exactly (a missing counter matches an expected 0)")
	tracePath := flag.String("trace", "", "validate this Chrome trace_event JSON file")
	flightPath := flag.String("flight", "", "validate this flight-recorder dump file")
	eventsPath := flag.String("events", "", "validate this campaign event ledger (events.ndjson)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: metricscheck [-equal-counters] [-nonzero counter,...] [-counter name=value,...] [-trace file] [-flight file] [-events file] [snapshot-file...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 && *tracePath == "" && *flightPath == "" && *eventsPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *tracePath != "" {
		checkTrace(*tracePath)
	}
	if *flightPath != "" {
		checkFlight(*flightPath)
	}
	if *eventsPath != "" {
		checkEvents(*eventsPath)
	}
	var ref obs.Snapshot
	var refPath string
	for i, path := range flag.Args() {
		snap, err := obs.ReadFile(path)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		if snap.Empty() {
			log.Fatalf("%s: snapshot holds no metrics", path)
		}
		checkHistograms(path, snap)
		checkNonzero(path, snap, *nonzero)
		checkCounterValues(path, snap, *counter)
		log.Printf("%s: ok (%d counters, %d gauges, %d histograms, %d timers)",
			path, len(snap.Counters), len(snap.Gauges), len(snap.Histograms), len(snap.Timers))
		if !*equal {
			continue
		}
		if i == 0 {
			ref, refPath = snap, path
			continue
		}
		if diffs := counterDiffs(ref, snap); len(diffs) > 0 {
			for _, d := range diffs {
				log.Print(d)
			}
			log.Fatalf("%s: counters differ from %s (%d mismatches)", path, refPath, len(diffs))
		}
		log.Printf("%s: counters identical to %s", path, refPath)
	}
}

// checkNonzero requires every named counter to be present with a
// positive value — how the smoke targets assert that a degraded run
// (e.g. a jammed sensor) was actually metered, not silently skipped.
func checkNonzero(path string, snap obs.Snapshot, spec string) {
	for _, name := range strings.Split(spec, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		v, ok := snap.Counters[name]
		if !ok {
			log.Fatalf("%s: counter %s missing (required nonzero)", path, name)
		}
		if v <= 0 {
			log.Fatalf("%s: counter %s is %d, want > 0", path, name, v)
		}
		log.Printf("%s: counter %s = %d", path, name, v)
	}
}

// checkCounterValues requires every named counter to hold an exact
// value — how the scale smoke asserts a warm store open retrains
// nothing, and a corrupted-object reopen retrains exactly one model. A
// counter that was never incremented is absent from the snapshot, so a
// missing counter matches an expected value of 0.
func checkCounterValues(path string, snap obs.Snapshot, spec string) {
	for _, pair := range strings.Split(spec, ",") {
		if pair = strings.TrimSpace(pair); pair == "" {
			continue
		}
		name, val, ok := strings.Cut(pair, "=")
		if !ok {
			log.Fatalf("-counter: %q is not name=value", pair)
		}
		want, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
		if err != nil {
			log.Fatalf("-counter: %q: %v", pair, err)
		}
		name = strings.TrimSpace(name)
		got, present := snap.Counters[name]
		if !present && want != 0 {
			log.Fatalf("%s: counter %s missing, want %d", path, name, want)
		}
		if got != want {
			log.Fatalf("%s: counter %s is %d, want %d", path, name, got, want)
		}
		log.Printf("%s: counter %s = %d (exact)", path, name, got)
	}
}

// checkHistograms verifies every histogram's internal invariants: the
// bucket counts sum to Count, bucket bounds strictly ascend, and the
// last bucket is the "+Inf" overflow.
func checkHistograms(path string, snap obs.Snapshot) {
	for name, h := range snap.Histograms {
		if len(h.Buckets) == 0 {
			log.Fatalf("%s: histogram %s has no buckets", path, name)
		}
		var sum int64
		prev := math.Inf(-1)
		for _, b := range h.Buckets {
			sum += b.Count
			le := math.Inf(1)
			if b.Le != "+Inf" {
				v, err := strconv.ParseFloat(b.Le, 64)
				if err != nil {
					log.Fatalf("%s: histogram %s: bad bucket bound %q: %v", path, name, b.Le, err)
				}
				le = v
			}
			if le <= prev {
				log.Fatalf("%s: histogram %s: bucket bounds not ascending (%q after %g)", path, name, b.Le, prev)
			}
			prev = le
		}
		if last := h.Buckets[len(h.Buckets)-1].Le; last != "+Inf" {
			log.Fatalf("%s: histogram %s: last bucket bound is %q, want +Inf", path, name, last)
		}
		if sum != h.Count {
			log.Fatalf("%s: histogram %s: bucket counts sum to %d, histogram count is %d", path, name, sum, h.Count)
		}
	}
}

// checkTrace validates a trace_event JSON file: per-track span ids are
// unique, every parent reference resolves to a span on the same track
// whose interval contains the child, timestamps are non-negative, and
// complete spans have positive duration.
func checkTrace(path string) {
	events, err := obs.ReadTraceFile(path)
	if err != nil {
		log.Fatal(err)
	}
	if len(events) == 0 {
		log.Fatalf("%s: trace holds no events", path)
	}
	type key struct{ pid, tid int64 }
	type span struct{ ts, dur int64 }
	spans := map[key]map[int64]span{} // track -> span id -> interval
	nspans, ninstants := 0, 0
	for _, ev := range events {
		if ev.TS < 0 {
			log.Fatalf("%s: event %q has negative timestamp %d", path, ev.Name, ev.TS)
		}
		switch ev.Ph {
		case "M":
		case "i":
			ninstants++
		case "X":
			nspans++
			if ev.Dur < 1 {
				log.Fatalf("%s: span %q has duration %d, want >= 1", path, ev.Name, ev.Dur)
			}
			id, ok := argInt(ev.Args, "id")
			if !ok {
				log.Fatalf("%s: span %q carries no id", path, ev.Name)
			}
			k := key{ev.Pid, ev.Tid}
			if spans[k] == nil {
				spans[k] = map[int64]span{}
			}
			if _, dup := spans[k][id]; dup {
				log.Fatalf("%s: span id %d duplicated on track %d/%d", path, id, ev.Pid, ev.Tid)
			}
			spans[k][id] = span{ev.TS, ev.Dur}
		default:
			log.Fatalf("%s: event %q has unknown phase %q", path, ev.Name, ev.Ph)
		}
	}
	// Parent links check after the scan: spans record in completion
	// order, so a parent's "X" event appears after its children's.
	for _, ev := range events {
		if ev.Ph != "X" {
			continue
		}
		parent, ok := argInt(ev.Args, "parent")
		if !ok {
			continue
		}
		p, exists := spans[key{ev.Pid, ev.Tid}][parent]
		if !exists {
			log.Fatalf("%s: span %q references missing parent %d on track %d/%d",
				path, ev.Name, parent, ev.Pid, ev.Tid)
		}
		if ev.TS < p.ts || ev.TS+ev.Dur > p.ts+p.dur {
			log.Fatalf("%s: span %q [%d,%d] escapes parent interval [%d,%d]",
				path, ev.Name, ev.TS, ev.TS+ev.Dur, p.ts, p.ts+p.dur)
		}
	}
	log.Printf("%s: ok (%d tracks, %d spans, %d instants)", path, len(spans), nspans, ninstants)
}

// argInt extracts an integer span argument (JSON numbers decode as
// float64).
func argInt(args map[string]any, name string) (int64, bool) {
	v, ok := args[name]
	if !ok {
		return 0, false
	}
	f, ok := v.(float64)
	if !ok {
		return 0, false
	}
	return int64(f), true
}

// checkFlight validates a flight-recorder dump: it parses, holds at
// least one event, and sequence numbers strictly increase.
func checkFlight(path string) {
	d, err := obs.ReadFlightFile(path)
	if err != nil {
		log.Fatal(err)
	}
	if len(d.Events) == 0 {
		log.Fatalf("%s: flight dump holds no events", path)
	}
	for i := 1; i < len(d.Events); i++ {
		if d.Events[i].Seq <= d.Events[i-1].Seq {
			log.Fatalf("%s: flight sequence not increasing at index %d (%d after %d)",
				path, i, d.Events[i].Seq, d.Events[i-1].Seq)
		}
	}
	log.Printf("%s: ok (run %s, %d events, %d dropped, reason %q)",
		path, d.RunID, len(d.Events), d.Dropped, d.Reason)
}

// checkEvents validates a campaign event ledger against the service's
// lifecycle state machine (service.ValidateLedger): monotonic seq, legal
// transitions, unique terminals, non-regressing unit counters.
func checkEvents(path string) {
	events, err := service.ReadLedgerFile(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := service.ValidateLedger(events); err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	tensors, terminal := 0, ""
	for _, ev := range events {
		if ev.Event == service.EventTensorComplete {
			tensors++
		}
		if ev.Event == service.EventDone || ev.Event == service.EventFailed {
			terminal = ev.Event
		}
	}
	log.Printf("%s: ok (%d events, %d tensor boundaries, terminal %q)",
		path, len(events), tensors, terminal)
}

// counterDiffs lists the counters present or valued differently between
// two snapshots, sorted by name so the report is reproducible.
func counterDiffs(a, b obs.Snapshot) []string {
	names := map[string]bool{}
	for name := range a.Counters {
		names[name] = true
	}
	for name := range b.Counters {
		names[name] = true
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)
	var diffs []string
	for _, name := range sorted {
		av, aok := a.Counters[name]
		bv, bok := b.Counters[name]
		switch {
		case !aok:
			diffs = append(diffs, fmt.Sprintf("  %s: missing in first file, %d in second", name, bv))
		case !bok:
			diffs = append(diffs, fmt.Sprintf("  %s: %d in first file, missing in second", name, av))
		case av != bv:
			diffs = append(diffs, fmt.Sprintf("  %s: %d != %d", name, av, bv))
		}
	}
	return diffs
}

// Command tracegen simulates and inspects GPU kernel execution traces —
// the raw material of Decepticon's level-1 fingerprinting. It prints a
// trace as CSV, renders the fingerprint image as terminal art, and runs
// the trace analyses (layer detection, XLA-region detection).
//
// Usage:
//
//	tracegen -arch large -source huggingface                 # CSV to stdout
//	tracegen -arch base -source google -framework tensorflow -ascii
//	tracegen -arch large -source nvidia-tf -framework tensorflow -xla -analyze
//	tracegen -arch base -source meta -short -randomize -ascii
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"decepticon/internal/gpusim"
	"decepticon/internal/traceimg"
	"decepticon/internal/transformer"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	var (
		arch      = flag.String("arch", "base", "architecture: tiny|mini|small|medium|base|large")
		source    = flag.String("source", "huggingface", "release source name (seeds the fingerprint)")
		framework = flag.String("framework", "pytorch", "framework: pytorch|tensorflow|mxnet")
		tensor    = flag.Bool("tensorcores", false, "NVIDIA-style half-precision gemms")
		short     = flag.Bool("short", false, "Meta-style short reduction kernels")
		xla       = flag.Bool("xla", false, "XLA-style fused irregular execution")
		randomize = flag.Bool("randomize", false, "enable the kernel-randomization countermeasure")
		seed      = flag.Uint64("seed", 1, "measurement seed")
		jitter    = flag.Float64("jitter", 0, "measurement noise in µs")
		ascii     = flag.Bool("ascii", false, "print the fingerprint image as terminal art")
		pngPath   = flag.String("png", "", "write the fingerprint image as a grayscale PNG to this path")
		size      = flag.Int("size", 48, "fingerprint image size for -ascii")
		analyze   = flag.Bool("analyze", false, "run layer/XLA detection instead of dumping the trace")
	)
	flag.Parse()

	cfg, ok := transformer.Family()[*arch]
	if !ok {
		log.Fatalf("unknown architecture %q", *arch)
	}
	var fw gpusim.Framework
	switch *framework {
	case "pytorch":
		fw = gpusim.PyTorch
	case "tensorflow":
		fw = gpusim.TensorFlow
	case "mxnet":
		fw = gpusim.MXNet
	default:
		log.Fatalf("unknown framework %q", *framework)
	}
	prof := gpusim.Profile{
		Source:           *source,
		Framework:        fw,
		TensorCores:      *tensor,
		ShortKernels:     *short,
		XLA:              *xla,
		RandomizeKernels: *randomize,
		Seed:             uint64(len(*source))*1337 + 7, // release identity from the source name
	}
	trace := gpusim.SimulateTransformer(cfg, nil, prof, gpusim.Options{
		MeasureSeed: *seed, JitterMagnitude: *jitter,
	})

	if *pngPath != "" {
		im := traceimg.Render(traceimg.StripXLA(traceimg.StripMemcpy(trace)), *size)
		f, err := os.Create(*pngPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := im.WritePNG(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *pngPath)
		return
	}

	switch {
	case *analyze:
		execs, unique := trace.KernelCensus()
		fmt.Printf("model:          %s/%s on %s\n", *source, *arch, fw)
		fmt.Printf("kernels:        %d executions of %d unique kernels\n", execs, unique)
		fmt.Printf("duration:       %.1f µs (peak kernel %.2f µs)\n", trace.Duration(), trace.PeakDuration())
		fmt.Printf("layers detected: %d (true: %d)\n", traceimg.DetectLayerCount(trace, 32), cfg.Layers)
		if start, end, found := traceimg.XLARegion(trace); found {
			fmt.Printf("XLA region:     execs [%d, %d)\n", start, end)
			stripped := traceimg.StripXLA(trace)
			fmt.Printf("after stripping: %d layers detected\n", traceimg.DetectLayerCount(stripped, 32))
		}
	case *ascii:
		im := traceimg.Render(traceimg.StripXLA(trace), *size)
		fmt.Print(im.ASCII())
	default:
		if err := traceimg.WriteCSV(trace, os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

// Command zoo builds the model population and prints its catalog: every
// pre-trained release (source, framework, architecture, language, casing)
// and every fine-tuned victim with its task and dev accuracy.
//
// Usage:
//
//	zoo                # reduced population
//	zoo -scale full    # the paper's 70 + 170 models
//
// Ctrl-C cancels the build at the next model boundary; requested
// -metrics and -trace artifacts are still written.
package main

import (
	"flag"
	"fmt"
	"log"

	"decepticon/internal/cliconfig"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("zoo: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var opts cliconfig.Options
	opts.RegisterCommon(flag.CommandLine)
	opts.RegisterCache(flag.CommandLine)
	flag.Parse()

	cfg, err := opts.ZooConfig()
	if err != nil {
		return err
	}
	rt, err := cliconfig.Setup(&opts)
	if err != nil {
		return err
	}
	defer rt.Close()

	cfg.Workers = opts.Workers
	cfg.Obs = rt.Registry
	cfg.OnProgress = func(stage string, done, total int) {
		if done%20 == 0 || done == total {
			log.Printf("%s %d/%d", stage, done, total)
		}
	}
	z, err := opts.LoadZoo(rt.Ctx, cfg)
	if err != nil {
		if z == nil {
			return err
		}
		log.Printf("zoo cache: %v", err)
	}

	fmt.Printf("pre-trained releases (%d):\n", len(z.Pretrained))
	fmt.Printf("%-45s %-12s %-12s %-7s %-5s %-6s\n",
		"name", "source", "framework", "arch", "lang", "cased")
	for _, p := range z.Pretrained {
		fmt.Printf("%-45s %-12s %-12s %-7s %-5s %-6v\n",
			p.Name, p.Source, p.Profile.Framework, p.ArchName, p.Language, p.Cased)
	}

	fmt.Printf("\nfine-tuned victims (%d):\n", len(z.FineTuned))
	fmt.Printf("%-60s %-8s %-8s\n", "name", "task", "dev acc")
	for _, f := range z.FineTuned {
		fmt.Printf("%-60s %-8s %-8.3f\n", f.Name, f.Task.Name, f.Model().Evaluate(f.Dev))
		// One victim's tensors in memory at a time when the zoo is
		// store-backed; a no-op for resident populations.
		f.Release()
	}
	return nil
}

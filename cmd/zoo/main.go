// Command zoo builds the model population and prints its catalog: every
// pre-trained release (source, framework, architecture, language, casing)
// and every fine-tuned victim with its task and dev accuracy.
//
// Usage:
//
//	zoo                # reduced population
//	zoo -scale full    # the paper's 70 + 170 models
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"decepticon"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("zoo: ")
	scale := flag.String("scale", "small", "zoo scale: tiny | small | full")
	work := flag.Int("workers", 0, "worker goroutines for model training (0 = all cores); the population is identical for any value")
	metrics := flag.String("metrics", "", "comma-separated snapshot files written on exit (.json = JSON, otherwise Prometheus text)")
	pprof := flag.String("pprof", "", "serve /metrics and /debug/pprof on this address (e.g. localhost:6060)")
	trace := flag.String("trace", "", "write a Chrome/Perfetto trace_event JSON file on exit (simulated clocks; byte-identical for any -workers)")
	logLvl := flag.String("log-level", "", "structured log level on stderr: debug | info | warn | error (default off)")
	flag.Parse()

	reg := decepticon.NewMetrics()
	if *trace != "" {
		tracer := decepticon.NewTracer()
		reg.SetTracer(tracer)
		defer func() {
			if err := decepticon.WriteTraceFile(tracer, *trace); err != nil {
				log.Printf("trace: %v", err)
			} else {
				log.Printf("trace written to %s", *trace)
			}
		}()
	}
	if err := decepticon.ConfigureLogging(reg, os.Stderr, *logLvl, decepticon.RunID(os.Args...)); err != nil {
		log.Fatalf("-log-level: %v", err)
	}
	if *pprof != "" {
		addr, _, err := decepticon.ServeMetrics(*pprof, reg)
		if err != nil {
			log.Fatalf("pprof server: %v", err)
		}
		log.Printf("serving metrics and pprof on http://%s", addr)
	}

	cfg := decepticon.SmallZooConfig()
	switch *scale {
	case "tiny":
		cfg = decepticon.TinyZooConfig()
	case "small":
	case "full":
		cfg = decepticon.DefaultZooConfig()
	default:
		log.Fatalf("unknown -scale %q (use tiny, small, or full)", *scale)
	}
	cfg.Workers = *work
	cfg.Obs = reg
	cfg.OnProgress = func(stage string, done, total int) {
		if done%20 == 0 || done == total {
			log.Printf("%s %d/%d", stage, done, total)
		}
	}
	z, err := decepticon.BuildZoo(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, path := range strings.Split(*metrics, ",") {
			if path = strings.TrimSpace(path); path == "" {
				continue
			}
			if err := decepticon.WriteMetricsFile(reg, path); err != nil {
				log.Printf("metrics: %v", err)
			} else {
				log.Printf("metrics written to %s", path)
			}
		}
	}()

	fmt.Printf("pre-trained releases (%d):\n", len(z.Pretrained))
	fmt.Printf("%-45s %-12s %-12s %-7s %-5s %-6s\n",
		"name", "source", "framework", "arch", "lang", "cased")
	for _, p := range z.Pretrained {
		fmt.Printf("%-45s %-12s %-12s %-7s %-5s %-6v\n",
			p.Name, p.Source, p.Profile.Framework, p.ArchName, p.Language, p.Cased)
	}

	fmt.Printf("\nfine-tuned victims (%d):\n", len(z.FineTuned))
	fmt.Printf("%-60s %-8s %-8s\n", "name", "task", "dev acc")
	for _, f := range z.FineTuned {
		fmt.Printf("%-60s %-8s %-8.3f\n", f.Name, f.Task.Name, f.Model.Evaluate(f.Dev))
	}
}

// Package decepticon is a from-scratch Go reproduction of "Decepticon:
// Attacking Secrets of Transformers" (IISWC 2023): a two-level model
// extraction attack on transfer-learned transformer models.
//
// Level 1 identifies a black-box victim's pre-trained model from its GPU
// kernel execution fingerprint (a CNN classifier over rendered
// time-series traces, §5.4), disambiguating same-profile candidates with
// query-output probes (§5.3). Level 2 clones the victim's weights from
// the identified pre-trained baseline via a rowhammer-style bit-read side
// channel, reading at most two fraction bits per weight (Algorithm 1).
//
// Everything the paper's evaluation depends on is built in-process and
// from scratch: transformer training (internal/transformer), a model zoo
// of 70 pre-trained + 170 fine-tuned releases (internal/zoo), a GPU
// kernel execution simulator standing in for CUDA profiling
// (internal/gpusim), the side channels (internal/sidechannel), and the
// attack itself (internal/core). See DESIGN.md for the system inventory
// and EXPERIMENTS.md for paper-vs-measured results.
//
// Quick start:
//
//	z := decepticon.BuildZoo(decepticon.SmallZooConfig())
//	atk := decepticon.NewAttack(z, decepticon.DefaultPrepareConfig())
//	report, err := atk.Run(z.FineTuned[0], decepticon.RunOptions{})
//
// Every table and figure of the paper regenerates through the Experiments
// environment (also exposed by cmd/experiments):
//
//	exp := decepticon.NewExperiments(decepticon.ScaleSmall)
//	exp.Run("fig14", os.Stdout)
//
// The heavy phases — zoo construction, trace measurement, and -all attack
// campaigns — run on a bounded worker pool (internal/parallel). The
// Workers fields on ZooConfig, PrepareConfig, RunOptions, and Experiments
// bound the goroutine count (<= 0 means all cores); every stochastic item
// derives its seed from its own name or index, so results are
// byte-for-byte identical for any worker count. See the "Parallelism &
// determinism" section of README.md.
package decepticon

import (
	"decepticon/internal/core"
	"decepticon/internal/experiments"
	"decepticon/internal/extract"
	"decepticon/internal/zoo"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// Zoo is the model population: pre-trained releases and their
	// fine-tuned descendants (the victims).
	Zoo = zoo.Zoo
	// ZooConfig controls zoo construction.
	ZooConfig = zoo.BuildConfig
	// Pretrained is one pre-trained model release.
	Pretrained = zoo.Pretrained
	// FineTuned is a black-box victim model.
	FineTuned = zoo.FineTuned
	// Attack is a prepared Decepticon instance.
	Attack = core.Attack
	// PrepareConfig controls level-1 classifier training.
	PrepareConfig = core.PrepareConfig
	// RunOptions controls one attack run.
	RunOptions = core.RunOptions
	// Report is the outcome of one end-to-end attack.
	Report = core.Report
	// Campaign aggregates the outcome of attacking many victims
	// (Attack.RunAll).
	Campaign = core.Campaign
	// ExtractionConfig tunes the selective weight extraction.
	ExtractionConfig = extract.Config
	// ExtractionStats is the extraction cost/correctness accounting.
	ExtractionStats = extract.Stats
	// Experiments regenerates the paper's tables and figures.
	Experiments = experiments.Env
	// Scale selects the experiment budget.
	Scale = experiments.Scale
)

// Experiment scales.
const (
	// ScaleSmall runs on the reduced zoo (fast; tests and demos).
	ScaleSmall = experiments.ScaleSmall
	// ScaleFull runs on the paper-sized population (70 pre-trained, 170
	// fine-tuned models; several minutes on one core).
	ScaleFull = experiments.ScaleFull
)

// DefaultZooConfig returns the paper-sized population configuration.
func DefaultZooConfig() ZooConfig { return zoo.DefaultBuildConfig() }

// SmallZooConfig returns a reduced population for fast runs.
func SmallZooConfig() ZooConfig { return zoo.SmallBuildConfig() }

// TraceOnlyZooConfig returns a population with minimal training — enough
// for fingerprint-only studies.
func TraceOnlyZooConfig() ZooConfig { return zoo.TraceOnlyBuildConfig() }

// BuildZoo trains the model population described by cfg.
func BuildZoo(cfg ZooConfig) *Zoo { return zoo.Build(cfg) }

// BuildOrLoadZoo loads the population from cachePath when present,
// otherwise builds it and writes the cache. An empty cachePath always
// builds. A non-nil error reports a cache problem; the returned zoo is
// usable either way.
func BuildOrLoadZoo(cfg ZooConfig, cachePath string) (*Zoo, error) {
	return zoo.BuildOrLoad(cfg, cachePath)
}

// DefaultPrepareConfig returns the standard level-1 training setup.
func DefaultPrepareConfig() PrepareConfig { return core.DefaultPrepareConfig() }

// NewAttack prepares a Decepticon attack over the candidate pool z:
// it collects trace measurements of every model and trains the
// pre-trained model extractor.
func NewAttack(z *Zoo, cfg PrepareConfig) *Attack { return core.Prepare(z, cfg) }

// DefaultExtractionConfig returns the paper's selective-extraction
// operating point (0.001 skip threshold, ≤2 bits per weight).
func DefaultExtractionConfig() ExtractionConfig { return extract.DefaultConfig() }

// NewExperiments returns an experiment environment at the given scale.
func NewExperiments(scale Scale) *Experiments { return experiments.NewEnv(scale) }

// ExperimentIDs lists every reproducible table/figure id.
func ExperimentIDs() []string { return experiments.IDs() }

// ExperimentTitles lists "id: title" for every experiment.
func ExperimentTitles() []string { return experiments.Titles() }

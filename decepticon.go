// Package decepticon is a from-scratch Go reproduction of "Decepticon:
// Attacking Secrets of Transformers" (IISWC 2023): a two-level model
// extraction attack on transfer-learned transformer models.
//
// Level 1 identifies a black-box victim's pre-trained model from its GPU
// kernel execution fingerprint (a CNN classifier over rendered
// time-series traces, §5.4), disambiguating same-profile candidates with
// query-output probes (§5.3). Level 2 clones the victim's weights from
// the identified pre-trained baseline via a rowhammer-style bit-read side
// channel, reading at most two fraction bits per weight (Algorithm 1).
//
// Everything the paper's evaluation depends on is built in-process and
// from scratch: transformer training (internal/transformer), a model zoo
// of 70 pre-trained + 170 fine-tuned releases (internal/zoo), a GPU
// kernel execution simulator standing in for CUDA profiling
// (internal/gpusim), the side channels (internal/sidechannel), and the
// attack itself (internal/core). See DESIGN.md for the system inventory
// and EXPERIMENTS.md for paper-vs-measured results.
//
// Quick start:
//
//	z := decepticon.MustBuildZoo(decepticon.SmallZooConfig())
//	atk, _ := decepticon.NewAttack(z, decepticon.DefaultPrepareConfig())
//	report, err := atk.Run(z.FineTuned[0], decepticon.RunOptions{})
//
// Every table and figure of the paper regenerates through the Experiments
// environment (also exposed by cmd/experiments):
//
//	exp := decepticon.NewExperiments(decepticon.ScaleSmall)
//	exp.Run("fig14", os.Stdout)
//
// The heavy phases — zoo construction, trace measurement, and -all attack
// campaigns — run on a bounded worker pool (internal/parallel). The
// Workers fields on ZooConfig, PrepareConfig, RunOptions, and Experiments
// bound the goroutine count (<= 0 means all cores); every stochastic item
// derives its seed from its own name or index, so results are
// byte-for-byte identical for any worker count. See the "Parallelism &
// determinism" section of README.md.
//
// Every heavy phase also has a context-aware variant (BuildZooContext,
// NewAttackContext, Attack.RunContext, Attack.RunAllContext,
// Attack.RunAllStream): cancelling the context interrupts the work at
// the next stage boundary, and a cancelled extraction checkpoints and
// reports Report.ExtractInterrupted exactly as a read-budget exhaustion
// does, so a Ctrl-C'd campaign resumes byte-identically with
// RunOptions.Resume. Campaigns can stream per-victim reports in
// deterministic order with bounded memory via Attack.RunAllStream; see
// DESIGN.md §11 for the pipeline and cancellation contracts.
package decepticon

import (
	"context"
	"io"

	"decepticon/internal/core"
	"decepticon/internal/experiments"
	"decepticon/internal/extract"
	"decepticon/internal/fingerprint"
	"decepticon/internal/obs"
	"decepticon/internal/pipeline"
	"decepticon/internal/sidechannel"
	"decepticon/internal/zoo"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// Zoo is the model population: pre-trained releases and their
	// fine-tuned descendants (the victims).
	Zoo = zoo.Zoo
	// ZooConfig controls zoo construction.
	ZooConfig = zoo.BuildConfig
	// Pretrained is one pre-trained model release.
	Pretrained = zoo.Pretrained
	// FineTuned is a black-box victim model.
	FineTuned = zoo.FineTuned
	// Attack is a prepared Decepticon instance.
	Attack = core.Attack
	// PrepareConfig controls level-1 classifier training.
	PrepareConfig = core.PrepareConfig
	// RunOptions controls one attack run.
	RunOptions = core.RunOptions
	// Report is the outcome of one end-to-end attack.
	Report = core.Report
	// Campaign aggregates the outcome of attacking many victims
	// (Attack.RunAll).
	Campaign = core.Campaign
	// Modality names one level-1 measurement channel (kernel trace,
	// power/thermal, aggregate counters). Select with
	// PrepareConfig.Modalities and RunOptions.Modalities; jam sensors at
	// attack time with RunOptions.Jammed.
	Modality = fingerprint.Modality
	// ReportStream yields one *Report per victim in deterministic input
	// order with bounded buffering (Attack.RunAllStream).
	ReportStream = core.ReportStream
	// Clock is the pipeline's injectable time source (see
	// RunOptions.Clock); the default is a deterministic simulated clock.
	Clock = pipeline.Clock
	// ExtractionConfig tunes the selective weight extraction.
	ExtractionConfig = extract.Config
	// ExtractionStats is the extraction cost/correctness accounting.
	ExtractionStats = extract.Stats
	// RetryPolicy controls how the extraction reacts to channel faults
	// (bounded exponential backoff, per-tensor retry budgets, read-repeat
	// escalation on suspected stuck bits). Set via ExtractionConfig.Retry.
	RetryPolicy = extract.RetryPolicy
	// FaultPlan injects deterministic, seeded channel faults (transient
	// read errors, stuck-at bits, region outages) into the rowhammer
	// oracle. Pass via RunOptions.FaultPlan.
	FaultPlan = sidechannel.FaultPlan
	// StuckRange pins a weight-index range of a tensor to stuck-at-zero
	// bits (FaultPlan.StuckRanges).
	StuckRange = sidechannel.StuckRange
	// Outage marks a simulated-clock window in which a tensor's region is
	// unreadable (FaultPlan.Outages).
	Outage = sidechannel.Outage
	// Experiments regenerates the paper's tables and figures.
	Experiments = experiments.Env
	// Scale selects the experiment budget.
	Scale = experiments.Scale
	// Metrics is a registry of named counters, gauges, and timers. Attach
	// one via ZooConfig.Obs, PrepareConfig.Obs (carried into Attack), or
	// Experiments.Obs, then export with Snapshot.
	Metrics = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a Metrics registry,
	// serializable as JSON or Prometheus text.
	MetricsSnapshot = obs.Snapshot
	// Tracer records hierarchical spans on deterministic simulated
	// clocks and exports Chrome/Perfetto trace_event JSON. Attach via
	// Metrics.SetTracer; a nil Tracer is a valid no-op.
	Tracer = obs.Tracer
	// TraceEvent is one exported trace_event record.
	TraceEvent = obs.TraceEvent
	// FlightRecorder is a bounded ring of the most recent trace and
	// fault events — the black-box record dumped when an extraction is
	// interrupted or fails. Attach via Metrics.SetFlight.
	FlightRecorder = obs.FlightRecorder
	// FlightEvent is one retained flight-recorder entry.
	FlightEvent = obs.FlightEvent
	// FlightDump is the serialized form of a flight-recorder dump.
	FlightDump = obs.FlightDump
)

// Measurement modalities (see DESIGN.md §14).
const (
	// ModalityTrace is the paper's kernel launch timeline channel,
	// identified by the CNN fingerprint classifier. The default.
	ModalityTrace = fingerprint.ModalityTrace
	// ModalityPower is the simulated board power/thermal channel
	// (Energon-style), identified by a dense classifier.
	ModalityPower = fingerprint.ModalityPower
	// ModalityCounters is the simulated aggregate profiler-counter
	// channel (InferNet-style), identified by a dense classifier.
	ModalityCounters = fingerprint.ModalityCounters
)

// ParseModalities parses a comma-separated modality list (the
// cmd/decepticon -modalities syntax). An empty string returns nil (the
// kernel-trace channel alone); unknown or duplicate names are errors.
func ParseModalities(s string) ([]Modality, error) {
	return fingerprint.ParseModalities(s)
}

// Experiment scales.
const (
	// ScaleSmall runs on the reduced zoo (fast; tests and demos).
	ScaleSmall = experiments.ScaleSmall
	// ScaleFull runs on the paper-sized population (70 pre-trained, 170
	// fine-tuned models; several minutes on one core).
	ScaleFull = experiments.ScaleFull
)

// DefaultZooConfig returns the paper-sized population configuration.
func DefaultZooConfig() ZooConfig { return zoo.DefaultBuildConfig() }

// SmallZooConfig returns a reduced population for fast runs.
func SmallZooConfig() ZooConfig { return zoo.SmallBuildConfig() }

// TraceOnlyZooConfig returns a population with minimal training — enough
// for fingerprint-only studies.
func TraceOnlyZooConfig() ZooConfig { return zoo.TraceOnlyBuildConfig() }

// TinyZooConfig returns the smallest useful population (a few tiny
// architectures, seconds to build) — for smoke tests and metrics
// plumbing checks, not for reproducing paper numbers.
func TinyZooConfig() ZooConfig { return zoo.TinyBuildConfig() }

// BuildZoo trains the model population described by cfg. It fails only
// on a malformed configuration (no catalog entries selected, or more
// models requested than the catalog holds).
func BuildZoo(cfg ZooConfig) (*Zoo, error) { return zoo.Build(cfg) }

// BuildZooContext is BuildZoo with cooperative cancellation: a
// cancelled ctx stops the build at the next model boundary and returns
// the context's error (wrapped).
func BuildZooContext(ctx context.Context, cfg ZooConfig) (*Zoo, error) {
	return zoo.BuildContext(ctx, cfg)
}

// MustBuildZoo is BuildZoo for known-good configurations; it panics on
// error. The package's own presets (DefaultZooConfig, SmallZooConfig,
// TraceOnlyZooConfig) are always valid.
func MustBuildZoo(cfg ZooConfig) *Zoo { return zoo.MustBuild(cfg) }

// BuildOrLoadZoo loads the population from cachePath when present,
// otherwise builds it and writes the cache. An empty cachePath always
// builds. A non-nil error reports a cache problem; the returned zoo is
// usable either way.
func BuildOrLoadZoo(cfg ZooConfig, cachePath string) (*Zoo, error) {
	return zoo.BuildOrLoad(cfg, cachePath)
}

// BuildOrLoadZooContext is BuildOrLoadZoo with cooperative cancellation
// of the build phase (loading an existing cache is quick and never
// cancelled). On cancellation the returned zoo is nil.
func BuildOrLoadZooContext(ctx context.Context, cfg ZooConfig, cachePath string) (*Zoo, error) {
	return zoo.BuildOrLoadContext(ctx, cfg, cachePath)
}

// ZooStoreStats reports what a store open did: how many models were
// trained, reused from existing objects, or imported from a legacy cache.
type ZooStoreStats = zoo.StoreStats

// BuildOrOpenZooStore materializes the population from a content-addressed
// store directory: models whose configuration hash matches an existing
// object are served as lazy handles (loaded on first use, releasable), and
// only entries whose inputs changed are retrained. A non-empty legacyCache
// naming a monolithic cache built with the same config seeds a fresh store
// by import instead of retraining.
func BuildOrOpenZooStore(ctx context.Context, cfg ZooConfig, dir, legacyCache string) (*Zoo, *ZooStoreStats, error) {
	return zoo.BuildOrOpenStore(ctx, cfg, dir, legacyCache)
}

// DefaultPrepareConfig returns the standard level-1 training setup.
func DefaultPrepareConfig() PrepareConfig { return core.DefaultPrepareConfig() }

// NewAttack prepares a Decepticon attack over the candidate pool z:
// it collects trace measurements of every model and trains the
// pre-trained model extractor. It fails only on a malformed
// configuration (e.g. a non-positive trace image size).
func NewAttack(z *Zoo, cfg PrepareConfig) (*Attack, error) { return core.Prepare(z, cfg) }

// NewAttackContext is NewAttack with cooperative cancellation:
// classifier training aborts at the next epoch boundary when ctx is
// cancelled and the context's error is returned (wrapped).
func NewAttackContext(ctx context.Context, z *Zoo, cfg PrepareConfig) (*Attack, error) {
	return core.PrepareContext(ctx, z, cfg)
}

// NewMetrics returns an empty metrics registry. See internal/obs for
// the instrument semantics; a nil *Metrics is a valid no-op everywhere
// one is accepted.
func NewMetrics() *Metrics { return obs.New() }

// WriteMetricsFile snapshots m and writes it to path: ".json" files get
// the JSON encoding, everything else Prometheus text exposition.
func WriteMetricsFile(m *Metrics, path string) error {
	return m.Snapshot().WriteFile(path)
}

// ServeMetrics starts a background HTTP server on addr exposing
// /metrics (Prometheus), /metrics.json, /debug/vars, and
// /debug/pprof/*. It returns the bound address (useful with ":0") and a
// shutdown function that drains in-flight requests and closes the
// listener; callers that want process-lifetime serving never call it.
func ServeMetrics(addr string, m *Metrics) (string, func(context.Context) error, error) {
	return obs.Serve(addr, m)
}

// NewTracer returns an empty tracer. Attach it with
// Metrics.SetTracer before running the pipeline, then export with
// WriteTraceFile. Trace files contain only simulated clocks, so they
// are byte-identical for any worker count.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewFlightRecorder returns a flight recorder retaining the last
// `capacity` events (<= 0 selects the default of 512). Attach it with
// Metrics.SetFlight; set its RunID field to tag dumps.
func NewFlightRecorder(capacity int) *FlightRecorder {
	return obs.NewFlightRecorder(capacity)
}

// RunID derives a stable run identifier from the given labels
// (typically os.Args) for tagging logs and flight dumps.
func RunID(labels ...string) string { return obs.RunID(labels...) }

// ConfigureLogging attaches a leveled structured text logger to the
// registry, writing to w with the run id on every record. level is the
// -log-level flag syntax: debug, info, warn, error, or "" / "off" for
// disabled (a no-op). An unknown level is an error.
func ConfigureLogging(m *Metrics, w io.Writer, level, runID string) error {
	lvl, enabled, err := obs.ParseLogLevel(level)
	if err != nil || !enabled {
		return err
	}
	m.SetLogger(obs.NewLogger(w, lvl, runID))
	return nil
}

// WriteTraceFile exports a tracer as a Chrome/Perfetto-loadable
// trace_event JSON file.
func WriteTraceFile(t *Tracer, path string) error { return t.WriteFile(path) }

// ReadFlightFile parses a flight-recorder dump file.
func ReadFlightFile(path string) (FlightDump, error) { return obs.ReadFlightFile(path) }

// DefaultExtractionConfig returns the paper's selective-extraction
// operating point (0.001 skip threshold, ≤2 bits per weight).
func DefaultExtractionConfig() ExtractionConfig { return extract.DefaultConfig() }

// DefaultRetryPolicy returns the standard fault reaction (8 attempts,
// exponential backoff from 32 to 4096 simulated rounds, 4096 retries per
// tensor, 5-vote escalation).
func DefaultRetryPolicy() RetryPolicy { return extract.DefaultRetryPolicy() }

// ParseFaultPlan parses a "key=value,key=value" fault-plan spec (the
// cmd/decepticon -faults syntax): seed, transient, recovery, stuck,
// outage, period. An empty spec returns a nil plan (fault-free channel).
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	return sidechannel.ParseFaultPlan(spec)
}

// ErrExtractionInterrupted is returned (wrapped) by an extraction that
// hit its read budget — or whose context was cancelled — after
// checkpointing; match with errors.Is. Campaign runs surface it as
// Report.ExtractInterrupted instead of an error.
var ErrExtractionInterrupted = extract.ErrInterrupted

// NewExperiments returns an experiment environment at the given scale.
func NewExperiments(scale Scale) *Experiments { return experiments.NewEnv(scale) }

// ExperimentIDs lists every reproducible table/figure id.
func ExperimentIDs() []string { return experiments.IDs() }

// ExperimentTitles lists "id: title" for every experiment.
func ExperimentTitles() []string { return experiments.Titles() }

package decepticon_test

// Public-API tests: everything here uses only the root package, exactly
// as an external consumer would.

import (
	"bytes"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"decepticon"
)

var (
	apiOnce sync.Once
	apiZoo  *decepticon.Zoo
	apiAtk  *decepticon.Attack
)

func getAPI(t *testing.T) (*decepticon.Zoo, *decepticon.Attack) {
	t.Helper()
	apiOnce.Do(func() {
		cfg := decepticon.TraceOnlyZooConfig()
		cfg.NumPretrained = 6
		cfg.NumFineTuned = 8
		apiZoo = decepticon.MustBuildZoo(cfg)
		atk, err := decepticon.NewAttack(apiZoo, decepticon.DefaultPrepareConfig())
		if err != nil {
			panic(err)
		}
		apiAtk = atk
	})
	return apiZoo, apiAtk
}

func TestPublicEndToEnd(t *testing.T) {
	z, atk := getAPI(t)
	rep, err := atk.Run(z.FineTuned[0], decepticon.RunOptions{MeasureSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Identified == "" {
		t.Fatal("no identification")
	}
	if rep.Extract == nil {
		t.Fatal("no extraction stats")
	}
	if rep.MatchRate < 0.9 {
		t.Fatalf("match rate %v", rep.MatchRate)
	}
	if rep.Extract.ReductionFactor() < 5 {
		t.Fatalf("reduction %v", rep.Extract.ReductionFactor())
	}
}

func TestPublicZooCache(t *testing.T) {
	cfg := decepticon.TraceOnlyZooConfig()
	cfg.NumPretrained = 2
	cfg.NumFineTuned = 2
	path := filepath.Join(t.TempDir(), "zoo.gob.gz")
	a, err := decepticon.BuildOrLoadZoo(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := decepticon.BuildOrLoadZoo(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Pretrained[0].Name != b.Pretrained[0].Name {
		t.Fatal("cache round trip changed the population")
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	ids := decepticon.ExperimentIDs()
	if len(ids) < 20 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	titles := decepticon.ExperimentTitles()
	if len(titles) != len(ids) {
		t.Fatal("titles/ids mismatch")
	}
	// Zoo-free experiments run through the public Experiments type.
	env := decepticon.NewExperiments(decepticon.ScaleSmall)
	var buf bytes.Buffer
	if err := env.Run("fig10", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig 10") {
		t.Fatal("experiment output missing header")
	}
	if err := env.Run("not-an-experiment", &buf); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestPublicExtractionConfig(t *testing.T) {
	cfg := decepticon.DefaultExtractionConfig()
	if cfg.SkipThreshold != 0.001 || cfg.MaxBitsPerWeight != 2 {
		t.Fatalf("unexpected default operating point: %+v", cfg)
	}
}

// Adversarial attack: what the extracted clone is worth (paper §6.2).
//
// Runs the full two-level attack to obtain a clone, then crafts
// gradient-guided token-substitution inputs with the clone and transfers
// them to the black-box victim. Compares against substitute models
// distilled from the victim's prediction records — the paper's Fig 18
// baselines, which agree with the victim on predictions but transfer
// adversarial inputs far worse.
//
// Run with: go run ./examples/adversarial
package main

import (
	"fmt"
	"log"

	"decepticon"
)

func main() {
	log.SetFlags(0)

	cfg := decepticon.SmallZooConfig()
	cfg.NumPretrained = 8
	cfg.NumFineTuned = 10
	log.Println("building the model zoo...")
	z := decepticon.MustBuildZoo(cfg)

	log.Println("preparing the attack...")
	atk, err := decepticon.NewAttack(z, decepticon.DefaultPrepareConfig())
	if err != nil {
		log.Fatal(err)
	}

	victim := z.FineTuned[1]
	log.Printf("attacking %q with the adversarial stage (this distills substitutes)...", victim.Name)
	rep, err := atk.Run(victim, decepticon.RunOptions{
		MeasureSeed:    2,
		Adversarial:    true,
		NumSubstitutes: 4,
		FlipsPerInput:  2,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("victim: %s\n", rep.Victim)
	fmt.Printf("clone-driven adversarial success: %.1f%% (paper: 90.6%%)\n", 100*rep.AdvClone)
	best := 0.0
	for i, s := range rep.AdvSubstitutes {
		fmt.Printf("substitute %d:                     %.1f%%\n", i+1, 100*s)
		if s > best {
			best = s
		}
	}
	fmt.Printf("best substitute:                  %.1f%% (paper: up to 38%%)\n", 100*best)
}

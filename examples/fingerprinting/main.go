// Fingerprinting: level 1 of Decepticon in isolation.
//
// Collects time-series kernel execution traces of every model in the zoo,
// trains the CNN pre-trained-model extractor on 80% of them, and reports
// identification accuracy on the held-out 20% — clean and under injected
// measurement noise (the paper's Fig 14 setup). Finishes with the
// query-output secondary fingerprint resolving a profile-ambiguity
// cluster (cased/uncased/CamemBERT/RuBERT analogs).
//
// Run with: go run ./examples/fingerprinting
package main

import (
	"fmt"
	"log"

	"decepticon"
	"decepticon/internal/fingerprint"
	"decepticon/internal/queryfp"
)

func main() {
	log.SetFlags(0)

	// Fingerprints depend only on each release's execution profile, so the
	// trace-only zoo (minimal training) is enough here.
	log.Println("building a trace-only zoo...")
	z := decepticon.MustBuildZoo(decepticon.TraceOnlyZooConfig())

	log.Println("collecting traces and training the CNN extractor...")
	d := fingerprint.BuildDataset(z, 5, 1, 0)
	train, test := d.Split(0.8, 2)
	clf := fingerprint.NewClassifier(64, d.Classes, 3)
	clf.Train(train, fingerprint.TrainConfig{Epochs: 60, LR: 0.002, Seed: 4})

	fmt.Printf("identification accuracy: train %.2f, test %.2f\n",
		clf.Accuracy(train), clf.Accuracy(test))
	fmt.Println("noise robustness (count of perturbed kernels at ±2µs):")
	for _, n := range []int{1, 4, 16} {
		fmt.Printf("  %2d kernels: %.2f\n", n, clf.NoiseAccuracy(test, n, 2, 9))
	}

	// Ambiguity resolution: the cluster members share one execution
	// fingerprint; only query probes separate them.
	anchor := z.PretrainedByName("huggingface_bert-small-uncased")
	cluster := z.AmbiguousWith(anchor)
	fmt.Printf("\nambiguity cluster (%d members share one trace fingerprint):\n", len(cluster))
	cands := make([]*queryfp.Candidate, len(cluster))
	for i, p := range cluster {
		fmt.Printf("  %s (%s, cased=%v)\n", p.Name, p.Language, p.Cased)
		cands[i] = &queryfp.Candidate{Name: p.Name, Vocab: p.Vocab}
	}
	for _, f := range z.FineTuned {
		if f.Pretrained != cluster[len(cluster)-1] {
			continue
		}
		res := queryfp.Detect(cands, func(text string) []float32 {
			_, probs := f.ClassifyText(text)
			return probs
		}, 4)
		fmt.Printf("victim %q resolved to %q with %d queries (true: %q)\n",
			f.Name, res.Best, res.Queries, f.Pretrained.Name)
		break
	}
}

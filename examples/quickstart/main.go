// Quickstart: the smallest end-to-end Decepticon run.
//
//  1. Build a reduced model zoo (pre-trained releases + fine-tuned
//     black-box victims).
//  2. Prepare the attack (collect traces, train the fingerprint CNN).
//  3. Attack one victim: identify its pre-trained model from the kernel
//     trace, then clone its weights through the bit-read side channel.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"decepticon"
)

func main() {
	log.SetFlags(0)

	// A reduced zoo keeps this demo to about a minute on one core.
	cfg := decepticon.SmallZooConfig()
	cfg.NumPretrained = 8
	cfg.NumFineTuned = 10
	log.Println("building the model zoo (this trains real models)...")
	z := decepticon.MustBuildZoo(cfg)

	log.Println("preparing the attack (training the fingerprint CNN)...")
	atk, err := decepticon.NewAttack(z, decepticon.DefaultPrepareConfig())
	if err != nil {
		log.Fatal(err)
	}

	victim := z.FineTuned[3]
	log.Printf("attacking black-box victim %q", victim.Name)
	rep, err := atk.Run(victim, decepticon.RunOptions{MeasureSeed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("identified pre-trained model: %s (correct: %v)\n",
		rep.Identified, rep.CorrectIdentity)
	if rep.Extract != nil {
		fmt.Printf("clone agrees with victim on %.0f%% of held-out inputs\n", 100*rep.MatchRate)
		fmt.Printf("victim accuracy %.3f, clone accuracy %.3f\n", rep.VictimAcc, rep.CloneAcc)
		fmt.Printf("side-channel bits read: %d (a %.0fx reduction over full readout)\n",
			rep.Extract.LogicalBitsRead(), rep.Extract.ReductionFactor())
	}
}

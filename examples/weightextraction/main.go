// Weight extraction: level 2 of Decepticon in isolation.
//
// Assumes level 1 already identified the victim's pre-trained model and
// demonstrates the selective weight extraction (Algorithm 1): the
// task-specific last layer is read in full through the rowhammer channel,
// while for every backbone weight at most two fraction bits — the ones
// whose place value covers the expected fine-tuning gap — are read.
//
// Run with: go run ./examples/weightextraction
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"decepticon"
	"decepticon/internal/extract"
	"decepticon/internal/sidechannel"
	"decepticon/internal/stats"
)

func main() {
	log.SetFlags(0)

	cfg := decepticon.SmallZooConfig()
	cfg.NumPretrained = 4
	cfg.NumFineTuned = 4
	log.Println("building a small zoo...")
	z := decepticon.MustBuildZoo(cfg)

	victim := z.FineTuned[0]
	log.Printf("victim: %s (task %s)", victim.Name, victim.Task.Name)

	// Full selective extraction (no early stop) — every backbone weight
	// goes through Algorithm 1, which is what the Fig 16 accounting below
	// measures.
	oracle := sidechannel.NewOracle(victim.Model())
	ex := &extract.Extractor{
		Pre:    victim.Pretrained.Model(), // identified by level 1
		Oracle: oracle,
		Cfg:    extract.DefaultConfig(),
	}
	clone, st, err := ex.Run(victim.Task.Labels, victim.Dev)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("── selective extraction ──")
	fmt.Printf("backbone weights:        %d\n", st.WeightsTotal)
	fmt.Printf("skipped (|w| < 0.001):   %d (%.1f%%)\n", st.WeightsSkipped, 100*st.SkipRate())
	fmt.Printf("weights correctly pruned: %.1f%% (paper: ~90%%)\n", 100*st.WeightsCorrectlyPruned())
	fmt.Printf("bits correctly excluded:  %.1f%% (paper: ~85%%)\n", 100*st.BitsCorrectlyExcluded())
	fmt.Printf("bits read:               %d backbone + %d head (full last-layer readout)\n",
		st.BitsChecked, st.HeadBitsRead)
	fmt.Printf("rowhammer rounds:        %d (at %d per bit)\n",
		oracle.HammerRounds(), sidechannel.HammerRoundsPerBit)
	fmt.Printf("reduction vs full model: %.1fx\n", st.ReductionFactor())
	fmt.Printf("encoder layers extracted: %d of %d (plus embeddings and head)\n",
		st.LayersExtracted, st.LayersTotal)

	match := stats.MatchRate(victim.Model().Predictions(victim.Dev), clone.Predictions(victim.Dev))
	fmt.Printf("clone/victim agreement:  %.1f%% (paper: 94%%)\n", 100*match)

	// With black-box queries for the stop rule, the attacker can often
	// stop even earlier: the head plus the pre-trained backbone may
	// already reproduce the victim.
	oracle2 := sidechannel.NewOracle(victim.Model())
	ex2 := &extract.Extractor{
		Pre:    victim.Pretrained.Model(),
		Oracle: oracle2,
		Cfg:    extract.DefaultConfig(),
		Victim: victim.Model().Predict,
	}
	clone2, st2, err := ex2.Run(victim.Task.Labels, victim.Dev)
	if err != nil {
		log.Fatal(err)
	}
	match2 := stats.MatchRate(victim.Model().Predictions(victim.Dev), clone2.Predictions(victim.Dev))
	fmt.Println("── with the early-stop rule ──")
	fmt.Printf("layers extracted:        %d of %d, %d bits read, %d victim queries\n",
		st2.LayersExtracted, st2.LayersTotal, st2.BitsChecked+st2.HeadBitsRead, st2.QueriesUsed)
	fmt.Printf("reduction vs full model: %.1fx at %.1f%% agreement\n",
		st2.ReductionFactor(), 100*match2)

	// A real rowhammer channel is not clean: reads fail transiently,
	// cells stick, regions drop out. The extractor retries with backoff,
	// degrades what stays unreadable to the pre-trained baseline, and —
	// with a checkpoint path — survives being killed mid-run.
	plan := &sidechannel.FaultPlan{
		Seed: 7, TransientRate: 0.05, TransientRecovery: 3, StuckRate: 0.0005,
	}
	ckptDir, err := os.MkdirTemp("", "decepticon-ckpt")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(ckptDir)
	ckpt := filepath.Join(ckptDir, victim.Name+".ckpt")

	faulty := func(budget int64, resume bool) (*extract.Stats, *sidechannel.Oracle, error) {
		o := sidechannel.NewOracle(victim.Model())
		o.SetFaultPlan(plan)
		ex := &extract.Extractor{
			Pre:            victim.Pretrained.Model(),
			Oracle:         o,
			Cfg:            extract.DefaultConfig(),
			CheckpointPath: ckpt,
			Resume:         resume,
			ReadBudget:     budget,
		}
		_, st, err := ex.Run(victim.Task.Labels, victim.Dev)
		return st, o, err
	}

	fmt.Println("── faulty channel, interrupted and resumed ──")
	// Kill the extraction partway through via a read budget...
	_, o3, err := faulty(int64(st.PhysicalBitReads)/2, false)
	if !errors.Is(err, decepticon.ErrExtractionInterrupted) {
		log.Fatalf("expected an interrupted extraction, got %v", err)
	}
	paid := o3.BitReads + o3.FaultedReads
	fmt.Printf("interrupted after:       %d channel attempts (%d faulted)\n",
		paid, o3.FaultedReads)
	// ...and resume from the checkpoint: the remaining tensors are read,
	// nothing already extracted is re-paid.
	st4, o4, err := faulty(0, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed run paid:        %d fresh attempts (total meter %d, coverage %.1f%%)\n",
		o4.BitReads+o4.FaultedReads-paid, o4.BitReads+o4.FaultedReads, 100*st4.Coverage())
	if st4.TensorsDegraded > 0 || st4.WeightsDegraded > 0 {
		fmt.Printf("degraded to baseline:    %d tensors, %d weights (graceful degradation)\n",
			st4.TensorsDegraded, st4.WeightsDegraded)
	}
}

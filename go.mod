module decepticon

go 1.22

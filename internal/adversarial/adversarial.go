// Package adversarial implements the white-box attack the extracted clone
// enables (paper §6.2, Fig 18): gradient-guided token substitution
// (HotFlip-style) computed on a surrogate model and transferred to the
// black-box victim. It also builds the paper's comparison baseline —
// substitute models distilled from the victim's prediction records.
package adversarial

import (
	"decepticon/internal/obs"
	"decepticon/internal/rng"
	"decepticon/internal/tokenizer"
	"decepticon/internal/transformer"
)

// Perturb returns an adversarial variant of tokens: using the surrogate's
// embedding gradient at the true label, it replaces up to flips tokens
// with the first-order most loss-increasing vocabulary substitutions
// (position 0, the CLS slot, is never touched). The input slice is not
// modified.
func Perturb(surrogate *transformer.Model, tokens []int, label, flips int) []int {
	adv := append([]int(nil), tokens...)
	for f := 0; f < flips; f++ {
		surrogate.ZeroGrads()
		_, dEmb := surrogate.LossAndBackward(adv, label)
		bestScore := float32(0)
		bestPos, bestTok := -1, -1
		for pos := 1; pos < len(adv); pos++ {
			g := dEmb.Row(pos)
			cur := surrogate.TokEmb.V.Row(adv[pos])
			// score(t) = (e_t - e_cur)·g — the first-order loss increase
			// of swapping position pos to token t.
			var curDot float32
			for j := range g {
				curDot += cur[j] * g[j]
			}
			for t := tokenizer.ReservedTokens; t < surrogate.Vocab; t++ {
				if t == adv[pos] {
					continue
				}
				et := surrogate.TokEmb.V.Row(t)
				var d float32
				for j := range g {
					d += et[j] * g[j]
				}
				if score := d - curDot; score > bestScore {
					bestScore, bestPos, bestTok = score, pos, t
				}
			}
		}
		if bestPos < 0 {
			break
		}
		adv[bestPos] = bestTok
	}
	return adv
}

// Result summarizes one attack evaluation.
type Result struct {
	// Attempted counts inputs the victim originally classified correctly
	// (the attackable population).
	Attempted int
	// Successes counts adversarial variants the victim misclassified.
	Successes int
}

// SuccessRate returns Successes/Attempted (0 for an empty population).
func (r Result) SuccessRate() float64 {
	if r.Attempted == 0 {
		return 0
	}
	return float64(r.Successes) / float64(r.Attempted)
}

// Evaluate runs the transfer attack: for every example the victim gets
// right, craft an adversarial variant with the surrogate and test whether
// the victim now gets it wrong. reg (nil for none) receives the stage's
// accounting: adversarial.evaluate_seconds wall time plus
// adversarial.inputs_attacked / adversarial.successes counters. Victim
// queries are the caller's channel to meter — pass a counted closure.
func Evaluate(surrogate *transformer.Model, victim func([]int) int, examples []transformer.Example, flips int, reg *obs.Registry) Result {
	defer reg.StartSpan("adversarial.evaluate_seconds").End()
	var res Result
	for _, ex := range examples {
		if victim(ex.Tokens) != ex.Label {
			continue // already wrong; nothing to attack
		}
		res.Attempted++
		adv := Perturb(surrogate, ex.Tokens, ex.Label, flips)
		if victim(adv) != ex.Label {
			res.Successes++
		}
	}
	reg.Counter("adversarial.inputs_attacked").Add(int64(res.Attempted))
	reg.Counter("adversarial.successes").Add(int64(res.Successes))
	reg.Log().Debug("adversarial transfer evaluated",
		"attempted", res.Attempted, "successes", res.Successes,
		"rate", res.SuccessRate())
	return res
}

// BuildSubstitute reproduces the paper's baseline attacker: take a random
// pre-trained model, query the victim for prediction records on the given
// inputs, and fine-tune the substitute on those records (model extraction
// via distillation, as in [27, 32, 50]). reg (nil for none) receives
// adversarial.distill_seconds and adversarial.substitutes_built.
func BuildSubstitute(pre *transformer.Model, victim func([]int) int, inputs [][]int, numLabels int, seed uint64, reg *obs.Registry) *transformer.Model {
	defer reg.StartSpan("adversarial.distill_seconds").End()
	records := make([]transformer.Example, len(inputs))
	for i, tokens := range inputs {
		records[i] = transformer.Example{Tokens: tokens, Label: victim(tokens)}
	}
	reg.Counter("adversarial.substitutes_built").Inc()
	reg.Log().Debug("substitute distilled", "records", len(records))
	return transformer.FineTuneFrom(pre, numLabels, records, transformer.TrainConfig{
		Epochs: 6, BatchSize: 4,
		LR: 5e-5, HeadLR: 3e-2, WeightDecay: 1.0,
		Seed: seed,
	}, seed)
}

// RecordInputs samples query inputs for distillation from the task's
// input distribution (the paper collects 18K inference records; the count
// scales with our reduced models).
func RecordInputs(vocabSize, seqLen, n int, seed uint64) [][]int {
	r := rng.New(seed)
	out := make([][]int, n)
	for i := range out {
		tokens := make([]int, seqLen)
		tokens[0] = tokenizer.CLS
		for j := 1; j < seqLen; j++ {
			tokens[j] = tokenizer.ReservedTokens + r.Intn(vocabSize-tokenizer.ReservedTokens)
		}
		out[i] = tokens
	}
	return out
}

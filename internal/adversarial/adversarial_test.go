package adversarial

import (
	"sync"
	"testing"

	"decepticon/internal/tokenizer"
	"decepticon/internal/zoo"
)

var (
	zooOnce sync.Once
	testZ   *zoo.Zoo
)

func getZoo(t *testing.T) *zoo.Zoo {
	t.Helper()
	zooOnce.Do(func() {
		cfg := zoo.SmallBuildConfig()
		cfg.NumPretrained = 3
		cfg.NumFineTuned = 3
		testZ = zoo.MustBuild(cfg)
	})
	return testZ
}

func TestPerturbBasics(t *testing.T) {
	z := getZoo(t)
	victim := z.FineTuned[0]
	ex := victim.Dev[0]
	adv := Perturb(victim.Model(), ex.Tokens, ex.Label, 2)
	if len(adv) != len(ex.Tokens) {
		t.Fatalf("length changed: %d -> %d", len(ex.Tokens), len(adv))
	}
	if adv[0] != ex.Tokens[0] {
		t.Fatal("CLS position must not be perturbed")
	}
	diff := 0
	for i := range adv {
		if adv[i] != ex.Tokens[i] {
			diff++
		}
	}
	if diff == 0 || diff > 2 {
		t.Fatalf("flipped %d tokens, want 1..2", diff)
	}
	// Input must not be mutated.
	if &adv[0] == &ex.Tokens[0] {
		t.Fatal("Perturb must copy its input")
	}
	for i, tok := range victim.Dev[0].Tokens {
		if ex.Tokens[i] != tok {
			t.Fatal("Perturb mutated the input")
		}
	}
	// Flipped tokens are valid vocabulary ids.
	for _, tok := range adv {
		if tok < 0 || tok >= victim.Model().Vocab {
			t.Fatalf("token %d out of vocabulary", tok)
		}
	}
}

func TestPerturbIncreasesSurrogateLoss(t *testing.T) {
	z := getZoo(t)
	victim := z.FineTuned[0]
	m := victim.Model()
	raised := 0
	total := 0
	for _, ex := range victim.Dev {
		m.ZeroGrads()
		before, _ := m.LossAndBackward(ex.Tokens, ex.Label)
		adv := Perturb(m, ex.Tokens, ex.Label, 2)
		m.ZeroGrads()
		after, _ := m.LossAndBackward(adv, ex.Label)
		if after > before {
			raised++
		}
		total++
	}
	m.ZeroGrads()
	if float64(raised)/float64(total) < 0.75 {
		t.Fatalf("loss increased on only %d/%d inputs", raised, total)
	}
}

func TestWhiteBoxAttackBeatsDistilledSubstitute(t *testing.T) {
	// The Fig 18 mechanism: an exact-weight surrogate (here, the victim
	// itself — the ideal clone) transfers far better than a substitute
	// distilled from prediction records.
	z := getZoo(t)
	victim := z.FineTuned[0]
	white := Evaluate(victim.Model(), victim.Model().Predict, victim.Dev, 2, nil)
	if white.Attempted == 0 {
		t.Skip("victim classifies nothing correctly at this scale")
	}
	if white.SuccessRate() < 0.6 {
		t.Fatalf("white-box success %v, want >= 0.6 (paper: 0.906 for the clone)", white.SuccessRate())
	}

	pre := z.Pretrained[1]
	if pre == victim.Pretrained {
		pre = z.Pretrained[2]
	}
	inputs := RecordInputs(victim.Model().Vocab, victim.Task.SeqLen, 3*len(victim.Train), 9)
	sub := BuildSubstitute(pre.Model(), victim.Model().Predict, inputs, victim.Task.Labels, 10, nil)
	grey := Evaluate(sub, victim.Model().Predict, victim.Dev, 2, nil)
	if grey.SuccessRate() >= white.SuccessRate() {
		t.Fatalf("substitute success %v should be below white-box %v",
			grey.SuccessRate(), white.SuccessRate())
	}
}

func TestEvaluateCountsOnlyCorrectInputs(t *testing.T) {
	z := getZoo(t)
	victim := z.FineTuned[0]
	res := Evaluate(victim.Model(), victim.Model().Predict, victim.Dev, 1, nil)
	correct := 0
	for _, ex := range victim.Dev {
		if victim.Model().Predict(ex.Tokens) == ex.Label {
			correct++
		}
	}
	if res.Attempted != correct {
		t.Fatalf("attempted %d, want %d", res.Attempted, correct)
	}
	if res.Successes > res.Attempted {
		t.Fatal("successes exceed attempts")
	}
}

func TestRecordInputs(t *testing.T) {
	inputs := RecordInputs(96, 10, 25, 3)
	if len(inputs) != 25 {
		t.Fatalf("len %d", len(inputs))
	}
	for _, tokens := range inputs {
		if len(tokens) != 10 || tokens[0] != tokenizer.CLS {
			t.Fatalf("bad record input %v", tokens)
		}
		for _, tok := range tokens[1:] {
			if tok < tokenizer.ReservedTokens || tok >= 96 {
				t.Fatalf("token %d out of range", tok)
			}
		}
	}
	a := RecordInputs(96, 10, 5, 3)
	b := RecordInputs(96, 10, 5, 3)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("RecordInputs must be deterministic")
			}
		}
	}
}

func TestSuccessRateZeroSafe(t *testing.T) {
	var r Result
	if r.SuccessRate() != 0 {
		t.Fatal("empty result must be 0")
	}
}

func TestBuildSubstituteAgreesWithVictim(t *testing.T) {
	// Distillation should track the victim's *predictions* reasonably even
	// though its weights are unrelated — agreement is not the bottleneck,
	// transfer of adversarial inputs is (Fig 18).
	z := getZoo(t)
	victim := z.FineTuned[0]
	pre := z.Pretrained[1]
	inputs := RecordInputs(victim.Model().Vocab, victim.Task.SeqLen, 3*len(victim.Train), 11)
	sub := BuildSubstitute(pre.Model(), victim.Model().Predict, inputs, victim.Task.Labels, 12, nil)
	agree := 0
	for _, ex := range victim.Dev {
		if sub.Predict(ex.Tokens) == victim.Model().Predict(ex.Tokens) {
			agree++
		}
	}
	if float64(agree)/float64(len(victim.Dev)) < 0.5 {
		t.Fatalf("substitute agrees on %d/%d only", agree, len(victim.Dev))
	}
}

// Package cliconfig is the shared command-line plumbing of the
// repository's CLIs (cmd/decepticon, cmd/zoo, cmd/experiments). The
// three commands grew the same ~15 flags and the same setup/teardown
// choreography independently — registry, run id, flight recorder,
// tracer, logging, pprof server, and a tail of deferred artifact writes
// that a log.Fatal could silently skip. This package owns that
// choreography once:
//
//   - Options + Register* declare the shared flag groups on a FlagSet,
//     with one canonical help text per flag;
//   - Setup validates the options and assembles a Runtime: the metrics
//     registry with flight recorder, optional tracer, leveled logging,
//     the pprof server, the parsed fault plan, and a context that
//     cancels on SIGINT;
//   - Runtime.Close flushes every requested artifact — metrics, trace,
//     flight dump — exactly once, whether the run finished, failed, or
//     was interrupted.
//
// Commands are expected to be shaped as main() → run() error with
// `defer rt.Close()` at the top of run, so Ctrl-C produces the same
// complete set of artifacts as a clean exit.
package cliconfig

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"decepticon/internal/fingerprint"
	"decepticon/internal/obs"
	"decepticon/internal/sidechannel"
	"decepticon/internal/zoo"
)

// Options holds the flag values shared across the CLIs. Zero value plus
// the Register* calls a command needs; fields of unregistered groups
// stay empty and are ignored by Setup.
type Options struct {
	// Common group.
	Scale    string
	Workers  int
	Metrics  string
	Pprof    string
	Trace    string
	LogLevel string

	// Cache group.
	Cache         string
	Store         string
	ReleaseModels bool

	// Identify group.
	Hier bool

	// Faults group.
	Faults     string
	Checkpoint string
	Resume     bool
	ReadBudget int64
	Scheduled  bool

	// Flight group.
	Flight string

	// Modalities group.
	Modalities string
	Jam        string
}

// RegisterCommon declares the flags every CLI shares: -scale, -workers,
// -metrics, -pprof, -trace, -log-level.
func (o *Options) RegisterCommon(fs *flag.FlagSet) {
	fs.StringVar(&o.Scale, "scale", "small", "population scale: tiny | small | full")
	fs.IntVar(&o.Workers, "workers", 0, "worker goroutines for model training, trace measurement, and campaigns (0 = all cores); results are identical for any value")
	fs.StringVar(&o.Metrics, "metrics", "", "comma-separated snapshot files written on exit (.json = JSON, otherwise Prometheus text)")
	fs.StringVar(&o.Pprof, "pprof", "", "serve /metrics, /metrics.json, and /debug/pprof on this address (e.g. localhost:6060)")
	fs.StringVar(&o.Trace, "trace", "", "write a Chrome/Perfetto trace_event JSON file on exit (simulated clocks; byte-identical for any -workers)")
	fs.StringVar(&o.LogLevel, "log-level", "", "structured log level on stderr: debug | info | warn | error (default off)")
}

// RegisterCache declares the zoo-materialization group: -cache, -store,
// -release-models.
func (o *Options) RegisterCache(fs *flag.FlagSet) {
	fs.StringVar(&o.Cache, "cache", "", "zoo cache file (built once, reused afterwards)")
	fs.StringVar(&o.Store, "store", "", "content-addressed zoo store directory: models load lazily on first use, and a rerun retrains only entries whose configuration changed; with -cache set, a matching monolithic cache is imported once instead of retraining")
	fs.BoolVar(&o.ReleaseModels, "release-models", false, "drop each victim's tensors (and its backbone's) after its report; with -store the campaign's peak memory tracks the victims in flight, not the population")
}

// RegisterIdentify declares -hier.
func (o *Options) RegisterIdentify(fs *flag.FlagSet) {
	fs.BoolVar(&o.Hier, "hier", false, "identify with the two-level family→release hierarchy instead of the flat classifier alone (identification cost stays sub-linear in the zoo's release count)")
}

// LoadZoo materializes the population the options ask for: from the
// content-addressed store when -store is set (with -cache, if present,
// offered as a one-time import source), else from the monolithic -cache
// file. The zoo-affecting fields of cfg (Workers, Obs, OnProgress) are
// expected to be filled by the caller.
func (o *Options) LoadZoo(ctx context.Context, cfg zoo.BuildConfig) (*zoo.Zoo, error) {
	if o.Store != "" {
		z, _, err := zoo.BuildOrOpenStore(ctx, cfg, o.Store, o.Cache)
		return z, err
	}
	return zoo.BuildOrLoadContext(ctx, cfg, o.Cache)
}

// RegisterFaults declares the fault/checkpoint group: -faults,
// -checkpoint, -resume, -read-budget.
func (o *Options) RegisterFaults(fs *flag.FlagSet) {
	fs.StringVar(&o.Faults, "faults", "", "fault-plan spec: key=value[,key=value...] with keys seed, transient, recovery, stuck, outage, period (empty = fault-free channel)")
	fs.StringVar(&o.Checkpoint, "checkpoint", "", "directory for per-victim extraction checkpoints (created if missing)")
	fs.BoolVar(&o.Resume, "resume", false, "resume from checkpoints in -checkpoint instead of starting fresh")
	fs.Int64Var(&o.ReadBudget, "read-budget", 0, "per-victim oracle read-attempt budget; an extraction exceeding it checkpoints and reports interrupted (0 = unlimited)")
	fs.BoolVar(&o.Scheduled, "scheduled", false, "information-ordered extraction scheduler: high-value bits first, adaptive vote width, posterior early exit (deterministic; never reads more than the baseline)")
}

// RegisterFlight declares -flight.
func (o *Options) RegisterFlight(fs *flag.FlagSet) {
	fs.StringVar(&o.Flight, "flight", "", "write a flight-recorder dump to this file on exit; interrupted, failed, or degraded extractions also dump here automatically (next to the checkpoint when -checkpoint is set)")
}

// RegisterModalities declares the measurement-backend group:
// -modalities, -jam.
func (o *Options) RegisterModalities(fs *flag.FlagSet) {
	fs.StringVar(&o.Modalities, "modalities", "", "comma-separated level-1 measurement channels: trace, power, counters (empty = trace only); with several, per-modality posteriors fuse into one identification")
	fs.StringVar(&o.Jam, "jam", "", "comma-separated modalities whose sensor is jammed this run; identification degrades to the surviving modalities")
}

// ModalitySets parses the -modalities and -jam flags. The jam list must
// be a subset of the requested modalities (of trace alone when
// -modalities is empty).
func (o *Options) ModalitySets() (modalities, jammed []fingerprint.Modality, err error) {
	modalities, err = fingerprint.ParseModalities(o.Modalities)
	if err != nil {
		return nil, nil, err
	}
	jammed, err = fingerprint.ParseModalities(o.Jam)
	if err != nil {
		return nil, nil, err
	}
	requested := map[fingerprint.Modality]bool{}
	if len(modalities) == 0 {
		requested[fingerprint.ModalityTrace] = true
	}
	for _, m := range modalities {
		requested[m] = true
	}
	for _, j := range jammed {
		if !requested[j] {
			return nil, nil, fmt.Errorf("cliconfig: -jam %s is not among the requested modalities", j)
		}
	}
	return modalities, jammed, nil
}

// ZooConfig maps the -scale flag to a zoo build configuration.
func (o *Options) ZooConfig() (zoo.BuildConfig, error) {
	switch o.Scale {
	case "tiny":
		return zoo.TinyBuildConfig(), nil
	case "small":
		return zoo.SmallBuildConfig(), nil
	case "full":
		return zoo.DefaultBuildConfig(), nil
	}
	return zoo.BuildConfig{}, fmt.Errorf("unknown -scale %q (use tiny, small, or full)", o.Scale)
}

// Runtime is the assembled run environment of one CLI invocation.
type Runtime struct {
	// Ctx cancels on the first SIGINT (Ctrl-C); a second SIGINT kills
	// the process the normal way. Thread it into every long phase.
	Ctx context.Context
	// Registry is the metrics registry, with the flight recorder (and
	// tracer, when -trace is set) already attached.
	Registry *obs.Registry
	// Flight is the attached flight recorder, tagged with RunID.
	Flight *obs.FlightRecorder
	// RunID is the stable identifier derived from the command line.
	RunID string
	// Plan is the parsed -faults plan (nil for a fault-free channel).
	Plan *sidechannel.FaultPlan

	opts          *Options
	tracer        *obs.Tracer
	stopSignals   context.CancelFunc
	pprofShutdown func(context.Context) error
	closeOnce     sync.Once
}

// Setup validates opts and assembles the Runtime. Call it once, right
// after flag parsing; pair it with a deferred Close.
//
// The runtime's context always cancels on SIGINT; extraSignals adds
// further triggers (a daemon passes syscall.SIGTERM so an orchestrator's
// stop request drains it exactly like Ctrl-C does a CLI).
func Setup(opts *Options, extraSignals ...os.Signal) (*Runtime, error) {
	plan, err := sidechannel.ParseFaultPlan(opts.Faults)
	if err != nil {
		return nil, fmt.Errorf("-faults: %w", err)
	}
	if opts.Resume && opts.Checkpoint == "" {
		return nil, fmt.Errorf("-resume requires -checkpoint")
	}

	reg := obs.New()
	runID := obs.RunID(os.Args...)
	rec := obs.NewFlightRecorder(0)
	rec.RunID = runID
	reg.SetFlight(rec)

	rt := &Runtime{
		Registry: reg,
		Flight:   rec,
		RunID:    runID,
		Plan:     plan,
		opts:     opts,
	}
	if opts.Trace != "" {
		rt.tracer = obs.NewTracer()
		reg.SetTracer(rt.tracer)
	}
	if lvl, enabled, err := obs.ParseLogLevel(opts.LogLevel); err != nil {
		return nil, fmt.Errorf("-log-level: %w", err)
	} else if enabled {
		reg.SetLogger(obs.NewLogger(os.Stderr, lvl, runID))
	}
	if opts.Pprof != "" {
		addr, shutdown, err := obs.Serve(opts.Pprof, reg)
		if err != nil {
			return nil, fmt.Errorf("pprof server: %w", err)
		}
		rt.pprofShutdown = shutdown
		log.Printf("serving metrics and pprof on http://%s", addr)
	}
	rt.Ctx, rt.stopSignals = signal.NotifyContext(context.Background(),
		append([]os.Signal{os.Interrupt}, extraSignals...)...)
	return rt, nil
}

// Interrupted reports whether the runtime's context has been cancelled
// (the user hit Ctrl-C).
func (rt *Runtime) Interrupted() bool { return rt.Ctx.Err() != nil }

// Close flushes every requested artifact — flight dump, trace file,
// metrics snapshots — restores default SIGINT behavior, and shuts the
// pprof server down. Idempotent and safe to call concurrently (a daemon
// reaches it from both the signal path and the serve loop; sync.Once
// makes the second caller wait for the first flush to finish instead of
// racing a half-written artifact). It must run on every exit path (use
// main() → run() error with a deferred Close rather than log.Fatal
// mid-run, which skips defers): an interrupted run's artifacts are
// exactly the point of the flight recorder.
func (rt *Runtime) Close() { rt.closeOnce.Do(rt.close) }

func (rt *Runtime) close() {
	rt.stopSignals()
	if rt.opts.Flight != "" {
		if err := rt.Flight.Dump(rt.opts.Flight, "run exit"); err != nil {
			log.Printf("flight: %v", err)
		} else {
			log.Printf("flight recorder written to %s", rt.opts.Flight)
		}
	}
	if rt.tracer != nil {
		if err := rt.tracer.WriteFile(rt.opts.Trace); err != nil {
			log.Printf("trace: %v", err)
		} else {
			log.Printf("trace written to %s", rt.opts.Trace)
		}
	}
	for _, path := range strings.Split(rt.opts.Metrics, ",") {
		if path = strings.TrimSpace(path); path == "" {
			continue
		}
		if err := rt.Registry.Snapshot().WriteFile(path); err != nil {
			log.Printf("metrics: %v", err)
		} else {
			log.Printf("metrics written to %s", path)
		}
	}
	if rt.pprofShutdown != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := rt.pprofShutdown(ctx); err != nil {
			log.Printf("pprof shutdown: %v", err)
		}
	}
}

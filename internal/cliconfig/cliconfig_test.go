package cliconfig

import (
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
)

// A daemon calls Close from both the signal path and the serve loop;
// every caller must return only after the artifacts are flushed exactly
// once. Run under -race this also pins the sync.Once discipline (the old
// plain-bool guard raced and could double-write the metrics files).
func TestCloseConcurrent(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "m.json")
	opts := &Options{Metrics: metrics}
	rt, err := Setup(opts)
	if err != nil {
		t.Fatal(err)
	}
	rt.Registry.Counter("test.counter").Inc()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt.Close()
		}()
	}
	wg.Wait()

	// Every Close returned, so the flush is complete: the snapshot file
	// must exist and hold the counter.
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatalf("metrics not flushed by Close: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("metrics file empty after Close")
	}
}

// Setup's extra signals reach the runtime context: SIGTERM must cancel
// it when registered, exactly like SIGINT.
func TestSetupExtraSignals(t *testing.T) {
	rt, err := Setup(&Options{}, syscall.SIGTERM)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.Interrupted() {
		t.Fatal("context cancelled before any signal")
	}
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	<-rt.Ctx.Done()
	if !rt.Interrupted() {
		t.Fatal("SIGTERM did not cancel the runtime context")
	}
}

// Package cnnmodel builds the ResNet-18-analog convolutional network for
// the paper's generalization study (§7.7, Fig 19): weight-value similarity
// between a fine-tuned CNN and its pre-trained baseline is compared with a
// from-scratch model trained on the same data. It also provides the
// synthetic stand-in for the Hymenoptera dataset (DESIGN.md §2).
package cnnmodel

import (
	"fmt"

	"decepticon/internal/nn"
	"decepticon/internal/rng"
	"decepticon/internal/tensor"
)

// ImgSize is the synthetic image side length.
const ImgSize = 16

// Model is a residual CNN with named layers for weight comparison.
type Model struct {
	Net *nn.Sequential
	// LayerNames maps the trainable tensors (in Params order) to
	// human-readable layer names for the Fig 19 per-layer profile.
	LayerNames []string
}

// New builds the ResNet analog: stem conv, four residual stages with
// pooling between them, classifier head. numClasses sets the head width.
func New(numClasses int, seed uint64) *Model {
	r := rng.New(seed)
	m := &Model{}
	var layers []nn.Layer
	name := func(n string, count int) {
		for i := 0; i < count; i++ {
			m.LayerNames = append(m.LayerNames, n)
		}
	}

	// Stem: 1x16x16 -> 8x16x16 (conv + batch norm + ReLU, as ResNet's stem).
	layers = append(layers,
		nn.NewConv2DPadded(1, 8, 3, ImgSize, ImgSize, 1, r.Derive("stem")),
		nn.NewBatchNorm2D(8, ImgSize, ImgSize),
		nn.NewReLU())
	name("stem", 4) // conv W,B + bn gamma,beta

	ch := 8
	hw := ImgSize
	for stage := 0; stage < 4; stage++ {
		block := func(tag string) nn.Layer {
			c1 := nn.NewConv2DPadded(ch, ch, 3, hw, hw, 1, r.Derive(tag+"a"))
			b1 := nn.NewBatchNorm2D(ch, hw, hw)
			c2 := nn.NewConv2DPadded(ch, ch, 3, hw, hw, 1, r.Derive(tag+"b"))
			b2 := nn.NewBatchNorm2D(ch, hw, hw)
			name(fmt.Sprintf("stage%d.%s", stage, tag), 8) // 2×(conv W,B + bn γ,β)
			return nn.NewResidual(c1, b1, nn.NewReLU(), c2, b2)
		}
		layers = append(layers, block("block0"), nn.NewReLU(), block("block1"), nn.NewReLU())
		if stage < 3 {
			layers = append(layers, nn.NewMaxPool2D(ch, hw, hw, 2))
			hw /= 2
		}
	}
	// Global pooling + classifier.
	layers = append(layers, nn.NewMaxPool2D(ch, hw, hw, hw))
	layers = append(layers, nn.NewDense(ch, numClasses, r.Derive("fc")))
	name("fc", 2)
	m.Net = nn.NewSequential(layers...)
	return m
}

// Clone returns a deep copy of the model.
func (m *Model) Clone() *Model {
	c := New(outWidth(m), 0)
	src, dst := m.Net.Params(), c.Net.Params()
	for i := range src {
		dst[i].CopyFrom(src[i])
	}
	return c
}

func outWidth(m *Model) int {
	ps := m.Net.Params()
	return ps[len(ps)-1].Cols // fc bias width
}

// ReplaceHead swaps the classifier for a fresh one with numClasses
// outputs (transfer learning attaches a new task head).
func (m *Model) ReplaceHead(numClasses int, seed uint64) *Model {
	c := New(numClasses, seed)
	src, dst := m.Net.Params(), c.Net.Params()
	// Copy everything except the final dense (last two tensors: W and B).
	for i := 0; i < len(src)-2; i++ {
		dst[i].CopyFrom(src[i])
	}
	return c
}

// LayerDiffs returns, per named layer, the mean |Δw| between two models of
// equal architecture (Fig 19's bars).
func LayerDiffs(a, b *Model) (names []string, diffs []float64) {
	pa, pb := a.Net.Params(), b.Net.Params()
	sums := map[string]float64{}
	counts := map[string]float64{}
	seen := map[string]bool{}
	var order []string
	for i := range pa {
		n := a.LayerNames[i]
		if !seen[n] {
			seen[n] = true
			order = append(order, n)
		}
		if pa[i].Rows != pb[i].Rows || pa[i].Cols != pb[i].Cols {
			continue // replaced head: widths differ, distance undefined
		}
		sums[n] += tensor.MeanAbsDiff(pa[i], pb[i]) * float64(len(pa[i].Data))
		counts[n] += float64(len(pa[i].Data))
	}
	for _, n := range order {
		names = append(names, n)
		if counts[n] > 0 {
			diffs = append(diffs, sums[n]/counts[n])
		} else {
			diffs = append(diffs, 0)
		}
	}
	return names, diffs
}

// GenerateImages produces a labeled synthetic image classification task:
// each class places bright blobs at class-specific locations over noise.
// It stands in for Hymenoptera (2 classes) and for the generic
// pre-training corpus (more classes).
func GenerateImages(name string, numClasses, n int, seed uint64) (*tensor.Matrix, []int) {
	r := rng.New(rng.Seed("cnn-task", name) ^ seed)
	// Class-specific blob centers.
	centers := make([][2]int, numClasses)
	for c := range centers {
		centers[c] = [2]int{2 + r.Intn(ImgSize-4), 2 + r.Intn(ImgSize-4)}
	}
	x := tensor.New(n, ImgSize*ImgSize)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		label := i % numClasses
		labels[i] = label
		row := x.Row(i)
		for j := range row {
			row[j] = r.Float32() * 0.3
		}
		cy, cx := centers[label][0], centers[label][1]
		// Blob with per-example position wobble.
		cy += r.Intn(3) - 1
		cx += r.Intn(3) - 1
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				y, xx := cy+dy, cx+dx
				if y >= 0 && y < ImgSize && xx >= 0 && xx < ImgSize {
					row[y*ImgSize+xx] = 0.8 + r.Float32()*0.2
				}
			}
		}
	}
	return x, labels
}

// TrainConfig bundles the training hyperparameters.
type TrainConfig struct {
	Epochs int
	LR     float64
	Decay  float64
	Seed   uint64
}

// Train fits the model and returns the final loss.
func (m *Model) Train(x *tensor.Matrix, labels []int, cfg TrainConfig) float64 {
	return m.Net.Fit(x, labels, nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: 8,
		Optimizer: nn.NewAdamW(cfg.LR, cfg.Decay),
		Seed:      cfg.Seed,
	})
}

// Accuracy evaluates classification accuracy.
func (m *Model) Accuracy(x *tensor.Matrix, labels []int) float64 {
	return m.Net.Evaluate(x, labels)
}

// Fig19Result holds the generalization-study outputs.
type Fig19Result struct {
	Layers      []string
	FineTuneGap []float64 // fine-tuned vs its pre-trained model
	ScratchGap  []float64 // fine-tuned vs from-scratch model (same data)
	FineTuneAcc float64
	ScratchAcc  float64
}

// RunFig19 reproduces §7.7: pre-train a ResNet analog, fine-tune it on a
// 2-class task, train a second model from scratch on the same data, and
// compare layer-wise weight distances.
func RunFig19(seed uint64) Fig19Result {
	pre := New(4, seed)
	px, plabels := GenerateImages("imagenet-analog", 4, 160, seed)
	pre.Train(px, plabels, TrainConfig{Epochs: 8, LR: 2e-3, Decay: 0.01, Seed: seed})

	hx, hlabels := GenerateImages("hymenoptera-analog", 2, 120, seed+1)
	ft := pre.ReplaceHead(2, seed+2)
	// Short, gentle fine-tuning — enough for the fresh head to learn while
	// the backbone barely moves.
	ft.Train(hx, hlabels, TrainConfig{Epochs: 5, LR: 4e-4, Decay: 0.05, Seed: seed + 3})

	scratch := New(2, seed+999)
	scratch.Train(hx, hlabels, TrainConfig{Epochs: 10, LR: 2e-3, Decay: 0.01, Seed: seed + 4})

	names, ftGap := LayerDiffs(pre, ft)
	_, scGap := LayerDiffs(scratch, ft)
	return Fig19Result{
		Layers:      names,
		FineTuneGap: ftGap,
		ScratchGap:  scGap,
		FineTuneAcc: ft.Accuracy(hx, hlabels),
		ScratchAcc:  scratch.Accuracy(hx, hlabels),
	}
}

package cnnmodel

import (
	"testing"
)

func TestGenerateImages(t *testing.T) {
	x, labels := GenerateImages("probe", 3, 30, 1)
	if x.Rows != 30 || x.Cols != ImgSize*ImgSize {
		t.Fatalf("shape %dx%d", x.Rows, x.Cols)
	}
	counts := make([]int, 3)
	for _, l := range labels {
		counts[l]++
	}
	for c, n := range counts {
		if n != 10 {
			t.Fatalf("label %d count %d", c, n)
		}
	}
	for _, v := range x.Data {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v out of [0,1]", v)
		}
	}
	// Deterministic.
	x2, _ := GenerateImages("probe", 3, 30, 1)
	for i := range x.Data {
		if x.Data[i] != x2.Data[i] {
			t.Fatal("generation must be deterministic")
		}
	}
}

func TestModelLearnsBlobTask(t *testing.T) {
	m := New(2, 1)
	x, labels := GenerateImages("learn", 2, 60, 2)
	m.Train(x, labels, TrainConfig{Epochs: 6, LR: 2e-3, Seed: 3})
	if acc := m.Accuracy(x, labels); acc < 0.85 {
		t.Fatalf("train accuracy %v < 0.85", acc)
	}
}

func TestCloneAndLayerDiffs(t *testing.T) {
	m := New(2, 4)
	c := m.Clone()
	names, diffs := LayerDiffs(m, c)
	if len(names) != len(diffs) || len(names) == 0 {
		t.Fatalf("diffs shape %d/%d", len(names), len(diffs))
	}
	for i, d := range diffs {
		if d != 0 {
			t.Fatalf("clone diff %v at layer %s", d, names[i])
		}
	}
	// LayerNames must align with the trainable tensors.
	if len(m.LayerNames) != len(m.Net.Params()) {
		t.Fatalf("layer names %d vs params %d", len(m.LayerNames), len(m.Net.Params()))
	}
}

func TestReplaceHeadKeepsBackbone(t *testing.T) {
	m := New(4, 5)
	ft := m.ReplaceHead(2, 6)
	pm, pf := m.Net.Params(), ft.Net.Params()
	// All tensors except the final dense pair are copied.
	for i := 0; i < len(pm)-2; i++ {
		for j := range pm[i].Data {
			if pm[i].Data[j] != pf[i].Data[j] {
				t.Fatalf("backbone tensor %d changed", i)
			}
		}
	}
	// Head width changed.
	if pf[len(pf)-1].Cols != 2 {
		t.Fatalf("new head width %d", pf[len(pf)-1].Cols)
	}
}

// TestFig19Shape verifies the §7.7 claim at reduced scale: the fine-tuned
// model stays near its pre-trained baseline while a from-scratch model
// trained on the same data is far away in every layer.
func TestFig19Shape(t *testing.T) {
	pre := New(4, 10)
	px, plabels := GenerateImages("imagenet-analog", 4, 80, 10)
	pre.Train(px, plabels, TrainConfig{Epochs: 4, LR: 2e-3, Decay: 0.01, Seed: 11})

	hx, hlabels := GenerateImages("hymenoptera-analog", 2, 60, 12)
	ft := pre.ReplaceHead(2, 13)
	ft.Train(hx, hlabels, TrainConfig{Epochs: 2, LR: 1e-4, Decay: 0.05, Seed: 14})

	scratch := New(2, 999)
	scratch.Train(hx, hlabels, TrainConfig{Epochs: 4, LR: 2e-3, Decay: 0.01, Seed: 15})

	_, ftGap := LayerDiffs(pre, ft)
	_, scGap := LayerDiffs(scratch, ft)
	// Compare backbone layers (exclude the replaced head, last entry).
	var ftSum, scSum float64
	for i := 0; i < len(ftGap)-1; i++ {
		ftSum += ftGap[i]
		scSum += scGap[i]
	}
	if scSum < 10*ftSum {
		t.Fatalf("scratch gap %v not >> fine-tune gap %v (paper: >= 20x)", scSum, ftSum)
	}
}

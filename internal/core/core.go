// Package core wires the full Decepticon attack together (paper Fig 1):
//
//	victim inference ──side channel──▶ kernel trace ──▶ CNN extractor
//	      │                                              │ top-k
//	      │ query outputs ◀── variant detector ◀─────────┘ (ambiguity)
//	      ▼                                              ▼
//	rowhammer oracle ◀── selective weight extraction ◀── identified
//	      │                                              pre-trained model
//	      ▼
//	   clone model ──▶ adversarial attack on the victim
//
// Level 1 identifies the victim's pre-trained model from its execution
// fingerprint (plus query probes for profile-ambiguous candidates);
// level 2 clones the victim's weights from the identified baseline with
// minimal bit reads.
package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"

	"decepticon/internal/extract"
	"decepticon/internal/fingerprint"
	"decepticon/internal/obs"
	"decepticon/internal/parallel"
	"decepticon/internal/pipeline"
	"decepticon/internal/sidechannel"
	"decepticon/internal/transformer"
	"decepticon/internal/zoo"
)

// Attack is a prepared Decepticon instance: a candidate pool and a trained
// pre-trained model extractor.
type Attack struct {
	Zoo        *zoo.Zoo
	Classifier *fingerprint.Classifier
	// PowerClf / CounterClf identify from the derived power/thermal and
	// aggregate-counter channels (see gpusim/channels.go); nil means that
	// modality is unavailable and any run requesting it degrades to the
	// surviving sensors. Prepare trains them when PrepareConfig.Modalities
	// asks for the extra channels.
	PowerClf   *fingerprint.VectorClassifier
	CounterClf *fingerprint.VectorClassifier
	// FusionWeights are the per-modality log-pooling weights the fused
	// identifier uses (nil = equal weights). Prepare fills them from each
	// classifier's calibration accuracy on its training set.
	FusionWeights map[fingerprint.Modality]float64
	// Hier, when non-nil, replaces the flat classifier in the Identify
	// stage with the two-level family→release identifier (trained when
	// PrepareConfig.Hierarchical is set). The flat classifier is still
	// trained — fused multi-modal identification and calibration use it —
	// but single-trace identification walks the hierarchy, whose cost
	// stays sub-linear in the zoo's release count.
	Hier       *fingerprint.Hierarchical
	ExtractCfg extract.Config
	// Obs receives the attack's cost accounting (phase wall times, victim
	// queries, and — through the oracle and extractor it is handed to —
	// hammer rounds and bit reads). nil runs un-instrumented.
	Obs *obs.Registry
}

// PrepareConfig controls attack preparation.
type PrepareConfig struct {
	// SamplesPerModel trace measurements feed the CNN's training set.
	SamplesPerModel int
	// ImgSize is the trace-image resolution (32 or 64).
	ImgSize int
	// Epochs / LR train the CNN (paper: 10 epochs at 0.001; our reduced
	// image scale trains longer).
	Epochs int
	LR     float64
	Seed   uint64
	// Workers bounds the goroutines used for trace measurement and image
	// rendering; <= 0 selects GOMAXPROCS. Purely a throughput knob: the
	// trained classifier is identical for any value.
	Workers int
	// Obs instruments preparation and is carried into the prepared
	// Attack (dataset/train wall time, then per-run attack accounting).
	Obs *obs.Registry
	// Modalities lists the extra measurement channels to train
	// identifiers for (power, counters; trace is always trained). The
	// vector classifiers train on features derived from the same trace
	// dataset, so no second measurement pass is paid.
	Modalities []fingerprint.Modality
	// Hierarchical additionally trains the two-level family→release
	// identifier (fingerprint.Hierarchical) on the same dataset and
	// installs it as the Identify stage's classifier. Intended for large
	// zoos, where the flat CNN's class count grows with every release but
	// the hierarchy's family level stays fixed.
	Hierarchical bool
}

// DefaultPrepareConfig returns a preparation setup matched to the zoo
// scale.
func DefaultPrepareConfig() PrepareConfig {
	return PrepareConfig{SamplesPerModel: 5, ImgSize: 64, Epochs: 60, LR: 0.002, Seed: 7}
}

// Prepare trains the level-1 extractor over the candidate pool. The
// training set is augmented with noisy trace copies so the classifier
// tolerates measurement noise (§7.2).
//
// Zero-valued fields of cfg are filled individually from
// DefaultPrepareConfig — a caller setting only, say, Epochs keeps that
// choice instead of having the whole config silently replaced. A
// non-zero ImgSize other than 32 or 64 is caller-facing input and is
// rejected with an error up front rather than panicking deep inside the
// CNN constructor.
func Prepare(z *zoo.Zoo, cfg PrepareConfig) (*Attack, error) {
	return PrepareContext(context.Background(), z, cfg)
}

// PrepareContext is Prepare with cooperative cancellation: the context
// is checked between the dataset and training phases and polled at each
// training epoch, so a cancelled preparation stops within one epoch and
// returns ctx's error instead of a half-trained attack.
func PrepareContext(ctx context.Context, z *zoo.Zoo, cfg PrepareConfig) (*Attack, error) {
	def := DefaultPrepareConfig()
	if cfg.SamplesPerModel <= 0 {
		cfg.SamplesPerModel = def.SamplesPerModel
	}
	if cfg.ImgSize == 0 {
		cfg.ImgSize = def.ImgSize
	}
	if cfg.ImgSize != 32 && cfg.ImgSize != 64 {
		return nil, fmt.Errorf("core: PrepareConfig.ImgSize %d unsupported (use 32 or 64, or 0 for the default)", cfg.ImgSize)
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = def.Epochs
	}
	if cfg.LR == 0 {
		cfg.LR = def.LR
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: prepare cancelled: %w", err)
	}
	dataSpan := cfg.Obs.StartSpan("fingerprint.dataset_seconds")
	d := fingerprint.BuildDataset(z, cfg.SamplesPerModel, cfg.Seed, cfg.Workers)
	d.AugmentNoise(1, 4, 2, cfg.Seed+9, cfg.Workers)
	dataSpan.End()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: prepare cancelled: %w", err)
	}
	clf := fingerprint.NewClassifier(cfg.ImgSize, d.Classes, cfg.Seed+1)
	clf.Workers = cfg.Workers
	clf.Obs = cfg.Obs
	clf.TrainContext(ctx, d, fingerprint.TrainConfig{Epochs: cfg.Epochs, LR: cfg.LR, Seed: cfg.Seed + 2})
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: prepare cancelled: %w", err)
	}
	atk := &Attack{Zoo: z, Classifier: clf, ExtractCfg: extract.DefaultConfig(), Obs: cfg.Obs}
	if cfg.Hierarchical {
		h, err := fingerprint.TrainHierarchical(ctx, z, d, cfg.ImgSize,
			fingerprint.TrainConfig{Epochs: cfg.Epochs, LR: cfg.LR, Seed: cfg.Seed + 3},
			cfg.Workers, cfg.Obs)
		if err != nil {
			return nil, fmt.Errorf("core: prepare cancelled: %w", err)
		}
		atk.Hier = h
	}
	if err := atk.prepareModalities(ctx, d, cfg); err != nil {
		return nil, err
	}
	return atk, nil
}

// prepareModalities trains the extra per-modality identifiers requested
// by cfg.Modalities on feature datasets derived from the same augmented
// trace corpus, then calibrates the fusion weights from each
// identifier's training-set accuracy.
func (a *Attack) prepareModalities(ctx context.Context, d *fingerprint.Dataset, cfg PrepareConfig) error {
	weights := map[fingerprint.Modality]float64{}
	trained := false
	for _, m := range cfg.Modalities {
		if m == fingerprint.ModalityTrace {
			continue
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: prepare cancelled: %w", err)
		}
		vd := fingerprint.VectorizeDataset(d, m, cfg.Seed+31, cfg.Workers)
		vc := fingerprint.NewVectorClassifier(m, vd.Dim, vd.Classes, cfg.Seed+37)
		vc.Workers = cfg.Workers
		vc.Obs = cfg.Obs
		vc.Train(vd, fingerprint.TrainConfig{Epochs: cfg.Epochs, LR: cfg.LR, Seed: cfg.Seed + 41})
		switch m {
		case fingerprint.ModalityPower:
			a.PowerClf = vc
		case fingerprint.ModalityCounters:
			a.CounterClf = vc
		}
		weights[m] = vc.Accuracy(vd)
		trained = true
	}
	if !trained {
		return nil
	}
	// The CNN's calibration accuracy anchors the trace weight; the
	// sharpened normalization keeps the strongest sensor dominant.
	weights[fingerprint.ModalityTrace] = a.Classifier.Accuracy(d)
	mods := make([]fingerprint.Modality, 0, len(weights))
	for _, m := range fingerprint.AllModalities() {
		if _, ok := weights[m]; ok {
			mods = append(mods, m)
		}
	}
	accs := make([]float64, len(mods))
	for i, m := range mods {
		accs[i] = weights[m]
	}
	fused := fingerprint.FusionWeights(accs)
	a.FusionWeights = map[fingerprint.Modality]float64{}
	for i, m := range mods {
		a.FusionWeights[m] = fused[i]
	}
	a.Obs.Log().Info("fusion weights calibrated", "weights", fmt.Sprint(a.FusionWeights))
	return nil
}

// Report is the outcome of one end-to-end attack.
type Report struct {
	Victim         string
	TruePretrained string

	// Level 1.
	Identified      string
	CorrectIdentity bool
	UsedQueryProbes bool
	ProbeQueries    int
	// ArchConfirmed reports whether the bus-probe allocation map of the
	// victim (§3's "memory addresses" hint) matches the identified
	// candidate's architecture — a cheap cross-check before committing to
	// the expensive rowhammer phase.
	ArchConfirmed bool
	// Modalities lists the measurement channels that contributed to this
	// identification (multi-modal runs only; empty means the legacy
	// trace-only path). JammedModalities lists requested sensors that
	// were jammed; IdentifyDegraded is set when any requested sensor was
	// jammed or absent and the run fell back to the survivors.
	Modalities       []string
	JammedModalities []string
	IdentifyDegraded bool

	// Level 2.
	Extract *extract.Stats
	// ExtractError records why the weight extraction failed (e.g. a
	// malformed address map), leaving the rest of the report valid — one
	// bad victim degrades gracefully instead of killing a campaign.
	ExtractError string
	// ExtractSkipped records why extraction was never attempted (the
	// identified architecture does not match the victim's bus-probe
	// layout) — distinct from ExtractError, which means extraction ran
	// and failed.
	ExtractSkipped string
	// ExtractInterrupted reports that the extraction hit
	// RunOptions.ReadBudget or was cancelled through the run's context
	// and checkpointed instead of completing; rerun with Resume to
	// continue from the checkpoint.
	ExtractInterrupted bool
	MatchRate          float64 // clone vs victim predictions on held-out inputs
	VictimAcc          float64
	CloneAcc           float64
	VictimF1           float64
	CloneF1            float64

	// Optional adversarial stage.
	AdvClone       float64   // clone-driven success rate
	AdvSubstitutes []float64 // distillation substitutes' success rates
	// AdvSkipped records, per requested substitute that could not be
	// built, why no valid distillation baseline existed (e.g. no
	// pre-trained candidate with a compatible vocabulary besides the
	// victim's own release).
	AdvSkipped []string
	Clone      *transformer.Model
}

// Campaign aggregates the outcome of attacking many victims.
type Campaign struct {
	Victims       int
	Identified    int // correct pre-trained identification
	ProbeResolved int // identifications that needed query probes
	ArchConfirmed int // bus-probe architecture checks that passed
	ExtractFailed int // victims whose extraction errored (see Report.ExtractError)
	// ExtractSkipped counts victims whose extraction was never attempted
	// (architecture mismatch); ExtractInterrupted counts victims that hit
	// the read budget and checkpointed — both distinct from failures.
	ExtractSkipped     int
	ExtractInterrupted int
	// IdentifyDegraded counts victims identified with at least one
	// measurement modality jammed or absent (see Report.IdentifyDegraded).
	IdentifyDegraded int
	// TensorsDegraded sums the tensors that fell back to the pre-trained
	// baseline under channel faults; MeanCoverage averages the extracted
	// fraction over runs where extraction happened.
	TensorsDegraded int
	MeanCoverage    float64
	MeanMatchRate   float64 // over runs where extraction happened
	MeanReduction   float64 // bit-read reduction factor
	// TotalBitsRead sums the *logical* bits recovered across victims;
	// TotalPhysicalReads sums the metered oracle reads (×ReadRepeats
	// under majority voting). int64: campaign-scale totals overflow
	// 32-bit arithmetic once multiplied into hammer rounds.
	TotalBitsRead      int64
	TotalPhysicalReads int64
	// TotalOracleAttempts additionally counts faulted reads — the full
	// channel spend a budget (per-victim ReadBudget, or a service
	// tenant's allowance) is charged against.
	TotalOracleAttempts int64
	Reports             []*Report
}

// TotalHammerRounds returns the campaign's simulated rowhammer spend,
// driven by physical reads.
func (c *Campaign) TotalHammerRounds() int64 {
	return c.TotalPhysicalReads * sidechannel.HammerRoundsPerBit
}

// IdentificationRate returns the fraction of victims whose pre-trained
// model was identified correctly.
func (c *Campaign) IdentificationRate() float64 {
	if c.Victims == 0 {
		return 0
	}
	return float64(c.Identified) / float64(c.Victims)
}

// campaignAgg accumulates a Campaign incrementally as reports are
// delivered, so a streaming campaign never has to retain every report to
// produce its summary. Reports are always added in victim input order
// for any worker count, so the floating-point means are byte-identical
// to the batch aggregation this replaces.
type campaignAgg struct {
	c                                   Campaign
	matchSum, reductionSum, coverageSum float64
	extracted                           int
}

func (g *campaignAgg) add(rep *Report) {
	c := &g.c
	c.Victims++
	if rep.CorrectIdentity {
		c.Identified++
	}
	if rep.UsedQueryProbes && rep.CorrectIdentity {
		c.ProbeResolved++
	}
	if rep.ArchConfirmed {
		c.ArchConfirmed++
	}
	if rep.ExtractError != "" {
		c.ExtractFailed++
	}
	if rep.ExtractSkipped != "" {
		c.ExtractSkipped++
	}
	if rep.ExtractInterrupted {
		c.ExtractInterrupted++
	}
	if rep.IdentifyDegraded {
		c.IdentifyDegraded++
	}
	if rep.Extract != nil {
		g.extracted++
		g.matchSum += rep.MatchRate
		g.reductionSum += rep.Extract.ReductionFactor()
		g.coverageSum += rep.Extract.Coverage()
		c.TensorsDegraded += rep.Extract.TensorsDegraded
		c.TotalBitsRead += rep.Extract.LogicalBitsRead()
		c.TotalPhysicalReads += rep.Extract.PhysicalBitReads
		c.TotalOracleAttempts += rep.Extract.OracleAttempts()
	}
}

// campaign finalizes the means over the reports added so far and returns
// a copy of the summary (Reports unset — the aggregator never holds
// them).
func (g *campaignAgg) campaign() *Campaign {
	c := g.c
	if g.extracted > 0 {
		c.MeanMatchRate = g.matchSum / float64(g.extracted)
		c.MeanReduction = g.reductionSum / float64(g.extracted)
		c.MeanCoverage = g.coverageSum / float64(g.extracted)
	}
	return &c
}

// ReportStream is a campaign in flight: victims are attacked on a
// bounded worker pool behind it while Next delivers their reports one at
// a time, strictly in victim input order — the same sequence a serial
// campaign produces, for any worker count. At most a small window of
// undelivered reports (2× the worker count) is buffered, so campaign
// memory no longer grows with the victim list.
//
// Drain the stream to completion: the campaign's spans and trace lane
// close when Next first reports exhaustion. After that, Err explains an
// early stop (a victim's hard error, or the context's error after a
// cancellation) and Campaign summarizes the reports that were delivered.
type ReportStream struct {
	s        *parallel.Stream[*Report]
	agg      campaignAgg
	idx      int
	onReport func(index int, rep *Report)
	finish   func()
	done     bool
}

// Next blocks until the next victim's report is ready and returns it, in
// victim input order. It returns ok=false once the stream is exhausted —
// all victims delivered, or delivery stopped at the first failed victim
// or at the cancellation frontier (Err tells which). OnReport, when set,
// fires here, so its calls stay serialized and ordered exactly as the
// batch campaign delivered them.
func (rs *ReportStream) Next() (*Report, bool) {
	rep, ok := rs.s.Next()
	if !ok {
		if !rs.done {
			rs.done = true
			rs.finish()
		}
		return nil, false
	}
	if rs.onReport != nil {
		rs.onReport(rs.idx, rep)
	}
	rs.agg.add(rep)
	rs.idx++
	return rep, true
}

// Err reports why the stream stopped early: the first failed victim's
// error, else the context's error, else nil. Call it after Next returns
// false.
func (rs *ReportStream) Err() error { return rs.s.Err() }

// Campaign summarizes the reports delivered so far. After a full drain
// it equals the batch RunAll campaign except that Reports is nil — the
// stream exists so the caller controls report retention.
func (rs *ReportStream) Campaign() *Campaign { return rs.agg.campaign() }

// Buffered returns how many completed, undelivered reports the stream
// currently holds — always bounded by the delivery window. Exposed for
// the bounded-memory tests.
func (rs *ReportStream) Buffered() int { return rs.s.Buffered() }

// RunAllStream starts attacking every victim in the list on opt.Workers
// goroutines (<= 0 selects GOMAXPROCS) and returns the stream of their
// reports. Determinism matches RunAll: each victim's measurement seed is
// a function of its list index, shared models are only read, and
// delivery order is input order — the stream is identical for any worker
// count. Cancelling ctx stops new victims; in-flight extractions observe
// the same context and wind down through their checkpoint path.
func (a *Attack) RunAllStream(ctx context.Context, victims []*zoo.FineTuned, opt RunOptions) *ReportStream {
	span := a.Obs.StartSpan("core.campaign_seconds")
	pipe := a.Obs.Tracer().Track(obs.PidPipeline, 0, "pipeline")
	campaignSpan := pipe.Begin("campaign", obs.A("victims", len(victims)))
	a.Obs.Log().Info("campaign start", "victims", len(victims), "workers", opt.Workers)
	n := len(victims)
	s := parallel.StreamErr(ctx, n, opt.Workers, 2*parallel.Workers(opt.Workers),
		func(ctx context.Context, i int) (*Report, error) {
			o := opt
			o.MeasureSeed = opt.MeasureSeed + uint64(i)*7919
			// Stable campaign-lane assignment: trace lanes follow input
			// order, not completion order.
			o.traceTID = int64(i) + 1
			rep, err := a.RunContext(ctx, victims[i], o)
			if err != nil {
				return nil, fmt.Errorf("core: victim %s: %w", victims[i].Name, err)
			}
			return rep, nil
		})
	return &ReportStream{
		s:        s,
		onReport: opt.OnReport,
		finish: func() {
			// Mirrors the batch campaign's deferred bracketing, in the
			// same LIFO order it ran there.
			pipe.Advance(int64(n))
			campaignSpan.End()
			span.End()
		},
	}
}

// RunAllContext attacks every victim in the list and aggregates the
// outcomes, honoring ctx end to end: between victims, between stages,
// and down to individual oracle reads inside extractions. On a victim's
// hard error it returns (nil, error) like RunAll. On cancellation it
// returns the partial campaign over the victims that completed plus the
// context's error — interrupted extractions have already checkpointed,
// so a Resume run with the same options finishes the remainder without
// re-paying hammer rounds.
func (a *Attack) RunAllContext(ctx context.Context, victims []*zoo.FineTuned, opt RunOptions) (*Campaign, error) {
	rs := a.RunAllStream(ctx, victims, opt)
	reports := make([]*Report, 0, len(victims))
	for {
		rep, ok := rs.Next()
		if !ok {
			break
		}
		reports = append(reports, rep)
	}
	if err := rs.Err(); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			c := rs.Campaign()
			c.Reports = reports
			return c, err
		}
		return nil, err
	}
	c := rs.Campaign()
	c.Reports = reports
	return c, nil
}

// RunAll attacks every victim in the list and aggregates the outcomes.
// Victims run on opt.Workers goroutines (<= 0 selects GOMAXPROCS): each
// victim's measurement seed is a function of its list index, every model
// shared across victims (the zoo's pre-trained pool, the classifier) is
// only read, and reports land in input order with counters aggregated
// in delivery order — so the campaign is identical for any worker count.
func (a *Attack) RunAll(victims []*zoo.FineTuned, opt RunOptions) (*Campaign, error) {
	return a.RunAllContext(context.Background(), victims, opt)
}

// RunOptions controls one attack run.
type RunOptions struct {
	// MeasureSeed seeds the victim trace measurement.
	MeasureSeed uint64
	// Modalities selects the level-1 measurement channels for
	// identification (nil = the paper's kernel trace alone, which keeps
	// the legacy stage path byte-for-byte). With more than one modality
	// the victim still runs once — every sensor is passive — and the
	// per-modality posteriors fuse into one identification. A requested
	// modality whose classifier was never trained degrades the run to the
	// surviving sensors (metered on core.modality_absent) instead of
	// failing it.
	Modalities []fingerprint.Modality
	// Jammed lists sensors an active countermeasure blinds this run:
	// their channels record nothing, the run degrades to the surviving
	// modalities (metered on core.modality_jammed and
	// core.identify_degraded), and only a run with every sensor jammed or
	// absent errors.
	Jammed []fingerprint.Modality
	// Adversarial adds the §6.2 evaluation with NumSubstitutes baselines.
	Adversarial    bool
	NumSubstitutes int
	// FlipsPerInput is the adversarial token-substitution budget.
	FlipsPerInput int
	// BitErrorRate, when positive, degrades the rowhammer channel: each
	// oracle read flips with this probability. The noise stream is seeded
	// from the victim's name, so campaigns stay byte-identical for any
	// worker count. Pair with ExtractCfg.ReadRepeats to vote it away.
	BitErrorRate float64
	// FaultPlan, when non-nil, injects structured channel faults
	// (transient errors, stuck-at bits, region outages — see
	// sidechannel.FaultPlan). Each victim's faults derive from its name
	// via FaultPlan.ForVictim, so campaigns stay byte-identical for any
	// worker count. Pair with ExtractCfg.Retry to tune the reaction.
	FaultPlan *sidechannel.FaultPlan
	// ScheduledExtraction switches every victim's weight extraction to the
	// information-ordered bit-read scheduler (extract.SchedulerConfig) at
	// its default operating point: high-value fraction bits first, vote
	// width adapted to the channel's observed silent-flip rate (clamped to
	// ReadRepeats), and per-tensor posterior early exit. An explicit
	// ExtractCfg.Schedule takes precedence. The schedule is a pure
	// function of the pre-trained baseline, so campaigns stay
	// byte-identical for any worker count.
	ScheduledExtraction bool
	// CheckpointDir, when set, makes every victim's extraction persist a
	// resumable per-victim checkpoint (CheckpointDir/<victim>.ckpt). The
	// directory is created if missing.
	CheckpointDir string
	// Resume, when set with CheckpointDir, restores existing checkpoints
	// instead of starting fresh: completed victims return their stored
	// result, interrupted ones continue with zero re-paid hammer rounds.
	// The campaign must be re-run with the same zoo, config, FaultPlan,
	// and noise settings as the interrupted run.
	Resume bool
	// ReadBudget, when > 0, bounds each victim's metered oracle attempts
	// (successful + faulted). A victim that exceeds it checkpoints (when
	// CheckpointDir is set) and reports ExtractInterrupted instead of an
	// error. Cancelling the context passed to RunContext/RunAllContext/
	// RunAllStream interrupts an extraction through the same door.
	ReadBudget int64
	// Clock, when set, supplies each victim's pipeline clock (the factory
	// is called once per victim, so concurrent victims get independent
	// clocks). The default is a deterministic simulated clock advanced
	// only by simulated work — kernel-trace microseconds, oracle rounds,
	// validation forwards — so the per-phase histograms fed from it
	// (core.victim_identify_sim_us, core.victim_extract_rounds) are
	// byte-identical across machines and worker counts. Inject
	// pipeline.WallClock for operational wall-clock numbers at the cost
	// of that guarantee.
	Clock func() pipeline.Clock
	// Workers bounds the victims attacked concurrently by RunAll; <= 0
	// selects GOMAXPROCS. The campaign outcome is identical for any
	// value.
	Workers int
	// OnReport, when set, is called by RunAll with each victim's report.
	// Calls are serialized and arrive in victim input order (an ordered
	// sink bridges the worker pool), so progress output is deterministic.
	OnReport func(index int, rep *Report)
	// FlightPath, when set, is where the flight recorder attached to the
	// registry is dumped if this victim's extraction is interrupted,
	// fails, or degrades tensors under faults. With CheckpointDir set the
	// dump instead lands next to the checkpoint as <victim>.flight.json,
	// so each victim's post-mortem is its own file.
	FlightPath string
	// ReleaseModels drops each victim's lazily-loaded tensors (and its
	// backbone's) once that victim's report is final. With a store-backed
	// zoo the campaign's peak memory then tracks the handful of victims in
	// flight instead of the whole population; a later use transparently
	// reloads from the store, byte-identical. Resident (built-in-memory)
	// zoos ignore it.
	ReleaseModels bool
	// Progress, when set, receives live per-victim progress: each victim
	// registers an item keyed by its name, the pipeline annotates the
	// item's stage as it advances, and extraction credits completed
	// simulated units at every tensor boundary. The sim-unit side is
	// deterministic and worker-invariant (the planned total is a pure
	// function of config and baseline, completions land at deterministic
	// tensor boundaries); only the tracker's EWMA rate and ETA read wall
	// time. nil runs un-tracked — every hook is nil-safe.
	Progress *obs.ProgressTracker

	// traceTID is the campaign-lane thread id this victim's trace track
	// uses; RunAll assigns input-index+1 so lanes are stable across
	// worker counts. Zero (a direct Run call) maps to lane 1.
	traceTID int64
}

// pickSubstitute returns the s-th distillation baseline for the victim: a
// pre-trained model with a compatible vocabulary size that is not the
// victim's own release, scanning the pool from a per-s offset so distinct
// substitutes pick distinct baselines where possible. It returns nil when
// no pool member qualifies — stepping blindly to the next index (the old
// behavior) could land right back on the victim's own release or an
// incompatible vocabulary.
func pickSubstitute(z *zoo.Zoo, victim *zoo.FineTuned, s int) *zoo.Pretrained {
	n := len(z.Pretrained)
	for off := 0; off < n; off++ {
		p := z.Pretrained[(s+1+off)%n]
		// Compare vocabulary sizes through the architecture metadata, not
		// the models: scanning the pool must not force lazy tensor loads.
		if p.Name == victim.Pretrained.Name || p.Arch.Vocab != victim.Pretrained.Arch.Vocab {
			continue
		}
		return p
	}
	return nil
}

// checkpointName maps a victim name to a filesystem-safe checkpoint file
// name. Victim names come from zoo configuration and may hold separators
// or other characters that are unsafe in a single path element.
func checkpointName(victim string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == '.', r == '_', r == '-':
			return r
		}
		return '_'
	}, victim)
	return safe + ".ckpt"
}

// flightDumpPath returns where a victim's flight dump lands: next to its
// checkpoint when CheckpointDir is set, else RunOptions.FlightPath
// (empty = no dump).
func flightDumpPath(opt RunOptions, victim string) string {
	if opt.CheckpointDir != "" {
		return filepath.Join(opt.CheckpointDir,
			strings.TrimSuffix(checkpointName(victim), ".ckpt")+".flight.json")
	}
	return opt.FlightPath
}

// dumpFlight writes the attached flight recorder's post-mortem for a
// victim whose extraction went wrong. Nil-safe on every axis: without a
// recorder or a destination it is a no-op.
func (a *Attack) dumpFlight(opt RunOptions, victim, reason string) {
	f := a.Obs.Flight()
	path := flightDumpPath(opt, victim)
	if f == nil || path == "" {
		return
	}
	if err := f.Dump(path, reason); err != nil {
		a.Obs.Log().Error("flight dump failed", "victim", victim, "path", path, "err", err)
		return
	}
	a.Obs.Log().Info("flight recorder dumped", "victim", victim, "path", path, "reason", reason)
}

// Run executes the two-level attack against a black-box victim.
func (a *Attack) Run(victim *zoo.FineTuned, opt RunOptions) (*Report, error) {
	return a.RunContext(context.Background(), victim, opt)
}

// RunContext executes the two-level attack against a black-box victim as
// a staged pipeline (trace → identify → disambiguate → gate → extract →
// evaluate → adversarial), honoring ctx between stages and down to the
// individual oracle reads inside the extraction. A cancellation during
// extraction behaves exactly like read-budget exhaustion — checkpoint
// written, ExtractInterrupted reported, flight recorder dumped, report
// returned with a nil error; a cancellation between stages returns the
// context's error instead.
func (a *Attack) RunContext(ctx context.Context, victim *zoo.FineTuned, opt RunOptions) (*Report, error) {
	rep := &Report{
		Victim:         victim.Name,
		TruePretrained: victim.Pretrained.Name,
	}
	a.Obs.Counter("core.victims_attacked").Inc()
	log := a.Obs.Log().With("victim", victim.Name)
	log.Info("attack start")
	// The victim's trace lane: every phase span lands here, with the
	// lane clock advanced only by simulated quantities (kernel-trace
	// microseconds, oracle rounds, validation forwards) so the exported
	// trace is byte-identical for any worker count.
	tid := opt.traceTID
	if tid == 0 {
		tid = 1
	}
	tk := a.Obs.Tracer().Track(obs.PidCampaign, tid, victim.Name)
	attackSpan := tk.Begin("attack", obs.A("victim", victim.Name))
	defer attackSpan.End()
	vq := a.Obs.Counter("core.victim_queries")
	prog := opt.Progress.Item(victim.Name)
	r := &attackRun{
		a:      a,
		opt:    opt,
		victim: victim,
		rep:    rep,
		log:    log,
		tk:     tk,
		vq:     vq,
		prog:   prog,
	}
	// Every black-box interaction with the victim — query-output probes,
	// the extraction stop condition, adversarial transfer tests and
	// distillation records — goes through this counted path, so
	// core.victim_queries is the attacker's total query budget.
	r.countedPredict = func(tokens []int) int {
		vq.Inc()
		return victim.Model().Predict(tokens)
	}
	eng := &pipeline.Engine{
		Trace:        r,
		Identify:     r,
		Disambiguate: r,
		Extract:      r, // attackRun is also Gated: the bus-probe arch check gates rowhammer
		Evaluate:     r,
	}
	if multiModal(opt) {
		// Multi-modal runs swap in the composite sensor stages; the
		// single-trace un-jammed default keeps the legacy implementations
		// (and their byte-identical outputs) untouched.
		sensors := make([]sensorStage, 0, len(opt.Modalities))
		for _, m := range normalizeModalities(opt.Modalities) {
			sensors = append(sensors, newSensor(m, r))
		}
		eng.Trace = &multiMeasure{r: r, sensors: sensors}
		eng.Identify = &fusedIdentify{r: r}
	}
	if opt.Adversarial {
		eng.Adversarial = r
	}
	var clock pipeline.Clock
	if opt.Clock != nil {
		clock = opt.Clock()
	}
	err := eng.Run(&pipeline.State{Ctx: ctx, Obs: a.Obs, Track: tk, Clock: clock})
	if opt.ReleaseModels {
		// The victim's report is final (even on error): drop its tensors
		// and its backbone's so a lazily-loaded campaign holds only the
		// victims in flight. A shared backbone reloads on demand for the
		// next victim that needs it — pure CPU cost, never a correctness
		// one.
		victim.Release()
		victim.Pretrained.Release()
	}
	if err != nil {
		return nil, err
	}
	// Terminal progress state. Every non-interrupted outcome is finished
	// work for this victim — a skipped or failed extraction still ends the
	// victim's share of the campaign, so the item latches done and the
	// campaign fraction can reach exactly 1.0. An interrupted extraction
	// stays open: its checkpoint holds the completed units and a Resume
	// run ratchets onward from them.
	switch {
	case rep.ExtractInterrupted:
		prog.SetStage("interrupted")
	case rep.ExtractError != "":
		prog.SetStage("failed")
		prog.MarkDone()
	case rep.ExtractSkipped != "":
		prog.SetStage("skipped")
		prog.MarkDone()
	default:
		prog.SetStage("done")
		prog.MarkDone()
	}
	return rep, nil
}

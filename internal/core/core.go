// Package core wires the full Decepticon attack together (paper Fig 1):
//
//	victim inference ──side channel──▶ kernel trace ──▶ CNN extractor
//	      │                                              │ top-k
//	      │ query outputs ◀── variant detector ◀─────────┘ (ambiguity)
//	      ▼                                              ▼
//	rowhammer oracle ◀── selective weight extraction ◀── identified
//	      │                                              pre-trained model
//	      ▼
//	   clone model ──▶ adversarial attack on the victim
//
// Level 1 identifies the victim's pre-trained model from its execution
// fingerprint (plus query probes for profile-ambiguous candidates);
// level 2 clones the victim's weights from the identified baseline with
// minimal bit reads.
package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"decepticon/internal/adversarial"
	"decepticon/internal/extract"
	"decepticon/internal/fingerprint"
	"decepticon/internal/gpusim"
	"decepticon/internal/obs"
	"decepticon/internal/parallel"
	"decepticon/internal/queryfp"
	"decepticon/internal/rng"
	"decepticon/internal/sidechannel"
	"decepticon/internal/stats"
	"decepticon/internal/transformer"
	"decepticon/internal/zoo"
)

// Attack is a prepared Decepticon instance: a candidate pool and a trained
// pre-trained model extractor.
type Attack struct {
	Zoo        *zoo.Zoo
	Classifier *fingerprint.Classifier
	ExtractCfg extract.Config
	// Obs receives the attack's cost accounting (phase wall times, victim
	// queries, and — through the oracle and extractor it is handed to —
	// hammer rounds and bit reads). nil runs un-instrumented.
	Obs *obs.Registry
}

// PrepareConfig controls attack preparation.
type PrepareConfig struct {
	// SamplesPerModel trace measurements feed the CNN's training set.
	SamplesPerModel int
	// ImgSize is the trace-image resolution (32 or 64).
	ImgSize int
	// Epochs / LR train the CNN (paper: 10 epochs at 0.001; our reduced
	// image scale trains longer).
	Epochs int
	LR     float64
	Seed   uint64
	// Workers bounds the goroutines used for trace measurement and image
	// rendering; <= 0 selects GOMAXPROCS. Purely a throughput knob: the
	// trained classifier is identical for any value.
	Workers int
	// Obs instruments preparation and is carried into the prepared
	// Attack (dataset/train wall time, then per-run attack accounting).
	Obs *obs.Registry
}

// DefaultPrepareConfig returns a preparation setup matched to the zoo
// scale.
func DefaultPrepareConfig() PrepareConfig {
	return PrepareConfig{SamplesPerModel: 5, ImgSize: 64, Epochs: 60, LR: 0.002, Seed: 7}
}

// Prepare trains the level-1 extractor over the candidate pool. The
// training set is augmented with noisy trace copies so the classifier
// tolerates measurement noise (§7.2).
//
// Zero-valued fields of cfg are filled individually from
// DefaultPrepareConfig — a caller setting only, say, Epochs keeps that
// choice instead of having the whole config silently replaced. A
// non-zero ImgSize other than 32 or 64 is caller-facing input and is
// rejected with an error up front rather than panicking deep inside the
// CNN constructor.
func Prepare(z *zoo.Zoo, cfg PrepareConfig) (*Attack, error) {
	def := DefaultPrepareConfig()
	if cfg.SamplesPerModel <= 0 {
		cfg.SamplesPerModel = def.SamplesPerModel
	}
	if cfg.ImgSize == 0 {
		cfg.ImgSize = def.ImgSize
	}
	if cfg.ImgSize != 32 && cfg.ImgSize != 64 {
		return nil, fmt.Errorf("core: PrepareConfig.ImgSize %d unsupported (use 32 or 64, or 0 for the default)", cfg.ImgSize)
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = def.Epochs
	}
	if cfg.LR == 0 {
		cfg.LR = def.LR
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	dataSpan := cfg.Obs.StartSpan("fingerprint.dataset_seconds")
	d := fingerprint.BuildDataset(z, cfg.SamplesPerModel, cfg.Seed, cfg.Workers)
	d.AugmentNoise(1, 4, 2, cfg.Seed+9, cfg.Workers)
	dataSpan.End()
	clf := fingerprint.NewClassifier(cfg.ImgSize, d.Classes, cfg.Seed+1)
	clf.Workers = cfg.Workers
	clf.Obs = cfg.Obs
	clf.Train(d, fingerprint.TrainConfig{Epochs: cfg.Epochs, LR: cfg.LR, Seed: cfg.Seed + 2})
	return &Attack{Zoo: z, Classifier: clf, ExtractCfg: extract.DefaultConfig(), Obs: cfg.Obs}, nil
}

// Report is the outcome of one end-to-end attack.
type Report struct {
	Victim         string
	TruePretrained string

	// Level 1.
	Identified      string
	CorrectIdentity bool
	UsedQueryProbes bool
	ProbeQueries    int
	// ArchConfirmed reports whether the bus-probe allocation map of the
	// victim (§3's "memory addresses" hint) matches the identified
	// candidate's architecture — a cheap cross-check before committing to
	// the expensive rowhammer phase.
	ArchConfirmed bool

	// Level 2.
	Extract *extract.Stats
	// ExtractError records why the weight extraction failed (e.g. a
	// malformed address map), leaving the rest of the report valid — one
	// bad victim degrades gracefully instead of killing a campaign.
	ExtractError string
	// ExtractSkipped records why extraction was never attempted (the
	// identified architecture does not match the victim's bus-probe
	// layout) — distinct from ExtractError, which means extraction ran
	// and failed.
	ExtractSkipped string
	// ExtractInterrupted reports that the extraction hit
	// RunOptions.ReadBudget and checkpointed instead of completing; rerun
	// with Resume to continue from the checkpoint.
	ExtractInterrupted bool
	MatchRate          float64 // clone vs victim predictions on held-out inputs
	VictimAcc          float64
	CloneAcc           float64
	VictimF1           float64
	CloneF1            float64

	// Optional adversarial stage.
	AdvClone       float64   // clone-driven success rate
	AdvSubstitutes []float64 // distillation substitutes' success rates
	// AdvSkipped records, per requested substitute that could not be
	// built, why no valid distillation baseline existed (e.g. no
	// pre-trained candidate with a compatible vocabulary besides the
	// victim's own release).
	AdvSkipped []string
	Clone      *transformer.Model
}

// Campaign aggregates the outcome of attacking many victims.
type Campaign struct {
	Victims       int
	Identified    int // correct pre-trained identification
	ProbeResolved int // identifications that needed query probes
	ArchConfirmed int // bus-probe architecture checks that passed
	ExtractFailed int // victims whose extraction errored (see Report.ExtractError)
	// ExtractSkipped counts victims whose extraction was never attempted
	// (architecture mismatch); ExtractInterrupted counts victims that hit
	// the read budget and checkpointed — both distinct from failures.
	ExtractSkipped     int
	ExtractInterrupted int
	// TensorsDegraded sums the tensors that fell back to the pre-trained
	// baseline under channel faults; MeanCoverage averages the extracted
	// fraction over runs where extraction happened.
	TensorsDegraded int
	MeanCoverage    float64
	MeanMatchRate   float64 // over runs where extraction happened
	MeanReduction   float64 // bit-read reduction factor
	// TotalBitsRead sums the *logical* bits recovered across victims;
	// TotalPhysicalReads sums the metered oracle reads (×ReadRepeats
	// under majority voting). int64: campaign-scale totals overflow
	// 32-bit arithmetic once multiplied into hammer rounds.
	TotalBitsRead      int64
	TotalPhysicalReads int64
	Reports            []*Report
}

// TotalHammerRounds returns the campaign's simulated rowhammer spend,
// driven by physical reads.
func (c *Campaign) TotalHammerRounds() int64 {
	return c.TotalPhysicalReads * sidechannel.HammerRoundsPerBit
}

// IdentificationRate returns the fraction of victims whose pre-trained
// model was identified correctly.
func (c *Campaign) IdentificationRate() float64 {
	if c.Victims == 0 {
		return 0
	}
	return float64(c.Identified) / float64(c.Victims)
}

// RunAll attacks every victim in the list and aggregates the outcomes.
// Victims run on opt.Workers goroutines (<= 0 selects GOMAXPROCS): each
// victim's measurement seed is a function of its list index, every model
// shared across victims (the zoo's pre-trained pool, the classifier) is
// only read, and reports land in input order with counters aggregated
// after the join — so the campaign is identical for any worker count.
func (a *Attack) RunAll(victims []*zoo.FineTuned, opt RunOptions) (*Campaign, error) {
	defer a.Obs.StartSpan("core.campaign_seconds").End()
	pipe := a.Obs.Tracer().Track(obs.PidPipeline, 0, "pipeline")
	campaignSpan := pipe.Begin("campaign", obs.A("victims", len(victims)))
	defer campaignSpan.End()
	defer pipe.Advance(int64(len(victims)))
	a.Obs.Log().Info("campaign start", "victims", len(victims), "workers", opt.Workers)
	// Per-victim completion events flow through an ordered sink, so
	// OnReport observes victims in input order — the same sequence a
	// serial campaign would deliver — regardless of worker count.
	sink := obs.NewOrderedSink[*Report](len(victims), func(i int, reps []*Report) {
		if opt.OnReport != nil && len(reps) == 1 {
			opt.OnReport(i, reps[0])
		}
	})
	reports, err := parallel.MapErr(len(victims), opt.Workers, func(i int) (*Report, error) {
		o := opt
		o.MeasureSeed = opt.MeasureSeed + uint64(i)*7919
		// Stable campaign-lane assignment: trace lanes follow input
		// order, not completion order.
		o.traceTID = int64(i) + 1
		rep, err := a.Run(victims[i], o)
		if err != nil {
			sink.Done(i)
			return nil, fmt.Errorf("core: victim %s: %w", victims[i].Name, err)
		}
		sink.Emit(i, rep)
		sink.Done(i)
		return rep, nil
	})
	if err != nil {
		return nil, err
	}

	c := &Campaign{Reports: reports}
	var matchSum, reductionSum, coverageSum float64
	extracted := 0
	for _, rep := range reports {
		c.Victims++
		if rep.CorrectIdentity {
			c.Identified++
		}
		if rep.UsedQueryProbes && rep.CorrectIdentity {
			c.ProbeResolved++
		}
		if rep.ArchConfirmed {
			c.ArchConfirmed++
		}
		if rep.ExtractError != "" {
			c.ExtractFailed++
		}
		if rep.ExtractSkipped != "" {
			c.ExtractSkipped++
		}
		if rep.ExtractInterrupted {
			c.ExtractInterrupted++
		}
		if rep.Extract != nil {
			extracted++
			matchSum += rep.MatchRate
			reductionSum += rep.Extract.ReductionFactor()
			coverageSum += rep.Extract.Coverage()
			c.TensorsDegraded += rep.Extract.TensorsDegraded
			c.TotalBitsRead += rep.Extract.LogicalBitsRead()
			c.TotalPhysicalReads += rep.Extract.PhysicalBitReads
		}
	}
	if extracted > 0 {
		c.MeanMatchRate = matchSum / float64(extracted)
		c.MeanReduction = reductionSum / float64(extracted)
		c.MeanCoverage = coverageSum / float64(extracted)
	}
	return c, nil
}

// RunOptions controls one attack run.
type RunOptions struct {
	// MeasureSeed seeds the victim trace measurement.
	MeasureSeed uint64
	// Adversarial adds the §6.2 evaluation with NumSubstitutes baselines.
	Adversarial    bool
	NumSubstitutes int
	// FlipsPerInput is the adversarial token-substitution budget.
	FlipsPerInput int
	// BitErrorRate, when positive, degrades the rowhammer channel: each
	// oracle read flips with this probability. The noise stream is seeded
	// from the victim's name, so campaigns stay byte-identical for any
	// worker count. Pair with ExtractCfg.ReadRepeats to vote it away.
	BitErrorRate float64
	// FaultPlan, when non-nil, injects structured channel faults
	// (transient errors, stuck-at bits, region outages — see
	// sidechannel.FaultPlan). Each victim's faults derive from its name
	// via FaultPlan.ForVictim, so campaigns stay byte-identical for any
	// worker count. Pair with ExtractCfg.Retry to tune the reaction.
	FaultPlan *sidechannel.FaultPlan
	// CheckpointDir, when set, makes every victim's extraction persist a
	// resumable per-victim checkpoint (CheckpointDir/<victim>.ckpt). The
	// directory is created if missing.
	CheckpointDir string
	// Resume, when set with CheckpointDir, restores existing checkpoints
	// instead of starting fresh: completed victims return their stored
	// result, interrupted ones continue with zero re-paid hammer rounds.
	// The campaign must be re-run with the same zoo, config, FaultPlan,
	// and noise settings as the interrupted run.
	Resume bool
	// ReadBudget, when > 0, bounds each victim's metered oracle attempts
	// (successful + faulted). A victim that exceeds it checkpoints (when
	// CheckpointDir is set) and reports ExtractInterrupted instead of an
	// error.
	ReadBudget int64
	// Workers bounds the victims attacked concurrently by RunAll; <= 0
	// selects GOMAXPROCS. The campaign outcome is identical for any
	// value.
	Workers int
	// OnReport, when set, is called by RunAll with each victim's report.
	// Calls are serialized and arrive in victim input order (an ordered
	// sink bridges the worker pool), so progress output is deterministic.
	OnReport func(index int, rep *Report)
	// FlightPath, when set, is where the flight recorder attached to the
	// registry is dumped if this victim's extraction is interrupted,
	// fails, or degrades tensors under faults. With CheckpointDir set the
	// dump instead lands next to the checkpoint as <victim>.flight.json,
	// so each victim's post-mortem is its own file.
	FlightPath string

	// traceTID is the campaign-lane thread id this victim's trace track
	// uses; RunAll assigns input-index+1 so lanes are stable across
	// worker counts. Zero (a direct Run call) maps to lane 1.
	traceTID int64
}

// pickSubstitute returns the s-th distillation baseline for the victim: a
// pre-trained model with a compatible vocabulary size that is not the
// victim's own release, scanning the pool from a per-s offset so distinct
// substitutes pick distinct baselines where possible. It returns nil when
// no pool member qualifies — stepping blindly to the next index (the old
// behavior) could land right back on the victim's own release or an
// incompatible vocabulary.
func pickSubstitute(z *zoo.Zoo, victim *zoo.FineTuned, s int) *zoo.Pretrained {
	n := len(z.Pretrained)
	for off := 0; off < n; off++ {
		p := z.Pretrained[(s+1+off)%n]
		if p.Name == victim.Pretrained.Name || p.Model.Vocab != victim.Model.Vocab {
			continue
		}
		return p
	}
	return nil
}

// checkpointName maps a victim name to a filesystem-safe checkpoint file
// name. Victim names come from zoo configuration and may hold separators
// or other characters that are unsafe in a single path element.
func checkpointName(victim string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == '.', r == '_', r == '-':
			return r
		}
		return '_'
	}, victim)
	return safe + ".ckpt"
}

// flightDumpPath returns where a victim's flight dump lands: next to its
// checkpoint when CheckpointDir is set, else RunOptions.FlightPath
// (empty = no dump).
func flightDumpPath(opt RunOptions, victim string) string {
	if opt.CheckpointDir != "" {
		return filepath.Join(opt.CheckpointDir,
			strings.TrimSuffix(checkpointName(victim), ".ckpt")+".flight.json")
	}
	return opt.FlightPath
}

// dumpFlight writes the attached flight recorder's post-mortem for a
// victim whose extraction went wrong. Nil-safe on every axis: without a
// recorder or a destination it is a no-op.
func (a *Attack) dumpFlight(opt RunOptions, victim, reason string) {
	f := a.Obs.Flight()
	path := flightDumpPath(opt, victim)
	if f == nil || path == "" {
		return
	}
	if err := f.Dump(path, reason); err != nil {
		a.Obs.Log().Error("flight dump failed", "victim", victim, "path", path, "err", err)
		return
	}
	a.Obs.Log().Info("flight recorder dumped", "victim", victim, "path", path, "reason", reason)
}

// Run executes the two-level attack against a black-box victim.
func (a *Attack) Run(victim *zoo.FineTuned, opt RunOptions) (*Report, error) {
	rep := &Report{
		Victim:         victim.Name,
		TruePretrained: victim.Pretrained.Name,
	}
	a.Obs.Counter("core.victims_attacked").Inc()
	log := a.Obs.Log().With("victim", victim.Name)
	log.Info("attack start")
	// The victim's trace lane: every phase span below lands here, with
	// the lane clock advanced only by simulated quantities (kernel-trace
	// microseconds, oracle rounds, validation forwards) so the exported
	// trace is byte-identical for any worker count.
	tid := opt.traceTID
	if tid == 0 {
		tid = 1
	}
	tk := a.Obs.Tracer().Track(obs.PidCampaign, tid, victim.Name)
	attackSpan := tk.Begin("attack", obs.A("victim", victim.Name))
	defer attackSpan.End()
	// Every black-box interaction with the victim — query-output probes,
	// the extraction stop condition, adversarial transfer tests and
	// distillation records — goes through this counted path, so
	// core.victim_queries is the attacker's total query budget.
	vq := a.Obs.Counter("core.victim_queries")
	countedPredict := func(tokens []int) int {
		vq.Inc()
		return victim.Model.Predict(tokens)
	}

	// ---- Level 1: identify the pre-trained model. ----
	identifySpan := a.Obs.StartSpan("core.phase.identify_seconds")
	identifyStart := time.Now()
	identifyTrace := tk.Begin("identify")
	trace := victim.Trace(gpusim.Options{MeasureSeed: opt.MeasureSeed, JitterMagnitude: 0.3})
	// The simulated kernel timeline is the natural clock for this phase.
	tk.Advance(int64(trace.Duration()))
	top := a.Classifier.PredictTopK(trace, 3)
	identified := top[0]
	cand := a.Zoo.PretrainedByName(identified)
	if cand == nil {
		identifyTrace.End()
		identifySpan.End()
		return nil, fmt.Errorf("core: classifier produced unknown candidate %q", identified)
	}

	// Profile-ambiguous candidates need the query-output fingerprint.
	ambiguous := a.Zoo.AmbiguousWith(cand)
	if len(ambiguous) > 1 {
		rep.UsedQueryProbes = true
		cands := make([]*queryfp.Candidate, len(ambiguous))
		for i, p := range ambiguous {
			cands[i] = &queryfp.Candidate{Name: p.Name, Vocab: p.Vocab}
		}
		res := queryfp.Detect(cands, func(text string) []float32 {
			vq.Inc()
			_, probs := victim.ClassifyText(text)
			return probs
		}, 4)
		rep.ProbeQueries = res.Queries
		if res.Best != "" {
			identified = res.Best
		}
	}
	rep.Identified = identified
	rep.CorrectIdentity = identified == victim.Pretrained.Name

	pre := a.Zoo.PretrainedByName(identified)

	// Cross-check the identified architecture against the victim's
	// bus-probe allocation map before paying for rowhammer.
	am := sidechannel.MapModel(victim.Model)
	if inferred, err := sidechannel.InferArchitecture(am.Sizes()); err == nil {
		rep.ArchConfirmed = inferred.Layers == pre.Model.Layers &&
			inferred.Hidden == pre.Model.Hidden &&
			inferred.FFN == pre.Model.FFN
	}
	identifyTrace.End()
	identifySpan.End()
	a.Obs.Histogram("core.victim_identify_seconds").Observe(time.Since(identifyStart).Seconds())
	log.Info("identified", "as", identified, "correct", rep.CorrectIdentity,
		"probes", rep.ProbeQueries, "arch_confirmed", rep.ArchConfirmed)

	if pre.ArchName != victim.Pretrained.ArchName {
		// Architecture mismatch: the weight extraction cannot even start.
		// Record the reason explicitly — a campaign summary must be able
		// to tell "never attempted" apart from "attempted and failed".
		rep.ExtractSkipped = fmt.Sprintf(
			"identified release %s has architecture %s, victim's bus-probe layout says %s: extraction never attempted",
			identified, pre.ArchName, victim.Pretrained.ArchName)
		a.Obs.Counter("core.extract_skipped").Inc()
		tk.Instant("extract_skipped", obs.A("identified", identified))
		log.Warn("extraction skipped", "reason", "architecture mismatch", "identified", identified)
		return rep, nil
	}

	// ---- Level 2: selective weight extraction. ----
	extractSpan := a.Obs.StartSpan("core.phase.extract_seconds")
	extractStart := time.Now()
	extractTrace := tk.Begin("extract")
	oracle := sidechannel.NewOracle(victim.Model)
	oracle.SetObs(a.Obs)
	if opt.BitErrorRate > 0 {
		// The noise stream derives from the victim's identity, keeping
		// RunAll byte-identical across worker counts.
		oracle.SetNoise(opt.BitErrorRate, rng.Seed("oracle-noise", victim.Name))
	}
	// The fault plan likewise derives from the victim's identity.
	oracle.SetFaultPlan(opt.FaultPlan.ForVictim(victim.Name))
	ex := &extract.Extractor{
		Pre:        pre.Model,
		Oracle:     oracle,
		Cfg:        a.ExtractCfg,
		Victim:     countedPredict,
		Obs:        a.Obs,
		Resume:     opt.Resume,
		ReadBudget: opt.ReadBudget,
		Trace:      tk,
	}
	if opt.CheckpointDir != "" {
		if err := os.MkdirAll(opt.CheckpointDir, 0o755); err != nil {
			extractTrace.End()
			extractSpan.End()
			return nil, fmt.Errorf("core: checkpoint dir: %w", err)
		}
		ex.CheckpointPath = filepath.Join(opt.CheckpointDir, checkpointName(victim.Name))
	}
	clone, st, err := ex.Run(victim.Task.Labels, victim.Dev)
	extractTrace.End()
	extractSpan.End()
	a.Obs.Histogram("core.victim_extract_seconds").Observe(time.Since(extractStart).Seconds())
	if errors.Is(err, extract.ErrInterrupted) {
		// The read budget ran out: the work done so far is checkpointed
		// (when CheckpointDir is set) and a Resume run will finish it.
		// Not a failure — the campaign continues with the other victims.
		rep.ExtractInterrupted = true
		a.Obs.Counter("core.extract_interrupted").Inc()
		tk.Instant("extract_interrupted")
		log.Warn("extraction interrupted", "err", err)
		a.dumpFlight(opt, victim.Name, "extraction interrupted: "+err.Error())
		return rep, nil
	}
	if err != nil {
		// A malformed address map (or channel fault) loses this victim's
		// clone but not the campaign: record the failure and return the
		// level-1 results.
		rep.ExtractError = err.Error()
		a.Obs.Counter("core.extract_failures").Inc()
		tk.Instant("extract_failed")
		log.Error("extraction failed", "err", err)
		a.dumpFlight(opt, victim.Name, "extraction failed: "+err.Error())
		return rep, nil
	}
	rep.Extract = st
	rep.Clone = clone
	if st.TensorsDegraded > 0 {
		// Fault-budget exhaustion: the run completed, but some tensors
		// fell back to the baseline — leave the black-box record of how.
		a.dumpFlight(opt, victim.Name,
			fmt.Sprintf("extraction degraded %d tensors", st.TensorsDegraded))
	}

	evalSpan := a.Obs.StartSpan("core.phase.evaluate_seconds")
	evalTrace := tk.Begin("evaluate")
	vp := victim.Model.Predictions(victim.Dev)
	cp := clone.Predictions(victim.Dev)
	rep.MatchRate = stats.MatchRate(vp, cp)
	rep.VictimAcc = victim.Model.Evaluate(victim.Dev)
	rep.CloneAcc = clone.Evaluate(victim.Dev)
	rep.VictimF1 = victim.Model.EvaluateF1(victim.Dev)
	rep.CloneF1 = clone.EvaluateF1(victim.Dev)
	// Six passes over the dev set (predictions, accuracy, F1 × victim
	// and clone) — a deterministic work unit for the lane clock.
	tk.Advance(int64(6 * len(victim.Dev)))
	evalTrace.End()
	evalSpan.End()
	log.Info("evaluated", "match_rate", rep.MatchRate, "clone_acc", rep.CloneAcc)

	// ---- Optional: adversarial attack (Fig 18). ----
	if opt.Adversarial {
		advSpan := a.Obs.StartSpan("core.phase.adversarial_seconds")
		advTrace := tk.Begin("adversarial", obs.A("substitutes", opt.NumSubstitutes))
		flips := opt.FlipsPerInput
		if flips <= 0 {
			flips = 2
		}
		rep.AdvClone = adversarial.Evaluate(clone, countedPredict, victim.Dev, flips, a.Obs).SuccessRate()
		inputs := adversarial.RecordInputs(victim.Model.Vocab, victim.Task.SeqLen,
			4*len(victim.Train), rng.Seed("adv-records", victim.Name))
		for s := 0; s < opt.NumSubstitutes; s++ {
			pre := pickSubstitute(a.Zoo, victim, s)
			if pre == nil {
				rep.AdvSkipped = append(rep.AdvSkipped, fmt.Sprintf(
					"substitute %d: no pre-trained candidate with vocab size %d other than the victim's own release %s",
					s, victim.Model.Vocab, victim.Pretrained.Name))
				continue
			}
			sub := adversarial.BuildSubstitute(pre.Model, countedPredict, inputs,
				victim.Task.Labels, rng.Seed("substitute", victim.Name, fmt.Sprint(s)), a.Obs)
			rep.AdvSubstitutes = append(rep.AdvSubstitutes,
				adversarial.Evaluate(sub, countedPredict, victim.Dev, flips, a.Obs).SuccessRate())
		}
		// One attack evaluation per substitute plus the clone itself.
		tk.Advance(int64((1 + opt.NumSubstitutes) * len(victim.Dev)))
		advTrace.End()
		advSpan.End()
	}
	return rep, nil
}

package core

import (
	"strings"
	"sync"
	"testing"

	"decepticon/internal/zoo"
)

var (
	prepOnce sync.Once
	testZ    *zoo.Zoo
	testAtk  *Attack
)

// getAttack prepares one shared attack instance. The zoo uses the
// small-architecture build with real training so extraction metrics are
// meaningful, at reduced population.
func getAttack(t *testing.T) (*Attack, *zoo.Zoo) {
	t.Helper()
	prepOnce.Do(func() {
		cfg := zoo.SmallBuildConfig()
		cfg.NumPretrained = 8
		cfg.NumFineTuned = 12
		testZ = zoo.Build(cfg)
		testAtk = Prepare(testZ, DefaultPrepareConfig())
	})
	return testAtk, testZ
}

// victimWithUniqueProfile returns a fine-tuned victim whose pre-trained
// model is not profile-ambiguous.
func victimWithUniqueProfile(z *zoo.Zoo) *zoo.FineTuned {
	for _, f := range z.FineTuned {
		if len(z.AmbiguousWith(f.Pretrained)) == 1 {
			return f
		}
	}
	return nil
}

// victimWithAmbiguousProfile returns a victim from an ambiguity cluster.
func victimWithAmbiguousProfile(z *zoo.Zoo) *zoo.FineTuned {
	for _, f := range z.FineTuned {
		if len(z.AmbiguousWith(f.Pretrained)) > 1 {
			return f
		}
	}
	return nil
}

func TestEndToEndUniqueVictim(t *testing.T) {
	atk, z := getAttack(t)
	victim := victimWithUniqueProfile(z)
	if victim == nil {
		t.Skip("no unique-profile victim in reduced zoo")
	}
	rep, err := atk.Run(victim, RunOptions{MeasureSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CorrectIdentity {
		t.Fatalf("identified %q, true %q", rep.Identified, rep.TruePretrained)
	}
	if rep.UsedQueryProbes {
		t.Fatal("unique victim must not need query probes")
	}
	if rep.Extract == nil {
		t.Fatal("extraction did not run")
	}
	if rep.MatchRate < 0.9 {
		t.Fatalf("clone match rate %v < 0.9 (paper: 0.94)", rep.MatchRate)
	}
	if d := rep.VictimAcc - rep.CloneAcc; d > 0.1 || d < -0.1 {
		t.Fatalf("clone accuracy %v far from victim %v", rep.CloneAcc, rep.VictimAcc)
	}
}

func TestEndToEndAmbiguousVictimUsesProbes(t *testing.T) {
	atk, z := getAttack(t)
	victim := victimWithAmbiguousProfile(z)
	if victim == nil {
		t.Skip("no ambiguity cluster in reduced zoo")
	}
	rep, err := atk.Run(victim, RunOptions{MeasureSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The CNN may or may not land on a cluster member as top-1; when it
	// does, the probes must fire and resolve the identity.
	if rep.UsedQueryProbes {
		if rep.ProbeQueries == 0 {
			t.Fatal("probe path used but no queries counted")
		}
		if !rep.CorrectIdentity {
			t.Fatalf("probes resolved to %q, true %q", rep.Identified, rep.TruePretrained)
		}
	}
	if rep.Identified == "" {
		t.Fatal("no identification produced")
	}
}

func TestAdversarialStage(t *testing.T) {
	atk, z := getAttack(t)
	victim := victimWithUniqueProfile(z)
	if victim == nil {
		t.Skip("no unique-profile victim in reduced zoo")
	}
	rep, err := atk.Run(victim, RunOptions{MeasureSeed: 3, Adversarial: true, NumSubstitutes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.AdvSubstitutes) != 2 {
		t.Fatalf("substitutes evaluated: %d", len(rep.AdvSubstitutes))
	}
	// The clone is near-exact, so its attack should beat every distilled
	// substitute (Fig 18's shape).
	for i, s := range rep.AdvSubstitutes {
		if s > rep.AdvClone {
			t.Fatalf("substitute %d success %v exceeds clone's %v", i, s, rep.AdvClone)
		}
	}
}

func TestReportFields(t *testing.T) {
	atk, z := getAttack(t)
	rep, err := atk.Run(z.FineTuned[0], RunOptions{MeasureSeed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Victim == "" || rep.TruePretrained == "" || rep.Identified == "" {
		t.Fatalf("incomplete report: %+v", rep)
	}
	if !strings.Contains(rep.Victim, "__ft-") {
		t.Fatalf("victim name %q looks wrong", rep.Victim)
	}
	if rep.Extract != nil && rep.Clone == nil {
		t.Fatal("extraction ran but clone missing")
	}
}

func TestIdentificationAccuracyAcrossVictims(t *testing.T) {
	atk, z := getAttack(t)
	correct := 0
	for i, f := range z.FineTuned {
		rep, err := atk.Run(f, RunOptions{MeasureSeed: uint64(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		if rep.CorrectIdentity {
			correct++
		}
	}
	frac := float64(correct) / float64(len(z.FineTuned))
	if frac < 0.6 {
		t.Fatalf("end-to-end identification rate %v too low", frac)
	}
}

func TestArchConfirmedOnCorrectIdentification(t *testing.T) {
	atk, z := getAttack(t)
	victim := victimWithUniqueProfile(z)
	if victim == nil {
		t.Skip("no unique-profile victim in reduced zoo")
	}
	rep, err := atk.Run(victim, RunOptions{MeasureSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorrectIdentity && !rep.ArchConfirmed {
		t.Fatal("bus-probe architecture check must confirm a correct identification")
	}
}

func TestCampaignAggregation(t *testing.T) {
	atk, z := getAttack(t)
	victims := z.FineTuned[:6]
	c, err := atk.RunAll(victims, RunOptions{MeasureSeed: 50})
	if err != nil {
		t.Fatal(err)
	}
	if c.Victims != len(victims) || len(c.Reports) != len(victims) {
		t.Fatalf("campaign covered %d victims", c.Victims)
	}
	if c.IdentificationRate() < 0.5 {
		t.Fatalf("identification rate %v", c.IdentificationRate())
	}
	if c.MeanMatchRate < 0.9 {
		t.Fatalf("mean match rate %v", c.MeanMatchRate)
	}
	if c.TotalBitsRead == 0 {
		t.Fatal("no bits read across the campaign")
	}
	if c.MeanReduction < 5 {
		t.Fatalf("mean reduction %v", c.MeanReduction)
	}
}

package core

import (
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"

	"decepticon/internal/extract"
	"decepticon/internal/obs"
	"decepticon/internal/sidechannel"
	"decepticon/internal/zoo"
)

var (
	prepOnce sync.Once
	testZ    *zoo.Zoo
	testAtk  *Attack
)

// getAttack prepares one shared attack instance. The zoo uses the
// small-architecture build with real training so extraction metrics are
// meaningful, at reduced population.
func getAttack(t *testing.T) (*Attack, *zoo.Zoo) {
	t.Helper()
	prepOnce.Do(func() {
		cfg := zoo.SmallBuildConfig()
		cfg.NumPretrained = 8
		cfg.NumFineTuned = 12
		testZ = zoo.MustBuild(cfg)
		atk, err := Prepare(testZ, DefaultPrepareConfig())
		if err != nil {
			panic(err)
		}
		testAtk = atk
	})
	return testAtk, testZ
}

// victimWithUniqueProfile returns a fine-tuned victim whose pre-trained
// model is not profile-ambiguous.
func victimWithUniqueProfile(z *zoo.Zoo) *zoo.FineTuned {
	for _, f := range z.FineTuned {
		if len(z.AmbiguousWith(f.Pretrained)) == 1 {
			return f
		}
	}
	return nil
}

// victimWithAmbiguousProfile returns a victim from an ambiguity cluster.
func victimWithAmbiguousProfile(z *zoo.Zoo) *zoo.FineTuned {
	for _, f := range z.FineTuned {
		if len(z.AmbiguousWith(f.Pretrained)) > 1 {
			return f
		}
	}
	return nil
}

func TestEndToEndUniqueVictim(t *testing.T) {
	atk, z := getAttack(t)
	victim := victimWithUniqueProfile(z)
	if victim == nil {
		t.Skip("no unique-profile victim in reduced zoo")
	}
	rep, err := atk.Run(victim, RunOptions{MeasureSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CorrectIdentity {
		t.Fatalf("identified %q, true %q", rep.Identified, rep.TruePretrained)
	}
	if rep.UsedQueryProbes {
		t.Fatal("unique victim must not need query probes")
	}
	if rep.Extract == nil {
		t.Fatal("extraction did not run")
	}
	if rep.MatchRate < 0.9 {
		t.Fatalf("clone match rate %v < 0.9 (paper: 0.94)", rep.MatchRate)
	}
	if d := rep.VictimAcc - rep.CloneAcc; d > 0.1 || d < -0.1 {
		t.Fatalf("clone accuracy %v far from victim %v", rep.CloneAcc, rep.VictimAcc)
	}
}

func TestEndToEndAmbiguousVictimUsesProbes(t *testing.T) {
	atk, z := getAttack(t)
	victim := victimWithAmbiguousProfile(z)
	if victim == nil {
		t.Skip("no ambiguity cluster in reduced zoo")
	}
	rep, err := atk.Run(victim, RunOptions{MeasureSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The CNN may or may not land on a cluster member as top-1; when it
	// does, the probes must fire and resolve the identity.
	if rep.UsedQueryProbes {
		if rep.ProbeQueries == 0 {
			t.Fatal("probe path used but no queries counted")
		}
		if !rep.CorrectIdentity {
			t.Fatalf("probes resolved to %q, true %q", rep.Identified, rep.TruePretrained)
		}
	}
	if rep.Identified == "" {
		t.Fatal("no identification produced")
	}
}

func TestAdversarialStage(t *testing.T) {
	atk, z := getAttack(t)
	victim := victimWithUniqueProfile(z)
	if victim == nil {
		t.Skip("no unique-profile victim in reduced zoo")
	}
	rep, err := atk.Run(victim, RunOptions{MeasureSeed: 3, Adversarial: true, NumSubstitutes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.AdvSubstitutes) != 2 {
		t.Fatalf("substitutes evaluated: %d", len(rep.AdvSubstitutes))
	}
	// The clone is near-exact, so its attack should beat every distilled
	// substitute (Fig 18's shape).
	for i, s := range rep.AdvSubstitutes {
		if s > rep.AdvClone {
			t.Fatalf("substitute %d success %v exceeds clone's %v", i, s, rep.AdvClone)
		}
	}
}

func TestReportFields(t *testing.T) {
	atk, z := getAttack(t)
	rep, err := atk.Run(z.FineTuned[0], RunOptions{MeasureSeed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Victim == "" || rep.TruePretrained == "" || rep.Identified == "" {
		t.Fatalf("incomplete report: %+v", rep)
	}
	if !strings.Contains(rep.Victim, "__ft-") {
		t.Fatalf("victim name %q looks wrong", rep.Victim)
	}
	if rep.Extract != nil && rep.Clone == nil {
		t.Fatal("extraction ran but clone missing")
	}
}

func TestIdentificationAccuracyAcrossVictims(t *testing.T) {
	atk, z := getAttack(t)
	correct := 0
	for i, f := range z.FineTuned {
		rep, err := atk.Run(f, RunOptions{MeasureSeed: uint64(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		if rep.CorrectIdentity {
			correct++
		}
	}
	frac := float64(correct) / float64(len(z.FineTuned))
	if frac < 0.6 {
		t.Fatalf("end-to-end identification rate %v too low", frac)
	}
}

func TestArchConfirmedOnCorrectIdentification(t *testing.T) {
	atk, z := getAttack(t)
	victim := victimWithUniqueProfile(z)
	if victim == nil {
		t.Skip("no unique-profile victim in reduced zoo")
	}
	rep, err := atk.Run(victim, RunOptions{MeasureSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorrectIdentity && !rep.ArchConfirmed {
		t.Fatal("bus-probe architecture check must confirm a correct identification")
	}
}

// tinyZooCfg returns the smallest population worth attacking, for tests
// that must build a zoo more than once.
func tinyZooCfg() zoo.BuildConfig {
	cfg := zoo.SmallBuildConfig()
	cfg.NumPretrained = 3
	cfg.NumFineTuned = 4
	cfg.PretrainExamples = 40
	cfg.FineTuneExamples = 40
	return cfg
}

// TestParallelPipelineMatchesSerial is the acceptance check for the
// parallel execution layer: Build + Prepare + RunAll at Workers=1 and
// Workers=2 must produce byte-identical campaigns, down to the cloned
// weights.
func TestParallelPipelineMatchesSerial(t *testing.T) {
	run := func(workers int) *Campaign {
		cfg := tinyZooCfg()
		cfg.Workers = workers
		z := zoo.MustBuild(cfg)
		atk, err := Prepare(z, PrepareConfig{
			SamplesPerModel: 2, ImgSize: 32, Epochs: 8, LR: 0.002, Seed: 7,
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		c, err := atk.RunAll(z.FineTuned, RunOptions{MeasureSeed: 11, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	serial := run(1)
	par := run(2)

	if serial.Victims != par.Victims ||
		serial.Identified != par.Identified ||
		serial.ProbeResolved != par.ProbeResolved ||
		serial.ArchConfirmed != par.ArchConfirmed ||
		serial.MeanMatchRate != par.MeanMatchRate ||
		serial.MeanReduction != par.MeanReduction ||
		serial.TotalBitsRead != par.TotalBitsRead {
		t.Fatalf("campaign counters diverge:\nserial: %+v\npar:    %+v", serial, par)
	}
	for i := range serial.Reports {
		a, b := *serial.Reports[i], *par.Reports[i]
		ca, cb := a.Clone, b.Clone
		a.Clone, b.Clone = nil, nil
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("report %d diverges:\nserial: %+v\npar:    %+v", i, a, b)
		}
		if (ca == nil) != (cb == nil) {
			t.Fatalf("report %d: clone presence diverges", i)
		}
		if ca == nil {
			continue
		}
		pa, pb := ca.Params(), cb.Params()
		for j := range pa {
			da, db := pa[j].Value.Data, pb[j].Value.Data
			for k := range da {
				if da[k] != db[k] {
					t.Fatalf("report %d: clone tensor %s differs at %d", i, pa[j].Name, k)
				}
			}
		}
	}
}

// TestScheduledCampaignWorkerInvariant: a campaign run with the
// information-ordered extraction scheduler must stay byte-identical for
// any worker count — the schedule is a pure function of each victim's
// pre-trained baseline and the estimator lives per victim, so no
// cross-victim state can leak through the pool.
func TestScheduledCampaignWorkerInvariant(t *testing.T) {
	atk0, z := getAttack(t)
	atk := *atk0
	cfg := extract.DefaultConfig()
	cfg.ReadRepeats = 3
	// Disable the layer-wise early stop so every victim actually walks
	// the scheduled path instead of finishing on the head alone.
	cfg.StopMatchRate = 2
	atk.ExtractCfg = cfg
	victims := z.FineTuned[:4]
	plan := &sidechannel.FaultPlan{Seed: 3, TransientRate: 0.01, StuckRate: 0.0001}
	run := func(workers int) *Campaign {
		c, err := atk.RunAll(victims, RunOptions{
			MeasureSeed:         31,
			Workers:             workers,
			ScheduledExtraction: true,
			FaultPlan:           plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	serial := run(1)
	par := run(3)
	scheduledRan := false
	for i := range serial.Reports {
		a, b := *serial.Reports[i], *par.Reports[i]
		if a.Extract != nil && a.Extract.VoteWidthN > 0 {
			scheduledRan = true
		}
		ca, cb := a.Clone, b.Clone
		a.Clone, b.Clone = nil, nil
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("report %d diverges across worker counts:\nserial: %+v\npar:    %+v", i, a, b)
		}
		if ca == nil || cb == nil {
			continue
		}
		pa, pb := ca.Params(), cb.Params()
		for j := range pa {
			da, db := pa[j].Value.Data, pb[j].Value.Data
			for k := range da {
				if da[k] != db[k] {
					t.Fatalf("report %d: clone tensor %s differs at %d", i, pa[j].Name, k)
				}
			}
		}
	}
	if !scheduledRan {
		t.Fatal("no report shows scheduler activity — the scheduled path never ran")
	}
}

// TestPrepareFillsZeroFieldsIndividually guards the config-defaulting
// bugfix: setting some fields must not silently replace the others with
// the full default config (the old behavior whenever SamplesPerModel
// was zero).
func TestPrepareFillsZeroFieldsIndividually(t *testing.T) {
	_, z := getAttack(t)
	// SamplesPerModel left zero: it must be defaulted while the explicit
	// ImgSize choice survives.
	atk, err := Prepare(z, PrepareConfig{ImgSize: 32, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if atk.Classifier.ImgSize != 32 {
		t.Fatalf("explicit ImgSize overwritten: got %d, want 32", atk.Classifier.ImgSize)
	}
	// All-zero config still resolves to the documented defaults.
	atk2, err := Prepare(z, PrepareConfig{Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if atk2.Classifier.ImgSize != DefaultPrepareConfig().ImgSize {
		t.Fatalf("zero ImgSize not defaulted: got %d", atk2.Classifier.ImgSize)
	}
}

func TestPrepareRejectsBadImgSize(t *testing.T) {
	atk, err := Prepare(&zoo.Zoo{}, PrepareConfig{SamplesPerModel: 1, ImgSize: 48})
	if err == nil {
		t.Fatal("ImgSize 48 must be rejected")
	}
	if atk != nil {
		t.Fatal("rejected Prepare must not return an attack")
	}
	if !strings.Contains(err.Error(), "ImgSize") {
		t.Fatalf("error %v does not explain the ImgSize constraint", err)
	}
}

// TestPickSubstituteValidity guards the substitute-fallback bugfix: the
// chosen distillation baseline is never the victim's own pre-trained
// release and always vocabulary-compatible, for every victim and every
// substitute index; nil only when no pool member qualifies.
func TestPickSubstituteValidity(t *testing.T) {
	_, z := getAttack(t)
	for _, f := range z.FineTuned {
		for s := 0; s < 2*len(z.Pretrained); s++ {
			p := pickSubstitute(z, f, s)
			if p == nil {
				for _, q := range z.Pretrained {
					if q.Name != f.Pretrained.Name && q.Arch.Vocab == f.Pretrained.Arch.Vocab {
						t.Fatalf("victim %s s=%d: nil though %s qualifies", f.Name, s, q.Name)
					}
				}
				continue
			}
			if p.Name == f.Pretrained.Name {
				t.Fatalf("victim %s s=%d: substitute is the victim's own release", f.Name, s)
			}
			if p.Arch.Vocab != f.Pretrained.Arch.Vocab {
				t.Fatalf("victim %s s=%d: substitute vocab %d != victim vocab %d",
					f.Name, s, p.Arch.Vocab, f.Pretrained.Arch.Vocab)
			}
		}
	}
}

func TestPickSubstituteNilWhenPoolExhausted(t *testing.T) {
	_, z := getAttack(t)
	victim := z.FineTuned[0]
	// A pool holding only the victim's own release offers no valid
	// baseline.
	solo := &zoo.Zoo{Pretrained: []*zoo.Pretrained{victim.Pretrained}}
	if p := pickSubstitute(solo, victim, 0); p != nil {
		t.Fatalf("expected nil from exhausted pool, got %s", p.Name)
	}
}

// TestObsReconcilesWithCampaign is the observability acceptance check:
// one registry observing a full campaign — with majority-vote reads and
// an unreliable oracle — must agree exactly with the per-report
// extraction stats and the oracle meters, and its counters must be
// byte-identical across worker counts.
func TestObsReconcilesWithCampaign(t *testing.T) {
	run := func(workers int) (*Campaign, obs.Snapshot) {
		reg := obs.New()
		cfg := tinyZooCfg()
		cfg.Workers = workers
		cfg.Obs = reg
		z := zoo.MustBuild(cfg)
		atk, err := Prepare(z, PrepareConfig{
			SamplesPerModel: 2, ImgSize: 32, Epochs: 8, LR: 0.002, Seed: 7,
			Workers: workers, Obs: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		ec := extract.DefaultConfig()
		ec.ReadRepeats = 3
		atk.ExtractCfg = ec
		c, err := atk.RunAll(z.FineTuned, RunOptions{
			MeasureSeed: 11, Workers: workers, BitErrorRate: 0.01,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c, reg.Snapshot()
	}
	c, snap := run(1)

	var logical, physical, hammer, queries int64
	for _, rep := range c.Reports {
		queries += int64(rep.ProbeQueries)
		if rep.Extract == nil {
			continue
		}
		logical += rep.Extract.LogicalBitsRead()
		physical += rep.Extract.PhysicalBitReads
		hammer += rep.Extract.HammerRounds()
		queries += int64(rep.Extract.QueriesUsed)
	}
	if logical == 0 {
		t.Fatal("campaign extracted nothing")
	}
	if physical != 3*logical {
		t.Fatalf("ReadRepeats=3: physical reads %d, want 3×logical (%d)", physical, 3*logical)
	}
	checks := []struct {
		counter string
		want    int64
	}{
		{"sidechannel.bit_reads_physical", physical},
		{"sidechannel.hammer_rounds", hammer},
		{"extract.bits_logical", logical - snap.Counters["extract.head_bits_logical"]},
		{"core.victim_queries", queries},
		{"core.victims_attacked", int64(c.Victims)},
		{"extract.runs", int64(c.Victims - c.ExtractFailed)},
	}
	for _, ck := range checks {
		if got := snap.Counters[ck.counter]; got != ck.want {
			t.Errorf("registry %s = %d, campaign says %d", ck.counter, got, ck.want)
		}
	}
	if c.TotalBitsRead != logical || c.TotalPhysicalReads != physical || c.TotalHammerRounds() != hammer {
		t.Fatalf("campaign totals (logical %d, physical %d, hammer %d) diverge from reports (%d, %d, %d)",
			c.TotalBitsRead, c.TotalPhysicalReads, c.TotalHammerRounds(), logical, physical, hammer)
	}
	// The noisy channel must have flipped at least one read at this scale.
	if snap.Counters["sidechannel.bit_flips_injected"] == 0 {
		t.Fatal("BitErrorRate=0.01 injected no flips")
	}

	// Worker invariance: counters and gauges (order-independent sums) are
	// byte-identical; wall-time timers legitimately differ.
	_, snap2 := run(2)
	marshal := func(s obs.Snapshot) string {
		b, err := json.Marshal(struct {
			C map[string]int64
			G map[string]float64
		}{s.Counters, s.Gauges})
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if a, b := marshal(snap), marshal(snap2); a != b {
		t.Fatalf("counters diverge across worker counts:\n1 worker:  %s\n2 workers: %s", a, b)
	}
}

func TestCampaignAggregation(t *testing.T) {
	atk, z := getAttack(t)
	victims := z.FineTuned[:6]
	c, err := atk.RunAll(victims, RunOptions{MeasureSeed: 50})
	if err != nil {
		t.Fatal(err)
	}
	if c.Victims != len(victims) || len(c.Reports) != len(victims) {
		t.Fatalf("campaign covered %d victims", c.Victims)
	}
	if c.IdentificationRate() < 0.5 {
		t.Fatalf("identification rate %v", c.IdentificationRate())
	}
	if c.MeanMatchRate < 0.9 {
		t.Fatalf("mean match rate %v", c.MeanMatchRate)
	}
	if c.TotalBitsRead == 0 {
		t.Fatal("no bits read across the campaign")
	}
	if c.MeanReduction < 5 {
		t.Fatalf("mean reduction %v", c.MeanReduction)
	}
}

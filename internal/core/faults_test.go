package core

import (
	"reflect"
	"strings"
	"testing"

	"decepticon/internal/sidechannel"
	"decepticon/internal/zoo"
)

// mismatchedVictim clones a victim but claims a different pre-trained
// architecture name, so the bus-probe cross-check in Run must refuse to
// start the extraction.
func mismatchedVictim(f *zoo.FineTuned) *zoo.FineTuned {
	fakePre := *f.Pretrained
	fakePre.ArchName = f.Pretrained.ArchName + "-other"
	fake := *f
	fake.Pretrained = &fakePre
	return &fake
}

// TestExtractSkippedOnArchMismatch: an architecture mismatch is recorded
// as an explicit skip — never as a failure, never silently.
func TestExtractSkippedOnArchMismatch(t *testing.T) {
	atk, z := getAttack(t)
	fake := mismatchedVictim(z.FineTuned[0])
	rep, err := atk.Run(fake, RunOptions{MeasureSeed: 60})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExtractSkipped == "" {
		t.Fatal("architecture mismatch must be recorded in ExtractSkipped")
	}
	if !strings.Contains(rep.ExtractSkipped, "never attempted") {
		t.Fatalf("skip reason %q does not explain itself", rep.ExtractSkipped)
	}
	if rep.ExtractError != "" {
		t.Fatalf("a skip is not a failure, but ExtractError = %q", rep.ExtractError)
	}
	if rep.Extract != nil || rep.Clone != nil {
		t.Fatal("skipped extraction must not produce results")
	}

	c, err := atk.RunAll([]*zoo.FineTuned{fake}, RunOptions{MeasureSeed: 60})
	if err != nil {
		t.Fatal(err)
	}
	if c.ExtractSkipped != 1 || c.ExtractFailed != 0 {
		t.Fatalf("campaign skips %d / failures %d, want 1 / 0", c.ExtractSkipped, c.ExtractFailed)
	}
}

// compareReports asserts two report slices are byte-identical, clone
// weights included.
func compareReports(t *testing.T, label string, as, bs []*Report) {
	t.Helper()
	if len(as) != len(bs) {
		t.Fatalf("%s: report counts %d vs %d", label, len(as), len(bs))
	}
	for i := range as {
		a, b := *as[i], *bs[i]
		ca, cb := a.Clone, b.Clone
		a.Clone, b.Clone = nil, nil
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: report %d diverges:\nA: %+v\nB: %+v", label, i, a, b)
		}
		if (ca == nil) != (cb == nil) {
			t.Fatalf("%s: report %d clone presence diverges", label, i)
		}
		if ca == nil {
			continue
		}
		pa, pb := ca.Params(), cb.Params()
		for j := range pa {
			for k := range pa[j].Value.Data {
				if pa[j].Value.Data[k] != pb[j].Value.Data[k] {
					t.Fatalf("%s: report %d clone tensor %s differs at %d", label, i, pa[j].Name, k)
				}
			}
		}
	}
}

// TestFaultCampaignWorkerInvariance: a campaign under a seeded fault plan
// is byte-identical for any worker count — each victim's faults derive
// from its name, never from scheduling order.
func TestFaultCampaignWorkerInvariance(t *testing.T) {
	atk, z := getAttack(t)
	victims := z.FineTuned[:4]
	plan := &sidechannel.FaultPlan{Seed: 21, TransientRate: 0.02, StuckRate: 0.0005}
	run := func(workers int) *Campaign {
		c, err := atk.RunAll(victims, RunOptions{MeasureSeed: 70, Workers: workers, FaultPlan: plan})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	serial := run(1)
	par := run(2)
	var faults int64
	for _, rep := range serial.Reports {
		if rep.Extract != nil {
			faults += rep.Extract.ReadFaults
		}
	}
	if faults == 0 {
		t.Fatal("fault plan injected nothing — the invariance check is vacuous")
	}
	if serial.TensorsDegraded != par.TensorsDegraded || serial.MeanCoverage != par.MeanCoverage {
		t.Fatalf("degradation aggregates diverge: %d/%v vs %d/%v",
			serial.TensorsDegraded, serial.MeanCoverage, par.TensorsDegraded, par.MeanCoverage)
	}
	compareReports(t, "workers 1 vs 2", serial.Reports, par.Reports)
}

// TestCampaignCheckpointResume: a campaign interrupted per-victim by a
// read budget, then resumed from its checkpoint directory, must land on
// reports byte-identical to an uninterrupted campaign's.
func TestCampaignCheckpointResume(t *testing.T) {
	atk, z := getAttack(t)
	victims := z.FineTuned[:3]
	plan := &sidechannel.FaultPlan{Seed: 33, TransientRate: 0.01}
	base := RunOptions{MeasureSeed: 80, FaultPlan: plan}

	full, err := atk.RunAll(victims, base)
	if err != nil {
		t.Fatal(err)
	}
	var minAttempts int64 = 1 << 62
	for _, rep := range full.Reports {
		if rep.Extract == nil {
			t.Fatalf("victim %s did not extract in the reference run", rep.Victim)
		}
		if a := rep.Extract.PhysicalBitReads + rep.Extract.ReadFaults; a < minAttempts {
			minAttempts = a
		}
	}

	dir := t.TempDir()
	interrupted := base
	interrupted.CheckpointDir = dir
	interrupted.ReadBudget = minAttempts / 2
	ci, err := atk.RunAll(victims, interrupted)
	if err != nil {
		t.Fatal(err)
	}
	if ci.ExtractInterrupted == 0 {
		t.Fatalf("budget %d interrupted nothing", interrupted.ReadBudget)
	}
	for _, rep := range ci.Reports {
		if rep.ExtractInterrupted && rep.ExtractError != "" {
			t.Fatalf("victim %s: interrupt recorded as failure %q", rep.Victim, rep.ExtractError)
		}
	}

	resumed := base
	resumed.CheckpointDir = dir
	resumed.Resume = true
	cr, err := atk.RunAll(victims, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if cr.ExtractInterrupted != 0 {
		t.Fatal("resumed campaign still interrupted")
	}
	compareReports(t, "resumed vs uninterrupted", cr.Reports, full.Reports)
}

package core

import (
	"fmt"

	"decepticon/internal/fingerprint"
	"decepticon/internal/gpusim"
	"decepticon/internal/obs"
	"decepticon/internal/pipeline"
	"decepticon/internal/rng"
)

// This file wires the pluggable level-1 measurement modalities through
// the pipeline's stage boundary. Each modality gets its own
// MeasureStage+IdentifyStage pair (traceSensor, powerSensor,
// counterSensor — all behind pipeline.TraceStage/IdentifyStage);
// multiMeasure and fusedIdentify compose the requested set into the
// engine's single Trace/Identify slots: one victim inference feeds every
// passive sensor, and the per-modality posteriors pool into one
// identification that degrades gracefully — with logged, metered obs
// counters — when a sensor is jammed or absent.

// sensorStage is one modality's stage pair plus the wiring the
// composites need: availability (is its classifier trained?) and the
// posterior it contributes to fusion.
type sensorStage interface {
	pipeline.TraceStage
	pipeline.IdentifyStage
	modality() fingerprint.Modality
	available() bool
	posterior() []float64
}

// channelSensorSeed derives a victim's attack-time sensor-noise seed for
// one modality — a pure function of (modality, victim, measure seed), so
// campaigns stay byte-identical for any worker count.
func channelSensorSeed(m fingerprint.Modality, victim string, measureSeed uint64) uint64 {
	return rng.Seed("sensor", string(m), victim, fmt.Sprint(measureSeed))
}

// traceSensor is the paper's channel as a stage pair: the kernel launch
// timeline measured through the contention side channel, identified by
// the CNN.
type traceSensor struct {
	r    *attackRun
	post []float64
}

func (t *traceSensor) modality() fingerprint.Modality { return fingerprint.ModalityTrace }
func (t *traceSensor) available() bool                { return t.r.a.Classifier != nil }
func (t *traceSensor) posterior() []float64           { return t.post }

// MeasureTrace records the kernel timeline. Under multiMeasure the
// victim's schedule is already simulated; the trace sensor observes it
// directly.
func (t *traceSensor) MeasureTrace(s *pipeline.State) error {
	t.r.trace = t.r.schedule
	return nil
}

// Identify computes the CNN posterior over the measured timeline.
func (t *traceSensor) Identify(s *pipeline.State) error {
	t.post = t.r.a.Classifier.Posterior(t.r.trace)
	return nil
}

// powerSensor is the Energon-style channel: the board power/thermal
// trace derived from the same inference, identified by a dense
// classifier over its resampled profile.
type powerSensor struct {
	r    *attackRun
	post []float64
}

func (p *powerSensor) modality() fingerprint.Modality { return fingerprint.ModalityPower }
func (p *powerSensor) available() bool                { return p.r.a.PowerClf != nil }
func (p *powerSensor) posterior() []float64           { return p.post }

// MeasureTrace samples the power meter over the victim's inference.
func (p *powerSensor) MeasureTrace(s *pipeline.State) error {
	r := p.r
	r.power = gpusim.PowerTraceOf(r.schedule, gpusim.ChannelOptions{
		Seed:  channelSensorSeed(fingerprint.ModalityPower, r.victim.Name, r.opt.MeasureSeed),
		Noise: fingerprint.DefaultChannelNoise(fingerprint.ModalityPower),
	})
	return nil
}

// Identify computes the power classifier's posterior.
func (p *powerSensor) Identify(s *pipeline.State) error {
	p.post = p.r.a.PowerClf.Posterior(fingerprint.PowerFeatures(p.r.power))
	return nil
}

// counterSensor is the InferNet-style channel: aggregate profiler
// counters from the same inference, identified by a dense classifier.
type counterSensor struct {
	r    *attackRun
	post []float64
}

func (c *counterSensor) modality() fingerprint.Modality { return fingerprint.ModalityCounters }
func (c *counterSensor) available() bool                { return c.r.a.CounterClf != nil }
func (c *counterSensor) posterior() []float64           { return c.post }

// MeasureTrace reads the profiler's aggregate counters for the inference.
func (c *counterSensor) MeasureTrace(s *pipeline.State) error {
	r := c.r
	r.counters = gpusim.CountersOf(r.schedule, gpusim.ChannelOptions{
		Seed:  channelSensorSeed(fingerprint.ModalityCounters, r.victim.Name, r.opt.MeasureSeed),
		Noise: fingerprint.DefaultChannelNoise(fingerprint.ModalityCounters),
	})
	return nil
}

// Identify computes the counter classifier's posterior.
func (c *counterSensor) Identify(s *pipeline.State) error {
	c.post = c.r.a.CounterClf.Posterior(fingerprint.CounterFeatures(c.r.counters))
	return nil
}

// newSensor maps a modality to its stage pair.
func newSensor(m fingerprint.Modality, r *attackRun) sensorStage {
	switch m {
	case fingerprint.ModalityTrace:
		return &traceSensor{r: r}
	case fingerprint.ModalityPower:
		return &powerSensor{r: r}
	default:
		return &counterSensor{r: r}
	}
}

// multiMeasure is the composite TraceStage of a multi-modal run: it
// opens the identify phase exactly like the legacy path, simulates the
// victim's inference once (every sensor is passive — they all tap the
// same run, so the phase clock advances by the one kernel timeline
// regardless of how many sensors listen), then lets each surviving
// sensor record its channel. Jammed and absent sensors degrade the run
// instead of failing it: logged, counted on core.modality_jammed /
// core.modality_absent, and excluded from fusion.
type multiMeasure struct {
	r       *attackRun
	sensors []sensorStage
}

func (m *multiMeasure) MeasureTrace(s *pipeline.State) error {
	r := m.r
	r.prog.SetStage("measure")
	r.identifySpan = r.a.Obs.StartSpan("core.phase.identify_seconds")
	r.identifyStart = s.Clock.Now()
	r.identifyTrace = r.tk.Begin("identify")
	r.schedule = r.victim.Trace(gpusim.Options{MeasureSeed: r.opt.MeasureSeed, JitterMagnitude: 0.3})
	d := int64(r.schedule.Duration())
	r.tk.Advance(d)
	s.Clock.Advance(d)

	jammed := map[fingerprint.Modality]bool{}
	for _, j := range r.opt.Jammed {
		jammed[j] = true
	}
	degraded := false
	for _, sensor := range m.sensors {
		mod := sensor.modality()
		switch {
		case jammed[mod]:
			degraded = true
			r.rep.JammedModalities = append(r.rep.JammedModalities, string(mod))
			r.a.Obs.Counter("core.modality_jammed").Inc()
			r.tk.Instant("modality_jammed", obs.A("modality", string(mod)))
			r.log.Warn("sensor jammed, degrading to surviving modalities", "modality", string(mod))
		case !sensor.available():
			degraded = true
			r.a.Obs.Counter("core.modality_absent").Inc()
			r.tk.Instant("modality_absent", obs.A("modality", string(mod)))
			r.log.Warn("sensor has no trained classifier, degrading to surviving modalities",
				"modality", string(mod))
		default:
			if err := sensor.MeasureTrace(s); err != nil {
				return err
			}
			r.live = append(r.live, sensor)
			r.rep.Modalities = append(r.rep.Modalities, string(mod))
		}
	}
	if degraded {
		r.rep.IdentifyDegraded = true
		r.a.Obs.Counter("core.identify_degraded").Inc()
	}
	if len(r.live) == 0 {
		r.identifyTrace.End()
		r.identifySpan.End()
		return fmt.Errorf("core: every measurement modality is jammed or has no trained classifier")
	}
	return nil
}

// fusedIdentify is the composite IdentifyStage: each live sensor's
// identifier runs, the posteriors pool by weighted log-linear fusion
// (Attack.FusionWeights, equal when unset), and the argmax becomes the
// identified candidate — the same contract the CNN-only Identify honors.
type fusedIdentify struct {
	r *attackRun
}

func (f *fusedIdentify) Identify(s *pipeline.State) error {
	r := f.r
	r.prog.SetStage("identify")
	posts := make([][]float64, len(r.live))
	weights := make([]float64, len(r.live))
	for i, sensor := range r.live {
		if err := sensor.Identify(s); err != nil {
			return err
		}
		posts[i] = sensor.posterior()
		weights[i] = 1
		if w, ok := r.a.FusionWeights[sensor.modality()]; ok {
			weights[i] = w
		}
	}
	fused := fingerprint.FusePosteriors(posts, weights)
	classes := r.a.classes()
	r.identified = classes[fingerprint.ArgMax(fused)]
	if r.a.Zoo.PretrainedByName(r.identified) == nil {
		r.identifyTrace.End()
		r.identifySpan.End()
		return fmt.Errorf("core: fused identifier produced unknown candidate %q", r.identified)
	}
	return nil
}

// classes returns the class list shared by every trained identifier (all
// are built from the same zoo index, so any present one serves).
func (a *Attack) classes() []string {
	switch {
	case a.Classifier != nil:
		return a.Classifier.Classes
	case a.PowerClf != nil:
		return a.PowerClf.Classes
	case a.CounterClf != nil:
		return a.CounterClf.Classes
	}
	return nil
}

// normalizeModalities resolves a run's requested modality set: nil means
// the paper's kernel-trace channel alone (full backward compatibility).
func normalizeModalities(ms []fingerprint.Modality) []fingerprint.Modality {
	if len(ms) == 0 {
		return []fingerprint.Modality{fingerprint.ModalityTrace}
	}
	return ms
}

// multiModal reports whether the run needs the composite sensor path: any
// modality beyond the plain kernel trace, or any jamming to honor. The
// single-trace un-jammed request keeps the legacy stage implementations
// byte-for-byte.
func multiModal(opt RunOptions) bool {
	mods := normalizeModalities(opt.Modalities)
	return len(mods) > 1 || mods[0] != fingerprint.ModalityTrace || len(opt.Jammed) > 0
}

package core

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"decepticon/internal/fingerprint"
	"decepticon/internal/obs"
	"decepticon/internal/zoo"
)

var (
	fusedOnce sync.Once
	fusedZ    *zoo.Zoo
	fusedAtk  *Attack
	fusedObs  *obs.Registry
)

// getFusedAttack prepares one shared multi-modal attack on the tiny zoo:
// all three sensor classifiers trained, fusion weights calibrated.
func getFusedAttack(t *testing.T) (*Attack, *zoo.Zoo) {
	t.Helper()
	fusedOnce.Do(func() {
		fusedZ = zoo.MustBuild(tinyZooCfg())
		fusedObs = obs.New()
		atk, err := Prepare(fusedZ, PrepareConfig{
			SamplesPerModel: 2, ImgSize: 32, Epochs: 8, LR: 0.002, Seed: 7,
			Obs:        fusedObs,
			Modalities: fingerprint.AllModalities(),
		})
		if err != nil {
			panic(err)
		}
		fusedAtk = atk
	})
	return fusedAtk, fusedZ
}

func TestPrepareTrainsModalityClassifiers(t *testing.T) {
	atk, _ := getFusedAttack(t)
	if atk.PowerClf == nil || atk.CounterClf == nil {
		t.Fatal("multi-modal Prepare must train the power and counter classifiers")
	}
	if len(atk.FusionWeights) != 3 {
		t.Fatalf("fusion weights cover %d modalities, want 3", len(atk.FusionWeights))
	}
	var best float64
	for m, w := range atk.FusionWeights {
		if w <= 0 || w > 1 {
			t.Fatalf("weight of %s is %v, want (0, 1]", m, w)
		}
		if w > best {
			best = w
		}
	}
	if best != 1 {
		t.Fatalf("max-normalized weights must peak at 1, got %v", best)
	}
}

// A fully multi-modal campaign must stay byte-identical for any worker
// count: the sensor seeds are pure functions of (modality, victim,
// measure seed), never of scheduling.
func TestMultiModalCampaignWorkerInvariant(t *testing.T) {
	atk, z := getFusedAttack(t)
	run := func(workers int) *Campaign {
		c, err := atk.RunAll(z.FineTuned, RunOptions{
			MeasureSeed: 5,
			Workers:     workers,
			Modalities:  fingerprint.AllModalities(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	serial := run(1)
	par := run(3)
	for i := range serial.Reports {
		a, b := *serial.Reports[i], *par.Reports[i]
		a.Clone, b.Clone = nil, nil
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("report %d diverges across worker counts:\nserial: %+v\npar:    %+v", i, a, b)
		}
	}
	for _, rep := range serial.Reports {
		if got := strings.Join(rep.Modalities, ","); got != "trace,power,counters" {
			t.Fatalf("report modalities %q, want all three in request order", got)
		}
		if rep.IdentifyDegraded || len(rep.JammedModalities) > 0 {
			t.Fatalf("clean multi-modal run reported degradation: %+v", rep)
		}
	}
}

// Jamming one sensor degrades the run instead of failing it: the report
// says so, the obs counters meter it, and identification still happens
// on the survivors.
func TestJammedSensorDegradesGracefully(t *testing.T) {
	atk, z := getFusedAttack(t)
	jammedBefore := fusedObs.Counter("core.modality_jammed").Value()
	degradedBefore := fusedObs.Counter("core.identify_degraded").Value()
	rep, err := atk.Run(z.FineTuned[0], RunOptions{
		MeasureSeed: 9,
		Modalities:  fingerprint.AllModalities(),
		Jammed:      []fingerprint.Modality{fingerprint.ModalityPower},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.IdentifyDegraded {
		t.Fatal("jammed run must report degraded identification")
	}
	if !reflect.DeepEqual(rep.JammedModalities, []string{"power"}) {
		t.Fatalf("jammed modalities %v, want [power]", rep.JammedModalities)
	}
	if !reflect.DeepEqual(rep.Modalities, []string{"trace", "counters"}) {
		t.Fatalf("surviving modalities %v, want [trace counters]", rep.Modalities)
	}
	if rep.Identified == "" {
		t.Fatal("surviving sensors must still identify")
	}
	if got := fusedObs.Counter("core.modality_jammed").Value(); got != jammedBefore+1 {
		t.Fatalf("core.modality_jammed moved %d -> %d, want +1", jammedBefore, got)
	}
	if got := fusedObs.Counter("core.identify_degraded").Value(); got != degradedBefore+1 {
		t.Fatalf("core.identify_degraded moved %d -> %d, want +1", degradedBefore, got)
	}
}

// Jamming everything is the one failure mode: no posterior survives.
func TestAllSensorsJammedFails(t *testing.T) {
	atk, z := getFusedAttack(t)
	_, err := atk.Run(z.FineTuned[0], RunOptions{
		MeasureSeed: 9,
		Modalities:  fingerprint.AllModalities(),
		Jammed:      fingerprint.AllModalities(),
	})
	if err == nil || !strings.Contains(err.Error(), "jammed") {
		t.Fatalf("all-jammed run must fail with a jam error, got %v", err)
	}
}

// Requesting a modality whose classifier was never trained degrades the
// same way jamming does (metered as absent), using the legacy
// trace-only attack fixture.
func TestAbsentModalityDegrades(t *testing.T) {
	atk0, z := getAttack(t)
	atk := *atk0
	reg := obs.New()
	atk.Obs = reg
	rep, err := atk.Run(z.FineTuned[0], RunOptions{
		MeasureSeed: 4,
		Modalities:  []fingerprint.Modality{fingerprint.ModalityTrace, fingerprint.ModalityPower},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.IdentifyDegraded {
		t.Fatal("absent classifier must degrade the run")
	}
	if !reflect.DeepEqual(rep.Modalities, []string{"trace"}) {
		t.Fatalf("surviving modalities %v, want [trace]", rep.Modalities)
	}
	if reg.Counter("core.modality_absent").Value() != 1 {
		t.Fatal("core.modality_absent not metered")
	}
}

// The default single-trace path must not change at all: no modality
// report fields, no degradation counters, same identification as ever.
func TestLegacyPathUntouched(t *testing.T) {
	atk, z := getAttack(t)
	rep, err := atk.Run(z.FineTuned[0], RunOptions{MeasureSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Modalities != nil || rep.JammedModalities != nil || rep.IdentifyDegraded {
		t.Fatalf("legacy run must not report modality fields: %+v", rep)
	}
}

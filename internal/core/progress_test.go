package core

import (
	"encoding/json"
	"testing"

	"decepticon/internal/obs"
	"decepticon/internal/zoo"
)

// campaignProgress runs a small campaign with a tracker attached and
// returns the deterministic side of the final snapshot (rate/ETA are
// wall-clock and zeroed out).
func campaignProgress(t *testing.T, victims []*zoo.FineTuned, workers int) obs.ProgressValue {
	t.Helper()
	atk, _ := getAttack(t)
	tr := obs.NewProgress()
	tr.SetTotalItems(len(victims))
	for _, v := range victims { // input order fixes the exported breakdown
		tr.Item(v.Name)
	}
	if _, err := atk.RunAll(victims, RunOptions{MeasureSeed: 5, Workers: workers, Progress: tr}); err != nil {
		t.Fatal(err)
	}
	pv := tr.Snapshot()
	pv.RatePerSec, pv.ETASeconds = 0, 0
	return pv
}

// TestCampaignProgressWorkerInvariant pins the tentpole contract at the
// campaign layer: the sim-unit snapshot after a full campaign is
// byte-identical for any worker count, every victim ends done, and the
// overall fraction is exactly 1.0.
func TestCampaignProgressWorkerInvariant(t *testing.T) {
	_, z := getAttack(t)
	victims := z.FineTuned[:3]
	ref := campaignProgress(t, victims, 1)
	if ref.Fraction != 1.0 {
		t.Fatalf("final fraction = %g, want exactly 1.0", ref.Fraction)
	}
	if ref.ItemsDone != len(victims) || ref.ItemsTotal != len(victims) {
		t.Fatalf("items done/total = %d/%d, want %d/%d",
			ref.ItemsDone, ref.ItemsTotal, len(victims), len(victims))
	}
	if ref.PlannedUnits == 0 || ref.CompletedUnits != ref.PlannedUnits {
		t.Fatalf("final units = %d/%d, want equal and nonzero",
			ref.CompletedUnits, ref.PlannedUnits)
	}
	for i, it := range ref.Items {
		if it.Name != victims[i].Name {
			t.Fatalf("item %d = %q, want input order %q", i, it.Name, victims[i].Name)
		}
		if !it.Done || it.Fraction != 1.0 {
			t.Fatalf("item %q = %+v, want done at fraction 1", it.Name, it)
		}
	}
	refJSON, _ := json.Marshal(ref)
	got := campaignProgress(t, victims, 4)
	gotJSON, _ := json.Marshal(got)
	if string(refJSON) != string(gotJSON) {
		t.Fatalf("sim-unit snapshot differs across worker counts:\n1w: %s\n4w: %s", refJSON, gotJSON)
	}
}

// TestRunProgressStageSequence checks the stage annotations a single run
// walks through: the pipeline order of Fig 1, ending on the terminal
// "done" latch.
func TestRunProgressStageSequence(t *testing.T) {
	atk, z := getAttack(t)
	victim := victimWithUniqueProfile(z)
	if victim == nil {
		t.Skip("no unique-profile victim in reduced zoo")
	}
	tr := obs.NewProgress()
	tr.SetTotalItems(1)
	var stages []string
	tr.OnEvent(func(ev obs.ProgressEvent) {
		if ev.Kind == obs.ProgressStage {
			stages = append(stages, ev.Stage)
		}
	})
	if _, err := atk.Run(victim, RunOptions{MeasureSeed: 1, Progress: tr}); err != nil {
		t.Fatal(err)
	}
	want := []string{"measure", "identify", "disambiguate", "gate", "extract", "evaluate", "done"}
	if len(stages) != len(want) {
		t.Fatalf("stage sequence = %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("stage %d = %q, want %q (full: %v)", i, stages[i], want[i], stages)
		}
	}
	if pv := tr.Snapshot(); pv.Fraction != 1.0 {
		t.Fatalf("single-run final fraction = %g, want exactly 1.0", pv.Fraction)
	}
}

package core

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"

	"decepticon/internal/adversarial"
	"decepticon/internal/extract"
	"decepticon/internal/gpusim"
	"decepticon/internal/obs"
	"decepticon/internal/pipeline"
	"decepticon/internal/queryfp"
	"decepticon/internal/rng"
	"decepticon/internal/sidechannel"
	"decepticon/internal/stats"
	"decepticon/internal/transformer"
	"decepticon/internal/zoo"
)

// attackRun is one victim's pass through the staged pipeline. It
// implements every pipeline stage interface over the same report, so the
// engine composes a full attack from a single value; the fields below
// the divider carry state across stage boundaries (the measured trace
// feeds Identify, the identify spans close in Disambiguate, the clone
// feeds Evaluate and Adversarial).
type attackRun struct {
	a      *Attack
	opt    RunOptions
	victim *zoo.FineTuned
	rep    *Report
	log    *slog.Logger
	tk     *obs.Track
	vq     *obs.Counter
	// prog is this victim's live-progress item (nil-safe no-op when the
	// run is un-tracked): stages annotate it, extraction credits sim
	// units into it, RunContext latches its terminal state.
	prog *obs.ItemProgress

	// countedPredict is the attacker's only black-box door to the victim:
	// extraction stop-condition probes, adversarial transfer tests, and
	// distillation records all pay into core.victim_queries through it.
	countedPredict func(tokens []int) int

	// Cross-stage state.
	trace *gpusim.Trace
	// Multi-modal state: the victim's one simulated inference (every
	// passive sensor taps it), the derived channels, and the sensors that
	// survived jamming/absence and feed the fusion identifier.
	schedule      *gpusim.Trace
	power         *gpusim.PowerTrace
	counters      *gpusim.CounterSet
	live          []sensorStage
	identified    string
	pre           *zoo.Pretrained
	identifySpan  *obs.Span
	identifyTrace *obs.TraceSpan
	identifyStart int64
	clone         *transformer.Model
}

// MeasureTrace is the level-1 measurement: record the victim's kernel
// trace through the contention side channel. It opens the identify-phase
// spans (closed in Disambiguate — identification is one phase with three
// stages) and advances both the trace lane and the pipeline clock by the
// simulated kernel timeline.
func (r *attackRun) MeasureTrace(s *pipeline.State) error {
	r.prog.SetStage("measure")
	r.identifySpan = r.a.Obs.StartSpan("core.phase.identify_seconds")
	r.identifyStart = s.Clock.Now()
	r.identifyTrace = r.tk.Begin("identify")
	r.trace = r.victim.Trace(gpusim.Options{MeasureSeed: r.opt.MeasureSeed, JitterMagnitude: 0.3})
	// The simulated kernel timeline is the natural clock for this phase.
	d := int64(r.trace.Duration())
	r.tk.Advance(d)
	s.Clock.Advance(d)
	return nil
}

// Identify maps the measured trace to a pre-trained candidate with the
// CNN — the flat classifier by default, the two-level family→release
// hierarchy when the attack was prepared with one. A candidate the zoo
// does not know is a real error (the classifier and the candidate pool
// are out of sync), not a per-victim degradation.
func (r *attackRun) Identify(s *pipeline.State) error {
	r.prog.SetStage("identify")
	var top []string
	if r.a.Hier != nil {
		top = r.a.Hier.PredictTopK(r.trace, 3)
	} else {
		top = r.a.Classifier.PredictTopK(r.trace, 3)
	}
	r.identified = top[0]
	if r.a.Zoo.PretrainedByName(r.identified) == nil {
		r.identifyTrace.End()
		r.identifySpan.End()
		return fmt.Errorf("core: classifier produced unknown candidate %q", r.identified)
	}
	return nil
}

// Disambiguate separates profile-ambiguous candidates with query-output
// probes, cross-checks the identified architecture against the victim's
// bus-probe allocation map, and closes the identify phase.
func (r *attackRun) Disambiguate(s *pipeline.State) error {
	r.prog.SetStage("disambiguate")
	cand := r.a.Zoo.PretrainedByName(r.identified)
	ambiguous := r.a.Zoo.AmbiguousWith(cand)
	if len(ambiguous) > 1 {
		r.rep.UsedQueryProbes = true
		cands := make([]*queryfp.Candidate, len(ambiguous))
		for i, p := range ambiguous {
			cands[i] = &queryfp.Candidate{Name: p.Name, Vocab: p.Vocab}
		}
		res := queryfp.Detect(cands, func(text string) []float32 {
			r.vq.Inc()
			_, probs := r.victim.ClassifyText(text)
			return probs
		}, 4)
		r.rep.ProbeQueries = res.Queries
		if res.Best != "" {
			r.identified = res.Best
		}
	}
	r.rep.Identified = r.identified
	r.rep.CorrectIdentity = r.identified == r.victim.Pretrained.Name

	r.pre = r.a.Zoo.PretrainedByName(r.identified)

	// Cross-check the identified architecture against the victim's
	// bus-probe allocation map before paying for rowhammer.
	am := sidechannel.MapModel(r.victim.Model())
	if inferred, err := sidechannel.InferArchitecture(am.Sizes()); err == nil {
		r.rep.ArchConfirmed = inferred.Layers == r.pre.Model().Layers &&
			inferred.Hidden == r.pre.Model().Hidden &&
			inferred.FFN == r.pre.Model().FFN
	}
	r.identifyTrace.End()
	r.identifySpan.End()
	// Identification cost in simulated kernel microseconds — a pure
	// function of the victim and seed, byte-identical across machines
	// and worker counts (the old wall-clock histogram was neither).
	r.a.Obs.Histogram("core.victim_identify_sim_us").Observe(float64(s.Clock.Now() - r.identifyStart))
	r.log.Info("identified", "as", r.identified, "correct", r.rep.CorrectIdentity,
		"probes", r.rep.ProbeQueries, "arch_confirmed", r.rep.ArchConfirmed)
	return nil
}

// Gate refuses extraction when the identified release's architecture
// contradicts the victim's bus-probe layout — the rowhammer phase could
// not even address the right tensors. A clean Stop: the campaign
// continues, the report records why extraction was never attempted.
func (r *attackRun) Gate(s *pipeline.State) error {
	r.prog.SetStage("gate")
	if r.pre.ArchName == r.victim.Pretrained.ArchName {
		return nil
	}
	// Architecture mismatch: the weight extraction cannot even start.
	// Record the reason explicitly — a campaign summary must be able
	// to tell "never attempted" apart from "attempted and failed".
	r.rep.ExtractSkipped = fmt.Sprintf(
		"identified release %s has architecture %s, victim's bus-probe layout says %s: extraction never attempted",
		r.identified, r.pre.ArchName, r.victim.Pretrained.ArchName)
	r.a.Obs.Counter("core.extract_skipped").Inc()
	r.tk.Instant("extract_skipped", obs.A("identified", r.identified))
	r.log.Warn("extraction skipped", "reason", "architecture mismatch", "identified", r.identified)
	return pipeline.Stop
}

// Extract is level 2: clone the victim's weights through the rowhammer
// bit oracle, honoring the run's context down to individual reads. An
// interrupted extraction (read budget or cancellation) and a failed one
// both end the run cleanly with the cause on the report; only
// infrastructure errors (an unwritable checkpoint directory) abort.
func (r *attackRun) Extract(s *pipeline.State) error {
	r.prog.SetStage("extract")
	extractSpan := r.a.Obs.StartSpan("core.phase.extract_seconds")
	extractTrace := r.tk.Begin("extract")
	oracle := sidechannel.NewOracle(r.victim.Model())
	oracle.SetObs(r.a.Obs)
	if r.opt.BitErrorRate > 0 {
		// The noise stream derives from the victim's identity, keeping
		// RunAll byte-identical across worker counts.
		oracle.SetNoise(r.opt.BitErrorRate, rng.Seed("oracle-noise", r.victim.Name))
	}
	// The fault plan likewise derives from the victim's identity.
	oracle.SetFaultPlan(r.opt.FaultPlan.ForVictim(r.victim.Name))
	cfg := r.a.ExtractCfg
	if r.opt.ScheduledExtraction && !cfg.Schedule.Enabled {
		cfg.Schedule = extract.DefaultSchedulerConfig()
	}
	ex := &extract.Extractor{
		Pre:        r.pre.Model(),
		Oracle:     oracle,
		Cfg:        cfg,
		Victim:     r.countedPredict,
		Obs:        r.a.Obs,
		Resume:     r.opt.Resume,
		ReadBudget: r.opt.ReadBudget,
		Trace:      r.tk,
		Progress:   r.prog,
	}
	if r.opt.CheckpointDir != "" {
		if err := os.MkdirAll(r.opt.CheckpointDir, 0o755); err != nil {
			extractTrace.End()
			extractSpan.End()
			return fmt.Errorf("core: checkpoint dir: %w", err)
		}
		ex.CheckpointPath = filepath.Join(r.opt.CheckpointDir, checkpointName(r.victim.Name))
	}
	clockStart := oracle.Clock()
	clone, st, err := ex.RunContext(s.Ctx, r.victim.Task.Labels, r.victim.Dev)
	extractTrace.End()
	extractSpan.End()
	// Extraction cost in simulated channel rounds (read attempts plus
	// backoff), observed whether or not the run completed — interrupted
	// and failed extractions paid for their rounds too.
	rounds := oracle.Clock() - clockStart
	s.Clock.Advance(rounds)
	r.a.Obs.Histogram("core.victim_extract_rounds").Observe(float64(rounds))
	if errors.Is(err, extract.ErrInterrupted) {
		// The read budget ran out or the context was cancelled: the work
		// done so far is checkpointed (when CheckpointDir is set) and a
		// Resume run will finish it. Not a failure — the campaign
		// continues with the other victims.
		r.rep.ExtractInterrupted = true
		r.a.Obs.Counter("core.extract_interrupted").Inc()
		r.tk.Instant("extract_interrupted")
		r.log.Warn("extraction interrupted", "err", err)
		r.a.dumpFlight(r.opt, r.victim.Name, "extraction interrupted: "+err.Error())
		return pipeline.Stop
	}
	if err != nil {
		// A malformed address map (or channel fault) loses this victim's
		// clone but not the campaign: record the failure and return the
		// level-1 results.
		r.rep.ExtractError = err.Error()
		r.a.Obs.Counter("core.extract_failures").Inc()
		r.tk.Instant("extract_failed")
		r.log.Error("extraction failed", "err", err)
		r.a.dumpFlight(r.opt, r.victim.Name, "extraction failed: "+err.Error())
		return pipeline.Stop
	}
	r.rep.Extract = st
	r.rep.Clone = clone
	r.clone = clone
	if st.TensorsDegraded > 0 {
		// Fault-budget exhaustion: the run completed, but some tensors
		// fell back to the baseline — leave the black-box record of how.
		r.a.dumpFlight(r.opt, r.victim.Name,
			fmt.Sprintf("extraction degraded %d tensors", st.TensorsDegraded))
	}
	return nil
}

// Evaluate scores the clone against the victim on the held-out dev set.
func (r *attackRun) Evaluate(s *pipeline.State) error {
	r.prog.SetStage("evaluate")
	evalSpan := r.a.Obs.StartSpan("core.phase.evaluate_seconds")
	evalTrace := r.tk.Begin("evaluate")
	vp := r.victim.Model().Predictions(r.victim.Dev)
	cp := r.clone.Predictions(r.victim.Dev)
	r.rep.MatchRate = stats.MatchRate(vp, cp)
	r.rep.VictimAcc = r.victim.Model().Evaluate(r.victim.Dev)
	r.rep.CloneAcc = r.clone.Evaluate(r.victim.Dev)
	r.rep.VictimF1 = r.victim.Model().EvaluateF1(r.victim.Dev)
	r.rep.CloneF1 = r.clone.EvaluateF1(r.victim.Dev)
	// Six passes over the dev set (predictions, accuracy, F1 × victim
	// and clone) — a deterministic work unit for the lane clock.
	d := int64(6 * len(r.victim.Dev))
	r.tk.Advance(d)
	s.Clock.Advance(d)
	evalTrace.End()
	evalSpan.End()
	r.log.Info("evaluated", "match_rate", r.rep.MatchRate, "clone_acc", r.rep.CloneAcc)
	return nil
}

// Adversarial is the optional Fig 18 stage: attack the victim through
// the clone and through distillation substitutes.
func (r *attackRun) Adversarial(s *pipeline.State) error {
	r.prog.SetStage("adversarial")
	advSpan := r.a.Obs.StartSpan("core.phase.adversarial_seconds")
	advTrace := r.tk.Begin("adversarial", obs.A("substitutes", r.opt.NumSubstitutes))
	flips := r.opt.FlipsPerInput
	if flips <= 0 {
		flips = 2
	}
	r.rep.AdvClone = adversarial.Evaluate(r.clone, r.countedPredict, r.victim.Dev, flips, r.a.Obs).SuccessRate()
	inputs := adversarial.RecordInputs(r.victim.Model().Vocab, r.victim.Task.SeqLen,
		4*len(r.victim.Train), rng.Seed("adv-records", r.victim.Name))
	for sub := 0; sub < r.opt.NumSubstitutes; sub++ {
		pre := pickSubstitute(r.a.Zoo, r.victim, sub)
		if pre == nil {
			r.rep.AdvSkipped = append(r.rep.AdvSkipped, fmt.Sprintf(
				"substitute %d: no pre-trained candidate with vocab size %d other than the victim's own release %s",
				sub, r.victim.Model().Vocab, r.victim.Pretrained.Name))
			continue
		}
		subModel := adversarial.BuildSubstitute(pre.Model(), r.countedPredict, inputs,
			r.victim.Task.Labels, rng.Seed("substitute", r.victim.Name, fmt.Sprint(sub)), r.a.Obs)
		r.rep.AdvSubstitutes = append(r.rep.AdvSubstitutes,
			adversarial.Evaluate(subModel, r.countedPredict, r.victim.Dev, flips, r.a.Obs).SuccessRate())
	}
	// One attack evaluation per substitute plus the clone itself.
	d := int64((1 + r.opt.NumSubstitutes) * len(r.victim.Dev))
	r.tk.Advance(d)
	s.Clock.Advance(d)
	advTrace.End()
	advSpan.End()
	return nil
}

package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"decepticon/internal/obs"
	"decepticon/internal/parallel"
	"decepticon/internal/zoo"
)

// sameReport compares two reports modulo the Clone pointer, then the
// clone weights byte-for-byte.
func sameReport(t *testing.T, label string, a, b *Report) {
	t.Helper()
	ra, rb := *a, *b
	ca, cb := ra.Clone, rb.Clone
	ra.Clone, rb.Clone = nil, nil
	if !reflect.DeepEqual(ra, rb) {
		t.Fatalf("%s: reports diverge:\na: %+v\nb: %+v", label, ra, rb)
	}
	if (ca == nil) != (cb == nil) {
		t.Fatalf("%s: clone presence diverges", label)
	}
	if ca == nil {
		return
	}
	pa, pb := ca.Params(), cb.Params()
	for j := range pa {
		da, db := pa[j].Value.Data, pb[j].Value.Data
		for k := range da {
			if da[k] != db[k] {
				t.Fatalf("%s: clone tensor %s differs at %d", label, pa[j].Name, k)
			}
		}
	}
}

// TestRunAllStreamMatchesBatch: the streaming campaign delivers the
// exact report sequence of the batch campaign, in victim input order,
// for any worker count — and its summary equals the batch Campaign.
func TestRunAllStreamMatchesBatch(t *testing.T) {
	atk, z := getAttack(t)
	opt := RunOptions{MeasureSeed: 11, Workers: 1}
	batch, err := atk.RunAll(z.FineTuned, opt)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		o := opt
		o.Workers = workers
		window := 2 * parallel.Workers(workers)
		rs := atk.RunAllStream(context.Background(), z.FineTuned, o)
		var got []*Report
		high := 0
		for {
			if b := rs.Buffered(); b > high {
				high = b
			}
			rep, ok := rs.Next()
			if !ok {
				break
			}
			got = append(got, rep)
		}
		if err := rs.Err(); err != nil {
			t.Fatalf("workers=%d: Err() = %v", workers, err)
		}
		if len(got) != len(batch.Reports) {
			t.Fatalf("workers=%d: streamed %d reports, batch had %d", workers, len(got), len(batch.Reports))
		}
		for i := range got {
			sameReport(t, "workers="+string(rune('0'+workers)), got[i], batch.Reports[i])
		}
		if high > window {
			t.Fatalf("workers=%d: buffered high-water %d exceeds window %d", workers, high, window)
		}
		c := rs.Campaign()
		want := *batch
		want.Reports = nil
		if !reflect.DeepEqual(*c, want) {
			t.Fatalf("workers=%d: stream campaign diverges from batch:\nstream: %+v\nbatch:  %+v", workers, *c, want)
		}
	}
}

// TestRunAllContextCancelReturnsPartialCampaign: cancelling mid-campaign
// yields the completed prefix as a partial campaign plus the context's
// error, instead of throwing the finished work away. It builds its own
// tiny fixture (not getAttack) so the race tier can afford it; the
// victim count exceeds the cancel point plus the stream's claim window
// (2 + 2×workers), so a full campaign can never slip through before the
// cancellation lands.
func TestRunAllContextCancelReturnsPartialCampaign(t *testing.T) {
	cfg := tinyZooCfg()
	cfg.NumFineTuned = 10
	z := zoo.MustBuild(cfg)
	atk, err := Prepare(z, PrepareConfig{
		SamplesPerModel: 2, ImgSize: 32, Epochs: 8, LR: 0.002, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	delivered := 0
	c, err := atk.RunAllContext(ctx, z.FineTuned, RunOptions{
		MeasureSeed: 11, Workers: 2,
		OnReport: func(i int, rep *Report) {
			delivered++
			if delivered == 2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c == nil {
		t.Fatal("cancellation must return the partial campaign, not nil")
	}
	if c.Victims < 2 || c.Victims >= len(z.FineTuned) {
		t.Fatalf("partial campaign covers %d of %d victims — cancellation landed at the wrong frontier",
			c.Victims, len(z.FineTuned))
	}
	if len(c.Reports) != c.Victims {
		t.Fatalf("campaign holds %d reports for %d victims", len(c.Reports), c.Victims)
	}
}

// countdownCtx is a context whose Err flips to context.Canceled after a
// fixed number of Err calls — a deterministic mid-run Ctrl-C. The
// non-nil Done channel (never closed) makes RunContext bind the oracle's
// per-read check.
type countdownCtx struct {
	context.Context
	mu        sync.Mutex
	remaining int64
	done      chan struct{}
}

func newCountdownCtx(remaining int64) *countdownCtx {
	return &countdownCtx{
		Context:   context.Background(),
		remaining: remaining,
		done:      make(chan struct{}),
	}
}

func (c *countdownCtx) Done() <-chan struct{} { return c.done }

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

// TestRunContextCancelCheckpointsAndResumes drives the full attack path:
// a cancellation mid-extraction reports ExtractInterrupted (no error),
// leaves a checkpoint and a flight dump next to it, and a Resume run
// reproduces the uninterrupted report, clone, and obs counters
// byte-identically.
func TestRunContextCancelCheckpointsAndResumes(t *testing.T) {
	atk, z := getAttack(t)

	// Pick a victim whose extraction crosses tensor boundaries (head AND
	// backbone layers): a cancellation landing mid-first-tensor would
	// leave no boundary checkpoint to assert on. The reference run doubles
	// as the golden uninterrupted result.
	var (
		victim *zoo.FineTuned
		repA   *Report
		regA   *obs.Registry
	)
	atkA := *atk
	for _, f := range z.FineTuned {
		if len(z.AmbiguousWith(f.Pretrained)) != 1 {
			continue
		}
		regA = obs.New()
		atkA.Obs = regA
		rep, err := atkA.RunContext(context.Background(), f, RunOptions{MeasureSeed: 21})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Extract != nil && rep.Extract.LayersExtracted >= 1 {
			victim, repA = f, rep
			break
		}
	}
	if victim == nil {
		t.Skip("no victim in the test zoo extracts past the head")
	}
	attempts := repA.Extract.PhysicalBitReads
	if attempts < 8 {
		t.Fatalf("reference run too small to cancel (%d reads)", attempts)
	}

	// Cancelled run: the countdown fires mid-extraction.
	dir := t.TempDir()
	atkB := *atk
	regB := obs.New()
	recB := obs.NewFlightRecorder(0)
	regB.SetFlight(recB)
	atkB.Obs = regB
	repB, err := atkB.RunContext(newCountdownCtx(attempts/2), victim, RunOptions{
		MeasureSeed: 21, CheckpointDir: dir,
	})
	if err != nil {
		t.Fatalf("a cancelled extraction must report, not error: %v", err)
	}
	if !repB.ExtractInterrupted {
		t.Fatalf("ExtractInterrupted not set: %+v", repB)
	}
	if repB.Extract != nil {
		t.Fatal("an interrupted extraction must not publish stats")
	}
	ckpt := filepath.Join(dir, checkpointName(victim.Name))
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint after cancellation: %v", err)
	}
	dump := filepath.Join(dir, checkpointName(victim.Name))
	dump = dump[:len(dump)-len(".ckpt")] + ".flight.json"
	fd, err := obs.ReadFlightFile(dump)
	if err != nil {
		t.Fatalf("no flight dump after cancellation: %v", err)
	}
	if fd.Reason == "" {
		t.Fatal("flight dump has no reason")
	}

	// Resumed run: fresh registry, uncancelled context.
	atkC := *atk
	regC := obs.New()
	atkC.Obs = regC
	repC, err := atkC.RunContext(context.Background(), victim, RunOptions{
		MeasureSeed: 21, CheckpointDir: dir, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The reference ran without a checkpoint dir; the resumed run's report
	// must match it in everything the attack computed.
	sameReport(t, "resume", repA, repC)

	// The obs registries reconcile: the resumed run's counters equal the
	// uninterrupted run's (timers are wall-clock by definition).
	snapA, snapC := regA.Snapshot(), regC.Snapshot()
	if !reflect.DeepEqual(snapA.Counters, snapC.Counters) {
		t.Fatalf("counters diverge:\nuninterrupted: %v\nresumed:       %v", snapA.Counters, snapC.Counters)
	}
	if !reflect.DeepEqual(snapA.Gauges, snapC.Gauges) {
		t.Fatalf("gauges diverge:\nuninterrupted: %v\nresumed:       %v", snapA.Gauges, snapC.Gauges)
	}
}

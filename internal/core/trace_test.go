package core

import (
	"bytes"
	"strings"
	"testing"

	"decepticon/internal/obs"
	"decepticon/internal/sidechannel"
)

// traceOf runs a campaign against the shared attack with a fresh
// registry and tracer, and returns the exported trace JSON.
func traceOf(t *testing.T, atk *Attack, run func(*Attack)) []byte {
	t.Helper()
	reg := obs.New()
	tr := obs.NewTracer()
	reg.SetTracer(tr)
	atk2 := *atk
	atk2.Obs = reg
	run(&atk2)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCampaignTraceWorkerInvariance: the exported trace file of a
// faulted campaign is byte-identical for any worker count — span
// timestamps derive only from per-victim simulated clocks, never from
// wall time or scheduling order.
func TestCampaignTraceWorkerInvariance(t *testing.T) {
	atk, z := getAttack(t)
	victims := z.FineTuned[:4]
	plan := &sidechannel.FaultPlan{Seed: 21, TransientRate: 0.02, StuckRate: 0.0005}
	run := func(workers int) []byte {
		return traceOf(t, atk, func(a *Attack) {
			if _, err := a.RunAll(victims, RunOptions{
				MeasureSeed: 70, Workers: workers, FaultPlan: plan,
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
	w1 := run(1)
	w4 := run(4)
	for _, name := range []string{`"campaign"`, `"attack"`, `"identify"`, `"extract"`, `"evaluate"`} {
		if !bytes.Contains(w1, []byte(name)) {
			t.Fatalf("trace is missing the %s span — the invariance check is vacuous", name)
		}
	}
	if !bytes.Equal(w1, w4) {
		i := 0
		for i < len(w1) && i < len(w4) && w1[i] == w4[i] {
			i++
		}
		lo := max(0, i-120)
		t.Fatalf("trace diverges between workers 1 and 4 at byte %d:\nw1: ...%s\nw4: ...%s",
			i, w1[lo:min(len(w1), i+120)], w4[lo:min(len(w4), i+120)])
	}
}

// TestFlightDumpOnInterruptedExtraction: an extraction killed by its
// read budget must leave a parseable, non-empty flight-recorder dump
// next to its checkpoint, tagged with the recorder's run id and a
// reason that names the interrupt.
func TestFlightDumpOnInterruptedExtraction(t *testing.T) {
	atk, z := getAttack(t)
	victim := z.FineTuned[0]
	reg := obs.New()
	rec := obs.NewFlightRecorder(0)
	rec.RunID = "flight-test"
	reg.SetFlight(rec)
	atk2 := *atk
	atk2.Obs = reg
	plan := &sidechannel.FaultPlan{Seed: 33, TransientRate: 0.02}
	// Measure the victim's uninterrupted cost first; half of it is a
	// budget guaranteed to interrupt.
	ref, err := atk2.Run(victim, RunOptions{MeasureSeed: 80, FaultPlan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Extract == nil {
		t.Fatalf("victim %s did not extract in the reference run", victim.Name)
	}
	opt := RunOptions{
		MeasureSeed: 80,
		FaultPlan:   plan,
		ReadBudget:  (ref.Extract.PhysicalBitReads + ref.Extract.ReadFaults) / 2,
	}
	opt.CheckpointDir = t.TempDir()
	rep, err := atk2.Run(victim, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ExtractInterrupted {
		t.Fatalf("budget %d did not interrupt the extraction", opt.ReadBudget)
	}
	d, err := obs.ReadFlightFile(flightDumpPath(opt, victim.Name))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Events) == 0 {
		t.Fatal("flight dump holds no events")
	}
	if d.RunID != "flight-test" {
		t.Fatalf("dump run id %q, want %q", d.RunID, "flight-test")
	}
	if !strings.Contains(d.Reason, "interrupted") {
		t.Fatalf("dump reason %q does not name the interrupt", d.Reason)
	}
	for i := 1; i < len(d.Events); i++ {
		if d.Events[i].Seq <= d.Events[i-1].Seq {
			t.Fatalf("flight sequence not increasing at %d: %d after %d",
				i, d.Events[i].Seq, d.Events[i-1].Seq)
		}
	}
	// The record must include the interrupt decision itself, not just
	// trace mirrors.
	found := false
	for _, ev := range d.Events {
		if ev.Kind == "interrupt" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("flight dump does not record the interrupt decision")
	}
}

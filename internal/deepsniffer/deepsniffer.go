// Package deepsniffer reimplements the prior-work baseline of the paper's
// Table 2: DeepSniffer-style CNN architecture extraction from kernel
// traces [23]. The extractor learns a mapping from per-kernel timing
// features to layer kinds on traces of one model release, then predicts
// the layer sequence of an unseen trace; quality is the layer error rate
// (LER = edit distance / true sequence length).
//
// The paper's point — reproduced here — is that this extraction breaks
// down across releases: the same ResNet architecture published by a
// different developer or framework produces a trace whose kernel census
// and timing distribution are so different that the LER exceeds 1,
// i.e. the prediction is useless. Decepticon turns that obstacle into a
// feature by using the fingerprint to identify the release instead.
package deepsniffer

import (
	"fmt"
	"math"

	"decepticon/internal/gpusim"
	"decepticon/internal/stats"
)

// Extractor maps per-kernel features to layer kinds.
type Extractor struct {
	table    map[string]string // feature -> layer kind (majority vote)
	fallback string            // most common layer kind overall
}

// feature quantizes a kernel execution into a timing-feature key. Only
// side-channel-observable quantities are used (duration and the gap to
// the previous kernel), never kernel names.
func feature(e gpusim.Exec, prevEnd float64) string {
	durBucket := int(math.Round(4 * math.Log2(e.Duration()+1)))
	gap := e.Start - prevEnd
	gapBucket := 0
	if gap > 1 {
		gapBucket = 1
	}
	return fmt.Sprintf("d%d_g%d", durBucket, gapBucket)
}

// Train fits the extractor on aligned (trace, per-kernel layer labels)
// pairs, as produced by gpusim.SimulateCNN.
func Train(traces []*gpusim.Trace, labels [][]string) *Extractor {
	if len(traces) != len(labels) {
		panic("deepsniffer: traces/labels length mismatch")
	}
	votes := map[string]map[string]int{}
	overall := map[string]int{}
	for ti, t := range traces {
		if len(t.Execs) != len(labels[ti]) {
			panic(fmt.Sprintf("deepsniffer: trace %d has %d execs but %d labels", ti, len(t.Execs), len(labels[ti])))
		}
		prevEnd := 0.0
		for i, e := range t.Execs {
			f := feature(e, prevEnd)
			if votes[f] == nil {
				votes[f] = map[string]int{}
			}
			votes[f][labels[ti][i]]++
			overall[labels[ti][i]]++
			prevEnd = e.End
		}
	}
	ex := &Extractor{table: make(map[string]string, len(votes))}
	for f, v := range votes {
		best, bestN := "", -1
		for kind, n := range v {
			if n > bestN {
				best, bestN = kind, n
			}
		}
		ex.table[f] = best
	}
	bestN := -1
	for kind, n := range overall {
		if n > bestN {
			ex.fallback, bestN = kind, n
		}
	}
	return ex
}

// PredictSequence returns the predicted layer sequence of a trace: one
// prediction per kernel, as DeepSniffer's per-timestep decoder emits. On
// the training release this aligns with the layer sequence (PyTorch
// launches ~one kernel per layer); on another framework's trace the
// kernel count itself is wrong by several times, which is what blows the
// LER past 1 in Table 2.
func (ex *Extractor) PredictSequence(t *gpusim.Trace) []string {
	out := make([]string, 0, len(t.Execs))
	prevEnd := 0.0
	for _, e := range t.Execs {
		kind, ok := ex.table[feature(e, prevEnd)]
		if !ok {
			kind = ex.fallback
		}
		out = append(out, kind)
		prevEnd = e.End
	}
	return out
}

// Collapse reduces per-kernel labels to the layer sequence (consecutive
// duplicates merged) — the ground truth PredictSequence is scored against.
func Collapse(labels []string) []string {
	var out []string
	for _, l := range labels {
		if len(out) == 0 || out[len(out)-1] != l {
			out = append(out, l)
		}
	}
	return out
}

// Evaluate returns the LER of the extractor on one (trace, labels) pair.
func (ex *Extractor) Evaluate(t *gpusim.Trace, labels []string) float64 {
	return stats.LER(ex.PredictSequence(t), Collapse(labels))
}

// Row is one Table 2 measurement.
type Row struct {
	Source       string
	LER          float64
	KernelSeqLen int
	UniqueKerns  int
}

// Table2 trains the extractor on the first profile's traces and evaluates
// it on a trace from every profile (the first row is the in-distribution
// "original results" case). measurements per profile use the given
// architecture.
func Table2(arch gpusim.CNNArch, profiles []gpusim.Profile, trainSamples int) []Row {
	var trTraces []*gpusim.Trace
	var trLabels [][]string
	for s := 0; s < trainSamples; s++ {
		tr, lab := gpusim.SimulateCNN(arch, profiles[0], gpusim.Options{
			MeasureSeed: uint64(1000 + s), JitterMagnitude: 0.2,
		})
		trTraces = append(trTraces, tr)
		trLabels = append(trLabels, lab)
	}
	ex := Train(trTraces, trLabels)

	rows := make([]Row, 0, len(profiles))
	for i, p := range profiles {
		tr, lab := gpusim.SimulateCNN(arch, p, gpusim.Options{
			MeasureSeed: uint64(2000 + i), JitterMagnitude: 0.2,
		})
		execs, unique := tr.KernelCensus()
		rows = append(rows, Row{
			Source:       p.Source,
			LER:          ex.Evaluate(tr, lab),
			KernelSeqLen: execs,
			UniqueKerns:  unique,
		})
	}
	return rows
}

package deepsniffer

import (
	"testing"

	"decepticon/internal/gpusim"
)

func profiles() []gpusim.Profile {
	return []gpusim.Profile{
		{Source: "deepsniffer-original", Framework: gpusim.PyTorch, Seed: 100},
		{Source: "deepsniffer-pytorch", Framework: gpusim.PyTorch, Seed: 200},
		{Source: "nvidia-pytorch", Framework: gpusim.PyTorch, Seed: 300, TensorCores: true},
		{Source: "google-tensorflow", Framework: gpusim.TensorFlow, Seed: 400},
		{Source: "amazon-mxnet", Framework: gpusim.MXNet, Seed: 500, ShortKernels: true},
	}
}

func TestTrainPredictInDistribution(t *testing.T) {
	arch := gpusim.ResNet18Arch()
	p := profiles()[0]
	tr, lab := gpusim.SimulateCNN(arch, p, gpusim.Options{MeasureSeed: 1, JitterMagnitude: 0.2})
	ex := Train([]*gpusim.Trace{tr}, [][]string{lab})
	tr2, lab2 := gpusim.SimulateCNN(arch, p, gpusim.Options{MeasureSeed: 2, JitterMagnitude: 0.2})
	ler := ex.Evaluate(tr2, lab2)
	if ler > 0.3 {
		t.Fatalf("in-distribution LER %v, want <= 0.3 (paper: 0.091)", ler)
	}
}

func TestCollapse(t *testing.T) {
	got := Collapse([]string{"conv", "conv", "bn", "relu", "relu", "conv"})
	want := []string{"conv", "bn", "relu", "conv"}
	if len(got) != len(want) {
		t.Fatalf("collapse = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("collapse = %v", got)
		}
	}
	if Collapse(nil) != nil {
		t.Fatal("empty collapse must be nil")
	}
}

// TestTable2Ordering is the paper's Table 2 shape: LER is small on the
// training release and grows across releases, exceeding 1 (useless) for
// other-framework releases.
func TestTable2Ordering(t *testing.T) {
	rows := Table2(gpusim.ResNet18Arch(), profiles(), 4)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].LER > 0.3 {
		t.Fatalf("original-release LER %v, want small", rows[0].LER)
	}
	if rows[1].LER <= rows[0].LER {
		t.Fatalf("different release of same framework should be worse: %v vs %v", rows[1].LER, rows[0].LER)
	}
	// Cross-framework rows are useless (LER > 1), as in the paper.
	if rows[3].LER <= 1 {
		t.Fatalf("TensorFlow LER %v, want > 1", rows[3].LER)
	}
	if rows[4].LER <= 1 {
		t.Fatalf("MXNet LER %v, want > 1", rows[4].LER)
	}
	// TF kernel sequences are much longer (Table 2's length column).
	if rows[3].KernelSeqLen < 2*rows[0].KernelSeqLen {
		t.Fatalf("TF kernel seq len %d not much larger than %d", rows[3].KernelSeqLen, rows[0].KernelSeqLen)
	}
	if rows[3].UniqueKerns <= rows[0].UniqueKerns {
		t.Fatal("TF unique kernels should exceed PyTorch's")
	}
}

func TestTrainValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched training input must panic")
		}
	}()
	Train([]*gpusim.Trace{{}}, nil)
}

func TestPredictSequenceUnknownFeatures(t *testing.T) {
	// An extractor trained on nothing useful must still produce a
	// sequence (fallback label), never panic.
	arch := gpusim.ResNet18Arch()
	p := profiles()[0]
	tr, lab := gpusim.SimulateCNN(arch, p, gpusim.Options{})
	ex := Train([]*gpusim.Trace{tr}, [][]string{lab})
	other, _ := gpusim.SimulateCNN(arch, profiles()[3], gpusim.Options{})
	if got := ex.PredictSequence(other); len(got) == 0 {
		t.Fatal("empty prediction")
	}
}

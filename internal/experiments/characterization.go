package experiments

import (
	"fmt"
	"io"
	"math"

	"decepticon/internal/cnnmodel"
	"decepticon/internal/rng"
	"decepticon/internal/stats"
	"decepticon/internal/task"
	"decepticon/internal/transformer"
	"decepticon/internal/zoo"
)

// ---------------------------------------------------------------- Table 1

// Table1Row is one "freeze the first k layers" measurement.
type Table1Row struct {
	FrozenLayers int
	Accuracy     float64
	Drop         float64 // vs. the unmodified fine-tuned model
}

// Table1Result reproduces Table 1: replacing the first k layers of a
// fine-tuned model with the pre-trained weights.
type Table1Result struct {
	Victim string
	Rows   []Table1Row
}

// Table1 runs the layer-freezing study. The paper's QA victim was
// fine-tuned end-to-end (every layer adapted), so this experiment builds
// its own victim with a uniform learning rate across all layers — the
// zoo's discriminative-LR victims barely move their backbones, which
// would make freezing trivially free.
func (e *Env) Table1() *Table1Result {
	z := e.Zoo()
	pre := z.Pretrained[0]
	tk := task.QAAnalog()
	cfg := e.ZooConfig()
	data := tk.Generate(pre.Arch.Vocab, 2*cfg.FineTuneExamples, rng.Seed("table1-data"))
	train, dev := task.Split(data, 0.8)
	victim := transformer.FineTuneFrom(pre.Model(), tk.Labels, train, transformer.TrainConfig{
		Epochs: cfg.FineTuneEpochs + 4, BatchSize: 4,
		LR: 1e-3, HeadLR: 1e-2, WeightDecay: 0.05,
		Seed: rng.Seed("table1-train"),
	}, rng.Seed("table1-head"))

	res := &Table1Result{Victim: pre.Name + "__table1-squad"}
	base := victim.Evaluate(dev)
	maxFrozen := victim.Layers
	if maxFrozen > 6 {
		maxFrozen = 6
	}
	for k := 0; k <= maxFrozen; k++ {
		m := victim.Clone()
		for l := 0; l < k; l++ {
			m.CopyBlockFrom(pre.Model(), l)
		}
		acc := m.Evaluate(dev)
		res.Rows = append(res.Rows, Table1Row{FrozenLayers: k, Accuracy: acc, Drop: base - acc})
	}
	return res
}

// pickVictim returns a fine-tuned model for the named task, or the first
// victim if none matches.
func pickVictim(z *zoo.Zoo, taskName string) *zoo.FineTuned {
	for _, f := range z.FineTuned {
		if f.Task.Name == taskName {
			return f
		}
	}
	return z.FineTuned[0]
}

// Render implements Renderer.
func (r *Table1Result) Render(w io.Writer) {
	header(w, "Table 1", "accuracy when freezing first k layers to pre-trained weights")
	fmt.Fprintf(w, "victim: %s\n", r.Victim)
	fmt.Fprintf(w, "%-8s %-10s %-10s\n", "frozen", "accuracy", "drop")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8d %-10.3f %-10.3f\n", row.FrozenLayers, row.Accuracy, row.Drop)
	}
}

// ------------------------------------------------------------------ Fig 3

// Fig3Result reproduces the weight-gap distributions: (XP-XF) pairs
// against (XP-YF) pairs.
type Fig3Result struct {
	Pairs int
	// Own: fine-tuned vs its pre-trained model. Cross: vs another
	// pre-trained model of the same architecture.
	OwnWithin002, OwnWithin01      float64 // fraction of |Δw| below 0.002 / 0.01
	CrossWithin002                 float64
	OwnMeanAbs, CrossMeanAbs       float64
	OwnHist, CrossHist             *stats.Histogram
	GapRatio                       float64 // CrossMeanAbs / OwnMeanAbs
	WeightRangeMin, WeightRangeMax float64
}

// Fig3 measures weight gaps over every (pre, fine) pair with an available
// same-architecture cross pre-trained model.
func (e *Env) Fig3() *Fig3Result {
	z := e.Zoo()
	res := &Fig3Result{
		OwnHist:   stats.NewHistogram(-0.05, 0.05, 40),
		CrossHist: stats.NewHistogram(-0.8, 0.8, 40),
	}
	var ownAll, crossAll []float64
	for _, f := range z.FineTuned {
		cross := crossPretrained(z, f)
		if cross == nil {
			continue
		}
		own := transformer.WeightGaps(f.Pretrained.Model(), f.Model())
		crossGaps := transformer.WeightGaps(cross.Model(), f.Model())
		ownAll = append(ownAll, own...)
		crossAll = append(crossAll, crossGaps...)
		res.Pairs++
	}
	res.OwnHist.AddAll(ownAll)
	res.CrossHist.AddAll(crossAll)
	res.OwnWithin002 = stats.FractionWithin(ownAll, 0.002)
	res.OwnWithin01 = stats.FractionWithin(ownAll, 0.01)
	res.CrossWithin002 = stats.FractionWithin(crossAll, 0.002)
	res.OwnMeanAbs = meanAbs(ownAll)
	res.CrossMeanAbs = meanAbs(crossAll)
	if res.OwnMeanAbs > 0 {
		res.GapRatio = res.CrossMeanAbs / res.OwnMeanAbs
	}
	// Weight value range across pre-trained models (the paper reports
	// ranges from 1.74 up to 26.3 for its real models).
	res.WeightRangeMin, res.WeightRangeMax = weightRanges(z)
	return res
}

func crossPretrained(z *zoo.Zoo, f *zoo.FineTuned) *zoo.Pretrained {
	for _, p := range z.Pretrained {
		if p != f.Pretrained && p.ArchName == f.Pretrained.ArchName {
			return p
		}
	}
	return nil
}

func meanAbs(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += math.Abs(x)
	}
	return s / float64(len(xs))
}

func weightRanges(z *zoo.Zoo) (min, max float64) {
	min, max = math.Inf(1), 0
	for _, p := range z.Pretrained {
		var lo, hi float32
		for _, np := range p.Model().Params() {
			for _, v := range np.Value.Data {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
		r := float64(hi - lo)
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	return min, max
}

// Render implements Renderer.
func (r *Fig3Result) Render(w io.Writer) {
	header(w, "Fig 3", "weight value gap: (XP-XF) vs (XP-YF)")
	fmt.Fprintf(w, "pairs compared: %d\n", r.Pairs)
	fmt.Fprintf(w, "own   pair: %.1f%% of |Δw| ≤ 0.002, %.1f%% ≤ 0.01, mean |Δw| = %.5f\n",
		100*r.OwnWithin002, 100*r.OwnWithin01, r.OwnMeanAbs)
	fmt.Fprintf(w, "cross pair: %.1f%% of |Δw| ≤ 0.002, mean |Δw| = %.5f\n",
		100*r.CrossWithin002, r.CrossMeanAbs)
	fmt.Fprintf(w, "cross/own gap ratio: %.1fx (paper: >= 20x)\n", r.GapRatio)
	fmt.Fprintf(w, "pre-trained weight value ranges: %.2f .. %.2f\n", r.WeightRangeMin, r.WeightRangeMax)
}

// ------------------------------------------------------------------ Fig 4

// Fig4Bucket is one pre-trained-weight-value bucket.
type Fig4Bucket struct {
	Center  float64
	MeanGap float64
	Count   int
}

// Fig4Result reproduces the U-shaped update-vs-weight-value profile.
type Fig4Result struct {
	Buckets []Fig4Bucket
	// URatio compares the outermost buckets' mean update against the
	// central buckets' (paper: > 3x).
	URatio float64
}

// Fig4 buckets fine-tuning updates by the pre-trained weight value.
func (e *Env) Fig4() *Fig4Result {
	z := e.Zoo()
	const buckets = 12
	const span = 0.15
	res := &Fig4Result{Buckets: make([]Fig4Bucket, buckets)}
	sums := make([]float64, buckets)
	counts := make([]float64, buckets)
	for _, f := range z.FineTuned {
		for _, pr := range transformer.SharedParams(f.Pretrained.Model(), f.Model()) {
			va, vb := pr[0].Value, pr[1].Value
			for i := range va.Data {
				w := float64(va.Data[i])
				idx := int((w + span) / (2 * span) * buckets)
				if idx < 0 {
					idx = 0
				}
				if idx >= buckets {
					idx = buckets - 1
				}
				sums[idx] += math.Abs(float64(vb.Data[i] - va.Data[i]))
				counts[idx]++
			}
		}
	}
	var centerSum, centerN, outerSum, outerN float64
	for i := 0; i < buckets; i++ {
		c := -span + (float64(i)+0.5)*2*span/buckets
		mean := 0.0
		if counts[i] > 0 {
			mean = sums[i] / counts[i]
		}
		res.Buckets[i] = Fig4Bucket{Center: c, MeanGap: mean, Count: int(counts[i])}
		if math.Abs(c) < span/4 {
			centerSum += sums[i]
			centerN += counts[i]
		}
		// The paper's "outermost 10% of weights" are the boundary buckets
		// (which also absorb everything beyond the plotted span).
		if i == 0 || i == buckets-1 {
			outerSum += sums[i]
			outerN += counts[i]
		}
	}
	if centerN > 0 && outerN > 0 && centerSum > 0 {
		res.URatio = (outerSum / outerN) / (centerSum / centerN)
	}
	return res
}

// Render implements Renderer.
func (r *Fig4Result) Render(w io.Writer) {
	header(w, "Fig 4", "update amount vs pre-trained weight value (U-shape)")
	fmt.Fprintf(w, "%-10s %-12s %-10s\n", "bucket", "mean |Δw|", "count")
	for _, b := range r.Buckets {
		fmt.Fprintf(w, "%+.3f     %-12.6f %-10d\n", b.Center, b.MeanGap, b.Count)
	}
	fmt.Fprintf(w, "outer/center update ratio: %.1fx (paper: > 3x)\n", r.URatio)
}

// ------------------------------------------------------------------ Fig 5

// Fig5Result reproduces the nine-GLUE-task per-layer weight-difference
// profile: all layers near zero except the task-dependent last layer.
type Fig5Result struct {
	Pretrained string
	Tasks      []string
	// PerLayer[l] is the mean pairwise |Δw| of encoder layer l across the
	// nine fine-tuned models; Head is the same for the task heads of
	// equal width.
	PerLayer []float64
	Head     float64
}

// Fig5 fine-tunes one pre-trained model on the nine GLUE-analog tasks and
// compares the resulting weights pairwise.
func (e *Env) Fig5() *Fig5Result {
	z := e.Zoo()
	pre := z.Pretrained[0]
	res := &Fig5Result{Pretrained: pre.Name}
	cfg := e.ZooConfig()
	var models []*transformer.Model
	for _, tk := range task.GLUEAnalogs() {
		res.Tasks = append(res.Tasks, tk.Name)
		data := tk.Generate(pre.Arch.Vocab, cfg.FineTuneExamples, rng.Seed("fig5", tk.Name))
		train, _ := task.Split(data, 0.8)
		m := transformer.FineTuneFrom(pre.Model(), tk.Labels, train, transformer.TrainConfig{
			Epochs: cfg.FineTuneEpochs, BatchSize: 4,
			LR: cfg.FineTuneLR, HeadLR: cfg.FineTuneHeadLR, WeightDecay: cfg.FineTuneDecay,
			Seed: rng.Seed("fig5-train", tk.Name),
		}, rng.Seed("fig5-head", tk.Name))
		models = append(models, m)
	}
	res.PerLayer = make([]float64, pre.Model().Layers)
	var headSum float64
	var headN, perLayerN float64
	for i := 0; i < len(models); i++ {
		for j := i + 1; j < len(models); j++ {
			diffs := transformer.LayerMeanAbsDiff(models[i], models[j])
			for l := 0; l < pre.Model().Layers; l++ {
				res.PerLayer[l] += diffs[l]
			}
			perLayerN++
			if models[i].Labels == models[j].Labels {
				headSum += diffs[len(diffs)-1]
				headN++
			}
		}
	}
	for l := range res.PerLayer {
		res.PerLayer[l] /= perLayerN
	}
	if headN > 0 {
		res.Head = headSum / headN
	}
	return res
}

// Render implements Renderer.
func (r *Fig5Result) Render(w io.Writer) {
	header(w, "Fig 5", "per-layer weight differences across 9 task fine-tunes of one model")
	fmt.Fprintf(w, "pre-trained: %s; tasks: %v\n", r.Pretrained, r.Tasks)
	for l, d := range r.PerLayer {
		fmt.Fprintf(w, "encoder %-2d  mean |Δw| = %.6f\n", l, d)
	}
	fmt.Fprintf(w, "last layer  mean |Δw| = %.6f (paper: only the last layer moves)\n", r.Head)
}

// ------------------------------------------------------------------ Fig 6

// Fig6Result tracks per-epoch weight movement over a long fine-tune.
type Fig6Result struct {
	Epochs []int
	// EncoderDelta[i] is the mean |Δw| of a middle encoder layer between
	// consecutive epochs; HeadGap[i] is the head's distance from its final
	// value (saturation curve).
	EncoderDelta []float64
	HeadGap      []float64
	PeakEpoch    int // epoch of the largest encoder delta
}

// Fig6 fine-tunes for 30 epochs with a warmup schedule and snapshots the
// weights after every epoch.
func (e *Env) Fig6() *Fig6Result {
	z := e.Zoo()
	pre := z.Pretrained[0]
	cfg := e.ZooConfig()
	tk, _ := task.ByName("rte")
	data := tk.Generate(pre.Arch.Vocab, cfg.FineTuneExamples, rng.Seed("fig6-data"))
	train, _ := task.Split(data, 0.8)

	ft := transformer.New(pre.Model().Config.WithLabels(tk.Labels), rng.Seed("fig6-head"))
	ft.CopyEmbeddingsFrom(pre.Model())
	for l := range pre.Model().Blocks {
		ft.CopyBlockFrom(pre.Model(), l)
	}

	const epochs = 30
	mid := ft.Layers / 2
	stepsPerEpoch := (len(train) + 3) / 4
	var encSnaps, headSnaps []*snapshot
	// The standard BERT fine-tuning schedule: LR warms up (here over ~8
	// epochs, matching the paper's rise until epoch 9) and then decays
	// linearly to zero, which makes the per-epoch weight delta rise and
	// then drop while the head saturates.
	ft.Train(train, transformer.TrainConfig{
		Epochs: epochs, BatchSize: 4,
		LR: cfg.FineTuneLR, HeadLR: cfg.FineTuneHeadLR, WeightDecay: cfg.FineTuneDecay,
		WarmupSteps: stepsPerEpoch * 8,
		TotalSteps:  stepsPerEpoch * epochs,
		Seed:        rng.Seed("fig6-train"),
		OnEpoch: func(epoch int, loss float64) {
			encSnaps = append(encSnaps, snapshotBlock(ft, mid))
			headSnaps = append(headSnaps, snapshotHead(ft))
		},
	})

	res := &Fig6Result{}
	final := headSnaps[len(headSnaps)-1]
	best := 0.0
	for i := 1; i < len(encSnaps); i++ {
		res.Epochs = append(res.Epochs, i+1)
		d := encSnaps[i].meanAbsDiff(encSnaps[i-1])
		res.EncoderDelta = append(res.EncoderDelta, d)
		res.HeadGap = append(res.HeadGap, headSnaps[i].meanAbsDiff(final))
		if d > best {
			best = d
			res.PeakEpoch = i + 1
		}
	}
	return res
}

type snapshot struct{ data []float32 }

func snapshotBlock(m *transformer.Model, l int) *snapshot {
	b := m.Blocks[l]
	var out []float32
	for _, p := range []*transformer.P{&b.Wq, &b.Wk, &b.Wv, &b.Wo, &b.W1, &b.W2} {
		out = append(out, p.V.Data...)
	}
	return &snapshot{data: out}
}

func snapshotHead(m *transformer.Model) *snapshot {
	out := append([]float32(nil), m.HeadW.V.Data...)
	return &snapshot{data: out}
}

func (s *snapshot) meanAbsDiff(o *snapshot) float64 {
	var sum float64
	for i := range s.data {
		sum += math.Abs(float64(s.data[i] - o.data[i]))
	}
	return sum / float64(len(s.data))
}

// Render implements Renderer.
func (r *Fig6Result) Render(w io.Writer) {
	header(w, "Fig 6", "per-epoch weight movement over a 30-epoch fine-tune")
	fmt.Fprintf(w, "%-7s %-16s %-16s\n", "epoch", "encoder Δ/epoch", "head gap to final")
	for i, ep := range r.Epochs {
		fmt.Fprintf(w, "%-7d %-16.6f %-16.6f\n", ep, r.EncoderDelta[i], r.HeadGap[i])
	}
	fmt.Fprintf(w, "encoder delta peaks at epoch %d then decays (paper: rises to ~9, then drops)\n", r.PeakEpoch)
}

// ----------------------------------------------------------------- Fig 19

// Fig19Result re-exports the CNN generalization study.
type Fig19Result = cnnmodel.Fig19Result

// Fig19 runs the ResNet-analog generalization study (§7.7).
func (e *Env) Fig19() *Fig19Result {
	r := cnnmodel.RunFig19(19)
	return &r
}

// RenderFig19 prints the generalization study.
func RenderFig19(r *Fig19Result, w io.Writer) {
	header(w, "Fig 19", "weight similarity in a CNN (ResNet analog)")
	fmt.Fprintf(w, "%-16s %-18s %-18s\n", "layer", "fine-tune vs pre", "fine-tune vs scratch")
	var ftSum, scSum float64
	for i, name := range r.Layers {
		fmt.Fprintf(w, "%-16s %-18.6f %-18.6f\n", name, r.FineTuneGap[i], r.ScratchGap[i])
		if i < len(r.Layers)-1 { // exclude replaced head
			ftSum += r.FineTuneGap[i]
			scSum += r.ScratchGap[i]
		}
	}
	ratio := 0.0
	if ftSum > 0 {
		ratio = scSum / ftSum
	}
	fmt.Fprintf(w, "scratch/fine-tune backbone gap ratio: %.1fx (paper: >= 20x)\n", ratio)
	fmt.Fprintf(w, "fine-tuned acc %.2f, scratch acc %.2f\n", r.FineTuneAcc, r.ScratchAcc)
}

// ----------------------------------------------------------------- Fig 20

// Fig20Result holds the head-confidence correlation study.
type Fig20Result struct {
	Pretrained string
	// OwnCorr are Pearson correlations between the pre-trained model's
	// per-head confidence and each of two of its fine-tuned models'.
	OwnCorr []float64
	// CrossCorr correlates the fine-tuned models against a different
	// pre-trained model.
	CrossCorr []float64
}

// Fig20 measures per-head confidence correlations on shared probe inputs.
func (e *Env) Fig20() *Fig20Result {
	z := e.Zoo()
	// Find a pre-trained model with two fine-tuned descendants.
	byPre := map[*zoo.Pretrained][]*zoo.FineTuned{}
	for _, f := range z.FineTuned {
		byPre[f.Pretrained] = append(byPre[f.Pretrained], f)
	}
	var pre *zoo.Pretrained
	var fts []*zoo.FineTuned
	for p, fs := range byPre {
		if len(fs) >= 2 {
			pre, fts = p, fs[:2]
			break
		}
	}
	if pre == nil {
		pre = z.Pretrained[0]
		fts = z.FineTuned[:1]
	}
	cross := crossPretrainedSameArch(z, pre)

	probes := probeInputs(pre.Model().Vocab, pre.Model().MaxSeq, 24, rng.Seed("fig20-probes"))
	preSeries := pre.Model().HeadConfidenceSeries(probes)
	res := &Fig20Result{Pretrained: pre.Name}
	for _, f := range fts {
		ftSeries := f.Model().HeadConfidenceSeries(probes)
		res.OwnCorr = append(res.OwnCorr, meanCellCorr(preSeries, ftSeries))
		if cross != nil {
			crossSeries := cross.Model().HeadConfidenceSeries(probes)
			res.CrossCorr = append(res.CrossCorr, meanCellCorr(crossSeries, ftSeries))
		}
	}
	return res
}

// meanCellCorr averages, over all (layer, head) cells, the Pearson
// correlation between two models' per-input confidence series — Fig 20's
// per-cell correlation, summarized.
func meanCellCorr(a, b [][][]float64) float64 {
	var sum float64
	var n int
	for l := range a {
		if l >= len(b) {
			break
		}
		for h := range a[l] {
			if h >= len(b[l]) {
				break
			}
			sum += stats.Pearson(a[l][h], b[l][h])
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func crossPretrainedSameArch(z *zoo.Zoo, pre *zoo.Pretrained) *zoo.Pretrained {
	for _, p := range z.Pretrained {
		if p != pre && p.ArchName == pre.ArchName {
			return p
		}
	}
	return nil
}

func probeInputs(vocab, maxSeq, n int, seed uint64) [][]int {
	r := rng.New(seed)
	out := make([][]int, n)
	for i := range out {
		tokens := make([]int, maxSeq)
		for j := 1; j < maxSeq; j++ {
			tokens[j] = 2 + r.Intn(vocab-2)
		}
		out[i] = tokens
	}
	return out
}

// Render implements Renderer.
func (r *Fig20Result) Render(w io.Writer) {
	header(w, "Fig 20", "head-confidence correlation (head-pruning hint)")
	fmt.Fprintf(w, "pre-trained: %s\n", r.Pretrained)
	for i, c := range r.OwnCorr {
		fmt.Fprintf(w, "fine-tune %d vs own pre-trained: r = %.3f (paper: high)\n", i, c)
	}
	for i, c := range r.CrossCorr {
		fmt.Fprintf(w, "fine-tune %d vs other pre-trained: r = %.3f (paper: low)\n", i, c)
	}
}

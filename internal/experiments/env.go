// Package experiments regenerates every table and figure of the paper's
// evaluation (§4, §7, §8) on the simulated substrate. Each experiment is a
// function on Env returning a structured result with a text rendering;
// cmd/experiments, the examples, and the benchmark harness all share
// these entry points. EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"

	"decepticon/internal/core"
	"decepticon/internal/fingerprint"
	"decepticon/internal/obs"
	"decepticon/internal/sidechannel"
	"decepticon/internal/zoo"
)

// Scale selects the experiment budget.
type Scale int

const (
	// ScaleSmall uses the reduced zoo (small architectures, ~1 min total)
	// — the default for tests and benchmarks.
	ScaleSmall Scale = iota
	// ScaleFull uses the paper-sized population: 70 pre-trained and 170
	// fine-tuned models across all architecture sizes (several minutes).
	ScaleFull
)

// Env lazily builds and caches the shared expensive state: the model zoo,
// the trace dataset, and the trained level-1 classifier.
type Env struct {
	Scale Scale

	zooOnce sync.Once
	zoo     *zoo.Zoo

	atkOnce sync.Once
	attack  *core.Attack

	dataOnce sync.Once
	trainSet *fingerprint.Dataset
	testSet  *fingerprint.Dataset

	// Progress, if non-nil, receives coarse progress lines.
	Progress func(format string, args ...any)

	// CachePath, when non-empty, loads the zoo from this file if present
	// and writes it there after building — zoo construction dominates the
	// cost of a full-scale run.
	CachePath string

	// StorePath, when non-empty, keeps the zoo in a content-addressed
	// store at this directory instead — lazy handles, incremental
	// rebuild (DESIGN.md §16). Takes precedence over CachePath; a
	// legacy cache at CachePath is imported rather than retrained.
	StorePath string

	// Workers bounds the goroutines used for zoo construction, trace
	// measurement, and attack campaigns; <= 0 selects GOMAXPROCS. All
	// results are identical for any value (see internal/parallel).
	Workers int

	// Obs, if non-nil, collects counters, gauges, and phase timings from
	// every stage the environment drives (zoo build, classifier training,
	// extraction, campaigns). See internal/obs.
	Obs *obs.Registry

	// FaultPlan, when non-nil, degrades the rowhammer channel of every
	// attack-driving experiment with seeded structured faults (see
	// sidechannel.FaultPlan). The reliability experiment additionally
	// reports it as a custom sweep point.
	FaultPlan *sidechannel.FaultPlan

	// CheckpointDir / Resume thread extraction checkpointing into the
	// attack-driving experiments (see core.RunOptions).
	CheckpointDir string
	Resume        bool

	// ReadBudget bounds the oracle read attempts of each attack-driving
	// extraction; an extraction exceeding it checkpoints and reports
	// interrupted (see core.RunOptions). 0 means unlimited.
	ReadBudget int64

	// FlightPath, when non-empty, is where attack-driving experiments dump
	// the flight recorder if an extraction is interrupted, fails, or
	// degrades tensors and no CheckpointDir is set (see core.RunOptions).
	FlightPath string

	// Ctx, when non-nil, threads cancellation into the environment's
	// heavy phases: zoo construction, classifier training, and the
	// attack-driving experiments' extractions (which checkpoint and
	// report interrupted, exactly as under a read budget). nil runs
	// uncancelled.
	Ctx context.Context
}

// ctx returns the environment's context, never nil.
func (e *Env) ctx() context.Context {
	if e.Ctx != nil {
		return e.Ctx
	}
	return context.Background()
}

// NewEnv returns an experiment environment at the given scale.
func NewEnv(scale Scale) *Env { return &Env{Scale: scale} }

func (e *Env) logf(format string, args ...any) {
	if e.Progress != nil {
		e.Progress(format, args...)
	}
}

// ZooConfig returns the build configuration for the environment's scale.
func (e *Env) ZooConfig() zoo.BuildConfig {
	cfg := zoo.SmallBuildConfig()
	if e.Scale == ScaleFull {
		cfg = zoo.DefaultBuildConfig()
	}
	cfg.Workers = e.Workers
	return cfg
}

// UseZoo injects a pre-built population. It must be called before the
// first Zoo() use and is a no-op afterwards.
func (e *Env) UseZoo(z *zoo.Zoo) {
	e.zooOnce.Do(func() { e.zoo = z })
}

// Zoo returns the (cached) model population.
func (e *Env) Zoo() *zoo.Zoo {
	e.zooOnce.Do(func() {
		cfg := e.ZooConfig()
		cfg.Obs = e.Obs
		done := 0
		cfg.OnProgress = func(stage string, d, total int) {
			done++
			if done%25 == 0 {
				e.logf("zoo: %s %d/%d", stage, d, total)
			}
		}
		e.logf("building model zoo (%d pre-trained, %d fine-tuned)...",
			cfg.NumPretrained, cfg.NumFineTuned)
		var z *zoo.Zoo
		var err error
		if e.StorePath != "" {
			z, _, err = zoo.BuildOrOpenStore(e.ctx(), cfg, e.StorePath, e.CachePath)
		} else {
			z, err = zoo.BuildOrLoadContext(e.ctx(), cfg, e.CachePath)
		}
		if err != nil {
			if z == nil {
				// The build itself failed or was cancelled — there is no
				// population to continue with. Env configs come from the
				// package's own presets, so like Attack() this is not a
				// recoverable input error.
				panic(err)
			}
			// A cache problem alone leaves the freshly built zoo usable.
			e.logf("zoo cache: %v", err)
		}
		e.zoo = z
	})
	return e.zoo
}

// Attack returns the (cached) prepared Decepticon attack, training the
// level-1 classifier on first use.
func (e *Env) Attack() *core.Attack {
	e.atkOnce.Do(func() {
		e.logf("training the pre-trained model extractor (CNN)...")
		cfg := core.DefaultPrepareConfig()
		if e.Scale == ScaleFull {
			// 70 classes need a longer schedule than the reduced zoo.
			cfg.Epochs = 90
		}
		cfg.Workers = e.Workers
		cfg.Obs = e.Obs
		atk, err := core.PrepareContext(e.ctx(), e.Zoo(), cfg)
		if err != nil {
			// Env configs come from the package's own presets; a failure
			// here is a programmer error, not bad user input.
			panic(err)
		}
		e.attack = atk
	})
	return e.attack
}

// Datasets returns a (cached) 80/20 split trace dataset, as §5.4.2 uses.
func (e *Env) Datasets() (train, test *fingerprint.Dataset) {
	e.dataOnce.Do(func() {
		d := fingerprint.BuildDataset(e.Zoo(), 5, 1, e.Workers)
		e.trainSet, e.testSet = d.Split(0.8, 2)
	})
	return e.trainSet, e.testSet
}

// Renderer is implemented by every experiment result.
type Renderer interface {
	Render(w io.Writer)
}

// header prints an experiment banner.
func header(w io.Writer, id, title string) {
	fmt.Fprintf(w, "\n=== %s: %s ===\n", id, title)
}

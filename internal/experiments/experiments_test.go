package experiments

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"

	"decepticon/internal/zoo"
)

var (
	envOnce sync.Once
	testEnv *Env
)

func getEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		testEnv = NewEnv(ScaleSmall)
		// Shrink the shared zoo further: experiment correctness, not
		// population size, is under test here.
		cfg := testEnv.ZooConfig()
		cfg.NumPretrained = 8
		cfg.NumFineTuned = 12
		testEnv.UseZoo(zoo.MustBuild(cfg))
	})
	return testEnv
}

func TestRegistryCoversPaper(t *testing.T) {
	ids := IDs()
	want := []string{
		"table1", "table2",
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig9", "fig10", "fig12",
		"fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
		"alg1", "fusion",
	}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("experiment %q missing from registry", id)
		}
	}
	if err := NewEnv(ScaleSmall).Run("nope", io.Discard); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

// Zoo-free experiments run standalone and cheaply.
func TestZooFreeExperiments(t *testing.T) {
	e := NewEnv(ScaleSmall)
	for _, id := range []string{"fig9", "fig10", "fig12", "fig21", "table2"} {
		var buf bytes.Buffer
		if err := e.Run(id, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", id)
		}
	}
}

func TestFig10DetectsLayers(t *testing.T) {
	e := NewEnv(ScaleSmall)
	r := e.Fig10()
	for _, row := range r.Rows {
		if row.DetectedCount != row.TrueLayers {
			t.Fatalf("%s: detected %d, true %d", row.Arch, row.DetectedCount, row.TrueLayers)
		}
	}
	// Peak duration must grow with hidden size.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Hidden > r.Rows[i-1].Hidden && r.Rows[i].PeakDuration <= r.Rows[i-1].PeakDuration {
			t.Fatal("peak duration must track hidden size")
		}
	}
}

func TestFig9Inflation(t *testing.T) {
	e := NewEnv(ScaleSmall)
	r := e.Fig9()
	if r.TFExecInflation < 3 || r.TFUniqueInflation < 3 {
		t.Fatalf("TF inflation too small: %.1fx / %.1fx", r.TFExecInflation, r.TFUniqueInflation)
	}
}

func TestFig21Monotone(t *testing.T) {
	e := NewEnv(ScaleSmall)
	r := e.Fig21()
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Duration >= r.Rows[i-1].Duration {
			t.Fatal("pruning more heads must shorten the trace")
		}
	}
}

func TestTable2Shape(t *testing.T) {
	e := NewEnv(ScaleSmall)
	r := e.Table2()
	if r.Rows[0].LER > 0.3 {
		t.Fatalf("in-distribution LER %v", r.Rows[0].LER)
	}
	if r.Rows[3].LER <= 1 || r.Rows[4].LER <= 1 {
		t.Fatalf("cross-framework LER must exceed 1: %v / %v", r.Rows[3].LER, r.Rows[4].LER)
	}
}

// Zoo-backed experiments, sharing one reduced population.
func TestFig3Shape(t *testing.T) {
	r := getEnv(t).Fig3()
	if r.GapRatio < 10 {
		t.Fatalf("cross/own gap ratio %v, want >= 10 (paper: 20x)", r.GapRatio)
	}
	if r.OwnWithin002 < 0.4 {
		t.Fatalf("own gaps within 0.002 = %v, want >= 0.4 (paper: ~0.5)", r.OwnWithin002)
	}
}

func TestFig4UShape(t *testing.T) {
	r := getEnv(t).Fig4()
	if r.URatio < 2.5 {
		t.Fatalf("U ratio %v, want >= 2.5 (paper: > 3)", r.URatio)
	}
	// Monotone growth from center to edge on each side.
	n := len(r.Buckets)
	if r.Buckets[0].MeanGap <= r.Buckets[n/2].MeanGap*1.2 {
		t.Fatal("left edge not clearly above center")
	}
	if r.Buckets[n-1].MeanGap <= r.Buckets[n/2].MeanGap*1.2 {
		t.Fatal("right edge not clearly above center")
	}
}

func TestFig20Separation(t *testing.T) {
	r := getEnv(t).Fig20()
	for _, own := range r.OwnCorr {
		if own < 0.8 {
			t.Fatalf("own correlation %v, want high", own)
		}
	}
	for _, cross := range r.CrossCorr {
		if cross > 0.5 {
			t.Fatalf("cross correlation %v, want low", cross)
		}
	}
}

func TestAlg1Census(t *testing.T) {
	r := getEnv(t).Alg1()
	if r.MeanBits > 2 {
		t.Fatalf("mean bits %v exceeds the 2-bit budget", r.MeanBits)
	}
	if r.SignKeepRate < 0.95 {
		t.Fatalf("sign keep rate %v", r.SignKeepRate)
	}
}

func TestTable1DropGrowsEventually(t *testing.T) {
	r := getEnv(t).Table1()
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if first.Drop != 0 {
		t.Fatal("zero frozen layers must have zero drop")
	}
	if last.Drop < -0.05 {
		t.Fatalf("freezing all measured layers should not help: drop %v", last.Drop)
	}
	// Freezing the first 2 layers stays cheap (paper: 1-3%).
	if r.Rows[2].Drop > 0.1 {
		t.Fatalf("freezing 2 layers cost %v, want <= 0.1", r.Rows[2].Drop)
	}
}

// TestFusionDominates is the multi-modal acceptance gate: the fused
// identifier must match or beat the best single modality at every noise
// sweep point, and jamming any one sensor must still produce a usable
// identification from the survivors.
func TestFusionDominates(t *testing.T) {
	r := getEnv(t).Fusion()
	if len(r.Sweep) == 0 || len(r.JamRows) == 0 {
		t.Fatal("fusion study produced no sweep or jam rows")
	}
	for _, p := range r.Sweep {
		if p.FusedAcc < p.BestSingle() {
			t.Errorf("±%.1fµs: fused %.3f below best single %.3f (trace %.3f power %.3f counters %.3f)",
				p.Magnitude, p.FusedAcc, p.BestSingle(), p.TraceAcc, p.PowerAcc, p.CounterAcc)
		}
	}
	// Clean fusion must actually identify: the tiny test zoo still gives
	// every modality real signal.
	if r.Sweep[0].FusedAcc < 0.5 {
		t.Fatalf("clean fused accuracy %.3f too low", r.Sweep[0].FusedAcc)
	}
	for _, row := range r.JamRows {
		if len(row.Survivors) != 2 {
			t.Fatalf("jamming %s left %d survivors, want 2", row.Jammed, len(row.Survivors))
		}
		if row.FusedAcc <= 0 {
			t.Errorf("jamming %s: surviving fusion accuracy is zero", row.Jammed)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "jammed") {
		t.Fatal("fusion rendering missing jamming rows")
	}
}

func TestRenderersProduceText(t *testing.T) {
	e := getEnv(t)
	var buf bytes.Buffer
	e.Fig3().Render(&buf)
	e.Fig4().Render(&buf)
	e.Alg1().Render(&buf)
	out := buf.String()
	for _, want := range []string{"Fig 3", "Fig 4", "Alg 1", "paper"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output missing %q", want)
		}
	}
}

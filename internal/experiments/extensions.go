package experiments

import (
	"fmt"
	"io"

	"decepticon/internal/extract"
	"decepticon/internal/gpusim"
	"decepticon/internal/ieee754"
	"decepticon/internal/pruning"
	"decepticon/internal/rng"
	"decepticon/internal/sidechannel"
	"decepticon/internal/stats"
	"decepticon/internal/traceimg"
	"decepticon/internal/transformer"
	"decepticon/internal/zoo"
)

// These experiments cover the paper's §8 "Discussions" — head pruning,
// quantization, and the proposed countermeasure — plus a channel-
// reliability study the paper's threat model implies (rowhammer reads are
// not perfect). They extend the evaluation beyond the numbered figures.

// --------------------------------------------------------- head pruning

// PruningResult is the §8 head-pruning recovery study.
type PruningResult struct {
	Victim         string
	TruePruned     int
	FoundPruned    int
	CountAcc       float64 // per-layer active-count accuracy (from the trace)
	HeadAcc        float64 // pruned-head localization accuracy (from confidences)
	JitterCountAcc float64 // count accuracy under measurement jitter
}

// Pruning builds a head-pruned victim from the zoo, then recovers the
// pruning configuration from its trace and the pre-trained confidences.
func (e *Env) Pruning() *PruningResult {
	z := e.Zoo()
	src := z.FineTuned[0]
	victim := src.Model().Clone()
	probes := probeInputs(victim.Vocab, victim.MaxSeq, 24, rng.Seed("pruning-probes"))

	// The victim's owner pruned the lowest-confidence heads, layer by
	// layer with varying intensity.
	conf := victim.HeadConfidence(probes)
	for l := 0; l < victim.Layers; l++ {
		n := l % victim.Heads // 0, 1, 2, ... pruned heads per layer
		for k := 0; k < n; k++ {
			best, bestConf := -1, 2.0
			for h := 0; h < victim.Heads; h++ {
				if victim.Blocks[l].HeadPruned[h] {
					continue
				}
				if conf[l][h] < bestConf {
					best, bestConf = h, conf[l][h]
				}
			}
			victim.PruneHeads(l, best)
		}
	}

	active := make([]int, victim.Layers)
	for l, b := range victim.Blocks {
		for _, p := range b.HeadPruned {
			if !p {
				active[l]++
			}
		}
	}
	prof := src.Pretrained.Profile
	trace := gpusim.SimulateTransformer(victim.Config, active, prof, gpusim.Options{})

	det, err := pruning.Detect(trace, src.Pretrained.Model(), prof, probes)
	if err != nil {
		panic(err)
	}
	countAcc, headAcc := pruning.Accuracy(det, victim)

	noisy := gpusim.SimulateTransformer(victim.Config, active, prof, gpusim.Options{
		MeasureSeed: 7, JitterMagnitude: 0.2,
	})
	detNoisy, err := pruning.Detect(noisy, src.Pretrained.Model(), prof, probes)
	if err != nil {
		panic(err)
	}
	jitterCountAcc, _ := pruning.Accuracy(detNoisy, victim)

	return &PruningResult{
		Victim:      src.Name + " (head-pruned)",
		TruePruned:  victim.PrunedHeadCount(),
		FoundPruned: det.TotalPruned(),
		CountAcc:    countAcc, HeadAcc: headAcc,
		JitterCountAcc: jitterCountAcc,
	}
}

// Render implements Renderer.
func (r *PruningResult) Render(w io.Writer) {
	header(w, "Pruning", "head-pruning recovery (§8): counts from the trace, locations from confidences")
	fmt.Fprintf(w, "victim: %s, %d heads pruned\n", r.Victim, r.TruePruned)
	fmt.Fprintf(w, "detected pruned heads:        %d\n", r.FoundPruned)
	fmt.Fprintf(w, "per-layer count accuracy:     %.2f (clean trace)\n", r.CountAcc)
	fmt.Fprintf(w, "per-layer count accuracy:     %.2f (jittered trace)\n", r.JitterCountAcc)
	fmt.Fprintf(w, "pruned-head localization:     %.2f (via Fig 20 confidence correlation)\n", r.HeadAcc)
}

// -------------------------------------------------------- quantization

// QuantFormat is one format's extraction outcome.
type QuantFormat struct {
	Format     string
	BitsRead   int
	FullBits   int
	WithinGap  float64
	MeanAbsErr float64
}

// QuantResult is the §8 quantization study: the selective extraction
// applied to float32, float16, and bfloat16 victims.
type QuantResult struct {
	Weights int
	Formats []QuantFormat
}

// Quant runs the format-aware extraction over a real (pre, fine) weight
// population from the zoo.
func (e *Env) Quant() *QuantResult {
	z := e.Zoo()
	victim := z.FineTuned[0]
	var base, fine []float32
	for _, pr := range transformer.SharedParams(victim.Pretrained.Model(), victim.Model()) {
		base = append(base, pr[0].Value.Data...)
		fine = append(fine, pr[1].Value.Data...)
	}
	cfg := extract.DefaultConfig()
	res := &QuantResult{Weights: len(base)}
	for _, fm := range []ieee754.Format{ieee754.Binary32, ieee754.Binary16, ieee754.BFloat16} {
		st := cfg.ExtractQuantizedTensor(fm, base, fine)
		res.Formats = append(res.Formats, QuantFormat{
			Format:     st.Format,
			BitsRead:   st.BitsRead,
			FullBits:   st.FullBitsTotal,
			WithinGap:  float64(st.WithinGap) / float64(st.Weights),
			MeanAbsErr: st.MeanAbsErr,
		})
	}
	return res
}

// Render implements Renderer.
func (r *QuantResult) Render(w io.Writer) {
	header(w, "Quant", "selective extraction across storage formats (§8)")
	fmt.Fprintf(w, "weights: %d\n", r.Weights)
	fmt.Fprintf(w, "%-10s %-12s %-12s %-12s %-12s\n", "format", "bits read", "full bits", "within gap", "mean |err|")
	for _, f := range r.Formats {
		fmt.Fprintf(w, "%-10s %-12d %-12d %-12.3f %-12.6f\n",
			f.Format, f.BitsRead, f.FullBits, f.WithinGap, f.MeanAbsErr)
	}
	fmt.Fprintln(w, "(bfloat16 checks the same bit positions as float32 — shared exponent layout)")
}

// ------------------------------------------------------- channel noise

// NoisePoint is one bit-error-rate measurement.
type NoisePoint struct {
	ErrorRate float64
	Repeats   int // majority-vote reads per bit (1 = single read)
	MatchRate float64
}

// NoiseResult studies extraction robustness to unreliable rowhammer reads.
type NoiseResult struct {
	Victim string
	Points []NoisePoint
}

// Noise re-runs the extraction with increasing oracle bit-error rates.
func (e *Env) Noise() *NoiseResult {
	z := e.Zoo()
	victim := z.FineTuned[0]
	res := &NoiseResult{Victim: victim.Name}
	run := func(rate float64, repeats int) {
		oracle := sidechannel.NewOracle(victim.Model())
		oracle.SetNoise(rate, 1234)
		cfg := extract.DefaultConfig()
		cfg.ReadRepeats = repeats
		ex := &extract.Extractor{
			Pre:    victim.Pretrained.Model(),
			Oracle: oracle,
			Cfg:    cfg,
		}
		clone, _, err := ex.Run(victim.Task.Labels, victim.Dev)
		if err != nil {
			panic(err) // zoo-built victim with its own oracle cannot mismatch
		}
		match := stats.MatchRate(victim.Model().Predictions(victim.Dev), clone.Predictions(victim.Dev))
		res.Points = append(res.Points, NoisePoint{ErrorRate: rate, Repeats: repeats, MatchRate: match})
	}
	for _, rate := range []float64{0, 0.001, 0.01, 0.05, 0.2} {
		run(rate, 1)
	}
	// The standard mitigation: majority-vote reads at the harshest rates.
	run(0.05, 3)
	run(0.2, 5)
	return res
}

// Render implements Renderer.
func (r *NoiseResult) Render(w io.Writer) {
	header(w, "Noise", "extraction robustness to unreliable bit reads")
	fmt.Fprintf(w, "victim: %s\n", r.Victim)
	fmt.Fprintf(w, "%-12s %-9s %-12s\n", "bit errors", "repeats", "clone match")
	for _, p := range r.Points {
		rep := p.Repeats
		if rep < 1 {
			rep = 1
		}
		fmt.Fprintf(w, "%-12.3f %-9d %-12.3f\n", p.ErrorRate, rep, p.MatchRate)
	}
	fmt.Fprintln(w, "(checked bits have small place values; majority-vote reads recover harsh channels)")
}

// ------------------------------------------------------- countermeasure

// DefenseResult evaluates the paper's proposed countermeasure (§8):
// run-time randomization of kernel/library selection.
type DefenseResult struct {
	BaselineAcc float64 // classifier accuracy on undefended victim traces
	DefendedAcc float64 // same victims with kernel randomization enabled
	// LayerDetection shows what the defense does NOT hide: the repetition
	// count (architecture) is still recoverable from a defended trace.
	LayerDetectionOK bool
}

// Defense measures the fingerprint classifier against defended victims.
// "Correct" means the prediction names a release with the victim's exact
// execution profile: profile-ambiguous cluster members share a fingerprint
// by construction and are resolved by query probes, which the defense does
// not affect — so they must not dilute this comparison.
func (e *Env) Defense() *DefenseResult {
	z := e.Zoo()
	atk := e.Attack()
	res := &DefenseResult{}
	sameProfile := func(predicted string, f *zoo.FineTuned) bool {
		p := z.PretrainedByName(predicted)
		return p != nil && p.Profile.Seed == f.Pretrained.Profile.Seed &&
			p.ArchName == f.Pretrained.ArchName
	}
	correctPlain, correctDefended, total := 0, 0, 0
	for i, f := range z.FineTuned {
		plain := f.Trace(gpusim.Options{MeasureSeed: uint64(500 + i), JitterMagnitude: 0.3})
		if sameProfile(atk.Classifier.Predict(plain), f) {
			correctPlain++
		}
		prof := f.Pretrained.Profile
		prof.RandomizeKernels = true
		defended := gpusim.SimulateTransformer(f.Model().Config, nil, prof, gpusim.Options{
			MeasureSeed: uint64(900 + i), JitterMagnitude: 0.3,
		})
		defended.Model = f.Name
		if sameProfile(atk.Classifier.Predict(defended), f) {
			correctDefended++
		}
		total++
	}
	res.BaselineAcc = float64(correctPlain) / float64(total)
	res.DefendedAcc = float64(correctDefended) / float64(total)

	// Architecture still leaks: layer detection on a defended trace.
	f := z.FineTuned[0]
	prof := f.Pretrained.Profile
	prof.RandomizeKernels = true
	defended := gpusim.SimulateTransformer(f.Model().Config, nil, prof, gpusim.Options{MeasureSeed: 99})
	res.LayerDetectionOK = traceimg.DetectLayerCount(defended, 32) == f.Model().Layers
	return res
}

// Render implements Renderer.
func (r *DefenseResult) Render(w io.Writer) {
	header(w, "Defense", "run-time kernel-selection randomization (§8 countermeasure)")
	fmt.Fprintf(w, "identification accuracy, undefended victims: %.2f\n", r.BaselineAcc)
	fmt.Fprintf(w, "identification accuracy, defended victims:   %.2f\n", r.DefendedAcc)
	fmt.Fprintf(w, "layer count still detectable under defense:  %v\n", r.LayerDetectionOK)
	fmt.Fprintln(w, "(the defense hides the release identity but not the architecture)")
}

package experiments

import (
	"testing"

	"decepticon/internal/gpusim"
	"decepticon/internal/traceimg"
)

func TestPruningRecovery(t *testing.T) {
	r := getEnv(t).Pruning()
	if r.TruePruned == 0 {
		t.Fatal("pruning experiment built an unpruned victim")
	}
	if r.CountAcc < 1 {
		t.Fatalf("clean-trace count accuracy %v, want 1", r.CountAcc)
	}
	if r.HeadAcc < 0.7 {
		t.Fatalf("head localization %v, want >= 0.7", r.HeadAcc)
	}
	if r.JitterCountAcc < 0.7 {
		t.Fatalf("jittered count accuracy %v, want >= 0.7", r.JitterCountAcc)
	}
}

func TestQuantAcrossFormats(t *testing.T) {
	r := getEnv(t).Quant()
	if len(r.Formats) != 3 {
		t.Fatalf("formats: %d", len(r.Formats))
	}
	for _, f := range r.Formats {
		if f.WithinGap < 0.85 {
			t.Fatalf("%s: within-gap %v too low", f.Format, f.WithinGap)
		}
		if f.BitsRead >= f.FullBits/4 {
			t.Fatalf("%s: read %d of %d bits — no reduction", f.Format, f.BitsRead, f.FullBits)
		}
	}
	// The 16-bit formats cost no more reads than float32 (same ≤2-bit
	// budget, smaller full readout).
	if r.Formats[1].FullBits >= r.Formats[0].FullBits {
		t.Fatal("float16 full readout should be half of float32's")
	}
}

func TestNoiseDegradesGracefully(t *testing.T) {
	r := getEnv(t).Noise()
	if len(r.Points) < 4 {
		t.Fatalf("points: %d", len(r.Points))
	}
	if r.Points[0].ErrorRate != 0 {
		t.Fatal("first point must be the clean channel")
	}
	clean := r.Points[0].MatchRate
	if clean < 0.9 {
		t.Fatalf("clean-channel match %v", clean)
	}
	// Small error rates stay close to clean; huge rates may hurt.
	if r.Points[1].MatchRate < clean-0.15 {
		t.Fatalf("0.1%% bit errors dropped match from %v to %v", clean, r.Points[1].MatchRate)
	}
}

func TestDefenseExperimentRuns(t *testing.T) {
	r := getEnv(t).Defense()
	if r.BaselineAcc < 0.5 {
		t.Fatalf("baseline identification %v too low for the comparison to mean anything", r.BaselineAcc)
	}
	if r.DefendedAcc > r.BaselineAcc {
		t.Fatalf("defense must not improve identification: %v -> %v", r.BaselineAcc, r.DefendedAcc)
	}
	if !r.LayerDetectionOK {
		t.Fatal("defense should not hide the layer count (variants are per-run consistent)")
	}
	// The release-pool drop only shows with many same-arch alternatives
	// (the full-scale run measures it); the reduced pool here is dominated
	// by architecture leakage, which the defense deliberately retains.
}

func TestDefenseScramblesFingerprint(t *testing.T) {
	// The crisp per-trace property behind the Defense experiment: two
	// undefended measurements of a model render nearly identical images,
	// while two defended measurements diverge strongly.
	z := getEnv(t).Zoo()
	p := z.Pretrained[0]
	dist := func(a, b []float32) float64 {
		var s float64
		for i := range a {
			d := float64(a[i] - b[i])
			s += d * d
		}
		return s
	}
	render := func(randomize bool, seed uint64) []float32 {
		prof := p.Profile
		prof.RandomizeKernels = randomize
		tr := gpusim.SimulateTransformer(p.Arch, nil, prof, gpusim.Options{MeasureSeed: seed})
		return traceimg.Render(traceimg.StripMemcpy(tr), 32).Pix
	}
	// Without measurement jitter, two undefended runs are bit-identical;
	// two defended runs of the same model must diverge.
	if plain := dist(render(false, 1), render(false, 2)); plain != 0 {
		t.Fatalf("undefended deterministic traces differ: %v", plain)
	}
	if defended := dist(render(true, 1), render(true, 2)); defended < 1 {
		t.Fatalf("defense left the fingerprint nearly intact: dist %v", defended)
	}
}

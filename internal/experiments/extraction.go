package experiments

import (
	"fmt"
	"io"

	"decepticon/internal/core"
	"decepticon/internal/extract"
	"decepticon/internal/ieee754"
	"decepticon/internal/rng"
	"decepticon/internal/sidechannel"
	"decepticon/internal/task"
	"decepticon/internal/transformer"
	"decepticon/internal/zoo"
)

// ----------------------------------------------------------------- Fig 15

// Fig15Result compares the victim with its extracted clone.
type Fig15Result struct {
	Report *core.Report
}

// Fig15 runs the full two-level pipeline against a victim and compares
// accuracy, F1, and prediction agreement.
func (e *Env) Fig15() *Fig15Result {
	atk := e.Attack()
	victim := pickVictim(e.Zoo(), "squad")
	rep, err := atk.RunContext(e.ctx(), victim, core.RunOptions{
		MeasureSeed: 15,
		FaultPlan:   e.FaultPlan, CheckpointDir: e.CheckpointDir, Resume: e.Resume,
		ReadBudget: e.ReadBudget, FlightPath: e.FlightPath,
	})
	if err != nil {
		panic(err)
	}
	return &Fig15Result{Report: rep}
}

// Render implements Renderer.
func (r *Fig15Result) Render(w io.Writer) {
	header(w, "Fig 15", "victim vs extracted clone (accuracy, F1, matched predictions)")
	rep := r.Report
	fmt.Fprintf(w, "victim: %s (pre-trained: %s)\n", rep.Victim, rep.TruePretrained)
	fmt.Fprintf(w, "identified pre-trained: %s (correct: %v, query probes: %v)\n",
		rep.Identified, rep.CorrectIdentity, rep.UsedQueryProbes)
	if rep.Extract == nil {
		fmt.Fprintln(w, "extraction did not run (identification failed)")
		return
	}
	fmt.Fprintf(w, "%-10s %-10s %-10s\n", "", "victim", "clone")
	fmt.Fprintf(w, "%-10s %-10.3f %-10.3f\n", "accuracy", rep.VictimAcc, rep.CloneAcc)
	fmt.Fprintf(w, "%-10s %-10.3f %-10.3f\n", "F1", rep.VictimF1, rep.CloneF1)
	fmt.Fprintf(w, "matched predictions: %.1f%% (paper: 94%%)\n", 100*rep.MatchRate)
}

// ----------------------------------------------------------------- Fig 16

// Fig16Arch is one architecture's last-layer weight share.
type Fig16Arch struct {
	Arch         string
	TotalWeights int
	HeadWeights  int
	HeadFraction float64
}

// Fig16Result is the selective-extraction efficiency breakdown.
type Fig16Result struct {
	Victim string
	Stats  *extract.Stats
	// HeadShare reproduces the right panel: the last layer's share of the
	// total weight count per architecture size.
	HeadShare []Fig16Arch
}

// Fig16 measures extraction efficiency on a (pre, fine) pair plus the
// per-architecture head-share census.
func (e *Env) Fig16() *Fig16Result {
	z := e.Zoo()
	victim := z.FineTuned[0]
	ex := &extract.Extractor{
		Pre:    victim.Pretrained.Model(),
		Oracle: sidechannel.NewOracle(victim.Model()),
		Cfg:    extract.DefaultConfig(),
		Obs:    e.Obs,
	}
	_, st, err := ex.Run(victim.Task.Labels, victim.Dev)
	if err != nil {
		panic(err) // zoo-built victim with its own oracle cannot mismatch
	}
	res := &Fig16Result{Victim: victim.Name, Stats: st}
	for _, name := range []string{"tiny", "mini", "small", "medium", "base", "large"} {
		cfg := transformer.Family()[name]
		m := transformer.New(cfg, 1)
		res.HeadShare = append(res.HeadShare, Fig16Arch{
			Arch:         name,
			TotalWeights: m.ParamCount(),
			HeadWeights:  m.HeadParamCount(),
			HeadFraction: float64(m.HeadParamCount()) / float64(m.ParamCount()),
		})
	}
	return res
}

// Render implements Renderer.
func (r *Fig16Result) Render(w io.Writer) {
	header(w, "Fig 16", "reduced weight/bit checking and last-layer share")
	st := r.Stats
	fmt.Fprintf(w, "victim: %s\n", r.Victim)
	fmt.Fprintf(w, "weights correctly pruned:   %.1f%% (paper: ~90%%)\n", 100*st.WeightsCorrectlyPruned())
	fmt.Fprintf(w, "bits correctly excluded:    %.1f%% (paper: ~85%%)\n", 100*st.BitsCorrectlyExcluded())
	fmt.Fprintf(w, "bits read / total bits:     %.2f%%\n", 100*st.BitsReadFraction())
	fmt.Fprintf(w, "reduction over full readout: %.1fx\n", st.ReductionFactor())
	// Rounds are charged per physical oracle access; with ReadRepeats > 1
	// this exceeds the logical (distinct-position) count.
	fmt.Fprintf(w, "rowhammer rounds (2048/bit): %d\n", st.HammerRounds())
	fmt.Fprintln(w, "last-layer share of total weights per architecture:")
	for _, a := range r.HeadShare {
		fmt.Fprintf(w, "  %-8s %8d weights, head %5d (%.3f%%)\n",
			a.Arch, a.TotalWeights, a.HeadWeights, 100*a.HeadFraction)
	}
}

// ----------------------------------------------------------------- Fig 17

// Fig17Point is one data-fraction measurement.
type Fig17Point struct {
	Fraction float64
	Accuracy float64
	Drop     float64
}

// Fig17Result answers "is weight extraction necessary?": cloning by
// re-fine-tuning with partial data.
type Fig17Result struct {
	VictimAccuracy float64
	Points         []Fig17Point
	// NeededFraction is the smallest tested fraction with < 5% drop.
	NeededFraction float64
}

// Fig17 fine-tunes the victim's pre-trained model with increasing shares
// of the victim's training data.
func (e *Env) Fig17() *Fig17Result {
	z := e.Zoo()
	victim := z.FineTuned[0]
	cfg := e.ZooConfig()
	// A larger held-out set than the victim's dev split stabilizes the
	// curve at this scale.
	eval := victim.Task.Generate(victim.Pretrained.Arch.Vocab, 120, rng.Seed("fig17-eval"))
	res := &Fig17Result{VictimAccuracy: victim.Model().Evaluate(eval), NeededFraction: 1}
	const seeds = 3
	for _, frac := range []float64{0.01, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0} {
		subset := task.Subset(victim.Train, frac)
		var acc float64
		for s := 0; s < seeds; s++ {
			m := transformer.FineTuneFrom(victim.Pretrained.Model(), victim.Task.Labels, subset,
				transformer.TrainConfig{
					Epochs: cfg.FineTuneEpochs, BatchSize: 4,
					LR: cfg.FineTuneLR, HeadLR: cfg.FineTuneHeadLR, WeightDecay: cfg.FineTuneDecay,
					Seed: rng.Seed("fig17", fmt.Sprint(frac), fmt.Sprint(s)),
				}, rng.Seed("fig17-head", fmt.Sprint(frac), fmt.Sprint(s)))
			acc += m.Evaluate(eval)
		}
		acc /= seeds
		drop := res.VictimAccuracy - acc
		res.Points = append(res.Points, Fig17Point{Fraction: frac, Accuracy: acc, Drop: drop})
		if drop <= 0.05 && frac < res.NeededFraction {
			res.NeededFraction = frac
		}
	}
	return res
}

// Render implements Renderer.
func (r *Fig17Result) Render(w io.Writer) {
	header(w, "Fig 17", "cloning by re-fine-tuning with partial data (extraction necessity)")
	fmt.Fprintf(w, "victim accuracy: %.3f\n", r.VictimAccuracy)
	fmt.Fprintf(w, "%-10s %-10s %-10s\n", "data", "accuracy", "drop")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-10.2f %-10.3f %-10.3f\n", p.Fraction, p.Accuracy, p.Drop)
	}
	fmt.Fprintf(w, "smallest fraction with <5%% drop: %.2f (paper: 0.40)\n", r.NeededFraction)
}

// ------------------------------------------------------------- Algorithm 1

// Alg1Result is the bit-census view of the selective extraction.
type Alg1Result struct {
	Weights      int
	Checked0     int // step-1 skips
	Checked1     int
	Checked2     int
	SignKeepRate float64
	MeanBits     float64
}

// Alg1 censuses Algorithm 1's per-weight bit budget on a (pre, fine) pair.
func (e *Env) Alg1() *Alg1Result {
	z := e.Zoo()
	victim := z.FineTuned[0]
	cfg := extract.DefaultConfig()
	res := &Alg1Result{
		SignKeepRate: transformer.SignKeepRate(victim.Pretrained.Model(), victim.Model()),
	}
	preParams := victim.Pretrained.Model().Params()
	ftParams := victim.Model().Params()
	totalBits := 0
	for i := range preParams {
		if preParams[i].IsHead || i >= len(ftParams) {
			continue
		}
		pv, fv := preParams[i].Value.Data, ftParams[i].Value.Data
		for j := range pv {
			_, checked := cfg.ExtractWeight(pv[j], func(bit int) int {
				return ieee754.Bit(fv[j], bit)
			})
			res.Weights++
			totalBits += len(checked)
			switch len(checked) {
			case 0:
				res.Checked0++
			case 1:
				res.Checked1++
			default:
				res.Checked2++
			}
		}
	}
	if res.Weights > 0 {
		res.MeanBits = float64(totalBits) / float64(res.Weights)
	}
	return res
}

// Render implements Renderer.
func (r *Alg1Result) Render(w io.Writer) {
	header(w, "Alg 1", "selective weight extraction bit census")
	fmt.Fprintf(w, "weights: %d; checked 0 bits: %d, 1 bit: %d, 2 bits: %d\n",
		r.Weights, r.Checked0, r.Checked1, r.Checked2)
	fmt.Fprintf(w, "mean bits checked per weight: %.3f (paper: up to 2 suffice)\n", r.MeanBits)
	fmt.Fprintf(w, "sign keep rate: %.2f%% (paper: ~99%%)\n", 100*r.SignKeepRate)
}

// ----------------------------------------------------------------- Fig 18

// Fig18Result is the adversarial-attack comparison.
type Fig18Result struct {
	Report *core.Report
}

// Fig18 runs the full pipeline with the adversarial stage and eight
// distillation substitutes, as in §7.6.
func (e *Env) Fig18() *Fig18Result {
	atk := e.Attack()
	victim := bestVictim(e.Zoo())
	n := 8
	if e.Scale == ScaleSmall {
		n = 4
	}
	rep, err := atk.RunContext(e.ctx(), victim, core.RunOptions{
		MeasureSeed: 18, Adversarial: true, NumSubstitutes: n, FlipsPerInput: 2,
		FlightPath: e.FlightPath,
	})
	if err != nil {
		panic(err)
	}
	return &Fig18Result{Report: rep}
}

// bestVictim prefers a victim the attack can fully exercise: accurate
// enough to attack and with an unambiguous profile.
func bestVictim(z *zoo.Zoo) *zoo.FineTuned {
	best := z.FineTuned[0]
	bestAcc := -1.0
	for _, f := range z.FineTuned {
		if len(z.AmbiguousWith(f.Pretrained)) > 1 {
			continue
		}
		if acc := f.Model().Evaluate(f.Dev); acc > bestAcc {
			best, bestAcc = f, acc
		}
	}
	return best
}

// Render implements Renderer.
func (r *Fig18Result) Render(w io.Writer) {
	header(w, "Fig 18", "adversarial attack: extracted clone vs distilled substitutes")
	rep := r.Report
	fmt.Fprintf(w, "victim: %s\n", rep.Victim)
	fmt.Fprintf(w, "clone success rate: %.1f%% (paper: 90.6%%)\n", 100*rep.AdvClone)
	for i, s := range rep.AdvSubstitutes {
		fmt.Fprintf(w, "substitute %d:      %.1f%%\n", i+1, 100*s)
	}
	maxSub := 0.0
	for _, s := range rep.AdvSubstitutes {
		if s > maxSub {
			maxSub = s
		}
	}
	fmt.Fprintf(w, "best substitute: %.1f%% (paper: up to 38%%)\n", 100*maxSub)
}

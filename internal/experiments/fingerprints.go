package experiments

import (
	"fmt"
	"io"

	"decepticon/internal/deepsniffer"
	"decepticon/internal/fingerprint"
	"decepticon/internal/gpusim"
	"decepticon/internal/stats"
	"decepticon/internal/traceimg"
	"decepticon/internal/transformer"
	"decepticon/internal/zoo"
)

// ------------------------------------------------------------- Fig 7 & 8

// Fig7Model summarizes one model's trace statistics.
type Fig7Model struct {
	Name         string
	Source       string
	Execs        int
	Unique       int
	MeanDuration float64
	PeakDuration float64
}

// Fig7Result contrasts same-architecture models from different sources
// (Fig 7) and shows same-source consistency across tasks (Fig 8).
type Fig7Result struct {
	Arch   string
	Models []Fig7Model
	// SameSourceMaxDelta is the largest relative peak-duration difference
	// between two fine-tuned models of the same release (Fig 8 expects
	// near zero); CrossSourceMinDelta is the smallest across releases.
	SameSourceMaxDelta  float64
	CrossSourceMinDelta float64
}

// Fig7 measures trace statistics for every same-architecture release.
func (e *Env) Fig7() *Fig7Result {
	z := e.Zoo()
	arch := mostCommonArch(z)
	res := &Fig7Result{Arch: arch}
	var entries []*zoo.Pretrained
	for _, p := range z.Pretrained {
		if p.ArchName == arch {
			entries = append(entries, p)
		}
	}
	for _, p := range entries {
		t := p.Trace(gpusim.Options{})
		execs, unique := t.KernelCensus()
		res.Models = append(res.Models, Fig7Model{
			Name: p.Name, Source: p.Source,
			Execs: execs, Unique: unique,
			MeanDuration: stats.Mean(t.Durations()),
			PeakDuration: t.PeakDuration(),
		})
	}
	// Fig 8: two fine-tuned models of the same release (different tasks).
	byPre := map[*zoo.Pretrained][]*zoo.FineTuned{}
	for _, f := range z.FineTuned {
		byPre[f.Pretrained] = append(byPre[f.Pretrained], f)
	}
	for p, fs := range byPre {
		if len(fs) < 2 {
			continue
		}
		a := fs[0].Trace(gpusim.Options{}).PeakDuration()
		b := fs[1].Trace(gpusim.Options{}).PeakDuration()
		if d := relDelta(a, b); d > res.SameSourceMaxDelta {
			res.SameSourceMaxDelta = d
		}
		_ = p
	}
	res.CrossSourceMinDelta = 1e18
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			if entries[i].Profile.Seed == entries[j].Profile.Seed {
				continue // ambiguity cluster: identical by design
			}
			a := entries[i].Trace(gpusim.Options{}).Duration()
			b := entries[j].Trace(gpusim.Options{}).Duration()
			if d := relDelta(a, b); d < res.CrossSourceMinDelta {
				res.CrossSourceMinDelta = d
			}
		}
	}
	return res
}

func mostCommonArch(z *zoo.Zoo) string {
	counts := map[string]int{}
	for _, p := range z.Pretrained {
		counts[p.ArchName]++
	}
	best, bestN := "", 0
	for a, n := range counts {
		if n > bestN {
			best, bestN = a, n
		}
	}
	return best
}

func relDelta(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if a == 0 {
		return 0
	}
	return d / a
}

// Render implements Renderer.
func (r *Fig7Result) Render(w io.Writer) {
	header(w, "Fig 7/8", "time-series kernel diversity across releases of one architecture")
	fmt.Fprintf(w, "architecture: %s\n", r.Arch)
	fmt.Fprintf(w, "%-40s %-12s %-7s %-7s %-10s %-10s\n", "model", "source", "execs", "uniq", "mean µs", "peak µs")
	for _, m := range r.Models {
		fmt.Fprintf(w, "%-40s %-12s %-7d %-7d %-10.2f %-10.2f\n",
			m.Name, m.Source, m.Execs, m.Unique, m.MeanDuration, m.PeakDuration)
	}
	fmt.Fprintf(w, "same-release max fingerprint delta across tasks: %.4f (Fig 8: consistent)\n", r.SameSourceMaxDelta)
	fmt.Fprintf(w, "cross-release min fingerprint delta:             %.4f (Fig 7: all differ)\n", r.CrossSourceMinDelta)
}

// ------------------------------------------------------------------ Fig 9

// Fig9Profile is one release's kernel census.
type Fig9Profile struct {
	Name   string
	Execs  int
	Unique int
	Sample []string // a few kernel names
}

// Fig9Result lists kernels executed by same-architecture models of
// different releases.
type Fig9Result struct {
	Profiles          []Fig9Profile
	TFExecInflation   float64 // TF execs / PyTorch execs
	TFUniqueInflation float64
}

// Fig9 compares kernel censuses across framework/source profiles.
func (e *Env) Fig9() *Fig9Result {
	arch := transformer.Family()["large"]
	res := &Fig9Result{}
	var ptExecs, ptUnique, tfExecs, tfUnique int
	for _, p := range []gpusim.Profile{
		{Source: "huggingface-pytorch", Framework: gpusim.PyTorch, Seed: 91},
		{Source: "meta-pytorch", Framework: gpusim.PyTorch, Seed: 92, ShortKernels: true},
		{Source: "nvidia-pytorch", Framework: gpusim.PyTorch, Seed: 93, TensorCores: true},
		{Source: "nvidia-tensorflow", Framework: gpusim.TensorFlow, Seed: 94, TensorCores: true},
		{Source: "google-tensorflow", Framework: gpusim.TensorFlow, Seed: 95},
	} {
		t := gpusim.SimulateTransformer(arch, nil, p, gpusim.Options{})
		execs, unique := t.KernelCensus()
		names := t.UniqueKernelNames()
		if len(names) > 8 {
			names = names[:8]
		}
		res.Profiles = append(res.Profiles, Fig9Profile{
			Name: p.Source, Execs: execs, Unique: unique, Sample: names,
		})
		switch p.Source {
		case "huggingface-pytorch":
			ptExecs, ptUnique = execs, unique
		case "google-tensorflow":
			tfExecs, tfUnique = execs, unique
		}
	}
	if ptExecs > 0 {
		res.TFExecInflation = float64(tfExecs) / float64(ptExecs)
		res.TFUniqueInflation = float64(tfUnique) / float64(ptUnique)
	}
	return res
}

// Render implements Renderer.
func (r *Fig9Result) Render(w io.Writer) {
	header(w, "Fig 9", "kernels executed by BERT-large-analog models per release")
	for _, p := range r.Profiles {
		fmt.Fprintf(w, "%s: %d executions of %d kernels\n", p.Name, p.Execs, p.Unique)
		for _, n := range p.Sample {
			fmt.Fprintf(w, "    %s\n", n)
		}
	}
	fmt.Fprintf(w, "TF/PyTorch inflation: %.1fx executions, %.1fx unique kernels (paper: up to 8x / ~40x)\n",
		r.TFExecInflation, r.TFUniqueInflation)
}

// ----------------------------------------------------------------- Fig 10

// Fig10Row is one architecture's layer-boundary detection.
type Fig10Row struct {
	Arch          string
	TrueLayers    int
	DetectedCount int
	PeakDuration  float64
	Hidden        int
}

// Fig10Result reproduces the layer-boundary identification.
type Fig10Result struct{ Rows []Fig10Row }

// Fig10 detects layer counts and peak durations for the base and large
// analogs (plus tiny for contrast).
func (e *Env) Fig10() *Fig10Result {
	res := &Fig10Result{}
	prof := gpusim.Profile{Source: "huggingface", Framework: gpusim.PyTorch, Seed: 101}
	for _, name := range []string{"tiny", "base", "large"} {
		cfg := transformer.Family()[name]
		t := gpusim.SimulateTransformer(cfg, nil, prof, gpusim.Options{})
		res.Rows = append(res.Rows, Fig10Row{
			Arch:          name,
			TrueLayers:    cfg.Layers,
			DetectedCount: traceimg.DetectLayerCount(t, 32),
			PeakDuration:  t.PeakDuration(),
			Hidden:        cfg.Hidden,
		})
	}
	return res
}

// Render implements Renderer.
func (r *Fig10Result) Render(w io.Writer) {
	header(w, "Fig 10", "layer boundary identification from repeating kernel groups")
	fmt.Fprintf(w, "%-8s %-8s %-10s %-8s %-10s\n", "arch", "layers", "detected", "hidden", "peak µs")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8s %-8d %-10d %-8d %-10.2f\n",
			row.Arch, row.TrueLayers, row.DetectedCount, row.Hidden, row.PeakDuration)
	}
	fmt.Fprintln(w, "(repetition count tracks layer count; peak kernel time tracks hidden size)")
}

// ----------------------------------------------------------------- Fig 12

// Fig12Result reproduces the irregular-trace (XLA) handling.
type Fig12Result struct {
	Kernels                int
	RegionStart, RegionEnd int
	DetectedLayers         int // after stripping, on the XLA trace
	TrueLayers             int
}

// Fig12 builds an XLA trace, locates its compilation region, strips it,
// and re-runs layer detection on the remaining encoder regions.
func (e *Env) Fig12() *Fig12Result {
	cfg := transformer.Family()["large"]
	prof := gpusim.Profile{Source: "nvidia-tf", Framework: gpusim.TensorFlow, Seed: 121, TensorCores: true, XLA: true}
	t := gpusim.SimulateTransformer(cfg, nil, prof, gpusim.Options{})
	start, end, _ := traceimg.XLARegion(t)
	stripped := traceimg.StripXLA(t)
	return &Fig12Result{
		Kernels:     len(t.Execs),
		RegionStart: start, RegionEnd: end,
		DetectedLayers: traceimg.DetectLayerCount(stripped, 32),
		TrueLayers:     cfg.Layers,
	}
}

// Render implements Renderer.
func (r *Fig12Result) Render(w io.Writer) {
	header(w, "Fig 12", "irregular (XLA) execution pattern handling")
	fmt.Fprintf(w, "trace kernels: %d; detected compilation region: execs [%d, %d)\n",
		r.Kernels, r.RegionStart, r.RegionEnd)
	fmt.Fprintf(w, "layers detected after stripping: %d (true: %d)\n", r.DetectedLayers, r.TrueLayers)
}

// ----------------------------------------------------------------- Fig 14

// Fig14Point is one noise setting's accuracy.
type Fig14Point struct {
	Kernels   int
	Magnitude float64
	Accuracy  float64
}

// Fig14Result is the extraction-accuracy noise study.
type Fig14Result struct {
	CleanAccuracy float64
	CountSweep    []Fig14Point // vary noisy-kernel count at fixed magnitude
	MagSweep      []Fig14Point // vary magnitude at fixed count
	// CentroidClean/CentroidNoisy ablate the CNN against a rigid
	// nearest-centroid matcher (DESIGN.md §5).
	CentroidClean float64
	CentroidNoisy float64
}

// Fig14 trains the classifier on the 80% split and evaluates the noise
// sweeps on the held-out 20%. Noise magnitudes are scaled to this
// substrate's typical kernel duration (~2µs ≈ the paper's 20µs).
func (e *Env) Fig14() *Fig14Result {
	train, test := e.Datasets()
	// Train-time noise augmentation (the attacker keeps noisy
	// measurements) is what gives the CNN its tolerance.
	augmented := &fingerprint.Dataset{
		Classes: train.Classes,
		Samples: append([]fingerprint.Sample(nil), train.Samples...),
	}
	augmented.AugmentNoise(2, 4, 2, 99, e.Workers)
	epochs := 60
	if e.Scale == ScaleFull {
		epochs = 90
	}
	clf := fingerprint.NewClassifier(64, train.Classes, 3)
	clf.Train(augmented, fingerprint.TrainConfig{Epochs: epochs, LR: 0.002, Seed: 4})
	res := &Fig14Result{CleanAccuracy: clf.Accuracy(test)}
	const typMag = 2.0
	for _, n := range []int{1, 2, 4, 8, 16} {
		res.CountSweep = append(res.CountSweep, Fig14Point{
			Kernels: n, Magnitude: typMag,
			Accuracy: clf.NoiseAccuracy(test, n, typMag, 14),
		})
	}
	for _, m := range []float64{0.5, 1, 2, 3, 4.5} {
		res.MagSweep = append(res.MagSweep, Fig14Point{
			Kernels: 4, Magnitude: m,
			Accuracy: clf.NoiseAccuracy(test, 4, m, 15),
		})
	}
	base := fingerprint.NewCentroidBaseline(train, 64)
	res.CentroidClean = base.Accuracy(test)
	noisy := &fingerprint.Dataset{Classes: test.Classes}
	for i, s := range test.Samples {
		tr := s.Trace.Clone()
		tr.PerturbKernels(4, typMag, uint64(140+i))
		noisy.Samples = append(noisy.Samples, fingerprint.Sample{
			Trace: tr, Label: s.Label, FromModel: s.FromModel,
		})
	}
	res.CentroidNoisy = base.Accuracy(noisy)
	return res
}

// Render implements Renderer.
func (r *Fig14Result) Render(w io.Writer) {
	header(w, "Fig 14", "model extraction accuracy under measurement noise")
	fmt.Fprintf(w, "clean accuracy: %.3f (paper: 0.9078)\n", r.CleanAccuracy)
	fmt.Fprintln(w, "noisy-kernel-count sweep (magnitude = 1 typical kernel duration):")
	for _, p := range r.CountSweep {
		fmt.Fprintf(w, "  %2d kernels: %.3f\n", p.Kernels, p.Accuracy)
	}
	fmt.Fprintln(w, "noise-magnitude sweep (4 kernels):")
	for _, p := range r.MagSweep {
		fmt.Fprintf(w, "  ±%.1fµs: %.3f\n", p.Magnitude, p.Accuracy)
	}
	fmt.Fprintf(w, "nearest-centroid ablation: clean %.3f, noisy %.3f\n", r.CentroidClean, r.CentroidNoisy)
}

// ---------------------------------------------------------------- Table 2

// Table2Result wraps the DeepSniffer cross-release study.
type Table2Result struct{ Rows []deepsniffer.Row }

// Table2 runs the DeepSniffer baseline across five release profiles.
func (e *Env) Table2() *Table2Result {
	rows := deepsniffer.Table2(gpusim.ResNet18Arch(), []gpusim.Profile{
		{Source: "deepsniffer-original", Framework: gpusim.PyTorch, Seed: 100},
		{Source: "deepsniffer-pytorch", Framework: gpusim.PyTorch, Seed: 200},
		{Source: "nvidia-pytorch", Framework: gpusim.PyTorch, Seed: 300, TensorCores: true},
		{Source: "google-tensorflow", Framework: gpusim.TensorFlow, Seed: 400},
		{Source: "amazon-mxnet", Framework: gpusim.MXNet, Seed: 500, ShortKernels: true},
	}, 4)
	return &Table2Result{Rows: rows}
}

// Render implements Renderer.
func (r *Table2Result) Render(w io.Writer) {
	header(w, "Table 2", "model fingerprint impact on DeepSniffer-style layer extraction")
	fmt.Fprintf(w, "%-24s %-8s %-10s %-8s\n", "source", "LER", "seq len", "unique")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-24s %-8.3f %-10d %-8d\n", row.Source, row.LER, row.KernelSeqLen, row.UniqueKerns)
	}
	fmt.Fprintln(w, "(paper: 0.091 on the original release, 0.57-6.8 across releases)")
}

// ----------------------------------------------------------------- Fig 21

// Fig21Row is one pruning level's trace statistics.
type Fig21Row struct {
	PrunedHeads  int
	Duration     float64
	AttnKernelUS float64 // mean duration of the short attention kernels
}

// Fig21Result shows head pruning's effect on the trace.
type Fig21Result struct{ Rows []Fig21Row }

// Fig21 prunes increasing numbers of heads and re-measures the trace.
func (e *Env) Fig21() *Fig21Result {
	cfg := transformer.Family()["large"]
	prof := gpusim.Profile{Source: "huggingface", Framework: gpusim.PyTorch, Seed: 211}
	res := &Fig21Result{}
	for _, pruned := range []int{0, 2, 4, 6} {
		active := make([]int, cfg.Layers)
		for l := range active {
			active[l] = cfg.Heads - pruned
		}
		t := gpusim.SimulateTransformer(cfg, active, prof, gpusim.Options{})
		// Short kernels = those below the trace median (the bottom band of
		// the paper's plot).
		durs := t.Durations()
		med := stats.Quantile(durs, 0.5)
		var shortSum float64
		var shortN int
		for _, d := range durs {
			if d <= med {
				shortSum += d
				shortN++
			}
		}
		res.Rows = append(res.Rows, Fig21Row{
			PrunedHeads:  pruned,
			Duration:     t.Duration(),
			AttnKernelUS: shortSum / float64(shortN),
		})
	}
	return res
}

// Render implements Renderer.
func (r *Fig21Result) Render(w io.Writer) {
	header(w, "Fig 21", "impact of head pruning on execution time")
	fmt.Fprintf(w, "%-13s %-14s %-20s\n", "pruned heads", "total µs", "short-kernel mean µs")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-13d %-14.1f %-20.3f\n", row.PrunedHeads, row.Duration, row.AttnKernelUS)
	}
	fmt.Fprintln(w, "(more pruned heads => shorter attention kernels, as in the paper)")
}

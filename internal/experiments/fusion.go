package experiments

import (
	"fmt"
	"io"
	"strings"

	"decepticon/internal/fingerprint"
	"decepticon/internal/gpusim"
	"decepticon/internal/parallel"
	"decepticon/internal/rng"
)

// --------------------------------------------------------------- Fusion
//
// The multi-modal identification study (DESIGN.md §14): the same victim
// inference observed through three level-1 channels — the paper's kernel
// trace, an Energon-style power/thermal trace, and InferNet-style
// aggregate counters — identified per modality and by weighted
// log-linear posterior fusion, swept over measurement-noise magnitude,
// plus jamming rows showing graceful degradation to the surviving
// sensors.

// FusionPoint is one noise magnitude's per-modality and fused accuracy.
type FusionPoint struct {
	Magnitude float64
	// Per-modality held-out accuracy under this noise level.
	TraceAcc, PowerAcc, CounterAcc float64
	// FusedAcc pools the three posteriors with noise-matched calibration
	// weights (fingerprint.FusionWeights over train-split accuracies at
	// the same magnitude).
	FusedAcc float64
	// Weights are the pooling weights used at this point, in
	// trace/power/counters order.
	Weights [3]float64
}

// BestSingle returns the strongest individual modality at this point.
func (p FusionPoint) BestSingle() float64 {
	best := p.TraceAcc
	if p.PowerAcc > best {
		best = p.PowerAcc
	}
	if p.CounterAcc > best {
		best = p.CounterAcc
	}
	return best
}

// FusionJamRow is one jamming scenario: the named sensor returns nothing
// and fusion degrades to the survivors.
type FusionJamRow struct {
	Jammed    string
	Survivors []string
	FusedAcc  float64
}

// FusionResult is the multi-modal identification study.
type FusionResult struct {
	Sweep []FusionPoint
	// JamMagnitude is the noise level of the jamming rows (the sweep's
	// typical-magnitude point).
	JamMagnitude float64
	JamRows      []FusionJamRow
}

// fusionEval is one perturbation draw's per-modality posteriors.
type fusionEval struct {
	trace, power, counter []float64
	label                 int
}

// fusionClassifiers holds the three trained identifiers of the study.
type fusionClassifiers struct {
	cnn      *fingerprint.Classifier
	powerClf *fingerprint.VectorClassifier
	countClf *fingerprint.VectorClassifier
}

// trainFusionClassifiers trains the CNN exactly like Fig14 (noise
// augmentation included) and one dense classifier per derived channel on
// the vectorized augmented split.
func (e *Env) trainFusionClassifiers(train *fingerprint.Dataset) *fusionClassifiers {
	augmented := &fingerprint.Dataset{
		Classes: train.Classes,
		Samples: append([]fingerprint.Sample(nil), train.Samples...),
	}
	augmented.AugmentNoise(2, 4, 2, 99, e.Workers)
	epochs := 60
	if e.Scale == ScaleFull {
		epochs = 90
	}
	e.logf("fusion: training the trace CNN...")
	cnn := fingerprint.NewClassifier(64, train.Classes, 3)
	cnn.Train(augmented, fingerprint.TrainConfig{Epochs: epochs, LR: 0.002, Seed: 4})

	fc := &fusionClassifiers{cnn: cnn}
	for _, m := range []fingerprint.Modality{fingerprint.ModalityPower, fingerprint.ModalityCounters} {
		e.logf("fusion: training the %s classifier...", m)
		vd := fingerprint.VectorizeDataset(augmented, m, 31, e.Workers)
		vc := fingerprint.NewVectorClassifier(m, vd.Dim, vd.Classes, 37)
		vc.Workers = e.Workers
		vc.Obs = e.Obs
		vc.Train(vd, fingerprint.TrainConfig{Epochs: epochs, LR: 0.002, Seed: 41})
		if m == fingerprint.ModalityPower {
			fc.powerClf = vc
		} else {
			fc.countClf = vc
		}
	}
	return fc
}

// fusionPosts measures every sample `draws` times at noise magnitude mag
// and returns the per-draw posteriors of all three modalities. The
// schedule perturbation feeds every channel (the sensors are passive taps
// on one inference); each derived channel additionally carries
// magnitude-scaled sensor noise. Seeds are pure functions of (tag, sample,
// draw, magnitude), so the result is identical for any worker count.
func (e *Env) fusionPosts(fc *fusionClassifiers, tag string, samples []fingerprint.Sample, mag float64, draws int) []fusionEval {
	return parallel.Map(len(samples)*draws, e.Workers, func(k int) fusionEval {
		i, d := k/draws, k%draws
		s := samples[i]
		tr := s.Trace.Clone()
		if mag > 0 {
			tr.PerturbKernels(4, mag,
				rng.Seed("fusion", tag, "perturb", s.FromModel, fmt.Sprint(i), fmt.Sprint(d), fmt.Sprint(mag)))
		}
		pOpt := gpusim.ChannelOptions{
			Seed:  rng.Seed("fusion", tag, "power", s.FromModel, fmt.Sprint(k), fmt.Sprint(mag)),
			Noise: fingerprint.DefaultPowerNoiseW + 0.8*mag,
		}
		cOpt := gpusim.ChannelOptions{
			Seed:  rng.Seed("fusion", tag, "counters", s.FromModel, fmt.Sprint(k), fmt.Sprint(mag)),
			Noise: fingerprint.DefaultCounterNoise + 0.004*mag,
		}
		return fusionEval{
			trace:   fc.cnn.Posterior(tr),
			power:   fc.powerClf.Posterior(fingerprint.FeaturesOf(fingerprint.ModalityPower, tr, pOpt)),
			counter: fc.countClf.Posterior(fingerprint.FeaturesOf(fingerprint.ModalityCounters, tr, cOpt)),
			label:   s.Label,
		}
	})
}

// modalAcc scores one modality's posteriors.
func modalAcc(evals []fusionEval, pick func(fusionEval) []float64) float64 {
	if len(evals) == 0 {
		return 0
	}
	correct := 0
	for _, ev := range evals {
		if fingerprint.ArgMax(pick(ev)) == ev.label {
			correct++
		}
	}
	return float64(correct) / float64(len(evals))
}

// fusedAcc scores the pooled posterior; a true entry in jam drops that
// modality from fusion (its posterior becomes nil, exactly the attack
// path's degradation).
func fusedAcc(evals []fusionEval, weights [3]float64, jam [3]bool) float64 {
	if len(evals) == 0 {
		return 0
	}
	correct := 0
	for _, ev := range evals {
		posts := [][]float64{ev.trace, ev.power, ev.counter}
		for i, j := range jam {
			if j {
				posts[i] = nil
			}
		}
		fused := fingerprint.FusePosteriors(posts, weights[:])
		if fused != nil && fingerprint.ArgMax(fused) == ev.label {
			correct++
		}
	}
	return float64(correct) / float64(len(evals))
}

// Fusion runs the multi-modal identification study: per-modality and
// fused accuracy over a noise-magnitude sweep (weights calibrated on the
// train split at the same magnitude — the attacker tunes fusion to the
// noise level they estimate), plus jamming rows at the typical magnitude.
func (e *Env) Fusion() *FusionResult {
	train, test := e.Datasets()
	fc := e.trainFusionClassifiers(train)

	calib := train.Samples
	if len(calib) > 48 {
		calib = calib[:48]
	}
	const draws = 4
	const typMag = 2.0
	res := &FusionResult{JamMagnitude: typMag}
	var typEvals []fusionEval
	var typWeights [3]float64
	for _, mag := range []float64{0, 1, typMag, 3, 4.5} {
		cal := e.fusionPosts(fc, "cal", calib, mag, 1)
		ws := fingerprint.FusionWeights([]float64{
			modalAcc(cal, func(ev fusionEval) []float64 { return ev.trace }),
			modalAcc(cal, func(ev fusionEval) []float64 { return ev.power }),
			modalAcc(cal, func(ev fusionEval) []float64 { return ev.counter }),
		})
		weights := [3]float64{ws[0], ws[1], ws[2]}
		evals := e.fusionPosts(fc, "test", test.Samples, mag, draws)
		p := FusionPoint{
			Magnitude:  mag,
			TraceAcc:   modalAcc(evals, func(ev fusionEval) []float64 { return ev.trace }),
			PowerAcc:   modalAcc(evals, func(ev fusionEval) []float64 { return ev.power }),
			CounterAcc: modalAcc(evals, func(ev fusionEval) []float64 { return ev.counter }),
			FusedAcc:   fusedAcc(evals, weights, [3]bool{}),
			Weights:    weights,
		}
		res.Sweep = append(res.Sweep, p)
		if mag == typMag {
			typEvals, typWeights = evals, weights
		}
	}

	mods := fingerprint.AllModalities()
	for i, m := range mods {
		var jam [3]bool
		jam[i] = true
		var survivors []string
		for j, s := range mods {
			if !jam[j] {
				survivors = append(survivors, string(s))
			}
		}
		res.JamRows = append(res.JamRows, FusionJamRow{
			Jammed:    string(m),
			Survivors: survivors,
			FusedAcc:  fusedAcc(typEvals, typWeights, jam),
		})
	}
	return res
}

// Render implements Renderer.
func (r *FusionResult) Render(w io.Writer) {
	header(w, "Fusion", "multi-modal identification: per-channel and fused accuracy vs noise")
	fmt.Fprintf(w, "%-8s %-8s %-8s %-10s %-8s %-22s\n",
		"±µs", "trace", "power", "counters", "fused", "weights (t/p/c)")
	for _, p := range r.Sweep {
		fmt.Fprintf(w, "%-8.1f %-8.3f %-8.3f %-10.3f %-8.3f %.2f/%.2f/%.2f\n",
			p.Magnitude, p.TraceAcc, p.PowerAcc, p.CounterAcc, p.FusedAcc,
			p.Weights[0], p.Weights[1], p.Weights[2])
	}
	fmt.Fprintf(w, "jamming at ±%.1fµs (fusion degrades to the survivors):\n", r.JamMagnitude)
	for _, row := range r.JamRows {
		fmt.Fprintf(w, "  %-10s jammed -> %-22s %.3f\n",
			row.Jammed, strings.Join(row.Survivors, "+"), row.FusedAcc)
	}
	fmt.Fprintln(w, "(fused tracks or beats the best single channel; no sensor is a single point of failure)")
}

package experiments

import (
	"fmt"
	"io"
	"sort"
)

// renderFunc runs one experiment and writes its rendering.
type renderFunc func(e *Env, w io.Writer)

type fig19Wrapper struct{ r *Fig19Result }

func (f fig19Wrapper) Render(w io.Writer) { RenderFig19(f.r, w) }

// registry maps experiment ids (table/figure numbers) to runners, in the
// order the paper presents them.
var registry = []struct {
	ID    string
	Title string
	Run   renderFunc
}{
	{"fig3", "weight gap distributions", func(e *Env, w io.Writer) { e.Fig3().Render(w) }},
	{"fig4", "U-shaped update profile", func(e *Env, w io.Writer) { e.Fig4().Render(w) }},
	{"fig5", "nine-task per-layer diffs", func(e *Env, w io.Writer) { e.Fig5().Render(w) }},
	{"fig6", "30-epoch fine-tune dynamics", func(e *Env, w io.Writer) { e.Fig6().Render(w) }},
	{"table1", "layer freezing accuracy", func(e *Env, w io.Writer) { e.Table1().Render(w) }},
	{"fig7", "cross-release fingerprints", func(e *Env, w io.Writer) { e.Fig7().Render(w) }},
	{"fig9", "kernel censuses", func(e *Env, w io.Writer) { e.Fig9().Render(w) }},
	{"fig10", "layer boundary detection", func(e *Env, w io.Writer) { e.Fig10().Render(w) }},
	{"fig12", "XLA irregular traces", func(e *Env, w io.Writer) { e.Fig12().Render(w) }},
	{"table2", "DeepSniffer cross-release LER", func(e *Env, w io.Writer) { e.Table2().Render(w) }},
	{"fig14", "extraction accuracy vs noise", func(e *Env, w io.Writer) { e.Fig14().Render(w) }},
	{"fig15", "clone vs victim", func(e *Env, w io.Writer) { e.Fig15().Render(w) }},
	{"fig16", "extraction efficiency", func(e *Env, w io.Writer) { e.Fig16().Render(w) }},
	{"alg1", "selective extraction bit census", func(e *Env, w io.Writer) { e.Alg1().Render(w) }},
	{"fig17", "partial-data cloning", func(e *Env, w io.Writer) { e.Fig17().Render(w) }},
	{"fig18", "adversarial attack comparison", func(e *Env, w io.Writer) { e.Fig18().Render(w) }},
	{"fig19", "CNN generalization", func(e *Env, w io.Writer) { fig19Wrapper{e.Fig19()}.Render(w) }},
	{"fig20", "head confidence correlation", func(e *Env, w io.Writer) { e.Fig20().Render(w) }},
	{"fig21", "head pruning in traces", func(e *Env, w io.Writer) { e.Fig21().Render(w) }},
	// §8 "Discussions" extensions.
	{"pruning", "head-pruning recovery (§8)", func(e *Env, w io.Writer) { e.Pruning().Render(w) }},
	{"quant", "quantized-format extraction (§8)", func(e *Env, w io.Writer) { e.Quant().Render(w) }},
	{"noise", "bit-read error robustness", func(e *Env, w io.Writer) { e.Noise().Render(w) }},
	{"reliability", "channel reliability sweep (§9)", func(e *Env, w io.Writer) { e.Reliability().Render(w) }},
	{"defense", "kernel randomization countermeasure (§8)", func(e *Env, w io.Writer) { e.Defense().Render(w) }},
	{"fusion", "multi-modal fused identification vs noise", func(e *Env, w io.Writer) { e.Fusion().Render(w) }},
	{"zooscale", "store-backed 10x zoo: memory, hierarchy, incremental build", func(e *Env, w io.Writer) { e.ZooScale().Render(w) }},
}

// IDs returns every experiment id in presentation order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.ID
	}
	return out
}

// Titles returns a sorted "id: title" listing.
func Titles() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = fmt.Sprintf("%-8s %s", r.ID, r.Title)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given id, writing its rendering.
func (e *Env) Run(id string, w io.Writer) error {
	for _, r := range registry {
		if r.ID == id {
			r.Run(e, w)
			return nil
		}
	}
	return fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
}

// RunAll executes every experiment in paper order.
func (e *Env) RunAll(w io.Writer) {
	for _, r := range registry {
		r.Run(e, w)
	}
}

package experiments

import (
	"fmt"
	"io"

	"decepticon/internal/extract"
	"decepticon/internal/sidechannel"
	"decepticon/internal/stats"
)

// ----------------------------------------------------- channel reliability

// ReliabilityPoint is one (fault profile, retry budget) measurement.
type ReliabilityPoint struct {
	Label         string  // fault profile description
	TransientRate float64 // per-read transient probability
	MaxAttempts   int     // retry budget per bit read
	Coverage      float64 // fraction of checked sites actually read
	MatchRate     float64 // clone vs victim predictions
	HammerRounds  int64   // total simulated rowhammer spend
	FaultedReads  int64   // metered failed channel attempts
	Retries       int64   // re-issued reads that eventually landed
	Degraded      int     // tensors abandoned to the baseline
}

// SchedulerPoint is one extraction run of the baseline-vs-scheduled
// comparison: identical victim, channel, and vote width — only the read
// scheduler differs. All counts are deterministic (simulated channel),
// so these rows double as regression-gated benchmark metrics.
type SchedulerPoint struct {
	Label         string // channel description
	Scheduled     bool   // information-ordered scheduler on?
	MatchRate     float64
	PhysicalReads int64   // metered oracle bit reads
	HammerRounds  int64   // PhysicalReads × rounds-per-bit
	MeanVoteWidth float64 // average adaptive majority width (0 = baseline)
	BitsElided    int64   // planned bits skipped by posterior early exit
}

// ReliabilityResult is the §9 channel-reliability sweep: how clone
// fidelity, hammer spend, and graceful degradation trade off as the
// channel gets harsher and the retry budget changes. Scheduler holds the
// baseline-vs-information-ordered comparison rows at the voted operating
// point.
type ReliabilityResult struct {
	Victim    string
	Points    []ReliabilityPoint
	Scheduler []SchedulerPoint
}

// Reliability sweeps transient fault rates against retry budgets on one
// victim, with small stuck-at and outage rates held fixed so every run
// also exercises the permanent-fault degradation path. When the
// environment carries a -faults plan, it is appended as a final custom
// point so operators can place their own channel on the same table.
func (e *Env) Reliability() *ReliabilityResult {
	z := e.Zoo()
	victim := z.FineTuned[0]
	res := &ReliabilityResult{Victim: victim.Name}
	run := func(label string, plan *sidechannel.FaultPlan, attempts int) {
		oracle := sidechannel.NewOracle(victim.Model())
		oracle.SetFaultPlan(plan)
		cfg := extract.DefaultConfig()
		cfg.Retry.MaxAttempts = attempts
		ex := &extract.Extractor{
			Pre:    victim.Pretrained.Model(),
			Oracle: oracle,
			Cfg:    cfg,
		}
		clone, st, err := ex.Run(victim.Task.Labels, victim.Dev)
		if err != nil {
			panic(err) // zoo-built victim with its own oracle cannot mismatch
		}
		match := stats.MatchRate(victim.Model().Predictions(victim.Dev), clone.Predictions(victim.Dev))
		rate := 0.0
		if plan != nil {
			rate = plan.TransientRate
		}
		res.Points = append(res.Points, ReliabilityPoint{
			Label:         label,
			TransientRate: rate,
			MaxAttempts:   attempts,
			Coverage:      st.Coverage(),
			MatchRate:     match,
			HammerRounds:  st.HammerRounds(),
			FaultedReads:  st.ReadFaults,
			Retries:       st.Retries,
			Degraded:      st.TensorsDegraded,
		})
	}
	// Stuck-at and outage rates stay fixed and small: they model
	// permanent damage no retry budget can buy back, so each row's
	// degradation floor is the same and the retry column isolates the
	// transient trade-off.
	profile := func(transient float64) *sidechannel.FaultPlan {
		return &sidechannel.FaultPlan{
			Seed:              9,
			TransientRate:     transient,
			TransientRecovery: 3,
			StuckRate:         0.0002,
			OutageRate:        0.0005,
			OutagePeriod:      2000,
		}
	}
	run("clean channel", nil, 0)
	for _, rate := range []float64{0.01, 0.05, 0.15} {
		for _, attempts := range []int{2, 8} {
			run(fmt.Sprintf("transient %.0f%%", 100*rate), profile(rate), attempts)
		}
	}
	if e.FaultPlan != nil {
		run("custom (-faults)", e.FaultPlan.ForVictim(victim.Name), 0)
	}

	// Baseline vs information-ordered scheduler at the voted operating
	// point (ReadRepeats = 3). On a faulted-but-silent-flip-free channel
	// the adaptive vote discovers there is nothing silent to vote away
	// and collapses toward single reads — the headline hammer-round
	// saving; under silent noise the width stays up, which is the safety
	// half of the same comparison.
	schedRun := func(label string, scheduled bool, plan *sidechannel.FaultPlan, noise float64) {
		oracle := sidechannel.NewOracle(victim.Model())
		oracle.SetFaultPlan(plan)
		if noise > 0 {
			oracle.SetNoise(noise, 0x5ced)
		}
		cfg := extract.DefaultConfig()
		cfg.ReadRepeats = 3
		if scheduled {
			cfg.Schedule = extract.DefaultSchedulerConfig()
		}
		ex := &extract.Extractor{
			Pre:    victim.Pretrained.Model(),
			Oracle: oracle,
			Cfg:    cfg,
		}
		clone, st, err := ex.Run(victim.Task.Labels, victim.Dev)
		if err != nil {
			panic(err) // zoo-built victim with its own oracle cannot mismatch
		}
		res.Scheduler = append(res.Scheduler, SchedulerPoint{
			Label:         label,
			Scheduled:     scheduled,
			MatchRate:     stats.MatchRate(victim.Model().Predictions(victim.Dev), clone.Predictions(victim.Dev)),
			PhysicalReads: st.PhysicalBitReads,
			HammerRounds:  st.HammerRounds(),
			MeanVoteWidth: st.MeanVoteWidth(),
			BitsElided:    st.BitsElided,
		})
	}
	for _, scheduled := range []bool{false, true} {
		schedRun("faulted channel", scheduled, profile(0.02), 0)
	}
	for _, scheduled := range []bool{false, true} {
		schedRun("silent noise 0.5%", scheduled, nil, 0.005)
	}
	return res
}

// SchedulerSavings returns the physical-read ratio baseline/scheduled of
// the labeled comparison pair (0 when the pair is missing).
func (r *ReliabilityResult) SchedulerSavings(label string) float64 {
	var base, sched int64
	for _, p := range r.Scheduler {
		if p.Label != label {
			continue
		}
		if p.Scheduled {
			sched = p.PhysicalReads
		} else {
			base = p.PhysicalReads
		}
	}
	if base == 0 || sched == 0 {
		return 0
	}
	return float64(base) / float64(sched)
}

// Render implements Renderer.
func (r *ReliabilityResult) Render(w io.Writer) {
	header(w, "Reliability", "channel reliability sweep: faults vs retry budget (§9)")
	fmt.Fprintf(w, "victim: %s\n", r.Victim)
	fmt.Fprintf(w, "%-18s %-9s %-10s %-12s %-13s %-9s %-9s\n",
		"channel", "attempts", "coverage", "clone match", "hammer", "faults", "retries")
	for _, p := range r.Points {
		attempts := p.MaxAttempts
		if attempts <= 0 {
			attempts = extract.DefaultRetryPolicy().MaxAttempts
		}
		degraded := ""
		if p.Degraded > 0 {
			degraded = fmt.Sprintf("  (%d tensors degraded)", p.Degraded)
		}
		fmt.Fprintf(w, "%-18s %-9d %-10.3f %-12.3f %-13d %-9d %-9d%s\n",
			p.Label, attempts, p.Coverage, p.MatchRate, p.HammerRounds,
			p.FaultedReads, p.Retries, degraded)
	}
	fmt.Fprintln(w, "(retries buy coverage on a flaky channel at hammer-round cost;")
	fmt.Fprintln(w, " stuck cells and dead regions degrade to the pre-trained baseline instead)")
	if len(r.Scheduler) == 0 {
		return
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "information-ordered scheduler vs index-ordered baseline (ReadRepeats = 3):")
	fmt.Fprintf(w, "%-18s %-11s %-12s %-14s %-14s %-11s %-8s\n",
		"channel", "extractor", "clone match", "phys reads", "hammer", "vote width", "elided")
	for _, p := range r.Scheduler {
		mode, width := "baseline", "3.00 (fixed)"
		if p.Scheduled {
			mode = "scheduled"
			width = fmt.Sprintf("%.2f", p.MeanVoteWidth)
		}
		fmt.Fprintf(w, "%-18s %-11s %-12.3f %-14d %-14d %-11s %-8d\n",
			p.Label, mode, p.MatchRate, p.PhysicalReads, p.HammerRounds, width, p.BitsElided)
	}
	fmt.Fprintf(w, "(faulted-channel saving: %.2fx fewer physical reads at equal clone match;\n",
		r.SchedulerSavings("faulted channel"))
	fmt.Fprintln(w, " under silent noise the adaptive width stays wide — the clamp means the")
	fmt.Fprintln(w, " scheduler can never read more than the baseline, only fewer)")
}

package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"decepticon/internal/core"
	"decepticon/internal/fingerprint"
	"decepticon/internal/zoo"
)

// ------------------------------------------------------------- ZooScale
//
// The scaling study behind the content-addressed zoo store (DESIGN.md
// §16): a 10× population (architecture filter relaxed, every model
// served as a lazy handle from the store) attacked with per-victim
// release, compared against a small-zoo baseline campaign. Three claims
// are measured and pinned by test:
//
//   1. flat memory — the 10× campaign's peak live heap stays within
//      1.5× of the small campaign's, because only the victims in
//      flight are resident;
//   2. hierarchical identification — the family→release identifier
//      matches the flat classifier on the large population (exactly at
//      the cluster level, where identity is actually decidable from
//      traces; profile-ambiguous releases are the Disambiguate stage's
//      job);
//   3. incremental build — growing the already-built store by one
//      victim retrains exactly one model.

// ZooScalePoint is one population scale's campaign measurement.
type ZooScalePoint struct {
	// Pretrained / FineTuned is the population size.
	Pretrained, FineTuned int
	// ColdTrained / WarmReused count models trained at the cold store
	// build and reused at the warm reopen.
	ColdTrained, WarmReused int
	// ColdOpenSeconds / WarmOpenSeconds are the wall times of the two
	// opens (the warm one costs a manifest read, not a training run).
	ColdOpenSeconds, WarmOpenSeconds float64
	// PeakHeap is the maximum live heap (runtime.MemStats.HeapAlloc
	// after GC) observed across the campaign's per-victim reports.
	PeakHeap uint64
	// Loaded counts models still resident when the campaign ended.
	Loaded int
}

// ZooScaleResult is the scaling study.
type ZooScaleResult struct {
	Small, Large ZooScalePoint
	// HeapRatio = Large.PeakHeap / Small.PeakHeap.
	HeapRatio float64
	// Victims is how many victims each campaign attacked (equal on both
	// scales, so the working sets are comparable).
	Victims int

	// Identification accuracy on the large population's held-out split:
	// raw top-1 and cluster-aware (a prediction inside the true
	// release's profile-ambiguity cluster counts — within a cluster the
	// execution fingerprints are identical and the pipeline separates
	// them with query probes downstream).
	FlatAcc, HierAcc               float64
	FlatClusterAcc, HierClusterAcc float64
	Families                       int

	// IncrementalRetrained is how many models a reopen after growing the
	// large population by one victim retrained. The contract: exactly 1.
	IncrementalRetrained int
}

// zooScaleSmallConfig is the baseline population: trace-grade training
// budgets (fingerprints depend on architecture and profile, not weight
// quality), tiny architectures only.
func zooScaleSmallConfig() zoo.BuildConfig {
	cfg := zoo.DefaultBuildConfig()
	cfg.NumPretrained = 3
	cfg.NumFineTuned = 4
	cfg.PretrainExamples = 8
	cfg.PretrainEpochs = 1
	cfg.FineTuneExamples = 10
	cfg.FineTuneEpochs = 1
	cfg.ArchFilter = []string{"tiny"}
	return cfg
}

// zooScaleLargeConfig is the 10× population: the architecture filter
// relaxed to three families and ten times the models, same budgets.
func zooScaleLargeConfig() zoo.BuildConfig {
	cfg := zooScaleSmallConfig()
	cfg.NumPretrained = 10
	cfg.NumFineTuned = 60
	cfg.ArchFilter = []string{"tiny", "mini", "small"}
	return cfg
}

// zooScaleOpen builds or reopens a store and fills the point's open-side
// numbers.
func (e *Env) zooScaleOpen(ctx context.Context, cfg zoo.BuildConfig, dir string, p *ZooScalePoint, warm bool) (*zoo.Zoo, error) {
	start := time.Now()
	z, stats, err := zoo.BuildOrOpenStore(ctx, cfg, dir, "")
	if err != nil {
		return nil, err
	}
	if warm {
		p.WarmReused = stats.Reused
		p.WarmOpenSeconds = time.Since(start).Seconds()
	} else {
		p.ColdTrained = stats.Trained()
		p.ColdOpenSeconds = time.Since(start).Seconds()
	}
	return z, nil
}

// zooScaleCampaign prepares a flat attack over the store-backed zoo and
// runs the first `victims` victims with per-victim release, tracking the
// post-GC peak live heap at every report boundary.
func (e *Env) zooScaleCampaign(ctx context.Context, z *zoo.Zoo, victims int, p *ZooScalePoint) error {
	prep := core.PrepareConfig{
		SamplesPerModel: 2, ImgSize: 32, Epochs: 8,
		Workers: e.Workers, Obs: e.Obs,
	}
	atk, err := core.PrepareContext(ctx, z, prep)
	if err != nil {
		return err
	}
	peak := func() {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > p.PeakHeap {
			p.PeakHeap = ms.HeapAlloc
		}
	}
	// Victims run strictly serially (RunContext, not RunAll): each
	// boundary sample then sees only the released steady state, never a
	// pipelined neighbor's in-flight working set. The pinned quantity is
	// this boundary peak — what laziness + release actually bound; the
	// transient mid-victim working set is a per-victim property, not a
	// population one.
	peak()
	for _, f := range z.FineTuned[:victims] {
		if _, err := atk.RunContext(ctx, f, core.RunOptions{
			MeasureSeed:   1,
			ReleaseModels: true,
		}); err != nil {
			return err
		}
		peak()
	}
	for _, q := range z.Pretrained {
		if q.Loaded() {
			p.Loaded++
		}
	}
	for _, f := range z.FineTuned {
		if f.Loaded() {
			p.Loaded++
		}
	}
	return nil
}

// zooScaleIdentify trains the flat and hierarchical identifiers on the
// large population's trace dataset and scores both, raw and
// cluster-aware.
func (e *Env) zooScaleIdentify(ctx context.Context, z *zoo.Zoo, r *ZooScaleResult) error {
	d := fingerprint.BuildDataset(z, 3, 1, e.Workers)
	train, test := d.Split(0.8, 2)
	tc := fingerprint.TrainConfig{Epochs: 30, LR: 0.002, Seed: 4}

	e.logf("zooscale: training the flat classifier (%d classes)...", len(d.Classes))
	flat := fingerprint.NewClassifier(32, d.Classes, 3)
	flat.Workers = e.Workers
	flat.TrainContext(ctx, train, tc)

	e.logf("zooscale: training the hierarchical identifier...")
	hier, err := fingerprint.TrainHierarchical(ctx, z, train, 32, tc, e.Workers, e.Obs)
	if err != nil {
		return err
	}
	r.Families = len(hier.Family.Classes)

	cluster := func(name string) map[string]bool {
		set := map[string]bool{}
		for _, q := range z.AmbiguousWith(z.PretrainedByName(name)) {
			set[q.Name] = true
		}
		return set
	}
	var flatHits, hierHits, flatCl, hierCl int
	for _, s := range test.Samples {
		truth := test.Classes[s.Label]
		in := cluster(truth)
		if p := flat.Predict(s.Trace); p == truth {
			flatHits++
			flatCl++
		} else if in[p] {
			flatCl++
		}
		if p := hier.Predict(s.Trace); p == truth {
			hierHits++
			hierCl++
		} else if in[p] {
			hierCl++
		}
	}
	n := float64(len(test.Samples))
	r.FlatAcc, r.HierAcc = float64(flatHits)/n, float64(hierHits)/n
	r.FlatClusterAcc, r.HierClusterAcc = float64(flatCl)/n, float64(hierCl)/n
	return nil
}

// ZooScale runs the scaling study. Store directories are temporary; the
// experiment is self-contained.
func (e *Env) ZooScale() *ZooScaleResult {
	res, err := e.zooScale()
	if err != nil {
		// Like Env.Attack, configs here are the package's own presets; a
		// failure is a programmer error, not recoverable user input.
		panic(err)
	}
	return res
}

func (e *Env) zooScale() (*ZooScaleResult, error) {
	ctx := e.ctx()
	root, err := os.MkdirTemp("", "zooscale-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	res := &ZooScaleResult{Victims: 4}
	smallCfg, largeCfg := zooScaleSmallConfig(), zooScaleLargeConfig()
	smallCfg.Workers, largeCfg.Workers = e.Workers, e.Workers
	smallCfg.Obs, largeCfg.Obs = e.Obs, e.Obs
	res.Small.Pretrained, res.Small.FineTuned = smallCfg.NumPretrained, smallCfg.NumFineTuned
	res.Large.Pretrained, res.Large.FineTuned = largeCfg.NumPretrained, largeCfg.NumFineTuned

	// Small baseline: cold build, warm reopen, campaign.
	e.logf("zooscale: building the small store (%d models)...",
		smallCfg.NumPretrained+smallCfg.NumFineTuned)
	smallDir := root + "/small"
	if _, err := e.zooScaleOpen(ctx, smallCfg, smallDir, &res.Small, false); err != nil {
		return nil, err
	}
	zs, err := e.zooScaleOpen(ctx, smallCfg, smallDir, &res.Small, true)
	if err != nil {
		return nil, err
	}
	if err := e.zooScaleCampaign(ctx, zs, res.Victims, &res.Small); err != nil {
		return nil, err
	}

	// Large population: same protocol at 10×.
	e.logf("zooscale: building the 10x store (%d models)...",
		largeCfg.NumPretrained+largeCfg.NumFineTuned)
	largeDir := root + "/large"
	if _, err := e.zooScaleOpen(ctx, largeCfg, largeDir, &res.Large, false); err != nil {
		return nil, err
	}
	zl, err := e.zooScaleOpen(ctx, largeCfg, largeDir, &res.Large, true)
	if err != nil {
		return nil, err
	}
	if err := e.zooScaleCampaign(ctx, zl, res.Victims, &res.Large); err != nil {
		return nil, err
	}
	if res.Small.PeakHeap > 0 {
		res.HeapRatio = float64(res.Large.PeakHeap) / float64(res.Small.PeakHeap)
	}

	if err := e.zooScaleIdentify(ctx, zl, res); err != nil {
		return nil, err
	}

	// Incremental growth: one more victim on the already-built store.
	grown := largeCfg
	grown.NumFineTuned = largeCfg.NumFineTuned + 1
	_, stats, err := zoo.BuildOrOpenStore(ctx, grown, largeDir, "")
	if err != nil {
		return nil, err
	}
	res.IncrementalRetrained = stats.Trained()
	return res, nil
}

// Render implements Renderer.
func (r *ZooScaleResult) Render(w io.Writer) {
	header(w, "ZooScale", "content-addressed store at 10x population: memory, identification, incremental build")
	fmt.Fprintf(w, "%-8s %-10s %-12s %-12s %-12s %-12s %-10s %-8s\n",
		"scale", "models", "cold-train", "cold-open-s", "warm-open-s", "peak-heap", "reused", "loaded")
	for _, row := range []struct {
		name string
		p    ZooScalePoint
	}{{"small", r.Small}, {"10x", r.Large}} {
		fmt.Fprintf(w, "%-8s %-10s %-12d %-12.2f %-12.3f %-12s %-10d %-8d\n",
			row.name, fmt.Sprintf("%d+%d", row.p.Pretrained, row.p.FineTuned),
			row.p.ColdTrained, row.p.ColdOpenSeconds, row.p.WarmOpenSeconds,
			fmt.Sprintf("%.1fMB", float64(row.p.PeakHeap)/(1<<20)), row.p.WarmReused, row.p.Loaded)
	}
	fmt.Fprintf(w, "campaign peak-heap ratio (10x / small, %d victims each): %.2f (contract: <= 1.5)\n",
		r.Victims, r.HeapRatio)
	fmt.Fprintf(w, "identification on the 10x population (%d families): flat %.3f, hierarchical %.3f (raw); %.3f vs %.3f cluster-aware\n",
		r.Families, r.FlatAcc, r.HierAcc, r.FlatClusterAcc, r.HierClusterAcc)
	fmt.Fprintf(w, "incremental rebuild after one added victim retrained %d model(s) (contract: exactly 1)\n",
		r.IncrementalRetrained)
}

package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestZooScale pins the scaling study's three acceptance contracts:
//
//  1. the 10× (filter-relaxed) campaign's boundary peak heap stays
//     within 1.5× of the small campaign's — laziness + per-victim
//     release keep memory flat as the population grows;
//  2. hierarchical identification matches the flat classifier on the
//     large population — exactly at the cluster level (where trace
//     identity is decidable) and within a small tolerance raw;
//  3. an incremental rebuild after a single catalog growth retrains
//     exactly one model.
func TestZooScale(t *testing.T) {
	e := NewEnv(ScaleSmall)
	e.Workers = 4
	r := e.ZooScale()

	if r.Small.ColdTrained != r.Small.Pretrained+r.Small.FineTuned {
		t.Fatalf("small cold build trained %d, want %d",
			r.Small.ColdTrained, r.Small.Pretrained+r.Small.FineTuned)
	}
	if r.Large.WarmReused != r.Large.Pretrained+r.Large.FineTuned {
		t.Fatalf("large warm open reused %d, want %d",
			r.Large.WarmReused, r.Large.Pretrained+r.Large.FineTuned)
	}
	if total := r.Large.Pretrained + r.Large.FineTuned; total != 10*(r.Small.Pretrained+r.Small.FineTuned) {
		t.Fatalf("large population %d is not 10x the small %d",
			total, r.Small.Pretrained+r.Small.FineTuned)
	}

	if r.HeapRatio <= 0 || r.HeapRatio > 1.5 {
		t.Fatalf("10x campaign peak heap ratio %.2f exceeds 1.5 (small %dB, large %dB)",
			r.HeapRatio, r.Small.PeakHeap, r.Large.PeakHeap)
	}
	if r.Small.Loaded != 0 || r.Large.Loaded != 0 {
		t.Fatalf("models still resident after release-model campaigns: small %d, large %d",
			r.Small.Loaded, r.Large.Loaded)
	}

	if r.HierClusterAcc < r.FlatClusterAcc {
		t.Fatalf("hierarchical cluster-aware accuracy %.3f below flat %.3f",
			r.HierClusterAcc, r.FlatClusterAcc)
	}
	if r.HierAcc < r.FlatAcc-0.05 {
		t.Fatalf("hierarchical raw accuracy %.3f more than 0.05 below flat %.3f",
			r.HierAcc, r.FlatAcc)
	}
	if r.Families < 2 {
		t.Fatalf("large population spans %d families, want >= 2", r.Families)
	}

	if r.IncrementalRetrained != 1 {
		t.Fatalf("incremental rebuild retrained %d models, want exactly 1", r.IncrementalRetrained)
	}

	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "incremental rebuild") {
		t.Fatal("render missing the incremental-rebuild line")
	}
}

// Extraction checkpoints. A multi-hour rowhammer campaign that dies at
// 90% must not restart from zero: the checkpoint captures everything a
// resumed run needs to continue as if never interrupted — the tensors
// already extracted, the Stats accounting, and the channel position
// (meters, simulated clock, noise-stream state). Granularity is one
// tensor: Run saves after every completed tensor, so at most one
// tensor's reads are in flight and none are ever re-paid.
//
// The format is gob (the same stdlib-only serialization the zoo cache
// uses), written atomically: encode to a temp file in the target
// directory, then rename over the destination, so a kill mid-write
// leaves the previous checkpoint intact.
package extract

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"decepticon/internal/fsatomic"
	"decepticon/internal/sidechannel"
)

// checkpointVersion guards the on-disk layout. Version 2 added the
// information-ordered scheduler's estimator state (Sched): a v1 snapshot
// predates the scheduler and cannot guarantee a byte-identical resume
// under it, so version skew fails loudly instead of degrading silently.
const checkpointVersion = 2

// checkpointTensor is one completed tensor's extracted data.
type checkpointTensor struct {
	Name string
	Data []float32
}

// Checkpoint is the serializable state of a partially-run extraction.
type Checkpoint struct {
	Version int
	// Complete marks a finished extraction: resuming one returns the
	// stored result without touching the channel.
	Complete bool
	// PreloopDone records that the pre-loop stop check already ran (and
	// did not stop), so a resumed run neither repeats nor skips it.
	PreloopDone bool
	// LayersDone counts fully processed entries of the layer schedule;
	// Tensors may additionally hold completed tensors of the next,
	// partially-done layer.
	LayersDone int
	Tensors    []checkpointTensor
	Stats      Stats
	Channel    sidechannel.ChannelState
	// Sched is the adaptive-vote estimator position (zero when the
	// scheduler is off). The scheduler's read widths are a pure function
	// of this state, so restoring it keeps a resumed run's oracle access
	// sequence byte-identical to an uninterrupted one.
	Sched SchedulerState
	// Compatibility guards: a resume against a different victim shape or
	// configuration is attacker/operator error and must fail loudly.
	NumLabels   int
	LayersTotal int
}

// writeCheckpoint atomically persists ck at path (fsatomic temp-file +
// rename, the same discipline as the zoo cache and the service store).
func writeCheckpoint(path string, ck *Checkpoint) error {
	err := fsatomic.Write(path, func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(ck)
	})
	if err != nil {
		return fmt.Errorf("extract: checkpoint: %w", err)
	}
	return nil
}

// readCheckpoint loads a checkpoint from path.
func readCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ck := &Checkpoint{}
	if err := gob.NewDecoder(f).Decode(ck); err != nil {
		return nil, fmt.Errorf("extract: checkpoint decode %s: %w", path, err)
	}
	return ck, nil
}

// loadCheckpoint restores the extractor's checkpoint when Resume is set:
// nil (no error) when resuming is off or no file exists yet, an error
// when the file is unreadable or was written for a different extraction
// shape. cloneParams maps tensor names to the clone's buffers, used to
// validate every stored tensor before any of them is applied.
func (e *Extractor) loadCheckpoint(cloneParams map[string][]float32, numLabels int) (*Checkpoint, error) {
	if e.CheckpointPath == "" || !e.Resume {
		return nil, nil
	}
	ck, err := readCheckpoint(e.CheckpointPath)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("extract: checkpoint %s: version %d, want %d", e.CheckpointPath, ck.Version, checkpointVersion)
	}
	if ck.NumLabels != numLabels || ck.LayersTotal != e.Pre.Layers {
		return nil, fmt.Errorf(
			"extract: checkpoint %s was written for a different victim shape (%d labels / %d layers, want %d / %d)",
			e.CheckpointPath, ck.NumLabels, ck.LayersTotal, numLabels, e.Pre.Layers)
	}
	for _, t := range ck.Tensors {
		dst, ok := cloneParams[t.Name]
		if !ok {
			return nil, fmt.Errorf("extract: checkpoint %s holds unknown tensor %q", e.CheckpointPath, t.Name)
		}
		if len(dst) != len(t.Data) {
			return nil, fmt.Errorf("extract: checkpoint %s tensor %q has %d weights, clone expects %d",
				e.CheckpointPath, t.Name, len(t.Data), len(dst))
		}
	}
	return ck, nil
}

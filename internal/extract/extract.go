// Package extract implements Decepticon's selective weight extraction
// (paper §6.1, Algorithm 1). Given the identified pre-trained model as a
// baseline and a rowhammer bit-read oracle over the black-box victim, it
// reconstructs the victim's weights while reading only the few fraction
// bits that fine-tuning can plausibly have changed:
//
//  1. weights whose pre-trained magnitude is below a threshold are copied
//     from the baseline unread ("discarding all weight values below 0.001
//     changes F1 by less than 0.01");
//  2. for the rest, only the fraction bits whose value covers the expected
//     fine-tuning gap (estimated from the pre-trained weight value, U-shape
//     aware) are read — at most two per weight;
//  3. the task-specific last layer has no pre-trained baseline and is read
//     in full;
//  4. encoder layers are extracted from the last layer backward, stopping
//     as soon as the clone's predictions match the victim (Table 1: early
//     layers can keep pre-trained weights). The stop condition is checked
//     before any backbone extraction too — when fine-tuning barely moved
//     the backbone, the recovered head alone completes the clone.
package extract

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"

	"decepticon/internal/ieee754"
	"decepticon/internal/obs"
	"decepticon/internal/sidechannel"
	"decepticon/internal/transformer"
)

// Config tunes the selective extraction.
type Config struct {
	// SkipThreshold is Algorithm 1's step-1 magnitude cutoff (paper: 0.001).
	SkipThreshold float64
	// MaxBitsPerWeight caps the fraction bits read per weight (paper: 2).
	MaxBitsPerWeight int
	// GapBase and GapSlope estimate the expected fine-tuning weight gap
	// from the pre-trained magnitude: dist = GapBase + GapSlope·|w|.
	// The slope encodes the U-shape of Fig 4 (larger weights move more).
	GapBase  float64
	GapSlope float64
	// SubtleValue is §6.1.1's negligible-impact cutoff ("the remaining 18
	// bits ... make very subtle differences (less than 0.001)"): an unread
	// bit counts as correctly excluded when it matches the victim or its
	// place value is below this.
	SubtleValue float64
	// StopMatchRate ends the layer-by-layer schedule once the clone agrees
	// with the victim on at least this fraction of validation queries.
	StopMatchRate float64
	// ReadRepeats reads each bit this many times and majority-votes —
	// the standard mitigation for an unreliable rowhammer channel. 0 or 1
	// means single reads. Even values are rounded up to the next odd.
	ReadRepeats int
	// FirstLayersFirst reverses the extraction schedule (ablation only):
	// the paper extracts later layers first because early layers can keep
	// the pre-trained weights (Table 1), so the early-stop check fires
	// sooner in last-first order.
	FirstLayersFirst bool
	// Retry governs how reads behave on a faulted channel (see
	// RetryPolicy). Zero-valued fields take DefaultRetryPolicy values, so
	// a zero Retry is the sensible default, not "never retry".
	Retry RetryPolicy
	// Schedule enables the information-ordered bit-read scheduler
	// (scheduler.go): per-tensor reads ordered by expected information,
	// vote width adapted to the observed channel instead of the global
	// ReadRepeats, and posterior early exit. The zero value keeps the
	// index-ordered path byte-identical.
	Schedule SchedulerConfig
}

// RetryPolicy is the deterministic reaction to channel faults
// (sidechannel.ReadFault). All time is simulated: backoff advances the
// channel's round clock instead of sleeping, so retries are reproducible
// and worker-count invariant.
type RetryPolicy struct {
	// MaxAttempts bounds the attempts per bit read (first try included).
	// A bit still faulting after MaxAttempts is treated as a suspected
	// stuck cell and escalated.
	MaxAttempts int
	// BackoffBase is the simulated rounds waited after the first failed
	// attempt; each further failure doubles it up to BackoffMax
	// (bounded exponential backoff). Waiting advances the channel clock,
	// which is what ends an outage epoch.
	BackoffBase int64
	BackoffMax  int64
	// TensorRetryBudget caps the total retries spent inside one tensor.
	// When the budget runs out the remainder of the tensor degrades to
	// the pre-trained baseline (graceful degradation) instead of
	// grinding a dead region forever.
	TensorRetryBudget int
	// EscalateRepeats is the vote width of the last-ditch read burst on
	// a suspected stuck bit: up to 2×EscalateRepeats raw attempts
	// collecting EscalateRepeats successful reads. If none succeed, the
	// bit is degraded to the baseline bit.
	EscalateRepeats int
}

// DefaultRetryPolicy returns the operating point used by every
// experiment: generous enough to ride out transient runs and bounded
// outages, bounded enough that a dead region degrades quickly.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:       8,
		BackoffBase:       32,
		BackoffMax:        4096,
		TensorRetryBudget: 4096,
		EscalateRepeats:   5,
	}
}

// withDefaults fills zero fields from DefaultRetryPolicy, field by
// field, so callers can override just one knob.
func (p RetryPolicy) withDefaults() RetryPolicy {
	def := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = def.MaxAttempts
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = def.BackoffBase
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = def.BackoffMax
	}
	if p.TensorRetryBudget <= 0 {
		p.TensorRetryBudget = def.TensorRetryBudget
	}
	if p.EscalateRepeats <= 0 {
		p.EscalateRepeats = def.EscalateRepeats
	}
	return p
}

// DefaultConfig returns the paper's operating point.
func DefaultConfig() Config {
	return Config{
		SkipThreshold:    0.001,
		MaxBitsPerWeight: 2,
		GapBase:          0.003,
		GapSlope:         0.05,
		SubtleValue:      0.001,
		StopMatchRate:    0.98,
	}
}

// gap returns the expected fine-tuning weight-value gap for a pre-trained
// weight.
func (c Config) gap(base float32) float64 {
	return c.GapBase + c.GapSlope*math.Abs(float64(base))
}

// EffectiveReadRepeats returns the majority-vote width actually used per
// bit: 1 for ReadRepeats < 2, otherwise ReadRepeats rounded up to the
// next odd value (a tie-free vote needs an odd width). Cost reporting
// must use this, not the configured value — an even config silently pays
// one extra read per bit.
func (c Config) EffectiveReadRepeats() int {
	if c.ReadRepeats < 2 {
		return 1
	}
	if c.ReadRepeats%2 == 0 {
		return c.ReadRepeats + 1
	}
	return c.ReadRepeats
}

// voted wraps a raw bit reader with the majority-vote policy.
func (c Config) voted(read func(bit int) int) func(bit int) int {
	repeats := c.EffectiveReadRepeats()
	if repeats < 2 {
		return read
	}
	return func(bit int) int {
		ones := 0
		for i := 0; i < repeats; i++ {
			ones += read(bit)
		}
		if 2*ones > repeats {
			return 1
		}
		return 0
	}
}

// BitReader reads one raw bit (0 = LSB) of the weight under extraction.
// Unlike the infallible func(bit int) int shape, it can represent
// channel failure: implementations return sidechannel faults (or the
// sentinel errors of the retry stack) so Algorithm 1 can degrade
// gracefully instead of cloning garbage.
type BitReader func(bit int) (int, error)

// Sentinel errors of the fault-tolerant read stack.
var (
	// ErrInterrupted is returned by Run when the ReadBudget is exhausted
	// or the run's context is cancelled (RunContext) — the two interrupt
	// doors behave identically. The extraction state at that point is
	// saved to CheckpointPath (when set); a later Run with Resume
	// continues without re-paying any hammer rounds.
	ErrInterrupted = errors.New("extract: read budget exhausted, extraction interrupted")
	// errBitUnreadable marks a bit whose retries and escalation are spent:
	// the caller degrades the bit to the pre-trained baseline.
	errBitUnreadable = errors.New("extract: bit unreadable (suspected stuck cell)")
	// errTensorBudget marks a tensor whose retry budget is spent: the
	// caller degrades the rest of the tensor to the baseline.
	errTensorBudget = errors.New("extract: tensor retry budget exhausted")
)

// isBitDegrade reports whether err dooms only the current bit (stuck
// cell, or retries + escalation exhausted): the bit falls back to the
// baseline and extraction of the weight continues.
func isBitDegrade(err error) bool {
	if errors.Is(err, errBitUnreadable) {
		return true
	}
	var f *sidechannel.ReadFault
	return errors.As(err, &f) && !f.Retryable && f.Kind == sidechannel.FaultStuck
}

// isTensorDegrade reports whether err dooms the rest of the tensor: a
// spent retry budget, or a permanent region outage. The remainder of the
// tensor degrades to the baseline.
func isTensorDegrade(err error) bool {
	if errors.Is(err, errTensorBudget) {
		return true
	}
	var f *sidechannel.ReadFault
	return errors.As(err, &f) && !f.Retryable && f.Kind == sidechannel.FaultOutage
}

// ExtractWeight runs Algorithm 1 for a single weight: base is the
// pre-trained value, read returns the victim's raw bit (0 = LSB). It
// returns the clone value and which fraction bits (MSB-first indices) were
// read. Majority voting (ReadRepeats) is applied here; the error-aware
// path is ExtractWeightErr.
func (c Config) ExtractWeight(base float32, read func(bit int) int) (float32, []int) {
	v := c.voted(read)
	clone, checked, _, _ := c.ExtractWeightErr(base, func(bit int) (int, error) {
		return v(bit), nil
	})
	return clone, checked
}

// ExtractWeightErr is the error-aware Algorithm 1 for a single weight.
// read must already implement the caller's vote/retry policy (Run wires
// the full retry → escalate → vote stack). Besides the clone value and
// the checked bits it returns the fraction-bit indices that degraded to
// the baseline because their cell was unreadable. A non-nil error means
// the weight could not be handled at all (tensor-level failure or a
// non-fault error); bit-level failures never surface as errors.
//
// Non-finite baselines (NaN/±Inf corruption in the identified model) are
// copied and reported unread: gap() on a non-finite value defeats every
// place-value comparison, and reading bits against it would burn hammer
// rounds cloning garbage.
func (c Config) ExtractWeightErr(base float32, read BitReader) (clone float32, checked, degraded []int, err error) {
	if math.IsNaN(float64(base)) || math.IsInf(float64(base), 0) {
		return base, nil, nil, nil
	}
	absBase := base
	if absBase < 0 {
		absBase = -absBase
	}
	// Step 1: near-zero pre-trained weights are copied unread.
	if float64(absBase) < c.SkipThreshold {
		return base, nil, nil, nil
	}
	dist := c.gap(base)

	// Step 2: read the most significant fraction bits whose place value is
	// within the estimated gap — exactly the bits of Fig 13's example
	// (2^-10 and 2^-11 for a gap of ~0.002 at exponent -6). Bits coarser
	// than the gap cannot have flipped during fine-tuning; bits finer than
	// the checked pair "make very subtle differences (less than 0.001)".
	// (Algorithm 1 as printed brackets the same bits via the
	// int_base+fr_base ∈ [min,max] test, but that test only works for
	// weights in the lower half of their binade; the place-value bracket
	// is the example's intent and covers every weight.)
	clone = base
	for k := 1; k <= ieee754.FractionBits && len(checked)+len(degraded) < c.MaxBitsPerWeight; k++ {
		if ieee754.FractionBitValue(absBase, k) > dist {
			continue
		}
		// Raw bit index of fraction bit k (MSB-first).
		raw := ieee754.FractionBits - k
		bit, rerr := read(raw)
		if rerr != nil {
			if isBitDegrade(rerr) {
				// The cell is gone; keep the baseline bit and move on.
				degraded = append(degraded, k)
				continue
			}
			return base, nil, nil, rerr
		}
		clone = ieee754.SetFractionBit(clone, k, bit)
		checked = append(checked, k)
	}
	return clone, checked, degraded, nil
}

// Stats accumulates the efficiency and correctness accounting of Fig 16
// and §7.4.
//
// Bit accounting distinguishes two views that coincide only when
// ReadRepeats ≤ 1:
//
//   - logical reads (BitsChecked, HeadBitsRead) count distinct (weight,
//     bit) positions Algorithm 1 decided to recover — the algorithmic
//     selectivity the paper's reduction factors describe;
//   - physical reads (PhysicalBitReads) count every metered oracle
//     access, including majority-vote repeats — the quantity rowhammer
//     rounds are actually paid for.
//
// All bit counters are int64: at 2048 hammer rounds per bit, realistic
// model sizes with ReadRepeats overflow 32-bit arithmetic.
type Stats struct {
	// Population (selective layers only; the fully-read last layer is
	// reported separately).
	WeightsTotal int
	BitsTotal    int64 // 32 × WeightsTotal

	// Reduction.
	WeightsSkipped int   // step-1 copies, zero bits read
	BitsChecked    int64 // logical: distinct fraction-bit positions read

	// Correctness ("correctly pruned/excluded" per DESIGN.md §4).
	WeightsSkippedCorrect int   // skipped and true gap below SkipThreshold
	BitsExcludedCorrect   int64 // unread and identical in victim and baseline
	WeightsExact          int   // clone bit-identical to victim
	WeightsWithinGap      int   // |clone - victim| ≤ expected gap
	SignFlips             int   // victim changed sign vs baseline (missed by design)

	// Last layer (full extraction).
	HeadWeights  int
	HeadBitsRead int64 // logical: 32 distinct bit positions per head weight

	// PhysicalBitReads is the oracle's meter delta over this run: every
	// bit access the channel charged for, selective and head, including
	// ReadRepeats majority-vote repeats. This — never the logical counts —
	// is what rowhammer cost scales with.
	PhysicalBitReads int64

	// Schedule.
	LayersExtracted int // encoder layers actually processed
	LayersTotal     int
	QueriesUsed     int // victim queries spent on the stop condition

	// CloneForwards counts clone forward passes spent on the stop
	// condition (mirrored into extract.clone_forwards at publish time, so
	// a resumed run restores rather than re-pays them).
	CloneForwards int64

	// EffectiveReadRepeats is the majority-vote width actually used per
	// bit (Config.EffectiveReadRepeats): even configured values round up
	// to the next odd, and every physical-cost reconciliation must use
	// this, not Config.ReadRepeats.
	EffectiveReadRepeats int

	// Channel-reliability accounting — all zero on a fault-free channel.
	ReadFaults    int64 // oracle attempts that failed with a ReadFault
	Retries       int64 // re-attempts after retryable faults
	BackoffRounds int64 // simulated rounds spent waiting between retries
	Escalations   int64 // last-ditch read bursts on suspected stuck bits

	// Graceful degradation: positions that fell back to the pre-trained
	// baseline because their cells were unreadable.
	BitsDegraded     int64    // bit positions degraded inside extracted weights
	WeightsDegraded  int      // weights with ≥1 degraded bit, or inside a degraded tensor tail
	WeightsNonFinite int      // non-finite baselines copied-and-flagged, never read
	TensorsDegraded  int      // tensors whose tail fell back to the baseline
	DegradedTensors  []string // their names, in extraction order

	// Scheduler accounting — all zero unless Config.Schedule is enabled.
	BitsElided       int64 // planned bits left unread by posterior early exit
	TensorsConverged int   // tensors that early-exited on a converged posterior
	ProbeReads       int64 // single-read bits widened to keep the flip estimate live
	VoteWidthSum     int64 // sum of chosen vote widths over scheduled reads
	VoteWidthN       int64 // scheduled reads the widths were chosen for

	// ModelWeights is the victim's full scalar weight count (including the
	// head and any layers the early stop skipped) — the denominator for
	// whole-model cost comparisons.
	ModelWeights int
}

// MeanVoteWidth returns the average majority-vote width the scheduler
// actually used (0 when the scheduler was off). The gap between this and
// EffectiveReadRepeats is where the adaptive voting saves hammer rounds.
func (s *Stats) MeanVoteWidth() float64 {
	if s.VoteWidthN == 0 {
		return 0
	}
	return float64(s.VoteWidthSum) / float64(s.VoteWidthN)
}

// Coverage returns the fraction of handled weights that were actually
// extracted through the channel rather than degraded to the baseline —
// 1.0 on a healthy channel. Denominator: every weight the schedule
// handled (selective + head).
func (s *Stats) Coverage() float64 {
	total := s.WeightsTotal + s.HeadWeights
	if total == 0 {
		return 0
	}
	return 1 - float64(s.WeightsDegraded)/float64(total)
}

// SkipRate returns the fraction of selective-layer weights copied unread.
func (s *Stats) SkipRate() float64 {
	if s.WeightsTotal == 0 {
		return 0
	}
	return float64(s.WeightsSkipped) / float64(s.WeightsTotal)
}

// WeightsCorrectlyPruned is Fig 16's "Weights" bar: the fraction of
// weights handled without reading all bits and without error (skipped
// correctly, or within the expected gap after ≤MaxBits reads).
func (s *Stats) WeightsCorrectlyPruned() float64 {
	if s.WeightsTotal == 0 {
		return 0
	}
	return float64(s.WeightsSkippedCorrect+s.WeightsWithinGap) / float64(s.WeightsTotal)
}

// BitsCorrectlyExcluded is Fig 16's "Bits" bar: the fraction of all bits
// that were not read and match the victim anyway.
func (s *Stats) BitsCorrectlyExcluded() float64 {
	if s.BitsTotal == 0 {
		return 0
	}
	return float64(s.BitsExcludedCorrect) / float64(s.BitsTotal)
}

// LogicalBitsRead returns the distinct bit positions recovered
// (selective + head), independent of ReadRepeats.
func (s *Stats) LogicalBitsRead() int64 { return s.BitsChecked + s.HeadBitsRead }

// HammerRounds returns the simulated rowhammer rounds this extraction
// paid for. It is driven by *physical* reads — with ReadRepeats = r the
// cost is r× the logical bit count — and reconciles exactly with the
// oracle's own Oracle.HammerRounds() meter over the same run.
func (s *Stats) HammerRounds() int64 {
	return s.PhysicalBitReads * sidechannel.HammerRoundsPerBit
}

// OracleAttempts returns every metered channel access this extraction
// paid for — successful physical reads plus faulted attempts. This is
// the quantity ReadBudget bounds and the unit the campaign service
// charges against a tenant's budget.
func (s *Stats) OracleAttempts() int64 {
	return s.PhysicalBitReads + s.ReadFaults
}

// BitsReadFraction returns *logical* read bits / the victim's total bit
// count: the algorithmic selectivity of Algorithm 1, unaffected by
// majority-vote repeats.
func (s *Stats) BitsReadFraction() float64 {
	if s.ModelWeights == 0 {
		return 0
	}
	return float64(s.LogicalBitsRead()) / float64(32*s.ModelWeights)
}

// PhysicalReadFraction returns *physical* oracle reads / the victim's
// total bit count — ×ReadRepeats larger than BitsReadFraction under
// majority voting. Full-readout baselines pay the same repeat factor, so
// the paper-facing reduction ratios use the logical view; this is the
// number to quote when the question is absolute rowhammer cost.
func (s *Stats) PhysicalReadFraction() float64 {
	if s.ModelWeights == 0 {
		return 0
	}
	return float64(s.PhysicalBitReads) / float64(32*s.ModelWeights)
}

// ReductionFactor is how many times fewer bits the selective extraction
// reads than DeepSteal-style full extraction of every bit of the model.
// Logical/logical: both sides of the ratio count distinct bit positions,
// so the factor is invariant under ReadRepeats (a full readout would
// repeat its reads too).
func (s *Stats) ReductionFactor() float64 {
	read := s.LogicalBitsRead()
	if read == 0 {
		return 0
	}
	return float64(32*s.ModelWeights) / float64(read)
}

// Extractor drives the full model extraction.
type Extractor struct {
	Pre    *transformer.Model
	Oracle *sidechannel.Oracle
	Cfg    Config
	// Victim is the query interface used only for the stop condition
	// (predictions on validation inputs), never for weights.
	Victim func(tokens []int) int
	// Obs, when set, receives the extraction's cost accounting: logical
	// bit counters, clone forward passes, per-layer and whole-run wall
	// time. The oracle's physical meters are mirrored separately via
	// Oracle.SetObs.
	Obs *obs.Registry
	// CheckpointPath, when set, persists a resumable snapshot (completed
	// tensors, accounting, channel position) after every extracted
	// tensor, atomically via temp-file + rename.
	CheckpointPath string
	// Resume, when set together with CheckpointPath, restores an
	// existing snapshot before extracting: completed tensors are not
	// re-read, no hammer rounds are re-paid, and the restored meters
	// make the registry reconcile byte-for-byte with an uninterrupted
	// run. The caller must supply the same Pre, Cfg, FaultPlan, and
	// noise seed as the interrupted run; a missing snapshot file simply
	// starts fresh.
	Resume bool
	// ReadBudget, when > 0, bounds the metered oracle attempts
	// (successful + faulted physical reads, restored ones included).
	// Once exceeded — checked at tensor boundaries, so a tensor is never
	// split — Run saves a last checkpoint and returns ErrInterrupted.
	ReadBudget int64
	// Trace, when set, is this victim's trace track: Run opens one span
	// per extracted tensor and advances the track's logical clock by the
	// simulated rounds the channel spent, so a trace shows exactly where
	// hammer time went. Deterministic for any worker count (the clock
	// only moves by simulated units).
	Trace *obs.Track
	// Progress, when set, is this victim's live-telemetry handle: Run
	// declares the planned simulated units (the plan's logical bit set)
	// up front, credits each tensor's units at its boundary, and marks
	// the item done on every successful exit. All values derive from the
	// deterministic plan and the checkpointed completion order, so a
	// resumed run ratchets through exactly the values an uninterrupted
	// run reports (nil-safe; see obs.ProgressTracker).
	Progress *obs.ItemProgress

	// Instrument handles resolved once per Run (nil-safe no-ops). The
	// histograms are fed live reads, so unlike the counters published
	// from Stats they cover only work performed in this run — a resumed
	// run's histograms describe the resumed portion.
	hBitRounds     *obs.Histogram
	hTensorRounds  *obs.Histogram
	hTensorRetries *obs.Histogram
	flight         *obs.FlightRecorder
	log            *slog.Logger

	// ctx is the run's context (set by RunContext). Checked at tensor
	// boundaries alongside the read budget, per weight inside tensor
	// loops, and — through Oracle.Bind — before every metered read.
	ctx context.Context

	// sched is the information-ordered scheduler, created per run when
	// Cfg.Schedule.Enabled; its estimator state rides in checkpoints.
	sched *scheduler
}

// tensorRetry carries the per-tensor retry budget through one tensor's
// read stack.
type tensorRetry struct{ budget int }

// retryingRead builds the fault-tolerant raw reader for one weight:
// retryable faults are retried up to rp.MaxAttempts with bounded
// exponential backoff in simulated rounds (advancing the channel clock,
// which is what ends an outage epoch), metered against the tensor's
// retry budget. Exhausted retries surface as errBitUnreadable — the
// escalation trigger — and permanent faults pass through untouched.
func (e *Extractor) retryingRead(name string, idx int, rp RetryPolicy, st *Stats, tr *tensorRetry) BitReader {
	return func(bit int) (int, error) {
		backoff := rp.BackoffBase
		var lastErr error
		for attempt := 0; attempt < rp.MaxAttempts; attempt++ {
			b, err := e.Oracle.ReadBit(name, idx, bit)
			if err == nil {
				return b, nil
			}
			var f *sidechannel.ReadFault
			if !errors.As(err, &f) {
				return 0, err // not a channel fault (bad address map): abort
			}
			if !f.Retryable {
				return 0, err // stuck cell or dead region: degrade, don't wait
			}
			if tr.budget <= 0 {
				return 0, fmt.Errorf("tensor %q: %w", name, errTensorBudget)
			}
			tr.budget--
			st.Retries++
			st.BackoffRounds += backoff
			e.Oracle.AdvanceClock(backoff)
			if backoff < rp.BackoffMax {
				backoff *= 2
				if backoff > rp.BackoffMax {
					backoff = rp.BackoffMax
				}
			}
			lastErr = err
		}
		return 0, fmt.Errorf("%w after %d attempts: %v", errBitUnreadable, rp.MaxAttempts, lastErr)
	}
}

// reader stacks the full fault-tolerant policy for one weight: retrying
// raw reads, an EffectiveReadRepeats majority vote, and the escalated
// burst on suspected stuck bits.
func (e *Extractor) reader(name string, idx int, rp RetryPolicy, st *Stats, tr *tensorRetry) BitReader {
	repeats := e.Cfg.EffectiveReadRepeats()
	return func(bit int) (int, error) {
		b, _, _, err := e.votedRead(name, idx, bit, repeats, rp, st, tr)
		return b, err
	}
}

// votedRead performs one logical bit read at an explicit vote width
// through the full retry → escalate stack; reader uses the configured
// width, the scheduler passes its adaptive one. Besides the voted bit it
// returns the vote tally — the scheduler's only evidence of silent flips.
// votes == 0 marks a result decided by escalation (no tally to learn
// from).
func (e *Extractor) votedRead(name string, idx, bit, repeats int, rp RetryPolicy, st *Stats, tr *tensorRetry) (result, ones, votes int, err error) {
	// One observation per logical bit: the channel clock delta covers
	// vote repeats, backoff waits, and escalation bursts — the true
	// latency of recovering this bit, in simulated rounds.
	start := e.Oracle.Clock()
	defer func() { e.hBitRounds.Observe(float64(e.Oracle.Clock() - start)) }()
	read := e.retryingRead(name, idx, rp, st, tr)
	for i := 0; i < repeats; i++ {
		b, rerr := read(bit)
		if rerr != nil {
			if errors.Is(rerr, errBitUnreadable) {
				// Suspected stuck cell: discard the partial vote and
				// take one escalated, wider vote instead.
				r, eerr := e.escalate(name, idx, bit, rp, st)
				return r, 0, 0, eerr
			}
			return 0, 0, 0, rerr
		}
		ones += b
		votes++
	}
	if 2*ones > votes {
		return 1, ones, votes, nil
	}
	return 0, ones, votes, nil
}

// escalate is the higher-effective-ReadRepeats burst on a suspected
// stuck bit: up to 2×EscalateRepeats raw attempts (no backoff — the
// retry stage already waited out anything transient) collecting at most
// EscalateRepeats successful reads, majority-voted. No successful read
// at all confirms the stuck suspicion and degrades the bit.
func (e *Extractor) escalate(name string, idx, bit int, rp RetryPolicy, st *Stats) (int, error) {
	st.Escalations++
	e.flight.Note("escalate", name, map[string]string{
		"index": fmt.Sprint(idx), "bit": fmt.Sprint(bit),
	})
	ones, votes := 0, 0
	for a := 0; a < 2*rp.EscalateRepeats && votes < rp.EscalateRepeats; a++ {
		b, err := e.Oracle.ReadBit(name, idx, bit)
		if err != nil {
			var f *sidechannel.ReadFault
			if !errors.As(err, &f) {
				return 0, err
			}
			if !f.Retryable {
				if votes == 0 {
					// A permanent fault surfacing mid-escalation decides
					// the bit (stuck) or the tensor (dead region).
					return 0, err
				}
				break
			}
			continue
		}
		ones += b
		votes++
	}
	if votes == 0 {
		return 0, errBitUnreadable
	}
	if 2*ones > votes {
		return 1, nil
	}
	return 0, nil
}

// Run clones the victim. numLabels is the victim's observed output width
// (from querying); validation inputs drive the early-stop condition.
// It returns the clone and the accounting. A malformed address map (a
// tensor the oracle doesn't know, or a size mismatch) is attacker-facing
// input and returns an error before any rowhammer cost is paid.
//
// With CheckpointPath set the run is resumable: a snapshot is saved
// after every tensor, and a later Run with Resume restores it —
// completed tensors are never re-read, so an interrupted-then-resumed
// extraction is byte-identical to an uninterrupted one (clone weights,
// Stats, and obs counters) while paying each hammer round exactly once.
func (e *Extractor) Run(numLabels int, validation []transformer.Example) (*transformer.Model, *Stats, error) {
	return e.RunContext(context.Background(), numLabels, validation)
}

// RunContext is Run under a context. Cancellation (or a deadline) is a
// third interrupt door next to the read budget: it is checked at tensor
// boundaries — right after the checkpoint write, so the interrupted
// state is always resumable — per weight inside tensor loops, and before
// every metered oracle read (Oracle.Bind). However it lands, the run
// returns ErrInterrupted, the boundary checkpoint stands, and because an
// aborted read charges no meter, a Resume run reproduces the clone,
// Stats, and obs counters of an uninterrupted run byte-identically.
func (e *Extractor) RunContext(ctx context.Context, numLabels int, validation []transformer.Example) (*transformer.Model, *Stats, error) {
	defer e.Obs.StartSpan("extract.run_seconds").End()
	e.hBitRounds = e.Obs.Histogram("extract.bit_read_rounds")
	e.hTensorRounds = e.Obs.Histogram("extract.tensor_rounds")
	e.hTensorRetries = e.Obs.Histogram("extract.tensor_retries")
	e.flight = e.Obs.Flight()
	e.log = e.Obs.Log()
	if ctx == nil {
		ctx = context.Background()
	}
	e.ctx = ctx
	if ctx.Done() != nil {
		// Only a cancellable context is worth a per-read check; plain
		// Background keeps the metered path branch-free.
		e.Oracle.Bind(ctx)
	}
	cfg := e.Cfg
	stats := &Stats{LayersTotal: e.Pre.Layers}
	e.sched = nil
	if cfg.Schedule.Enabled {
		e.sched = newScheduler(cfg.Schedule, cfg.EffectiveReadRepeats())
	}

	// The clone starts as the pre-trained backbone with a fresh head of
	// the observed width.
	clone := transformer.New(e.Pre.Config.WithLabels(numLabels), 0)
	clone.CopyEmbeddingsFrom(e.Pre)
	for l := range e.Pre.Blocks {
		clone.CopyBlockFrom(e.Pre, l)
	}
	stats.ModelWeights = clone.ParamCount()

	// Validate the address map against the oracle before any metered
	// read: every tensor the schedule will touch must exist on the victim
	// with the size the clone expects. Catching a mismatch here turns a
	// would-be mid-extraction fault into a clean refusal.
	cloneParams := make(map[string][]float32)
	for _, p := range clone.Params() {
		if sz := e.Oracle.TensorSize(p.Name); sz != len(p.Value.Data) {
			return nil, nil, fmt.Errorf(
				"extract: address map mismatch for tensor %q: victim has %d weights, clone expects %d",
				p.Name, sz, len(p.Value.Data))
		}
		cloneParams[p.Name] = p.Value.Data
	}

	// Planned simulated units: the logical bit set the schedule commits
	// to — 32 bits per head weight, Algorithm 1's candidate set for the
	// selective tensors (planTensorUnits; identical on the scheduled and
	// index-ordered paths). A pure function of (Config, Pre, numLabels),
	// declared before any metered work so fractions are monotone from
	// the first tensor and recomputed identically on resume.
	preParams := indexParams(e.Pre)
	unitsOf := make(map[string]int64)
	var plannedUnits int64
	for _, p := range clone.Params() {
		var u int64
		if p.IsHead {
			u = 32 * int64(len(p.Value.Data))
		} else {
			u = planTensorUnits(cfg, preParams[p.Name])
		}
		unitsOf[p.Name] = u
		plannedUnits += u
	}
	e.Progress.SetPlanned(plannedUnits)
	var unitsDone int64
	// tensorDone credits a finished tensor's planned units. Cumulative
	// absolute values (never deltas): a resumed run recomputes the same
	// running sums from its restored doneOrder, so progress ratchets
	// through an identical sequence instead of double counting.
	tensorDone := func(name string) {
		unitsDone += unitsOf[name]
		e.Progress.Complete(unitsDone, name)
	}

	// Checkpoint restore: completed tensors land in the clone, the
	// accounting in stats, and the channel (meters, clock, noise stream)
	// rewinds to exactly where the interrupted run stood.
	ck, err := e.loadCheckpoint(cloneParams, numLabels)
	if err != nil {
		return nil, nil, err
	}
	done := make(map[string]bool)
	var doneOrder []string
	layersDone := 0
	preloopDone := false
	if ck != nil {
		*stats = ck.Stats
		for _, t := range ck.Tensors {
			copy(cloneParams[t.Name], t.Data)
			done[t.Name] = true
			doneOrder = append(doneOrder, t.Name)
		}
		layersDone = ck.LayersDone
		preloopDone = ck.PreloopDone
		e.Oracle.RestoreState(ck.Channel)
		if e.sched != nil {
			// The adaptive vote width is a pure function of this state;
			// restoring it keeps the resumed read sequence byte-identical.
			e.sched.state = ck.Sched
		}
		for _, name := range doneOrder {
			unitsDone += unitsOf[name]
		}
		e.Progress.Complete(unitsDone, "restored")
	}
	stats.EffectiveReadRepeats = cfg.EffectiveReadRepeats()

	saveCk := func(complete bool) error {
		if e.CheckpointPath == "" {
			return nil
		}
		c := &Checkpoint{
			Version:     checkpointVersion,
			Complete:    complete,
			PreloopDone: preloopDone,
			LayersDone:  layersDone,
			Stats:       *stats,
			Channel:     e.Oracle.State(),
			Sched:       e.schedState(),
			NumLabels:   numLabels,
			LayersTotal: e.Pre.Layers,
		}
		for _, name := range doneOrder {
			c.Tensors = append(c.Tensors, checkpointTensor{Name: name, Data: cloneParams[name]})
		}
		return writeCheckpoint(e.CheckpointPath, c)
	}
	// The budget counts every physical attempt the channel metered —
	// successful and faulted, restored rounds included — and is checked
	// at tensor boundaries so a tensor is never split across runs.
	overBudget := func() error {
		if e.ReadBudget <= 0 {
			return nil
		}
		if paid := e.Oracle.Attempts(); paid >= e.ReadBudget {
			e.flight.Note("interrupt", "read budget exhausted", map[string]string{
				"paid":   fmt.Sprint(paid),
				"budget": fmt.Sprint(e.ReadBudget),
			})
			e.log.Warn("extraction interrupted at read budget",
				"paid", paid, "budget", e.ReadBudget, "tensors_done", len(doneOrder))
			return fmt.Errorf("%w: %d oracle attempts paid of a %d budget", ErrInterrupted, paid, e.ReadBudget)
		}
		return nil
	}
	// interrupted is the full tensor-boundary stop check: budget first
	// (unchanged legacy behavior), then the context. Both doors sit right
	// after the checkpoint write, so whichever fires leaves a resumable
	// snapshot with the channel parked exactly at the boundary.
	interrupted := func() error {
		if err := overBudget(); err != nil {
			return err
		}
		if cerr := ctx.Err(); cerr != nil {
			e.flight.Note("interrupt", "context cancelled", map[string]string{
				"cause":        cerr.Error(),
				"tensors_done": fmt.Sprint(len(doneOrder)),
			})
			e.log.Warn("extraction interrupted by context",
				"err", cerr, "tensors_done", len(doneOrder))
			return fmt.Errorf("%w: %v", ErrInterrupted, cerr)
		}
		return nil
	}

	victimPreds := make([]int, len(validation))
	matches := func() float64 {
		if len(validation) == 0 {
			return 0
		}
		stats.CloneForwards += int64(len(validation))
		n := 0
		for i, ex := range validation {
			if clone.Predict(ex.Tokens) == victimPreds[i] {
				n++
			}
		}
		return float64(n) / float64(len(validation))
	}
	// publish mirrors the run's logical accounting into the registry once
	// the outcome is known. Everything flows from Stats — never from live
	// increments — so a resumed run publishes restored work exactly once
	// and the registry matches an uninterrupted run byte-for-byte. The
	// oracle mirrors the physical side itself (restored via RestoreState).
	publish := func() {
		// Every successful exit (completed checkpoint, pre-loop stop,
		// schedule exhausted or early-stopped) latches progress at
		// exactly 1.0 — elided and early-stopped work is finished work.
		e.Progress.MarkDone()
		e.Obs.Counter("extract.weights_selective").Add(int64(stats.WeightsTotal))
		e.Obs.Counter("extract.bits_logical").Add(stats.BitsChecked)
		e.Obs.Counter("extract.head_bits_logical").Add(stats.HeadBitsRead)
		e.Obs.Counter("extract.layers_extracted").Add(int64(stats.LayersExtracted))
		e.Obs.Counter("extract.clone_forwards").Add(stats.CloneForwards)
		e.Obs.Counter("extract.retries").Add(stats.Retries)
		e.Obs.Counter("extract.backoff_rounds").Add(stats.BackoffRounds)
		e.Obs.Counter("extract.escalations").Add(stats.Escalations)
		e.Obs.Counter("extract.bits_degraded").Add(stats.BitsDegraded)
		e.Obs.Counter("extract.tensors_degraded").Add(int64(stats.TensorsDegraded))
		e.Obs.Counter("extract.weights_nonfinite").Add(int64(stats.WeightsNonFinite))
		e.Obs.Counter("extract.bits_elided").Add(stats.BitsElided)
		e.Obs.Counter("extract.tensors_converged").Add(int64(stats.TensorsConverged))
		e.Obs.Counter("extract.probe_reads").Add(stats.ProbeReads)
		e.Obs.Counter("extract.runs").Inc()
		e.log.Info("extraction complete",
			"layers", stats.LayersExtracted,
			"bits_logical", stats.LogicalBitsRead(),
			"physical_reads", stats.PhysicalBitReads,
			"retries", stats.Retries,
			"tensors_degraded", stats.TensorsDegraded)
	}

	// Victim predictions are queries, not reads: a resumed run re-issues
	// them (its registry must account for them like any run's), but only
	// charges Stats once — QueriesUsed survives the checkpoint.
	if e.Victim != nil {
		for i, ex := range validation {
			victimPreds[i] = e.Victim(ex.Tokens)
		}
		if stats.QueriesUsed == 0 {
			stats.QueriesUsed = len(validation)
		}
	}

	// A completed checkpoint short-circuits everything: the clone and the
	// accounting are already final; no hammer round is re-paid.
	if ck != nil && ck.Complete {
		publish()
		return clone, stats, nil
	}

	// Step A: the task-dependent last layer has no baseline — full read
	// (with the same majority-vote and retry policy as the selective
	// reads, since a wrong sign or exponent bit here is catastrophic).
	for _, p := range clone.Params() {
		if !p.IsHead || done[p.Name] {
			continue
		}
		if err := e.extractHeadTensor(p.Name, p.Value.Data, stats); err != nil {
			return nil, nil, e.wrapErr(err)
		}
		done[p.Name] = true
		doneOrder = append(doneOrder, p.Name)
		tensorDone(p.Name)
		if err := saveCk(false); err != nil {
			return nil, nil, err
		}
		if err := interrupted(); err != nil {
			return nil, nil, err
		}
	}

	// With the head recovered, the pre-trained backbone alone may already
	// reproduce the victim (fine-tuning barely moves it); checking the stop
	// condition before any layer extraction costs only queries. A resumed
	// run that already passed this gate must not re-check it — the extra
	// forwards would break accounting parity with the uninterrupted run.
	if !preloopDone && e.Victim != nil && len(validation) > 0 {
		if matches() >= cfg.StopMatchRate {
			if err := saveCk(true); err != nil {
				return nil, nil, err
			}
			publish()
			return clone, stats, nil
		}
		preloopDone = true
		if err := saveCk(false); err != nil {
			return nil, nil, err
		}
	}
	// Schedule: last encoder layer down to the embeddings (-1); Table 1's
	// observation makes this the order in which the early-stop condition
	// fires soonest. FirstLayersFirst reverses it for the ablation.
	order := make([]int, 0, e.Pre.Layers+1)
	if cfg.FirstLayersFirst {
		for layer := -1; layer <= e.Pre.Layers-1; layer++ {
			order = append(order, layer)
		}
	} else {
		for layer := e.Pre.Layers - 1; layer >= -1; layer-- {
			order = append(order, layer)
		}
	}
	for li := layersDone; li < len(order); li++ {
		layer := order[li]
		layerSpan := e.Obs.StartSpan("extract.layer_seconds")
		for _, p := range clone.Params() {
			if p.IsHead || p.Layer != layer || done[p.Name] {
				continue
			}
			basis := preParams[p.Name]
			var terr error
			if e.sched != nil {
				terr = e.extractTensorScheduled(p.Name, basis, p.Value.Data, stats)
			} else {
				terr = e.extractTensor(p.Name, basis, p.Value.Data, stats)
			}
			if terr != nil {
				layerSpan.End()
				return nil, nil, e.wrapErr(terr)
			}
			done[p.Name] = true
			doneOrder = append(doneOrder, p.Name)
			tensorDone(p.Name)
			if err := saveCk(false); err != nil {
				layerSpan.End()
				return nil, nil, err
			}
			if err := interrupted(); err != nil {
				layerSpan.End()
				return nil, nil, err
			}
		}
		if layer >= 0 {
			stats.LayersExtracted++
		}
		layerSpan.End()
		layersDone = li + 1
		if e.Victim != nil && len(validation) > 0 {
			if m := matches(); m >= cfg.StopMatchRate {
				break
			}
		}
		if err := saveCk(false); err != nil {
			return nil, nil, err
		}
	}
	if err := saveCk(true); err != nil {
		return nil, nil, err
	}
	publish()
	return clone, stats, nil
}

// wrapErr maps a context error escaping a tensor loop to ErrInterrupted
// so mid-tensor cancellation surfaces exactly like budget exhaustion.
// The abandoned tensor is NOT checkpointed — the last boundary snapshot
// stands, and since an aborted oracle read charges no meter, a Resume
// run re-pays only this tensor's partial work and still reproduces the
// uninterrupted clone, Stats, and counters byte-identically.
func (e *Extractor) wrapErr(err error) error {
	if err == nil || (!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)) {
		return err
	}
	e.flight.Note("interrupt", "context cancelled", map[string]string{"cause": err.Error()})
	e.log.Warn("extraction interrupted by context", "err", err)
	return fmt.Errorf("%w: %v", ErrInterrupted, err)
}

// ctxErr is the cheap per-weight cancellation probe used inside tensor
// loops: skip-heavy stretches read nothing through the oracle, so
// without it a cancellation could wait out an entire tensor of copies.
func (e *Extractor) ctxErr() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// tensorSpan instruments one tensor's extraction: a trace span (named
// after the tensor) on the victim's track, advanced by the simulated
// rounds the channel spent, plus the per-tensor latency/retry histograms
// and a debug log line. Returns the closer for defer.
func (e *Extractor) tensorSpan(name string, stats *Stats) func() {
	sp := e.Trace.Begin(name)
	clockStart := e.Oracle.Clock()
	retriesStart := stats.Retries
	return func() {
		rounds := e.Oracle.Clock() - clockStart
		e.Trace.Advance(rounds)
		sp.End()
		e.hTensorRounds.Observe(float64(rounds))
		e.hTensorRetries.Observe(float64(stats.Retries - retriesStart))
		e.log.Debug("tensor extracted", "tensor", name,
			"rounds", rounds, "retries", stats.Retries-retriesStart)
	}
}

func indexParams(m *transformer.Model) map[string][]float32 {
	out := make(map[string][]float32)
	for _, p := range m.Params() {
		out[p.Name] = p.Value.Data
	}
	return out
}

// isFinite reports whether v is an ordinary number (not NaN or ±Inf).
func isFinite(v float32) bool {
	f := float64(v)
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// extractHeadTensor fully reads one last-layer tensor (no baseline
// exists) through the fault-tolerant stack. Unreadable bits stay zero;
// if the tensor's retry budget dies (or its region is gone for good) the
// remaining weights are zeroed and recorded as degraded — with no
// baseline to fall back on, zero is the only honest value.
func (e *Extractor) extractHeadTensor(name string, dst []float32, stats *Stats) error {
	defer e.tensorSpan(name, stats)()
	rp := e.Cfg.Retry.withDefaults()
	tr := &tensorRetry{budget: rp.TensorRetryBudget}
	faultsBefore := e.Oracle.FaultedReads
	defer func() { stats.ReadFaults += e.Oracle.FaultedReads - faultsBefore }()
	degradeFrom := -1
	for i := range dst {
		if cerr := e.ctxErr(); cerr != nil {
			return fmt.Errorf("extract: head tensor %q: %w", name, cerr)
		}
		before := e.Oracle.BitReads
		read := e.reader(name, i, rp, stats, tr)
		var w float32
		logical := 0
		var werr error
		for bit := 0; bit < 32; bit++ {
			b, err := read(bit)
			if err != nil {
				if isBitDegrade(err) {
					stats.BitsDegraded++
					continue // the bit stays 0
				}
				werr = err
				break
			}
			w = ieee754.SetBit(w, bit, b)
			logical++
		}
		stats.PhysicalBitReads += e.Oracle.BitReads - before
		if werr != nil {
			if isTensorDegrade(werr) {
				degradeFrom = i
				break
			}
			return fmt.Errorf("extract: head readout: %w", werr)
		}
		dst[i] = w
		stats.HeadWeights++
		stats.HeadBitsRead += int64(logical)
		if logical < 32 {
			stats.WeightsDegraded++
		}
	}
	if degradeFrom >= 0 {
		for i := degradeFrom; i < len(dst); i++ {
			dst[i] = 0
			stats.HeadWeights++
			stats.WeightsDegraded++
		}
		stats.TensorsDegraded++
		stats.DegradedTensors = append(stats.DegradedTensors, name)
		e.noteDegrade(name, degradeFrom, len(dst))
	}
	return nil
}

// noteDegrade records a tensor falling back to its baseline (or zeros)
// in the flight recorder and the log.
func (e *Extractor) noteDegrade(name string, from, size int) {
	e.flight.Note("degrade", name, map[string]string{
		"from": fmt.Sprint(from), "weights": fmt.Sprint(size - from),
	})
	e.log.Warn("tensor degraded", "tensor", name, "from", from, "weights", size-from)
}

// extractTensor applies Algorithm 1 to every weight of one tensor,
// writing clones into dst and accounting into stats. Channel faults
// degrade gracefully: unreadable bits keep the baseline bit, and a spent
// retry budget (or a permanently dead region) makes the rest of the
// tensor fall back to the pre-trained baseline wholesale.
func (e *Extractor) extractTensor(name string, base, dst []float32, stats *Stats) error {
	defer e.tensorSpan(name, stats)()
	cfg := e.Cfg
	rp := cfg.Retry.withDefaults()
	tr := &tensorRetry{budget: rp.TensorRetryBudget}
	faultsBefore := e.Oracle.FaultedReads
	defer func() { stats.ReadFaults += e.Oracle.FaultedReads - faultsBefore }()
	degradeFrom := -1
	for i := range base {
		if cerr := e.ctxErr(); cerr != nil {
			return fmt.Errorf("extract: tensor %q: %w", name, cerr)
		}
		b := base[i]
		before := e.Oracle.BitReads
		clone, checked, degraded, err := cfg.ExtractWeightErr(b, e.reader(name, i, rp, stats, tr))
		// Logical reads: distinct bit positions Algorithm 1 selected.
		// Physical reads: the oracle meter's delta (×ReadRepeats under
		// majority voting) — captured even when the weight aborts, since
		// the channel already charged for the partial attempts.
		stats.PhysicalBitReads += e.Oracle.BitReads - before
		if err != nil {
			if isTensorDegrade(err) {
				degradeFrom = i
				break
			}
			return fmt.Errorf("extract: tensor %q: %w", name, err)
		}
		dst[i] = clone
		stats.WeightsTotal++
		stats.BitsTotal += 32
		stats.BitsChecked += int64(len(checked))
		if len(degraded) > 0 {
			stats.BitsDegraded += int64(len(degraded))
			stats.WeightsDegraded++
		}
		if !isFinite(b) {
			// Corrupt baseline, copied and flagged unread (see
			// ExtractWeightErr); gap-based ground-truth accounting is
			// meaningless against garbage.
			stats.WeightsNonFinite++
			continue
		}

		// Ground-truth accounting (the simulator can peek for metrics;
		// the attacker cannot).
		victim, err := e.Oracle.PeekWord(name, i)
		if err != nil {
			return fmt.Errorf("extract: tensor %q: %w", name, err)
		}
		gap := math.Abs(float64(victim - b))
		if len(checked) == 0 {
			stats.WeightsSkipped++
			if gap < cfg.SkipThreshold {
				stats.WeightsSkippedCorrect++
			}
		} else if math.Abs(float64(victim-clone)) <= cfg.gap(b) {
			stats.WeightsWithinGap++
		}
		if clone == victim {
			stats.WeightsExact++
		}
		if (victim >= 0) != (b >= 0) && victim != 0 {
			stats.SignFlips++
		}
		// Bits excluded correctly: unread bits that either match the
		// victim or sit below the negligible-impact place value (§6.1.1).
		readSet := map[int]bool{}
		for _, k := range checked {
			readSet[ieee754.FractionBits-k] = true
		}
		for bit := 0; bit < 32; bit++ {
			if readSet[bit] {
				continue
			}
			if ieee754.Bit(victim, bit) == ieee754.Bit(b, bit) {
				stats.BitsExcludedCorrect++
				continue
			}
			if bit < ieee754.FractionBits {
				k := ieee754.FractionBits - bit
				if ieee754.FractionBitValue(b, k) < cfg.SubtleValue {
					stats.BitsExcludedCorrect++
				}
			}
		}
	}
	if degradeFrom >= 0 {
		for i := degradeFrom; i < len(base); i++ {
			dst[i] = base[i]
			stats.WeightsTotal++
			stats.BitsTotal += 32
			stats.WeightsDegraded++
		}
		stats.TensorsDegraded++
		stats.DegradedTensors = append(stats.DegradedTensors, name)
		e.noteDegrade(name, degradeFrom, len(base))
	}
	return nil
}

// schedState snapshots the scheduler's estimator for a checkpoint (zero
// when the scheduler is off).
func (e *Extractor) schedState() SchedulerState {
	if e.sched == nil {
		return SchedulerState{}
	}
	return e.sched.state
}

// extractTensorScheduled is the information-ordered counterpart of
// extractTensor: identical bit selection, but reads follow planTensor's
// descending-information order, each read's vote width comes from the
// adaptive estimator (clamped to EffectiveReadRepeats), and a converged
// bit posterior elides the remaining — strictly lower-value — planned
// bits. Fault handling mirrors the index-ordered path: an unreadable bit
// keeps the baseline bit, a spent tensor budget or dead region degrades
// every weight that still had planned reads outstanding.
func (e *Extractor) extractTensorScheduled(name string, base, dst []float32, stats *Stats) error {
	defer e.tensorSpan(name, stats)()
	cfg := e.Cfg
	rp := cfg.Retry.withDefaults()
	tr := &tensorRetry{budget: rp.TensorRetryBudget}
	faultsBefore := e.Oracle.FaultedReads
	defer func() { stats.ReadFaults += e.Oracle.FaultedReads - faultsBefore }()

	// Every weight starts as its baseline copy; the population accounting
	// matches the index-ordered path.
	for i, b := range base {
		dst[i] = b
		stats.WeightsTotal++
		stats.BitsTotal += 32
		if !isFinite(b) {
			stats.WeightsNonFinite++
		}
	}

	plan := planTensor(cfg, base)
	planned := make(map[int]int, len(plan)) // weight → planned bit count
	for _, t := range plan {
		planned[t.idx]++
	}
	checked := make(map[int][]int)     // weight → fraction bits recovered
	degradedBits := make(map[int]bool) // weights with ≥1 unreadable bit
	sc := e.sched

	reads, changed := 0, 0 // early-exit evidence for this tensor
	degradeFrom := -1
	for ti, task := range plan {
		if cerr := e.ctxErr(); cerr != nil {
			return fmt.Errorf("extract: tensor %q: %w", name, cerr)
		}
		width := sc.chooseWidth(task.value, task.gap, stats)
		raw := ieee754.FractionBits - task.k
		before := e.Oracle.BitReads
		bit, ones, votes, err := e.votedRead(name, task.idx, raw, width, rp, stats, tr)
		stats.PhysicalBitReads += e.Oracle.BitReads - before
		if err != nil {
			if isBitDegrade(err) {
				stats.BitsDegraded++
				degradedBits[task.idx] = true
				continue
			}
			if isTensorDegrade(err) {
				degradeFrom = ti
				break
			}
			return fmt.Errorf("extract: tensor %q: %w", name, err)
		}
		sc.update(ones, votes)
		dst[task.idx] = ieee754.SetFractionBit(dst[task.idx], task.k, bit)
		checked[task.idx] = append(checked[task.idx], task.k)
		stats.BitsChecked++
		reads++
		if bit != ieee754.FractionBit(base[task.idx], task.k) {
			changed++
		}
		if ti+1 < len(plan) && sc.converged(reads, changed) {
			stats.BitsElided += int64(len(plan) - ti - 1)
			stats.TensorsConverged++
			e.flight.Note("converge", name, map[string]string{
				"read":   fmt.Sprint(reads),
				"elided": fmt.Sprint(len(plan) - ti - 1),
			})
			break
		}
	}

	// A degraded tensor keeps every successfully read bit; weights whose
	// plan was cut short fall back to the baseline for the unread bits
	// and count as degraded, like the index-ordered tail fallback.
	unread := make(map[int]bool)
	if degradeFrom >= 0 {
		for _, t := range plan[degradeFrom:] {
			unread[t.idx] = true
		}
		stats.TensorsDegraded++
		stats.DegradedTensors = append(stats.DegradedTensors, name)
		e.noteDegrade(name, len(base)-len(unread), len(base))
	}
	for i := range base {
		if degradedBits[i] || unread[i] {
			stats.WeightsDegraded++
		}
	}

	// Ground-truth accounting (simulation-side peek, as in extractTensor),
	// decoupled from the read loop because the schedule visits weights in
	// information order, not index order.
	for i, b := range base {
		if !isFinite(b) {
			continue
		}
		victim, err := e.Oracle.PeekWord(name, i)
		if err != nil {
			return fmt.Errorf("extract: tensor %q: %w", name, err)
		}
		gap := math.Abs(float64(victim - b))
		cs := checked[i]
		if planned[i] == 0 {
			// Algorithm 1 selected no bits for this weight (sub-threshold,
			// or the gap sits below the finest candidate place value).
			stats.WeightsSkipped++
			if gap < cfg.SkipThreshold {
				stats.WeightsSkippedCorrect++
			}
		} else if math.Abs(float64(victim-dst[i])) <= cfg.gap(b) {
			stats.WeightsWithinGap++
		}
		if dst[i] == victim {
			stats.WeightsExact++
		}
		if (victim >= 0) != (b >= 0) && victim != 0 {
			stats.SignFlips++
		}
		readSet := map[int]bool{}
		for _, k := range cs {
			readSet[ieee754.FractionBits-k] = true
		}
		for bit := 0; bit < 32; bit++ {
			if readSet[bit] {
				continue
			}
			if ieee754.Bit(victim, bit) == ieee754.Bit(b, bit) {
				stats.BitsExcludedCorrect++
				continue
			}
			if bit < ieee754.FractionBits {
				k := ieee754.FractionBits - bit
				if ieee754.FractionBitValue(b, k) < cfg.SubtleValue {
					stats.BitsExcludedCorrect++
				}
			}
		}
	}
	return nil
}

// Package extract implements Decepticon's selective weight extraction
// (paper §6.1, Algorithm 1). Given the identified pre-trained model as a
// baseline and a rowhammer bit-read oracle over the black-box victim, it
// reconstructs the victim's weights while reading only the few fraction
// bits that fine-tuning can plausibly have changed:
//
//  1. weights whose pre-trained magnitude is below a threshold are copied
//     from the baseline unread ("discarding all weight values below 0.001
//     changes F1 by less than 0.01");
//  2. for the rest, only the fraction bits whose value covers the expected
//     fine-tuning gap (estimated from the pre-trained weight value, U-shape
//     aware) are read — at most two per weight;
//  3. the task-specific last layer has no pre-trained baseline and is read
//     in full;
//  4. encoder layers are extracted from the last layer backward, stopping
//     as soon as the clone's predictions match the victim (Table 1: early
//     layers can keep pre-trained weights). The stop condition is checked
//     before any backbone extraction too — when fine-tuning barely moved
//     the backbone, the recovered head alone completes the clone.
package extract

import (
	"fmt"
	"math"

	"decepticon/internal/ieee754"
	"decepticon/internal/obs"
	"decepticon/internal/sidechannel"
	"decepticon/internal/transformer"
)

// Config tunes the selective extraction.
type Config struct {
	// SkipThreshold is Algorithm 1's step-1 magnitude cutoff (paper: 0.001).
	SkipThreshold float64
	// MaxBitsPerWeight caps the fraction bits read per weight (paper: 2).
	MaxBitsPerWeight int
	// GapBase and GapSlope estimate the expected fine-tuning weight gap
	// from the pre-trained magnitude: dist = GapBase + GapSlope·|w|.
	// The slope encodes the U-shape of Fig 4 (larger weights move more).
	GapBase  float64
	GapSlope float64
	// SubtleValue is §6.1.1's negligible-impact cutoff ("the remaining 18
	// bits ... make very subtle differences (less than 0.001)"): an unread
	// bit counts as correctly excluded when it matches the victim or its
	// place value is below this.
	SubtleValue float64
	// StopMatchRate ends the layer-by-layer schedule once the clone agrees
	// with the victim on at least this fraction of validation queries.
	StopMatchRate float64
	// ReadRepeats reads each bit this many times and majority-votes —
	// the standard mitigation for an unreliable rowhammer channel. 0 or 1
	// means single reads. Even values are rounded up to the next odd.
	ReadRepeats int
	// FirstLayersFirst reverses the extraction schedule (ablation only):
	// the paper extracts later layers first because early layers can keep
	// the pre-trained weights (Table 1), so the early-stop check fires
	// sooner in last-first order.
	FirstLayersFirst bool
}

// DefaultConfig returns the paper's operating point.
func DefaultConfig() Config {
	return Config{
		SkipThreshold:    0.001,
		MaxBitsPerWeight: 2,
		GapBase:          0.003,
		GapSlope:         0.05,
		SubtleValue:      0.001,
		StopMatchRate:    0.98,
	}
}

// gap returns the expected fine-tuning weight-value gap for a pre-trained
// weight.
func (c Config) gap(base float32) float64 {
	return c.GapBase + c.GapSlope*math.Abs(float64(base))
}

// voted wraps a raw bit reader with the majority-vote policy.
func (c Config) voted(read func(bit int) int) func(bit int) int {
	repeats := c.ReadRepeats
	if repeats < 2 {
		return read
	}
	if repeats%2 == 0 {
		repeats++
	}
	return func(bit int) int {
		ones := 0
		for i := 0; i < repeats; i++ {
			ones += read(bit)
		}
		if 2*ones > repeats {
			return 1
		}
		return 0
	}
}

// ExtractWeight runs Algorithm 1 for a single weight: base is the
// pre-trained value, read returns the victim's raw bit (0 = LSB). It
// returns the clone value and which fraction bits (MSB-first indices) were
// read.
func (c Config) ExtractWeight(base float32, read func(bit int) int) (float32, []int) {
	absBase := base
	if absBase < 0 {
		absBase = -absBase
	}
	// Step 1: near-zero pre-trained weights are copied unread.
	if float64(absBase) < c.SkipThreshold {
		return base, nil
	}
	dist := c.gap(base)

	// Step 2: read the most significant fraction bits whose place value is
	// within the estimated gap — exactly the bits of Fig 13's example
	// (2^-10 and 2^-11 for a gap of ~0.002 at exponent -6). Bits coarser
	// than the gap cannot have flipped during fine-tuning; bits finer than
	// the checked pair "make very subtle differences (less than 0.001)".
	// (Algorithm 1 as printed brackets the same bits via the
	// int_base+fr_base ∈ [min,max] test, but that test only works for
	// weights in the lower half of their binade; the place-value bracket
	// is the example's intent and covers every weight.)
	clone := base
	var checked []int
	read = c.voted(read)
	for k := 1; k <= ieee754.FractionBits && len(checked) < c.MaxBitsPerWeight; k++ {
		if ieee754.FractionBitValue(absBase, k) > dist {
			continue
		}
		// Raw bit index of fraction bit k (MSB-first).
		raw := ieee754.FractionBits - k
		bit := read(raw)
		clone = ieee754.SetFractionBit(clone, k, bit)
		checked = append(checked, k)
	}
	return clone, checked
}

// Stats accumulates the efficiency and correctness accounting of Fig 16
// and §7.4.
//
// Bit accounting distinguishes two views that coincide only when
// ReadRepeats ≤ 1:
//
//   - logical reads (BitsChecked, HeadBitsRead) count distinct (weight,
//     bit) positions Algorithm 1 decided to recover — the algorithmic
//     selectivity the paper's reduction factors describe;
//   - physical reads (PhysicalBitReads) count every metered oracle
//     access, including majority-vote repeats — the quantity rowhammer
//     rounds are actually paid for.
//
// All bit counters are int64: at 2048 hammer rounds per bit, realistic
// model sizes with ReadRepeats overflow 32-bit arithmetic.
type Stats struct {
	// Population (selective layers only; the fully-read last layer is
	// reported separately).
	WeightsTotal int
	BitsTotal    int64 // 32 × WeightsTotal

	// Reduction.
	WeightsSkipped int   // step-1 copies, zero bits read
	BitsChecked    int64 // logical: distinct fraction-bit positions read

	// Correctness ("correctly pruned/excluded" per DESIGN.md §4).
	WeightsSkippedCorrect int   // skipped and true gap below SkipThreshold
	BitsExcludedCorrect   int64 // unread and identical in victim and baseline
	WeightsExact          int   // clone bit-identical to victim
	WeightsWithinGap      int   // |clone - victim| ≤ expected gap
	SignFlips             int   // victim changed sign vs baseline (missed by design)

	// Last layer (full extraction).
	HeadWeights  int
	HeadBitsRead int64 // logical: 32 distinct bit positions per head weight

	// PhysicalBitReads is the oracle's meter delta over this run: every
	// bit access the channel charged for, selective and head, including
	// ReadRepeats majority-vote repeats. This — never the logical counts —
	// is what rowhammer cost scales with.
	PhysicalBitReads int64

	// Schedule.
	LayersExtracted int // encoder layers actually processed
	LayersTotal     int
	QueriesUsed     int // victim queries spent on the stop condition

	// ModelWeights is the victim's full scalar weight count (including the
	// head and any layers the early stop skipped) — the denominator for
	// whole-model cost comparisons.
	ModelWeights int
}

// SkipRate returns the fraction of selective-layer weights copied unread.
func (s *Stats) SkipRate() float64 {
	if s.WeightsTotal == 0 {
		return 0
	}
	return float64(s.WeightsSkipped) / float64(s.WeightsTotal)
}

// WeightsCorrectlyPruned is Fig 16's "Weights" bar: the fraction of
// weights handled without reading all bits and without error (skipped
// correctly, or within the expected gap after ≤MaxBits reads).
func (s *Stats) WeightsCorrectlyPruned() float64 {
	if s.WeightsTotal == 0 {
		return 0
	}
	return float64(s.WeightsSkippedCorrect+s.WeightsWithinGap) / float64(s.WeightsTotal)
}

// BitsCorrectlyExcluded is Fig 16's "Bits" bar: the fraction of all bits
// that were not read and match the victim anyway.
func (s *Stats) BitsCorrectlyExcluded() float64 {
	if s.BitsTotal == 0 {
		return 0
	}
	return float64(s.BitsExcludedCorrect) / float64(s.BitsTotal)
}

// LogicalBitsRead returns the distinct bit positions recovered
// (selective + head), independent of ReadRepeats.
func (s *Stats) LogicalBitsRead() int64 { return s.BitsChecked + s.HeadBitsRead }

// HammerRounds returns the simulated rowhammer rounds this extraction
// paid for. It is driven by *physical* reads — with ReadRepeats = r the
// cost is r× the logical bit count — and reconciles exactly with the
// oracle's own Oracle.HammerRounds() meter over the same run.
func (s *Stats) HammerRounds() int64 {
	return s.PhysicalBitReads * sidechannel.HammerRoundsPerBit
}

// BitsReadFraction returns *logical* read bits / the victim's total bit
// count: the algorithmic selectivity of Algorithm 1, unaffected by
// majority-vote repeats.
func (s *Stats) BitsReadFraction() float64 {
	if s.ModelWeights == 0 {
		return 0
	}
	return float64(s.LogicalBitsRead()) / float64(32*s.ModelWeights)
}

// PhysicalReadFraction returns *physical* oracle reads / the victim's
// total bit count — ×ReadRepeats larger than BitsReadFraction under
// majority voting. Full-readout baselines pay the same repeat factor, so
// the paper-facing reduction ratios use the logical view; this is the
// number to quote when the question is absolute rowhammer cost.
func (s *Stats) PhysicalReadFraction() float64 {
	if s.ModelWeights == 0 {
		return 0
	}
	return float64(s.PhysicalBitReads) / float64(32*s.ModelWeights)
}

// ReductionFactor is how many times fewer bits the selective extraction
// reads than DeepSteal-style full extraction of every bit of the model.
// Logical/logical: both sides of the ratio count distinct bit positions,
// so the factor is invariant under ReadRepeats (a full readout would
// repeat its reads too).
func (s *Stats) ReductionFactor() float64 {
	read := s.LogicalBitsRead()
	if read == 0 {
		return 0
	}
	return float64(32*s.ModelWeights) / float64(read)
}

// Extractor drives the full model extraction.
type Extractor struct {
	Pre    *transformer.Model
	Oracle *sidechannel.Oracle
	Cfg    Config
	// Victim is the query interface used only for the stop condition
	// (predictions on validation inputs), never for weights.
	Victim func(tokens []int) int
	// Obs, when set, receives the extraction's cost accounting: logical
	// bit counters, clone forward passes, per-layer and whole-run wall
	// time. The oracle's physical meters are mirrored separately via
	// Oracle.SetObs.
	Obs *obs.Registry
}

// readThrough adapts a metered oracle read to Algorithm 1's infallible
// bit-reader shape, parking the first failure in *firstErr. After the
// up-front address-map validation in Run these reads cannot fail, but a
// channel fault should still surface as an error, not as silently-zero
// bits extending the campaign.
func readThrough(firstErr *error, read func(bit int) (int, error)) func(bit int) int {
	return func(bit int) int {
		b, err := read(bit)
		if err != nil && *firstErr == nil {
			*firstErr = err
		}
		return b
	}
}

// Run clones the victim. numLabels is the victim's observed output width
// (from querying); validation inputs drive the early-stop condition.
// It returns the clone and the accounting. A malformed address map (a
// tensor the oracle doesn't know, or a size mismatch) is attacker-facing
// input and returns an error before any rowhammer cost is paid.
func (e *Extractor) Run(numLabels int, validation []transformer.Example) (*transformer.Model, *Stats, error) {
	defer e.Obs.StartSpan("extract.run_seconds").End()
	cfg := e.Cfg
	stats := &Stats{LayersTotal: e.Pre.Layers}

	// The clone starts as the pre-trained backbone with a fresh head of
	// the observed width.
	clone := transformer.New(e.Pre.Config.WithLabels(numLabels), 0)
	clone.CopyEmbeddingsFrom(e.Pre)
	for l := range e.Pre.Blocks {
		clone.CopyBlockFrom(e.Pre, l)
	}
	stats.ModelWeights = clone.ParamCount()

	// Validate the address map against the oracle before any metered
	// read: every tensor the schedule will touch must exist on the victim
	// with the size the clone expects. Catching a mismatch here turns a
	// would-be mid-extraction fault into a clean refusal.
	for _, p := range clone.Params() {
		if sz := e.Oracle.TensorSize(p.Name); sz != len(p.Value.Data) {
			return nil, nil, fmt.Errorf(
				"extract: address map mismatch for tensor %q: victim has %d weights, clone expects %d",
				p.Name, sz, len(p.Value.Data))
		}
	}
	var readErr error

	// Step A: the task-dependent last layer has no baseline — full read
	// (with the same majority-vote policy as the selective reads, since a
	// wrong sign or exponent bit here is catastrophic).
	for _, p := range clone.Params() {
		if !p.IsHead {
			continue
		}
		for i := range p.Value.Data {
			before := e.Oracle.BitReads
			read := cfg.voted(readThrough(&readErr, func(bit int) (int, error) {
				return e.Oracle.ReadBit(p.Name, i, bit)
			}))
			var w float32
			for bit := 0; bit < 32; bit++ {
				w = ieee754.SetBit(w, bit, read(bit))
			}
			p.Value.Data[i] = w
			stats.HeadWeights++
			stats.HeadBitsRead += 32 // logical: 32 distinct positions
			stats.PhysicalBitReads += e.Oracle.BitReads - before
		}
	}
	if readErr != nil {
		return nil, nil, fmt.Errorf("extract: head readout: %w", readErr)
	}

	// Step B: selective extraction, later layers first, embeddings last,
	// stopping when the clone matches the victim.
	cForwards := e.Obs.Counter("extract.clone_forwards")
	victimPreds := make([]int, len(validation))
	if e.Victim != nil {
		for i, ex := range validation {
			victimPreds[i] = e.Victim(ex.Tokens)
			stats.QueriesUsed++
		}
	}
	matches := func() float64 {
		if len(validation) == 0 {
			return 0
		}
		cForwards.Add(int64(len(validation)))
		n := 0
		for i, ex := range validation {
			if clone.Predict(ex.Tokens) == victimPreds[i] {
				n++
			}
		}
		return float64(n) / float64(len(validation))
	}
	// publish mirrors the run's logical accounting into the registry once
	// the outcome is known; the oracle mirrors the physical side itself.
	publish := func() {
		e.Obs.Counter("extract.weights_selective").Add(int64(stats.WeightsTotal))
		e.Obs.Counter("extract.bits_logical").Add(stats.BitsChecked)
		e.Obs.Counter("extract.head_bits_logical").Add(stats.HeadBitsRead)
		e.Obs.Counter("extract.layers_extracted").Add(int64(stats.LayersExtracted))
		e.Obs.Counter("extract.runs").Inc()
	}

	preParams := indexParams(e.Pre)
	// With the head recovered, the pre-trained backbone alone may already
	// reproduce the victim (fine-tuning barely moves it); checking the stop
	// condition before any layer extraction costs only queries.
	if e.Victim != nil && len(validation) > 0 && matches() >= cfg.StopMatchRate {
		publish()
		return clone, stats, nil
	}
	// Schedule: last encoder layer down to the embeddings (-1); Table 1's
	// observation makes this the order in which the early-stop condition
	// fires soonest. FirstLayersFirst reverses it for the ablation.
	order := make([]int, 0, e.Pre.Layers+1)
	if cfg.FirstLayersFirst {
		for layer := -1; layer <= e.Pre.Layers-1; layer++ {
			order = append(order, layer)
		}
	} else {
		for layer := e.Pre.Layers - 1; layer >= -1; layer-- {
			order = append(order, layer)
		}
	}
	for _, layer := range order {
		layerSpan := e.Obs.StartSpan("extract.layer_seconds")
		for _, p := range clone.Params() {
			if p.IsHead || p.Layer != layer {
				continue
			}
			basis := preParams[p.Name]
			if err := e.extractTensor(p.Name, basis, p.Value.Data, stats); err != nil {
				layerSpan.End()
				return nil, nil, err
			}
		}
		if layer >= 0 {
			stats.LayersExtracted++
		}
		layerSpan.End()
		if e.Victim != nil && len(validation) > 0 {
			if m := matches(); m >= cfg.StopMatchRate {
				break
			}
		}
	}
	publish()
	return clone, stats, nil
}

func indexParams(m *transformer.Model) map[string][]float32 {
	out := make(map[string][]float32)
	for _, p := range m.Params() {
		out[p.Name] = p.Value.Data
	}
	return out
}

// extractTensor applies Algorithm 1 to every weight of one tensor,
// writing clones into dst and accounting into stats.
func (e *Extractor) extractTensor(name string, base, dst []float32, stats *Stats) error {
	cfg := e.Cfg
	var readErr error
	for i := range base {
		b := base[i]
		before := e.Oracle.BitReads
		clone, checked := cfg.ExtractWeight(b, readThrough(&readErr, func(bit int) (int, error) {
			return e.Oracle.ReadBit(name, i, bit)
		}))
		if readErr != nil {
			return fmt.Errorf("extract: tensor %q: %w", name, readErr)
		}
		dst[i] = clone
		stats.WeightsTotal++
		stats.BitsTotal += 32
		// Logical reads: distinct bit positions Algorithm 1 selected.
		// Physical reads: the oracle meter's delta (×ReadRepeats under
		// majority voting).
		stats.BitsChecked += int64(len(checked))
		stats.PhysicalBitReads += e.Oracle.BitReads - before

		// Ground-truth accounting (the simulator can peek for metrics;
		// the attacker cannot).
		victim, err := e.Oracle.PeekWord(name, i)
		if err != nil {
			return fmt.Errorf("extract: tensor %q: %w", name, err)
		}
		gap := math.Abs(float64(victim - b))
		if len(checked) == 0 {
			stats.WeightsSkipped++
			if gap < cfg.SkipThreshold {
				stats.WeightsSkippedCorrect++
			}
		} else if math.Abs(float64(victim-clone)) <= cfg.gap(b) {
			stats.WeightsWithinGap++
		}
		if clone == victim {
			stats.WeightsExact++
		}
		if (victim >= 0) != (b >= 0) && victim != 0 {
			stats.SignFlips++
		}
		// Bits excluded correctly: unread bits that either match the
		// victim or sit below the negligible-impact place value (§6.1.1).
		readSet := map[int]bool{}
		for _, k := range checked {
			readSet[ieee754.FractionBits-k] = true
		}
		for bit := 0; bit < 32; bit++ {
			if readSet[bit] {
				continue
			}
			if ieee754.Bit(victim, bit) == ieee754.Bit(b, bit) {
				stats.BitsExcludedCorrect++
				continue
			}
			if bit < ieee754.FractionBits {
				k := ieee754.FractionBits - bit
				if ieee754.FractionBitValue(b, k) < cfg.SubtleValue {
					stats.BitsExcludedCorrect++
				}
			}
		}
	}
	return nil
}

package extract

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"decepticon/internal/ieee754"
	"decepticon/internal/sidechannel"
	"decepticon/internal/stats"
	"decepticon/internal/transformer"
	"decepticon/internal/zoo"
)

// readerFor adapts a victim weight value to Algorithm 1's bit reader.
func readerFor(victim float32) func(bit int) int {
	return func(bit int) int { return ieee754.Bit(victim, bit) }
}

func TestExtractWeightSkipsTinyWeights(t *testing.T) {
	cfg := DefaultConfig()
	clone, checked := cfg.ExtractWeight(0.0004, readerFor(0.0009))
	if len(checked) != 0 {
		t.Fatalf("tiny weight must not be read, checked %v", checked)
	}
	if clone != 0.0004 {
		t.Fatalf("tiny weight must copy the baseline, got %v", clone)
	}
}

func TestExtractWeightPaperExample(t *testing.T) {
	// Fig 13: pre-trained 0.018, fine-tuned 0.01908, expected gap ~0.002.
	cfg := DefaultConfig()
	base := float32(0.018)
	victim := float32(0.01908)
	clone, checked := cfg.ExtractWeight(base, readerFor(victim))
	if len(checked) != 2 {
		t.Fatalf("want 2 checked bits, got %v", checked)
	}
	// The two checked bits must be worth no more than the estimated gap
	// and at least ~a quarter of it (they "together cover" it).
	dist := cfg.gap(base)
	for _, k := range checked {
		v := ieee754.FractionBitValue(base, k)
		if v > dist {
			t.Fatalf("checked bit %d worth %v exceeds gap %v", k, v, dist)
		}
	}
	// The clone must land much closer to the victim than the baseline was.
	if math.Abs(float64(clone-victim)) >= math.Abs(float64(base-victim))/2 {
		t.Fatalf("clone %v no closer to victim %v than base %v", clone, victim, base)
	}
}

func TestExtractWeightTwoBitBudget(t *testing.T) {
	cfg := DefaultConfig()
	reads := 0
	cfg.ExtractWeight(0.25, func(bit int) int { reads++; return 0 })
	if reads > cfg.MaxBitsPerWeight {
		t.Fatalf("read %d bits, budget %d", reads, cfg.MaxBitsPerWeight)
	}
}

func TestExtractWeightPreservesSignAndExponent(t *testing.T) {
	cfg := DefaultConfig()
	f := func(u uint32) bool {
		base := math.Float32frombits(u)
		if base != base || math.IsInf(float64(base), 0) { // NaN/Inf
			return true
		}
		if math.Abs(float64(base)) > 100 {
			return true
		}
		clone, _ := cfg.ExtractWeight(base, readerFor(base*1.001))
		return ieee754.Sign(clone) == ieee754.Sign(base) &&
			ieee754.Exponent(clone) == ieee754.Exponent(base)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExtractWeightIdenticalVictim(t *testing.T) {
	// If fine-tuning did not change the weight, the clone is exact.
	cfg := DefaultConfig()
	f := func(u uint32) bool {
		base := math.Float32frombits(u)
		if base != base || math.IsInf(float64(base), 0) {
			return true
		}
		clone, _ := cfg.ExtractWeight(base, readerFor(base))
		return clone == base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// ---- end-to-end extraction over a real (pre, fine) pair ----

var (
	zooOnce sync.Once
	testZ   *zoo.Zoo
)

func getZoo(t *testing.T) *zoo.Zoo {
	t.Helper()
	zooOnce.Do(func() {
		cfg := zoo.SmallBuildConfig()
		cfg.NumPretrained = 4
		cfg.NumFineTuned = 4
		testZ = zoo.MustBuild(cfg)
	})
	return testZ
}

func runExtraction(t *testing.T, withStop bool) (*zoo.FineTuned, *transformer.Model, *Stats) {
	t.Helper()
	z := getZoo(t)
	victim := z.FineTuned[0]
	ex := &Extractor{
		Pre:    victim.Pretrained.Model(),
		Oracle: sidechannel.NewOracle(victim.Model()),
		Cfg:    DefaultConfig(),
	}
	if withStop {
		ex.Victim = victim.Model().Predict
	}
	clone, st, err := ex.Run(victim.Task.Labels, victim.Dev)
	if err != nil {
		t.Fatal(err)
	}
	return victim, clone, st
}

func TestEndToEndCloneMatchesVictim(t *testing.T) {
	victim, clone, st := runExtraction(t, false)
	vp := victim.Model().Predictions(victim.Dev)
	cp := clone.Predictions(victim.Dev)
	match := stats.MatchRate(vp, cp)
	if match < 0.9 {
		t.Fatalf("clone matches victim on %v of dev, want >= 0.9 (paper: 94%%)", match)
	}
	vAcc := victim.Model().Evaluate(victim.Dev)
	cAcc := clone.Evaluate(victim.Dev)
	if math.Abs(vAcc-cAcc) > 0.1 {
		t.Fatalf("clone accuracy %v far from victim %v", cAcc, vAcc)
	}
	if st.SignFlips > st.WeightsTotal/50 {
		t.Fatalf("too many sign flips: %d of %d", st.SignFlips, st.WeightsTotal)
	}
}

func TestSelectiveExtractionEfficiency(t *testing.T) {
	_, _, st := runExtraction(t, false)
	if st.WeightsTotal == 0 || st.HeadWeights == 0 {
		t.Fatal("empty accounting")
	}
	// Fig 16's headline shape: the overwhelming majority of weights and
	// bits never need the rowhammer channel.
	if got := st.WeightsCorrectlyPruned(); got < 0.8 {
		t.Fatalf("weights correctly pruned %v, want >= 0.8 (paper: ~0.9)", got)
	}
	if got := st.BitsCorrectlyExcluded(); got < 0.8 {
		t.Fatalf("bits correctly excluded %v, want >= 0.8 (paper: ~0.85)", got)
	}
	if got := st.ReductionFactor(); got < 5 {
		t.Fatalf("reduction factor %v, want >= 5 over full extraction", got)
	}
	// At most MaxBits per weight were read.
	if st.BitsChecked > int64(st.WeightsTotal*DefaultConfig().MaxBitsPerWeight) {
		t.Fatalf("read %d bits for %d weights", st.BitsChecked, st.WeightsTotal)
	}
	// Without majority voting the logical and physical views coincide.
	if st.PhysicalBitReads != st.LogicalBitsRead() {
		t.Fatalf("single reads: physical %d != logical %d", st.PhysicalBitReads, st.LogicalBitsRead())
	}
}

func TestEarlyStopReducesWork(t *testing.T) {
	_, _, full := runExtraction(t, false)
	_, cloneStop, stopped := runExtraction(t, true)
	if stopped.LayersExtracted > full.LayersExtracted {
		t.Fatal("stop condition increased work")
	}
	if stopped.QueriesUsed == 0 {
		t.Fatal("stop condition must query the victim")
	}
	// Even when stopping early the clone still matches well.
	victim := getZoo(t).FineTuned[0]
	match := stats.MatchRate(victim.Model().Predictions(victim.Dev), cloneStop.Predictions(victim.Dev))
	if match < 0.9 {
		t.Fatalf("early-stopped clone match %v < 0.9", match)
	}
}

func TestHeadFractionTiny(t *testing.T) {
	// Fig 16 right: the task head is a negligible fraction of the weights,
	// so full-reading it is cheap.
	victim, _, st := runExtraction(t, false)
	frac := float64(st.HeadWeights) / float64(victim.Model().ParamCount())
	if frac > 0.05 {
		t.Fatalf("head fraction %v too large for the argument to hold", frac)
	}
}

func TestStatsZeroSafe(t *testing.T) {
	var st Stats
	if st.SkipRate() != 0 || st.WeightsCorrectlyPruned() != 0 ||
		st.BitsCorrectlyExcluded() != 0 || st.BitsReadFraction() != 0 ||
		st.ReductionFactor() != 0 {
		t.Fatal("zero stats must not divide by zero")
	}
}

func TestMajorityVoteDefeatsNoisyReads(t *testing.T) {
	// A reader that lies deterministically every third call: single reads
	// are corrupted, 3-way majority voting recovers the truth.
	cfg := DefaultConfig()
	victim := float32(0.01908)
	calls := 0
	noisy := func(bit int) int {
		calls++
		b := ieee754.Bit(victim, bit)
		if calls%3 == 0 {
			return b ^ 1
		}
		return b
	}
	cfg.ReadRepeats = 3
	clone, checked := cfg.ExtractWeight(0.018, noisy)
	if len(checked) == 0 {
		t.Fatal("nothing checked")
	}
	// With voting, the clone must equal the noise-free extraction.
	cleanCfg := DefaultConfig()
	want, _ := cleanCfg.ExtractWeight(0.018, readerFor(victim))
	if clone != want {
		t.Fatalf("voted clone %v, want %v", clone, want)
	}
	if calls != 3*len(checked) {
		t.Fatalf("voting made %d reads for %d bits", calls, len(checked))
	}
}

func TestReadRepeatsEvenRoundsUp(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReadRepeats = 2
	reads := 0
	cfg.ExtractWeight(0.018, func(bit int) int { reads++; return 0 })
	if reads%3 != 0 {
		t.Fatalf("even repeats should round up to 3, got %d reads", reads)
	}
}

func TestLayerOrderAblation(t *testing.T) {
	// Last-first (the paper's schedule) must stop at least as early as
	// first-first, measured in bits read, because the head+late layers
	// carry the task (Table 1).
	z := getZoo(t)
	victim := z.FineTuned[0]
	run := func(firstFirst bool) *Stats {
		cfg := DefaultConfig()
		cfg.FirstLayersFirst = firstFirst
		ex := &Extractor{
			Pre:    victim.Pretrained.Model(),
			Oracle: sidechannel.NewOracle(victim.Model()),
			Cfg:    cfg,
			Victim: victim.Model().Predict,
		}
		_, st, err := ex.Run(victim.Task.Labels, victim.Dev)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	lastFirst := run(false)
	firstFirst := run(true)
	if lastFirst.BitsChecked > firstFirst.BitsChecked {
		t.Fatalf("last-first read %d bits, first-first %d — schedule advantage lost",
			lastFirst.BitsChecked, firstFirst.BitsChecked)
	}
	// At this scale the head + pre-trained backbone already matches the
	// victim, so the pre-loop stop check should spare every backbone bit.
	if lastFirst.LayersExtracted != 0 || lastFirst.BitsChecked != 0 {
		t.Logf("note: stop fired after %d layers (%d bits)", lastFirst.LayersExtracted, lastFirst.BitsChecked)
	}
}

// TestMajorityVoteMetering pins the logical/physical split end to end:
// with ReadRepeats = r the physical (metered) reads grow exactly ×r while
// the logical counts — and the clone itself on a clean channel — stay
// byte-identical, so every ReductionFactor/BitsReadFraction number is
// invariant under the repeat policy while HammerRounds scales with it.
func TestMajorityVoteMetering(t *testing.T) {
	z := getZoo(t)
	victim := z.FineTuned[0]
	run := func(repeats int, noise float64) (*transformer.Model, *Stats, *sidechannel.Oracle) {
		cfg := DefaultConfig()
		cfg.ReadRepeats = repeats
		oracle := sidechannel.NewOracle(victim.Model())
		if noise > 0 {
			oracle.SetNoise(noise, 0xfeed)
		}
		ex := &Extractor{Pre: victim.Pretrained.Model(), Oracle: oracle, Cfg: cfg}
		clone, st, err := ex.Run(victim.Task.Labels, victim.Dev)
		if err != nil {
			t.Fatal(err)
		}
		return clone, st, oracle
	}

	cleanSingle, base, _ := run(0, 0)
	cloneVoted, voted, oracle := run(3, 0)

	if voted.BitsChecked != base.BitsChecked || voted.HeadBitsRead != base.HeadBitsRead {
		t.Fatalf("logical counts changed under voting: %d/%d vs %d/%d",
			voted.BitsChecked, voted.HeadBitsRead, base.BitsChecked, base.HeadBitsRead)
	}
	if voted.PhysicalBitReads != 3*voted.LogicalBitsRead() {
		t.Fatalf("physical reads %d, want 3× logical %d", voted.PhysicalBitReads, voted.LogicalBitsRead())
	}
	if voted.HammerRounds() != oracle.HammerRounds() {
		t.Fatalf("stats hammer rounds %d != oracle meter %d", voted.HammerRounds(), oracle.HammerRounds())
	}
	if voted.ReductionFactor() != base.ReductionFactor() {
		t.Fatalf("reduction factor moved under voting: %v vs %v", voted.ReductionFactor(), base.ReductionFactor())
	}
	// On a clean channel voting must not change a single clone bit.
	wantP, gotP := cleanSingle.Params(), cloneVoted.Params()
	for i := range wantP {
		for j := range wantP[i].Value.Data {
			if wantP[i].Value.Data[j] != gotP[i].Value.Data[j] {
				t.Fatalf("clone weight %s[%d] changed under voting", wantP[i].Name, j)
			}
		}
	}

	// With a noisy channel the cost relation is unchanged: repeats are
	// metered whether or not a given read happened to flip.
	_, noisy, noisyOracle := run(3, 0.05)
	if noisy.PhysicalBitReads != 3*noisy.LogicalBitsRead() {
		t.Fatalf("noisy physical reads %d, want 3× logical %d", noisy.PhysicalBitReads, noisy.LogicalBitsRead())
	}
	if noisy.HammerRounds() != noisyOracle.HammerRounds() {
		t.Fatalf("noisy stats hammer rounds %d != oracle meter %d", noisy.HammerRounds(), noisyOracle.HammerRounds())
	}
}

// TestRunRejectsMismatchedAddressMap: an oracle over a different
// architecture is a malformed address map — Run must return an error
// before paying any rowhammer cost, not panic mid-campaign.
func TestRunRejectsMismatchedAddressMap(t *testing.T) {
	pre := transformer.New(transformer.Config{
		Name: "pre", Layers: 2, Hidden: 8, Heads: 2, FFN: 16,
		Vocab: 12, MaxSeq: 6, Labels: 3,
	}, 1)
	other := transformer.New(transformer.Config{
		Name: "other", Layers: 2, Hidden: 12, Heads: 2, FFN: 24,
		Vocab: 12, MaxSeq: 6, Labels: 3,
	}, 2)
	oracle := sidechannel.NewOracle(other)
	ex := &Extractor{Pre: pre, Oracle: oracle, Cfg: DefaultConfig()}
	clone, st, err := ex.Run(3, nil)
	if err == nil {
		t.Fatal("mismatched address map must be rejected")
	}
	if clone != nil || st != nil {
		t.Fatal("failed run must not hand back partial results")
	}
	if oracle.BitReads != 0 {
		t.Fatalf("rejection must precede metered reads, but %d were charged", oracle.BitReads)
	}
}

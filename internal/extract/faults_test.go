package extract

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"decepticon/internal/ieee754"
	"decepticon/internal/obs"
	"decepticon/internal/sidechannel"
	"decepticon/internal/transformer"
)

// TestNonFiniteBaselineNeverRead is the regression test for the
// non-finite guard: a NaN/±Inf baseline weight (a corrupted identified
// model) must be copied unread — gap() against it defeats every
// place-value comparison, and the old code burned hammer rounds reading
// bits into garbage.
func TestNonFiniteBaselineNeverRead(t *testing.T) {
	cfg := DefaultConfig()
	for _, base := range []float32{
		float32(math.NaN()),
		float32(math.Inf(1)),
		float32(math.Inf(-1)),
	} {
		reads := 0
		clone, checked, degraded, err := cfg.ExtractWeightErr(base, func(bit int) (int, error) {
			reads++
			return 1, nil
		})
		if err != nil {
			t.Fatalf("base %v: %v", base, err)
		}
		if reads != 0 || len(checked) != 0 || len(degraded) != 0 {
			t.Fatalf("base %v: %d reads, checked %v — non-finite baselines must stay unread",
				base, reads, checked)
		}
		if math.Float32bits(clone) != math.Float32bits(base) {
			t.Fatalf("base %v: clone %v not a bit-identical copy", base, clone)
		}
		// The quantized path shares the guard.
		qReads := 0
		_, qChecked := cfg.ExtractWeightFormat(base, ieee754.BFloat16, func(bit int) int {
			qReads++
			return 1
		})
		if qReads != 0 || len(qChecked) != 0 {
			t.Fatalf("base %v: quantized path read %d bits", base, qReads)
		}
	}
}

// TestEffectiveReadRepeatsSurfaced pins the even-ReadRepeats rounding
// into the public accounting: a configured even vote width silently pays
// one extra read per bit, and Stats must say so.
func TestEffectiveReadRepeatsSurfaced(t *testing.T) {
	cases := []struct{ configured, effective int }{
		{0, 1}, {1, 1}, {2, 3}, {3, 3}, {4, 5}, {5, 5},
	}
	for _, c := range cases {
		cfg := DefaultConfig()
		cfg.ReadRepeats = c.configured
		if got := cfg.EffectiveReadRepeats(); got != c.effective {
			t.Fatalf("ReadRepeats=%d: effective %d, want %d", c.configured, got, c.effective)
		}
	}

	z := getZoo(t)
	victim := z.FineTuned[0]
	cfg := DefaultConfig()
	cfg.ReadRepeats = 2
	ex := &Extractor{
		Pre:    victim.Pretrained.Model(),
		Oracle: sidechannel.NewOracle(victim.Model()),
		Cfg:    cfg,
	}
	_, st, err := ex.Run(victim.Task.Labels, victim.Dev)
	if err != nil {
		t.Fatal(err)
	}
	if st.EffectiveReadRepeats != 3 {
		t.Fatalf("stats effective repeats %d, want 3 for configured 2", st.EffectiveReadRepeats)
	}
	// The reconciliation the report printer relies on: physical cost is
	// exactly effective-repeats × logical, never configured × logical.
	if st.PhysicalBitReads != int64(st.EffectiveReadRepeats)*st.LogicalBitsRead() {
		t.Fatalf("physical %d != effective %d × logical %d",
			st.PhysicalBitReads, st.EffectiveReadRepeats, st.LogicalBitsRead())
	}
}

// smallPair builds a deterministic (pre, victim) pair sharing one
// architecture, for fault tests that need full control over tensor names
// without the zoo's training cost.
func smallPair() (*transformer.Model, *transformer.Model) {
	cfg := transformer.Config{
		Name: "pair", Layers: 2, Hidden: 8, Heads: 2, FFN: 16,
		Vocab: 12, MaxSeq: 6, Labels: 3,
	}
	return transformer.New(cfg, 1), transformer.New(cfg, 2)
}

// TestStuckBitsDegradeToBaseline: a tensor whose cells are stuck keeps
// its pre-trained baseline bits, bit by bit, while the run completes and
// accounts for every degraded position.
func TestStuckBitsDegradeToBaseline(t *testing.T) {
	pre, victim := smallPair()
	oracle := sidechannel.NewOracle(victim)
	const target = "block1.wq"
	oracle.SetFaultPlan(&sidechannel.FaultPlan{
		StuckRanges: []sidechannel.StuckRange{{Param: target, Bit: -1}},
	})
	ex := &Extractor{Pre: pre, Oracle: oracle, Cfg: DefaultConfig()}
	clone, st, err := ex.Run(victim.Config.Labels, nil)
	if err != nil {
		t.Fatalf("stuck cells must degrade, not fail the run: %v", err)
	}
	if st.BitsDegraded == 0 || st.WeightsDegraded == 0 {
		t.Fatalf("no degradation recorded: %+v", st)
	}
	if st.TensorsDegraded != 0 {
		t.Fatal("bit-level stuck cells must not degrade whole tensors")
	}
	if st.Coverage() >= 1 {
		t.Fatalf("coverage %v must drop below 1 under degradation", st.Coverage())
	}
	// Every weight of the stuck tensor equals the baseline: no bit of it
	// was readable, so Algorithm 1 must have kept every baseline bit.
	var got, want []float32
	for _, p := range clone.Params() {
		if p.Name == target {
			got = p.Value.Data
		}
	}
	for _, p := range pre.Params() {
		if p.Name == target {
			want = p.Value.Data
		}
	}
	if got == nil || want == nil {
		t.Fatalf("tensor %q missing from clone or baseline", target)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d]: %v != baseline %v despite stuck cells", target, i, got[i], want[i])
		}
	}
}

// TestPermanentOutageDegradesTensor: a permanently dead region makes the
// rest of that tensor fall back to the baseline wholesale — graceful
// degradation at tensor granularity, recorded by name.
func TestPermanentOutageDegradesTensor(t *testing.T) {
	pre, victim := smallPair()
	oracle := sidechannel.NewOracle(victim)
	const target = "block0.w1"
	oracle.SetFaultPlan(&sidechannel.FaultPlan{
		Outages: []sidechannel.Outage{{Param: target}}, // To == 0: permanent
	})
	ex := &Extractor{Pre: pre, Oracle: oracle, Cfg: DefaultConfig()}
	clone, st, err := ex.Run(victim.Config.Labels, nil)
	if err != nil {
		t.Fatalf("a dead region must degrade, not fail the run: %v", err)
	}
	if st.TensorsDegraded != 1 || len(st.DegradedTensors) != 1 || st.DegradedTensors[0] != target {
		t.Fatalf("degraded tensors %v (count %d), want exactly %q",
			st.DegradedTensors, st.TensorsDegraded, target)
	}
	for _, p := range clone.Params() {
		if p.Name != target {
			continue
		}
		for _, q := range pre.Params() {
			if q.Name != target {
				continue
			}
			for i := range p.Value.Data {
				if p.Value.Data[i] != q.Value.Data[i] {
					t.Fatalf("%s[%d] not degraded to baseline", target, i)
				}
			}
		}
	}
	if st.ReadFaults == 0 {
		t.Fatal("outage attempts must be accounted as read faults")
	}
	if st.ReadFaults != oracle.FaultedReads {
		t.Fatalf("stats read faults %d != oracle meter %d", st.ReadFaults, oracle.FaultedReads)
	}
}

// TestRetriesRideOutTransients: under a purely transient fault plan the
// retry/backoff stack recovers every bit — the clone is byte-identical to
// a fault-free extraction, at the price of retries and backoff rounds.
func TestRetriesRideOutTransients(t *testing.T) {
	pre, victim := smallPair()
	run := func(plan *sidechannel.FaultPlan) (*transformer.Model, *Stats, *sidechannel.Oracle) {
		oracle := sidechannel.NewOracle(victim)
		oracle.SetFaultPlan(plan)
		ex := &Extractor{Pre: pre, Oracle: oracle, Cfg: DefaultConfig()}
		clone, st, err := ex.Run(victim.Config.Labels, nil)
		if err != nil {
			t.Fatal(err)
		}
		return clone, st, oracle
	}
	clean, _, _ := run(nil)
	faulted, st, oracle := run(&sidechannel.FaultPlan{Seed: 5, TransientRate: 0.1, TransientRecovery: 2})

	if st.Retries == 0 || st.ReadFaults == 0 || st.BackoffRounds == 0 {
		t.Fatalf("transient plan exercised no retries: %+v", st)
	}
	// Backoff waits in simulated time: the clock outruns the attempt count.
	if oracle.Clock() <= oracle.BitReads+oracle.FaultedReads {
		t.Fatalf("clock %d did not advance past the %d attempts", oracle.Clock(), oracle.BitReads+oracle.FaultedReads)
	}
	if st.BitsDegraded != 0 || st.TensorsDegraded != 0 {
		// With recovery=2 < MaxAttempts=8 a transient run always ends
		// within one bit's retry budget unless re-triggered repeatedly.
		t.Logf("note: %d bits / %d tensors degraded under transients", st.BitsDegraded, st.TensorsDegraded)
	}
	cp, fp := clean.Params(), faulted.Params()
	for i := range cp {
		for j := range cp[i].Value.Data {
			if st.BitsDegraded == 0 && cp[i].Value.Data[j] != fp[i].Value.Data[j] {
				t.Fatalf("transient faults corrupted %s[%d]", cp[i].Name, j)
			}
		}
	}
}

// TestDeadChannelDegradesGracefully: a channel where every attempt faults
// (TransientRate=1 never yields a successful read) must still complete —
// everything degrades, nothing is extracted, nothing is charged as a
// successful bit read.
func TestDeadChannelDegradesGracefully(t *testing.T) {
	pre, victim := smallPair()
	oracle := sidechannel.NewOracle(victim)
	oracle.SetFaultPlan(&sidechannel.FaultPlan{Seed: 1, TransientRate: 1})
	ex := &Extractor{Pre: pre, Oracle: oracle, Cfg: DefaultConfig()}
	_, st, err := ex.Run(victim.Config.Labels, nil)
	if err != nil {
		t.Fatalf("dead channel must degrade, not fail: %v", err)
	}
	if oracle.BitReads != 0 {
		t.Fatalf("no read can succeed, yet %d were metered", oracle.BitReads)
	}
	if st.LogicalBitsRead() != 0 {
		t.Fatalf("logical reads %d on a dead channel", st.LogicalBitsRead())
	}
	if st.Escalations == 0 {
		t.Fatal("exhausted retries must escalate before degrading")
	}
	if st.Coverage() >= 1 {
		t.Fatalf("coverage %v on a dead channel", st.Coverage())
	}
	if st.ReadFaults != oracle.FaultedReads || st.ReadFaults == 0 {
		t.Fatalf("fault accounting: stats %d, oracle %d", st.ReadFaults, oracle.FaultedReads)
	}
}

// TestCheckpointResumeGolden is the tentpole acceptance test: an
// extraction interrupted by its read budget and resumed from the
// checkpoint must be byte-identical to an uninterrupted run — clone
// weights, the full Stats accounting, the oracle meters, and the obs
// counter registry — while re-paying zero hammer rounds.
func TestCheckpointResumeGolden(t *testing.T) {
	z := getZoo(t)
	victim := z.FineTuned[0]
	plan := &sidechannel.FaultPlan{Seed: 9, TransientRate: 0.02, StuckRate: 0.0003}
	cfg := DefaultConfig()
	cfg.ReadRepeats = 3

	newEx := func(reg *obs.Registry, path string, resume bool, budget int64) (*Extractor, *sidechannel.Oracle) {
		oracle := sidechannel.NewOracle(victim.Model())
		oracle.SetObs(reg)
		oracle.SetNoise(0.01, 0xfeed)
		oracle.SetFaultPlan(plan)
		return &Extractor{
			Pre:            victim.Pretrained.Model(),
			Oracle:         oracle,
			Cfg:            cfg,
			Victim:         victim.Model().Predict,
			Obs:            reg,
			CheckpointPath: path,
			Resume:         resume,
			ReadBudget:     budget,
		}, oracle
	}

	// Reference: one uninterrupted run.
	regA := obs.New()
	exA, oraA := newEx(regA, "", false, 0)
	cloneA, stA, err := exA.Run(victim.Task.Labels, victim.Dev)
	if err != nil {
		t.Fatal(err)
	}
	totalAttempts := oraA.BitReads + oraA.FaultedReads
	if totalAttempts < 4 {
		t.Fatalf("reference run too small to interrupt (%d attempts)", totalAttempts)
	}

	// Interrupted run: the budget kills it partway through.
	path := filepath.Join(t.TempDir(), "victim.ckpt")
	regB := obs.New()
	exB, oraB := newEx(regB, path, false, totalAttempts/2)
	_, _, err = exB.Run(victim.Task.Labels, victim.Dev)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("budget %d of %d attempts: want ErrInterrupted, got %v", totalAttempts/2, totalAttempts, err)
	}
	if oraB.BitReads == 0 {
		t.Fatal("interrupted run made no progress before the budget")
	}
	paidBefore := oraB.BitReads

	// Resumed run: same victim, plan, noise seed — fresh process state.
	regC := obs.New()
	exC, oraC := newEx(regC, path, true, 0)
	cloneC, stC, err := exC.Run(victim.Task.Labels, victim.Dev)
	if err != nil {
		t.Fatal(err)
	}

	// Zero re-paid hammer rounds: interrupted + fresh resumed reads add up
	// to exactly the uninterrupted total.
	if oraC.BitReads != oraA.BitReads || oraC.FaultedReads != oraA.FaultedReads {
		t.Fatalf("resumed meters (reads %d, faults %d) != uninterrupted (%d, %d)",
			oraC.BitReads, oraC.FaultedReads, oraA.BitReads, oraA.FaultedReads)
	}
	if fresh := oraC.BitReads - paidBefore; fresh <= 0 || fresh >= oraA.BitReads {
		t.Fatalf("resumed run paid %d fresh reads of %d total — resume did not actually split the work",
			fresh, oraA.BitReads)
	}

	// The full Stats accounting is byte-identical.
	if !reflect.DeepEqual(stA, stC) {
		t.Fatalf("stats diverge:\nuninterrupted: %+v\nresumed:       %+v", stA, stC)
	}

	// Clone weights are byte-identical.
	pa, pc := cloneA.Params(), cloneC.Params()
	for i := range pa {
		for j := range pa[i].Value.Data {
			if pa[i].Value.Data[j] != pc[i].Value.Data[j] {
				t.Fatalf("clone tensor %s differs at %d", pa[i].Name, j)
			}
		}
	}

	// The obs registries reconcile byte-for-byte (counters and gauges;
	// timers are wall-clock by definition).
	snapA, snapC := regA.Snapshot(), regC.Snapshot()
	if !reflect.DeepEqual(snapA.Counters, snapC.Counters) {
		t.Fatalf("counters diverge:\nuninterrupted: %v\nresumed:       %v", snapA.Counters, snapC.Counters)
	}
	if !reflect.DeepEqual(snapA.Gauges, snapC.Gauges) {
		t.Fatalf("gauges diverge:\nuninterrupted: %v\nresumed:       %v", snapA.Gauges, snapC.Gauges)
	}

	// Resuming a *completed* checkpoint short-circuits: stored result,
	// zero new channel traffic, same registry.
	regD := obs.New()
	exD, oraD := newEx(regD, path, true, 0)
	cloneD, stD, err := exD.Run(victim.Task.Labels, victim.Dev)
	if err != nil {
		t.Fatal(err)
	}
	if oraD.BitReads != oraA.BitReads || oraD.FaultedReads != oraA.FaultedReads {
		t.Fatal("re-resuming a complete checkpoint touched the channel")
	}
	if !reflect.DeepEqual(stA, stD) {
		t.Fatal("re-resumed stats diverge from the uninterrupted run")
	}
	pd := cloneD.Params()
	for i := range pa {
		for j := range pa[i].Value.Data {
			if pa[i].Value.Data[j] != pd[i].Value.Data[j] {
				t.Fatalf("re-resumed clone tensor %s differs at %d", pa[i].Name, j)
			}
		}
	}
	if snapD := regD.Snapshot(); !reflect.DeepEqual(snapA.Counters, snapD.Counters) {
		t.Fatalf("re-resumed counters diverge: %v vs %v", snapA.Counters, snapD.Counters)
	}
}

// countdownCtx is a context whose Err flips to context.Canceled after a
// fixed number of Err calls — a deterministic stand-in for a
// mid-extraction Ctrl-C that always lands at the same probe. Done
// returns a non-nil (never-closed) channel so RunContext takes the
// cancellable path and binds the oracle's per-read check.
type countdownCtx struct {
	context.Context
	mu        sync.Mutex
	remaining int64
	done      chan struct{}
}

func newCountdownCtx(remaining int64) *countdownCtx {
	return &countdownCtx{
		Context:   context.Background(),
		remaining: remaining,
		done:      make(chan struct{}),
	}
}

func (c *countdownCtx) Done() <-chan struct{} { return c.done }

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

// TestCancelResumeGolden is TestCheckpointResumeGolden's twin for the
// context door: an extraction cancelled mid-run must checkpoint and
// surface ErrInterrupted exactly like a read-budget exhaustion, and the
// resumed run must be byte-identical to an uninterrupted one — clone
// weights, Stats, oracle meters, and obs counters. Unlike the budget
// (checked only at tensor boundaries), cancellation can land mid-tensor;
// the boundary snapshot stands and the resumed run re-pays only that
// tensor's partial work, which must not perturb the final state.
func TestCancelResumeGolden(t *testing.T) {
	z := getZoo(t)
	victim := z.FineTuned[0]
	plan := &sidechannel.FaultPlan{Seed: 9, TransientRate: 0.02, StuckRate: 0.0003}
	cfg := DefaultConfig()
	cfg.ReadRepeats = 3

	newEx := func(reg *obs.Registry, path string, resume bool) (*Extractor, *sidechannel.Oracle) {
		oracle := sidechannel.NewOracle(victim.Model())
		oracle.SetObs(reg)
		oracle.SetNoise(0.01, 0xfeed)
		oracle.SetFaultPlan(plan)
		return &Extractor{
			Pre:            victim.Pretrained.Model(),
			Oracle:         oracle,
			Cfg:            cfg,
			Victim:         victim.Model().Predict,
			Obs:            reg,
			CheckpointPath: path,
			Resume:         resume,
		}, oracle
	}

	// Reference: one uninterrupted run.
	regA := obs.New()
	exA, oraA := newEx(regA, "", false)
	cloneA, stA, err := exA.Run(victim.Task.Labels, victim.Dev)
	if err != nil {
		t.Fatal(err)
	}
	totalAttempts := oraA.BitReads + oraA.FaultedReads
	if totalAttempts < 4 {
		t.Fatalf("reference run too small to cancel (%d attempts)", totalAttempts)
	}

	// Cancelled run: the countdown fires after roughly half the probes.
	path := filepath.Join(t.TempDir(), "victim.ckpt")
	regB := obs.New()
	exB, oraB := newEx(regB, path, false)
	_, _, err = exB.RunContext(newCountdownCtx(totalAttempts/2), victim.Task.Labels, victim.Dev)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("cancellation must surface as ErrInterrupted, got %v", err)
	}
	if oraB.BitReads == 0 {
		t.Fatal("cancelled run made no progress before the countdown")
	}
	if oraB.BitReads+oraB.FaultedReads >= totalAttempts {
		t.Fatalf("cancelled run paid all %d attempts — the countdown never fired mid-run", totalAttempts)
	}

	// Resumed run: fresh process state, uncancelled context.
	regC := obs.New()
	exC, oraC := newEx(regC, path, true)
	cloneC, stC, err := exC.Run(victim.Task.Labels, victim.Dev)
	if err != nil {
		t.Fatal(err)
	}

	// The resumed meters land exactly on the uninterrupted totals: the
	// checkpoint restored the boundary state and the replayed segment is
	// deterministic.
	if oraC.BitReads != oraA.BitReads || oraC.FaultedReads != oraA.FaultedReads {
		t.Fatalf("resumed meters (reads %d, faults %d) != uninterrupted (%d, %d)",
			oraC.BitReads, oraC.FaultedReads, oraA.BitReads, oraA.FaultedReads)
	}
	if !reflect.DeepEqual(stA, stC) {
		t.Fatalf("stats diverge:\nuninterrupted: %+v\nresumed:       %+v", stA, stC)
	}
	pa, pc := cloneA.Params(), cloneC.Params()
	for i := range pa {
		for j := range pa[i].Value.Data {
			if pa[i].Value.Data[j] != pc[i].Value.Data[j] {
				t.Fatalf("clone tensor %s differs at %d", pa[i].Name, j)
			}
		}
	}
	snapA, snapC := regA.Snapshot(), regC.Snapshot()
	if !reflect.DeepEqual(snapA.Counters, snapC.Counters) {
		t.Fatalf("counters diverge:\nuninterrupted: %v\nresumed:       %v", snapA.Counters, snapC.Counters)
	}
	if !reflect.DeepEqual(snapA.Gauges, snapC.Gauges) {
		t.Fatalf("gauges diverge:\nuninterrupted: %v\nresumed:       %v", snapA.Gauges, snapC.Gauges)
	}
}

// TestCancelledReadChargesNoMeter pins the property the resume identity
// rests on: an oracle read aborted by cancellation meters nothing and
// advances no clock, so replaying it is free.
func TestCancelledReadChargesNoMeter(t *testing.T) {
	_, victim := smallPair()
	oracle := sidechannel.NewOracle(victim)
	oracle.Bind(newCountdownCtx(0)) // already expired
	if _, err := oracle.ReadBit("block0.wq", 0, 30); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReadBit = %v, want context.Canceled", err)
	}
	if oracle.BitReads != 0 || oracle.FaultedReads != 0 || oracle.Clock() != 0 {
		t.Fatalf("aborted read metered: reads=%d faults=%d clock=%d",
			oracle.BitReads, oracle.FaultedReads, oracle.Clock())
	}
}

// TestCheckpointShapeGuard: a checkpoint written for one extraction shape
// must be refused by a resume against another — silently mixing shapes
// would corrupt the clone.
func TestCheckpointShapeGuard(t *testing.T) {
	pre, victim := smallPair()
	path := filepath.Join(t.TempDir(), "shape.ckpt")
	ex := &Extractor{
		Pre:            pre,
		Oracle:         sidechannel.NewOracle(victim),
		Cfg:            DefaultConfig(),
		CheckpointPath: path,
	}
	if _, _, err := ex.Run(victim.Config.Labels, nil); err != nil {
		t.Fatal(err)
	}
	ex2 := &Extractor{
		Pre:            pre,
		Oracle:         sidechannel.NewOracle(victim),
		Cfg:            DefaultConfig(),
		CheckpointPath: path,
		Resume:         true,
	}
	good, err := readCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	// A checkpoint recorded for a different victim shape is refused.
	bad := *good
	bad.NumLabels = good.NumLabels + 1
	if err := writeCheckpoint(path, &bad); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ex2.Run(victim.Config.Labels, nil); err == nil {
		t.Fatal("resume against a different victim shape must be refused")
	}
	// Version skew is refused too.
	bad = *good
	bad.Version = checkpointVersion + 1
	if err := writeCheckpoint(path, &bad); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ex2.Run(victim.Config.Labels, nil); err == nil {
		t.Fatal("resume across checkpoint versions must be refused")
	}
}

package extract

import (
	"errors"
	"path/filepath"
	"testing"

	"decepticon/internal/obs"
	"decepticon/internal/sidechannel"
)

// TestPlanTensorUnitsMatchesPlan pins planTensorUnits as an exact
// count of planTensor's candidate set — the invariant that makes
// planned progress units equal the bits either extraction path selects.
func TestPlanTensorUnitsMatchesPlan(t *testing.T) {
	cfg := DefaultConfig()
	bases := [][]float32{
		{0.018, -0.25, 0.0004, 7.5, 0, -0.003},
		{0.5, 0.5, 0.5},
		{},
		{float32(0.00001)},
	}
	z := getZoo(t)
	for _, p := range z.FineTuned[0].Pretrained.Model().Params() {
		bases = append(bases, p.Value.Data)
	}
	for i, base := range bases {
		want := int64(len(planTensor(cfg, base)))
		if got := planTensorUnits(cfg, base); got != want {
			t.Fatalf("case %d: planTensorUnits = %d, planTensor selects %d bits", i, got, want)
		}
	}
}

// extractWithProgress runs one extraction with a tracker attached and
// returns the item's event stream plus the final snapshot.
func extractWithProgress(t *testing.T, path string, resume bool, budget int64) ([]obs.ProgressEvent, obs.ProgressValue, error) {
	t.Helper()
	z := getZoo(t)
	victim := z.FineTuned[0]
	tr := obs.NewProgress()
	tr.SetTotalItems(1)
	var events []obs.ProgressEvent
	tr.OnEvent(func(ev obs.ProgressEvent) { events = append(events, ev) })
	oracle := sidechannel.NewOracle(victim.Model())
	ex := &Extractor{
		Pre:            victim.Pretrained.Model(),
		Oracle:         oracle,
		Cfg:            DefaultConfig(),
		Victim:         victim.Model().Predict,
		CheckpointPath: path,
		Resume:         resume,
		ReadBudget:     budget,
		Progress:       tr.Item(victim.Name),
	}
	_, _, err := ex.Run(victim.Task.Labels, victim.Dev)
	return events, tr.Snapshot(), err
}

// TestExtractionProgressMonotoneAndResumeExact drives the tentpole
// contract at the extract layer: completed units never regress, the
// final fraction is exactly 1.0, and an interrupted-then-resumed run
// ratchets through a prefix-exact subset of the uninterrupted run's
// sim-unit sequence, ending on identical totals.
func TestExtractionProgressMonotoneAndResumeExact(t *testing.T) {
	unitSeq := func(events []obs.ProgressEvent) []int64 {
		var seq []int64
		for _, ev := range events {
			if ev.Kind == obs.ProgressUnits {
				seq = append(seq, ev.Completed)
			}
		}
		return seq
	}
	checkMonotone := func(events []obs.ProgressEvent) {
		t.Helper()
		var last int64
		for _, ev := range events {
			if ev.Completed < last {
				t.Fatalf("completed regressed: %d after %d (event %+v)", ev.Completed, last, ev)
			}
			last = ev.Completed
			if ev.Planned > 0 && ev.Completed > ev.Planned {
				t.Fatalf("completed %d exceeds planned %d", ev.Completed, ev.Planned)
			}
		}
	}

	// Reference: uninterrupted.
	refEvents, refSnap, err := extractWithProgress(t, "", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkMonotone(refEvents)
	if refSnap.Fraction != 1.0 {
		t.Fatalf("final fraction = %g, want exactly 1.0", refSnap.Fraction)
	}
	if refSnap.PlannedUnits == 0 || refSnap.CompletedUnits != refSnap.PlannedUnits {
		t.Fatalf("final units = %d/%d, want equal and nonzero",
			refSnap.CompletedUnits, refSnap.PlannedUnits)
	}

	// Interrupt partway (budget at half the uninterrupted physical cost),
	// then resume from the checkpoint.
	path := filepath.Join(t.TempDir(), "victim.ckpt")
	half := refSnapBudget(t)
	intEvents, intSnap, err := extractWithProgress(t, path, false, half)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted at budget %d, got %v", half, err)
	}
	checkMonotone(intEvents)
	if intSnap.Fraction >= 1 || intSnap.CompletedUnits == 0 {
		t.Fatalf("interrupted snapshot = %+v, want partial progress", intSnap)
	}
	resEvents, resSnap, err := extractWithProgress(t, path, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkMonotone(resEvents)
	if resSnap.Fraction != 1.0 || resSnap.PlannedUnits != refSnap.PlannedUnits ||
		resSnap.CompletedUnits != refSnap.CompletedUnits {
		t.Fatalf("resumed final = %+v, uninterrupted = %+v", resSnap, refSnap)
	}

	// Resume-exactness: the interrupted run's boundary values followed by
	// the resumed run's fresh boundaries must replay the reference
	// sequence exactly (the resume's "restored" jump re-lands on the
	// interrupted run's last value).
	ref := unitSeq(refEvents)
	var combined []int64
	combined = append(combined, unitSeq(intEvents)...)
	for _, v := range unitSeq(resEvents) {
		if len(combined) > 0 && v == combined[len(combined)-1] {
			continue // the restored jump duplicates the last boundary
		}
		combined = append(combined, v)
	}
	if len(combined) != len(ref) {
		t.Fatalf("combined boundary count %d != reference %d\ncombined: %v\nref: %v",
			len(combined), len(ref), combined, ref)
	}
	for i := range ref {
		if combined[i] != ref[i] {
			t.Fatalf("boundary %d: combined %d != reference %d", i, combined[i], ref[i])
		}
	}
}

// refSnapBudget returns a read budget that lands mid-extraction for the
// shared test victim.
func refSnapBudget(t *testing.T) int64 {
	t.Helper()
	z := getZoo(t)
	victim := z.FineTuned[0]
	oracle := sidechannel.NewOracle(victim.Model())
	ex := &Extractor{
		Pre:    victim.Pretrained.Model(),
		Oracle: oracle,
		Cfg:    DefaultConfig(),
		Victim: victim.Model().Predict,
	}
	if _, _, err := ex.Run(victim.Task.Labels, victim.Dev); err != nil {
		t.Fatal(err)
	}
	return (oracle.BitReads + oracle.FaultedReads) / 2
}

package extract

import (
	"decepticon/internal/ieee754"
)

// ExtractWeightFormat runs Algorithm 1 against a victim whose weights are
// stored in the given floating-point format (§8 "Supporting Quantization
// and Pruning"): the attacker quantizes her pre-trained baseline to the
// victim's format, skips near-zero weights, and reads only the fraction
// bits whose place value covers the expected fine-tuning gap — "with
// slight bit adjustment", exactly as the paper says. read returns raw bit
// i (0 = LSB) of the victim's stored pattern. It returns the clone value
// decoded back to float32 and the checked fraction-bit indices
// (MSB-first), which for bfloat16 are the same indices as for float32
// because the two formats share an exponent layout.
func (c Config) ExtractWeightFormat(base float32, fm ieee754.Format, read func(bit int) int) (float32, []int) {
	pattern := fm.Quantize(base)
	// Same guard as ExtractWeightErr: a non-finite baseline defeats the
	// place-value bracket (every comparison against a NaN/Inf gap is
	// false) and would read garbage bits at hammer cost.
	if !isFinite(base) {
		return fm.Value(pattern), nil
	}
	absBase := base
	if absBase < 0 {
		absBase = -absBase
	}
	if float64(absBase) < c.SkipThreshold {
		return fm.Value(pattern), nil
	}
	dist := c.gap(base)
	clone := pattern
	var checked []int
	for k := 1; k <= fm.FracBits && len(checked) < c.MaxBitsPerWeight; k++ {
		if fm.FractionBitValue(pattern, k) > dist {
			continue
		}
		bit := read(fm.FracBits - k)
		clone = fm.SetFractionBit(clone, k, bit)
		checked = append(checked, k)
	}
	return fm.Value(clone), checked
}

// QuantizedTensorStats extracts a whole quantized tensor and reports the
// outcome: victim holds the fine-tuned weights (quantized on read), base
// the pre-trained float32 weights.
type QuantizedTensorStats struct {
	Format        string
	Weights       int
	BitsRead      int
	WithinGap     int // |clone - victim| within the expected gap
	MeanAbsErr    float64
	FullBitsTotal int // cost of DeepSteal-style full readout in this format
}

// ExtractQuantizedTensor runs the format-aware extraction over aligned
// base/victim weight slices.
func (c Config) ExtractQuantizedTensor(fm ieee754.Format, base, victim []float32) QuantizedTensorStats {
	st := QuantizedTensorStats{Format: fm.Name, Weights: len(base), FullBitsTotal: len(base) * fm.Bits()}
	var errSum float64
	for i := range base {
		vPattern := fm.Quantize(victim[i])
		clone, checked := c.ExtractWeightFormat(base[i], fm, func(bit int) int {
			return fm.Bit(vPattern, bit)
		})
		st.BitsRead += len(checked)
		vq := fm.Value(vPattern)
		err := float64(clone - vq)
		if err < 0 {
			err = -err
		}
		errSum += err
		if err <= c.gap(base[i]) {
			st.WithinGap++
		}
	}
	if len(base) > 0 {
		st.MeanAbsErr = errSum / float64(len(base))
	}
	return st
}

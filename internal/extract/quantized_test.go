package extract

import (
	"testing"

	"decepticon/internal/ieee754"
	"decepticon/internal/rng"
)

func TestQuantizedPaperExampleBFloat16(t *testing.T) {
	// §8: for the Fig 13 example, bfloat16 checks the same fraction-bit
	// indices as float32 because the exponent layout matches.
	cfg := DefaultConfig()
	base := float32(0.018)
	victim := float32(0.01908)

	_, checked32 := cfg.ExtractWeight(base, readerFor(victim))
	vb := ieee754.BFloat16.Quantize(victim)
	_, checkedBF := cfg.ExtractWeightFormat(base, ieee754.BFloat16, func(bit int) int {
		return ieee754.BFloat16.Bit(vb, bit)
	})
	if len(checkedBF) == 0 {
		t.Fatal("bfloat16 extraction checked nothing")
	}
	for i, k := range checkedBF {
		if i >= len(checked32) || checked32[i] != k {
			t.Fatalf("bfloat16 checked bits %v, float32 checked %v — paper says they match", checkedBF, checked32)
		}
	}
}

func TestQuantizedSkipsTinyWeights(t *testing.T) {
	cfg := DefaultConfig()
	for _, fm := range []ieee754.Format{ieee754.Binary16, ieee754.BFloat16} {
		clone, checked := cfg.ExtractWeightFormat(0.0004, fm, func(bit int) int { return 0 })
		if len(checked) != 0 {
			t.Fatalf("%s: tiny weight read %v", fm.Name, checked)
		}
		if diff := clone - 0.0004; diff > 0.0002 || diff < -0.0002 {
			t.Fatalf("%s: skipped clone %v too far from base", fm.Name, clone)
		}
	}
}

func TestQuantizedTensorAllFormats(t *testing.T) {
	// Synthetic (pre, fine) pair: fine = pre + small decay-flavored update.
	r := rng.New(1)
	n := 4000
	base := make([]float32, n)
	victim := make([]float32, n)
	for i := range base {
		if r.Float64() < 0.7 {
			base[i] = r.Normal(0, 0.0004)
		} else {
			base[i] = r.Normal(0, 0.05)
		}
		victim[i] = base[i] + r.Normal(0, 0.0008) - 0.01*base[i]
	}
	cfg := DefaultConfig()
	for _, fm := range []ieee754.Format{ieee754.Binary32, ieee754.Binary16, ieee754.BFloat16} {
		st := cfg.ExtractQuantizedTensor(fm, base, victim)
		if st.Weights != n {
			t.Fatalf("%s: weights %d", fm.Name, st.Weights)
		}
		if st.BitsRead > n*cfg.MaxBitsPerWeight {
			t.Fatalf("%s: read %d bits", fm.Name, st.BitsRead)
		}
		frac := float64(st.WithinGap) / float64(n)
		if frac < 0.85 {
			t.Fatalf("%s: only %.2f within gap", fm.Name, frac)
		}
		if reduction := float64(st.FullBitsTotal) / float64(st.BitsRead); reduction < 4 {
			t.Fatalf("%s: reduction %.1fx too small", fm.Name, reduction)
		}
	}
}

func TestQuantizedCloneTracksVictim(t *testing.T) {
	// When fine-tuning flipped exactly the checked bits, the quantized
	// clone equals the quantized victim.
	cfg := DefaultConfig()
	fm := ieee754.BFloat16
	base := float32(0.018)
	vb := fm.Quantize(float32(0.0185))
	clone, _ := cfg.ExtractWeightFormat(base, fm, func(bit int) int { return fm.Bit(vb, bit) })
	victim := fm.Value(vb)
	if d := clone - victim; d > 0.001 || d < -0.001 {
		t.Fatalf("clone %v vs victim %v", clone, victim)
	}
}

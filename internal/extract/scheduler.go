// Information-ordered bit-read scheduling (DESIGN.md §12). The
// index-ordered extractTensor spends identical effort on every candidate
// bit; at 2048 hammer rounds per physical read that uniformity is the
// dominant cost. The scheduler keeps Algorithm 1's bit *selection*
// unchanged but re-plans each tensor around where the hammer rounds buy
// information:
//
//   - ordering: candidate fraction bits are read in descending order of
//     expected value correction — place value weighted by how likely the
//     estimated fine-tuning gap (U-shape aware, Config.gap) is to have
//     flipped a bit of that magnitude — so an interrupt or early exit
//     lands after the valuable reads, not after the alphabetically early
//     ones;
//   - adaptive voting: the majority-vote width per bit is derived from the
//     channel's *observed* silent-disagreement rate instead of the global
//     ReadRepeats constant, clamped to the configured width so the
//     scheduler can only ever read fewer physical bits than the baseline;
//     periodic wide probes keep the estimate live once the width drops;
//   - posterior early exit: once enough of a tensor's high-value bits have
//     been read and confidently almost none differ from the pre-trained
//     baseline (a Hoeffding bound on the observed change rate), the
//     remaining — strictly lower-value — planned bits are elided and the
//     baseline bits kept.
//
// Everything is deterministic and worker-count invariant: the plan is a
// pure function of (Config, baseline tensor), and the estimator state is
// serialized into checkpoints so an interrupted-then-resumed run stays
// byte-identical with an uninterrupted one.
package extract

import (
	"math"
	"sort"

	"decepticon/internal/ieee754"
)

// SchedulerConfig tunes the information-ordered scheduler. The zero value
// (Enabled == false) keeps the index-ordered PR-5 extraction path
// byte-identical; enabling with zero knobs applies the defaults below.
type SchedulerConfig struct {
	// Enabled switches tensor extraction to the information-ordered path.
	Enabled bool
	// ExitChangeRate is the posterior-convergence threshold: a tensor
	// early-exits once the fraction of read bits that differ from the
	// pre-trained baseline is confidently below this (default 0.05).
	ExitChangeRate float64
	// ExitConfidence is the one-sided confidence of the Hoeffding bound
	// behind the early exit (default 0.99).
	ExitConfidence float64
	// MinExitSamples is the minimum number of bits read from a tensor
	// before an early exit may trigger (default 256).
	MinExitSamples int
	// VoteErrorTarget is the residual majority-vote error budget for a
	// bit whose place value equals the full estimated gap; lower-value
	// bits scale the budget up by gap/value (a wrong low bit moves the
	// clone less than the gap already allows). Default 0.001.
	VoteErrorTarget float64
	// ProbeInterval widens every Nth single-read bit back to a 3-vote
	// probe so the disagreement estimate keeps tracking a drifting
	// channel after the adaptive width has dropped to 1 (default 64).
	ProbeInterval int
}

// DefaultSchedulerConfig returns the enabled scheduler at its default
// operating point.
func DefaultSchedulerConfig() SchedulerConfig {
	return SchedulerConfig{
		Enabled:         true,
		ExitChangeRate:  0.05,
		ExitConfidence:  0.99,
		MinExitSamples:  256,
		VoteErrorTarget: 0.001,
		ProbeInterval:   64,
	}
}

// withDefaults fills zero knobs from DefaultSchedulerConfig, preserving
// Enabled.
func (s SchedulerConfig) withDefaults() SchedulerConfig {
	def := DefaultSchedulerConfig()
	if s.ExitChangeRate <= 0 {
		s.ExitChangeRate = def.ExitChangeRate
	}
	if s.ExitConfidence <= 0 || s.ExitConfidence >= 1 {
		s.ExitConfidence = def.ExitConfidence
	}
	if s.MinExitSamples <= 0 {
		s.MinExitSamples = def.MinExitSamples
	}
	if s.VoteErrorTarget <= 0 {
		s.VoteErrorTarget = def.VoteErrorTarget
	}
	if s.ProbeInterval <= 0 {
		s.ProbeInterval = def.ProbeInterval
	}
	return s
}

// SchedulerState is the serializable position of the adaptive-vote
// estimator. It rides in every checkpoint: the chosen vote width is a
// deterministic function of this state, so restoring it is what keeps a
// resumed run's read sequence — and therefore the channel position —
// byte-identical to an uninterrupted run's.
type SchedulerState struct {
	// VoteReads counts successful raw reads inside multi-read votes.
	VoteReads int64
	// MinorityReads counts the reads that lost those votes — the only
	// observable evidence of silent bit flips the channel offers.
	MinorityReads int64
	// SinceProbe counts single-read bits since the last wide probe.
	SinceProbe int64
}

// scheduler is the per-run scheduling state: configuration, the
// configured vote-width clamp, and the disagreement estimator.
type scheduler struct {
	cfg   SchedulerConfig
	maxW  int // configured EffectiveReadRepeats — the hard width clamp
	state SchedulerState
}

func newScheduler(cfg SchedulerConfig, maxWidth int) *scheduler {
	if maxWidth < 1 {
		maxWidth = 1
	}
	return &scheduler{cfg: cfg.withDefaults(), maxW: maxWidth}
}

// flipRate is the smoothed estimate of the channel's silent-disagreement
// probability: minority votes over total votes with a Beta(1,1) prior, so
// a fresh scheduler starts cautious (rate 0.5) and converges as evidence
// accumulates.
func (s *scheduler) flipRate() float64 {
	return float64(s.state.MinorityReads+1) / float64(s.state.VoteReads+2)
}

// majorityError returns the probability that a width-r majority vote over
// i.i.d. flips of probability d returns the wrong bit: P[Binomial(r, d) >
// r/2]. r is odd and small (≤ the configured vote width).
func majorityError(r int, d float64) float64 {
	if r <= 1 {
		return d
	}
	var p float64
	for k := r/2 + 1; k <= r; k++ {
		p += float64(binomial(r, k)) * math.Pow(d, float64(k)) * math.Pow(1-d, float64(r-k))
	}
	return p
}

func binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var c int64 = 1
	for i := 0; i < k; i++ {
		c = c * int64(n-i) / int64(i+1)
	}
	return c
}

// chooseWidth picks the vote width for one scheduled bit read: the
// narrowest odd width whose residual majority error under the estimated
// flip rate fits the bit's error budget, clamped to the configured
// EffectiveReadRepeats — never wider than the baseline would vote. Every
// ProbeInterval-th read that would go out single is widened back to a
// 3-vote probe (only when the configured width allows ≥3) so the
// estimate cannot freeze on a drifting channel.
func (s *scheduler) chooseWidth(value, gap float64, st *Stats) int {
	if s.maxW <= 1 {
		return 1
	}
	// A bit worth `value` inside an expected gap of `gap` tolerates
	// proportionally more vote error: a wrong low-place bit perturbs the
	// clone by less than the gap-sized uncertainty it already carries.
	target := s.cfg.VoteErrorTarget
	if value > 0 && gap > value {
		target *= gap / value
		if target > 0.25 {
			target = 0.25
		}
	}
	d := s.flipRate()
	width := s.maxW
	for r := 1; r < s.maxW; r += 2 {
		if majorityError(r, d) <= target {
			width = r
			break
		}
	}
	if width == 1 {
		s.state.SinceProbe++
		if s.state.SinceProbe >= int64(s.cfg.ProbeInterval) && s.maxW >= 3 {
			s.state.SinceProbe = 0
			st.ProbeReads++
			width = 3
		}
	}
	st.VoteWidthSum += int64(width)
	st.VoteWidthN++
	return width
}

// update feeds one vote's tally into the disagreement estimator. Votes of
// width < 2 carry no disagreement signal; escalated reads (votes == 0)
// are excluded — their failures are visible faults, not silent flips.
func (s *scheduler) update(ones, votes int) {
	if votes < 2 {
		return
	}
	minority := ones
	if 2*ones > votes {
		minority = votes - ones
	}
	s.state.VoteReads += int64(votes)
	s.state.MinorityReads += int64(minority)
}

// converged reports whether a tensor's bit posterior has settled: after
// at least MinExitSamples reads, the observed change rate plus a
// one-sided Hoeffding slack at ExitConfidence lies below ExitChangeRate.
// The remaining (strictly lower-value) planned bits can then be elided.
func (s *scheduler) converged(reads, changed int) bool {
	c := s.cfg
	if reads < c.MinExitSamples {
		return false
	}
	slack := math.Sqrt(math.Log(1/(1-c.ExitConfidence)) / (2 * float64(reads)))
	return float64(changed)/float64(reads)+slack < c.ExitChangeRate
}

// bitTask is one planned fraction-bit read.
type bitTask struct {
	idx   int     // weight index within the tensor
	k     int     // fraction bit, MSB-first (ieee754 convention)
	value float64 // place value 2^(e-k)
	gap   float64 // the weight's estimated fine-tuning gap
	score float64 // expected value correction — the schedule key
}

// planTensor builds the tensor's information-ordered read plan. Candidate
// bits are exactly the ones index-ordered Algorithm 1 would read (same
// skip threshold, same place-value bracket, same per-weight cap); only
// the order changes. The score is the bit's expected |value correction|:
// its place value times a monotone estimate of the flip probability
// value/gap implies — U-shape aware through Config.gap, which grows with
// the pre-trained magnitude. Ties (and everything else) break on (idx, k)
// so the plan is a pure, deterministic function of (Config, base).
func planTensor(cfg Config, base []float32) []bitTask {
	var tasks []bitTask
	for i, b := range base {
		if !isFinite(b) {
			continue
		}
		ab := b
		if ab < 0 {
			ab = -ab
		}
		if float64(ab) < cfg.SkipThreshold {
			continue
		}
		dist := cfg.gap(b)
		n := 0
		for k := 1; k <= ieee754.FractionBits && n < cfg.MaxBitsPerWeight; k++ {
			v := ieee754.FractionBitValue(ab, k)
			if v > dist {
				continue
			}
			tasks = append(tasks, bitTask{
				idx:   i,
				k:     k,
				value: v,
				gap:   dist,
				score: v * dist / (dist + 2*v),
			})
			n++
		}
	}
	sort.SliceStable(tasks, func(a, b int) bool {
		ta, tb := tasks[a], tasks[b]
		if ta.score != tb.score {
			return ta.score > tb.score
		}
		if ta.idx != tb.idx {
			return ta.idx < tb.idx
		}
		return ta.k < tb.k
	})
	return tasks
}

// planTensorUnits counts the tensor's candidate bit set — exactly
// len(planTensor(cfg, base)) — without building or sorting the plan.
// The candidate selection is shared by the scheduled and index-ordered
// paths (the scheduler only reorders Algorithm 1's bit set), so this is
// the planned simulated-unit total a ProgressTracker commits to for a
// selective tensor on either path: a pure function of (Config, base),
// worker-invariant and stable across checkpoint/resume.
func planTensorUnits(cfg Config, base []float32) int64 {
	var units int64
	for _, b := range base {
		if !isFinite(b) {
			continue
		}
		ab := b
		if ab < 0 {
			ab = -ab
		}
		if float64(ab) < cfg.SkipThreshold {
			continue
		}
		dist := cfg.gap(b)
		n := 0
		for k := 1; k <= ieee754.FractionBits && n < cfg.MaxBitsPerWeight; k++ {
			if ieee754.FractionBitValue(ab, k) > dist {
				continue
			}
			n++
		}
		units += int64(n)
	}
	return units
}

package extract

import (
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"decepticon/internal/ieee754"
	"decepticon/internal/obs"
	"decepticon/internal/sidechannel"
	"decepticon/internal/transformer"
)

// TestPlanTensorMatchesAlgorithmOne: the scheduler must reorder, never
// reselect — the planned (weight, bit) set is exactly what index-ordered
// Algorithm 1 would read on a clean channel.
func TestPlanTensorMatchesAlgorithmOne(t *testing.T) {
	cfg := DefaultConfig()
	pre, _ := smallPair()
	for _, p := range pre.Params() {
		if p.IsHead {
			continue
		}
		base := p.Value.Data
		want := map[[2]int]bool{}
		for i, b := range base {
			_, checked := cfg.ExtractWeight(b, func(bit int) int { return 0 })
			for _, k := range checked {
				want[[2]int{i, k}] = true
			}
		}
		plan := planTensor(cfg, base)
		got := map[[2]int]bool{}
		for _, task := range plan {
			key := [2]int{task.idx, task.k}
			if got[key] {
				t.Fatalf("%s: duplicate task %v", p.Name, key)
			}
			got[key] = true
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: plan selects %d bits, Algorithm 1 selects %d", p.Name, len(got), len(want))
		}
	}
}

// TestPlanTensorOrdering: descending score, deterministic tie-break on
// (idx, k), and a pure function of (Config, base).
func TestPlanTensorOrdering(t *testing.T) {
	cfg := DefaultConfig()
	pre, _ := smallPair()
	base := pre.Params()[0].Value.Data
	plan := planTensor(cfg, base)
	if len(plan) == 0 {
		t.Fatal("empty plan for a dense tensor")
	}
	for i := 1; i < len(plan); i++ {
		a, b := plan[i-1], plan[i]
		if a.score < b.score {
			t.Fatalf("plan not in descending score order at %d: %v then %v", i, a.score, b.score)
		}
		if a.score == b.score && (a.idx > b.idx || (a.idx == b.idx && a.k >= b.k)) {
			t.Fatalf("tie at %d not broken by (idx, k): %+v then %+v", i, a, b)
		}
	}
	again := planTensor(cfg, base)
	if !reflect.DeepEqual(plan, again) {
		t.Fatal("planTensor is not deterministic")
	}
}

// TestChooseWidthAdaptsAndClamps: a fresh estimator votes at the full
// configured width; clean evidence narrows it to single reads (with
// periodic probes); the width never exceeds the clamp.
func TestChooseWidthAdaptsAndClamps(t *testing.T) {
	cfg := DefaultSchedulerConfig()
	sc := newScheduler(cfg, 3)
	st := &Stats{}

	if w := sc.chooseWidth(0.001, 0.003, st); w != 3 {
		t.Fatalf("fresh estimator chose width %d, want the configured 3", w)
	}
	// Feed clean unanimous votes until the flip-rate estimate collapses.
	for i := 0; i < 2000; i++ {
		sc.update(3, 3)
	}
	narrow := sc.chooseWidth(0.001, 0.003, st)
	if narrow != 1 {
		t.Fatalf("clean channel evidence left width at %d, want 1", narrow)
	}
	// The probe cadence must widen every ProbeInterval-th single read.
	probesBefore := st.ProbeReads
	wide := 0
	for i := 0; i < cfg.ProbeInterval*3; i++ {
		if w := sc.chooseWidth(0.001, 0.003, st); w == 3 {
			wide++
		} else if w != 1 {
			t.Fatalf("unexpected width %d", w)
		}
	}
	if wide != 3 || st.ProbeReads-probesBefore != 3 {
		t.Fatalf("got %d probes over 3 intervals (counter %d), want 3",
			wide, st.ProbeReads-probesBefore)
	}

	// A noisy channel keeps the vote wide for top-value bits.
	noisy := newScheduler(cfg, 5)
	for i := 0; i < 500; i++ {
		noisy.update(1, 3) // heavy disagreement
	}
	if w := noisy.chooseWidth(0.003, 0.003, st); w != 5 {
		t.Fatalf("noisy channel narrowed a top-value bit to %d", w)
	}
	// Width is always clamped to the configured EffectiveReadRepeats.
	one := newScheduler(cfg, 1)
	for i := 0; i < 10; i++ {
		if w := one.chooseWidth(0.001, 0.003, st); w != 1 {
			t.Fatalf("maxW=1 scheduler chose width %d", w)
		}
	}
}

// TestConvergedHoeffding: no exit before MinExitSamples, exit on a long
// unchanged streak, no exit while the change rate sits above threshold.
func TestConvergedHoeffding(t *testing.T) {
	sc := newScheduler(DefaultSchedulerConfig(), 1)
	if sc.converged(sc.cfg.MinExitSamples-1, 0) {
		t.Fatal("converged before MinExitSamples")
	}
	if !sc.converged(5000, 0) {
		t.Fatal("5000 unchanged reads must converge")
	}
	if sc.converged(5000, 5000/10) {
		t.Fatal("a 10% change rate must never converge below a 5% threshold")
	}
}

// schedCfg returns cfg with the scheduler enabled at defaults.
func schedCfg(cfg Config) Config {
	cfg.Schedule = DefaultSchedulerConfig()
	return cfg
}

func cloneMatchRate(clone, victim *transformer.Model, dev []transformer.Example) float64 {
	if len(dev) == 0 {
		return 0
	}
	n := 0
	for _, ex := range dev {
		if clone.Predict(ex.Tokens) == victim.Predict(ex.Tokens) {
			n++
		}
	}
	return float64(n) / float64(len(dev))
}

// TestScheduledNeverReadsMorePhysicalBits is the satellite property test:
// at equal StopMatchRate, the scheduled extraction never performs more
// physical bit reads than the index-ordered baseline — the adaptive width
// is clamped to EffectiveReadRepeats and early exit only removes reads.
// Checked on clean and silently-noisy channels across vote widths and
// victims.
func TestScheduledNeverReadsMorePhysicalBits(t *testing.T) {
	z := getZoo(t)
	for _, repeats := range []int{0, 3} {
		for _, noise := range []float64{0, 0.004} {
			for _, vi := range []int{0, 1} {
				victim := z.FineTuned[vi]
				run := func(cfg Config) (int64, float64) {
					oracle := sidechannel.NewOracle(victim.Model())
					if noise > 0 {
						oracle.SetNoise(noise, 0xabc)
					}
					ex := &Extractor{
						Pre:    victim.Pretrained.Model(),
						Oracle: oracle,
						Cfg:    cfg,
						Victim: victim.Model().Predict,
					}
					clone, st, err := ex.Run(victim.Task.Labels, victim.Dev)
					if err != nil {
						t.Fatal(err)
					}
					if st.PhysicalBitReads != oracle.BitReads {
						t.Fatalf("stats physical reads %d != oracle meter %d", st.PhysicalBitReads, oracle.BitReads)
					}
					return st.PhysicalBitReads, cloneMatchRate(clone, victim.Model(), victim.Dev)
				}
				cfg := DefaultConfig()
				cfg.ReadRepeats = repeats
				// Same (disabled) stop condition on both sides: the pre
				// backbone of these small victims already satisfies the
				// default StopMatchRate once the head is read, which would
				// reduce both runs to the identical head-only prefix.
				cfg.StopMatchRate = 2
				basePhys, baseMatch := run(cfg)
				schedPhys, schedMatch := run(schedCfg(cfg))
				if schedPhys > basePhys {
					t.Fatalf("repeats=%d noise=%v victim=%d: scheduled %d physical reads > baseline %d",
						repeats, noise, vi, schedPhys, basePhys)
				}
				if schedMatch < baseMatch-0.02 {
					t.Fatalf("repeats=%d noise=%v victim=%d: scheduled match %.3f fell below baseline %.3f",
						repeats, noise, vi, schedMatch, baseMatch)
				}
			}
		}
	}
}

// TestScheduledSavesOnFaultedChannel pins the headline acceptance number:
// on a faulted (visible-error) channel at the voted operating point, the
// scheduler reaches the same clone match rate with ≥1.5× fewer physical
// bit reads — faults are retried in the open, so the adaptive vote
// discovers there is nothing silent to vote away.
func TestScheduledSavesOnFaultedChannel(t *testing.T) {
	z := getZoo(t)
	victim := z.FineTuned[0]
	plan := &sidechannel.FaultPlan{
		Seed: 7, TransientRate: 0.02, TransientRecovery: 2,
		StuckRate: 0.0002, OutageRate: 0.0005, OutagePeriod: 2000,
	}
	run := func(cfg Config) (*Stats, float64) {
		oracle := sidechannel.NewOracle(victim.Model())
		oracle.SetFaultPlan(plan.ForVictim(victim.Name))
		ex := &Extractor{
			Pre:    victim.Pretrained.Model(),
			Oracle: oracle,
			Cfg:    cfg,
			Victim: victim.Model().Predict,
		}
		clone, st, err := ex.Run(victim.Task.Labels, victim.Dev)
		if err != nil {
			t.Fatal(err)
		}
		return st, cloneMatchRate(clone, victim.Model(), victim.Dev)
	}
	cfg := DefaultConfig()
	cfg.ReadRepeats = 3
	cfg.StopMatchRate = 2 // compare full extractions, not the head-only prefix
	baseSt, baseMatch := run(cfg)
	schedSt, schedMatch := run(schedCfg(cfg))

	if schedMatch < baseMatch {
		t.Fatalf("scheduled match %.4f < baseline %.4f", schedMatch, baseMatch)
	}
	ratio := float64(baseSt.PhysicalBitReads) / float64(schedSt.PhysicalBitReads)
	if ratio < 1.5 {
		t.Fatalf("physical-read ratio %.2f (%d vs %d), want ≥ 1.5",
			ratio, baseSt.PhysicalBitReads, schedSt.PhysicalBitReads)
	}
	if schedSt.MeanVoteWidth() >= float64(cfg.EffectiveReadRepeats()) {
		t.Fatalf("mean vote width %.2f never adapted below the configured %d",
			schedSt.MeanVoteWidth(), cfg.EffectiveReadRepeats())
	}
}

// TestScheduledRunDeterministic: two identical scheduled runs are
// byte-identical — clone, Stats, and oracle meters.
func TestScheduledRunDeterministic(t *testing.T) {
	z := getZoo(t)
	victim := z.FineTuned[2]
	run := func() (*transformer.Model, *Stats, *sidechannel.Oracle) {
		oracle := sidechannel.NewOracle(victim.Model())
		oracle.SetNoise(0.005, 0x5eed5)
		cfg := schedCfg(DefaultConfig())
		cfg.ReadRepeats = 3
		cfg.StopMatchRate = 2 // full extraction — exercise the scheduled path
		ex := &Extractor{
			Pre:    victim.Pretrained.Model(),
			Oracle: oracle,
			Cfg:    cfg,
			Victim: victim.Model().Predict,
		}
		clone, st, err := ex.Run(victim.Task.Labels, victim.Dev)
		if err != nil {
			t.Fatal(err)
		}
		return clone, st, oracle
	}
	cloneA, stA, oraA := run()
	cloneB, stB, oraB := run()
	if !reflect.DeepEqual(stA, stB) {
		t.Fatalf("stats diverge:\n%+v\n%+v", stA, stB)
	}
	if oraA.BitReads != oraB.BitReads || oraA.Clock() != oraB.Clock() {
		t.Fatal("oracle meters diverge between identical scheduled runs")
	}
	pa, pb := cloneA.Params(), cloneB.Params()
	for i := range pa {
		for j := range pa[i].Value.Data {
			if math.Float32bits(pa[i].Value.Data[j]) != math.Float32bits(pb[i].Value.Data[j]) {
				t.Fatalf("clone tensor %s differs at %d", pa[i].Name, j)
			}
		}
	}
}

// TestScheduledCheckpointResumeGolden is TestCheckpointResumeGolden under
// the information-ordered scheduler: interrupt by read budget, resume,
// and demand byte-identity — clone, Stats (including the scheduler
// accounting), oracle meters, and obs counters. The estimator state rides
// in the checkpoint; without it the resumed run's vote widths, and hence
// the whole channel sequence, would drift.
func TestScheduledCheckpointResumeGolden(t *testing.T) {
	z := getZoo(t)
	victim := z.FineTuned[0]
	plan := &sidechannel.FaultPlan{Seed: 9, TransientRate: 0.02, StuckRate: 0.0003}
	cfg := schedCfg(DefaultConfig())
	cfg.ReadRepeats = 3
	cfg.StopMatchRate = 2 // full extraction — exercise the scheduled path

	newEx := func(reg *obs.Registry, path string, resume bool, budget int64) (*Extractor, *sidechannel.Oracle) {
		oracle := sidechannel.NewOracle(victim.Model())
		oracle.SetObs(reg)
		oracle.SetNoise(0.01, 0xfeed)
		oracle.SetFaultPlan(plan)
		return &Extractor{
			Pre:            victim.Pretrained.Model(),
			Oracle:         oracle,
			Cfg:            cfg,
			Victim:         victim.Model().Predict,
			Obs:            reg,
			CheckpointPath: path,
			Resume:         resume,
			ReadBudget:     budget,
		}, oracle
	}

	regA := obs.New()
	exA, oraA := newEx(regA, "", false, 0)
	cloneA, stA, err := exA.Run(victim.Task.Labels, victim.Dev)
	if err != nil {
		t.Fatal(err)
	}
	if stA.VoteWidthN == 0 {
		t.Fatal("scheduler never chose a width — the scheduled path did not run")
	}
	totalAttempts := oraA.Attempts()
	if totalAttempts < 4 {
		t.Fatalf("reference run too small to interrupt (%d attempts)", totalAttempts)
	}

	path := filepath.Join(t.TempDir(), "victim.ckpt")
	regB := obs.New()
	exB, oraB := newEx(regB, path, false, totalAttempts/2)
	_, _, err = exB.Run(victim.Task.Labels, victim.Dev)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	if oraB.BitReads == 0 {
		t.Fatal("interrupted run made no progress")
	}
	paidBefore := oraB.BitReads

	regC := obs.New()
	exC, oraC := newEx(regC, path, true, 0)
	cloneC, stC, err := exC.Run(victim.Task.Labels, victim.Dev)
	if err != nil {
		t.Fatal(err)
	}
	if oraC.BitReads != oraA.BitReads || oraC.FaultedReads != oraA.FaultedReads {
		t.Fatalf("resumed meters (reads %d, faults %d) != uninterrupted (%d, %d)",
			oraC.BitReads, oraC.FaultedReads, oraA.BitReads, oraA.FaultedReads)
	}
	if fresh := oraC.BitReads - paidBefore; fresh <= 0 || fresh >= oraA.BitReads {
		t.Fatalf("resume did not split the work (%d fresh of %d)", fresh, oraA.BitReads)
	}
	if !reflect.DeepEqual(stA, stC) {
		t.Fatalf("stats diverge:\nuninterrupted: %+v\nresumed:       %+v", stA, stC)
	}
	pa, pc := cloneA.Params(), cloneC.Params()
	for i := range pa {
		for j := range pa[i].Value.Data {
			if pa[i].Value.Data[j] != pc[i].Value.Data[j] {
				t.Fatalf("clone tensor %s differs at %d", pa[i].Name, j)
			}
		}
	}
	snapA, snapC := regA.Snapshot(), regC.Snapshot()
	if !reflect.DeepEqual(snapA.Counters, snapC.Counters) {
		t.Fatalf("counters diverge:\nuninterrupted: %v\nresumed:       %v", snapA.Counters, snapC.Counters)
	}
	if !reflect.DeepEqual(snapA.Gauges, snapC.Gauges) {
		t.Fatalf("gauges diverge:\nuninterrupted: %v\nresumed:       %v", snapA.Gauges, snapC.Gauges)
	}
}

// TestScheduledEarlyExitElides: on a victim whose backbone fine-tuning
// barely moved, the posterior converges and elides planned bits — and the
// elision is visible in Stats.
func TestScheduledEarlyExitElides(t *testing.T) {
	// A victim equal to its baseline everywhere: every read bit matches,
	// so every tensor bigger than MinExitSamples converges.
	pre, _ := smallPair()
	victim := pre
	oracle := sidechannel.NewOracle(victim)
	cfg := schedCfg(DefaultConfig())
	// These tensors are small: loosen the posterior so the Hoeffding
	// slack (≈0.27 at 32 reads) can clear the threshold.
	cfg.Schedule.MinExitSamples = 32
	cfg.Schedule.ExitChangeRate = 0.3
	ex := &Extractor{Pre: pre, Oracle: oracle, Cfg: cfg}
	_, st, err := ex.Run(victim.Config.Labels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.TensorsConverged == 0 || st.BitsElided == 0 {
		t.Fatalf("identical victim produced no early exits: %+v", st)
	}
	if st.BitsChecked+st.BitsElided == 0 {
		t.Fatal("no bits planned at all")
	}
}

// TestScheduledStuckBitsKeepBaseline mirrors the baseline degradation
// semantics on the scheduled path: stuck cells keep baseline bits and are
// accounted, without failing the run.
func TestScheduledStuckBitsKeepBaseline(t *testing.T) {
	pre, victim := smallPair()
	oracle := sidechannel.NewOracle(victim)
	const target = "block1.wq"
	oracle.SetFaultPlan(&sidechannel.FaultPlan{
		StuckRanges: []sidechannel.StuckRange{{Param: target, Bit: -1}},
	})
	ex := &Extractor{Pre: pre, Oracle: oracle, Cfg: schedCfg(DefaultConfig())}
	clone, st, err := ex.Run(victim.Config.Labels, nil)
	if err != nil {
		t.Fatalf("stuck cells must degrade, not fail: %v", err)
	}
	if st.BitsDegraded == 0 || st.WeightsDegraded == 0 {
		t.Fatalf("no degradation recorded: %+v", st)
	}
	var got, want []float32
	for _, p := range clone.Params() {
		if p.Name == target {
			got = p.Value.Data
		}
	}
	for _, p := range pre.Params() {
		if p.Name == target {
			want = p.Value.Data
		}
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d] diverged from baseline despite stuck cells", target, i)
		}
	}
}

// TestSchedulerStateRoundTrip: the estimator state must survive the gob
// checkpoint round trip field by field.
func TestSchedulerStateRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.ckpt")
	in := &Checkpoint{
		Version: checkpointVersion,
		Sched:   SchedulerState{VoteReads: 123, MinorityReads: 7, SinceProbe: 41},
	}
	if err := writeCheckpoint(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := readCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Sched != in.Sched {
		t.Fatalf("scheduler state %+v round-tripped to %+v", in.Sched, out.Sched)
	}
}

// TestFractionBitRoundTrip guards the raw-index arithmetic the scheduler
// shares with Algorithm 1: fraction bit k (MSB-first) is raw bit
// FractionBits-k.
func TestFractionBitRoundTrip(t *testing.T) {
	w := float32(0.40625)
	for k := 1; k <= ieee754.FractionBits; k++ {
		raw := ieee754.FractionBits - k
		if ieee754.Bit(w, raw) != ieee754.FractionBit(w, k) {
			t.Fatalf("bit k=%d raw=%d disagree", k, raw)
		}
	}
}

// Package fingerprint implements the paper's pre-trained model extractor
// (§5.4): a CNN image classifier over rendered time-series kernel
// execution traces. Trace images of both pre-trained models and their
// fine-tuned descendants are labeled with the *pre-trained* model name;
// because fine-tuned models inherit their release's execution fingerprint,
// the classifier recovers the pre-trained model of an unseen black-box
// victim.
package fingerprint

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"decepticon/internal/gpusim"
	"decepticon/internal/nn"
	"decepticon/internal/obs"
	"decepticon/internal/parallel"
	"decepticon/internal/rng"
	"decepticon/internal/stats"
	"decepticon/internal/tensor"
	"decepticon/internal/traceimg"
	"decepticon/internal/zoo"
)

// Sample is one labeled trace measurement.
type Sample struct {
	Trace *gpusim.Trace
	// Label is the index into Dataset.Classes of the trace's pre-trained
	// model.
	Label int
	// FromModel is the model the trace was measured from (a pre-trained
	// model or one of its fine-tuned descendants).
	FromModel string
}

// Dataset is a labeled trace corpus.
type Dataset struct {
	Samples []Sample
	Classes []string // pre-trained model names
}

// classIndex builds the class list from a zoo.
func classIndex(z *zoo.Zoo) ([]string, map[string]int) {
	classes := make([]string, len(z.Pretrained))
	idx := make(map[string]int, len(classes))
	for i, p := range z.Pretrained {
		classes[i] = p.Name
		idx[p.Name] = i
	}
	return classes, idx
}

// BuildDataset measures samplesPerModel jittered traces of every
// pre-trained and fine-tuned model in the zoo, labeled with the
// pre-trained model name (§5.4.2: "we labeled each graph image with each
// model's pre-trained model name"). Measurements run on workers
// goroutines (<= 0 selects GOMAXPROCS); each sample derives its
// measurement seed from the model name and sample index, so the dataset
// is identical for any worker count.
func BuildDataset(z *zoo.Zoo, samplesPerModel int, seed uint64, workers int) *Dataset {
	classes, idx := classIndex(z)
	d := &Dataset{Classes: classes}

	type unit struct {
		name, preName string
		trace         func(gpusim.Options) *gpusim.Trace
		release       func()
	}
	units := make([]unit, 0, len(z.Pretrained)+len(z.FineTuned))
	for _, p := range z.Pretrained {
		units = append(units, unit{p.Name, p.Name, p.Trace, p.Release})
	}
	for _, f := range z.FineTuned {
		units = append(units, unit{f.Name, f.Pretrained.Name, f.Trace, f.Release})
	}

	perModel := parallel.Map(len(units), workers, func(i int) []Sample {
		u := units[i]
		out := make([]Sample, samplesPerModel)
		for s := 0; s < samplesPerModel; s++ {
			opt := gpusim.Options{
				MeasureSeed:     rng.Seed("measure", u.name, fmt.Sprint(s)) ^ seed,
				JitterMagnitude: 0.3,
			}
			out[s] = Sample{Trace: u.trace(opt), Label: idx[u.preName], FromModel: u.name}
		}
		// Tracing a fine-tuned victim loads its tensors (head-pruning
		// masks live there); drop store-backed ones as soon as the unit
		// is measured so dataset construction over a 10× lazy zoo keeps
		// only one model's working set per worker. No-op for resident
		// populations.
		u.release()
		return out
	})
	for _, samples := range perModel {
		d.Samples = append(d.Samples, samples...)
	}
	return d
}

// AugmentNoise appends copies of every sample with count kernels
// perturbed by ±magnitude µs each — train-time noise augmentation, which
// an attacker gets for free by keeping noisy measurements instead of
// discarding them. It is what makes the CNN noise-tolerant in practice.
// Perturbation runs on workers goroutines (<= 0 selects GOMAXPROCS); the
// per-sample perturbation seed fixes the appended order and content
// regardless of worker count.
func (d *Dataset) AugmentNoise(copies, count int, magnitude float64, seed uint64, workers int) {
	orig := d.Samples
	noisy := parallel.Map(copies*len(orig), workers, func(j int) Sample {
		c, i := j/len(orig), j%len(orig)
		s := orig[i]
		t := s.Trace.Clone()
		t.PerturbKernels(count, magnitude, seed^uint64(c*1000003+i))
		return Sample{Trace: t, Label: s.Label, FromModel: s.FromModel}
	})
	d.Samples = append(d.Samples, noisy...)
}

// Split partitions the dataset into train and test portions (the paper
// uses 80/20), shuffled deterministically.
func (d *Dataset) Split(trainFrac float64, seed uint64) (train, test *Dataset) {
	r := rng.New(seed)
	perm := r.Perm(len(d.Samples))
	cut := int(float64(len(perm)) * trainFrac)
	train = &Dataset{Classes: d.Classes}
	test = &Dataset{Classes: d.Classes}
	for i, p := range perm {
		if i < cut {
			train.Samples = append(train.Samples, d.Samples[p])
		} else {
			test.Samples = append(test.Samples, d.Samples[p])
		}
	}
	return train, test
}

// Classifier is the CNN model extractor. The architecture follows §5.4.2
// (two conv+pool stages, three fully connected layers), adapted to the
// reproduction's image resolution (see DESIGN.md §2).
type Classifier struct {
	ImgSize int
	Classes []string
	// Workers bounds the goroutines used for trace preprocessing and
	// batch evaluation; <= 0 selects GOMAXPROCS. It is a runtime knob,
	// not part of the model: Save/LoadClassifier do not persist it, and
	// results are identical for any value.
	Workers int
	// Obs, when set, receives the level-1 accounting: train/eval wall
	// time (fingerprint.train_seconds, fingerprint.eval_seconds) and CNN
	// forward counts (fingerprint.forwards). Like Workers it is a runtime
	// knob and is not persisted.
	Obs *obs.Registry
	net *nn.Sequential
}

// NewClassifier builds an untrained classifier for imgSize×imgSize
// grayscale trace images. imgSize must be 32 or 64.
func NewClassifier(imgSize int, classes []string, seed uint64) *Classifier {
	r := rng.New(seed)
	var layers []nn.Layer
	switch imgSize {
	case 64:
		conv1 := nn.NewConv2D(1, 6, 5, 64, 64, r.Derive("c1"))  // -> 6x60x60
		pool1 := nn.NewMaxPool2D(6, 60, 60, 4)                  // -> 6x15x15
		conv2 := nn.NewConv2D(6, 16, 4, 15, 15, r.Derive("c2")) // -> 16x12x12
		pool2 := nn.NewMaxPool2D(16, 12, 12, 4)                 // -> 16x3x3
		layers = []nn.Layer{
			conv1, nn.NewReLU(), pool1,
			conv2, nn.NewReLU(), pool2,
			nn.NewDense(16*3*3, 120, r.Derive("f1")), nn.NewReLU(),
			nn.NewDense(120, 84, r.Derive("f2")), nn.NewReLU(),
			nn.NewDense(84, len(classes), r.Derive("f3")),
		}
	case 32:
		conv1 := nn.NewConv2D(1, 6, 5, 32, 32, r.Derive("c1")) // -> 6x28x28
		pool1 := nn.NewMaxPool2D(6, 28, 28, 4)                 // -> 6x7x7
		conv2 := nn.NewConv2D(6, 16, 4, 7, 7, r.Derive("c2"))  // -> 16x4x4
		pool2 := nn.NewMaxPool2D(16, 4, 4, 2)                  // -> 16x2x2
		layers = []nn.Layer{
			conv1, nn.NewReLU(), pool1,
			conv2, nn.NewReLU(), pool2,
			nn.NewDense(16*2*2, 84, r.Derive("f2")), nn.NewReLU(),
			nn.NewDense(84, len(classes), r.Derive("f3")),
		}
	default:
		panic(fmt.Sprintf("fingerprint: unsupported image size %d (use 32 or 64)", imgSize))
	}
	return &Classifier{ImgSize: imgSize, Classes: classes, net: nn.NewSequential(layers...)}
}

// preprocess converts a trace to the classifier's input row: memcpy
// filtering (bus transfers are a separate event type), XLA-region
// stripping (§5.4.3), then rendering.
func (c *Classifier) preprocess(t *gpusim.Trace) []float32 {
	return traceimg.Render(traceimg.StripXLA(traceimg.StripMemcpy(t)), c.ImgSize).Pix
}

// matrixOf renders a dataset into an input matrix plus labels. Rendering
// is pure per sample and each worker writes a disjoint row, so the
// matrix is independent of the worker count.
func (c *Classifier) matrixOf(d *Dataset) (*tensor.Matrix, []int) {
	x := tensor.New(len(d.Samples), c.ImgSize*c.ImgSize)
	labels := make([]int, len(d.Samples))
	parallel.ForEach(len(d.Samples), c.Workers, func(i int) {
		s := d.Samples[i]
		copy(x.Row(i), c.preprocess(s.Trace))
		labels[i] = s.Label
	})
	return x, labels
}

// TrainConfig controls classifier training. The paper trains with LR 0.001
// for 10 epochs.
type TrainConfig struct {
	Epochs int
	LR     float64
	Seed   uint64
}

// Train fits the classifier on the dataset and returns the final mean loss.
func (c *Classifier) Train(d *Dataset, cfg TrainConfig) float64 {
	return c.TrainContext(context.Background(), d, cfg)
}

// TrainContext is Train with cooperative cancellation: the context is
// polled before each epoch, so a cancelled training stops at the next
// epoch boundary and returns the loss of the last completed epoch.
// Callers that need to distinguish a full training from an aborted one
// check ctx.Err() afterwards.
func (c *Classifier) TrainContext(ctx context.Context, d *Dataset, cfg TrainConfig) float64 {
	defer c.Obs.StartSpan("fingerprint.train_seconds").End()
	c.Obs.Counter("fingerprint.train_samples").Add(int64(len(d.Samples)))
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	if cfg.LR == 0 {
		cfg.LR = 0.001
	}
	// Pipeline-lane span: the clock advances by epochs × samples, the
	// deterministic unit of level-1 training work.
	pipe := c.Obs.Tracer().Track(obs.PidPipeline, 0, "pipeline")
	sp := pipe.Begin("fingerprint.train",
		obs.A("samples", len(d.Samples)), obs.A("epochs", cfg.Epochs))
	defer sp.End()
	defer pipe.Advance(int64(cfg.Epochs * len(d.Samples)))
	x, labels := c.matrixOf(d)
	loss := c.net.Fit(x, labels, nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: 16,
		Optimizer: nn.NewAdamW(cfg.LR, 0),
		Seed:      cfg.Seed,
		Stop:      func() bool { return ctx.Err() != nil },
	})
	c.Obs.Log().Info("fingerprint classifier trained",
		"samples", len(d.Samples), "epochs", cfg.Epochs, "loss", loss)
	return loss
}

// Predict returns the pre-trained model name for a trace.
func (c *Classifier) Predict(t *gpusim.Trace) string {
	return c.Classes[c.predictIdx(t)]
}

func (c *Classifier) predictIdx(t *gpusim.Trace) int {
	c.Obs.Counter("fingerprint.forwards").Inc()
	x := tensor.FromSlice(1, c.ImgSize*c.ImgSize, c.preprocess(t))
	return c.net.Predict(x)[0]
}

// PredictTopK returns the k most likely pre-trained model names, most
// likely first.
func (c *Classifier) PredictTopK(t *gpusim.Trace, k int) []string {
	x := tensor.FromSlice(1, c.ImgSize*c.ImgSize, c.preprocess(t))
	logits := c.net.Forward(x, false).Row(0)
	idx := stats.TopK(logits, k)
	out := make([]string, len(idx))
	for i, j := range idx {
		out[i] = c.Classes[j]
	}
	return out
}

// Accuracy returns classification accuracy over a dataset. Samples are
// classified concurrently (eval-mode forwards do not touch the network's
// training caches); the correct count aggregates after the join.
func (c *Classifier) Accuracy(d *Dataset) float64 {
	acc, _ := c.AccuracyContext(context.Background(), d)
	return acc
}

// AccuracyContext is Accuracy with cooperative cancellation: each sample
// checks the context before classifying, and a cancelled evaluation
// returns ctx's error instead of a partial accuracy.
func (c *Classifier) AccuracyContext(ctx context.Context, d *Dataset) (float64, error) {
	defer c.Obs.StartSpan("fingerprint.eval_seconds").End()
	if len(d.Samples) == 0 {
		return 0, nil
	}
	hits, err := parallel.MapErrCtx(ctx, len(d.Samples), c.Workers, func(ctx context.Context, i int) (bool, error) {
		return c.predictIdx(d.Samples[i].Trace) == d.Samples[i].Label, nil
	})
	if err != nil {
		return 0, err
	}
	correct := 0
	for _, h := range hits {
		if h {
			correct++
		}
	}
	acc := float64(correct) / float64(len(d.Samples))
	c.Obs.Log().Debug("fingerprint accuracy evaluated",
		"samples", len(d.Samples), "accuracy", acc)
	return acc, nil
}

// NoiseAccuracy evaluates the Fig 14 noise sweeps: every test trace gets
// count kernels perturbed by ±magnitude µs before classification. The
// perturbation seed is a function of the sample index, so the sweep is
// identical for any worker count.
func (c *Classifier) NoiseAccuracy(d *Dataset, count int, magnitude float64, seed uint64) float64 {
	acc, _ := c.NoiseAccuracyContext(context.Background(), d, count, magnitude, seed)
	return acc
}

// NoiseAccuracyContext is NoiseAccuracy with cooperative cancellation,
// under the same contract as AccuracyContext.
func (c *Classifier) NoiseAccuracyContext(ctx context.Context, d *Dataset, count int, magnitude float64, seed uint64) (float64, error) {
	defer c.Obs.StartSpan("fingerprint.eval_seconds").End()
	if len(d.Samples) == 0 {
		return 0, nil
	}
	hits, err := parallel.MapErrCtx(ctx, len(d.Samples), c.Workers, func(ctx context.Context, i int) (bool, error) {
		s := d.Samples[i]
		t := s.Trace.Clone()
		t.PerturbKernels(count, magnitude, seed^uint64(i))
		return c.predictIdx(t) == s.Label, nil
	})
	if err != nil {
		return 0, err
	}
	correct := 0
	for _, h := range hits {
		if h {
			correct++
		}
	}
	acc := float64(correct) / float64(len(d.Samples))
	c.Obs.Log().Debug("fingerprint noise accuracy evaluated",
		"samples", len(d.Samples), "kernels", count, "magnitude", magnitude,
		"accuracy", acc)
	return acc, nil
}

// CentroidBaseline is the ablation comparator for the CNN: a nearest-
// centroid classifier over the same images. It shows why the paper chose a
// noise-tolerant CNN (DESIGN.md §5).
type CentroidBaseline struct {
	ImgSize   int
	Classes   []string
	centroids []*tensor.Matrix
}

// NewCentroidBaseline fits per-class mean images.
func NewCentroidBaseline(d *Dataset, imgSize int) *CentroidBaseline {
	b := &CentroidBaseline{ImgSize: imgSize, Classes: d.Classes}
	counts := make([]int, len(d.Classes))
	b.centroids = make([]*tensor.Matrix, len(d.Classes))
	for i := range b.centroids {
		b.centroids[i] = tensor.New(1, imgSize*imgSize)
	}
	for _, s := range d.Samples {
		pix := traceimg.Render(traceimg.StripXLA(traceimg.StripMemcpy(s.Trace)), imgSize).Pix
		row := b.centroids[s.Label].Data
		for j, v := range pix {
			row[j] += v
		}
		counts[s.Label]++
	}
	for i, n := range counts {
		if n > 0 {
			b.centroids[i].Scale(1 / float32(n))
		}
	}
	return b
}

// Predict returns the nearest-centroid class name for a trace.
func (b *CentroidBaseline) Predict(t *gpusim.Trace) string {
	pix := traceimg.Render(traceimg.StripXLA(traceimg.StripMemcpy(t)), b.ImgSize).Pix
	best, bestDist := 0, -1.0
	for i, c := range b.centroids {
		var dist float64
		for j, v := range pix {
			dv := float64(v - c.Data[j])
			dist += dv * dv
		}
		if bestDist < 0 || dist < bestDist {
			best, bestDist = i, dist
		}
	}
	return b.Classes[best]
}

// Accuracy returns the baseline's accuracy over a dataset.
func (b *CentroidBaseline) Accuracy(d *Dataset) float64 {
	if len(d.Samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range d.Samples {
		if b.Predict(s.Trace) == d.Classes[s.Label] {
			correct++
		}
	}
	return float64(correct) / float64(len(d.Samples))
}

// classifierExport is the gob wire format of a trained classifier.
type classifierExport struct {
	ImgSize int
	Classes []string
	Tensors [][]float32
}

// Save writes the trained classifier to w. The architecture is a pure
// function of (ImgSize, len(Classes)), so only the weights travel.
func (c *Classifier) Save(w io.Writer) error {
	exp := classifierExport{ImgSize: c.ImgSize, Classes: c.Classes}
	for _, p := range c.net.Params() {
		exp.Tensors = append(exp.Tensors, p.Data)
	}
	if err := gob.NewEncoder(w).Encode(exp); err != nil {
		return fmt.Errorf("fingerprint: save: %w", err)
	}
	return nil
}

// LoadClassifier reads a classifier previously written by Save.
func LoadClassifier(r io.Reader) (*Classifier, error) {
	var exp classifierExport
	if err := gob.NewDecoder(r).Decode(&exp); err != nil {
		return nil, fmt.Errorf("fingerprint: load: %w", err)
	}
	c := NewClassifier(exp.ImgSize, exp.Classes, 0)
	params := c.net.Params()
	if len(params) != len(exp.Tensors) {
		return nil, fmt.Errorf("fingerprint: load: %d tensors, want %d", len(exp.Tensors), len(params))
	}
	for i, p := range params {
		if len(exp.Tensors[i]) != len(p.Data) {
			return nil, fmt.Errorf("fingerprint: load: tensor %d has %d values, want %d",
				i, len(exp.Tensors[i]), len(p.Data))
		}
		copy(p.Data, exp.Tensors[i])
	}
	return c, nil
}

// ConfusionPairs returns the distinct (true, predicted) class-name pairs of
// the classifier's test errors, sorted — useful for verifying that the
// remaining confusion sits inside the profile-ambiguity clusters.
func (c *Classifier) ConfusionPairs(d *Dataset) []string {
	set := map[string]struct{}{}
	for _, s := range d.Samples {
		got := c.predictIdx(s.Trace)
		if got != s.Label {
			set[d.Classes[s.Label]+" -> "+c.Classes[got]] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

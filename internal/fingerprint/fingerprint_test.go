package fingerprint

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"

	"decepticon/internal/gpusim"
	"decepticon/internal/zoo"
)

var (
	zooOnce sync.Once
	testZ   *zoo.Zoo
	clfOnce sync.Once
	testClf *Classifier
	trainD  *Dataset
	testD   *Dataset
)

func getZoo(t *testing.T) *zoo.Zoo {
	t.Helper()
	zooOnce.Do(func() { testZ = zoo.MustBuild(zoo.TraceOnlyBuildConfig()) })
	return testZ
}

func getTrained(t *testing.T) (*Classifier, *Dataset, *Dataset) {
	t.Helper()
	z := getZoo(t)
	clfOnce.Do(func() {
		d := BuildDataset(z, 5, 1, 2)
		trainD, testD = d.Split(0.8, 2)
		testClf = NewClassifier(64, d.Classes, 3)
		testClf.Train(trainD, TrainConfig{Epochs: 60, LR: 0.002, Seed: 4})
	})
	return testClf, trainD, testD
}

func TestBuildDataset(t *testing.T) {
	z := getZoo(t)
	d := BuildDataset(z, 3, 1, 0)
	wantSamples := 3 * (len(z.Pretrained) + len(z.FineTuned))
	if len(d.Samples) != wantSamples {
		t.Fatalf("dataset has %d samples, want %d", len(d.Samples), wantSamples)
	}
	if len(d.Classes) != len(z.Pretrained) {
		t.Fatalf("classes %d, want %d", len(d.Classes), len(z.Pretrained))
	}
	// Fine-tuned samples are labeled with their pre-trained model.
	for _, s := range d.Samples {
		if strings.Contains(s.FromModel, "__ft-") {
			f := z.FineTunedByName(s.FromModel)
			if d.Classes[s.Label] != f.Pretrained.Name {
				t.Fatalf("sample from %s labeled %s", s.FromModel, d.Classes[s.Label])
			}
		}
	}
	// Repeated measurements of one model differ (jitter) but only slightly.
	a, b := d.Samples[0].Trace, d.Samples[1].Trace
	if a.Duration() == b.Duration() {
		t.Fatal("jittered measurements should differ")
	}
}

func TestSplitDisjointAndComplete(t *testing.T) {
	z := getZoo(t)
	d := BuildDataset(z, 2, 1, 0)
	train, test := d.Split(0.8, 7)
	if len(train.Samples)+len(test.Samples) != len(d.Samples) {
		t.Fatal("split lost samples")
	}
	if len(test.Samples) == 0 {
		t.Fatal("empty test split")
	}
}

func TestSplitTinyDatasetEdges(t *testing.T) {
	z := getZoo(t)
	d := BuildDataset(z, 1, 1, 0)
	// trainFrac 1.0: everything trains, the test split is empty but
	// well-formed (usable with Accuracy etc. without panicking).
	train, test := d.Split(1.0, 3)
	if len(train.Samples) != len(d.Samples) {
		t.Fatalf("trainFrac=1.0 kept %d of %d samples", len(train.Samples), len(d.Samples))
	}
	if len(test.Samples) != 0 {
		t.Fatalf("trainFrac=1.0 test split has %d samples, want 0", len(test.Samples))
	}
	if len(test.Classes) != len(d.Classes) {
		t.Fatal("empty split must keep the class list")
	}
	// trainFrac 0: mirror image.
	train0, test0 := d.Split(0, 3)
	if len(train0.Samples) != 0 || len(test0.Samples) != len(d.Samples) {
		t.Fatalf("trainFrac=0 split %d/%d, want 0/%d",
			len(train0.Samples), len(test0.Samples), len(d.Samples))
	}
}

// TestDatasetWorkerCountInvariance pins the parallel measurement and
// augmentation paths to their serial results.
func TestDatasetWorkerCountInvariance(t *testing.T) {
	z := getZoo(t)
	serial := BuildDataset(z, 2, 5, 1)
	par := BuildDataset(z, 2, 5, 3)
	if !reflect.DeepEqual(serial.Classes, par.Classes) {
		t.Fatal("class lists diverge across worker counts")
	}
	if !reflect.DeepEqual(serial.Samples, par.Samples) {
		t.Fatal("measured samples diverge across worker counts")
	}
	serial.AugmentNoise(2, 4, 2, 9, 1)
	par.AugmentNoise(2, 4, 2, 9, 3)
	if !reflect.DeepEqual(serial.Samples, par.Samples) {
		t.Fatal("augmented samples diverge across worker counts")
	}
}

// TestAccuracyWorkerCountInvariance pins the parallel evaluation paths
// (Accuracy, NoiseAccuracy) to their serial results; Workers is a pure
// throughput knob.
func TestAccuracyWorkerCountInvariance(t *testing.T) {
	clf, _, test := getTrained(t)
	orig := clf.Workers
	defer func() { clf.Workers = orig }()

	clf.Workers = 1
	acc1 := clf.Accuracy(test)
	noise1 := clf.NoiseAccuracy(test, 4, 2, 1)
	clf.Workers = 3
	if acc3 := clf.Accuracy(test); acc3 != acc1 {
		t.Fatalf("Accuracy %v at 3 workers vs %v serial", acc3, acc1)
	}
	if noise3 := clf.NoiseAccuracy(test, 4, 2, 1); noise3 != noise1 {
		t.Fatalf("NoiseAccuracy %v at 3 workers vs %v serial", noise3, noise1)
	}
}

func TestClassifierLearnsFingerprints(t *testing.T) {
	clf, train, test := getTrained(t)
	trainAcc := clf.Accuracy(train)
	testAcc := clf.Accuracy(test)
	if trainAcc < 0.8 {
		t.Fatalf("train accuracy %v < 0.8", trainAcc)
	}
	// The paper reports 90.78%; at this reduced scale, anything clearly
	// above the ~8%% random baseline and the ambiguity ceiling qualifies.
	if testAcc < 0.7 {
		t.Fatalf("test accuracy %v < 0.7", testAcc)
	}
}

func TestErrorsConcentrateInAmbiguityClusters(t *testing.T) {
	clf, _, test := getTrained(t)
	z := getZoo(t)
	pairs := clf.ConfusionPairs(test)
	ambiguous := 0
	for _, pair := range pairs {
		parts := strings.Split(pair, " -> ")
		a := z.PretrainedByName(parts[0])
		b := z.PretrainedByName(parts[1])
		if a != nil && b != nil && a.Profile.Seed == b.Profile.Seed {
			ambiguous++
		}
	}
	if len(pairs) > 0 && ambiguous == 0 {
		t.Logf("confusion pairs: %v", pairs)
		t.Fatal("expected at least some confusion inside ambiguity clusters")
	}
}

func TestNoiseToleranceDegradesGracefully(t *testing.T) {
	// Noise magnitudes are scaled to this reproduction's kernel-duration
	// scale (paper's 20µs ≈ one typical kernel duration ≈ 2µs here; see
	// EXPERIMENTS.md).
	clf, _, test := getTrained(t)
	clean := clf.Accuracy(test)
	light := clf.NoiseAccuracy(test, 1, 2, 1)
	heavy := clf.NoiseAccuracy(test, 16, 2, 1)
	if light < clean-0.2 {
		t.Fatalf("light noise dropped accuracy too much: %v -> %v", clean, light)
	}
	if heavy > light+0.1 {
		t.Fatalf("heavier noise (%v) should not beat lighter noise (%v)", heavy, light)
	}
	if heavy < 0.25 {
		t.Fatalf("heavy-noise accuracy %v collapsed below usefulness", heavy)
	}
}

func TestPredictTopK(t *testing.T) {
	clf, _, test := getTrained(t)
	s := test.Samples[0]
	top := clf.PredictTopK(s.Trace, 3)
	if len(top) != 3 {
		t.Fatalf("topk returned %d", len(top))
	}
	if top[0] != clf.Predict(s.Trace) {
		t.Fatal("top-1 must match Predict")
	}
	seen := map[string]bool{}
	for _, name := range top {
		if seen[name] {
			t.Fatal("topk has duplicates")
		}
		seen[name] = true
	}
}

func TestCentroidBaselineWeakerUnderNoise(t *testing.T) {
	clf, train, test := getTrained(t)
	base := NewCentroidBaseline(train, 64)
	// Both work on clean data; under heavy per-kernel noise the CNN should
	// hold up at least as well as the rigid centroid matcher.
	noisy := &Dataset{Classes: test.Classes}
	for i, s := range test.Samples {
		tr := s.Trace.Clone()
		tr.PerturbKernels(8, 2, uint64(i))
		noisy.Samples = append(noisy.Samples, Sample{Trace: tr, Label: s.Label, FromModel: s.FromModel})
	}
	cnnAcc := clf.Accuracy(noisy)
	centroidAcc := base.Accuracy(noisy)
	t.Logf("noisy accuracy: cnn %v centroid %v", cnnAcc, centroidAcc)
	if cnnAcc < centroidAcc-0.15 {
		t.Fatalf("CNN (%v) should not be far below centroid baseline (%v) under noise", cnnAcc, centroidAcc)
	}
}

func TestUnsupportedImageSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad image size must panic")
		}
	}()
	NewClassifier(48, []string{"a"}, 1)
}

func TestXLATraceClassifiable(t *testing.T) {
	// A trace with an XLA region must be preprocessable and classifiable
	// without panicking (§5.4.3).
	clf, _, _ := getTrained(t)
	z := getZoo(t)
	var xla *zoo.Pretrained
	for _, p := range z.Pretrained {
		if p.Profile.XLA {
			xla = p
			break
		}
	}
	if xla == nil {
		t.Skip("no XLA release in reduced zoo")
	}
	name := clf.Predict(xla.Trace(gpusim.Options{}))
	if name == "" {
		t.Fatal("empty prediction")
	}
}

func TestClassifierSaveLoadRoundTrip(t *testing.T) {
	clf, _, test := getTrained(t)
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadClassifier(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Restored classifier predicts identically on every test trace — not
	// just the top-1 label but the whole ranked top-k.
	for _, s := range test.Samples {
		if got.Predict(s.Trace) != clf.Predict(s.Trace) {
			t.Fatal("restored classifier predicts differently")
		}
		want := clf.PredictTopK(s.Trace, 3)
		have := got.PredictTopK(s.Trace, 3)
		if !reflect.DeepEqual(want, have) {
			t.Fatalf("restored top-k %v, want %v", have, want)
		}
	}
	if _, err := LoadClassifier(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("junk must not load")
	}
}

// Hierarchical identification: a family classifier (architecture level,
// InferNet-style coarse inference) gates per-family release classifiers.
// Identification cost stays sub-linear as the zoo grows: the family CNN
// sees a handful of classes no matter how many releases exist, and each
// release CNN only separates the releases inside one family. Training
// shards over internal/parallel per family — every per-family classifier
// is an independent work item with its own derived seed, so the result
// is identical for any worker count.
package fingerprint

import (
	"context"
	"fmt"
	"sort"

	"decepticon/internal/gpusim"
	"decepticon/internal/obs"
	"decepticon/internal/parallel"
	"decepticon/internal/rng"
	"decepticon/internal/tensor"
	"decepticon/internal/zoo"
)

// otherClass is the synthetic trailing class a release classifier trains
// with: every out-of-family sample lands there, so the classifier keeps
// the full corpus's feature diversity without widening its answer space.
// Predictions never return it.
const otherClass = "__other__"

// Hierarchical is the two-level identifier: Family picks the architecture
// family, then the family's release classifier (if the family holds more
// than one release) picks the pre-trained model.
type Hierarchical struct {
	ImgSize int
	// Family classifies traces into architecture-family names
	// (zoo.Pretrained.ArchName), in first-appearance order.
	Family *Classifier
	// Release maps a family name to its release classifier. Families
	// with a single release are absent: the family decision already
	// identifies the release (Direct).
	Release map[string]*Classifier
	// Direct maps single-release family names straight to the release.
	Direct map[string]string
	// Workers / Obs mirror Classifier: runtime knobs, not model state.
	Workers int
	Obs     *obs.Registry
}

// familyOf maps every dataset class (pre-trained model name) to its
// architecture family via the zoo.
func familyOf(z *zoo.Zoo, classes []string) (map[string]string, []string, error) {
	byClass := make(map[string]string, len(classes))
	var families []string
	seen := map[string]bool{}
	for _, name := range classes {
		p := z.PretrainedByName(name)
		if p == nil {
			return nil, nil, fmt.Errorf("fingerprint: class %q not in zoo", name)
		}
		byClass[name] = p.ArchName
		if !seen[p.ArchName] {
			seen[p.ArchName] = true
			families = append(families, p.ArchName)
		}
	}
	return byClass, families, nil
}

// TrainHierarchical builds and trains the two-level identifier from the
// same labeled dataset a flat classifier trains on. Per-family release
// classifiers (and the family classifier itself) train concurrently on
// workers goroutines; each derives its seed from the family name, so the
// trained weights are worker-count invariant.
func TrainHierarchical(ctx context.Context, z *zoo.Zoo, d *Dataset, imgSize int, cfg TrainConfig, workers int, reg *obs.Registry) (*Hierarchical, error) {
	defer reg.StartSpan("fingerprint.hier_train_seconds").End()
	byClass, families, err := familyOf(z, d.Classes)
	if err != nil {
		return nil, err
	}
	famIdx := make(map[string]int, len(families))
	for i, f := range families {
		famIdx[f] = i
	}

	// Family dataset: every sample relabeled with its class's family.
	famData := &Dataset{Classes: families}
	famData.Samples = make([]Sample, len(d.Samples))
	for i, s := range d.Samples {
		famData.Samples[i] = Sample{
			Trace: s.Trace, FromModel: s.FromModel,
			Label: famIdx[byClass[d.Classes[s.Label]]],
		}
	}

	// Per-family release datasets, classes in global class order so the
	// hierarchy's answer space is exactly the flat classifier's.
	type famJob struct {
		name    string
		classes []string
		data    *Dataset
	}
	var jobs []famJob
	h := &Hierarchical{
		ImgSize: imgSize,
		Release: map[string]*Classifier{},
		Direct:  map[string]string{},
		Workers: workers,
		Obs:     reg,
	}
	for _, fam := range families {
		var classes []string
		for _, name := range d.Classes {
			if byClass[name] == fam {
				classes = append(classes, name)
			}
		}
		if len(classes) == 1 {
			h.Direct[fam] = classes[0]
			continue
		}
		local := make(map[string]int, len(classes))
		for i, name := range classes {
			local[name] = i
		}
		// The release classifier trains on the full corpus with every
		// out-of-family sample collapsed into a trailing "other" class.
		// Training only on the family's slice loses the feature
		// regularization that cross-family diversity provides, and
		// within-cluster accuracy measurably drops below the flat
		// classifier's; the "other" class restores it while the answer
		// space (argmax over family classes only) stays the family's.
		sub := &Dataset{Classes: append(append([]string(nil), classes...), otherClass)}
		other := len(classes)
		for _, s := range d.Samples {
			label, in := local[d.Classes[s.Label]]
			if !in {
				label = other
			}
			sub.Samples = append(sub.Samples, Sample{
				Trace: s.Trace, FromModel: s.FromModel, Label: label,
			})
		}
		jobs = append(jobs, famJob{name: fam, classes: classes, data: sub})
	}

	// Shard: job 0 is the family classifier, jobs 1..n the release
	// classifiers. Each trained CNN keeps Workers=1 while training (the
	// shard pool owns the parallelism) and inherits the caller's worker
	// budget afterwards for evaluation.
	trained, err := parallel.MapErrCtx(ctx, len(jobs)+1, workers, func(ctx context.Context, i int) (*Classifier, error) {
		if i == 0 {
			c := NewClassifier(imgSize, families, rng.Seed("hier", "family")^cfg.Seed)
			c.Workers, c.Obs = 1, reg
			c.TrainContext(ctx, famData, TrainConfig{Epochs: cfg.Epochs, LR: cfg.LR, Seed: rng.Seed("hier-train", "family") ^ cfg.Seed})
			return c, ctx.Err()
		}
		j := jobs[i-1]
		c := NewClassifier(imgSize, j.data.Classes, rng.Seed("hier", j.name)^cfg.Seed)
		c.Workers, c.Obs = 1, reg
		c.TrainContext(ctx, j.data, TrainConfig{Epochs: cfg.Epochs, LR: cfg.LR, Seed: rng.Seed("hier-train", j.name) ^ cfg.Seed})
		return c, ctx.Err()
	})
	if err != nil {
		return nil, fmt.Errorf("fingerprint: hierarchical training cancelled: %w", err)
	}
	h.Family = trained[0]
	h.Family.Workers = workers
	for i, j := range jobs {
		trained[i+1].Workers = workers
		h.Release[j.name] = trained[i+1]
	}
	reg.Log().Info("hierarchical identifier trained",
		"families", len(families), "release_classifiers", len(jobs),
		"classes", len(d.Classes))
	return h, nil
}

// scores returns a classifier's raw logits for a trace.
func (c *Classifier) scores(t *gpusim.Trace) []float32 {
	x := tensor.FromSlice(1, c.ImgSize*c.ImgSize, c.preprocess(t))
	return c.net.Forward(x, false).Row(0)
}

// releaseTopK ranks a release classifier's real classes (the trailing
// otherClass, when present, is never a candidate) by logit, best first.
func releaseTopK(rc *Classifier, t *gpusim.Trace, k int) []string {
	sc := rc.scores(t)
	n := len(rc.Classes)
	if n > 0 && rc.Classes[n-1] == otherClass {
		n--
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return sc[order[a]] > sc[order[b]] })
	if k > n {
		k = n
	}
	out := make([]string, 0, k)
	for _, i := range order[:k] {
		out = append(out, rc.Classes[i])
	}
	return out
}

// Predict returns the pre-trained model name for a trace: family first,
// then the release inside it.
func (h *Hierarchical) Predict(t *gpusim.Trace) string {
	fam := h.Family.Predict(t)
	if name, ok := h.Direct[fam]; ok {
		return name
	}
	return releaseTopK(h.Release[fam], t, 1)[0]
}

// PredictTopK ranks candidate releases family-first: families in
// descending family-classifier score, each family contributing its
// releases (ranked by its release classifier) before the next family.
// The flat classifier's contract — k distinct candidate names, most
// likely first — is preserved, which is what the Identify stage and the
// disambiguation probes consume.
func (h *Hierarchical) PredictTopK(t *gpusim.Trace, k int) []string {
	famScores := h.Family.scores(t)
	order := make([]int, len(famScores))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return famScores[order[a]] > famScores[order[b]] })

	var out []string
	for _, fi := range order {
		if len(out) >= k {
			break
		}
		fam := h.Family.Classes[fi]
		if name, ok := h.Direct[fam]; ok {
			out = append(out, name)
			continue
		}
		out = append(out, releaseTopK(h.Release[fam], t, k-len(out))...)
	}
	return out
}

// Accuracy returns hierarchical top-1 accuracy over a dataset labeled
// with flat (release-level) classes.
func (h *Hierarchical) Accuracy(d *Dataset) float64 {
	acc, _ := h.AccuracyContext(context.Background(), d)
	return acc
}

// AccuracyContext is Accuracy with cooperative cancellation.
func (h *Hierarchical) AccuracyContext(ctx context.Context, d *Dataset) (float64, error) {
	defer h.Obs.StartSpan("fingerprint.eval_seconds").End()
	if len(d.Samples) == 0 {
		return 0, nil
	}
	hits, err := parallel.MapErrCtx(ctx, len(d.Samples), h.Workers, func(ctx context.Context, i int) (bool, error) {
		s := d.Samples[i]
		return h.Predict(s.Trace) == d.Classes[s.Label], nil
	})
	if err != nil {
		return 0, err
	}
	correct := 0
	for _, hit := range hits {
		if hit {
			correct++
		}
	}
	return float64(correct) / float64(len(d.Samples)), nil
}

package fingerprint

import (
	"context"
	"testing"
)

func getHier(t *testing.T) (*Hierarchical, *Classifier, *Dataset, *Dataset) {
	t.Helper()
	flat, train, test := getTrained(t)
	z := getZoo(t)
	h, err := TrainHierarchical(context.Background(), z, train, 64,
		TrainConfig{Epochs: 60, LR: 0.002, Seed: 4}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	return h, flat, train, test
}

// The hierarchy's structure must mirror the zoo: one family class per
// distinct ArchName, multi-release families gated behind a release
// classifier, single-release families answered directly.
func TestHierarchicalStructure(t *testing.T) {
	h, _, _, _ := getHier(t)
	z := getZoo(t)
	fams := map[string]int{}
	for _, p := range z.Pretrained {
		fams[p.ArchName]++
	}
	if len(h.Family.Classes) != len(fams) {
		t.Fatalf("family classifier has %d classes, zoo has %d families",
			len(h.Family.Classes), len(fams))
	}
	for fam, n := range fams {
		if n == 1 {
			if _, ok := h.Direct[fam]; !ok {
				t.Fatalf("single-release family %s missing from Direct", fam)
			}
			if _, ok := h.Release[fam]; ok {
				t.Fatalf("single-release family %s has a release classifier", fam)
			}
			continue
		}
		rc, ok := h.Release[fam]
		if !ok {
			t.Fatalf("multi-release family %s missing release classifier", fam)
		}
		// n family releases plus the trailing "__other__" training class.
		if len(rc.Classes) != n+1 || rc.Classes[n] != otherClass {
			t.Fatalf("family %s release classifier has classes %v, want %d releases + other",
				fam, rc.Classes, n)
		}
	}
}

// Acceptance: hierarchical identification matches the flat classifier on
// the paper population's held-out traces.
//
// Releases sharing a profile key (e.g. the four-way small-BERT cluster)
// have byte-identical execution fingerprints, so *within* such a cluster
// any classifier's pick is chance — the pipeline resolves those with the
// Disambiguate stage's query probes, not the trace classifier. The
// meaningful identification target is therefore cluster-aware: a
// prediction is right when it lands in the true release's ambiguity
// cluster. That metric is pinned as an exact match; raw accuracy (which
// includes the chance-level intra-cluster coin flips) is pinned to stay
// within one cluster-sized slice of flat's.
func TestHierarchicalMatchesFlatAccuracy(t *testing.T) {
	h, flat, _, test := getHier(t)
	z := getZoo(t)

	cluster := func(name string) map[string]bool {
		set := map[string]bool{}
		for _, q := range z.AmbiguousWith(z.PretrainedByName(name)) {
			set[q.Name] = true
		}
		return set
	}
	var flatHits, hierHits, flatCluster, hierCluster int
	for _, s := range test.Samples {
		truth := test.Classes[s.Label]
		in := cluster(truth)
		if p := flat.Predict(s.Trace); p == truth {
			flatHits++
			flatCluster++
		} else if in[p] {
			flatCluster++
		}
		if p := h.Predict(s.Trace); p == truth {
			hierHits++
			hierCluster++
		} else if in[p] {
			hierCluster++
		}
	}
	n := float64(len(test.Samples))
	flatAcc, hierAcc := float64(flatHits)/n, float64(hierHits)/n
	t.Logf("raw: flat %.3f, hierarchical %.3f; cluster-aware: flat %.3f, hierarchical %.3f",
		flatAcc, hierAcc, float64(flatCluster)/n, float64(hierCluster)/n)
	if hierCluster < flatCluster {
		t.Fatalf("cluster-aware accuracy %d/%d below flat %d/%d",
			hierCluster, len(test.Samples), flatCluster, len(test.Samples))
	}
	if hierAcc < flatAcc-0.1 {
		t.Fatalf("raw hierarchical accuracy %.3f more than 0.1 below flat %.3f", hierAcc, flatAcc)
	}
}

// PredictTopK keeps the flat contract: k distinct known candidates, the
// top-1 equal to Predict, every name resolvable in the zoo.
func TestHierarchicalPredictTopK(t *testing.T) {
	h, _, _, test := getHier(t)
	z := getZoo(t)
	for _, s := range test.Samples[:10] {
		top := h.PredictTopK(s.Trace, 3)
		if len(top) != 3 {
			t.Fatalf("top-3 returned %d candidates", len(top))
		}
		if top[0] != h.Predict(s.Trace) {
			t.Fatalf("top-1 %s != Predict %s", top[0], h.Predict(s.Trace))
		}
		seen := map[string]bool{}
		for _, name := range top {
			if z.PretrainedByName(name) == nil {
				t.Fatalf("candidate %q not in zoo", name)
			}
			if seen[name] {
				t.Fatalf("duplicate candidate %q", name)
			}
			seen[name] = true
		}
	}
}

// Sharded training is worker-count invariant: per-family seeds derive
// from family names, never from scheduling.
func TestHierarchicalWorkerCountInvariance(t *testing.T) {
	z := getZoo(t)
	_, train, test := getTrained(t)
	cfg := TrainConfig{Epochs: 12, LR: 0.002, Seed: 4}
	h1, err := TrainHierarchical(context.Background(), z, train, 64, cfg, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	h4, err := TrainHierarchical(context.Background(), z, train, 64, cfg, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range test.Samples {
		a, b := h1.Predict(s.Trace), h4.Predict(s.Trace)
		if a != b {
			t.Fatalf("prediction differs across worker counts: %s vs %s", a, b)
		}
	}
}

package fingerprint

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"decepticon/internal/gpusim"
	"decepticon/internal/nn"
	"decepticon/internal/obs"
	"decepticon/internal/parallel"
	"decepticon/internal/rng"
	"decepticon/internal/tensor"
)

// This file makes level-1 identification pluggable across measurement
// modalities. The kernel-trace CNN stays the primary extractor; the two
// derived channels (power/thermal, aggregate counters — see
// gpusim/channels.go) get lightweight dense classifiers over fixed
// feature vectors, and FusePosteriors combines any subset of per-modality
// posteriors into one identification, degrading to the surviving
// modalities when a sensor is jammed or absent.

// Modality names one level-1 measurement channel.
type Modality string

// The supported measurement modalities.
const (
	ModalityTrace    Modality = "trace"    // kernel launch timeline (the paper's channel)
	ModalityPower    Modality = "power"    // power/thermal trace ("Energon")
	ModalityCounters Modality = "counters" // aggregate profiler counters (InferNet)
)

// AllModalities returns every supported modality in canonical order.
func AllModalities() []Modality {
	return []Modality{ModalityTrace, ModalityPower, ModalityCounters}
}

// ParseModalities parses a comma-separated modality list ("trace,power").
// The empty string parses to nil (caller default); unknown names and
// duplicates are rejected.
func ParseModalities(s string) ([]Modality, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	seen := map[Modality]bool{}
	var out []Modality
	for _, part := range strings.Split(s, ",") {
		m := Modality(strings.TrimSpace(part))
		switch m {
		case ModalityTrace, ModalityPower, ModalityCounters:
		default:
			return nil, fmt.Errorf("fingerprint: unknown modality %q (use trace, power, counters)", part)
		}
		if seen[m] {
			return nil, fmt.Errorf("fingerprint: duplicate modality %q", m)
		}
		seen[m] = true
		out = append(out, m)
	}
	return out, nil
}

// Default sensor-noise levels for the derived channels, shared by dataset
// construction and attack-time measurement so train and test
// distributions match: watts of power-meter noise, relative fraction of
// counter jitter.
const (
	DefaultPowerNoiseW  = 1.5
	DefaultCounterNoise = 0.01
)

// Power feature layout: the watts series resampled to powerWattBins, the
// temperature series resampled to powerTempBins, then three scalars
// (duration, peak watts, mean watts).
const (
	powerWattBins = 48
	powerTempBins = 16
	// PowerFeatureDim is the length of a PowerFeatures vector.
	PowerFeatureDim = powerWattBins + powerTempBins + 3
	// CounterFeatureDim is the length of a CounterSet feature vector.
	CounterFeatureDim = 10
)

// resample64 linearly resamples xs to n points (xs empty -> zeros).
func resample64(xs []float64, n int) []float64 {
	out := make([]float64, n)
	if len(xs) == 0 {
		return out
	}
	if len(xs) == 1 {
		for i := range out {
			out[i] = xs[0]
		}
		return out
	}
	for i := 0; i < n; i++ {
		pos := float64(i) * float64(len(xs)-1) / float64(n-1)
		lo := int(pos)
		hi := lo + 1
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		frac := pos - float64(lo)
		out[i] = xs[lo]*(1-frac) + xs[hi]*frac
	}
	return out
}

// PowerFeatures converts a power/thermal trace to the power classifier's
// fixed-length input: the normalized power and temperature profiles on a
// common time base (so releases of different speeds stay comparable) plus
// duration/peak/mean scalars.
func PowerFeatures(p *gpusim.PowerTrace) []float32 {
	watts := make([]float64, len(p.Samples))
	temps := make([]float64, len(p.Samples))
	for i, s := range p.Samples {
		watts[i] = s.Watts
		temps[i] = s.TempC
	}
	out := make([]float32, 0, PowerFeatureDim)
	for _, w := range resample64(watts, powerWattBins) {
		out = append(out, float32(w/gpusim.TDPWatts))
	}
	for _, t := range resample64(temps, powerTempBins) {
		out = append(out, float32((t-gpusim.AmbientC)/60))
	}
	out = append(out,
		float32(p.Duration()/1e4),
		float32(p.PeakWatts()/gpusim.TDPWatts),
		float32(p.MeanWatts()/gpusim.TDPWatts))
	return out
}

// CounterFeatures converts an aggregate counter set to the counter
// classifier's fixed-length input. Counts and times compress through
// log1p (they span orders of magnitude across frameworks); fractions pass
// through.
func CounterFeatures(c *gpusim.CounterSet) []float32 {
	log1p := func(v float64) float32 { return float32(math.Log1p(math.Max(v, 0))) }
	return []float32{
		log1p(c.Execs),
		log1p(c.UniqueKernels),
		log1p(c.TotalTimeUS),
		log1p(c.MeanKernelUS),
		log1p(c.PeakKernelUS),
		log1p(c.GemmTimeUS),
		log1p(c.MemTimeUS),
		log1p(c.MemcpyTimeUS),
		float32(c.ShortKernelFrac),
		float32(c.OccupancyProxy),
	}
}

// channelSeed derives the sensor-noise seed for one sample of one
// modality — a pure function of (modality, sample identity, dataset
// seed), mirroring BuildDataset's measurement-seed convention so derived
// datasets are identical for any worker count.
func channelSeed(m Modality, sampleKey string, index int, seed uint64) uint64 {
	return rng.Seed("channel", string(m), sampleKey, fmt.Sprint(index)) ^ seed
}

// FeaturesOf measures modality m's channel from a kernel schedule and
// featurizes it. The trace modality is not a vector channel and panics —
// it keeps its CNN path.
func FeaturesOf(m Modality, t *gpusim.Trace, opt gpusim.ChannelOptions) []float32 {
	switch m {
	case ModalityPower:
		return PowerFeatures(gpusim.PowerTraceOf(t, opt))
	case ModalityCounters:
		return CounterFeatures(gpusim.CountersOf(t, opt))
	}
	panic(fmt.Sprintf("fingerprint: modality %q has no vector featurizer", m))
}

// DefaultChannelNoise returns the default sensor-noise magnitude for a
// vector modality, in that channel's units.
func DefaultChannelNoise(m Modality) float64 {
	if m == ModalityPower {
		return DefaultPowerNoiseW
	}
	return DefaultCounterNoise
}

// VecSample is one labeled feature-vector measurement.
type VecSample struct {
	Features  []float32
	Label     int
	FromModel string
}

// VecDataset is a labeled feature-vector corpus for one modality.
type VecDataset struct {
	Modality Modality
	Dim      int
	Samples  []VecSample
	Classes  []string
}

// VectorizeDataset derives modality m's feature dataset from an existing
// trace dataset: every sample's kernel schedule feeds the channel
// derivation with a per-sample noise seed, so the result is identical for
// any worker count and no second measurement pass is paid.
func VectorizeDataset(d *Dataset, m Modality, seed uint64, workers int) *VecDataset {
	vd := &VecDataset{Modality: m, Classes: d.Classes}
	noise := DefaultChannelNoise(m)
	vd.Samples = parallel.Map(len(d.Samples), workers, func(i int) VecSample {
		s := d.Samples[i]
		opt := gpusim.ChannelOptions{
			Seed:  channelSeed(m, s.FromModel, i, seed),
			Noise: noise,
		}
		return VecSample{Features: FeaturesOf(m, s.Trace, opt), Label: s.Label, FromModel: s.FromModel}
	})
	if len(vd.Samples) > 0 {
		vd.Dim = len(vd.Samples[0].Features)
	}
	return vd
}

// VectorClassifier is a dense MLP identifier over one vector modality's
// features — deliberately small: the derived channels carry less
// information than the full trace image, and the fusion identifier only
// needs calibrated-ish posteriors from them.
type VectorClassifier struct {
	Modality Modality
	Dim      int
	Classes  []string
	// Workers bounds evaluation goroutines (<= 0 selects GOMAXPROCS); a
	// runtime knob with no effect on results.
	Workers int
	// Obs receives forward counts (fingerprint.vector_forwards); nil runs
	// un-instrumented.
	Obs *obs.Registry
	net *nn.Sequential
}

// NewVectorClassifier builds an untrained dense classifier for a
// modality's feature vectors.
func NewVectorClassifier(m Modality, dim int, classes []string, seed uint64) *VectorClassifier {
	r := rng.New(seed)
	return &VectorClassifier{
		Modality: m,
		Dim:      dim,
		Classes:  classes,
		net: nn.NewSequential(
			nn.NewDense(dim, 48, r.Derive("v1")), nn.NewReLU(),
			nn.NewDense(48, len(classes), r.Derive("v2")),
		),
	}
}

// matrixOf packs a vector dataset into an input matrix plus labels.
func (c *VectorClassifier) matrixOf(d *VecDataset) (*tensor.Matrix, []int) {
	x := tensor.New(len(d.Samples), c.Dim)
	labels := make([]int, len(d.Samples))
	for i, s := range d.Samples {
		copy(x.Row(i), s.Features)
		labels[i] = s.Label
	}
	return x, labels
}

// Train fits the classifier and returns the final mean loss.
func (c *VectorClassifier) Train(d *VecDataset, cfg TrainConfig) float64 {
	defer c.Obs.StartSpan("fingerprint.vector_train_seconds").End()
	if cfg.Epochs <= 0 {
		cfg.Epochs = 60
	}
	if cfg.LR == 0 {
		cfg.LR = 0.002
	}
	x, labels := c.matrixOf(d)
	loss := c.net.Fit(x, labels, nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: 16,
		Optimizer: nn.NewAdamW(cfg.LR, 0),
		Seed:      cfg.Seed,
	})
	c.Obs.Log().Info("vector classifier trained",
		"modality", string(c.Modality), "samples", len(d.Samples), "loss", loss)
	return loss
}

// Posterior returns the class-probability vector for one feature vector,
// aligned with Classes.
func (c *VectorClassifier) Posterior(features []float32) []float64 {
	c.Obs.Counter("fingerprint.vector_forwards").Inc()
	x := tensor.FromSlice(1, c.Dim, features)
	return softmax64(c.net.Forward(x, false).Row(0))
}

// Predict returns the most likely class name for one feature vector.
func (c *VectorClassifier) Predict(features []float32) string {
	return c.Classes[ArgMax(c.Posterior(features))]
}

// Accuracy returns classification accuracy over a vector dataset.
// Samples evaluate concurrently; the correct count aggregates after the
// join, so the result is identical for any worker count.
func (c *VectorClassifier) Accuracy(d *VecDataset) float64 {
	if len(d.Samples) == 0 {
		return 0
	}
	hits := parallel.Map(len(d.Samples), c.Workers, func(i int) bool {
		return ArgMax(c.Posterior(d.Samples[i].Features)) == d.Samples[i].Label
	})
	correct := 0
	for _, h := range hits {
		if h {
			correct++
		}
	}
	return float64(correct) / float64(len(d.Samples))
}

// Posterior returns the CNN's class-probability vector for a trace,
// aligned with Classes — the trace modality's entry into posterior
// fusion. Like PredictTopK it leaves the fingerprint.forwards counter
// alone (that counter meters the legacy single-prediction path).
func (c *Classifier) Posterior(t *gpusim.Trace) []float64 {
	x := tensor.FromSlice(1, c.ImgSize*c.ImgSize, c.preprocess(t))
	return softmax64(c.net.Forward(x, false).Row(0))
}

// softmax64 converts float32 logits to a float64 probability vector with
// the usual max-subtraction for stability.
func softmax64(logits []float32) []float64 {
	if len(logits) == 0 {
		return nil
	}
	maxL := logits[0]
	for _, l := range logits[1:] {
		if l > maxL {
			maxL = l
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, l := range logits {
		e := math.Exp(float64(l - maxL))
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// ArgMax returns the index of the largest probability, lowest index on
// ties — the deterministic tie-break every identifier shares.
func ArgMax(probs []float64) int {
	best := 0
	for i, p := range probs {
		if p > probs[best] {
			best = i
		}
	}
	return best
}

// FusePosteriors combines per-modality posteriors by weighted log-linear
// pooling (a product of experts): fused ∝ Π p_m^w_m. nil posterior
// entries — jammed or absent sensors — are skipped, so the fusion
// degrades gracefully to whatever survives; it returns nil only when
// nothing does. weights may be nil (equal weights) and is otherwise
// indexed like posts; non-positive weights mute a modality.
func FusePosteriors(posts [][]float64, weights []float64) []float64 {
	const eps = 1e-12
	var fusedLog []float64
	used := 0
	for i, p := range posts {
		if p == nil {
			continue
		}
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		if w <= 0 {
			continue
		}
		if fusedLog == nil {
			fusedLog = make([]float64, len(p))
		}
		for j, pj := range p {
			fusedLog[j] += w * math.Log(pj+eps)
		}
		used++
	}
	if used == 0 {
		return nil
	}
	// Normalize back to probabilities (log-sum-exp).
	maxL := fusedLog[0]
	for _, l := range fusedLog[1:] {
		if l > maxL {
			maxL = l
		}
	}
	var sum float64
	out := make([]float64, len(fusedLog))
	for i, l := range fusedLog {
		e := math.Exp(l - maxL)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// FusionWeights converts per-modality calibration accuracies into pooling
// weights: each modality's weight is its accuracy raised to a sharpening
// power and floor-clamped, normalized so the largest is 1. Sharpening
// makes the strongest sensor dominate unless the others are confident —
// in practice this keeps fused accuracy at or above the best single
// modality while still letting agreement between weak sensors outvote a
// perturbed strong one.
func FusionWeights(accuracies []float64) []float64 {
	const sharpen = 4.0
	out := make([]float64, len(accuracies))
	var best float64
	for i, a := range accuracies {
		if a < 0.05 {
			a = 0.05
		}
		out[i] = math.Pow(a, sharpen)
		if out[i] > best {
			best = out[i]
		}
	}
	if best > 0 {
		for i := range out {
			out[i] /= best
		}
	}
	return out
}

// SortedModalityNames renders a modality set as sorted strings — stable
// report/log output regardless of request order.
func SortedModalityNames(ms []Modality) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = string(m)
	}
	sort.Strings(out)
	return out
}

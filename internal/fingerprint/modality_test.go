package fingerprint

import (
	"math"
	"reflect"
	"testing"
)

func TestParseModalities(t *testing.T) {
	got, err := ParseModalities(" trace, power ,counters ")
	if err != nil {
		t.Fatal(err)
	}
	want := []Modality{ModalityTrace, ModalityPower, ModalityCounters}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if got, err := ParseModalities(""); err != nil || got != nil {
		t.Fatalf("empty spec: got %v, %v; want nil, nil", got, err)
	}
	if _, err := ParseModalities("trace,laser"); err == nil {
		t.Fatal("unknown modality must error")
	}
	if _, err := ParseModalities("power,power"); err == nil {
		t.Fatal("duplicate modality must error")
	}
}

func TestVectorizeDatasetWorkerCountInvariance(t *testing.T) {
	z := getZoo(t)
	d := BuildDataset(z, 3, 1, 0)
	for _, m := range []Modality{ModalityPower, ModalityCounters} {
		serial := VectorizeDataset(d, m, 7, 1)
		par := VectorizeDataset(d, m, 7, 4)
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("%s: vectorized dataset differs across worker counts", m)
		}
		if serial.Dim == 0 || len(serial.Samples) != len(d.Samples) {
			t.Fatalf("%s: dim %d, %d samples of %d", m, serial.Dim, len(serial.Samples), len(d.Samples))
		}
		wantDim := CounterFeatureDim
		if m == ModalityPower {
			wantDim = PowerFeatureDim
		}
		if serial.Dim != wantDim {
			t.Fatalf("%s: dim %d, want %d", m, serial.Dim, wantDim)
		}
	}
}

// The dense classifiers must genuinely learn the derived channels: train
// accuracy on a clean vectorized dataset should be far above chance.
func TestVectorClassifierLearns(t *testing.T) {
	z := getZoo(t)
	d := BuildDataset(z, 4, 1, 0)
	for _, m := range []Modality{ModalityPower, ModalityCounters} {
		vd := VectorizeDataset(d, m, 11, 0)
		c := NewVectorClassifier(m, vd.Dim, vd.Classes, 13)
		c.Train(vd, TrainConfig{Epochs: 50, LR: 0.002, Seed: 3})
		acc := c.Accuracy(vd)
		chance := 1 / float64(len(vd.Classes))
		if acc < 3*chance {
			t.Fatalf("%s: accuracy %.3f barely above chance %.3f", m, acc, chance)
		}
		post := c.Posterior(vd.Samples[0].Features)
		var sum float64
		for _, p := range post {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s: posterior sums to %v", m, sum)
		}
	}
}

func TestFusePosteriors(t *testing.T) {
	a := []float64{0.7, 0.2, 0.1}
	b := []float64{0.1, 0.8, 0.1}
	// Equal weights: log pooling of a and b.
	fused := FusePosteriors([][]float64{a, b}, nil)
	var sum float64
	for _, p := range fused {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fused posterior sums to %v", sum)
	}
	// Weighting one expert heavily must pull the argmax its way.
	if ArgMax(FusePosteriors([][]float64{a, b}, []float64{1, 0.01})) != 0 {
		t.Fatal("dominant weight on expert a must select a's argmax")
	}
	if ArgMax(FusePosteriors([][]float64{a, b}, []float64{0.01, 1})) != 1 {
		t.Fatal("dominant weight on expert b must select b's argmax")
	}
	// nil entries (jammed sensors) degrade to the survivors.
	if got := FusePosteriors([][]float64{nil, b}, []float64{1, 1}); !reflect.DeepEqual(got, FusePosteriors([][]float64{b}, nil)) {
		t.Fatal("jammed sensor must be skipped, not zeroed")
	}
	// Non-positive weight mutes a modality the same way.
	if got := FusePosteriors([][]float64{a, b}, []float64{0, 1}); ArgMax(got) != 1 {
		t.Fatal("zero weight must mute the modality")
	}
	// Everything jammed: nil, the caller's degradation signal.
	if FusePosteriors([][]float64{nil, nil}, nil) != nil {
		t.Fatal("all-jammed fusion must return nil")
	}
}

func TestFusionWeights(t *testing.T) {
	w := FusionWeights([]float64{0.9, 0.5, 0.02})
	if w[0] != 1 {
		t.Fatalf("best modality's weight is %v, want 1 (max-normalized)", w[0])
	}
	if !(w[1] < w[0] && w[2] < w[1]) {
		t.Fatalf("weights %v not ordered by accuracy", w)
	}
	if w[2] <= 0 {
		t.Fatalf("floor must keep a weak sensor's weight positive, got %v", w[2])
	}
	// Sharpening: the accuracy ratio amplifies.
	if w[1] > 0.5 {
		t.Fatalf("0.5-vs-0.9 accuracy should sharpen well below 0.5, got %v", w[1])
	}
}

func TestArgMaxTieBreak(t *testing.T) {
	if got := ArgMax([]float64{0.2, 0.4, 0.4}); got != 1 {
		t.Fatalf("ties must break to the lowest index, got %d", got)
	}
}

// Package fsatomic is the repository's one implementation of the
// temp-file + rename write. Every durable artifact that a crash must not
// corrupt — zoo caches, extraction checkpoints, committed benchmark
// snapshots, the campaign service's specs and statuses — goes through
// it: the content is written to a temp file in the destination
// directory (same filesystem, so the rename is atomic), and the
// destination name only ever points at a complete file. A kill at any
// instant leaves either the previous content or the new content, never
// a truncated hybrid.
package fsatomic

import (
	"io"
	"os"
	"path/filepath"
)

// Write streams content produced by write to path atomically. If write
// (or any filesystem step) fails, the destination is untouched and the
// temp file is removed.
func Write(path string, write func(w io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := write(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// WriteFile atomically replaces path's content with data (mode 0644 for
// new files, like os.WriteFile).
func WriteFile(path string, data []byte) error {
	return Write(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

package fsatomic

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// The crash simulation: a writer that emits half its payload and then
// dies must leave the previous file byte-identical and no temp litter —
// exactly what a kill -9 mid-write looks like to the next process.
func TestWriteCrashMidWriteLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	if err := WriteFile(path, []byte("generation-1")); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("simulated crash")
	err := Write(path, func(w io.Writer) error {
		if _, err := w.Write([]byte("generation-2 partial")); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected crash", err)
	}

	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "generation-1" {
		t.Fatalf("destination corrupted: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp litter left behind: %d entries", len(entries))
	}
}

// A crash before the first generation exists must leave nothing at the
// destination (not an empty or partial file).
func TestWriteCrashOnFreshPathLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	boom := errors.New("simulated crash")
	if err := Write(path, func(w io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected crash", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("partial destination exists after crash: %v", err)
	}
}

func TestWriteFileReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := WriteFile(path, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("bb")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "bb" {
		t.Fatalf("content %q, want bb", got)
	}
}

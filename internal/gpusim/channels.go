package gpusim

import (
	"strings"

	"decepticon/internal/rng"
)

// This file derives the two additional level-1 measurement channels from
// the same kernel schedule the trace channel records:
//
//   - a simulated GPU power/thermal trace ("Energon", PAPERS.md): the
//     roofline work of each kernel maps to board power draw, sampled at a
//     fixed interval and low-pass filtered into a die temperature;
//   - an aggregate profiler counter set (InferNet, PAPERS.md): the
//     census/occupancy statistics a coarse profiler exposes without
//     per-kernel timestamps.
//
// Both are pure functions of (Trace, ChannelOptions): all sensor noise
// comes from an rng.New(Seed) stream consumed in a fixed serial order, so
// a derivation is byte-identical for any worker count — the same
// determinism contract the kernel-trace channel obeys.

// ChannelOptions controls one derived-channel measurement.
type ChannelOptions struct {
	// Seed drives the sensor-noise stream; same seed, same measurement.
	Seed uint64
	// Noise is the sensor noise magnitude. Units are per channel: watts of
	// per-sample power-meter noise for PowerTraceOf, relative fraction of
	// per-counter jitter for CountersOf (0 = clean in both).
	Noise float64
}

// Power/thermal model constants. Absolute values are arbitrary (an
// RTX 3050-class board); the relative structure — gemms pull near TDP,
// short memory-bound kernels idle the SMs, temperature is a low-pass
// filter of power — is what the identification exploits.
const (
	// PowerSampleIntervalUS is the power meter's fixed sampling period.
	PowerSampleIntervalUS = 5.0
	// IdleWatts / TDPWatts bound the board power range.
	IdleWatts = 18.0
	TDPWatts  = 170.0
	// AmbientC is the die temperature at idle.
	AmbientC = 41.0
	// thermalResistance converts steady-state watts to °C above ambient;
	// thermalTauUS is the RC time constant of the die+heatsink.
	thermalResistance = 0.3
	thermalTauUS      = 900.0
)

// PowerSample is one power-meter reading.
type PowerSample struct {
	T     float64 // µs since inference start (sample midpoint)
	Watts float64 // board power draw
	TempC float64 // die temperature
}

// PowerTrace is the power/thermal side channel of one inference: the
// board-power time series an external meter (or an on-board sensor an
// unprivileged process can poll) records, with the die temperature as its
// low-pass-filtered shadow.
type PowerTrace struct {
	Model    string
	Interval float64 // µs between samples
	Samples  []PowerSample
}

// Duration returns the sampled span in µs.
func (p *PowerTrace) Duration() float64 {
	return float64(len(p.Samples)) * p.Interval
}

// PeakWatts returns the highest sampled draw.
func (p *PowerTrace) PeakWatts() float64 {
	var best float64
	for _, s := range p.Samples {
		if s.Watts > best {
			best = s.Watts
		}
	}
	return best
}

// MeanWatts returns the average sampled draw.
func (p *PowerTrace) MeanWatts() float64 {
	if len(p.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range p.Samples {
		sum += s.Watts
	}
	return sum / float64(len(p.Samples))
}

// kernelUtilization maps a kernel to the fraction of the board's dynamic
// power range it draws while resident. Like variantFactor it is a
// deterministic hash of the kernel *name*: different implementations of
// the same logical op genuinely differ in SM occupancy and memory
// pressure, which is why a release's kernel selection shows up in the
// power trace too. Bus transfers barely exercise the SMs.
func kernelUtilization(name string) float64 {
	if strings.HasPrefix(name, "memcpy_") {
		return 0.06
	}
	return 0.3 + 0.65*hash01("power-util:"+name)
}

// PowerTraceOf derives the power/thermal channel from a kernel schedule:
// per-sample watts accumulate each kernel's utilization weighted by its
// overlap with the sample window, the meter adds ±opt.Noise watts of
// seeded noise per sample, and the die temperature follows an RC low-pass
// filter of the (noisy) power. The derivation reads the schedule only —
// the victim runs once, every passive sensor taps the same inference.
func PowerTraceOf(t *Trace, opt ChannelOptions) *PowerTrace {
	p := &PowerTrace{Model: t.Model, Interval: PowerSampleIntervalUS}
	dur := t.Duration()
	n := int(dur/PowerSampleIntervalUS) + 1
	if n < 1 {
		n = 1
	}
	watts := make([]float64, n)
	for _, e := range t.Execs {
		util := kernelUtilization(e.Name)
		lo := int(e.Start / PowerSampleIntervalUS)
		hi := int(e.End / PowerSampleIntervalUS)
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		for k := lo; k <= hi; k++ {
			winStart := float64(k) * PowerSampleIntervalUS
			winEnd := winStart + PowerSampleIntervalUS
			overlap := min64(e.End, winEnd) - max64(e.Start, winStart)
			if overlap <= 0 {
				continue
			}
			watts[k] += util * (overlap / PowerSampleIntervalUS) * (TDPWatts - IdleWatts)
		}
	}
	r := rng.New(opt.Seed)
	temp := AmbientC
	p.Samples = make([]PowerSample, n)
	for k := range watts {
		w := IdleWatts + watts[k]
		if w > TDPWatts {
			w = TDPWatts
		}
		if opt.Noise > 0 {
			w += (2*r.Float64() - 1) * opt.Noise
			if w < 0 {
				w = 0
			}
		}
		// RC thermal filter toward the steady state of the current draw.
		target := AmbientC + thermalResistance*w
		temp += (target - temp) * (PowerSampleIntervalUS / thermalTauUS)
		p.Samples[k] = PowerSample{
			T:     (float64(k) + 0.5) * PowerSampleIntervalUS,
			Watts: w,
			TempC: temp,
		}
	}
	return p
}

// CounterSet is the aggregate-counter side channel of one inference: the
// census/occupancy statistics a coarse profiler (InferNet-style) exposes
// without per-kernel timestamps. All fields are float64 so sensor noise
// applies uniformly.
type CounterSet struct {
	Model string

	Execs         float64 // kernel launch count
	UniqueKernels float64 // distinct kernel names
	TotalTimeUS   float64 // summed kernel runtime
	MeanKernelUS  float64
	PeakKernelUS  float64
	GemmTimeUS    float64 // runtime in matrix-multiply kernels
	MemTimeUS     float64 // runtime in memory-bound kernels
	MemcpyTimeUS  float64 // runtime in host↔device transfers
	// ShortKernelFrac is the fraction of launches under 1.5µs (the Meta
	// short-reduction signature, Fig 7); OccupancyProxy is the
	// busy-weighted mean SM utilization over the inference.
	ShortKernelFrac float64
	OccupancyProxy  float64
}

// isGemmKernel classifies a kernel name as a matrix-multiply
// implementation across the simulated frameworks' naming schemes.
func isGemmKernel(name string) bool {
	return strings.Contains(name, "gemm") || strings.Contains(name, "gemv") ||
		strings.Contains(name, "MatVec")
}

// CountersOf derives the aggregate-counter channel from a kernel
// schedule. With opt.Noise > 0 every counter is jittered by a seeded
// relative factor in ±Noise (a profiler's sampling error); the noise
// stream is consumed in fixed field order, so the derivation stays
// byte-identical for any worker count.
func CountersOf(t *Trace, opt ChannelOptions) *CounterSet {
	c := &CounterSet{Model: t.Model}
	names := make(map[string]struct{})
	var utilWeighted float64
	short := 0
	for _, e := range t.Execs {
		d := e.Duration()
		names[e.Name] = struct{}{}
		c.TotalTimeUS += d
		if d > c.PeakKernelUS {
			c.PeakKernelUS = d
		}
		switch {
		case strings.HasPrefix(e.Name, "memcpy_"):
			c.MemcpyTimeUS += d
		case isGemmKernel(e.Name):
			c.GemmTimeUS += d
		default:
			c.MemTimeUS += d
		}
		if d < 1.5 {
			short++
		}
		utilWeighted += kernelUtilization(e.Name) * d
	}
	c.Execs = float64(len(t.Execs))
	c.UniqueKernels = float64(len(names))
	if len(t.Execs) > 0 {
		c.MeanKernelUS = c.TotalTimeUS / c.Execs
		c.ShortKernelFrac = float64(short) / c.Execs
	}
	if wall := t.Duration(); wall > 0 {
		c.OccupancyProxy = utilWeighted / wall
	}
	if opt.Noise > 0 {
		r := rng.New(opt.Seed)
		jitter := func(v *float64) {
			*v *= 1 + (2*r.Float64()-1)*opt.Noise
		}
		// Fixed field order: the noise stream maps to counters
		// deterministically.
		jitter(&c.Execs)
		jitter(&c.UniqueKernels)
		jitter(&c.TotalTimeUS)
		jitter(&c.MeanKernelUS)
		jitter(&c.PeakKernelUS)
		jitter(&c.GemmTimeUS)
		jitter(&c.MemTimeUS)
		jitter(&c.MemcpyTimeUS)
		jitter(&c.ShortKernelFrac)
		jitter(&c.OccupancyProxy)
	}
	return c
}

func min64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

package gpusim

import (
	"reflect"
	"testing"
)

func channelTrace() *Trace {
	return SimulateTransformer(bertBase(), nil,
		Profile{Source: "hf", Framework: PyTorch, Seed: 17}, Options{})
}

// The derived channels are pure functions of (Trace, ChannelOptions):
// the same inputs must yield identical measurements, different seeds or
// noise levels different ones.
func TestChannelsDeterministic(t *testing.T) {
	tr := channelTrace()
	opt := ChannelOptions{Seed: 5, Noise: 2}
	p1 := PowerTraceOf(tr, opt)
	p2 := PowerTraceOf(tr, opt)
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("same options must derive identical power traces")
	}
	c1 := CountersOf(tr, opt)
	c2 := CountersOf(tr, opt)
	if !reflect.DeepEqual(c1, c2) {
		t.Fatal("same options must derive identical counter sets")
	}
	p3 := PowerTraceOf(tr, ChannelOptions{Seed: 6, Noise: 2})
	if reflect.DeepEqual(p1, p3) {
		t.Fatal("a different seed must perturb the noisy power trace")
	}
	c3 := CountersOf(tr, ChannelOptions{Seed: 6, Noise: 2})
	if reflect.DeepEqual(c1, c3) {
		t.Fatal("a different seed must perturb the noisy counter set")
	}
}

// Different releases of the same architecture must look different on the
// derived channels too — that is what makes them identification channels.
func TestChannelsSeparateReleases(t *testing.T) {
	a := SimulateTransformer(bertBase(), nil, Profile{Source: "a", Framework: PyTorch, Seed: 1}, Options{})
	b := SimulateTransformer(bertBase(), nil, Profile{Source: "b", Framework: PyTorch, Seed: 2}, Options{})
	pa, pb := PowerTraceOf(a, ChannelOptions{}), PowerTraceOf(b, ChannelOptions{})
	if pa.MeanWatts() == pb.MeanWatts() && pa.Duration() == pb.Duration() {
		t.Fatal("two releases produced indistinguishable power traces")
	}
	ca, cb := CountersOf(a, ChannelOptions{}), CountersOf(b, ChannelOptions{})
	if ca.TotalTimeUS == cb.TotalTimeUS && ca.Execs == cb.Execs {
		t.Fatal("two releases produced indistinguishable counter sets")
	}
}

// Physical sanity: clean power stays within [idle-ish, TDP], temperature
// starts at ambient and rises while staying bounded by the steady state
// of TDP, and counter aggregates reconcile with the schedule.
func TestChannelsPhysicalBounds(t *testing.T) {
	tr := channelTrace()
	p := PowerTraceOf(tr, ChannelOptions{})
	if len(p.Samples) == 0 {
		t.Fatal("empty power trace")
	}
	maxTemp := AmbientC + thermalResistance*TDPWatts
	for _, s := range p.Samples {
		if s.Watts < 0 || s.Watts > TDPWatts {
			t.Fatalf("sample watts %v outside [0, %v]", s.Watts, TDPWatts)
		}
		if s.TempC < AmbientC-1e-9 || s.TempC > maxTemp {
			t.Fatalf("sample temp %v outside [%v, %v]", s.TempC, AmbientC, maxTemp)
		}
	}
	if p.PeakWatts() <= IdleWatts {
		t.Fatalf("peak watts %v never rose above idle %v", p.PeakWatts(), IdleWatts)
	}
	if p.Samples[len(p.Samples)-1].TempC <= AmbientC {
		t.Fatal("die temperature never rose above ambient")
	}

	c := CountersOf(tr, ChannelOptions{})
	if int(c.Execs) != len(tr.Execs) {
		t.Fatalf("counter execs %v, schedule has %d", c.Execs, len(tr.Execs))
	}
	sum := c.GemmTimeUS + c.MemTimeUS + c.MemcpyTimeUS
	if d := sum - c.TotalTimeUS; d > 1e-6 || d < -1e-6 {
		t.Fatalf("kernel-class times sum to %v, total is %v", sum, c.TotalTimeUS)
	}
	if c.OccupancyProxy <= 0 || c.OccupancyProxy > 1 {
		t.Fatalf("occupancy proxy %v outside (0, 1]", c.OccupancyProxy)
	}
}

// Noise perturbs but does not drown: the noisy derivation differs from
// the clean one, yet the counters stay within the requested relative
// band.
func TestChannelNoiseBounded(t *testing.T) {
	tr := channelTrace()
	clean := CountersOf(tr, ChannelOptions{})
	noisy := CountersOf(tr, ChannelOptions{Seed: 9, Noise: 0.05})
	if reflect.DeepEqual(clean, noisy) {
		t.Fatal("noise did not perturb the counter set")
	}
	rel := func(a, b float64) float64 {
		if a == 0 {
			return 0
		}
		d := (b - a) / a
		if d < 0 {
			d = -d
		}
		return d
	}
	pairs := [][2]float64{
		{clean.Execs, noisy.Execs},
		{clean.TotalTimeUS, noisy.TotalTimeUS},
		{clean.PeakKernelUS, noisy.PeakKernelUS},
		{clean.OccupancyProxy, noisy.OccupancyProxy},
	}
	for _, p := range pairs {
		if rel(p[0], p[1]) > 0.05+1e-9 {
			t.Fatalf("counter moved %v relative, noise bound is 0.05", rel(p[0], p[1]))
		}
	}
}

package gpusim

import (
	"fmt"
)

// CNNLayer is one layer of a convolutional network, used to simulate the
// traces DeepSniffer-style architecture extraction consumes (Table 2).
type CNNLayer struct {
	Kind string // "conv", "bn", "relu", "pool", "add", "fc"
	// Work parameters; only the relevant ones are set per kind.
	Cin, Cout, K, HW int
}

// CNNArch is a convolutional network architecture as a layer sequence.
type CNNArch struct {
	Name   string
	Layers []CNNLayer
}

// ResNet18Arch returns a ResNet-18-shaped layer sequence (stem + 8 residual
// blocks + classifier), the architecture DeepSniffer's evaluation uses.
func ResNet18Arch() CNNArch {
	a := CNNArch{Name: "resnet18"}
	add := func(kind string, cin, cout, k, hw int) {
		a.Layers = append(a.Layers, CNNLayer{Kind: kind, Cin: cin, Cout: cout, K: k, HW: hw})
	}
	add("conv", 3, 64, 7, 112)
	add("bn", 64, 64, 0, 112)
	add("relu", 64, 64, 0, 112)
	add("pool", 64, 64, 3, 56)
	stage := func(cin, cout, hw, blocks int) {
		for b := 0; b < blocks; b++ {
			in := cout
			if b == 0 {
				in = cin
			}
			add("conv", in, cout, 3, hw)
			add("bn", cout, cout, 0, hw)
			add("relu", cout, cout, 0, hw)
			add("conv", cout, cout, 3, hw)
			add("bn", cout, cout, 0, hw)
			add("add", cout, cout, 0, hw)
			add("relu", cout, cout, 0, hw)
		}
	}
	stage(64, 64, 56, 2)
	stage(64, 128, 28, 2)
	stage(128, 256, 14, 2)
	stage(256, 512, 7, 2)
	add("pool", 512, 512, 7, 1)
	add("fc", 512, 1000, 0, 1)
	return a
}

// cnnOp converts a CNN layer to a logical op.
func cnnOp(l CNNLayer) op {
	area := float64(l.HW * l.HW)
	switch l.Kind {
	case "conv":
		return op{kind: opGemm, flops: 2 * area * float64(l.Cin*l.Cout*l.K*l.K),
			m: l.HW * l.HW, n: l.Cout, tag: "conv", half: true}
	case "bn":
		return op{kind: opLayerNorm, flops: area * float64(l.Cout), tag: "bn"}
	case "relu":
		return op{kind: opElementwise, flops: area * float64(l.Cout), tag: "relu"}
	case "add":
		return op{kind: opElementwise, flops: area * float64(l.Cout), tag: "add"}
	case "pool":
		return op{kind: opReduce, flops: area * float64(l.Cout), tag: "pool"}
	case "fc":
		return op{kind: opGemv, flops: 2 * float64(l.Cin*l.Cout), tag: "fc"}
	default:
		return op{kind: opElementwise, flops: area, tag: l.Kind}
	}
}

// SimulateCNN produces the kernel trace of one CNN inference plus, aligned
// with the trace's executions, the ground-truth layer kind that produced
// each kernel. DeepSniffer-style extractors train on (trace, labels) pairs
// from one release and are evaluated on traces of other releases of the
// same architecture.
func SimulateCNN(arch CNNArch, prof Profile, opt Options) (*Trace, []string) {
	prof = prof.effective(opt)
	t := &Trace{Model: arch.Name}
	var labels []string
	now := 0.0
	emit := func(o op, label string) {
		now = prof.emit(t, o, now)
		labels = append(labels, label)
	}
	emitNamed := func(name string, dur float64, label string) {
		now = prof.emitNamed(t, name, dur, now)
		labels = append(labels, label)
	}
	fusionIdx := 0
	for _, l := range arch.Layers {
		o := cnnOp(l)
		switch prof.Framework {
		case TensorFlow:
			if o.kind == opGemm {
				emitNamed("convert_"+gemmTile(o), smallOverhead, l.Kind)
			}
			emit(o, l.Kind)
			extra := 1 + prof.opRNG("tf-extra", o).Intn(3)
			for i := 0; i < extra; i++ {
				emit(op{kind: opElementwise, flops: o.flops / 8, tag: o.tag + "_micro"}, l.Kind)
			}
			if prof.opRNG("tf-fusion", o).Float64() < 0.3 {
				emitNamed(fmtFusion(fusionIdx), smallOverhead+o.flops/(4*memThroughput), l.Kind)
				fusionIdx++
			}
		default:
			emit(o, l.Kind)
			if prof.ShortKernels && o.kind == opGemm {
				emit(op{kind: opReduce, flops: float64(o.n), tag: "reduce"}, l.Kind)
			}
			if prof.Framework == MXNet {
				// Imperative-engine bookkeeping kernels, as in the
				// transformer scheduler.
				extra := 2 + prof.opRNG("mx-extra", o).Intn(2)
				for i := 0; i < extra; i++ {
					emit(op{kind: opElementwise, flops: o.flops / 16, tag: o.tag + "_mxaux"}, l.Kind)
				}
			}
		}
	}
	if opt.JitterMagnitude > 0 {
		t.Jitter(opt.JitterMagnitude, opt.MeasureSeed)
	}
	return t, labels
}

func fmtFusion(i int) string {
	return fmt.Sprintf("fusion_%d", i)
}

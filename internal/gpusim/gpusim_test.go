package gpusim

import (
	"strings"
	"testing"

	"decepticon/internal/transformer"
)

func bertBase() transformer.Config {
	cfg := transformer.Family()["base"]
	return cfg
}

func bertLarge() transformer.Config {
	return transformer.Family()["large"]
}

func hfProfile() Profile {
	return Profile{Source: "huggingface", Framework: PyTorch, Seed: 101}
}

func TestTraceDeterministicPerRelease(t *testing.T) {
	p := hfProfile()
	a := SimulateTransformer(bertBase(), nil, p, Options{})
	b := SimulateTransformer(bertBase(), nil, p, Options{})
	if len(a.Execs) != len(b.Execs) {
		t.Fatal("same release must give same trace length")
	}
	for i := range a.Execs {
		if a.Execs[i] != b.Execs[i] {
			t.Fatalf("trace diverged at %d", i)
		}
	}
}

func TestDifferentReleasesDiffer(t *testing.T) {
	a := SimulateTransformer(bertBase(), nil, Profile{Source: "a", Framework: PyTorch, Seed: 1}, Options{})
	b := SimulateTransformer(bertBase(), nil, Profile{Source: "b", Framework: PyTorch, Seed: 2}, Options{})
	same := len(a.Execs) == len(b.Execs)
	if same {
		for i := range a.Execs {
			if a.Execs[i].Name != b.Execs[i].Name {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different release seeds should select different kernels")
	}
}

func TestTensorFlowKernelInflation(t *testing.T) {
	pt := SimulateTransformer(bertLarge(), nil, Profile{Source: "hf", Framework: PyTorch, Seed: 3}, Options{})
	tf := SimulateTransformer(bertLarge(), nil, Profile{Source: "google", Framework: TensorFlow, Seed: 4}, Options{})
	ptExecs, ptUnique := pt.KernelCensus()
	tfExecs, tfUnique := tf.KernelCensus()
	if ratio := float64(tfExecs) / float64(ptExecs); ratio < 3 {
		t.Fatalf("TF execution inflation %.1fx, want >= 3x (paper: up to 8x)", ratio)
	}
	if ratio := float64(tfUnique) / float64(ptUnique); ratio < 3 {
		t.Fatalf("TF unique-kernel inflation %.1fx (%d vs %d), want >= 3x", ratio, tfUnique, ptUnique)
	}
	// PyTorch BERT runs a small, stable kernel set (paper: 11 kernels).
	if ptUnique > 25 {
		t.Fatalf("PyTorch unique kernels = %d, want a small set", ptUnique)
	}
}

func TestTensorCoresSpeedUpGemms(t *testing.T) {
	slow := SimulateTransformer(bertLarge(), nil, Profile{Source: "hf", Framework: PyTorch, Seed: 5}, Options{})
	fast := SimulateTransformer(bertLarge(), nil, Profile{Source: "nvidia", Framework: PyTorch, Seed: 5, TensorCores: true}, Options{})
	if fast.Duration() >= slow.Duration() {
		t.Fatalf("tensor cores must shorten inference: %v vs %v", fast.Duration(), slow.Duration())
	}
	found := false
	for _, n := range fast.UniqueKernelNames() {
		if strings.Contains(n, "fp16") {
			found = true
		}
	}
	if !found {
		t.Fatal("NVIDIA profile must use half-precision kernels")
	}
}

func TestShortKernelsProfile(t *testing.T) {
	plain := SimulateTransformer(bertBase(), nil, Profile{Source: "hf", Framework: PyTorch, Seed: 6}, Options{})
	meta := SimulateTransformer(bertBase(), nil, Profile{Source: "meta", Framework: PyTorch, Seed: 6, ShortKernels: true}, Options{})
	pe, _ := plain.KernelCensus()
	me, _ := meta.KernelCensus()
	if me <= pe {
		t.Fatal("short-kernel profile must launch more kernels")
	}
}

func TestLayerCountVisibleInTrace(t *testing.T) {
	// BERT-large analog has 2x the encoder sections of BERT-base analog;
	// with the same per-layer structure the trace has ~2x the kernels.
	base := SimulateTransformer(bertBase(), nil, hfProfile(), Options{})
	large := SimulateTransformer(bertLarge(), nil, hfProfile(), Options{})
	be, _ := base.KernelCensus()
	le, _ := large.KernelCensus()
	if le <= be {
		t.Fatal("more layers must produce more kernel executions")
	}
	// Peak kernel duration tracks hidden size (Fig 10).
	if large.PeakDuration() <= base.PeakDuration() {
		t.Fatalf("peak duration: large %v <= base %v", large.PeakDuration(), base.PeakDuration())
	}
}

func TestHeadPruningShortensAttention(t *testing.T) {
	cfg := bertLarge()
	full := SimulateTransformer(cfg, nil, hfProfile(), Options{})
	pruned := make([]int, cfg.Layers)
	for i := range pruned {
		pruned[i] = cfg.Heads - 4
	}
	fast := SimulateTransformer(cfg, pruned, hfProfile(), Options{})
	if fast.Duration() >= full.Duration() {
		t.Fatalf("pruning heads must shorten the trace: %v vs %v", fast.Duration(), full.Duration())
	}
}

func TestXLAIrregularTrace(t *testing.T) {
	p := Profile{Source: "nvidia-tf", Framework: TensorFlow, Seed: 7, XLA: true}
	tr := SimulateTransformer(bertLarge(), nil, p, Options{})
	var hasAutotune bool
	for _, e := range tr.Execs {
		if strings.HasPrefix(e.Name, "xla_autotune") {
			hasAutotune = true
		}
	}
	if !hasAutotune {
		t.Fatal("XLA trace must contain a compilation region")
	}
	// The compilation region sits in the middle of the timeline.
	var first, last float64 = -1, -1
	for _, e := range tr.Execs {
		if strings.HasPrefix(e.Name, "xla_autotune") {
			if first < 0 {
				first = e.Start
			}
			last = e.End
		}
	}
	total := tr.Duration()
	if first < total*0.1 || last > total*0.98 {
		t.Fatalf("XLA region not mid-trace: [%v, %v] of %v", first, last, total)
	}
}

func TestMonotoneTimestamps(t *testing.T) {
	for _, p := range []Profile{
		hfProfile(),
		{Source: "google", Framework: TensorFlow, Seed: 8},
		{Source: "g", Framework: TensorFlow, Seed: 9, XLA: true},
		{Source: "amazon", Framework: MXNet, Seed: 10},
	} {
		tr := SimulateTransformer(bertBase(), nil, p, Options{})
		prev := 0.0
		for i, e := range tr.Execs {
			if e.Start < prev || e.End <= e.Start {
				t.Fatalf("profile %s: bad timestamps at %d: %+v", p.Source, i, e)
			}
			prev = e.End
		}
	}
}

func TestJitterPreservesOrderAndChangesDurations(t *testing.T) {
	clean := SimulateTransformer(bertBase(), nil, hfProfile(), Options{})
	noisy := SimulateTransformer(bertBase(), nil, hfProfile(), Options{MeasureSeed: 42, JitterMagnitude: 2})
	if len(clean.Execs) != len(noisy.Execs) {
		t.Fatal("jitter must not change kernel count")
	}
	changed := false
	prev := 0.0
	for i := range noisy.Execs {
		if noisy.Execs[i].Duration() != clean.Execs[i].Duration() {
			changed = true
		}
		if noisy.Execs[i].Start < prev {
			t.Fatal("jitter broke timeline ordering")
		}
		prev = noisy.Execs[i].End
	}
	if !changed {
		t.Fatal("jitter changed nothing")
	}
}

func TestPerturbKernels(t *testing.T) {
	tr := SimulateTransformer(bertBase(), nil, hfProfile(), Options{})
	orig := tr.Clone()
	tr.PerturbKernels(16, 20, 1)
	diff := 0
	for i := range tr.Execs {
		if tr.Execs[i].Duration() != orig.Execs[i].Duration() {
			diff++
		}
	}
	if diff == 0 || diff > 16 {
		t.Fatalf("perturbed %d kernels, want 1..16", diff)
	}
	for _, e := range tr.Execs {
		if e.Duration() <= 0 {
			t.Fatal("perturbation produced non-positive duration")
		}
	}
}

func TestSimulateCNNAlignment(t *testing.T) {
	arch := ResNet18Arch()
	for _, p := range []Profile{
		{Source: "deepsniffer", Framework: PyTorch, Seed: 11},
		{Source: "google", Framework: TensorFlow, Seed: 12},
		{Source: "amazon", Framework: MXNet, Seed: 13, ShortKernels: true},
	} {
		tr, labels := SimulateCNN(arch, p, Options{})
		if len(tr.Execs) != len(labels) {
			t.Fatalf("%s: %d execs vs %d labels", p.Source, len(tr.Execs), len(labels))
		}
		if len(tr.Execs) < len(arch.Layers) {
			t.Fatalf("%s: trace shorter than layer count", p.Source)
		}
	}
	// TF trace much longer than PyTorch trace (Table 2 kernel seq length).
	pt, _ := SimulateCNN(arch, Profile{Source: "ds", Framework: PyTorch, Seed: 14}, Options{})
	tf, _ := SimulateCNN(arch, Profile{Source: "g", Framework: TensorFlow, Seed: 15}, Options{})
	if len(tf.Execs) < 2*len(pt.Execs) {
		t.Fatalf("TF CNN trace %d not much longer than PyTorch %d", len(tf.Execs), len(pt.Execs))
	}
}

func TestFineTunedInheritsFingerprint(t *testing.T) {
	// A fine-tuned model differs from its pre-trained model only in the
	// task head; the release profile is identical, so the trace prefix
	// (everything except the tiny head section) matches exactly.
	pre := bertBase()
	ft := pre.WithLabels(7)
	p := hfProfile()
	a := SimulateTransformer(pre, nil, p, Options{})
	b := SimulateTransformer(ft, nil, p, Options{})
	n := len(a.Execs) - 2 // head emits 2 kernels
	if len(b.Execs) < n {
		t.Fatal("fine-tuned trace too short")
	}
	for i := 0; i < n; i++ {
		if a.Execs[i].Name != b.Execs[i].Name {
			t.Fatalf("fingerprint not inherited at kernel %d", i)
		}
	}
}

func TestFrameworkString(t *testing.T) {
	if PyTorch.String() != "pytorch" || TensorFlow.String() != "tensorflow" || MXNet.String() != "mxnet" {
		t.Fatal("Framework.String broken")
	}
}

func TestSectionSpansCoverTrace(t *testing.T) {
	for _, p := range []Profile{
		hfProfile(),
		{Source: "google", Framework: TensorFlow, Seed: 31},
		{Source: "amazon", Framework: MXNet, Seed: 32},
	} {
		tr := SimulateTransformer(bertBase(), nil, p, Options{})
		if len(tr.Sections) != bertBase().Layers+2 {
			t.Fatalf("%s: %d sections, want %d", p.Source, len(tr.Sections), bertBase().Layers+2)
		}
		// Contiguous, ordered, and covering everything except the two
		// memcpy events that bracket the kernels.
		prevEnd := 1 // exec 0 is memcpy_h2d
		for i, s := range tr.Sections {
			if s.Start != prevEnd {
				t.Fatalf("%s: section %d starts at %d, want %d", p.Source, i, s.Start, prevEnd)
			}
			if s.End <= s.Start {
				t.Fatalf("%s: empty section %d", p.Source, i)
			}
			prevEnd = s.End
		}
		if prevEnd != len(tr.Execs)-1 {
			t.Fatalf("%s: sections end at %d, trace has %d execs", p.Source, prevEnd, len(tr.Execs))
		}
	}
}

func TestMemcpyEventsBracketTrace(t *testing.T) {
	tr := SimulateTransformer(bertBase(), nil, hfProfile(), Options{})
	first, last := tr.Execs[0].Name, tr.Execs[len(tr.Execs)-1].Name
	if !strings.HasPrefix(first, "memcpy_h2d_") {
		t.Fatalf("first event %q, want h2d memcpy", first)
	}
	if !strings.HasPrefix(last, "memcpy_d2h_") {
		t.Fatalf("last event %q, want d2h memcpy", last)
	}
	// The d2h size leaks the label count: different label widths give
	// different transfer sizes.
	a := SimulateTransformer(bertBase(), nil, hfProfile(), Options{})
	b := SimulateTransformer(bertBase().WithLabels(7), nil, hfProfile(), Options{})
	if a.Execs[len(a.Execs)-1].Name == b.Execs[len(b.Execs)-1].Name {
		t.Fatal("label count did not leak through the d2h transfer size")
	}
}

func TestKernelRandomizationCountermeasure(t *testing.T) {
	p := hfProfile()
	p.RandomizeKernels = true
	a := SimulateTransformer(bertBase(), nil, p, Options{MeasureSeed: 1})
	b := SimulateTransformer(bertBase(), nil, p, Options{MeasureSeed: 2})
	same := true
	for i := range a.Execs {
		if i < len(b.Execs) && a.Execs[i].Name != b.Execs[i].Name {
			same = false
			break
		}
	}
	if same {
		t.Fatal("randomized runs chose identical kernel variants")
	}
	// The same measurement seed reproduces (determinism preserved).
	c := SimulateTransformer(bertBase(), nil, p, Options{MeasureSeed: 1})
	for i := range a.Execs {
		if a.Execs[i] != c.Execs[i] {
			t.Fatal("randomization must still be deterministic per seed")
		}
	}
}

func TestCloneRoundTrip(t *testing.T) {
	orig := SimulateTransformer(bertBase(), nil, hfProfile(), Options{})
	if len(orig.Sections) == 0 {
		t.Fatal("simulated trace carries no sections; test needs them")
	}
	c := orig.Clone()
	if c.Model != orig.Model || len(c.Execs) != len(orig.Execs) {
		t.Fatal("clone lost model name or execs")
	}
	if len(c.Sections) != len(orig.Sections) {
		t.Fatalf("clone has %d sections, original %d", len(c.Sections), len(orig.Sections))
	}
	for i := range orig.Sections {
		if c.Sections[i] != orig.Sections[i] {
			t.Fatalf("section %d diverged: %+v vs %+v", i, c.Sections[i], orig.Sections[i])
		}
	}
	// Deep copy: mutating the clone must not write through to the original.
	c.Execs[0].Name = "mutated"
	c.Sections[0].Start = -99
	if orig.Execs[0].Name == "mutated" || orig.Sections[0].Start == -99 {
		t.Fatal("clone aliases the original's slices")
	}
}

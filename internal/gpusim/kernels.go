package gpusim

import (
	"fmt"

	"decepticon/internal/rng"
)

// Framework identifies the deep-learning framework a model release was
// built with. The framework is one of the strongest fingerprint
// contributors in the paper (§4.2): TensorFlow models run up to 8× more
// kernel executions and use ~40× more unique kernels than PyTorch models.
type Framework int

// Supported frameworks.
const (
	PyTorch Framework = iota
	TensorFlow
	MXNet
)

// String implements fmt.Stringer.
func (f Framework) String() string {
	switch f {
	case PyTorch:
		return "pytorch"
	case TensorFlow:
		return "tensorflow"
	case MXNet:
		return "mxnet"
	default:
		return fmt.Sprintf("framework(%d)", int(f))
	}
}

// Profile describes how a model release executes on the GPU. It is a
// property of the *release* (source + framework + architecture + library
// versions), which is exactly why a fine-tuned model inherits its
// pre-trained model's fingerprint: fine-tuning does not change the
// release's kernel selection.
type Profile struct {
	Source    string // "huggingface", "nvidia", "google", "meta", "amazon", ...
	Framework Framework
	// TensorCores enables half-precision tensor-core gemm kernels; the
	// paper observed NVIDIA releases consistently using them.
	TensorCores bool
	// ShortKernels adds the many small reduction/copy kernels the paper
	// observed in Meta releases ("crowded kernel executions on the bottom
	// of the graph", Fig 7).
	ShortKernels bool
	// XLA enables fused, irregular execution with a mid-trace compilation
	// region (Fig 12).
	XLA bool
	// Seed makes kernel-variant choices deterministic per release.
	Seed uint64
	// RandomizeKernels enables the paper's countermeasure (§8): the
	// library/kernel combination is re-chosen at run time, so each
	// measurement sees a different variant selection and the release
	// fingerprint dissolves. Layer periodicity survives (variants stay
	// consistent within one run), so the architecture still leaks — only
	// the release identity is hidden.
	RandomizeKernels bool
}

// opKind enumerates the logical operations a model executes; the profile
// maps each to concrete kernel launches.
type opKind int

const (
	opEmbed opKind = iota
	opGemm
	opSoftmax
	opLayerNorm
	opElementwise
	opReduce
	opGemv
)

// op is one logical operation with its work volume.
type op struct {
	kind  opKind
	flops float64 // multiply-accumulate count ×2 for gemms, element count otherwise
	m, n  int     // gemm output shape (used for tile-variant selection)
	tag   string  // discriminator for naming (e.g. "qkv", "ffn1")
	half  bool    // eligible for tensor-core half precision
}

// kernelName resolves an op to a kernel name for a profile. The variant
// preference is a deterministic function of (release seed, op kind, op
// tag, tile): a release links exactly one implementation per operation, so
// every layer of every model of the release picks the same variant —
// preserving the per-layer repetition — while different releases diverge.
// This is the per-release fingerprint.
func (p Profile) kernelName(o op) string {
	r := rng.New(p.Seed ^ rng.Seed("variant", o.tag, fmt.Sprint(int(o.kind)), gemmTile(o)))
	switch p.Framework {
	case PyTorch:
		return p.pytorchName(o, r)
	case TensorFlow:
		return p.tensorflowName(o, r)
	default:
		return p.mxnetName(o, r)
	}
}

// opRNG returns a deterministic stream for per-op scheduling decisions
// (micro-kernel counts, fusion placement) keyed by the op's tag, so the
// decisions repeat identically across layers.
func (p Profile) opRNG(label string, o op) *rng.RNG {
	return rng.New(p.Seed ^ rng.Seed(label, o.tag))
}

func pick(r *rng.RNG, alternatives ...string) string {
	return alternatives[r.Intn(len(alternatives))]
}

func (p Profile) pytorchName(o op, r *rng.RNG) string {
	switch o.kind {
	case opEmbed:
		return "indexSelectLargeIndex"
	case opGemm:
		if o.half && p.TensorCores {
			return fmt.Sprintf("volta_fp16_s884gemm_fp16_%s", gemmTile(o))
		}
		return fmt.Sprintf("volta_sgemm_%s_%s", gemmTile(o), pick(r, "tn", "nn", "nt"))
	case opSoftmax:
		return "softmax_warp_forward"
	case opLayerNorm:
		return pick(r, "LayerNormForwardCUDAKernel", "cuApplyLayerNorm", "vectorized_layer_norm_kernel")
	case opElementwise:
		return pick(r, "vectorized_elementwise_kernel", "unrolled_elementwise_kernel", "elementwise_kernel_with_index")
	case opReduce:
		return pick(r, "splitKreduce_kernel", "reduce_1Block_kernel", "dot_kernel", "DeviceScanKernel", "CatArrayBatchedCopy")
	case opGemv:
		return "gemv2T_kernel_val"
	}
	return "unknown_kernel"
}

func (p Profile) tensorflowName(o op, r *rng.RNG) string {
	switch o.kind {
	case opEmbed:
		return "GatherV2_GPU"
	case opGemm:
		if o.half && p.TensorCores {
			return fmt.Sprintf("ampere_tp16_s16816gemm_tp16_%s", gemmTile(o))
		}
		return fmt.Sprintf("ampere_sgemm_%s_nn", gemmTile(o))
	case opSoftmax:
		return "Softmax_GPU_DT_FLOAT"
	case opLayerNorm:
		return pick(r, "FusedBatchNormV3_GPU", "LayerNorm_GPU_DT_FLOAT")
	case opElementwise:
		return pick(r, "AddV2_GPU_DT_FLOAT_DT_FLOAT_k", "Mul_GPU_DT_FLOAT_DT_FLOAT_ker", "Sub_GPU_DT_FLOAT", "Rsqrt_GPU_DT_FLOAT")
	case opReduce:
		return pick(r, "splitKreduce_kernel", "Sum_GPU_DT_FLOAT")
	case opGemv:
		return "MatVec_GPU_DT_FLOAT"
	}
	return "unknown_kernel"
}

func (p Profile) mxnetName(o op, r *rng.RNG) string {
	switch o.kind {
	case opEmbed:
		return "EmbeddingFindBounds"
	case opGemm:
		return fmt.Sprintf("mxnet_gemm_%s_kernel", gemmTile(o))
	case opSoftmax:
		return "mxnet_softmax_compute_kernel"
	case opLayerNorm:
		return "mxnet_layer_norm_fused"
	case opElementwise:
		return pick(r, "mxnet_generic_kernel", "mxnet_op_kernel_add", "mxnet_op_kernel_mul", "mxnet_broadcast_kernel")
	case opReduce:
		return pick(r, "mxnet_reduce_kernel", "mxnet_reduce_lines_kernel")
	case opGemv:
		return "mxnet_gemv_kernel"
	}
	return "unknown_kernel"
}

// gemmTile returns the tile-size suffix real BLAS libraries encode in
// kernel names; it depends on the output shape, which is how the hidden
// size leaks into kernel *names* as well as durations.
func gemmTile(o op) string {
	switch {
	case o.n >= 256 && o.m >= 64:
		return "256x128"
	case o.n >= 128 && o.m >= 64:
		return "128x128"
	case o.n >= 128:
		return "128x64"
	case o.n >= 64:
		return "64x64"
	case o.n >= 32:
		return "32x128"
	default:
		return "32x32"
	}
}

// ---- timing model ----

// Timing constants (µs-scale roofline): a kernel costs a launch overhead
// plus its work divided by an effective throughput. Absolute values are
// arbitrary; relative structure (gemms dominate, hidden size sets the peak,
// tensor cores are ~4× faster) mirrors the measurements in the paper.
const (
	sgemmThroughput = 4000.0  // flops per µs
	halfThroughput  = 16000.0 // tensor-core flops per µs
	memThroughput   = 2500.0  // elements per µs for memory-bound ops
	gemmOverhead    = 2.0     // µs
	smallOverhead   = 0.8     // µs
	launchGap       = 0.4     // µs between kernel launches
)

// duration returns the simulated runtime of an op in µs, before the
// variant-specific performance factor is applied.
func (p Profile) duration(o op) float64 {
	switch o.kind {
	case opGemm:
		tput := sgemmThroughput
		if o.half && p.TensorCores {
			tput = halfThroughput
		}
		return gemmOverhead + o.flops/tput
	case opGemv:
		return smallOverhead + o.flops/sgemmThroughput
	case opEmbed, opSoftmax, opLayerNorm, opElementwise:
		return smallOverhead + o.flops/memThroughput
	case opReduce:
		return smallOverhead/2 + o.flops/(2*memThroughput)
	}
	return smallOverhead
}

// hash01 maps a string to a deterministic value in [0, 1).
func hash01(s string) float64 {
	return float64(rng.Seed("perf", s)>>11) / (1 << 53)
}

// variantFactor is the performance multiplier of a concrete kernel
// implementation. Different library kernels implementing the same logical
// op genuinely differ in speed (tiling, vectorization, fusion), which is
// why a release's kernel *selection* shows up in the timing fingerprint,
// not just in kernel names the side channel cannot see.
func variantFactor(name string) float64 {
	return 0.75 + 0.6*hash01(name)
}

// clockFactor is the release-wide speed multiplier (library versions,
// allocator behavior, stream setup) derived from the release seed.
func (p Profile) clockFactor() float64 {
	return 0.9 + 0.25*float64(p.Seed%1024)/1024
}

package gpusim

import (
	"fmt"

	"decepticon/internal/rng"
	"decepticon/internal/transformer"
)

// Options controls one simulated inference measurement.
type Options struct {
	// SeqLen is the input length; 0 means the model's MaxSeq.
	SeqLen int
	// MeasureSeed seeds run-to-run measurement jitter. Two measurements of
	// the same model with different seeds differ slightly, as on real
	// hardware.
	MeasureSeed uint64
	// JitterMagnitude is the per-kernel measurement noise in µs (0 = clean).
	JitterMagnitude float64
}

// SimulateTransformer produces the kernel execution trace of one inference
// of a transformer with the given architecture under the given release
// profile. activeHeads gives the number of unpruned attention heads per
// layer; nil means all heads active.
func SimulateTransformer(cfg transformer.Config, activeHeads []int, prof Profile, opt Options) *Trace {
	seq := opt.SeqLen
	if seq <= 0 {
		seq = cfg.MaxSeq
	}
	prof = prof.effective(opt)
	plan := transformerPlan(cfg, seq, activeHeads)
	t := prof.schedule(cfg.Name, plan)
	if enableMemcpy {
		addMemcpyEvents(t, cfg, seq)
	}
	if opt.JitterMagnitude > 0 {
		t.Jitter(opt.JitterMagnitude, opt.MeasureSeed)
	}
	return t
}

var enableMemcpy = true

// addMemcpyEvents brackets the trace with the host↔device transfers a
// PCIe snooper sees (§3 mentions bus probing on the CPU-GPU interconnect):
// the input-token upload before the first kernel and the logits download
// after the last. Their *sizes* leak the sequence length and the output
// width — the latter is how the attacker learns the victim's label count
// before spending a single classification query.
func addMemcpyEvents(t *Trace, cfg transformer.Config, seq int) {
	if len(t.Execs) == 0 {
		return
	}
	const pcieBytesPerUS = 12000.0 // ~12 GB/s effective
	upBytes := float64(seq * 8)    // int64 token ids
	downBytes := float64(cfg.Labels * 4)
	up := Exec{
		Name:  fmt.Sprintf("memcpy_h2d_%dB", int(upBytes)),
		Start: 0,
		End:   smallOverhead + upBytes/pcieBytesPerUS,
	}
	shift := up.End + launchGap - t.Execs[0].Start
	if shift > 0 {
		for i := range t.Execs {
			t.Execs[i].Start += shift
			t.Execs[i].End += shift
		}
	}
	last := t.Execs[len(t.Execs)-1].End
	down := Exec{
		Name:  fmt.Sprintf("memcpy_d2h_%dB", int(downBytes)),
		Start: last + launchGap,
		End:   last + launchGap + smallOverhead + downBytes/pcieBytesPerUS,
	}
	t.Execs = append([]Exec{up}, t.Execs...)
	t.Execs = append(t.Execs, down)
	// Keep section spans aligned with the shifted indices.
	for i := range t.Sections {
		t.Sections[i].Start++
		t.Sections[i].End++
	}
}

// section groups the ops of one logical model stage; XLA scheduling fuses
// within sections and the trace analyzer looks for section periodicity.
type section struct {
	name string // "embed", "encoder", "head"
	ops  []op
}

// transformerPlan lists the logical ops of one inference in order.
func transformerPlan(cfg transformer.Config, seq int, activeHeads []int) []section {
	h := cfg.Hidden
	var plan []section

	plan = append(plan, section{name: "embed", ops: []op{
		{kind: opEmbed, flops: float64(seq * h), tag: "tok_embed"},
		{kind: opElementwise, flops: float64(seq * h), tag: "pos_add"},
	}})

	for l := 0; l < cfg.Layers; l++ {
		active := cfg.Heads
		if activeHeads != nil {
			active = activeHeads[l]
		}
		attnDim := cfg.HeadDim() * active
		secName := fmt.Sprintf("encoder%d", l)
		attnTag := "attn"
		if cfg.Causal {
			// Decoder blocks run masked attention through dedicated
			// kernels — a further fingerprint difference between GPT-style
			// and BERT-style releases.
			secName = fmt.Sprintf("decoder%d", l)
			attnTag = "masked_attn"
		}
		enc := section{name: secName}
		// Q, K, V projections.
		for _, tag := range []string{"q_proj", "k_proj", "v_proj"} {
			enc.ops = append(enc.ops, op{kind: opGemm, flops: 2 * float64(seq*h*h), m: seq, n: h, tag: tag, half: true})
		}
		// Attention scores + softmax + context: work scales with the number
		// of *active* heads, which is how head pruning shows up in the
		// trace (Fig 21).
		enc.ops = append(enc.ops,
			op{kind: opGemm, flops: 2 * float64(seq*seq*attnDim), m: seq, n: seq, tag: attnTag + "_scores", half: true},
			op{kind: opSoftmax, flops: float64(active * seq * seq), tag: attnTag + "_softmax"},
			op{kind: opGemm, flops: 2 * float64(seq*seq*attnDim), m: seq, n: attnDim, tag: attnTag + "_ctx", half: true},
			op{kind: opGemm, flops: 2 * float64(seq*h*h), m: seq, n: h, tag: attnTag + "_out", half: true},
			op{kind: opElementwise, flops: float64(seq * h), tag: "residual1"},
			op{kind: opLayerNorm, flops: float64(seq * h), tag: "ln1"},
			op{kind: opGemm, flops: 2 * float64(seq*h*cfg.FFN), m: seq, n: cfg.FFN, tag: "ffn1", half: true},
			op{kind: opElementwise, flops: float64(seq * cfg.FFN), tag: "gelu"},
			op{kind: opGemm, flops: 2 * float64(seq*h*cfg.FFN), m: seq, n: h, tag: "ffn2", half: true},
			op{kind: opElementwise, flops: float64(seq * h), tag: "residual2"},
			op{kind: opLayerNorm, flops: float64(seq * h), tag: "ln2"},
		)
		plan = append(plan, enc)
	}

	plan = append(plan, section{name: "head", ops: []op{
		{kind: opGemv, flops: 2 * float64(h*cfg.Labels), tag: "classifier"},
		{kind: opElementwise, flops: float64(cfg.Labels), tag: "head_softmax"},
	}})
	return plan
}

// schedule turns a logical plan into concrete kernel launches under the
// profile's framework behavior.
func (p Profile) schedule(model string, plan []section) *Trace {
	switch {
	case p.XLA:
		return p.scheduleXLA(model, plan)
	case p.Framework == TensorFlow:
		return p.scheduleTF(model, plan)
	default:
		return p.scheduleDirect(model, plan)
	}
}

// scheduleDirect is the PyTorch/MXNet path: one kernel per op, plus the
// profile's extra short kernels.
func (p Profile) scheduleDirect(model string, plan []section) *Trace {
	t := &Trace{Model: model}
	now := 0.0
	for _, sec := range plan {
		secStart := len(t.Execs)
		for _, o := range sec.ops {
			now = p.emit(t, o, now)
			if p.ShortKernels && o.kind == opGemm {
				// Meta-style short reduction kernels after every gemm.
				for i := 0; i < 2; i++ {
					now = p.emit(t, op{kind: opReduce, flops: float64(o.n), tag: o.tag + "_reduce"}, now)
				}
			}
			if p.Framework == MXNet {
				// MXNet's imperative engine issues per-op bookkeeping
				// kernels (shape/copy/broadcast), inflating the launch
				// count well beyond PyTorch's.
				extra := 2 + p.opRNG("mx-extra", o).Intn(2)
				for i := 0; i < extra; i++ {
					now = p.emit(t, op{kind: opElementwise, flops: o.flops / 16, tag: o.tag + "_mxaux"}, now)
				}
			}
		}
		t.Sections = append(t.Sections, SectionSpan{Name: sec.name, Start: secStart, End: len(t.Execs)})
	}
	return t
}

// scheduleTF decomposes every logical op into several micro-kernels and
// inserts convert/fusion kernels, reproducing TensorFlow's ~8× execution
// count and much larger unique-kernel census.
func (p Profile) scheduleTF(model string, plan []section) *Trace {
	t := &Trace{Model: model}
	now := 0.0
	fusionIdx := 0
	for _, sec := range plan {
		secStart := len(t.Execs)
		for _, o := range sec.ops {
			// Data-layout conversion before heavy ops.
			if o.kind == opGemm {
				now = p.emitNamed(t, fmt.Sprintf("convert_%d", 400+fusionIdx%17), smallOverhead, now)
			}
			now = p.emit(t, o, now)
			// Epilogue micro-kernels: bias add, activation pieces, etc.
			// Their count is a per-op property of the release, so it
			// repeats identically across layers.
			extra := 2 + p.opRNG("tf-extra", o).Intn(3)
			for i := 0; i < extra; i++ {
				now = p.emit(t, op{kind: opElementwise, flops: o.flops / 8, tag: o.tag + "_micro"}, now)
			}
			// Occasional uniquely-named fusion kernels.
			if p.opRNG("tf-fusion", o).Float64() < 0.35 {
				now = p.emitNamed(t, fmt.Sprintf("fusion_%d", fusionIdx), smallOverhead+o.flops/(4*memThroughput), now)
				fusionIdx++
			}
		}
		t.Sections = append(t.Sections, SectionSpan{Name: sec.name, Start: secStart, End: len(t.Execs)})
	}
	return t
}

// scheduleXLA fuses each section into a few large kernels and inserts a
// mid-trace compilation/autotuning region, reproducing the irregular
// executions of Fig 12.
func (p Profile) scheduleXLA(model string, plan []section) *Trace {
	t := &Trace{Model: model}
	r := rng.New(p.Seed)
	now := 0.0
	fusionIdx := 0
	emitSection := func(sec section) {
		secStart := len(t.Execs)
		// Fuse the section's ops into 3 fusion kernels plus its gemms.
		var fused float64
		for _, o := range sec.ops {
			if o.kind == opGemm {
				now = p.emit(t, o, now)
			} else {
				fused += p.duration(o)
			}
		}
		for i := 0; i < 3; i++ {
			now = p.emitNamed(t, fmt.Sprintf("fusion_%d", fusionIdx), smallOverhead+fused*0.25, now)
			fusionIdx++
		}
		t.Sections = append(t.Sections, SectionSpan{Name: sec.name, Start: secStart, End: len(t.Execs)})
	}
	half := len(plan) / 2
	for _, sec := range plan[:half] {
		emitSection(sec)
	}
	// XLA compilation / autotuning region: long, irregular kernels.
	for i := 0; i < 14; i++ {
		d := 30 + 120*r.Float64()
		now = p.emitNamed(t, fmt.Sprintf("xla_autotune_%d", i), d, now)
	}
	for _, sec := range plan[half:] {
		emitSection(sec)
	}
	return t
}

// effective applies the run-time kernel-randomization countermeasure:
// every measurement re-seeds the variant selection.
func (p Profile) effective(opt Options) Profile {
	if p.RandomizeKernels {
		p.Seed ^= rng.Seed("kernel-randomization", fmt.Sprint(opt.MeasureSeed))
	}
	return p
}

// emit appends one kernel for op o at time now and returns the new clock.
func (p Profile) emit(t *Trace, o op, now float64) float64 {
	name := p.kernelName(o)
	return p.emitNamed(t, name, p.duration(o)*variantFactor(name), now)
}

func (p Profile) emitNamed(t *Trace, name string, dur, now float64) float64 {
	dur *= p.clockFactor()
	start := now + launchGap
	t.Execs = append(t.Execs, Exec{Name: name, Start: start, End: start + dur})
	return start + dur
}

// Package gpusim simulates GPU kernel execution timelines for model
// inference. It replaces the paper's physical side channel (Nsight-style
// kernel traces on an RTX 3050) with a deterministic model of the same
// degrees of freedom the attack exploits:
//
//   - kernel *selection* is a function of (framework, developer/source,
//     architecture) — TensorFlow models launch ~8× more kernel executions
//     and use far more unique kernels than PyTorch models, NVIDIA-optimized
//     models hit half-precision tensor-core gemms, Meta models launch many
//     short reduction kernels (paper Figs 7-9);
//   - kernel *timing* follows a roofline model (launch overhead + work /
//     throughput), so hidden size shows up in peak kernel duration and
//     layer count shows up as trace periodicity (Fig 10);
//   - per-model signatures are inherited from pre-trained to fine-tuned
//     models because they derive from the release (source + framework +
//     architecture + version), not from the fine-tuning task;
//   - XLA-style fused execution produces the irregular traces of Fig 12;
//   - head pruning shortens the attention kernels (Fig 21).
//
// Times are in microseconds throughout.
package gpusim

import (
	"sort"

	"decepticon/internal/rng"
)

// Exec is one kernel execution: the (T_invocation, T_termination) pair the
// paper's attacker collects (§5.2).
type Exec struct {
	Name  string
	Start float64 // µs since inference start
	End   float64 // µs since inference start
}

// Duration returns the kernel's runtime in µs.
func (e Exec) Duration() float64 { return e.End - e.Start }

// SectionSpan maps a logical model stage ("embed", "encoder3", "head") to
// its half-open range of exec indices. Spans are only meaningful to
// someone who can label them — e.g. an attacker profiling her own copy of
// the identified pre-trained model; a victim trace carries the same
// positional structure because pruning and fine-tuning change durations,
// not the launch schedule.
type SectionSpan struct {
	Name       string
	Start, End int
}

// Trace is a full time-series kernel execution record of one inference.
type Trace struct {
	Model string // victim/zoo model name the trace was collected from
	Execs []Exec
	// Sections records the logical stage boundaries (see SectionSpan).
	Sections []SectionSpan
}

// Duration returns the end-to-end inference time in µs.
func (t *Trace) Duration() float64 {
	if len(t.Execs) == 0 {
		return 0
	}
	return t.Execs[len(t.Execs)-1].End
}

// KernelCensus returns the number of kernel executions and the number of
// unique kernel names — the paper's Fig 9 statistics.
func (t *Trace) KernelCensus() (execs, unique int) {
	names := make(map[string]struct{})
	for _, e := range t.Execs {
		names[e.Name] = struct{}{}
	}
	return len(t.Execs), len(names)
}

// UniqueKernelNames returns the sorted set of kernel names in the trace.
func (t *Trace) UniqueKernelNames() []string {
	set := make(map[string]struct{})
	for _, e := range t.Execs {
		set[e.Name] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Durations returns every kernel duration in execution order.
func (t *Trace) Durations() []float64 {
	out := make([]float64, len(t.Execs))
	for i, e := range t.Execs {
		out[i] = e.Duration()
	}
	return out
}

// PeakDuration returns the longest kernel duration — the paper's proxy for
// the hidden-state size (Fig 10).
func (t *Trace) PeakDuration() float64 {
	var best float64
	for _, e := range t.Execs {
		if d := e.Duration(); d > best {
			best = d
		}
	}
	return best
}

// Clone returns a deep copy of the trace, including the section spans:
// consumers such as internal/pruning walk Sections of cloned reference
// traces, so dropping them here would silently erase the stage structure.
func (t *Trace) Clone() *Trace {
	c := &Trace{Model: t.Model, Execs: make([]Exec, len(t.Execs))}
	copy(c.Execs, t.Execs)
	if t.Sections != nil {
		c.Sections = make([]SectionSpan, len(t.Sections))
		copy(c.Sections, t.Sections)
	}
	return c
}

// PerturbKernels models the Fig 14 noise injection: count randomly chosen
// kernel executions have their duration changed by ±magnitude µs. The
// trace is modified in place.
func (t *Trace) PerturbKernels(count int, magnitude float64, seed uint64) {
	if len(t.Execs) == 0 || count <= 0 {
		return
	}
	r := rng.New(seed)
	for i := 0; i < count; i++ {
		j := r.Intn(len(t.Execs))
		delta := magnitude
		if r.Float64() < 0.5 {
			delta = -magnitude
		}
		e := &t.Execs[j]
		e.End += delta
		if e.End < e.Start+0.1 {
			e.End = e.Start + 0.1 // a kernel cannot run backwards
		}
	}
}

// Jitter applies small measurement noise (uniform ±magnitude µs) to every
// kernel's duration, modeling run-to-run variation when the attacker
// collects multiple traces of the same victim.
func (t *Trace) Jitter(magnitude float64, seed uint64) {
	r := rng.New(seed)
	var shift float64
	for i := range t.Execs {
		e := &t.Execs[i]
		delta := (2*r.Float64() - 1) * magnitude
		// A kernel cannot shrink below a minimal runtime; clamp the delta
		// so the applied change and the accumulated timeline shift agree.
		if minDelta := 0.1 - e.Duration(); delta < minDelta {
			delta = minDelta
		}
		e.Start += shift
		e.End += shift + delta
		// Subsequent kernels slide by the accumulated change so the
		// timeline stays consistent.
		shift += delta
	}
}

package ieee754

import (
	"fmt"
	"math"
)

// Format describes an IEEE-754-style binary floating-point layout. The
// paper's selective extraction "is applicable for other data types" (§8):
// float16 shortens both fields, bfloat16 keeps float32's 8-bit exponent
// with a 7-bit fraction — so the very same bit positions qualify for
// checking as in the float32 example of Fig 13.
type Format struct {
	Name     string
	ExpBits  int
	FracBits int
	Bias     int
}

// The supported formats.
var (
	Binary32 = Format{Name: "float32", ExpBits: 8, FracBits: 23, Bias: 127}
	Binary16 = Format{Name: "float16", ExpBits: 5, FracBits: 10, Bias: 15}
	BFloat16 = Format{Name: "bfloat16", ExpBits: 8, FracBits: 7, Bias: 127}
)

// Bits returns the total storage width (1 sign + exponent + fraction).
func (f Format) Bits() int { return 1 + f.ExpBits + f.FracBits }

// maxExp returns the largest finite biased exponent.
func (f Format) maxExp() int { return (1 << f.ExpBits) - 2 }

// Quantize rounds x to the nearest representable value of the format and
// returns its bit pattern. Subnormals flush to zero and overflow
// saturates to the largest finite value, matching common ML quantizers.
func (f Format) Quantize(x float32) uint64 {
	var sign uint64
	v := float64(x)
	if math.Signbit(v) {
		sign = 1
		v = -v
	}
	if v == 0 || math.IsNaN(v) {
		return sign << uint(f.ExpBits+f.FracBits)
	}
	exp := int(math.Floor(math.Log2(v)))
	biased := exp + f.Bias
	if biased < 1 {
		// Subnormal range: flush to zero.
		return sign << uint(f.ExpBits+f.FracBits)
	}
	if biased > f.maxExp() {
		biased = f.maxExp()
		exp = biased - f.Bias
		frac := uint64(1<<uint(f.FracBits)) - 1
		return sign<<uint(f.ExpBits+f.FracBits) | uint64(biased)<<uint(f.FracBits) | frac
	}
	mant := v/math.Pow(2, float64(exp)) - 1 // in [0, 1)
	frac := uint64(math.Round(mant * float64(uint64(1)<<uint(f.FracBits))))
	if frac >= 1<<uint(f.FracBits) {
		// Mantissa rounded up to 2.0: bump the exponent.
		frac = 0
		biased++
		if biased > f.maxExp() {
			biased = f.maxExp()
			frac = uint64(1<<uint(f.FracBits)) - 1
		}
	}
	return sign<<uint(f.ExpBits+f.FracBits) | uint64(biased)<<uint(f.FracBits) | frac
}

// Value decodes a bit pattern of the format to float32.
func (f Format) Value(bits uint64) float32 {
	sign := bits >> uint(f.ExpBits+f.FracBits) & 1
	biased := int(bits >> uint(f.FracBits) & ((1 << uint(f.ExpBits)) - 1))
	frac := bits & ((1 << uint(f.FracBits)) - 1)
	var v float64
	if biased == 0 {
		v = 0 // subnormals flushed
	} else {
		mant := 1 + float64(frac)/float64(uint64(1)<<uint(f.FracBits))
		v = mant * math.Pow(2, float64(biased-f.Bias))
	}
	if sign == 1 {
		v = -v
	}
	return float32(v)
}

// Sign returns the sign bit of a pattern.
func (f Format) Sign(bits uint64) int { return int(bits >> uint(f.ExpBits+f.FracBits) & 1) }

// Exponent returns the biased exponent field of a pattern.
func (f Format) Exponent(bits uint64) int {
	return int(bits >> uint(f.FracBits) & ((1 << uint(f.ExpBits)) - 1))
}

// UnbiasedExponent returns the effective exponent of a pattern.
func (f Format) UnbiasedExponent(bits uint64) int {
	e := f.Exponent(bits)
	if e == 0 {
		return 1 - f.Bias
	}
	return e - f.Bias
}

// FractionBitValue returns the place value of fraction bit k (MSB-first,
// k in [1, FracBits]) for a pattern's exponent.
func (f Format) FractionBitValue(bits uint64, k int) float64 {
	f.checkK(k)
	return math.Pow(2, float64(f.UnbiasedExponent(bits)-k))
}

// Bit returns raw bit i (0 = LSB) of a pattern.
func (f Format) Bit(bits uint64, i int) int {
	f.checkI(i)
	return int(bits >> uint(i) & 1)
}

// SetBit returns the pattern with raw bit i set to bit.
func (f Format) SetBit(bits uint64, i, bit int) uint64 {
	f.checkI(i)
	if bit != 0 && bit != 1 {
		panic("ieee754: bit must be 0 or 1")
	}
	mask := uint64(1) << uint(i)
	bits &^= mask
	if bit == 1 {
		bits |= mask
	}
	return bits
}

// SetFractionBit returns the pattern with fraction bit k (MSB-first) set.
func (f Format) SetFractionBit(bits uint64, k, bit int) uint64 {
	f.checkK(k)
	return f.SetBit(bits, f.FracBits-k, bit)
}

func (f Format) checkK(k int) {
	if k < 1 || k > f.FracBits {
		panic(fmt.Sprintf("ieee754: %s fraction bit %d out of [1,%d]", f.Name, k, f.FracBits))
	}
}

func (f Format) checkI(i int) {
	if i < 0 || i >= f.Bits() {
		panic(fmt.Sprintf("ieee754: %s raw bit %d out of [0,%d)", f.Name, i, f.Bits()))
	}
}

package ieee754

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFormatWidths(t *testing.T) {
	if Binary32.Bits() != 32 || Binary16.Bits() != 16 || BFloat16.Bits() != 16 {
		t.Fatal("format widths wrong")
	}
	if BFloat16.ExpBits != Binary32.ExpBits {
		t.Fatal("bfloat16 must share float32's exponent width (the §8 argument)")
	}
}

func TestQuantizeValueRoundTripExact(t *testing.T) {
	// Values exactly representable in every format round-trip exactly.
	for _, f := range []Format{Binary32, Binary16, BFloat16} {
		for _, v := range []float32{0, 1, -1, 0.5, 2, -0.25, 1.5} {
			if got := f.Value(f.Quantize(v)); got != v {
				t.Fatalf("%s: %v -> %v", f.Name, v, got)
			}
		}
	}
}

func TestQuantizeError(t *testing.T) {
	// Quantization error is bounded by half a ULP of the format.
	f := func(u uint32) bool {
		v := math.Float32frombits(u)
		if v != v || math.IsInf(float64(v), 0) || math.Abs(float64(v)) > 1e4 || math.Abs(float64(v)) < 1e-3 {
			return true
		}
		for _, fm := range []Format{Binary16, BFloat16} {
			got := fm.Value(fm.Quantize(v))
			ulp := math.Pow(2, float64(fm.UnbiasedExponent(fm.Quantize(v))-fm.FracBits))
			if math.Abs(float64(got)-float64(v)) > ulp {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeSaturates(t *testing.T) {
	big := Binary16.Value(Binary16.Quantize(1e9))
	if big < 60000 || big > 66000 {
		t.Fatalf("float16 saturation gave %v", big)
	}
	tiny := Binary16.Value(Binary16.Quantize(1e-9))
	if tiny != 0 {
		t.Fatalf("float16 subnormal flush gave %v", tiny)
	}
}

func TestFormatAgreesWithFloat32Helpers(t *testing.T) {
	f := func(u uint32) bool {
		v := math.Float32frombits(u)
		if v != v || math.IsInf(float64(v), 0) || v == 0 {
			return true
		}
		if math.Abs(float64(v)) < 1e-30 || math.Abs(float64(v)) > 1e30 {
			return true
		}
		bits := Binary32.Quantize(v)
		// Sign and exponent agree with the direct float32 helpers.
		if Binary32.Sign(bits) != Sign(v) {
			return false
		}
		if Binary32.UnbiasedExponent(bits) != UnbiasedExponent(v) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPaperBFloat16Claim(t *testing.T) {
	// §8: "If bfloat16 is used in the example of Fig 13, the same bits can
	// be checked as bfloat16 uses the same length exponent with float32."
	w := float32(0.018)
	b32 := Binary32.Quantize(w)
	b16 := BFloat16.Quantize(w)
	if Binary32.UnbiasedExponent(b32) != BFloat16.UnbiasedExponent(b16) {
		t.Fatal("bfloat16 exponent must match float32's")
	}
	// Fraction bit k has the same place value in both formats (as far as
	// bfloat16's 7 fraction bits reach).
	for k := 1; k <= BFloat16.FracBits; k++ {
		if Binary32.FractionBitValue(b32, k) != BFloat16.FractionBitValue(b16, k) {
			t.Fatalf("place value of bit %d differs", k)
		}
	}
}

func TestFormatBitSurgery(t *testing.T) {
	for _, fm := range []Format{Binary32, Binary16, BFloat16} {
		bits := fm.Quantize(0.3)
		for k := 1; k <= fm.FracBits; k++ {
			for _, b := range []int{0, 1} {
				got := fm.SetFractionBit(bits, k, b)
				if fm.Bit(got, fm.FracBits-k) != b {
					t.Fatalf("%s: SetFractionBit(%d,%d) failed", fm.Name, k, b)
				}
				if fm.Sign(got) != fm.Sign(bits) || fm.Exponent(got) != fm.Exponent(bits) {
					t.Fatalf("%s: bit surgery touched sign/exponent", fm.Name)
				}
			}
		}
	}
}

func TestFormatPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s must panic", name)
			}
		}()
		fn()
	}
	mustPanic("frac bit 0", func() { Binary16.FractionBitValue(0, 0) })
	mustPanic("frac bit 11", func() { Binary16.FractionBitValue(0, 11) })
	mustPanic("raw bit 16", func() { Binary16.Bit(0, 16) })
	mustPanic("bad bit value", func() { Binary16.SetBit(0, 0, 7) })
}

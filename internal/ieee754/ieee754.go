// Package ieee754 provides bit-level access to IEEE 754 binary32
// (float32) values. Decepticon's selective weight extraction (paper §6.1.1,
// Algorithm 1) reasons about which individual fraction bits of a weight can
// account for the fine-tuning weight-value gap; this package supplies the
// field extraction, per-bit value weights, and bit surgery it needs.
//
// Bit layout used throughout (binary32):
//
//	bit 31        : sign
//	bits 30..23   : biased exponent (bias 127)
//	bits 22..0    : fraction; "fraction bit k" below means the k-th most
//	                significant fraction bit, k in [1, 23], i.e. raw bit 23-k.
package ieee754

import "math"

// FractionBits is the number of fraction (mantissa) bits in binary32.
const FractionBits = 23

// ExponentBias is the binary32 exponent bias.
const ExponentBias = 127

// Sign returns 0 for non-negative f (including +0) and 1 for negative f.
func Sign(f float32) int {
	return int(math.Float32bits(f) >> 31)
}

// Exponent returns the raw biased exponent field (0..255).
func Exponent(f float32) int {
	return int(math.Float32bits(f) >> FractionBits & 0xff)
}

// UnbiasedExponent returns Exponent(f) - 127. For subnormals (raw exponent
// 0) it returns -126, the effective exponent of the subnormal range.
func UnbiasedExponent(f float32) int {
	e := Exponent(f)
	if e == 0 {
		return 1 - ExponentBias
	}
	return e - ExponentBias
}

// Fraction returns the 23-bit fraction field.
func Fraction(f float32) uint32 {
	return math.Float32bits(f) & ((1 << FractionBits) - 1)
}

// FractionBit returns fraction bit k (k in [1, FractionBits], MSB-first) of
// f as 0 or 1. It panics on an out-of-range k.
func FractionBit(f float32, k int) int {
	checkK(k)
	return int(Fraction(f) >> (FractionBits - k) & 1)
}

// SetFractionBit returns f with fraction bit k (MSB-first) set to bit
// (0 or 1), leaving sign and exponent untouched.
func SetFractionBit(f float32, k, bit int) float32 {
	checkK(k)
	if bit != 0 && bit != 1 {
		panic("ieee754: bit must be 0 or 1")
	}
	u := math.Float32bits(f)
	mask := uint32(1) << (FractionBits - k)
	u &^= mask
	if bit == 1 {
		u |= mask
	}
	return math.Float32frombits(u)
}

// Bit returns raw bit i (0 = LSB of fraction, 31 = sign) of f.
func Bit(f float32, i int) int {
	if i < 0 || i > 31 {
		panic("ieee754: raw bit index out of range")
	}
	return int(math.Float32bits(f) >> uint(i) & 1)
}

// SetBit returns f with raw bit i set to bit.
func SetBit(f float32, i, bit int) float32 {
	if i < 0 || i > 31 {
		panic("ieee754: raw bit index out of range")
	}
	if bit != 0 && bit != 1 {
		panic("ieee754: bit must be 0 or 1")
	}
	u := math.Float32bits(f)
	mask := uint32(1) << uint(i)
	u &^= mask
	if bit == 1 {
		u |= mask
	}
	return math.Float32frombits(u)
}

// FractionBitValue returns the magnitude contributed by fraction bit k of a
// value with f's exponent: 2^(e-k) where e is the unbiased exponent. This
// is the paper's "the first bit value of the fraction field is 2^(exp-127-1)"
// rule used to decide which bits can cover the expected weight gap.
func FractionBitValue(f float32, k int) float64 {
	checkK(k)
	return math.Pow(2, float64(UnbiasedExponent(f)-k))
}

// IntegerPartValue returns 2^e for f's unbiased exponent e — the value of
// the implicit leading 1 bit (Algorithm 1's int_base). For a zero value it
// returns 0.
func IntegerPartValue(f float32) float64 {
	if f == 0 {
		return 0
	}
	return math.Pow(2, float64(UnbiasedExponent(f)))
}

func checkK(k int) {
	if k < 1 || k > FractionBits {
		panic("ieee754: fraction bit index out of range [1,23]")
	}
}

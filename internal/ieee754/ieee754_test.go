package ieee754

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSign(t *testing.T) {
	if Sign(1.5) != 0 || Sign(0) != 0 {
		t.Fatal("non-negative sign must be 0")
	}
	if Sign(-1.5) != 1 || Sign(float32(math.Copysign(0, -1))) != 1 {
		t.Fatal("negative sign must be 1")
	}
}

func TestExponentFraction(t *testing.T) {
	// 1.0 = sign 0, exponent 127, fraction 0.
	if Exponent(1.0) != 127 || Fraction(1.0) != 0 {
		t.Fatalf("1.0 decomposed to exp=%d frac=%d", Exponent(1.0), Fraction(1.0))
	}
	// 1.5 = 1.1b * 2^0 -> top fraction bit set.
	if FractionBit(1.5, 1) != 1 {
		t.Fatal("1.5 must have fraction bit 1 set")
	}
	if FractionBit(1.5, 2) != 0 {
		t.Fatal("1.5 must have fraction bit 2 clear")
	}
	if UnbiasedExponent(0.018) != -6 {
		// 0.018 in [2^-6, 2^-5) = [0.015625, 0.03125)
		t.Fatalf("UnbiasedExponent(0.018) = %d, want -6", UnbiasedExponent(0.018))
	}
}

func TestPaperExample(t *testing.T) {
	// Paper Fig 13: weight 0.018; first fraction bit value is 2^(exp-127-1).
	// For 0.018 the unbiased exponent is -6, so fraction bit 1 is worth 2^-7,
	// and the bits worth 2^-10 (~0.00097) and 2^-11 (~0.00048) are fraction
	// bits 4 and 5.
	w := float32(0.018)
	if got := FractionBitValue(w, 1); !close(got, math.Pow(2, -7)) {
		t.Fatalf("bit 1 value = %v, want 2^-7", got)
	}
	if got := FractionBitValue(w, 4); !close(got, 0.0009765625) {
		t.Fatalf("bit 4 value = %v, want 2^-10", got)
	}
	if got := FractionBitValue(w, 5); !close(got, 0.00048828125) {
		t.Fatalf("bit 5 value = %v, want 2^-11", got)
	}
	if got := IntegerPartValue(w); !close(got, math.Pow(2, -6)) {
		t.Fatalf("integer part = %v, want 2^-6", got)
	}
}

func close(a, b float64) bool { return math.Abs(a-b) < 1e-15 }

func TestSetFractionBitRoundTrip(t *testing.T) {
	f := func(u uint32, kRaw uint8) bool {
		v := math.Float32frombits(u)
		if math.IsNaN(float64(v)) {
			return true
		}
		k := 1 + int(kRaw)%FractionBits
		for _, bit := range []int{0, 1} {
			got := SetFractionBit(v, k, bit)
			if FractionBit(got, k) != bit {
				return false
			}
			if Sign(got) != Sign(v) || Exponent(got) != Exponent(v) {
				return false
			}
			// All other fraction bits unchanged.
			for j := 1; j <= FractionBits; j++ {
				if j != k && FractionBit(got, j) != FractionBit(v, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRawBitRoundTrip(t *testing.T) {
	f := func(u uint32, iRaw uint8) bool {
		v := math.Float32frombits(u)
		if math.IsNaN(float64(v)) {
			return true
		}
		i := int(iRaw) % 32
		for _, bit := range []int{0, 1} {
			got := SetBit(v, i, bit)
			if Bit(got, i) != bit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReconstructFromBits(t *testing.T) {
	// Reading all 32 raw bits of a value and writing them into a zero
	// float32 must reproduce the value exactly — this is what full
	// last-layer rowhammer extraction does.
	f := func(u uint32) bool {
		v := math.Float32frombits(u)
		if math.IsNaN(float64(v)) {
			return true
		}
		var out float32
		for i := 0; i < 32; i++ {
			out = SetBit(out, i, Bit(v, i))
		}
		return math.Float32bits(out) == math.Float32bits(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFractionBitValueHalvesPerBit(t *testing.T) {
	w := float32(0.3)
	for k := 1; k < FractionBits; k++ {
		if !close(FractionBitValue(w, k), 2*FractionBitValue(w, k+1)) {
			t.Fatalf("bit values must halve: k=%d", k)
		}
	}
}

func TestFlippingCheckedBitsCoversGap(t *testing.T) {
	// Setting fraction bits 4 and 5 of 0.018 adds ~0.00146, moving the value
	// toward the paper's fine-tuned 0.01908 example (gap ~0.00108).
	base := float32(0.018)
	withBits := SetFractionBit(SetFractionBit(base, 4, 1), 5, 1)
	gain := float64(withBits - base)
	if gain <= 0.00097 || gain >= 0.002 {
		t.Fatalf("two-bit gain = %v, want within (0.00097, 0.002)", gain)
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s must panic", name)
			}
		}()
		fn()
	}
	mustPanic("FractionBit k=0", func() { FractionBit(1, 0) })
	mustPanic("FractionBit k=24", func() { FractionBit(1, 24) })
	mustPanic("SetFractionBit bit=2", func() { SetFractionBit(1, 1, 2) })
	mustPanic("Bit i=32", func() { Bit(1, 32) })
	mustPanic("SetBit i=-1", func() { SetBit(1, -1, 0) })
}

package nn

import (
	"fmt"
	"math"

	"decepticon/internal/tensor"
)

// BatchNorm2D normalizes each channel of a batch of C×H×W images over the
// (batch, H, W) axes, as ResNet does between its convolutions. Training
// uses batch statistics and maintains running estimates; inference uses
// the running estimates.
type BatchNorm2D struct {
	C, H, W  int
	Gamma    *tensor.Matrix // 1×C
	Beta     *tensor.Matrix // 1×C
	dGamma   *tensor.Matrix
	dBeta    *tensor.Matrix
	Momentum float64 // running-stat decay (default 0.9)

	runMean []float32
	runVar  []float32

	// training-pass cache
	xhat   *tensor.Matrix
	invStd []float32
	batch  int
}

const bnEps = 1e-5

// NewBatchNorm2D returns a batch-norm layer for C×H×W inputs.
func NewBatchNorm2D(c, h, w int) *BatchNorm2D {
	bn := &BatchNorm2D{
		C: c, H: h, W: w,
		Gamma:    tensor.New(1, c),
		Beta:     tensor.New(1, c),
		dGamma:   tensor.New(1, c),
		dBeta:    tensor.New(1, c),
		Momentum: 0.9,
		runMean:  make([]float32, c),
		runVar:   make([]float32, c),
	}
	for i := range bn.Gamma.Data {
		bn.Gamma.Data[i] = 1
		bn.runVar[i] = 1
	}
	return bn
}

// Name implements Layer.
func (bn *BatchNorm2D) Name() string { return fmt.Sprintf("batchnorm_%dc", bn.C) }

// Forward implements Layer.
func (bn *BatchNorm2D) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	plane := bn.H * bn.W
	if x.Cols != bn.C*plane {
		panic(fmt.Sprintf("nn: batchnorm input %d, want %d", x.Cols, bn.C*plane))
	}
	out := tensor.New(x.Rows, x.Cols)
	if !train {
		for b := 0; b < x.Rows; b++ {
			in, dst := x.Row(b), out.Row(b)
			for c := 0; c < bn.C; c++ {
				inv := 1 / float32(math.Sqrt(float64(bn.runVar[c])+bnEps))
				g, be, mu := bn.Gamma.Data[c], bn.Beta.Data[c], bn.runMean[c]
				for i := c * plane; i < (c+1)*plane; i++ {
					dst[i] = (in[i]-mu)*inv*g + be
				}
			}
		}
		return out
	}

	bn.batch = x.Rows
	bn.xhat = tensor.New(x.Rows, x.Cols)
	bn.invStd = make([]float32, bn.C)
	n := float32(x.Rows * plane)
	for c := 0; c < bn.C; c++ {
		var mean float32
		for b := 0; b < x.Rows; b++ {
			in := x.Row(b)
			for i := c * plane; i < (c+1)*plane; i++ {
				mean += in[i]
			}
		}
		mean /= n
		var variance float32
		for b := 0; b < x.Rows; b++ {
			in := x.Row(b)
			for i := c * plane; i < (c+1)*plane; i++ {
				d := in[i] - mean
				variance += d * d
			}
		}
		variance /= n
		inv := 1 / float32(math.Sqrt(float64(variance)+bnEps))
		bn.invStd[c] = inv
		m := float32(bn.Momentum)
		bn.runMean[c] = m*bn.runMean[c] + (1-m)*mean
		bn.runVar[c] = m*bn.runVar[c] + (1-m)*variance
		g, be := bn.Gamma.Data[c], bn.Beta.Data[c]
		for b := 0; b < x.Rows; b++ {
			in, xh, dst := x.Row(b), bn.xhat.Row(b), out.Row(b)
			for i := c * plane; i < (c+1)*plane; i++ {
				xh[i] = (in[i] - mean) * inv
				dst[i] = xh[i]*g + be
			}
		}
	}
	return out
}

// Backward implements Layer.
func (bn *BatchNorm2D) Backward(grad *tensor.Matrix) *tensor.Matrix {
	plane := bn.H * bn.W
	dx := tensor.New(bn.batch, bn.C*plane)
	n := float32(bn.batch * plane)
	for c := 0; c < bn.C; c++ {
		g := bn.Gamma.Data[c]
		inv := bn.invStd[c]
		var sumDy, sumDyXhat float32
		for b := 0; b < bn.batch; b++ {
			dy, xh := grad.Row(b), bn.xhat.Row(b)
			for i := c * plane; i < (c+1)*plane; i++ {
				sumDy += dy[i]
				sumDyXhat += dy[i] * xh[i]
			}
		}
		bn.dBeta.Data[c] += sumDy
		bn.dGamma.Data[c] += sumDyXhat
		for b := 0; b < bn.batch; b++ {
			dy, xh, dst := grad.Row(b), bn.xhat.Row(b), dx.Row(b)
			for i := c * plane; i < (c+1)*plane; i++ {
				dst[i] = g * inv * (dy[i] - sumDy/n - xh[i]*sumDyXhat/n)
			}
		}
	}
	return dx
}

// Params implements Layer.
func (bn *BatchNorm2D) Params() []*tensor.Matrix { return []*tensor.Matrix{bn.Gamma, bn.Beta} }

// Grads implements Layer.
func (bn *BatchNorm2D) Grads() []*tensor.Matrix { return []*tensor.Matrix{bn.dGamma, bn.dBeta} }

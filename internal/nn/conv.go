package nn

import (
	"fmt"
	"math"

	"decepticon/internal/rng"
	"decepticon/internal/tensor"
)

// Conv2D is a stride-1 2-D convolution over channel-major flattened
// images with optional zero padding. Inputs are batches of InC×H×W
// images; outputs are OutC×(H+2P-K+1)×(W+2P-K+1).
type Conv2D struct {
	InC, OutC, K int
	H, W         int            // input spatial dimensions
	Pad          int            // zero padding on each side
	Weight       *tensor.Matrix // OutC × (InC*K*K)
	Bias         *tensor.Matrix // 1 × OutC
	dWeight      *tensor.Matrix
	dBias        *tensor.Matrix
	x            *tensor.Matrix // cached (padded) input
	batch        int
}

// NewConv2D returns an unpadded ("valid") convolution layer for InC×H×W
// inputs with OutC filters of size K×K (Kaiming initialization).
func NewConv2D(inC, outC, k, h, w int, r *rng.RNG) *Conv2D {
	return NewConv2DPadded(inC, outC, k, h, w, 0, r)
}

// NewConv2DPadded returns a convolution layer with zero padding pad —
// pad = (k-1)/2 preserves the spatial dimensions, as residual blocks need.
func NewConv2DPadded(inC, outC, k, h, w, pad int, r *rng.RNG) *Conv2D {
	if k > h+2*pad || k > w+2*pad {
		panic(fmt.Sprintf("nn: conv kernel %d larger than padded input %dx%d", k, h+2*pad, w+2*pad))
	}
	if pad < 0 {
		panic("nn: negative padding")
	}
	fan := inC * k * k
	std := math.Sqrt(2.0 / float64(fan))
	return &Conv2D{
		InC: inC, OutC: outC, K: k, H: h, W: w, Pad: pad,
		Weight:  tensor.Randn(outC, fan, std, r),
		Bias:    tensor.New(1, outC),
		dWeight: tensor.New(outC, fan),
		dBias:   tensor.New(1, outC),
	}
}

// padH returns the padded input height.
func (c *Conv2D) padH() int { return c.H + 2*c.Pad }

// padW returns the padded input width.
func (c *Conv2D) padW() int { return c.W + 2*c.Pad }

// OutH returns the output height.
func (c *Conv2D) OutH() int { return c.padH() - c.K + 1 }

// OutW returns the output width.
func (c *Conv2D) OutW() int { return c.padW() - c.K + 1 }

// padInput copies a batch into its zero-padded layout.
func (c *Conv2D) padInput(x *tensor.Matrix) *tensor.Matrix {
	if c.Pad == 0 {
		return x
	}
	ph, pw := c.padH(), c.padW()
	out := tensor.New(x.Rows, c.InC*ph*pw)
	for b := 0; b < x.Rows; b++ {
		src := x.Row(b)
		dst := out.Row(b)
		for ic := 0; ic < c.InC; ic++ {
			for y := 0; y < c.H; y++ {
				srcOff := ic*c.H*c.W + y*c.W
				dstOff := ic*ph*pw + (y+c.Pad)*pw + c.Pad
				copy(dst[dstOff:dstOff+c.W], src[srcOff:srcOff+c.W])
			}
		}
	}
	return out
}

// cropGrad maps a padded-input gradient back to the original layout.
func (c *Conv2D) cropGrad(dxp *tensor.Matrix) *tensor.Matrix {
	if c.Pad == 0 {
		return dxp
	}
	ph, pw := c.padH(), c.padW()
	out := tensor.New(dxp.Rows, c.InC*c.H*c.W)
	for b := 0; b < dxp.Rows; b++ {
		src := dxp.Row(b)
		dst := out.Row(b)
		for ic := 0; ic < c.InC; ic++ {
			for y := 0; y < c.H; y++ {
				srcOff := ic*ph*pw + (y+c.Pad)*pw + c.Pad
				dstOff := ic*c.H*c.W + y*c.W
				copy(dst[dstOff:dstOff+c.W], src[srcOff:srcOff+c.W])
			}
		}
	}
	return out
}

// OutSize returns the flattened output width (OutC*OutH*OutW).
func (c *Conv2D) OutSize() int { return c.OutC * c.OutH() * c.OutW() }

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("conv_%dto%d_k%d", c.InC, c.OutC, c.K)
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != c.InC*c.H*c.W {
		panic(fmt.Sprintf("nn: conv input %d, want %d", x.Cols, c.InC*c.H*c.W))
	}
	xp := c.padInput(x)
	if train {
		// Cache the padded input for Backward. Inference passes skip the
		// cache so a trained network may serve concurrent eval-mode
		// forwards.
		c.batch = x.Rows
		c.x = xp
	}
	ph, pw := c.padH(), c.padW()
	oh, ow := c.OutH(), c.OutW()
	out := tensor.New(x.Rows, c.OutSize())
	for b := 0; b < x.Rows; b++ {
		in := xp.Row(b)
		dst := out.Row(b)
		for oc := 0; oc < c.OutC; oc++ {
			w := c.Weight.Row(oc)
			bias := c.Bias.Data[oc]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					s := bias
					wi := 0
					for ic := 0; ic < c.InC; ic++ {
						plane := in[ic*ph*pw:]
						for ky := 0; ky < c.K; ky++ {
							rowOff := (oy+ky)*pw + ox
							for kx := 0; kx < c.K; kx++ {
								s += w[wi] * plane[rowOff+kx]
								wi++
							}
						}
					}
					dst[(oc*oh+oy)*ow+ox] = s
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Matrix) *tensor.Matrix {
	ph, pw := c.padH(), c.padW()
	oh, ow := c.OutH(), c.OutW()
	dxp := tensor.New(c.batch, c.InC*ph*pw)
	for b := 0; b < c.batch; b++ {
		in := c.x.Row(b)
		din := dxp.Row(b)
		g := grad.Row(b)
		for oc := 0; oc < c.OutC; oc++ {
			w := c.Weight.Row(oc)
			dw := c.dWeight.Row(oc)
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					gv := g[(oc*oh+oy)*ow+ox]
					if gv == 0 {
						continue
					}
					c.dBias.Data[oc] += gv
					wi := 0
					for ic := 0; ic < c.InC; ic++ {
						off := ic * ph * pw
						for ky := 0; ky < c.K; ky++ {
							rowOff := off + (oy+ky)*pw + ox
							for kx := 0; kx < c.K; kx++ {
								dw[wi] += gv * in[rowOff+kx]
								din[rowOff+kx] += gv * w[wi]
								wi++
							}
						}
					}
				}
			}
		}
	}
	return c.cropGrad(dxp)
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Matrix { return []*tensor.Matrix{c.Weight, c.Bias} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Matrix { return []*tensor.Matrix{c.dWeight, c.dBias} }

// MaxPool2D is a non-overlapping K×K max pooling layer over channel-major
// flattened images. Input dimensions must be divisible by K.
type MaxPool2D struct {
	C, H, W, K int
	argmax     []int // per batch element and output cell: input index of max
	batch      int
}

// NewMaxPool2D returns a K×K stride-K max pooling layer for C×H×W inputs.
func NewMaxPool2D(c, h, w, k int) *MaxPool2D {
	if h%k != 0 || w%k != 0 {
		panic(fmt.Sprintf("nn: pool input %dx%d not divisible by %d", h, w, k))
	}
	return &MaxPool2D{C: c, H: h, W: w, K: k}
}

// OutH returns the output height.
func (p *MaxPool2D) OutH() int { return p.H / p.K }

// OutW returns the output width.
func (p *MaxPool2D) OutW() int { return p.W / p.K }

// OutSize returns the flattened output width.
func (p *MaxPool2D) OutSize() int { return p.C * p.OutH() * p.OutW() }

// Name implements Layer.
func (p *MaxPool2D) Name() string { return fmt.Sprintf("maxpool_k%d", p.K) }

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != p.C*p.H*p.W {
		panic(fmt.Sprintf("nn: pool input %d, want %d", x.Cols, p.C*p.H*p.W))
	}
	oh, ow := p.OutH(), p.OutW()
	out := tensor.New(x.Rows, p.OutSize())
	var argmax []int
	if train {
		// Max routing is cached for Backward only during training; see
		// Conv2D.Forward.
		p.batch = x.Rows
		argmax = make([]int, x.Rows*p.OutSize())
		p.argmax = argmax
	}
	for b := 0; b < x.Rows; b++ {
		in := x.Row(b)
		dst := out.Row(b)
		for c := 0; c < p.C; c++ {
			plane := c * p.H * p.W
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					bestIdx := plane + oy*p.K*p.W + ox*p.K
					best := in[bestIdx]
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							idx := plane + (oy*p.K+ky)*p.W + ox*p.K + kx
							if in[idx] > best {
								best = in[idx]
								bestIdx = idx
							}
						}
					}
					oidx := (c*oh+oy)*ow + ox
					dst[oidx] = best
					if argmax != nil {
						argmax[b*p.OutSize()+oidx] = bestIdx
					}
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(grad *tensor.Matrix) *tensor.Matrix {
	dx := tensor.New(p.batch, p.C*p.H*p.W)
	for b := 0; b < p.batch; b++ {
		g := grad.Row(b)
		din := dx.Row(b)
		for i, gv := range g {
			din[p.argmax[b*p.OutSize()+i]] += gv
		}
	}
	return dx
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*tensor.Matrix { return nil }

// Grads implements Layer.
func (p *MaxPool2D) Grads() []*tensor.Matrix { return nil }

package nn

import (
	"decepticon/internal/rng"
	"decepticon/internal/tensor"
)

// Dropout is inverted dropout: during training each activation is zeroed
// with probability P and the survivors are scaled by 1/(1-P); at inference
// it is the identity. The fingerprint classifier uses it between its
// fully-connected layers — with a handful of trace images per class,
// regularization is what separates memorizing jitter from learning the
// release fingerprint.
type Dropout struct {
	P    float64
	r    *rng.RNG
	mask *tensor.Matrix
}

// NewDropout returns a dropout layer with drop probability p in [0, 1).
func NewDropout(p float64, seed uint64) *Dropout {
	if p < 0 || p >= 1 {
		panic("nn: dropout probability must be in [0, 1)")
	}
	return &Dropout{P: p, r: rng.New(seed)}
}

// Name implements Layer.
func (d *Dropout) Name() string { return "dropout" }

// Forward implements Layer. Eval-mode passes write no layer state (see
// Dense.Forward), so the mask is only touched during training.
func (d *Dropout) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if !train {
		return x
	}
	if d.P == 0 {
		d.mask = nil
		return x
	}
	d.mask = tensor.New(x.Rows, x.Cols)
	scale := float32(1 / (1 - d.P))
	out := tensor.New(x.Rows, x.Cols)
	for i := range x.Data {
		if d.r.Float64() >= d.P {
			d.mask.Data[i] = scale
			out.Data[i] = x.Data[i] * scale
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if d.mask == nil {
		return grad
	}
	return tensor.Hadamard(grad, d.mask)
}

// Params implements Layer.
func (d *Dropout) Params() []*tensor.Matrix { return nil }

// Grads implements Layer.
func (d *Dropout) Grads() []*tensor.Matrix { return nil }

// Package nn is a small, dependency-free neural-network framework with
// hand-written backpropagation. It powers the three auxiliary models of the
// reproduction: the fingerprint CNN classifier (paper §5.4.2), the
// DeepSniffer layer-sequence baseline (Table 2), and the ResNet-18 analog
// used for the generalization study (Fig 19).
//
// Data layout: a batch is a tensor.Matrix with one example per row. Image
// inputs are flattened channel-major (C, then H, then W); convolutional
// layers carry their spatial dimensions in their configuration.
package nn

import (
	"fmt"
	"math"

	"decepticon/internal/rng"
	"decepticon/internal/tensor"
)

// Layer is a differentiable network stage. Forward must be called before
// Backward; layers may cache activations between the two calls, so a Layer
// instance is not safe for concurrent use.
type Layer interface {
	// Name identifies the layer type (used in traces and error messages).
	Name() string
	// Forward computes the layer output for a batch x.
	Forward(x *tensor.Matrix, train bool) *tensor.Matrix
	// Backward consumes the gradient of the loss with respect to the
	// layer's output and returns the gradient with respect to its input,
	// accumulating parameter gradients internally.
	Backward(grad *tensor.Matrix) *tensor.Matrix
	// Params returns the layer's trainable tensors (possibly empty).
	Params() []*tensor.Matrix
	// Grads returns the gradient tensors aligned with Params.
	Grads() []*tensor.Matrix
}

// Dense is a fully connected layer: y = xW + b.
type Dense struct {
	In, Out int
	W, B    *tensor.Matrix // W: In×Out, B: 1×Out
	dW, dB  *tensor.Matrix
	x       *tensor.Matrix // cached input
}

// NewDense returns a dense layer with Kaiming-style initialization.
func NewDense(in, out int, r *rng.RNG) *Dense {
	std := math.Sqrt(2.0 / float64(in))
	return &Dense{
		In: in, Out: out,
		W:  tensor.Randn(in, out, std, r),
		B:  tensor.New(1, out),
		dW: tensor.New(in, out),
		dB: tensor.New(1, out),
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("fc_%dx%d", d.In, d.Out) }

// Forward implements Layer. The input is cached for Backward only when
// train is set; inference passes leave the layer untouched, so a trained
// network may serve concurrent eval-mode forwards.
func (d *Dense) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if train {
		d.x = x
	}
	out := tensor.MatMul(x, d.W)
	out.AddRowVector(d.B.Data)
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Matrix) *tensor.Matrix {
	tensor.AddInPlace(d.dW, tensor.MatMulTN(d.x, grad))
	bg := grad.SumRows()
	for i := range bg {
		d.dB.Data[i] += bg[i]
	}
	return tensor.MatMulNT(grad, d.W)
}

// Params implements Layer.
func (d *Dense) Params() []*tensor.Matrix { return []*tensor.Matrix{d.W, d.B} }

// Grads implements Layer.
func (d *Dense) Grads() []*tensor.Matrix { return []*tensor.Matrix{d.dW, d.dB} }

// ReLU is the rectified linear activation.
type ReLU struct {
	mask *tensor.Matrix
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Forward implements Layer. The gradient mask is cached only when train
// is set (see Dense.Forward).
func (r *ReLU) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if train {
		r.mask = tensor.ReLUGradMask(x)
	}
	return tensor.ReLU(x)
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Matrix) *tensor.Matrix {
	return tensor.Hadamard(grad, r.mask)
}

// Params implements Layer.
func (r *ReLU) Params() []*tensor.Matrix { return nil }

// Grads implements Layer.
func (r *ReLU) Grads() []*tensor.Matrix { return nil }

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// against integer labels and the gradient of the loss with respect to the
// logits (already divided by the batch size).
func SoftmaxCrossEntropy(logits *tensor.Matrix, labels []int) (float64, *tensor.Matrix) {
	if len(labels) != logits.Rows {
		panic("nn: label count does not match batch size")
	}
	probs := tensor.SoftmaxRows(logits)
	grad := probs.Clone()
	var loss float64
	n := float32(logits.Rows)
	for i, y := range labels {
		if y < 0 || y >= logits.Cols {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, logits.Cols))
		}
		p := probs.At(i, y)
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(float64(p))
		grad.Set(i, y, grad.At(i, y)-1)
	}
	grad.Scale(1 / n)
	return loss / float64(logits.Rows), grad
}

package nn

import (
	"math"
	"testing"

	"decepticon/internal/rng"
	"decepticon/internal/tensor"
)

// gradCheck verifies every parameter gradient of net against a central
// finite difference of the loss.
func gradCheck(t *testing.T, net *Sequential, x *tensor.Matrix, labels []int, tol float64) {
	t.Helper()
	loss := func() float64 {
		logits := net.Forward(x, true)
		l, _ := SoftmaxCrossEntropy(logits, labels)
		return l
	}
	// Analytic gradients.
	logits := net.Forward(x, true)
	_, grad := SoftmaxCrossEntropy(logits, labels)
	net.Backward(grad)
	params, grads := net.Params(), net.Grads()

	const h = 1e-2
	checked := 0
	for pi, p := range params {
		stride := len(p.Data)/5 + 1 // sample a handful of coordinates per tensor
		for j := 0; j < len(p.Data); j += stride {
			orig := p.Data[j]
			p.Data[j] = orig + h
			up := loss()
			p.Data[j] = orig - h
			down := loss()
			p.Data[j] = orig
			numeric := (up - down) / (2 * h)
			analytic := float64(grads[pi].Data[j])
			if math.Abs(numeric-analytic) > tol*(1+math.Abs(numeric)) {
				t.Fatalf("param %d[%d]: analytic %v vs numeric %v", pi, j, analytic, numeric)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("gradCheck checked nothing")
	}
}

func TestDenseGradients(t *testing.T) {
	r := rng.New(1)
	net := NewSequential(NewDense(6, 5, r), NewReLU(), NewDense(5, 3, r))
	x := tensor.Randn(4, 6, 1, r)
	gradCheck(t, net, x, []int{0, 1, 2, 1}, 2e-2)
}

func TestConvPoolGradients(t *testing.T) {
	r := rng.New(2)
	conv := NewConv2D(1, 2, 3, 6, 6, r) // -> 2x4x4
	pool := NewMaxPool2D(2, 4, 4, 2)    // -> 2x2x2
	net := NewSequential(conv, NewReLU(), pool, NewDense(pool.OutSize(), 3, r))
	x := tensor.Randn(3, 36, 1, r)
	gradCheck(t, net, x, []int{0, 1, 2}, 5e-2)
}

func TestConvForwardHandChecked(t *testing.T) {
	r := rng.New(3)
	c := NewConv2D(1, 1, 2, 3, 3, r)
	// Set identity-ish kernel: picks top-left of each window.
	c.Weight.Data = []float32{1, 0, 0, 0}
	c.Bias.Data[0] = 0.5
	x := tensor.FromSlice(1, 9, []float32{1, 2, 3, 4, 5, 6, 7, 8, 9})
	out := c.Forward(x, false)
	want := []float32{1.5, 2.5, 4.5, 5.5}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("conv out = %v, want %v", out.Data, want)
		}
	}
}

func TestMaxPoolForwardAndRouting(t *testing.T) {
	p := NewMaxPool2D(1, 4, 4, 2)
	x := tensor.FromSlice(1, 16, []float32{
		1, 2, 0, 0,
		3, 4, 0, 9,
		0, 0, 5, 6,
		0, 8, 7, 0,
	})
	// Backward needs the routing cache, which only train-mode forwards
	// record (eval-mode forwards are pure so they can run concurrently).
	out := p.Forward(x, true)
	want := []float32{4, 9, 8, 7}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("pool out = %v, want %v", out.Data, want)
		}
	}
	grad := tensor.FromSlice(1, 4, []float32{1, 1, 1, 1})
	dx := p.Backward(grad)
	// Gradient must route only to the max positions.
	var nonzero int
	for _, v := range dx.Data {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero != 4 {
		t.Fatalf("pool grad routed to %d cells, want 4", nonzero)
	}
	if dx.Data[5] != 1 || dx.Data[7] != 1 || dx.Data[13] != 1 || dx.Data[14] != 1 {
		t.Fatalf("pool grad misrouted: %v", dx.Data)
	}
}

func TestSoftmaxCrossEntropyKnownValue(t *testing.T) {
	logits := tensor.FromSlice(1, 2, []float32{0, 0})
	loss, grad := SoftmaxCrossEntropy(logits, []int{0})
	if math.Abs(loss-math.Log(2)) > 1e-6 {
		t.Fatalf("loss = %v, want ln 2", loss)
	}
	if math.Abs(float64(grad.At(0, 0)+0.5)) > 1e-6 || math.Abs(float64(grad.At(0, 1)-0.5)) > 1e-6 {
		t.Fatalf("grad = %v", grad.Data)
	}
}

func TestSGDMomentumReducesLoss(t *testing.T) {
	r := rng.New(4)
	net := NewSequential(NewDense(4, 8, r), NewReLU(), NewDense(8, 2, r))
	x := tensor.Randn(32, 4, 1, r)
	labels := make([]int, 32)
	for i := range labels {
		if x.At(i, 0) > 0 {
			labels[i] = 1
		}
	}
	first, last := -1.0, -1.0
	net.Fit(x, labels, TrainConfig{
		Epochs: 30, BatchSize: 8, Seed: 1,
		Optimizer: &SGD{LR: 0.05, Momentum: 0.9},
		OnEpoch: func(e int, l float64) {
			if e == 0 {
				first = l
			}
			last = l
		},
	})
	if last >= first {
		t.Fatalf("loss did not decrease: first %v last %v", first, last)
	}
	if acc := net.Evaluate(x, labels); acc < 0.9 {
		t.Fatalf("training accuracy %v < 0.9", acc)
	}
}

func TestAdamWLearnsXOR(t *testing.T) {
	r := rng.New(5)
	net := NewSequential(NewDense(2, 16, r), NewReLU(), NewDense(16, 2, r))
	x := tensor.FromSlice(4, 2, []float32{0, 0, 0, 1, 1, 0, 1, 1})
	labels := []int{0, 1, 1, 0}
	net.Fit(x, labels, TrainConfig{
		Epochs: 400, BatchSize: 4, Seed: 2, Optimizer: NewAdamW(0.01, 0),
	})
	if acc := net.Evaluate(x, labels); acc != 1 {
		t.Fatalf("XOR accuracy %v, want 1", acc)
	}
}

func TestAdamWWeightDecayShrinksIdleWeights(t *testing.T) {
	// With zero gradients, decoupled weight decay must shrink weights
	// multiplicatively — the mechanism behind the paper's U-shaped
	// update distribution (Fig 4).
	p := tensor.FromSlice(1, 2, []float32{1.0, -2.0})
	g := tensor.New(1, 2)
	opt := NewAdamW(0.1, 0.5)
	opt.Step([]*tensor.Matrix{p}, []*tensor.Matrix{g})
	if math.Abs(float64(p.Data[0]-0.95)) > 1e-6 {
		t.Fatalf("weight after decay = %v, want 0.95", p.Data[0])
	}
	if math.Abs(float64(p.Data[1]+1.9)) > 1e-6 {
		t.Fatalf("weight after decay = %v, want -1.9", p.Data[1])
	}
}

func TestAdamWWarmupRampsLR(t *testing.T) {
	p1 := tensor.FromSlice(1, 1, []float32{0})
	g1 := tensor.FromSlice(1, 1, []float32{1})
	warm := NewAdamW(0.1, 0)
	warm.WarmupSteps = 10
	warm.Step([]*tensor.Matrix{p1}, []*tensor.Matrix{g1})
	p2 := tensor.FromSlice(1, 1, []float32{0})
	g2 := tensor.FromSlice(1, 1, []float32{1})
	cold := NewAdamW(0.1, 0)
	cold.Step([]*tensor.Matrix{p2}, []*tensor.Matrix{g2})
	if math.Abs(float64(p1.Data[0])) >= math.Abs(float64(p2.Data[0])) {
		t.Fatalf("warmup step %v should be smaller than full step %v", p1.Data[0], p2.Data[0])
	}
}

func TestOptimizerZeroesGrads(t *testing.T) {
	p := tensor.FromSlice(1, 1, []float32{1})
	g := tensor.FromSlice(1, 1, []float32{1})
	(&SGD{LR: 0.1}).Step([]*tensor.Matrix{p}, []*tensor.Matrix{g})
	if g.Data[0] != 0 {
		t.Fatal("SGD must zero gradients after stepping")
	}
	g.Data[0] = 1
	NewAdamW(0.1, 0).Step([]*tensor.Matrix{p}, []*tensor.Matrix{g})
	if g.Data[0] != 0 {
		t.Fatal("AdamW must zero gradients after stepping")
	}
}

func TestFitDeterminism(t *testing.T) {
	build := func() float64 {
		r := rng.New(7)
		net := NewSequential(NewDense(3, 4, r), NewReLU(), NewDense(4, 2, r))
		x := tensor.Randn(16, 3, 1, r)
		labels := make([]int, 16)
		for i := range labels {
			labels[i] = i % 2
		}
		return net.Fit(x, labels, TrainConfig{Epochs: 3, BatchSize: 4, Seed: 9, Optimizer: &SGD{LR: 0.1}})
	}
	if build() != build() {
		t.Fatal("Fit must be deterministic for equal seeds")
	}
}

func TestLabelOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range label must panic")
		}
	}()
	SoftmaxCrossEntropy(tensor.New(1, 2), []int{5})
}

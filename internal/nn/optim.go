package nn

import (
	"math"

	"decepticon/internal/tensor"
)

// Optimizer updates parameters from accumulated gradients and zeroes the
// gradients afterwards.
type Optimizer interface {
	// Step applies one update. params and grads must be aligned and must
	// be the same slices on every call (optimizer state is positional).
	Step(params, grads []*tensor.Matrix)
}

// SGD is stochastic gradient descent with optional momentum and decoupled
// weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	velocity    []*tensor.Matrix
}

// Step implements Optimizer.
func (s *SGD) Step(params, grads []*tensor.Matrix) {
	if s.velocity == nil {
		s.velocity = make([]*tensor.Matrix, len(params))
		for i, p := range params {
			s.velocity[i] = tensor.New(p.Rows, p.Cols)
		}
	}
	lr := float32(s.LR)
	mu := float32(s.Momentum)
	wd := float32(s.WeightDecay)
	for i, p := range params {
		g := grads[i]
		v := s.velocity[i]
		for j := range p.Data {
			v.Data[j] = mu*v.Data[j] + g.Data[j]
			p.Data[j] -= lr * (v.Data[j] + wd*p.Data[j])
			g.Data[j] = 0
		}
	}
}

// AdamW is Adam with decoupled weight decay (Loshchilov & Hutter), the
// de-facto fine-tuning optimizer for transformers. The decoupled decay
// term is what produces the paper's U-shaped update-vs-weight-value curve
// (Fig 4): the decay contribution to |Δw| grows linearly with |w|.
type AdamW struct {
	LR          float64
	Beta1       float64 // default 0.9
	Beta2       float64 // default 0.999
	Eps         float64 // default 1e-8
	WeightDecay float64
	// WarmupSteps linearly ramps the learning rate over the first N steps,
	// mirroring the standard transformer fine-tuning schedule (and giving
	// Fig 6 its rise-then-decay per-epoch delta shape).
	WarmupSteps int
	// TotalSteps, when positive, linearly decays the learning rate to zero
	// between WarmupSteps and TotalSteps — the standard warmup-then-linear
	// BERT fine-tuning schedule.
	TotalSteps int

	t int
	m []*tensor.Matrix
	v []*tensor.Matrix
}

// NewAdamW returns an AdamW optimizer with standard betas and epsilon.
func NewAdamW(lr, weightDecay float64) *AdamW {
	return &AdamW{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay}
}

// Step implements Optimizer.
func (a *AdamW) Step(params, grads []*tensor.Matrix) {
	if a.m == nil {
		a.m = make([]*tensor.Matrix, len(params))
		a.v = make([]*tensor.Matrix, len(params))
		for i, p := range params {
			a.m[i] = tensor.New(p.Rows, p.Cols)
			a.v[i] = tensor.New(p.Rows, p.Cols)
		}
	}
	a.t++
	lr := a.LR
	switch {
	case a.WarmupSteps > 0 && a.t < a.WarmupSteps:
		lr *= float64(a.t) / float64(a.WarmupSteps)
	case a.TotalSteps > a.WarmupSteps && a.t < a.TotalSteps:
		lr *= float64(a.TotalSteps-a.t) / float64(a.TotalSteps-a.WarmupSteps)
	case a.TotalSteps > 0 && a.t >= a.TotalSteps:
		lr = 0
	}
	b1, b2 := a.Beta1, a.Beta2
	c1 := 1 - math.Pow(b1, float64(a.t))
	c2 := 1 - math.Pow(b2, float64(a.t))
	for i, p := range params {
		g := grads[i]
		m, v := a.m[i], a.v[i]
		for j := range p.Data {
			gj := float64(g.Data[j])
			mj := b1*float64(m.Data[j]) + (1-b1)*gj
			vj := b2*float64(v.Data[j]) + (1-b2)*gj*gj
			m.Data[j] = float32(mj)
			v.Data[j] = float32(vj)
			mhat := mj / c1
			vhat := vj / c2
			upd := lr * (mhat/(math.Sqrt(vhat)+a.Eps) + a.WeightDecay*float64(p.Data[j]))
			p.Data[j] -= float32(upd)
			g.Data[j] = 0
		}
	}
}

package nn

import "decepticon/internal/tensor"

// Residual wraps a sub-network with an identity skip connection:
// y = x + path(x). The path must preserve the input shape (use padded
// convolutions). It is the building block of the ResNet analog used in
// the generalization study (paper §7.7).
type Residual struct {
	Path []Layer
}

// NewResidual returns a residual block over the given path.
func NewResidual(path ...Layer) *Residual { return &Residual{Path: path} }

// Name implements Layer.
func (r *Residual) Name() string { return "residual" }

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	y := x
	for _, l := range r.Path {
		y = l.Forward(y, train)
	}
	return tensor.Add(y, x)
}

// Backward implements Layer.
func (r *Residual) Backward(grad *tensor.Matrix) *tensor.Matrix {
	g := grad
	for i := len(r.Path) - 1; i >= 0; i-- {
		g = r.Path[i].Backward(g)
	}
	return tensor.Add(g, grad)
}

// Params implements Layer.
func (r *Residual) Params() []*tensor.Matrix {
	var ps []*tensor.Matrix
	for _, l := range r.Path {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Grads implements Layer.
func (r *Residual) Grads() []*tensor.Matrix {
	var gs []*tensor.Matrix
	for _, l := range r.Path {
		gs = append(gs, l.Grads()...)
	}
	return gs
}

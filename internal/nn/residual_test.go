package nn

import (
	"testing"

	"decepticon/internal/rng"
	"decepticon/internal/tensor"
)

func TestPaddedConvPreservesShape(t *testing.T) {
	r := rng.New(1)
	c := NewConv2DPadded(2, 2, 3, 6, 6, 1, r)
	if c.OutH() != 6 || c.OutW() != 6 {
		t.Fatalf("padded conv output %dx%d, want 6x6", c.OutH(), c.OutW())
	}
	x := tensor.Randn(2, 2*6*6, 1, r)
	out := c.Forward(x, false)
	if out.Cols != 2*6*6 {
		t.Fatalf("output cols %d", out.Cols)
	}
}

func TestPaddedConvHandChecked(t *testing.T) {
	r := rng.New(2)
	c := NewConv2DPadded(1, 1, 3, 2, 2, 1, r)
	// Identity-center kernel: output = input (padding contributes zeros).
	c.Weight.Data = []float32{0, 0, 0, 0, 1, 0, 0, 0, 0}
	c.Bias.Data[0] = 0
	x := tensor.FromSlice(1, 4, []float32{1, 2, 3, 4})
	out := c.Forward(x, false)
	for i, v := range []float32{1, 2, 3, 4} {
		if out.Data[i] != v {
			t.Fatalf("identity conv output %v", out.Data)
		}
	}
	// Corner sum kernel: top-left output sees only in-bounds values.
	c.Weight.Data = []float32{1, 1, 1, 1, 1, 1, 1, 1, 1}
	out = c.Forward(x, false)
	if out.Data[0] != 1+2+3+4-4 { // window around (0,0): 1,2,3,4 minus bottom-right... compute directly
		// window at (0,0) covers padded coords (-1..1, -1..1):
		// zeros except (0,0)=1,(0,1)=2,(1,0)=3,(1,1)=4 -> 10
		if out.Data[0] != 10 {
			t.Fatalf("corner sum = %v, want 10", out.Data[0])
		}
	}
}

func TestPaddedConvGradients(t *testing.T) {
	r := rng.New(3)
	conv := NewConv2DPadded(1, 2, 3, 4, 4, 1, r) // -> 2x4x4
	net := NewSequential(conv, NewReLU(), NewDense(2*4*4, 3, r))
	x := tensor.Randn(2, 16, 1, r)
	gradCheck(t, net, x, []int{0, 2}, 5e-2)
}

func TestResidualForward(t *testing.T) {
	r := rng.New(4)
	inner := NewConv2DPadded(1, 1, 3, 4, 4, 1, r)
	for i := range inner.Weight.Data {
		inner.Weight.Data[i] = 0
	}
	res := NewResidual(inner)
	x := tensor.Randn(1, 16, 1, r)
	out := res.Forward(x, false)
	// Zero path => identity.
	if !tensor.ApproxEqual(out, x, 1e-6) {
		t.Fatal("residual with zero path must be identity")
	}
}

func TestResidualGradients(t *testing.T) {
	r := rng.New(5)
	block := NewResidual(
		NewConv2DPadded(1, 1, 3, 4, 4, 1, r.Derive("a")),
		NewReLU(),
		NewConv2DPadded(1, 1, 3, 4, 4, 1, r.Derive("b")),
	)
	net := NewSequential(block, NewReLU(), NewDense(16, 2, r))
	x := tensor.Randn(2, 16, 1, r)
	gradCheck(t, net, x, []int{0, 1}, 5e-2)
}

func TestResidualParamCollection(t *testing.T) {
	r := rng.New(6)
	block := NewResidual(
		NewConv2DPadded(1, 2, 3, 4, 4, 1, r),
		NewReLU(),
		NewConv2DPadded(2, 1, 3, 4, 4, 1, r),
	)
	if len(block.Params()) != 4 || len(block.Grads()) != 4 {
		t.Fatalf("params %d grads %d, want 4 each", len(block.Params()), len(block.Grads()))
	}
}

func TestNegativePaddingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative padding must panic")
		}
	}()
	NewConv2DPadded(1, 1, 3, 4, 4, -1, rng.New(1))
}

func TestDropoutInferenceIdentity(t *testing.T) {
	d := NewDropout(0.5, 1)
	x := tensor.FromSlice(1, 4, []float32{1, 2, 3, 4})
	out := d.Forward(x, false)
	if !tensor.ApproxEqual(out, x, 0) {
		t.Fatal("inference dropout must be identity")
	}
	// Backward with no mask passes gradients through.
	g := tensor.FromSlice(1, 4, []float32{1, 1, 1, 1})
	if !tensor.ApproxEqual(d.Backward(g), g, 0) {
		t.Fatal("inference dropout backward must be identity")
	}
}

func TestDropoutTrainingMaskAndScale(t *testing.T) {
	d := NewDropout(0.5, 2)
	x := tensor.FromSlice(1, 1000, make([]float32, 1000))
	for i := range x.Data {
		x.Data[i] = 1
	}
	out := d.Forward(x, true)
	zeros, scaled := 0, 0
	for _, v := range out.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			scaled++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("dropped %d of 1000 at p=0.5", zeros)
	}
	if zeros+scaled != 1000 {
		t.Fatal("dropout produced unexpected values")
	}
	// Expectation preserved: mean ~1.
	var sum float32
	for _, v := range out.Data {
		sum += v
	}
	if mean := sum / 1000; mean < 0.85 || mean > 1.15 {
		t.Fatalf("inverted dropout mean %v, want ~1", mean)
	}
	// Backward routes gradients exactly through the surviving units.
	g := tensor.New(1, 1000)
	for i := range g.Data {
		g.Data[i] = 1
	}
	back := d.Backward(g)
	for i := range back.Data {
		if (out.Data[i] == 0) != (back.Data[i] == 0) {
			t.Fatal("gradient mask mismatch")
		}
	}
}

func TestDropoutGradients(t *testing.T) {
	// Gradcheck with dropout requires a frozen mask: run one training
	// forward to fix it, then check parameter gradients of the surrounding
	// layers against numeric differences under the same mask. Since
	// Forward(train=true) redraws the mask, we instead verify with p=0
	// (deterministic) that the layer composes cleanly.
	r := rng.New(3)
	net := NewSequential(NewDense(4, 6, r), NewDropout(0, 4), NewReLU(), NewDense(6, 2, r))
	x := tensor.Randn(3, 4, 1, r)
	gradCheck(t, net, x, []int{0, 1, 0}, 2e-2)
}

func TestDropoutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p=1 must panic")
		}
	}()
	NewDropout(1, 1)
}

func TestBatchNormTrainingNormalizes(t *testing.T) {
	r := rng.New(7)
	bn := NewBatchNorm2D(2, 3, 3)
	x := tensor.Randn(4, 2*9, 5, r)
	for i := range x.Data {
		x.Data[i] += 10 // large offset that normalization must remove
	}
	out := bn.Forward(x, true)
	// Per channel: mean ~0, variance ~1 across (batch, H, W).
	for c := 0; c < 2; c++ {
		var sum, sumSq float64
		n := 0
		for b := 0; b < 4; b++ {
			row := out.Row(b)
			for i := c * 9; i < (c+1)*9; i++ {
				sum += float64(row[i])
				sumSq += float64(row[i]) * float64(row[i])
				n++
			}
		}
		mean := sum / float64(n)
		variance := sumSq/float64(n) - mean*mean
		if mean > 1e-4 || mean < -1e-4 {
			t.Fatalf("channel %d mean %v", c, mean)
		}
		if variance < 0.9 || variance > 1.1 {
			t.Fatalf("channel %d variance %v", c, variance)
		}
	}
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	r := rng.New(8)
	bn := NewBatchNorm2D(1, 2, 2)
	// Warm the running stats on shifted data.
	for i := 0; i < 50; i++ {
		x := tensor.Randn(8, 4, 1, r)
		for j := range x.Data {
			x.Data[j] += 5
		}
		bn.Forward(x, true)
	}
	// Inference on the same distribution should be roughly normalized.
	x := tensor.Randn(8, 4, 1, r)
	for j := range x.Data {
		x.Data[j] += 5
	}
	out := bn.Forward(x, false)
	var sum float64
	for _, v := range out.Data {
		sum += float64(v)
	}
	if mean := sum / float64(len(out.Data)); mean > 0.5 || mean < -0.5 {
		t.Fatalf("inference mean %v, want ~0", mean)
	}
}

func TestBatchNormGradients(t *testing.T) {
	r := rng.New(9)
	bn := NewBatchNorm2D(2, 2, 2)
	net := NewSequential(NewConv2DPadded(2, 2, 3, 2, 2, 1, r), bn, NewReLU(), NewDense(8, 2, r))
	x := tensor.Randn(3, 8, 1, r)
	gradCheck(t, net, x, []int{0, 1, 0}, 5e-2)
}

func TestBatchNormShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch must panic")
		}
	}()
	NewBatchNorm2D(2, 2, 2).Forward(tensor.New(1, 5), true)
}

package nn

import (
	"decepticon/internal/rng"
	"decepticon/internal/stats"
	"decepticon/internal/tensor"
)

// Sequential chains layers into a feed-forward network.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a network from the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward runs a batch through the network.
func (s *Sequential) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates an output gradient through the network, accumulating
// parameter gradients.
func (s *Sequential) Backward(grad *tensor.Matrix) *tensor.Matrix {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns all trainable tensors in layer order.
func (s *Sequential) Params() []*tensor.Matrix {
	var ps []*tensor.Matrix
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Grads returns all gradient tensors aligned with Params.
func (s *Sequential) Grads() []*tensor.Matrix {
	var gs []*tensor.Matrix
	for _, l := range s.Layers {
		gs = append(gs, l.Grads()...)
	}
	return gs
}

// Predict returns the argmax class for every row of x.
func (s *Sequential) Predict(x *tensor.Matrix) []int {
	logits := s.Forward(x, false)
	out := make([]int, logits.Rows)
	for i := range out {
		out[i] = stats.ArgMax(logits.Row(i))
	}
	return out
}

// TrainConfig controls Fit.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	Optimizer Optimizer
	Seed      uint64
	// OnEpoch, if non-nil, is called after each epoch with the epoch index
	// and mean training loss.
	OnEpoch func(epoch int, loss float64)
	// Stop, if non-nil, is polled before each epoch; returning true ends
	// training early with the loss of the last completed epoch. Epochs
	// mutate the network in place, so the abort granularity is a whole
	// epoch — callers wire a context's Done state in here.
	Stop func() bool
}

// Fit trains the network on (x, labels) with shuffled mini-batches and
// returns the final epoch's mean loss.
func (s *Sequential) Fit(x *tensor.Matrix, labels []int, cfg TrainConfig) float64 {
	if x.Rows != len(labels) {
		panic("nn: Fit input/label mismatch")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.Optimizer == nil {
		cfg.Optimizer = &SGD{LR: 0.01}
	}
	r := rng.New(cfg.Seed)
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.Stop != nil && cfg.Stop() {
			break
		}
		perm := r.Perm(x.Rows)
		var epochLoss float64
		batches := 0
		for start := 0; start < len(perm); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(perm) {
				end = len(perm)
			}
			idx := perm[start:end]
			xb := tensor.New(len(idx), x.Cols)
			yb := make([]int, len(idx))
			for i, p := range idx {
				copy(xb.Row(i), x.Row(p))
				yb[i] = labels[p]
			}
			logits := s.Forward(xb, true)
			loss, grad := SoftmaxCrossEntropy(logits, yb)
			s.Backward(grad)
			cfg.Optimizer.Step(s.Params(), s.Grads())
			epochLoss += loss
			batches++
		}
		lastLoss = epochLoss / float64(batches)
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, lastLoss)
		}
	}
	return lastLoss
}

// Evaluate returns classification accuracy on (x, labels).
func (s *Sequential) Evaluate(x *tensor.Matrix, labels []int) float64 {
	return stats.Accuracy(s.Predict(x), labels)
}

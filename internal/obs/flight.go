package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// DefaultFlightCapacity is the ring size used by NewFlightRecorder when
// the caller passes a non-positive capacity.
const DefaultFlightCapacity = 512

// FlightEvent is one entry in the flight recorder's ring: a completed
// trace span or instant, or an explicit note (channel fault, retry
// escalation, degradation, budget interrupt).
type FlightEvent struct {
	// Seq is the event's global arrival number, strictly increasing for
	// the recorder's lifetime — the dump validator's monotonicity check.
	Seq   int64             `json:"seq"`
	Kind  string            `json:"kind"`
	Name  string            `json:"name"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// FlightDump is the serialized post-mortem record.
type FlightDump struct {
	RunID string `json:"run_id,omitempty"`
	// Reason records why the dump was written ("read budget exhausted",
	// "extraction failed: ...", "run exit", ...).
	Reason string `json:"reason"`
	// Dropped counts events that aged out of the ring before the dump.
	Dropped int64         `json:"dropped"`
	Events  []FlightEvent `json:"events"`
}

// FlightRecorder is a bounded ring buffer of the last N trace events
// and fault/retry/degradation decisions. It is the black box of a
// campaign: cheap enough to leave always-on, dumped automatically next
// to the checkpoint when an extraction is interrupted, fails, or
// exhausts its fault budget.
//
// Events are recorded in arrival order, which under a parallel campaign
// interleaves victims non-deterministically — a flight dump is a
// post-mortem record, NOT part of the byte-identical-across-workers
// guarantee the trace file carries. All methods are nil-safe.
type FlightRecorder struct {
	// RunID, when set, is stamped into every dump.
	RunID string

	mu      sync.Mutex
	cap     int
	seq     int64
	dropped int64
	buf     []FlightEvent // ring; buf[(seq-len)..seq) in arrival order
	start   int
}

// NewFlightRecorder returns a recorder keeping the last capacity events
// (DefaultFlightCapacity when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{cap: capacity}
}

// Note records one event. No-op on a nil receiver.
func (f *FlightRecorder) Note(kind, name string, attrs map[string]string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.seq++
	ev := FlightEvent{Seq: f.seq, Kind: kind, Name: name, Attrs: attrs}
	if len(f.buf) < f.cap {
		f.buf = append(f.buf, ev)
	} else {
		f.buf[f.start] = ev
		f.start = (f.start + 1) % f.cap
		f.dropped++
	}
	f.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEvent, 0, len(f.buf))
	for i := 0; i < len(f.buf); i++ {
		out = append(out, f.buf[(f.start+i)%len(f.buf)])
	}
	return out
}

// Len returns the number of retained events.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.buf)
}

// WriteJSON writes the dump. Nil-safe (writes an empty dump).
func (f *FlightRecorder) WriteJSON(w io.Writer, reason string) error {
	d := FlightDump{Reason: reason, Events: f.Events()}
	if d.Events == nil {
		d.Events = []FlightEvent{}
	}
	if f != nil {
		d.RunID = f.RunID
		f.mu.Lock()
		d.Dropped = f.dropped
		f.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// Dump writes the dump to path. No-op (returning nil) on a nil
// receiver, so callers can dump unconditionally.
func (f *FlightRecorder) Dump(path, reason string) error {
	if f == nil {
		return nil
	}
	file, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: flight dump: %w", err)
	}
	err = f.WriteJSON(file, reason)
	if cerr := file.Close(); err == nil {
		err = cerr
	}
	return err
}

// ParseFlightDump reads a dump written by WriteJSON/Dump.
func ParseFlightDump(r io.Reader) (FlightDump, error) {
	var d FlightDump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return FlightDump{}, fmt.Errorf("obs: parse flight dump: %w", err)
	}
	return d, nil
}

// ReadFlightFile parses a dump file.
func ReadFlightFile(path string) (FlightDump, error) {
	f, err := os.Open(path)
	if err != nil {
		return FlightDump{}, fmt.Errorf("obs: read flight dump: %w", err)
	}
	defer f.Close()
	return ParseFlightDump(f)
}

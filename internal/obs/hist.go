package obs

import (
	"math"
	"sync/atomic"
)

// Histogram bucket layout: power-of-two upper bounds 2^histMinExp ..
// 2^histMaxExp plus an explicit +Inf overflow bucket. The range covers
// everything the pipeline observes — sub-microsecond wall times at the
// bottom, billions of simulated hammer rounds at the top — and the
// log-2 spacing keeps the bucket count flat (52) while preserving
// relative resolution, which is what quantile interpolation needs.
const (
	histMinExp  = -20 // smallest upper bound: 2^-20 ≈ 9.5e-7
	histMaxExp  = 30  // largest finite upper bound: 2^30 ≈ 1.07e9
	histBuckets = histMaxExp - histMinExp + 1
)

// Histogram is a lock-free log-bucketed distribution: each observation
// lands in the smallest power-of-two bucket that covers it. Like every
// obs instrument it is nil-safe (a nil *Histogram no-ops) and cheap
// enough for hot paths — Observe is one Frexp, two atomic adds, and a
// CAS loop for the float sum.
//
// Determinism follows the registry's contract: a histogram fed from
// simulated units (hammer rounds, retry counts) is byte-identical for
// any worker count; one fed wall time (by convention named *_seconds)
// is not, exactly like timers.
type Histogram struct {
	buckets  [histBuckets]atomic.Int64
	overflow atomic.Int64
	sumBits  atomic.Uint64 // float64 bits, CAS-accumulated
}

// bucketIndex returns the bucket covering v: the smallest i such that
// v <= 2^(histMinExp+i), or histBuckets for the +Inf overflow bucket.
// Non-positive values land in bucket 0.
func bucketIndex(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	if math.IsInf(v, 1) {
		return histBuckets // Frexp(+Inf) reports exp 0, so catch it here
	}
	frac, exp := math.Frexp(v) // v = frac × 2^exp, frac ∈ [0.5, 1)
	if frac == 0.5 {
		exp-- // v is exactly a power of two: it fits its own bound
	}
	idx := exp - histMinExp
	switch {
	case idx < 0:
		return 0
	case idx >= histBuckets:
		return histBuckets
	}
	return idx
}

// bucketBound returns the upper bound of bucket i (math.Inf for the
// overflow bucket).
func bucketBound(i int) float64 {
	if i >= histBuckets {
		return math.Inf(1)
	}
	return math.Ldexp(1, histMinExp+i)
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if i := bucketIndex(v); i >= histBuckets {
		h.overflow.Add(1)
	} else {
		h.buckets[i].Add(1)
	}
	if math.IsNaN(v) {
		// Bucket 0 absorbed the count above; adding NaN into the sum
		// would permanently poison Sum/Mean and the Prometheus _sum line.
		return
	}
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver). It is
// derived from the buckets, so "bucket counts sum to Count" holds by
// construction — the invariant metricscheck enforces.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n + h.overflow.Load()
}

// Sum returns the accumulated total of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-th quantile (q in [0, 1]) by linear
// interpolation inside the covering bucket. 0 on a nil or empty
// histogram.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Value().Quantile(q)
}

// Value exports the histogram's current state. Buckets run from the
// first non-empty bound through the last, plus the explicit +Inf
// bucket, with per-bucket (not cumulative) counts.
func (h *Histogram) Value() HistogramValue {
	hv := HistogramValue{}
	if h == nil {
		return hv
	}
	first, last := -1, -1
	counts := make([]int64, histBuckets)
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		if counts[i] > 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first >= 0 {
		for i := first; i <= last; i++ {
			hv.Buckets = append(hv.Buckets, HistogramBucket{
				Le: promFloat(bucketBound(i)), Count: counts[i],
			})
			hv.Count += counts[i]
		}
	}
	over := h.overflow.Load()
	hv.Buckets = append(hv.Buckets, HistogramBucket{Le: "+Inf", Count: over})
	hv.Count += over
	hv.Sum = h.Sum()
	hv.Quantiles = hv.quantiles()
	return hv
}

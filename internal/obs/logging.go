package obs

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"strings"
)

// discardHandler is a no-op slog.Handler. (go.mod targets go 1.22, so
// the go 1.24 slog.DiscardHandler is off-limits.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// discardLogger backs Registry.Log when no logger is attached: Enabled
// reports false before any attribute work, so un-configured logging
// costs near nothing.
var discardLogger = slog.New(discardHandler{})

// NewLogger returns a leveled text logger writing to w, with the run id
// attached to every record when non-empty. This is what the CLIs build
// from -log-level; libraries receive it via Registry.SetLogger.
func NewLogger(w io.Writer, level slog.Level, runID string) *slog.Logger {
	l := slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
	if runID != "" {
		l = l.With("run", runID)
	}
	return l
}

// ParseLogLevel maps a -log-level flag value to a slog level. The empty
// string and "off" disable logging (enabled = false).
func ParseLogLevel(s string) (level slog.Level, enabled bool, err error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "off":
		return 0, false, nil
	case "debug":
		return slog.LevelDebug, true, nil
	case "info":
		return slog.LevelInfo, true, nil
	case "warn":
		return slog.LevelWarn, true, nil
	case "error":
		return slog.LevelError, true, nil
	}
	return 0, false, fmt.Errorf("obs: unknown log level %q (use debug, info, warn, error, or off)", s)
}

// RunID derives a stable 16-hex-digit run identifier from the given
// labels (typically the CLI's argument list). Deliberately content-
// derived rather than random or time-based: the id lands in logs and
// flight dumps, and those must not smuggle nondeterminism into
// otherwise reproducible runs.
func RunID(labels ...string) string {
	h := fnv.New64a()
	for _, l := range labels {
		h.Write([]byte(l))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Package obs is the repo's observability layer: one registry of named
// counters, gauges and timers that every attack stage reports into, so
// the cost accounting the paper's efficiency claims hang on (hammer
// rounds, victim queries, forward passes, per-phase wall time) flows
// through a single audited path instead of ad-hoc fields scattered
// across packages.
//
// Design constraints, in order:
//
//  1. Dependency-free: standard library only, like the rest of the repo.
//  2. Nil-safe: a nil *Registry (and the nil *Counter/*Gauge/*Timer
//     handles it hands out) is a valid no-op instrument, so callers
//     thread observability with zero branches — `o.c.Inc()` costs one
//     nil check when metrics are off.
//  3. Deterministic where the pipeline is: counters are pure sums of
//     per-item contributions, so under internal/parallel's invariant
//     (every item derives its randomness from its own identity) counter
//     values are byte-identical for any worker count. Timers measure
//     wall time and are explicitly excluded from that guarantee.
//  4. Cheap enough for hot paths: instruments are lock-free atomics;
//     the registry mutex is only taken when resolving a name to a
//     handle, so hot loops resolve once and hammer the atomic.
package obs

import (
	"log/slog"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing (by convention) int64 metric.
// All methods are safe for concurrent use and safe on a nil receiver.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float64 metric.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last stored value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Timer accumulates wall-clock durations (a span histogram reduced to
// sum + count — enough for the per-phase accounting the experiments
// report). Timer values are real elapsed time and therefore NOT part of
// the worker-count determinism guarantee; Snapshot keeps them in a
// separate section so determinism tests can compare counters alone.
type Timer struct {
	ns    atomic.Int64
	count atomic.Int64
}

// Observe adds one duration. No-op on a nil receiver.
func (t *Timer) Observe(d time.Duration) {
	if t != nil {
		t.ns.Add(int64(d))
		t.count.Add(1)
	}
}

// Total returns the accumulated duration (0 on a nil receiver).
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.ns.Load())
}

// Count returns how many spans were observed (0 on a nil receiver).
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Mean returns the average observed duration (0 when nothing was
// observed) — the per-call latency a Total alone cannot give.
func (t *Timer) Mean() time.Duration {
	n := t.Count()
	if n == 0 {
		return 0
	}
	return t.Total() / time.Duration(n)
}

// Span is one in-flight timed phase. End records the elapsed time into
// the timer that started it; End is idempotent and nil-safe, so
// `defer r.StartSpan("phase").End()` works unconditionally.
type Span struct {
	t     *Timer
	start time.Time
	done  bool
}

// End stops the span and records its duration. Safe to call more than
// once (only the first call records) and on a nil receiver.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	s.t.Observe(time.Since(s.start))
}

// Registry holds the named instruments. The zero value is NOT ready to
// use — call New. A nil *Registry is a valid no-op sink: every method
// works and hands out nil instruments whose methods no-op, which is how
// the pipeline runs un-instrumented by default.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
	hists    map[string]*Histogram

	// Optional attached subsystems (see trace.go, flight.go,
	// logging.go). Atomic pointers so hot-path accessors never take the
	// registry mutex.
	tracer atomic.Pointer[Tracer]
	flight atomic.Pointer[FlightRecorder]
	logger atomic.Pointer[slog.Logger]
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it at zero on first use.
// Returns nil (a valid no-op counter) on a nil registry. Hot paths
// should resolve once and keep the handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// (a valid no-op gauge) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use. Returns nil
// (a valid no-op timer) on a nil registry.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil (a valid no-op histogram) on a nil registry. Hot paths
// should resolve once and keep the handle.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// SetTracer attaches a tracer; instrumented code reaches it through
// Tracer(). Nil detaches. No-op on a nil registry. When a flight
// recorder is (or later gets) attached, the tracer mirrors completed
// spans and instants into it — SetTracer/SetFlight wire the two in
// either call order.
func (r *Registry) SetTracer(t *Tracer) {
	if r == nil {
		return
	}
	r.tracer.Store(t)
	t.SetFlight(r.flight.Load())
}

// Tracer returns the attached tracer, or nil (whose Track method hands
// out no-op tracks) when tracing is off.
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer.Load()
}

// SetFlight attaches a flight recorder and points any attached tracer's
// span mirror at it. Nil detaches both. No-op on a nil registry.
func (r *Registry) SetFlight(f *FlightRecorder) {
	if r == nil {
		return
	}
	r.flight.Store(f)
	r.tracer.Load().SetFlight(f)
}

// Flight returns the attached flight recorder, or nil (a valid no-op).
func (r *Registry) Flight() *FlightRecorder {
	if r == nil {
		return nil
	}
	return r.flight.Load()
}

// SetLogger attaches a structured logger (see NewLogger). Nil detaches.
// No-op on a nil registry.
func (r *Registry) SetLogger(l *slog.Logger) {
	if r != nil {
		r.logger.Store(l)
	}
}

// Log returns the attached logger, never nil: without one (or on a nil
// registry) it returns a discard logger whose Enabled check rejects
// every record, so call sites log unconditionally.
func (r *Registry) Log() *slog.Logger {
	if r == nil {
		return discardLogger
	}
	if l := r.logger.Load(); l != nil {
		return l
	}
	return discardLogger
}

// StartSpan opens a timed span recording into the named timer on End.
// On a nil registry the returned span is a no-op (never nil, so the
// defer idiom needs no branch).
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return &Span{done: true}
	}
	return &Span{t: r.Timer(name), start: time.Now()}
}

// names returns the sorted keys of a map — snapshot and export order is
// always lexicographic so output is reproducible.
func names[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"decepticon/internal/parallel"
)

// workerCounts are the 1-vs-N points the determinism tests compare.
var workerCounts = []int{1, 4}

// runCounted simulates an instrumented parallel stage: every item
// contributes amounts derived from its own index, mirroring the repo's
// seeding discipline.
func runCounted(workers int) Snapshot {
	r := New()
	parallel.ForEach(100, workers, func(i int) {
		r.Counter("stage.bit_reads").Add(int64(i%7) * 2048)
		r.Counter("stage.queries").Inc()
		if i%3 == 0 {
			r.Counter("stage.flips").Add(int64(i))
		}
		r.Gauge("stage.last_fraction").Set(0.25) // same value from every item
	})
	return r.Snapshot()
}

func TestSnapshotCountersDeterministicAcrossWorkers(t *testing.T) {
	base := runCounted(workerCounts[0])
	for _, w := range workerCounts[1:] {
		got := runCounted(w)
		// Byte-identical counters (and gauges): marshal the deterministic
		// sections and diff the bytes.
		for _, sec := range []any{
			[]any{base.Counters, got.Counters},
			[]any{base.Gauges, got.Gauges},
		} {
			pair := sec.([]any)
			a, _ := json.Marshal(pair[0])
			b, _ := json.Marshal(pair[1])
			if !bytes.Equal(a, b) {
				t.Fatalf("workers=%d snapshot diverged:\n  1 worker:  %s\n  %d workers: %s", w, a, w, b)
			}
		}
	}
}

func TestCounterGaugeTimerBasics(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("c") != c {
		t.Fatal("Counter did not return the same handle for one name")
	}
	g := r.Gauge("g")
	g.Set(1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	tm := r.Timer("t")
	tm.Observe(2 * time.Second)
	tm.Observe(time.Second)
	if got := tm.Total(); got != 3*time.Second {
		t.Fatalf("timer total = %v, want 3s", got)
	}
	if got := tm.Count(); got != 2 {
		t.Fatalf("timer count = %d, want 2", got)
	}
}

func TestSpanRecordsOnceIntoTimer(t *testing.T) {
	r := New()
	sp := r.StartSpan("phase")
	time.Sleep(time.Millisecond)
	sp.End()
	sp.End() // idempotent
	tm := r.Timer("phase")
	if tm.Count() != 1 {
		t.Fatalf("span recorded %d observations, want 1", tm.Count())
	}
	if tm.Total() <= 0 {
		t.Fatalf("span recorded non-positive duration %v", tm.Total())
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(5)
	r.Counter("x").Inc()
	r.Gauge("y").Set(3)
	r.Timer("z").Observe(time.Second)
	r.StartSpan("p").End()
	if got := r.Counter("x").Value(); got != 0 {
		t.Fatalf("nil counter = %d, want 0", got)
	}
	s := r.Snapshot()
	if !s.Empty() {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
	var sink *OrderedSink[int]
	sink.Emit(0, 1)
	sink.Done(0)
	if sink.Delivered() != 0 {
		t.Fatal("nil sink delivered something")
	}
}

func sampleSnapshot() Snapshot {
	r := New()
	r.Counter("sidechannel.bit_reads_physical").Add(123456789012)
	r.Counter("core.victim_queries").Add(37)
	r.Gauge("extract.match_rate").Set(0.984375)
	h := r.Histogram("extract.bit_read_rounds")
	for _, v := range []float64{2048, 4096, 4096, 10240, 3} {
		h.Observe(v)
	}
	r.Timer("zoo.build_seconds").Observe(1537 * time.Millisecond)
	r.Timer("zoo.build_seconds").Observe(463 * time.Millisecond)
	return r.Snapshot()
}

func TestJSONRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("json round trip mismatch:\n  wrote %+v\n  read  %+v", s, got)
	}
}

func TestPrometheusRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	var first bytes.Buffer
	if err := s.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParsePrometheus(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Values survive (names come back in sanitized form).
	if got := parsed.Counters["sidechannel_bit_reads_physical"]; got != 123456789012 {
		t.Fatalf("parsed counter = %d, want 123456789012 (int64 must not truncate)", got)
	}
	if got := parsed.Timers["zoo_build_seconds"]; got.Count != 2 || got.Seconds != 2.0 {
		t.Fatalf("parsed timer = %+v, want {2s 2}", got)
	}
	if got := parsed.Histograms["extract_bit_read_rounds"]; got.Count != 5 || got.Sum != 20483 {
		t.Fatalf("parsed histogram = %+v, want count 5 sum 20483", got)
	}
	// Text-level round trip: sanitization is idempotent, so re-exporting
	// the parsed snapshot reproduces the bytes.
	var second bytes.Buffer
	if err := parsed.WritePrometheus(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("prometheus round trip not byte-identical:\n--- first\n%s--- second\n%s", first.String(), second.String())
	}
}

func TestParsePrometheusRejectsGarbage(t *testing.T) {
	for _, text := range []string{
		"decepticon_x 1\n", // no TYPE declaration
		"# TYPE decepticon_x counter\ndecepticon_x\n", // missing value
		"# TYPE decepticon_x counter\ndecepticon_x notanumber\n",
	} {
		if _, err := ParsePrometheus(bytes.NewReader([]byte(text))); err == nil {
			t.Fatalf("ParsePrometheus accepted malformed input %q", text)
		}
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	dir := t.TempDir()
	for _, name := range []string{"m.json", "m.prom"} {
		path := dir + "/" + name
		if err := s.WriteFile(path); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Empty() {
			t.Fatalf("%s: snapshot read back empty", name)
		}
	}
}

func TestServeExposesMetricsAndPprof(t *testing.T) {
	r := New()
	r.Counter("serve.test_counter").Add(7)
	addr, shutdown, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) []byte {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return b
	}
	prom, err := ParsePrometheus(bytes.NewReader(get("/metrics")))
	if err != nil {
		t.Fatalf("/metrics did not parse: %v", err)
	}
	if prom.Counters["serve_test_counter"] != 7 {
		t.Fatalf("/metrics counters = %v, want serve_test_counter 7", prom.Counters)
	}
	js, err := ParseJSON(bytes.NewReader(get("/metrics.json")))
	if err != nil {
		t.Fatalf("/metrics.json did not parse: %v", err)
	}
	if js.Counters["serve.test_counter"] != 7 {
		t.Fatalf("/metrics.json counters = %v", js.Counters)
	}
	if !bytes.Contains(get("/debug/pprof/"), []byte("goroutine")) {
		t.Fatal("/debug/pprof/ index missing goroutine profile")
	}
	if !bytes.Contains(get("/debug/vars"), []byte("decepticon")) {
		t.Fatal("/debug/vars missing published registry")
	}
	// Graceful shutdown: the listener closes, later requests fail, and a
	// second call stays safe.
	if err := shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("GET after shutdown unexpectedly succeeded")
	}
	if err := shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func TestPromNameIdempotent(t *testing.T) {
	for _, name := range []string{"extract.layer_seconds", "a.b-c/d", "already_clean", "9lead"} {
		once := promName(name)
		if twice := promName(once); twice != once {
			t.Fatalf("promName not idempotent: %q -> %q -> %q", name, once, twice)
		}
	}
}

func TestOrderedSinkFlushesInIndexOrder(t *testing.T) {
	var got []string
	s := NewOrderedSink[string](4, func(i int, evs []string) {
		for _, e := range evs {
			got = append(got, fmt.Sprintf("%d:%s", i, e))
		}
	})
	// Complete items in scrambled order; nothing may flush early.
	s.Emit(2, "c")
	s.Done(2)
	s.Emit(1, "b1")
	s.Emit(1, "b2")
	s.Done(1)
	if len(got) != 0 {
		t.Fatalf("sink flushed %v before item 0 completed", got)
	}
	s.Done(3)
	s.Emit(0, "a")
	s.Done(0)
	want := []string{"0:a", "1:b1", "1:b2", "2:c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("delivery order = %v, want %v", got, want)
	}
	if s.Delivered() != 4 {
		t.Fatalf("Delivered = %d, want 4", s.Delivered())
	}
}

func TestOrderedSinkUnderParallelForEach(t *testing.T) {
	const n = 64
	serial := func(workers int) []int {
		var seq []int
		s := NewOrderedSink[int](n, func(i int, evs []int) { seq = append(seq, evs...) })
		parallel.ForEach(n, workers, func(i int) {
			s.Emit(i, i*2)
			s.Emit(i, i*2+1)
			s.Done(i)
		})
		return seq
	}
	base := serial(1)
	if len(base) != 2*n {
		t.Fatalf("serial sink delivered %d events, want %d", len(base), 2*n)
	}
	for _, w := range workerCounts[1:] {
		if got := serial(w); !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d event order diverged from serial", w)
		}
	}
}

// /debug/vars must reflect the registry of the most recent Handler call:
// the expvar func is published once per process, so it has to read
// through the swappable current-registry pointer rather than capture the
// first registry forever.
func TestHandlerExpvarTracksLatestRegistry(t *testing.T) {
	r1 := New()
	r1.Counter("expvar.first").Add(1)
	Handler(r1)
	v := expvar.Get("decepticon")
	if v == nil {
		t.Fatal("expvar decepticon not published")
	}
	if s := v.String(); !strings.Contains(s, "expvar.first") {
		t.Fatalf("expvar snapshot missing first registry's counter: %s", s)
	}
	r2 := New()
	r2.Counter("expvar.second").Add(2)
	Handler(r2)
	s := v.String()
	if !strings.Contains(s, "expvar.second") {
		t.Fatalf("expvar snapshot still serving stale registry: %s", s)
	}
	if strings.Contains(s, "expvar.first") {
		t.Fatalf("expvar snapshot mixes registries: %s", s)
	}
}

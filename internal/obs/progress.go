package obs

import (
	"math"
	"sort"
	"sync"
	"time"
)

// ProgressTracker tracks planned vs. completed *simulated units* — the
// bit reads and hammer rounds an extraction plan commits to before it
// runs — across a set of named items (one per victim). The sim-unit
// side follows the registry's counter contract: values derive only from
// the deterministic plan and the deterministic completion order within
// each item, so they are byte-identical for any worker count and across
// checkpoint/resume. The wall-clock side (an EWMA completion rate and
// the ETA derived from it) is explicitly excluded from that guarantee,
// exactly like Timer.
//
// Like every obs instrument the tracker is nil-safe: a nil
// *ProgressTracker hands out nil *ItemProgress handles, and every
// method on both no-ops, so instrumented code never branches.
//
// All item updates are monotone ratchets. Completed never decreases
// (a resumed run recomputes the same cumulative value from its
// checkpoint and ratchets back up through it), planned only grows, and
// Done latches — which is what makes the exported fraction monotone by
// construction.
type ProgressTracker struct {
	mu    sync.Mutex
	items map[string]*ItemProgress
	order []string
	total int // expected item count; len(items) may trail it

	onEvent func(ProgressEvent)

	// EWMA fraction-per-second rate, advanced at Snapshot time.
	now      func() time.Time
	rateSeen bool
	lastAt   time.Time
	lastFrac float64
	rate     float64
}

// ewmaTau is the time constant of the completion-rate EWMA: a ~30s
// horizon smooths per-tensor burstiness without going numb to real
// slowdowns.
const ewmaTau = 30 * time.Second

// ProgressEvent describes one item update, delivered to the OnEvent
// callback outside the tracker's lock (callbacks may call back into the
// tracker or take their own locks freely).
type ProgressEvent struct {
	Item string
	Kind string // "planned" | "units" | "stage" | "done"
	// Detail carries the boundary that fired a "units" event — the
	// tensor name, or "restored" when a resume re-credits checkpointed
	// work in one jump.
	Detail    string
	Stage     string
	Planned   int64
	Completed int64
	Done      bool
}

// Event kinds fired by ItemProgress updates.
const (
	ProgressPlanned = "planned"
	ProgressUnits   = "units"
	ProgressStage   = "stage"
	ProgressDone    = "done"
)

// ItemProgress is one item's handle into its tracker. Methods no-op on
// a nil receiver.
type ItemProgress struct {
	t    *ProgressTracker
	name string

	// guarded by t.mu
	planned   int64
	completed int64
	stage     string
	done      bool
}

// ItemValue is one item's exported state. Every field except nothing is
// deterministic; there is no wall-clock state per item.
type ItemValue struct {
	Name      string  `json:"name"`
	Stage     string  `json:"stage,omitempty"`
	Planned   int64   `json:"planned"`
	Completed int64   `json:"completed"`
	Done      bool    `json:"done"`
	Fraction  float64 `json:"fraction"`
}

// ProgressValue is a tracker's exported state. Fraction, the unit
// totals, and Items are deterministic; RatePerSec and ETASeconds are
// wall-clock estimates and excluded from determinism checks.
type ProgressValue struct {
	Fraction       float64     `json:"fraction"`
	PlannedUnits   int64       `json:"planned_units"`
	CompletedUnits int64       `json:"completed_units"`
	ItemsDone      int         `json:"items_done"`
	ItemsTotal     int         `json:"items_total"`
	Items          []ItemValue `json:"items,omitempty"`

	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	ETASeconds float64 `json:"eta_seconds,omitempty"`
}

// NewProgress returns an empty tracker.
func NewProgress() *ProgressTracker {
	return &ProgressTracker{items: map[string]*ItemProgress{}, now: time.Now}
}

// SetNow replaces the tracker's clock — test hook for the EWMA/ETA
// math. No-op on nil.
func (t *ProgressTracker) SetNow(now func() time.Time) {
	if t == nil || now == nil {
		return
	}
	t.mu.Lock()
	t.now = now
	t.mu.Unlock()
}

// OnEvent installs a callback fired after every item update, outside
// the tracker's lock. Install before handing out items; the last
// callback installed wins. No-op on nil.
func (t *ProgressTracker) OnEvent(fn func(ProgressEvent)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.onEvent = fn
	t.mu.Unlock()
}

// SetTotalItems fixes the expected item count. The overall fraction
// divides by max(total, registered items), so declaring the full victim
// set up front keeps the fraction monotone while items register lazily.
// No-op on nil; ratchets (never shrinks).
func (t *ProgressTracker) SetTotalItems(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if n > t.total {
		t.total = n
	}
	t.mu.Unlock()
}

// Item returns the named item's handle, creating it on first use (the
// registry's create-on-first-use idiom). Items report in creation
// order; pre-registering every victim in input order makes the exported
// breakdown worker-invariant. Returns nil on a nil tracker.
func (t *ProgressTracker) Item(name string) *ItemProgress {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	it := t.items[name]
	if it == nil {
		it = &ItemProgress{t: t, name: name}
		t.items[name] = it
		t.order = append(t.order, name)
	}
	t.mu.Unlock()
	return it
}

// fractionLocked computes the overall fraction: the mean of item
// fractions over a fixed denominator (the declared total), so it can
// only move up as items progress and reaches exactly 1.0 when every
// item is done — including zero-planned items, which Done snaps to 1.
func (t *ProgressTracker) fractionLocked() float64 {
	den := t.total
	if len(t.items) > den {
		den = len(t.items)
	}
	if den == 0 {
		return 0
	}
	var sum float64
	for _, name := range t.order {
		sum += t.items[name].fractionLocked()
	}
	f := sum / float64(den)
	if f > 1 {
		f = 1
	}
	return f
}

func (it *ItemProgress) fractionLocked() float64 {
	switch {
	case it.done:
		return 1
	case it.planned > 0:
		f := float64(it.completed) / float64(it.planned)
		if f > 1 {
			f = 1
		}
		return f
	default:
		return 0
	}
}

// Snapshot exports the tracker's current state and advances the EWMA
// rate estimate. The sim-unit fields are deterministic; RatePerSec and
// ETASeconds depend on wall time. Safe (and empty) on nil.
func (t *ProgressTracker) Snapshot() ProgressValue {
	var pv ProgressValue
	if t == nil {
		return pv
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pv.ItemsTotal = t.total
	if len(t.items) > pv.ItemsTotal {
		pv.ItemsTotal = len(t.items)
	}
	for _, name := range t.order {
		it := t.items[name]
		pv.PlannedUnits += it.planned
		pv.CompletedUnits += it.completed
		if it.done {
			pv.ItemsDone++
		}
		pv.Items = append(pv.Items, ItemValue{
			Name: it.name, Stage: it.stage,
			Planned: it.planned, Completed: it.completed,
			Done: it.done, Fraction: it.fractionLocked(),
		})
	}
	pv.Fraction = t.fractionLocked()

	// EWMA wall-clock rate: fraction per second, relaxed toward the
	// rate observed since the previous snapshot.
	now := t.now()
	if !t.rateSeen {
		t.rateSeen = true
		t.lastAt, t.lastFrac = now, pv.Fraction
	} else if dt := now.Sub(t.lastAt).Seconds(); dt > 0 {
		inst := (pv.Fraction - t.lastFrac) / dt
		alpha := 1 - math.Exp(-dt/ewmaTau.Seconds())
		t.rate += alpha * (inst - t.rate)
		t.lastAt, t.lastFrac = now, pv.Fraction
	}
	if t.rate > 1e-12 {
		pv.RatePerSec = t.rate
		if pv.Fraction < 1 {
			pv.ETASeconds = (1 - pv.Fraction) / t.rate
		}
	}
	return pv
}

// ItemNames returns the registered item names, sorted — a deterministic
// view for tests. Empty on nil.
func (t *ProgressTracker) ItemNames() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	names := append([]string(nil), t.order...)
	t.mu.Unlock()
	sort.Strings(names)
	return names
}

// emit fires the callback captured while holding the lock. Call with
// the lock released.
func emitProgress(fn func(ProgressEvent), ev ProgressEvent) {
	if fn != nil {
		fn(ev)
	}
}

// eventLocked builds the item's current event payload.
func (it *ItemProgress) eventLocked(kind, detail string) ProgressEvent {
	return ProgressEvent{
		Item: it.name, Kind: kind, Detail: detail, Stage: it.stage,
		Planned: it.planned, Completed: it.completed, Done: it.done,
	}
}

// SetPlanned declares the item's total planned simulated units, from
// the extraction plan. Ratchets: a resumed run re-declaring the same
// plan is a no-op, and planned never shrinks below what a previous
// declaration promised. No-op on nil.
func (it *ItemProgress) SetPlanned(units int64) {
	if it == nil {
		return
	}
	it.t.mu.Lock()
	if units > it.planned {
		it.planned = units
	}
	ev := it.eventLocked(ProgressPlanned, "")
	fn := it.t.onEvent
	it.t.mu.Unlock()
	emitProgress(fn, ev)
}

// Complete records the item's cumulative completed units — an absolute
// value, not a delta, so the caller's deterministic recomputation after
// a resume ratchets through the same sequence instead of double
// counting. detail names the boundary (the tensor just finished, or
// "restored"). No-op on nil; never moves backward.
func (it *ItemProgress) Complete(totalUnits int64, detail string) {
	if it == nil {
		return
	}
	it.t.mu.Lock()
	if totalUnits > it.completed {
		it.completed = totalUnits
	}
	ev := it.eventLocked(ProgressUnits, detail)
	fn := it.t.onEvent
	it.t.mu.Unlock()
	emitProgress(fn, ev)
}

// SetStage labels the item's current pipeline stage (measure, identify,
// extract, ...) — pure annotation, no effect on fractions. No-op on
// nil.
func (it *ItemProgress) SetStage(stage string) {
	if it == nil {
		return
	}
	it.t.mu.Lock()
	it.stage = stage
	ev := it.eventLocked(ProgressStage, "")
	fn := it.t.onEvent
	it.t.mu.Unlock()
	emitProgress(fn, ev)
}

// MarkDone latches the item complete: its fraction snaps to exactly 1
// (even when nothing was planned — a skipped or early-stopped victim is
// still finished work) and completed snaps up to planned. No-op on nil.
func (it *ItemProgress) MarkDone() {
	if it == nil {
		return
	}
	it.t.mu.Lock()
	it.done = true
	if it.completed < it.planned {
		it.completed = it.planned
	}
	ev := it.eventLocked(ProgressDone, "")
	fn := it.t.onEvent
	it.t.mu.Unlock()
	emitProgress(fn, ev)
}

// Name returns the item's name ("" on nil).
func (it *ItemProgress) Name() string {
	if it == nil {
		return ""
	}
	return it.name
}

// Value exports the item's current state (zero on nil).
func (it *ItemProgress) Value() ItemValue {
	if it == nil {
		return ItemValue{}
	}
	it.t.mu.Lock()
	defer it.t.mu.Unlock()
	return ItemValue{
		Name: it.name, Stage: it.stage,
		Planned: it.planned, Completed: it.completed,
		Done: it.done, Fraction: it.fractionLocked(),
	}
}

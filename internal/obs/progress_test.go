package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"time"
)

func TestNilProgressTrackerIsNoOp(t *testing.T) {
	var tr *ProgressTracker
	tr.SetTotalItems(3)
	tr.OnEvent(func(ProgressEvent) { t.Fatal("nil tracker fired an event") })
	tr.SetNow(time.Now)
	it := tr.Item("v")
	if it != nil {
		t.Fatalf("nil tracker handed out a non-nil item")
	}
	it.SetPlanned(100)
	it.Complete(50, "tensor")
	it.SetStage("extract")
	it.MarkDone()
	if got := it.Value(); got != (ItemValue{}) {
		t.Fatalf("nil item Value = %+v, want zero", got)
	}
	if got := tr.Snapshot(); got.Fraction != 0 || got.Items != nil {
		t.Fatalf("nil tracker Snapshot = %+v, want zero", got)
	}
	if names := tr.ItemNames(); names != nil {
		t.Fatalf("nil tracker ItemNames = %v, want nil", names)
	}
}

func TestProgressRatchetsAndFraction(t *testing.T) {
	tr := NewProgress()
	tr.SetTotalItems(2)
	a := tr.Item("a")
	a.SetPlanned(100)
	a.Complete(40, "t0")
	a.Complete(30, "stale") // absolute values ratchet: never backward
	if v := a.Value(); v.Completed != 40 {
		t.Fatalf("completed = %d after stale update, want 40", v.Completed)
	}
	a.SetPlanned(80) // planned ratchets too
	if v := a.Value(); v.Planned != 100 {
		t.Fatalf("planned = %d after smaller re-declare, want 100", v.Planned)
	}
	pv := tr.Snapshot()
	// Item a is 40/100 done; item b not registered; total fixed at 2.
	if want := 0.4 / 2; math.Abs(pv.Fraction-want) > 1e-12 {
		t.Fatalf("fraction = %g, want %g", pv.Fraction, want)
	}
	b := tr.Item("b")
	b.MarkDone() // zero-planned item snaps to 1 when done
	a.Complete(100, "t1")
	a.MarkDone()
	pv = tr.Snapshot()
	if pv.Fraction != 1.0 {
		t.Fatalf("final fraction = %g, want exactly 1.0", pv.Fraction)
	}
	if pv.ItemsDone != 2 || pv.ItemsTotal != 2 {
		t.Fatalf("items done/total = %d/%d, want 2/2", pv.ItemsDone, pv.ItemsTotal)
	}
	if pv.CompletedUnits != pv.PlannedUnits {
		t.Fatalf("completed %d != planned %d at the end", pv.CompletedUnits, pv.PlannedUnits)
	}
}

func TestProgressFractionMonotone(t *testing.T) {
	tr := NewProgress()
	tr.SetTotalItems(3)
	items := []*ItemProgress{tr.Item("a"), tr.Item("b"), tr.Item("c")}
	last := -1.0
	check := func() {
		f := tr.Snapshot().Fraction
		if f < last {
			t.Fatalf("fraction regressed: %g after %g", f, last)
		}
		last = f
	}
	for i, it := range items {
		it.SetPlanned(int64(50 * (i + 1)))
		check()
	}
	for step := int64(1); step <= 5; step++ {
		for i, it := range items {
			it.Complete(step*10*int64(i+1), "t")
			check()
		}
	}
	for _, it := range items {
		it.MarkDone()
		check()
	}
	if last != 1.0 {
		t.Fatalf("final fraction = %g, want exactly 1.0", last)
	}
}

// TestProgressDeterministicAcrossInterleavings pins the worker-
// invariance contract: the same per-item updates applied in different
// orders export identical sim-unit state.
func TestProgressDeterministicAcrossInterleavings(t *testing.T) {
	build := func(perm []int) ProgressValue {
		tr := NewProgress()
		tr.SetTotalItems(3)
		names := []string{"a", "b", "c"}
		for _, n := range names { // registration order fixed up front
			tr.Item(n)
		}
		for _, i := range perm {
			it := tr.Item(names[i])
			it.SetPlanned(int64(100 * (i + 1)))
			it.Complete(int64(100*(i+1)), "t")
			it.MarkDone()
		}
		pv := tr.Snapshot()
		pv.RatePerSec, pv.ETASeconds = 0, 0 // wall clock: excluded
		return pv
	}
	ref := build([]int{0, 1, 2})
	for _, perm := range [][]int{{2, 1, 0}, {1, 2, 0}, {2, 0, 1}} {
		if got := build(perm); !reflect.DeepEqual(got, ref) {
			t.Fatalf("order %v: snapshot %+v != reference %+v", perm, got, ref)
		}
	}
	refJSON, _ := json.Marshal(ref)
	other, _ := json.Marshal(build([]int{1, 0, 2}))
	if string(refJSON) != string(other) {
		t.Fatalf("sim-unit JSON differs across interleavings:\n%s\n%s", refJSON, other)
	}
}

func TestProgressEvents(t *testing.T) {
	tr := NewProgress()
	var got []ProgressEvent
	tr.OnEvent(func(ev ProgressEvent) { got = append(got, ev) })
	it := tr.Item("v")
	it.SetStage("extract")
	it.SetPlanned(10)
	it.Complete(4, "blocks.0.w")
	it.MarkDone()
	kinds := make([]string, len(got))
	for i, ev := range got {
		kinds[i] = ev.Kind
	}
	want := []string{ProgressStage, ProgressPlanned, ProgressUnits, ProgressDone}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("event kinds = %v, want %v", kinds, want)
	}
	if got[2].Detail != "blocks.0.w" || got[2].Completed != 4 || got[2].Planned != 10 {
		t.Fatalf("units event = %+v", got[2])
	}
	if !got[3].Done || got[3].Completed != 10 {
		t.Fatalf("done event = %+v, want done with completed snapped to planned", got[3])
	}
	// Callbacks run outside the lock: re-entering the tracker from one
	// must not deadlock.
	reent := NewProgress()
	reent.OnEvent(func(ProgressEvent) { _ = reent.Snapshot() })
	reent.Item("x").SetPlanned(1)
}

func TestProgressETA(t *testing.T) {
	tr := NewProgress()
	now := time.Unix(1000, 0)
	tr.SetNow(func() time.Time { return now })
	tr.SetTotalItems(1)
	it := tr.Item("v")
	it.SetPlanned(100)
	if pv := tr.Snapshot(); pv.ETASeconds != 0 || pv.RatePerSec != 0 {
		t.Fatalf("first snapshot reported a rate: %+v", pv)
	}
	// 10 units/s of a 100-unit plan = 0.1 fraction/s instantaneous.
	for i := 1; i <= 5; i++ {
		now = now.Add(time.Second)
		it.Complete(int64(10*i), "t")
		tr.Snapshot()
	}
	pv := tr.Snapshot()
	if pv.RatePerSec <= 0 {
		t.Fatalf("rate = %g after steady progress, want > 0", pv.RatePerSec)
	}
	if pv.ETASeconds <= 0 {
		t.Fatalf("eta = %g mid-run, want > 0", pv.ETASeconds)
	}
	// Finish: ETA must disappear at fraction 1.
	it.Complete(100, "t")
	it.MarkDone()
	now = now.Add(time.Second)
	pv = tr.Snapshot()
	if pv.Fraction != 1 || pv.ETASeconds != 0 {
		t.Fatalf("done snapshot = fraction %g eta %g, want 1 and 0", pv.Fraction, pv.ETASeconds)
	}
}

// TestHistogramNaNDoesNotPoisonSum pins the Observe bugfix: a NaN
// observation counts (bucket 0 absorbs it) but must not contaminate the
// accumulated sum, which previously turned Sum/Mean and the Prometheus
// _sum line into NaN forever.
func TestHistogramNaNDoesNotPoisonSum(t *testing.T) {
	r := New()
	h := r.Histogram("stage.latency")
	h.Observe(2)
	h.Observe(math.NaN())
	h.Observe(6)
	if n := h.Count(); n != 3 {
		t.Fatalf("count = %d, want 3 (NaN still counts)", n)
	}
	if s := h.Sum(); math.IsNaN(s) || s != 8 {
		t.Fatalf("sum = %g, want 8 (NaN excluded)", s)
	}
	if m := h.Value().Mean(); math.IsNaN(m) {
		t.Fatalf("mean is NaN")
	}
	// Round-trip through both export formats stays finite and parsable.
	snap := r.Snapshot()
	var jsonBuf, promBuf bytes.Buffer
	if err := snap.WriteJSON(&jsonBuf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := snap.WritePrometheus(&promBuf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	back, err := ParsePrometheus(&promBuf)
	if err != nil {
		t.Fatalf("ParsePrometheus after NaN observation: %v", err)
	}
	hv := back.Histograms["stage_latency"] // promName sanitizes the dot
	if hv.Count != 3 || math.IsNaN(hv.Sum) || hv.Sum != 8 {
		t.Fatalf("round-tripped histogram = count %d sum %g, want 3 and 8", hv.Count, hv.Sum)
	}
}

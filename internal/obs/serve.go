package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarOnce guards the process-global expvar name: expvar.Publish
// panics on duplicates, and a CLI may reasonably call Serve after a
// failed first attempt.
var expvarOnce sync.Once

// Serve exposes a registry plus the standard Go diagnostics over HTTP
// on addr (e.g. "localhost:6060"):
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON snapshot
//	/debug/vars    expvar (includes the registry under "decepticon")
//	/debug/pprof/  net/http/pprof profiles
//
// It returns once the listener is bound (so the port is usable when it
// returns) and serves in a background goroutine for the life of the
// process — CLI lifetime, not library lifetime, which is why there is
// deliberately no Shutdown plumbing. The returned address is the bound
// listen address (useful with ":0").
func Serve(addr string, r *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: serve %s: %w", addr, err)
	}
	expvarOnce.Do(func() {
		expvar.Publish("decepticon", expvar.Func(func() any { return r.Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.Snapshot().WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go http.Serve(ln, mux)
	return ln.Addr().String(), nil
}

package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// expvarOnce guards the process-global expvar name: expvar.Publish
// panics on duplicates, and a CLI may reasonably call Serve after a
// failed first attempt. The published func reads through expvarReg so
// /debug/vars always reflects the registry of the *latest* Handler call
// — a Once closure capturing the first registry would pin it forever.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

// Handler returns the ops surface of a registry as an http.Handler:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON snapshot
//	/debug/vars    expvar (includes the registry under "decepticon";
//	               the default memstats var makes live heap visible)
//	/debug/pprof/  net/http/pprof profiles
//
// Serve mounts it on its own listener; servers with an API of their own
// (cmd/decepticond) mount the same routes into their mux, so every
// process exposes one consistent diagnostics surface.
func Handler(r *Registry) http.Handler {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("decepticon", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.Snapshot().WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve exposes Handler's routes over HTTP on addr (e.g.
// "localhost:6060"). It returns once the listener is bound (so the port
// is usable when it returns) and serves in a background goroutine. The
// returned address is the bound listen address (useful with ":0"); the
// returned shutdown function drains in-flight requests and closes the
// listener — http.Server.Shutdown semantics, safe to call more than
// once. Callers that want CLI-lifetime serving simply never call it.
func Serve(addr string, r *Registry) (string, func(context.Context) error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: serve %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(r)}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Shutdown, nil
}

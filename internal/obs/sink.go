package obs

import "sync"

// OrderedSink delivers per-item events from N concurrent workers to a
// single handler in input-index order, composing with the
// internal/parallel pool's determinism contract: workers processing
// items out of order still produce the exact event sequence a serial
// run would. Item i's events are flushed (in the order they were
// emitted) only after every item j < i has called Done, and the handler
// is never invoked concurrently with itself.
//
// Protocol per item: any number of Emit(i, ev) calls, then exactly one
// Done(i). The sink is passive — delivery happens on whichever worker
// goroutine completes the gap, so no background goroutine or channel
// drain is needed and an abandoned sink (e.g. after an error aborts the
// pool) simply stops delivering.
type OrderedSink[T any] struct {
	mu      sync.Mutex
	next    int
	pending []itemBuf[T]
	handle  func(index int, events []T)
}

type itemBuf[T any] struct {
	events []T
	done   bool
}

// NewOrderedSink creates a sink for n items delivering to handle.
// handle receives each item's index and its events; it runs serially
// and in index order. A nil handle makes the sink a no-op.
func NewOrderedSink[T any](n int, handle func(index int, events []T)) *OrderedSink[T] {
	return &OrderedSink[T]{pending: make([]itemBuf[T], n), handle: handle}
}

// Emit records one event for item i. Safe for concurrent use across
// distinct items; events for one item keep their emission order.
func (s *OrderedSink[T]) Emit(i int, ev T) {
	if s == nil || s.handle == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < s.next {
		panic("obs: OrderedSink.Emit after Done flushed the item")
	}
	s.pending[i].events = append(s.pending[i].events, ev)
}

// Done marks item i complete and flushes every consecutive completed
// item starting at the delivery frontier. The flush runs on the calling
// goroutine while holding the sink's lock, so handlers observe a fully
// serialized, index-ordered stream.
func (s *OrderedSink[T]) Done(i int) {
	if s == nil || s.handle == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending[i].done {
		panic("obs: OrderedSink.Done called twice for one item")
	}
	s.pending[i].done = true
	for s.next < len(s.pending) && s.pending[s.next].done {
		s.handle(s.next, s.pending[s.next].events)
		s.pending[s.next] = itemBuf[T]{} // release event memory
		s.next++
	}
}

// Delivered returns how many items have been flushed to the handler.
func (s *OrderedSink[T]) Delivered() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// TimerValue is a timer's exported state: accumulated wall time and the
// number of spans that contributed to it.
type TimerValue struct {
	Seconds float64 `json:"seconds"`
	Count   int64   `json:"count"`
}

// Snapshot is a point-in-time copy of a registry. Counters and gauges
// are deterministic under internal/parallel's seeding discipline
// (byte-identical for any worker count); timers measure wall time and
// are kept in their own section precisely so determinism checks can
// compare the deterministic sections alone.
type Snapshot struct {
	Counters map[string]int64      `json:"counters"`
	Gauges   map[string]float64    `json:"gauges"`
	Timers   map[string]TimerValue `json:"timers"`
}

// Snapshot copies the registry's current values. A nil registry yields
// an empty (but fully allocated) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]float64{},
		Timers:   map[string]TimerValue{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, t := range r.timers {
		s.Timers[name] = TimerValue{Seconds: t.Total().Seconds(), Count: t.Count()}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON (maps marshal with
// sorted keys, so output is reproducible).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ParseJSON reads a snapshot written by WriteJSON.
func ParseJSON(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: parse json snapshot: %w", err)
	}
	if s.Counters == nil {
		s.Counters = map[string]int64{}
	}
	if s.Gauges == nil {
		s.Gauges = map[string]float64{}
	}
	if s.Timers == nil {
		s.Timers = map[string]TimerValue{}
	}
	return s, nil
}

// promPrefix namespaces every exposed series, Prometheus-style.
const promPrefix = "decepticon_"

// promName maps a registry name to a legal Prometheus metric name:
// dots (the registry's namespace separator) and any other illegal rune
// become underscores. The mapping is idempotent, which is what makes
// the text format round-trip (parse keeps the sanitized name).
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (sorted, so output is reproducible). Counters and gauges map
// directly; timers become a summary pair <name>_sum (seconds) and
// <name>_count.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, name := range names(s.Counters) {
		pn := promPrefix + promName(name)
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name])
	}
	for _, name := range names(s.Gauges) {
		pn := promPrefix + promName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(s.Gauges[name]))
	}
	for _, name := range names(s.Timers) {
		t := s.Timers[name]
		pn := promPrefix + promName(name)
		fmt.Fprintf(bw, "# TYPE %s summary\n%s_sum %s\n%s_count %d\n",
			pn, pn, promFloat(t.Seconds), pn, t.Count)
	}
	return bw.Flush()
}

// ParsePrometheus reads a snapshot written by WritePrometheus. Metric
// names come back in their sanitized (underscore) form — promName is
// idempotent, so re-exporting a parsed snapshot reproduces the text
// byte for byte, which is the round-trip property the tests and the
// metrics-smoke checker rely on.
func ParsePrometheus(r io.Reader) (Snapshot, error) {
	s := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]float64{},
		Timers:   map[string]TimerValue{},
	}
	types := map[string]string{}
	timers := map[string]*TimerValue{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) == 4 && f[1] == "TYPE" {
				types[f[2]] = f[3]
			}
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			return Snapshot{}, fmt.Errorf("obs: prometheus line %d: want 'name value', got %q", lineNo, line)
		}
		pn, val := f[0], f[1]
		base := pn
		series := ""
		if types[base] == "" {
			// Summary component: strip the _sum/_count suffix to find the
			// declared base series.
			if strings.HasSuffix(pn, "_sum") {
				base, series = strings.TrimSuffix(pn, "_sum"), "sum"
			} else if strings.HasSuffix(pn, "_count") {
				base, series = strings.TrimSuffix(pn, "_count"), "count"
			}
		}
		typ, ok := types[base]
		if !ok {
			return Snapshot{}, fmt.Errorf("obs: prometheus line %d: series %q has no # TYPE declaration", lineNo, pn)
		}
		name := strings.TrimPrefix(base, promPrefix)
		switch typ {
		case "counter":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Snapshot{}, fmt.Errorf("obs: prometheus line %d: counter %q: %w", lineNo, pn, err)
			}
			s.Counters[name] = n
		case "gauge":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Snapshot{}, fmt.Errorf("obs: prometheus line %d: gauge %q: %w", lineNo, pn, err)
			}
			s.Gauges[name] = v
		case "summary":
			t := timers[name]
			if t == nil {
				t = &TimerValue{}
				timers[name] = t
			}
			switch series {
			case "sum":
				v, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return Snapshot{}, fmt.Errorf("obs: prometheus line %d: summary %q: %w", lineNo, pn, err)
				}
				t.Seconds = v
			case "count":
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return Snapshot{}, fmt.Errorf("obs: prometheus line %d: summary %q: %w", lineNo, pn, err)
				}
				t.Count = n
			default:
				return Snapshot{}, fmt.Errorf("obs: prometheus line %d: unexpected summary series %q", lineNo, pn)
			}
		default:
			return Snapshot{}, fmt.Errorf("obs: prometheus line %d: unsupported type %q", lineNo, typ)
		}
	}
	if err := sc.Err(); err != nil {
		return Snapshot{}, fmt.Errorf("obs: parse prometheus snapshot: %w", err)
	}
	for name, t := range timers {
		s.Timers[name] = *t
	}
	return s, nil
}

// Empty reports whether the snapshot carries no metrics at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Timers) == 0
}

// WriteFile writes the snapshot to path, choosing the format from the
// extension: .json gets JSON, anything else (.prom, .txt, ...) gets the
// Prometheus text format.
func (s Snapshot) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: write snapshot: %w", err)
	}
	if filepath.Ext(path) == ".json" {
		err = s.WriteJSON(f)
	} else {
		err = s.WritePrometheus(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadFile parses a snapshot file written by WriteFile, choosing the
// parser from the extension like WriteFile does.
func ReadFile(path string) (Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return Snapshot{}, fmt.Errorf("obs: read snapshot: %w", err)
	}
	defer f.Close()
	if filepath.Ext(path) == ".json" {
		return ParseJSON(f)
	}
	return ParsePrometheus(f)
}

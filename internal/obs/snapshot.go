package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// TimerValue is a timer's exported state: accumulated wall time and the
// number of spans that contributed to it.
type TimerValue struct {
	Seconds float64 `json:"seconds"`
	Count   int64   `json:"count"`
}

// Mean returns the average span duration in seconds (0 when no spans
// were observed) — mean latency derivable from a snapshot alone.
func (t TimerValue) Mean() float64 {
	if t.Count == 0 {
		return 0
	}
	return t.Seconds / float64(t.Count)
}

// HistogramBucket is one exported histogram bucket: the upper bound in
// Prometheus le syntax ("+Inf" for the overflow bucket; bounds are
// power-of-two) and the count of observations in (previous bound, Le] —
// per-bucket, NOT cumulative, so the bucket counts sum exactly to the
// histogram count (the invariant metricscheck enforces). The Prometheus
// text encoding converts to the cumulative form the exposition format
// requires.
type HistogramBucket struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// HistogramValue is a histogram's exported state.
type HistogramValue struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	// Buckets runs from the first non-empty bound through the last,
	// ending with the explicit "+Inf" overflow bucket.
	Buckets []HistogramBucket `json:"buckets"`
	// Quantiles holds interpolated p50/p90/p99 summaries, derived from
	// the buckets at export time.
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// Mean returns the average observation (0 when empty).
func (h HistogramValue) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-th quantile by linear interpolation inside
// the covering bucket (bounds are powers of two, so a bucket's lower
// bound is Le/2). An observation landing in the +Inf overflow bucket
// reports the largest finite bound — the honest answer a bounded
// layout can give.
func (h HistogramValue) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	lastFinite := 0.0
	for _, b := range h.Buckets {
		upper := math.Inf(1)
		if b.Le != "+Inf" {
			upper, _ = strconv.ParseFloat(b.Le, 64)
		}
		if seen+b.Count >= rank {
			if math.IsInf(upper, 1) {
				return lastFinite
			}
			lower := upper / 2
			frac := float64(rank-seen) / float64(b.Count)
			return lower + (upper-lower)*frac
		}
		seen += b.Count
		if !math.IsInf(upper, 1) {
			lastFinite = upper
		}
	}
	return lastFinite
}

// quantiles materializes the exported summary map.
func (h HistogramValue) quantiles() map[string]float64 {
	if h.Count == 0 {
		return nil
	}
	return map[string]float64{
		"p50": h.Quantile(0.50),
		"p90": h.Quantile(0.90),
		"p99": h.Quantile(0.99),
	}
}

// Snapshot is a point-in-time copy of a registry. Counters and gauges
// are deterministic under internal/parallel's seeding discipline
// (byte-identical for any worker count); timers measure wall time and
// are kept in their own section precisely so determinism checks can
// compare the deterministic sections alone.
type Snapshot struct {
	Counters map[string]int64   `json:"counters"`
	Gauges   map[string]float64 `json:"gauges"`
	// Histograms are deterministic when fed simulated units (hammer
	// rounds, retry counts); by convention, wall-time distributions are
	// named *_seconds and excluded from determinism checks like Timers.
	Histograms map[string]HistogramValue `json:"histograms"`
	Timers     map[string]TimerValue     `json:"timers"`
}

// Snapshot copies the registry's current values. A nil registry yields
// an empty (but fully allocated) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramValue{},
		Timers:     map[string]TimerValue{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Value()
	}
	for name, t := range r.timers {
		s.Timers[name] = TimerValue{Seconds: t.Total().Seconds(), Count: t.Count()}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON (maps marshal with
// sorted keys, so output is reproducible).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ParseJSON reads a snapshot written by WriteJSON.
func ParseJSON(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: parse json snapshot: %w", err)
	}
	if s.Counters == nil {
		s.Counters = map[string]int64{}
	}
	if s.Gauges == nil {
		s.Gauges = map[string]float64{}
	}
	if s.Histograms == nil {
		s.Histograms = map[string]HistogramValue{}
	}
	if s.Timers == nil {
		s.Timers = map[string]TimerValue{}
	}
	return s, nil
}

// promPrefix namespaces every exposed series, Prometheus-style.
const promPrefix = "decepticon_"

// promName maps a registry name to a legal Prometheus metric name:
// dots (the registry's namespace separator) and any other illegal rune
// become underscores. The mapping is idempotent, which is what makes
// the text format round-trip (parse keeps the sanitized name).
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (sorted, so output is reproducible). Counters and gauges map
// directly; timers become a summary pair <name>_sum (seconds) and
// <name>_count.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, name := range names(s.Counters) {
		pn := promPrefix + promName(name)
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name])
	}
	for _, name := range names(s.Gauges) {
		pn := promPrefix + promName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(s.Gauges[name]))
	}
	for _, name := range names(s.Histograms) {
		h := s.Histograms[name]
		pn := promPrefix + promName(name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", pn)
		// The exposition format wants cumulative bucket counts; the
		// snapshot stores per-bucket counts, so accumulate on the way out.
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", pn, b.Le, cum)
		}
		fmt.Fprintf(bw, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum), pn, h.Count)
	}
	for _, name := range names(s.Timers) {
		t := s.Timers[name]
		pn := promPrefix + promName(name)
		fmt.Fprintf(bw, "# TYPE %s summary\n%s_sum %s\n%s_count %d\n",
			pn, pn, promFloat(t.Seconds), pn, t.Count)
	}
	return bw.Flush()
}

// ParsePrometheus reads a snapshot written by WritePrometheus. Metric
// names come back in their sanitized (underscore) form — promName is
// idempotent, so re-exporting a parsed snapshot reproduces the text
// byte for byte, which is the round-trip property the tests and the
// metrics-smoke checker rely on.
func ParsePrometheus(r io.Reader) (Snapshot, error) {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramValue{},
		Timers:     map[string]TimerValue{},
	}
	types := map[string]string{}
	timers := map[string]*TimerValue{}
	hists := map[string]*HistogramValue{}
	cums := map[string]int64{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) == 4 && f[1] == "TYPE" {
				types[f[2]] = f[3]
			}
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			return Snapshot{}, fmt.Errorf("obs: prometheus line %d: want 'name value', got %q", lineNo, line)
		}
		pn, val := f[0], f[1]
		labels := ""
		if i := strings.IndexByte(pn, '{'); i >= 0 {
			pn, labels = pn[:i], pn[i:]
		}
		base := pn
		series := ""
		if types[base] == "" {
			// Summary/histogram component: strip the component suffix to
			// find the declared base series.
			if strings.HasSuffix(pn, "_bucket") {
				base, series = strings.TrimSuffix(pn, "_bucket"), "bucket"
			} else if strings.HasSuffix(pn, "_sum") {
				base, series = strings.TrimSuffix(pn, "_sum"), "sum"
			} else if strings.HasSuffix(pn, "_count") {
				base, series = strings.TrimSuffix(pn, "_count"), "count"
			}
		}
		typ, ok := types[base]
		if !ok {
			return Snapshot{}, fmt.Errorf("obs: prometheus line %d: series %q has no # TYPE declaration", lineNo, pn)
		}
		name := strings.TrimPrefix(base, promPrefix)
		if labels != "" && !(typ == "histogram" && series == "bucket") {
			return Snapshot{}, fmt.Errorf("obs: prometheus line %d: unexpected labels on %q", lineNo, pn)
		}
		switch typ {
		case "counter":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Snapshot{}, fmt.Errorf("obs: prometheus line %d: counter %q: %w", lineNo, pn, err)
			}
			s.Counters[name] = n
		case "gauge":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Snapshot{}, fmt.Errorf("obs: prometheus line %d: gauge %q: %w", lineNo, pn, err)
			}
			s.Gauges[name] = v
		case "histogram":
			h := hists[name]
			if h == nil {
				h = &HistogramValue{}
				hists[name] = h
			}
			switch series {
			case "bucket":
				le := strings.TrimSuffix(strings.TrimPrefix(labels, `{le="`), `"}`)
				if le == labels || !strings.HasPrefix(labels, `{le="`) || !strings.HasSuffix(labels, `"}`) {
					return Snapshot{}, fmt.Errorf("obs: prometheus line %d: malformed bucket labels %q", lineNo, labels)
				}
				cum, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return Snapshot{}, fmt.Errorf("obs: prometheus line %d: bucket %q: %w", lineNo, pn, err)
				}
				// Undo the cumulative encoding: buckets arrive in ascending
				// le order, so each per-bucket count is the delta.
				h.Buckets = append(h.Buckets, HistogramBucket{Le: le, Count: cum - cums[name]})
				cums[name] = cum
			case "sum":
				v, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return Snapshot{}, fmt.Errorf("obs: prometheus line %d: histogram %q: %w", lineNo, pn, err)
				}
				h.Sum = v
			case "count":
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return Snapshot{}, fmt.Errorf("obs: prometheus line %d: histogram %q: %w", lineNo, pn, err)
				}
				h.Count = n
			default:
				return Snapshot{}, fmt.Errorf("obs: prometheus line %d: unexpected histogram series %q", lineNo, pn)
			}
		case "summary":
			t := timers[name]
			if t == nil {
				t = &TimerValue{}
				timers[name] = t
			}
			switch series {
			case "sum":
				v, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return Snapshot{}, fmt.Errorf("obs: prometheus line %d: summary %q: %w", lineNo, pn, err)
				}
				t.Seconds = v
			case "count":
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return Snapshot{}, fmt.Errorf("obs: prometheus line %d: summary %q: %w", lineNo, pn, err)
				}
				t.Count = n
			default:
				return Snapshot{}, fmt.Errorf("obs: prometheus line %d: unexpected summary series %q", lineNo, pn)
			}
		default:
			return Snapshot{}, fmt.Errorf("obs: prometheus line %d: unsupported type %q", lineNo, typ)
		}
	}
	if err := sc.Err(); err != nil {
		return Snapshot{}, fmt.Errorf("obs: parse prometheus snapshot: %w", err)
	}
	for name, t := range timers {
		s.Timers[name] = *t
	}
	for name, h := range hists {
		// Quantiles are a derived summary, never serialized in the text
		// format — recompute them so a parsed snapshot matches Snapshot().
		h.Quantiles = h.quantiles()
		s.Histograms[name] = *h
	}
	return s, nil
}

// Empty reports whether the snapshot carries no metrics at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 &&
		len(s.Histograms) == 0 && len(s.Timers) == 0
}

// WriteFile writes the snapshot to path, choosing the format from the
// extension: .json gets JSON, anything else (.prom, .txt, ...) gets the
// Prometheus text format.
func (s Snapshot) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: write snapshot: %w", err)
	}
	if filepath.Ext(path) == ".json" {
		err = s.WriteJSON(f)
	} else {
		err = s.WritePrometheus(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadFile parses a snapshot file written by WriteFile, choosing the
// parser from the extension like WriteFile does.
func ReadFile(path string) (Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return Snapshot{}, fmt.Errorf("obs: read snapshot: %w", err)
	}
	defer f.Close()
	if filepath.Ext(path) == ".json" {
		return ParseJSON(f)
	}
	return ParsePrometheus(f)
}

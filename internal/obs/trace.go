package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
)

// Track process ids. Trace events group under a (pid, tid) pair in the
// Chrome trace_event model; the pipeline maps its stages onto three
// synthetic "processes" so a campaign renders as parallel swimlanes.
const (
	// PidPipeline is the serial orchestration lane (zoo build,
	// classifier training, campaign bracketing) — always tid 0.
	PidPipeline = 1
	// PidZoo holds one lane per model trained during zoo construction.
	PidZoo = 2
	// PidCampaign holds one lane per attacked victim.
	PidCampaign = 3
)

// TraceEvent is one Chrome/Perfetto trace_event JSON object. Only the
// phases the tracer emits are modeled: "X" (complete span), "i"
// (instant), and "M" (metadata: process/thread names).
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Attr is one span/instant attribute. Use the A constructor from other
// packages (an unkeyed composite literal trips go vet).
type Attr struct {
	Key   string
	Value any
}

// A builds an attribute.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Tracer collects deterministic trace events across tracks. Timestamps
// are NOT wall time: every track carries its own logical clock in
// virtual microseconds, advanced by one tick per structural event plus
// whatever simulated units the instrumented code reports via
// Track.Advance (oracle rounds, gpusim kernel time, training work
// units). Because each track's content derives only from its own item's
// deterministic work, the exported trace is byte-identical for any
// worker count — the OrderedSink discipline applied to trace data.
//
// A nil *Tracer is a valid no-op: Track returns a nil *Track whose
// methods all no-op, so instrumentation costs one nil check when
// tracing is off.
type Tracer struct {
	mu     sync.Mutex
	tracks map[trackKey]*Track
	flight *FlightRecorder
}

type trackKey struct{ pid, tid int64 }

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{tracks: make(map[trackKey]*Track)} }

// SetFlight mirrors every completed span and instant into a flight
// recorder (see FlightRecorder). Nil detaches.
func (t *Tracer) SetFlight(f *FlightRecorder) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.flight = f
	for _, tk := range t.tracks {
		tk.setFlight(f)
	}
	t.mu.Unlock()
}

// Track returns the track for (pid, tid), creating it with the given
// display name on first use (later names are ignored). Returns nil (a
// valid no-op track) on a nil tracer. Tracks are single-owner by
// convention — one goroutine records into one track — but are
// internally locked, so misuse degrades to contention, not corruption.
func (t *Tracer) Track(pid, tid int64, name string) *Track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	k := trackKey{pid, tid}
	tk, ok := t.tracks[k]
	if !ok {
		tk = &Track{pid: pid, tid: tid, name: name, flight: t.flight}
		t.tracks[k] = tk
	}
	return tk
}

// processName maps the pipeline's synthetic pids to display names.
func processName(pid int64) string {
	switch pid {
	case PidPipeline:
		return "pipeline"
	case PidZoo:
		return "zoo build"
	case PidCampaign:
		return "campaign"
	}
	return fmt.Sprintf("process %d", pid)
}

// traceFile is the Chrome trace_event JSON object form.
type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []TraceEvent `json:"traceEvents"`
}

// Events returns every completed event: process/thread metadata first,
// then each track's events in recording order, tracks sorted by
// (pid, tid) — a fully deterministic flattening.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	tracks := make([]*Track, 0, len(t.tracks))
	for _, tk := range t.tracks {
		tracks = append(tracks, tk)
	}
	t.mu.Unlock()
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].pid != tracks[j].pid {
			return tracks[i].pid < tracks[j].pid
		}
		return tracks[i].tid < tracks[j].tid
	})
	var out []TraceEvent
	seenPid := map[int64]bool{}
	for _, tk := range tracks {
		if !seenPid[tk.pid] {
			seenPid[tk.pid] = true
			out = append(out, TraceEvent{
				Name: "process_name", Ph: "M", Pid: tk.pid,
				Args: map[string]any{"name": processName(tk.pid)},
			})
		}
		out = append(out, TraceEvent{
			Name: "thread_name", Ph: "M", Pid: tk.pid, Tid: tk.tid,
			Args: map[string]any{"name": tk.name},
		})
	}
	for _, tk := range tracks {
		out = append(out, tk.events()...)
	}
	return out
}

// WriteJSON writes the trace in Chrome trace_event JSON (the "JSON
// object format"), loadable by Perfetto (ui.perfetto.dev) and
// chrome://tracing. Output is byte-deterministic: map keys marshal
// sorted, track order is (pid, tid), and no wall-clock value is ever
// recorded.
func (t *Tracer) WriteJSON(w io.Writer) error {
	f := traceFile{DisplayTimeUnit: "ms", TraceEvents: t.Events()}
	if f.TraceEvents == nil {
		f.TraceEvents = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// ReadTraceFile parses a trace file written by WriteFile back into its
// event list — the validation side of the format (cmd/metricscheck).
func ReadTraceFile(path string) ([]TraceEvent, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: read trace: %w", err)
	}
	var f traceFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("obs: parse trace %s: %w", path, err)
	}
	return f.TraceEvents, nil
}

// WriteFile writes the trace JSON to path.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: write trace: %w", err)
	}
	err = t.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Track is one timeline lane with its own logical clock (virtual
// microseconds). Begin/Instant/End advance the clock by one tick each;
// Advance adds simulated units in between, which is how spans acquire
// meaningful durations without touching wall time. All methods are
// nil-safe.
type Track struct {
	mu     sync.Mutex
	pid    int64
	tid    int64
	name   string
	clock  int64
	nextID int64
	stack  []*TraceSpan
	evs    []TraceEvent
	flight *FlightRecorder
}

func (tk *Track) setFlight(f *FlightRecorder) {
	if tk == nil {
		return
	}
	tk.mu.Lock()
	tk.flight = f
	tk.mu.Unlock()
}

// events returns a copy of the completed events.
func (tk *Track) events() []TraceEvent {
	if tk == nil {
		return nil
	}
	tk.mu.Lock()
	defer tk.mu.Unlock()
	return append([]TraceEvent(nil), tk.evs...)
}

// Clock returns the track's current logical time.
func (tk *Track) Clock() int64 {
	if tk == nil {
		return 0
	}
	tk.mu.Lock()
	defer tk.mu.Unlock()
	return tk.clock
}

// Advance moves the track's logical clock forward n units (n <= 0
// no-ops). Call it with simulated quantities — oracle rounds, gpusim
// microseconds, training work units — so enclosing spans carry
// deterministic durations.
func (tk *Track) Advance(n int64) {
	if tk == nil || n <= 0 {
		return
	}
	tk.mu.Lock()
	tk.clock += n
	tk.mu.Unlock()
}

// Begin opens a hierarchical span: its parent is the innermost span
// still open on this track. Close with End (LIFO; defer works). On a
// nil track Begin returns nil, whose End no-ops.
func (tk *Track) Begin(name string, attrs ...Attr) *TraceSpan {
	if tk == nil {
		return nil
	}
	tk.mu.Lock()
	defer tk.mu.Unlock()
	tk.nextID++
	sp := &TraceSpan{tk: tk, name: name, ts: tk.clock, id: tk.nextID}
	if n := len(tk.stack); n > 0 {
		sp.parent = tk.stack[n-1].id
	}
	sp.args = attrArgs(attrs)
	tk.stack = append(tk.stack, sp)
	tk.clock++
	return sp
}

// Instant records a zero-duration marker (thread-scoped).
func (tk *Track) Instant(name string, attrs ...Attr) {
	if tk == nil {
		return
	}
	tk.mu.Lock()
	ev := TraceEvent{
		Name: name, Ph: "i", TS: tk.clock, Pid: tk.pid, Tid: tk.tid,
		S: "t", Args: attrArgs(attrs),
	}
	tk.clock++
	tk.evs = append(tk.evs, ev)
	f := tk.flight
	tk.mu.Unlock()
	f.Note("instant", name, map[string]string{
		"pid": strconv.FormatInt(tk.pid, 10), "tid": strconv.FormatInt(tk.tid, 10),
	})
}

func attrArgs(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// TraceSpan is one open span on a track.
type TraceSpan struct {
	tk     *Track
	name   string
	ts     int64
	id     int64
	parent int64
	args   map[string]any
	done   bool
}

// End closes the span and emits its "X" event. Idempotent and nil-safe
// (`defer sp.End()` needs no branch). Spans must close innermost-first;
// ending an outer span force-closes any children still open above it.
func (sp *TraceSpan) End() {
	if sp == nil || sp.done {
		return
	}
	tk := sp.tk
	tk.mu.Lock()
	// Pop everything above this span (stragglers end where their parent
	// ends), then the span itself.
	var dur int64
	for i := len(tk.stack) - 1; i >= 0; i-- {
		top := tk.stack[i]
		tk.stack = tk.stack[:i]
		if !top.done {
			top.done = true
			d := top.emitLocked()
			if top == sp {
				dur = d
			}
		}
		if top == sp {
			break
		}
	}
	f := tk.flight
	name := sp.name
	tk.mu.Unlock()
	f.Note("span", name, map[string]string{
		"pid": strconv.FormatInt(tk.pid, 10), "tid": strconv.FormatInt(tk.tid, 10),
		"dur": strconv.FormatInt(dur, 10),
	})
}

// emitLocked appends the completed "X" event and returns its duration;
// tk.mu must be held.
func (sp *TraceSpan) emitLocked() int64 {
	tk := sp.tk
	end := tk.clock
	tk.clock++
	args := map[string]any{"id": sp.id}
	if sp.parent != 0 {
		args["parent"] = sp.parent
	}
	for k, v := range sp.args {
		args[k] = v
	}
	tk.evs = append(tk.evs, TraceEvent{
		Name: sp.name, Ph: "X", TS: sp.ts, Dur: end - sp.ts,
		Pid: tk.pid, Tid: tk.tid, Args: args,
	})
	return end - sp.ts
}

package obs

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"decepticon/internal/parallel"
)

func TestHistogramObserveCountSumQuantile(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	if got := h.Count(); got != 1000 {
		t.Fatalf("Count = %d, want 1000", got)
	}
	if got := h.Sum(); got != 500500 {
		t.Fatalf("Sum = %v, want 500500", got)
	}
	// Log buckets give coarse quantiles; the estimate must land within
	// the covering power-of-two bucket of the true value.
	for _, tc := range []struct{ q, lo, hi float64 }{
		{0.50, 256, 512},
		{0.90, 512, 1024},
		{0.99, 512, 1024},
	} {
		got := h.Quantile(tc.q)
		if got < tc.lo || got > tc.hi {
			t.Fatalf("Quantile(%v) = %v, want within [%v, %v]", tc.q, got, tc.lo, tc.hi)
		}
	}
	hv := h.Value()
	var sum int64
	for _, b := range hv.Buckets {
		sum += b.Count
	}
	if sum != hv.Count {
		t.Fatalf("bucket counts sum to %d, histogram count %d", sum, hv.Count)
	}
	if last := hv.Buckets[len(hv.Buckets)-1]; last.Le != "+Inf" {
		t.Fatalf("last bucket le = %q, want +Inf", last.Le)
	}
	if got, want := hv.Mean(), 500.5; got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	h := &Histogram{}
	h.Observe(0)           // non-positive -> first bucket
	h.Observe(-3)          // ditto
	h.Observe(math.NaN())  // ditto (must not panic or vanish)
	h.Observe(1e300)       // overflow bucket
	h.Observe(math.Inf(1)) // overflow bucket
	h.Observe(0.5)         // exact power of two fits its own bound
	if got := h.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	hv := h.Value()
	if got := hv.Buckets[len(hv.Buckets)-1].Count; got != 2 {
		t.Fatalf("overflow bucket = %d, want 2", got)
	}
	// Exactly 0.5 must land in the le=0.5 bucket, not le=1.
	if i := bucketIndex(0.5); bucketBound(i) != 0.5 {
		t.Fatalf("bucketIndex(0.5) bound = %v, want 0.5", bucketBound(i))
	}
	// Quantile fully inside the overflow bucket reports the largest
	// finite observed bound rather than inventing a value.
	if q := hv.Quantile(1.0); math.IsInf(q, 1) {
		t.Fatal("Quantile(1.0) returned +Inf")
	}
}

func TestHistogramDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) HistogramValue {
		r := New()
		parallel.ForEach(500, workers, func(i int) {
			r.Histogram("h.rounds").Observe(float64((i%13)*331 + 1))
		})
		return r.Snapshot().Histograms["h.rounds"]
	}
	base := run(workerCounts[0])
	for _, w := range workerCounts[1:] {
		got := run(w)
		a, _ := base.marshalForTest()
		b, _ := got.marshalForTest()
		if !bytes.Equal(a, b) {
			t.Fatalf("workers=%d histogram diverged:\n  %s\n  %s", w, a, b)
		}
	}
}

func TestTimerMeanDerivable(t *testing.T) {
	r := New()
	tm := r.Timer("phase_seconds")
	tm.Observe(2 * time.Second)
	tm.Observe(4 * time.Second)
	if got := tm.Mean(); got != 3*time.Second {
		t.Fatalf("Timer.Mean = %v, want 3s", got)
	}
	// Mean latency must be derivable from every exported form.
	s := r.Snapshot()
	if got := s.Timers["phase_seconds"].Mean(); got != 3.0 {
		t.Fatalf("snapshot TimerValue.Mean = %v, want 3", got)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	js, err := ParseJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := js.Timers["phase_seconds"].Mean(); got != 3.0 {
		t.Fatalf("json TimerValue.Mean = %v, want 3", got)
	}
	buf.Reset()
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	prom, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := prom.Timers["phase_seconds"].Mean(); got != 3.0 {
		t.Fatalf("prometheus TimerValue.Mean = %v, want 3", got)
	}
}

// marshalForTest gives a canonical byte form for comparison.
func (h HistogramValue) marshalForTest() ([]byte, error) {
	var buf bytes.Buffer
	err := Snapshot{Histograms: map[string]HistogramValue{"h": h}}.WriteJSON(&buf)
	return buf.Bytes(), err
}

func TestTracerSpanNesting(t *testing.T) {
	tr := NewTracer()
	tk := tr.Track(PidCampaign, 1, "victim-0")
	outer := tk.Begin("attack", A("victim", "v0"))
	tk.Advance(100)
	inner := tk.Begin("extract")
	tk.Advance(50)
	tk.Instant("fault", A("kind", "transient"))
	inner.End()
	outer.End()

	evs := tk.events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3 (instant + 2 spans)", len(evs))
	}
	// Spans emit at End, so completion order is inner first.
	in, out := evs[1], evs[2]
	if in.Name != "extract" || out.Name != "attack" {
		t.Fatalf("span order = %s, %s; want extract, attack", in.Name, out.Name)
	}
	if in.Args["parent"] != out.Args["id"] {
		t.Fatalf("inner parent = %v, outer id = %v; want equal", in.Args["parent"], out.Args["id"])
	}
	// Parent interval must contain the child's.
	if in.TS < out.TS || in.TS+in.Dur > out.TS+out.Dur {
		t.Fatalf("child [%d,%d] escapes parent [%d,%d]", in.TS, in.TS+in.Dur, out.TS, out.TS+out.Dur)
	}
	if in.Dur < 50 || out.Dur < 150 {
		t.Fatalf("durations %d/%d did not absorb Advance units", in.Dur, out.Dur)
	}
	if out.Args["victim"] != "v0" {
		t.Fatalf("span attrs lost: %v", out.Args)
	}
}

func TestTracerEndForceClosesChildren(t *testing.T) {
	tr := NewTracer()
	tk := tr.Track(PidPipeline, 0, "pipeline")
	outer := tk.Begin("outer")
	child := tk.Begin("child") // never explicitly ended
	outer.End()
	child.End() // must be a no-op, not a double emit
	evs := tk.events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
}

func TestTracerWriteDeterministicAcrossCompletionOrder(t *testing.T) {
	// Two tracers record the same per-track content; tracks are created
	// and finished in scrambled order. Export must be byte-identical —
	// the property that makes trace files worker-count invariant.
	record := func(tk *Track, n int) {
		sp := tk.Begin("work", A("n", n))
		tk.Advance(int64(10 * (n + 1)))
		tk.Instant("mark")
		sp.End()
	}
	a := NewTracer()
	for n := 0; n < 4; n++ {
		record(a.Track(PidCampaign, int64(n+1), fmt.Sprintf("victim-%d", n)), n)
	}
	b := NewTracer()
	for _, n := range []int{2, 0, 3, 1} {
		record(b.Track(PidCampaign, int64(n+1), fmt.Sprintf("victim-%d", n)), n)
	}
	var ba, bb bytes.Buffer
	if err := a.WriteJSON(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatalf("trace export depends on completion order:\n--- a\n%s--- b\n%s", ba.String(), bb.String())
	}
	if !strings.Contains(ba.String(), `"displayTimeUnit"`) || !strings.Contains(ba.String(), `"traceEvents"`) {
		t.Fatal("trace JSON missing Chrome trace_event object framing")
	}
}

func TestFlightRecorderRingAndDump(t *testing.T) {
	f := NewFlightRecorder(4)
	f.RunID = "cafef00d"
	for i := 0; i < 7; i++ {
		f.Note("note", fmt.Sprintf("ev%d", i), map[string]string{"i": fmt.Sprint(i)})
	}
	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := fmt.Sprintf("ev%d", i+3); ev.Name != want {
			t.Fatalf("event %d = %s, want %s (oldest-first)", i, ev.Name, want)
		}
		if i > 0 && ev.Seq <= evs[i-1].Seq {
			t.Fatalf("seq not strictly increasing: %d then %d", evs[i-1].Seq, ev.Seq)
		}
	}
	path := t.TempDir() + "/dump.json"
	if err := f.Dump(path, "test reason"); err != nil {
		t.Fatal(err)
	}
	d, err := ReadFlightFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.RunID != "cafef00d" || d.Reason != "test reason" || d.Dropped != 3 || len(d.Events) != 4 {
		t.Fatalf("dump round trip = %+v", d)
	}
}

func TestTracerMirrorsIntoFlight(t *testing.T) {
	tr := NewTracer()
	f := NewFlightRecorder(16)
	tr.SetFlight(f)
	tk := tr.Track(PidCampaign, 1, "victim-0")
	sp := tk.Begin("extract")
	tk.Advance(5)
	tk.Instant("fault")
	sp.End()
	evs := f.Events()
	if len(evs) != 2 {
		t.Fatalf("flight recorded %d events, want 2", len(evs))
	}
	if evs[0].Kind != "instant" || evs[1].Kind != "span" || evs[1].Name != "extract" {
		t.Fatalf("flight events = %+v", evs)
	}
	// The span note carries the deterministic duration (begin tick + 5
	// advance + instant tick).
	if evs[1].Attrs["dur"] != "7" {
		t.Fatalf("span dur attr = %q, want 7", evs[1].Attrs["dur"])
	}
}

// TestRegistryWiresTracerIntoFlight: attaching a tracer and a flight
// recorder to the same registry connects the span mirror, regardless of
// which is attached first.
func TestRegistryWiresTracerIntoFlight(t *testing.T) {
	for _, flightFirst := range []bool{true, false} {
		r := New()
		tr := NewTracer()
		f := NewFlightRecorder(8)
		if flightFirst {
			r.SetFlight(f)
			r.SetTracer(tr)
		} else {
			r.SetTracer(tr)
			r.SetFlight(f)
		}
		sp := r.Tracer().Track(PidPipeline, 0, "pipeline").Begin("work")
		sp.End()
		if f.Len() == 0 {
			t.Fatalf("flightFirst=%v: span did not mirror into the flight recorder", flightFirst)
		}
	}
}

func TestNilTraceFlightLogNoOp(t *testing.T) {
	var tr *Tracer
	tk := tr.Track(PidPipeline, 0, "x")
	sp := tk.Begin("a")
	tk.Advance(3)
	tk.Instant("b")
	sp.End()
	if evs := tr.Events(); evs != nil {
		t.Fatalf("nil tracer produced events: %v", evs)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents": []`) {
		t.Fatalf("nil tracer JSON = %s", buf.String())
	}
	var f *FlightRecorder
	f.Note("k", "n", nil)
	if f.Len() != 0 || f.Events() != nil {
		t.Fatal("nil flight recorder retained events")
	}
	if err := f.Dump(t.TempDir()+"/never.json", "r"); err != nil {
		t.Fatal(err)
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram not a no-op")
	}
	var r *Registry
	if r.Histogram("x") != nil || r.Tracer() != nil || r.Flight() != nil {
		t.Fatal("nil registry handed out live instruments")
	}
	if r.Log() == nil {
		t.Fatal("nil registry Log() returned nil")
	}
	r.Log().Info("into the void") // must not panic
	r.SetTracer(nil)
	r.SetFlight(nil)
	r.SetLogger(nil)
}

func TestRunIDStableAndLogLevels(t *testing.T) {
	if RunID("a", "b") != RunID("a", "b") {
		t.Fatal("RunID not stable")
	}
	if RunID("a", "b") == RunID("ab") {
		t.Fatal("RunID ignores label boundaries")
	}
	if _, enabled, err := ParseLogLevel("off"); err != nil || enabled {
		t.Fatalf("off: enabled=%v err=%v", enabled, err)
	}
	if lvl, enabled, err := ParseLogLevel("debug"); err != nil || !enabled || lvl >= 0 {
		t.Fatalf("debug: lvl=%v enabled=%v err=%v", lvl, enabled, err)
	}
	if _, _, err := ParseLogLevel("loud"); err == nil {
		t.Fatal("ParseLogLevel accepted garbage")
	}
	var buf bytes.Buffer
	l := NewLogger(&buf, 0, "deadbeef")
	l.Info("hello", "k", "v")
	out := buf.String()
	if !strings.Contains(out, "run=deadbeef") || !strings.Contains(out, "k=v") {
		t.Fatalf("log line missing run id or attr: %q", out)
	}
}

// Package parallel provides the repository's bounded, deterministic
// worker pool. Every heavy loop in the system (zoo construction, trace
// dataset measurement, attack campaigns) iterates over items that derive
// their randomness from an explicit per-item seed, so the items are
// independent and can run on any number of workers without changing the
// result. The helpers here preserve that invariant mechanically:
//
//   - results land at the index of their input item, never in completion
//     order, so Map/MapErr output is byte-for-byte identical to a serial
//     run;
//   - MapErr reports the error of the lowest-indexed failing item — the
//     same error a serial loop would have stopped at;
//   - a panic inside a worker is re-raised on the calling goroutine
//     instead of crashing the process from an anonymous goroutine.
//
// Worker counts are knobs, not semantics: workers <= 0 means
// runtime.GOMAXPROCS(0), workers == 1 runs the loop inline with zero
// goroutine overhead, and any larger count bounds concurrency at that
// many goroutines.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0); anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 selects GOMAXPROCS). fn must treat its items as
// independent: no iteration may observe another's side effects. With one
// worker the loop runs inline on the calling goroutine. A panic in any
// fn is re-raised on the caller after the remaining workers drain.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Bool
		panicVal any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					// Keep the first panic; later ones (if any) are dropped.
					if panicked.CompareAndSwap(false, true) {
						panicVal = p
					}
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || panicked.Load() {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns the results in input order — out[i] is fn(i) regardless of
// which worker computed it or when it finished.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// MapErr runs fn(i) for every i in [0, n) on at most workers goroutines.
// On success it returns the results in input order. If any fn fails it
// returns the error of the lowest-indexed failing item — exactly the
// error a serial loop stopping at its first failure would have returned —
// with a nil result slice. Unlike that serial loop, later items may
// already have run when an earlier one fails; fns must therefore not
// carry side effects that need rolling back.
func MapErr[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(n, workers, func(i int) {
		out[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MapErrCtx is MapErr with cooperative cancellation: each item checks
// ctx before starting and reports ctx.Err() instead of running, so a
// cancelled pool drains quickly (items already running complete — fn
// receives ctx and may cut itself short). The error returned is still
// the lowest-indexed one, which after a cancellation is the context's
// error of the first item that never ran. A nil ctx runs uncancelled.
func MapErrCtx[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return MapErr(n, workers, func(i int) (T, error) {
		if err := ctx.Err(); err != nil {
			var zero T
			return zero, err
		}
		return fn(ctx, i)
	})
}

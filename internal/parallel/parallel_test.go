package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		n := 57
		counts := make([]atomic.Int32, n)
		ForEach(n, workers, func(i int) {
			counts[i].Add(1)
		})
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmptyAndNegative(t *testing.T) {
	ran := false
	ForEach(0, 4, func(int) { ran = true })
	ForEach(-2, 4, func(int) { ran = true })
	if ran {
		t.Fatal("fn must not run for n <= 0")
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	var mu sync.Mutex
	ForEach(64, workers, func(int) {
		c := cur.Add(1)
		mu.Lock()
		if c > peak.Load() {
			peak.Store(c)
		}
		mu.Unlock()
		cur.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent iterations, cap is %d", p, workers)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		got := Map(40, workers, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapMatchesSerial(t *testing.T) {
	fn := func(i int) string { return fmt.Sprintf("item-%03d", i*7%13) }
	serial := Map(50, 1, fn)
	for _, workers := range []int{2, 4, 16} {
		par := Map(50, workers, fn)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", workers, i, par[i], serial[i])
			}
		}
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, workers := range []int{1, 2, 8} {
		_, err := MapErr(30, workers, func(i int) (int, error) {
			switch i {
			case 7:
				return 0, errLow
			case 21:
				return 0, errHigh
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: got error %v, want the lowest-indexed one", workers, err)
		}
	}
}

func TestMapErrSuccess(t *testing.T) {
	out, err := MapErr(10, 4, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("workers=%d: panic not propagated", workers)
				}
			}()
			ForEach(16, workers, func(i int) {
				if i == 5 {
					panic("boom")
				}
			})
		}()
	}
}

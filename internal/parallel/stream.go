package parallel

import (
	"context"
	"sync"
)

// Stream runs fn(ctx, i) for i in [0, n) on a bounded worker pool and
// delivers the results one at a time, strictly in input order, through
// Next. Unlike Map it never materializes the whole result slice: at most
// window results (plus in-flight work) are buffered at any moment, so a
// million-item campaign consumes bounded memory while keeping every
// worker busy.
//
// The ordering discipline mirrors the rest of the package: workers claim
// indices sequentially, a claim is only handed out while it is less than
// delivered+window, and Next hands out result i only after results
// 0..i-1 — so the delivered sequence is byte-identical to a serial loop
// for any worker count.
//
// Failure follows MapErr's serial-loop contract, adapted to streaming:
// when fn(i) returns an error, no later index is claimed, results before
// i are still delivered, Next then reports exhaustion, and Err returns
// i's error — the first error a serial loop would have hit. (Indices
// within the claim window may already have run; as with MapErr, fns must
// not carry side effects that need rolling back.)
//
// Cancelling ctx stops new claims the same way: in-flight items finish
// (fn observes the cancelled ctx itself and is expected to wind down),
// their prefix is delivered, and Err reports the context's error.
type Stream[T any] struct {
	ctx    context.Context
	fn     func(ctx context.Context, i int) (T, error)
	n      int
	window int

	mu        sync.Mutex
	cond      *sync.Cond
	claim     int // next index to hand to a worker; claims are a prefix
	delivered int // next index Next will hand out
	results   map[int]T
	done      map[int]bool
	stopped   bool // no further claims (error, cancellation, or exhaustion)
	failIdx   int  // lowest failed index (n = none)
	failErr   error
	inflight  int
	panicVal  any
	panicked  bool
}

// StreamErr starts the workers and returns the stream. window <= 0
// defaults to 2×workers — enough look-ahead to keep every worker busy
// while the consumer drains in order.
func StreamErr[T any](ctx context.Context, n, workers, window int, fn func(ctx context.Context, i int) (T, error)) *Stream[T] {
	if ctx == nil {
		ctx = context.Background()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	if window <= 0 {
		window = 2 * workers
	}
	if window < workers {
		window = workers
	}
	s := &Stream[T]{
		ctx:     ctx,
		fn:      fn,
		n:       n,
		window:  window,
		results: make(map[int]T, window),
		done:    make(map[int]bool, window),
		failIdx: n,
	}
	s.cond = sync.NewCond(&s.mu)
	if d := ctx.Done(); d != nil {
		// Wake claim-waiting workers when the context dies; without this
		// a cancellation arriving while every worker waits on the window
		// condition would go unnoticed until the next delivery.
		go func() {
			<-d
			s.mu.Lock()
			s.stopped = true
			s.cond.Broadcast()
			s.mu.Unlock()
		}()
	}
	for w := 0; w < workers; w++ {
		go s.worker()
	}
	return s
}

func (s *Stream[T]) worker() {
	defer func() {
		// A panic can only escape fn, i.e. between the inflight increment
		// and its normal decrement — rebalance it here.
		if p := recover(); p != nil {
			s.mu.Lock()
			if !s.panicked {
				s.panicked = true
				s.panicVal = p
			}
			s.stopped = true
			s.inflight--
			s.cond.Broadcast()
			s.mu.Unlock()
		}
	}()
	for {
		s.mu.Lock()
		for !s.stopped && s.claim < s.n && s.claim >= s.delivered+s.window {
			s.cond.Wait()
		}
		if s.stopped || s.claim >= s.n || s.ctx.Err() != nil {
			s.mu.Unlock()
			return
		}
		i := s.claim
		s.claim++
		s.inflight++
		s.mu.Unlock()

		v, err := s.fn(s.ctx, i)

		s.mu.Lock()
		s.inflight--
		if err != nil {
			if i < s.failIdx {
				s.failIdx = i
				s.failErr = err
			}
			s.stopped = true
		} else {
			s.results[i] = v
			s.done[i] = true
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// Next blocks until the next in-order result is available and returns
// it. It returns ok=false once the stream is exhausted — every index
// delivered, or delivery stopped at the first failed index / at the
// cancellation frontier. After ok=false, Err reports why (nil for a
// clean run). A panic inside fn is re-raised here, on the consumer.
func (s *Stream[T]) Next() (v T, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.panicked {
			// The deferred unlock releases the mutex during unwinding.
			panic(s.panicVal)
		}
		limit := s.n
		if s.failIdx < limit {
			limit = s.failIdx
		}
		if s.delivered < limit && s.done[s.delivered] {
			v = s.results[s.delivered]
			delete(s.results, s.delivered)
			delete(s.done, s.delivered)
			s.delivered++
			s.cond.Broadcast() // the window just slid forward
			return v, true
		}
		if s.delivered >= limit {
			return v, false
		}
		// The next index is neither done nor ever coming: claims stopped
		// before reaching it and nothing is in flight.
		if s.stopped && s.claim <= s.delivered {
			return v, false
		}
		if s.stopped && s.inflight == 0 && !s.done[s.delivered] && s.claim > s.delivered {
			// Claimed but never completed (its worker was the one that
			// errored or the context died before fn stored a result).
			return v, false
		}
		s.cond.Wait()
	}
}

// Err reports why the stream stopped early: the lowest-indexed fn error,
// else the context's error, else nil. Call it after Next returns false.
func (s *Stream[T]) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failErr != nil {
		return s.failErr
	}
	return s.ctx.Err()
}

// Buffered returns how many completed, undelivered results the stream
// currently holds — always bounded by the window. Exposed for the memory
// high-water tests.
func (s *Stream[T]) Buffered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.results)
}

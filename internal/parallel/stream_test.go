package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// drain pulls every result out of the stream.
func drain[T any](s *Stream[T]) []T {
	var out []T
	for {
		v, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

func TestStreamMatchesSerialForAnyWorkerCount(t *testing.T) {
	n := 57
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 2, 3, 8, 100} {
		s := StreamErr(context.Background(), n, workers, 0, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		got := drain(s)
		if len(got) != n {
			t.Fatalf("workers=%d: delivered %d results, want %d", workers, len(got), n)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
		if err := s.Err(); err != nil {
			t.Fatalf("workers=%d: Err() = %v", workers, err)
		}
	}
}

func TestStreamEmpty(t *testing.T) {
	s := StreamErr(context.Background(), 0, 4, 0, func(_ context.Context, i int) (int, error) {
		t.Error("fn called for empty stream")
		return 0, nil
	})
	if _, ok := s.Next(); ok {
		t.Fatal("Next() = ok for empty stream")
	}
	if err := s.Err(); err != nil {
		t.Fatalf("Err() = %v", err)
	}
}

func TestStreamDeliversPrefixBeforeLowestError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4, 16} {
		s := StreamErr(context.Background(), 40, workers, 0, func(_ context.Context, i int) (int, error) {
			if i >= 11 {
				return 0, fmt.Errorf("item %d: %w", i, boom)
			}
			return i, nil
		})
		got := drain(s)
		if len(got) != 11 {
			t.Fatalf("workers=%d: delivered %d results, want the 11 before the first error", workers, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: result[%d] = %d", workers, i, v)
			}
		}
		err := s.Err()
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: Err() = %v, want wrapped boom", workers, err)
		}
		// The lowest failed index wins, exactly like MapErr.
		if want := "item 11: boom"; err.Error() != want {
			t.Fatalf("workers=%d: Err() = %q, want %q", workers, err, want)
		}
	}
}

func TestStreamCancellationDeliversPrefix(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var calls atomic.Int32
	s := StreamErr(ctx, 100, 4, 0, func(ctx context.Context, i int) (int, error) {
		calls.Add(1)
		if i >= 4 {
			// Park until cancelled so the cancellation frontier is exact.
			<-release
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		return i, nil
	})
	// Drain the first four eagerly, then cancel and release the rest.
	var got []int
	for len(got) < 4 {
		v, ok := s.Next()
		if !ok {
			t.Fatalf("stream ended after %d results", len(got))
		}
		got = append(got, v)
	}
	cancel()
	close(release)
	got = append(got, drain(s)...)
	for i, v := range got {
		if v != i {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
	if err := s.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", err)
	}
	if int(calls.Load()) == 100 {
		t.Fatal("cancellation did not stop new claims")
	}
}

func TestStreamBufferingIsBoundedByWindow(t *testing.T) {
	n, workers, window := 500, 8, 16
	s := StreamErr(context.Background(), n, workers, window, func(_ context.Context, i int) (int, error) {
		return i, nil
	})
	high := 0
	for i := 0; i < n; i++ {
		if b := s.Buffered(); b > high {
			high = b
		}
		v, ok := s.Next()
		if !ok || v != i {
			t.Fatalf("Next() = %d,%v at %d", v, ok, i)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("stream not exhausted after n deliveries")
	}
	if high > window {
		t.Fatalf("buffered high-water %d exceeds window %d", high, window)
	}
}

func TestStreamRepanicsInNext(t *testing.T) {
	s := StreamErr(context.Background(), 8, 2, 0, func(_ context.Context, i int) (int, error) {
		if i == 3 {
			panic("stream worker boom")
		}
		return i, nil
	})
	defer func() {
		if r := recover(); r != "stream worker boom" {
			t.Fatalf("recovered %v, want the worker panic", r)
		}
	}()
	drain(s)
	t.Fatal("drain returned without panicking")
}

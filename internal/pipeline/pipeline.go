// Package pipeline is the staged skeleton of the Decepticon attack
// (paper Fig 1): trace → identify → disambiguate → extract → evaluate →
// adversarial. Each stage is a one-method interface, the Engine composes
// whatever stages it is given per victim, and all domain knowledge stays
// with the stage implementations — this package depends only on the
// observability layer, so a future backend swap (a power-side-channel
// TraceStage, a different level-2 ExtractStage) is a new implementation,
// not a core rewrite.
//
// Determinism contract: the engine adds no randomness, no goroutines,
// and no wall-clock reads of its own. Stages run strictly in Fig 1
// order on the caller's goroutine; the State's Clock is simulated by
// default and only moves when a stage advances it by a simulated
// quantity. A deterministic set of stages therefore stays deterministic
// under the engine.
//
// Cancellation contract: State.Ctx is checked between stages; stages
// that do heavy work are expected to honor it internally (the extract
// stage threads it down to every oracle read). A stage returning Stop
// ends the run cleanly — the victim's report is complete as far as it
// got, and the error result is nil. Any other error aborts the run and
// surfaces to the caller.
package pipeline

import (
	"context"
	"errors"
	"time"

	"decepticon/internal/obs"
)

// Clock is the engine's notion of phase time. The default SimClock only
// moves when a stage advances it with a simulated quantity (kernel-trace
// microseconds, oracle rounds, forward passes), so per-phase durations —
// and the histograms fed from them — are byte-identical across machines
// and worker counts. WallClock is the opt-in real-time variant.
type Clock interface {
	// Now returns the clock's current reading. The unit is whatever the
	// stages advance it by (simulated units for SimClock, nanoseconds
	// for WallClock).
	Now() int64
	// Advance moves a simulated clock forward n units (n <= 0 is a
	// no-op). Wall clocks ignore it — real time passes on its own.
	Advance(n int64)
}

// SimClock is the default deterministic clock: a plain counter advanced
// only by the stages' simulated quantities.
type SimClock struct{ t int64 }

// Now returns the accumulated simulated units.
func (c *SimClock) Now() int64 { return c.t }

// Advance adds n simulated units (n <= 0 is a no-op).
func (c *SimClock) Advance(n int64) {
	if n > 0 {
		c.t += n
	}
}

// WallClock reads real time in nanoseconds. Injecting it trades the
// byte-identical-across-machines guarantee for operational latency
// numbers; never use it in determinism-checked runs.
type WallClock struct{}

// Now returns the wall time in nanoseconds.
func (WallClock) Now() int64 { return time.Now().UnixNano() }

// Advance is a no-op: real time passes on its own.
func (WallClock) Advance(int64) {}

// State is the per-victim context threaded through every stage. Domain
// data (the victim, the report under construction, the oracle) lives in
// the stage implementations themselves; State carries only the
// cross-cutting concerns every stage shares.
type State struct {
	// Ctx is the run's cancellation context, never nil once the engine
	// starts. Heavy stages must thread it into their inner loops.
	Ctx context.Context
	// Obs is the metrics registry (nil-safe no-op when unset).
	Obs *obs.Registry
	// Track is this victim's trace lane (nil-safe no-op when unset).
	Track *obs.Track
	// Clock is the phase clock stages advance with simulated work;
	// SimClock unless the caller injected another implementation.
	Clock Clock
}

// Stop is the clean early-termination sentinel: a stage returns it
// (possibly wrapped) when the run is over but not failed — an
// architecture gate refusing extraction, an interrupted extraction that
// checkpointed, a victim resolved without the optional stages. The
// engine swallows it and reports success.
var Stop = errors.New("pipeline: stop")

// TraceStage measures the victim's kernel trace (or whatever physical
// observable a backend substitutes for it).
type TraceStage interface {
	MeasureTrace(s *State) error
}

// IdentifyStage maps the measured trace to a pre-trained candidate.
type IdentifyStage interface {
	Identify(s *State) error
}

// DisambiguateStage separates profile-ambiguous candidates (query-output
// probes in the paper) and finalizes the identification.
type DisambiguateStage interface {
	Disambiguate(s *State) error
}

// ExtractStage clones the victim's weights from the identified baseline.
type ExtractStage interface {
	Extract(s *State) error
}

// EvaluateStage scores the clone against the victim.
type EvaluateStage interface {
	Evaluate(s *State) error
}

// AdversarialStage runs the optional clone-driven adversarial attack.
type AdversarialStage interface {
	Adversarial(s *State) error
}

// Gated is an optional refinement of ExtractStage: when the extract
// stage also implements Gated, the engine calls Gate between the
// identification phases and Extract. A Gate returning Stop skips
// extraction (and everything after it) cleanly — the paper's bus-probe
// architecture cross-check lives here, refusing to pay for rowhammer
// against a mis-identified release.
type Gated interface {
	Gate(s *State) error
}

// Engine composes stages into one per-victim attack. Nil stages are
// skipped, so a caller assembles exactly the attack it wants (e.g. no
// Adversarial stage unless requested); the order is fixed to Fig 1.
type Engine struct {
	Trace        TraceStage
	Identify     IdentifyStage
	Disambiguate DisambiguateStage
	Extract      ExtractStage
	Evaluate     EvaluateStage
	Adversarial  AdversarialStage
}

// Run drives one victim through the staged attack. It returns nil on a
// complete run and on a clean Stop; any other stage error aborts the
// remaining stages and is returned as-is. The context is checked
// between stages, so a cancellation arriving while a stage runs takes
// effect no later than the next stage boundary (stages with inner loops
// honor it sooner).
func (e *Engine) Run(s *State) error {
	if s.Ctx == nil {
		s.Ctx = context.Background()
	}
	if s.Clock == nil {
		s.Clock = &SimClock{}
	}
	steps := []func(*State) error{}
	if e.Trace != nil {
		steps = append(steps, e.Trace.MeasureTrace)
	}
	if e.Identify != nil {
		steps = append(steps, e.Identify.Identify)
	}
	if e.Disambiguate != nil {
		steps = append(steps, e.Disambiguate.Disambiguate)
	}
	if g, ok := e.Extract.(Gated); ok {
		steps = append(steps, g.Gate)
	}
	if e.Extract != nil {
		steps = append(steps, e.Extract.Extract)
	}
	if e.Evaluate != nil {
		steps = append(steps, e.Evaluate.Evaluate)
	}
	if e.Adversarial != nil {
		steps = append(steps, e.Adversarial.Adversarial)
	}
	for _, step := range steps {
		if err := s.Ctx.Err(); err != nil {
			return err
		}
		if err := step(s); err != nil {
			if errors.Is(err, Stop) {
				return nil
			}
			return err
		}
	}
	return nil
}

// Package pruning implements the paper's head-pruning attack extension
// (§8, "Supporting Quantization and Pruning"): when a victim was optimized
// with attention-head pruning, the attacker recovers
//
//  1. *how many* heads each layer kept, from the kernel trace — pruned
//     heads shorten the attention kernels (Fig 21); and
//  2. *which* heads were pruned, from the pre-trained model's per-head
//     Confidence values — confidences correlate almost perfectly between a
//     pre-trained model and its fine-tuned descendants (Fig 20), and head
//     pruning removes the lowest-confidence heads.
//
// The attacker needs only her own copy of the identified pre-trained
// model (to simulate reference traces and compute confidences) and the
// victim's timing trace.
package pruning

import (
	"fmt"
	"sort"
	"strings"

	"decepticon/internal/gpusim"
	"decepticon/internal/transformer"
)

// Detection is the recovered pruning configuration.
type Detection struct {
	// ActiveHeads[l] is the inferred number of unpruned heads in layer l.
	ActiveHeads []int
	// PrunedHeads[l] lists the inferred pruned head indices of layer l.
	PrunedHeads [][]int
}

// TotalPruned returns the inferred total pruned-head count.
func (d Detection) TotalPruned() int {
	n := 0
	for _, heads := range d.PrunedHeads {
		n += len(heads)
	}
	return n
}

// DetectActiveHeads infers, per encoder layer, how many attention heads
// the victim kept. The attacker simulates reference traces of the
// identified architecture with every uniform head count (she controls her
// own copy of the pre-trained model) and matches the victim's per-layer
// attention-kernel durations against them. Kernel launch *schedules* are
// unchanged by pruning, so traces align positionally.
func DetectActiveHeads(victim *gpusim.Trace, arch transformer.Config, prof gpusim.Profile) ([]int, error) {
	// Reference traces, one per uniform head count.
	refs := make([]*gpusim.Trace, arch.Heads+1)
	for c := 1; c <= arch.Heads; c++ {
		counts := make([]int, arch.Layers)
		for l := range counts {
			counts[l] = c
		}
		refs[c] = gpusim.SimulateTransformer(arch, counts, prof, gpusim.Options{})
	}
	full := refs[arch.Heads]
	if len(victim.Execs) != len(full.Execs) {
		return nil, fmt.Errorf("pruning: victim trace has %d kernels, architecture predicts %d",
			len(victim.Execs), len(full.Execs))
	}

	active := make([]int, arch.Layers)
	layer := 0
	for _, sec := range full.Sections {
		if !strings.HasPrefix(sec.Name, "encoder") {
			continue
		}
		best, bestErr := arch.Heads, -1.0
		for c := 1; c <= arch.Heads; c++ {
			var err float64
			for i := sec.Start; i < sec.End; i++ {
				d := victim.Execs[i].Duration() - refs[c].Execs[i].Duration()
				err += d * d
			}
			if bestErr < 0 || err < bestErr {
				best, bestErr = c, err
			}
		}
		active[layer] = best
		layer++
	}
	return active, nil
}

// LocatePrunedHeads picks, per layer, which heads were pruned: the
// lowest-confidence heads of the attacker's pre-trained model copy, as
// many as the trace says are missing. probes are the attacker's inputs
// for the confidence computation.
func LocatePrunedHeads(pre *transformer.Model, activeHeads []int, probes [][]int) [][]int {
	conf := pre.HeadConfidence(probes)
	out := make([][]int, len(activeHeads))
	for l, active := range activeHeads {
		pruneCount := pre.Heads - active
		if pruneCount <= 0 || l >= len(conf) {
			continue
		}
		idx := make([]int, pre.Heads)
		for h := range idx {
			idx[h] = h
		}
		sort.SliceStable(idx, func(a, b int) bool { return conf[l][idx[a]] < conf[l][idx[b]] })
		heads := append([]int(nil), idx[:pruneCount]...)
		sort.Ints(heads)
		out[l] = heads
	}
	return out
}

// Detect runs the full pruning recovery: head counts from the trace, head
// locations from pre-trained confidences.
func Detect(victim *gpusim.Trace, pre *transformer.Model, prof gpusim.Profile, probes [][]int) (Detection, error) {
	active, err := DetectActiveHeads(victim, pre.Config, prof)
	if err != nil {
		return Detection{}, err
	}
	return Detection{
		ActiveHeads: active,
		PrunedHeads: LocatePrunedHeads(pre, active, probes),
	}, nil
}

// Accuracy scores a detection against the victim's true pruning masks:
// countAcc is the fraction of layers with the correct active-head count,
// headAcc the fraction of truly pruned heads the detection identified.
func Accuracy(d Detection, victim *transformer.Model) (countAcc, headAcc float64) {
	layers := victim.Layers
	correctCounts := 0
	var truePruned, hit float64
	for l := 0; l < layers; l++ {
		trueActive := 0
		pruned := map[int]bool{}
		for h, p := range victim.Blocks[l].HeadPruned {
			if p {
				pruned[h] = true
			} else {
				trueActive++
			}
		}
		if l < len(d.ActiveHeads) && d.ActiveHeads[l] == trueActive {
			correctCounts++
		}
		detected := map[int]bool{}
		if l < len(d.PrunedHeads) {
			for _, h := range d.PrunedHeads[l] {
				detected[h] = true
			}
		}
		for h := range pruned {
			truePruned++
			if detected[h] {
				hit++
			}
		}
	}
	countAcc = float64(correctCounts) / float64(layers)
	if truePruned > 0 {
		headAcc = hit / truePruned
	} else {
		headAcc = 1
	}
	return countAcc, headAcc
}

package pruning

import (
	"testing"

	"decepticon/internal/gpusim"
	"decepticon/internal/rng"
	"decepticon/internal/task"
	"decepticon/internal/transformer"
)

func setup(t *testing.T) (pre, victim *transformer.Model, prof gpusim.Profile, probes [][]int) {
	t.Helper()
	cfg := transformer.Config{
		Name: "small", Layers: 4, Hidden: 24, Heads: 4, FFN: 48,
		Vocab: 96, MaxSeq: 16, Labels: 2,
	}
	pre = transformer.NewWithInit(cfg.WithLabels(cfg.Vocab), 1, transformer.TrainedInit)
	// Light pre-training so head confidences have structure.
	data := task.GenerateMLM(cfg.Vocab, 12, 120, 2)
	pre.Train(data, transformer.TrainConfig{Epochs: 4, BatchSize: 8, LR: 3e-3, HeadLR: 6e-3, WeightDecay: 0.02, Seed: 3})

	// The victim is fine-tuned from pre and then head-pruned: per layer,
	// drop the lowest-confidence heads (as head-pruning optimizations do).
	tk, _ := task.ByName("sst2")
	ft := tk.Generate(cfg.Vocab, 60, 4)
	victim = transformer.FineTuneFrom(pre, tk.Labels, ft, transformer.TrainConfig{
		Epochs: 2, BatchSize: 4, LR: 3e-5, HeadLR: 2e-2, WeightDecay: 1, Seed: 5}, 6)

	probes = probeInputs(cfg.Vocab, cfg.MaxSeq, 16, 7)
	conf := victim.HeadConfidence(probes)
	prunePerLayer := []int{0, 1, 2, 1}
	for l, n := range prunePerLayer {
		// Prune the n lowest-confidence heads of the victim.
		for k := 0; k < n; k++ {
			best, bestConf := -1, 2.0
			for h := 0; h < victim.Heads; h++ {
				if victim.Blocks[l].HeadPruned[h] {
					continue
				}
				if conf[l][h] < bestConf {
					best, bestConf = h, conf[l][h]
				}
			}
			victim.PruneHeads(l, best)
		}
	}

	prof = gpusim.Profile{Source: "huggingface", Framework: gpusim.PyTorch, Seed: 8}
	return pre, victim, prof, probes
}

func victimTrace(victim *transformer.Model, prof gpusim.Profile, jitter float64) *gpusim.Trace {
	active := make([]int, victim.Layers)
	for l, b := range victim.Blocks {
		n := 0
		for _, p := range b.HeadPruned {
			if !p {
				n++
			}
		}
		active[l] = n
	}
	return gpusim.SimulateTransformer(victim.Config, active, prof, gpusim.Options{
		MeasureSeed: 9, JitterMagnitude: jitter,
	})
}

func probeInputs(vocab, maxSeq, n int, seed uint64) [][]int {
	r := rng.New(seed)
	out := make([][]int, n)
	for i := range out {
		tokens := make([]int, maxSeq)
		for j := 1; j < maxSeq; j++ {
			tokens[j] = 2 + r.Intn(vocab-2)
		}
		out[i] = tokens
	}
	return out
}

func TestDetectActiveHeadsExact(t *testing.T) {
	_, victim, prof, _ := setup(t)
	tr := victimTrace(victim, prof, 0)
	active, err := DetectActiveHeads(tr, victim.Config, prof)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 3, 2, 3}
	for l := range want {
		if active[l] != want[l] {
			t.Fatalf("layer %d: detected %d active heads, want %d (all: %v)", l, active[l], want[l], active)
		}
	}
}

func TestDetectActiveHeadsUnderJitter(t *testing.T) {
	_, victim, prof, _ := setup(t)
	tr := victimTrace(victim, prof, 0.2)
	active, err := DetectActiveHeads(tr, victim.Config, prof)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 3, 2, 3}
	wrong := 0
	for l := range want {
		if active[l] != want[l] {
			wrong++
		}
	}
	if wrong > 1 {
		t.Fatalf("jittered detection wrong in %d/4 layers: %v", wrong, active)
	}
}

func TestEndToEndDetection(t *testing.T) {
	pre, victim, prof, probes := setup(t)
	tr := victimTrace(victim, prof, 0)
	det, err := Detect(tr, pre, prof, probes)
	if err != nil {
		t.Fatal(err)
	}
	if det.TotalPruned() != victim.PrunedHeadCount() {
		t.Fatalf("detected %d pruned heads, victim has %d", det.TotalPruned(), victim.PrunedHeadCount())
	}
	countAcc, headAcc := Accuracy(det, victim)
	if countAcc < 1 {
		t.Fatalf("count accuracy %v, want 1 on clean trace", countAcc)
	}
	// Head localization relies on the Fig 20 confidence correlation; it
	// should identify most pruned heads.
	if headAcc < 0.75 {
		t.Fatalf("head localization accuracy %v, want >= 0.75", headAcc)
	}
}

func TestDetectRejectsWrongArchitecture(t *testing.T) {
	_, victim, prof, _ := setup(t)
	tr := victimTrace(victim, prof, 0)
	other := victim.Config
	other.Layers = 2
	if _, err := DetectActiveHeads(tr, other, prof); err == nil {
		t.Fatal("architecture mismatch must error")
	}
}

func TestUnprunedVictimDetectsFull(t *testing.T) {
	pre, _, prof, probes := setup(t)
	tr := gpusim.SimulateTransformer(pre.Config, nil, prof, gpusim.Options{})
	det, err := Detect(tr, pre, prof, probes)
	if err != nil {
		t.Fatal(err)
	}
	for l, a := range det.ActiveHeads {
		if a != pre.Heads {
			t.Fatalf("layer %d: detected %d active on unpruned victim", l, a)
		}
	}
	if det.TotalPruned() != 0 {
		t.Fatalf("detected %d pruned heads on unpruned victim", det.TotalPruned())
	}
}

func TestAccuracyScoring(t *testing.T) {
	_, victim, _, _ := setup(t)
	// A perfect detection built from ground truth scores 1/1.
	det := Detection{
		ActiveHeads: make([]int, victim.Layers),
		PrunedHeads: make([][]int, victim.Layers),
	}
	for l, b := range victim.Blocks {
		for h, p := range b.HeadPruned {
			if p {
				det.PrunedHeads[l] = append(det.PrunedHeads[l], h)
			} else {
				det.ActiveHeads[l]++
			}
		}
	}
	c, h := Accuracy(det, victim)
	if c != 1 || h != 1 {
		t.Fatalf("ground-truth detection scored %v/%v", c, h)
	}
}

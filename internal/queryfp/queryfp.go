// Package queryfp implements the paper's input-dependent model variant
// detector (§5.3): when several candidate pre-trained models share an
// execution fingerprint (same source, same architecture — e.g. cased vs.
// uncased BERT, CamemBERT vs. RuBERT), query outputs become the secondary
// fingerprint. The attacker compiles probe queries from words each
// candidate's vocabulary is uniquely trained with; a victim that inherited
// that vocabulary reacts to the probe, while for every other victim the
// probe tokenizes to pure UNK and is indistinguishable from gibberish.
package queryfp

import (
	"fmt"
	"strings"

	"decepticon/internal/tokenizer"
)

// Candidate is one pre-trained model the attacker holds in its pool.
type Candidate struct {
	Name  string
	Vocab *tokenizer.Vocab
}

// Probe is one crafted query.
type Probe struct {
	Text string
	// ForCandidate is the candidate whose vocabulary uniquely contains the
	// probe's words.
	ForCandidate string
}

// BlackBox is the only victim interface the detector uses: text in, class
// probabilities out.
type BlackBox func(text string) []float32

// wordsPerProbe is how many unique words one probe packs.
const wordsPerProbe = 3

// CompileProbes builds perCandidate probes for every candidate from words
// unique to that candidate's vocabulary (vocab.txt differences, language-
// specific words, casing-specific forms — §5.3). Candidates whose
// vocabulary has no unique words get no probes.
func CompileProbes(candidates []*Candidate, perCandidate int) []Probe {
	var out []Probe
	vocabs := make([]*tokenizer.Vocab, len(candidates))
	for i, c := range candidates {
		vocabs[i] = c.Vocab
	}
	for _, c := range candidates {
		unique := c.Vocab.UniqueWords(vocabs, perCandidate*wordsPerProbe)
		for p := 0; p+wordsPerProbe <= len(unique) && p/wordsPerProbe < perCandidate; p += wordsPerProbe {
			out = append(out, Probe{
				Text:         strings.Join(unique[p:p+wordsPerProbe], " "),
				ForCandidate: c.Name,
			})
		}
	}
	return out
}

// BaselineText returns a query that is out-of-vocabulary for every
// candidate (the synthetic vocabularies contain no digits), so any victim
// tokenizes it to pure UNK.
func BaselineText() string {
	words := make([]string, wordsPerProbe)
	for i := range words {
		words[i] = fmt.Sprintf("x%d%d", i, i+7)
	}
	return strings.Join(words, " ")
}

// outputsEqual reports whether two probability vectors are identical. A
// victim's output on a probe equals its baseline output exactly when every
// probe word tokenized to UNK (model inference is deterministic).
func outputsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Result is the detector's verdict.
type Result struct {
	Best string
	// Recognized counts, per candidate name, how many of its probes the
	// victim reacted to.
	Recognized map[string]int
	// Queries is the total number of black-box queries spent.
	Queries int
}

// Detect identifies which candidate's vocabulary the victim inherited.
// It sends each probe and the all-UNK baseline to the victim and scores a
// candidate whenever the victim's output on its probe differs from the
// baseline output. Ties and all-zero scores leave Best empty.
func Detect(candidates []*Candidate, bb BlackBox, perCandidate int) Result {
	if perCandidate <= 0 {
		perCandidate = 4
	}
	res := Result{Recognized: make(map[string]int)}
	baseline := bb(BaselineText())
	res.Queries++
	for _, p := range CompileProbes(candidates, perCandidate) {
		out := bb(p.Text)
		res.Queries++
		if !outputsEqual(out, baseline) {
			res.Recognized[p.ForCandidate]++
		}
	}
	best, bestScore, tie := "", 0, false
	for _, c := range candidates {
		score := res.Recognized[c.Name]
		switch {
		case score > bestScore:
			best, bestScore, tie = c.Name, score, false
		case score == bestScore && score > 0:
			tie = true
		}
	}
	if !tie && bestScore > 0 {
		res.Best = best
	}
	return res
}

package queryfp

import (
	"testing"

	"decepticon/internal/tokenizer"
	"decepticon/internal/transformer"
)

// victim builds a black box backed by a real tiny transformer that
// tokenizes with the given vocabulary — the same shape as a zoo victim.
func victim(v *tokenizer.Vocab, seed uint64) BlackBox {
	cfg := transformer.Config{
		Name: "victim", Layers: 2, Hidden: 16, Heads: 2, FFN: 32,
		Vocab: v.Size, MaxSeq: 16, Labels: 2,
	}
	m := transformer.New(cfg, seed)
	return func(text string) []float32 {
		return m.Probs(v.Tokenize(text, cfg.MaxSeq))
	}
}

func candidates() []*Candidate {
	mk := func(name, lang string, cased bool, seed uint64) *Candidate {
		return &Candidate{Name: name, Vocab: tokenizer.NewVocab(name, lang, cased, 96, seed)}
	}
	return []*Candidate{
		mk("bert-base-uncased", "en", false, 1),
		mk("bert-base-cased", "en", true, 2),
		mk("camembert-base", "fr", false, 3),
		mk("rubert-base", "ru", false, 4),
	}
}

func TestDetectEachCandidate(t *testing.T) {
	cands := candidates()
	for i, truth := range cands {
		bb := victim(truth.Vocab, uint64(10+i))
		res := Detect(cands, bb, 4)
		if res.Best != truth.Name {
			t.Fatalf("victim %s detected as %q (scores %v)", truth.Name, res.Best, res.Recognized)
		}
		if res.Queries == 0 {
			t.Fatal("no queries counted")
		}
	}
}

func TestDetectRecognizesOnlyOwnProbes(t *testing.T) {
	cands := candidates()
	bb := victim(cands[2].Vocab, 7) // camembert victim
	res := Detect(cands, bb, 4)
	if res.Recognized["rubert-base"] != 0 {
		t.Fatalf("russian probes recognized by french victim: %v", res.Recognized)
	}
	if res.Recognized["camembert-base"] == 0 {
		t.Fatalf("french probes unrecognized by french victim: %v", res.Recognized)
	}
}

func TestDetectUnknownVictim(t *testing.T) {
	cands := candidates()
	// A victim whose vocabulary is in none of the candidates.
	stranger := tokenizer.NewVocab("stranger", "en", false, 96, 999)
	bb := victim(stranger, 8)
	res := Detect(cands, bb, 4)
	// The stranger may coincidentally share a few English words with the
	// candidates, but should not be confidently matched to the French or
	// Russian models.
	if res.Best == "camembert-base" || res.Best == "rubert-base" {
		t.Fatalf("stranger matched to %s", res.Best)
	}
}

func TestCompileProbes(t *testing.T) {
	cands := candidates()
	probes := CompileProbes(cands, 3)
	perCand := map[string]int{}
	for _, p := range probes {
		perCand[p.ForCandidate]++
		if p.Text == "" {
			t.Fatal("empty probe text")
		}
	}
	for _, c := range cands {
		if perCand[c.Name] == 0 {
			t.Fatalf("no probes for %s", c.Name)
		}
		if perCand[c.Name] > 3 {
			t.Fatalf("too many probes for %s: %d", c.Name, perCand[c.Name])
		}
	}
	// Probe words must be unique to their candidate.
	for _, p := range probes {
		var owner *Candidate
		for _, c := range cands {
			if c.Name == p.ForCandidate {
				owner = c
			}
		}
		for _, c := range cands {
			if c == owner {
				continue
			}
			for _, w := range splitWords(p.Text) {
				if c.Vocab.Contains(w) {
					t.Fatalf("probe word %q for %s also in %s", w, owner.Name, c.Name)
				}
			}
		}
	}
}

func splitWords(s string) []string {
	var out []string
	start := -1
	for i, r := range s {
		if r == ' ' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

func TestBaselineTextIsAlwaysUNK(t *testing.T) {
	for _, c := range candidates() {
		toks := c.Vocab.Tokenize(BaselineText(), 16)
		for _, id := range toks[1:] {
			if id != tokenizer.UNK {
				t.Fatalf("baseline text tokenized to %v under %s", toks, c.Name)
			}
		}
	}
}

func TestOutputsEqual(t *testing.T) {
	if !outputsEqual([]float32{1, 2}, []float32{1, 2}) {
		t.Fatal("equal vectors reported unequal")
	}
	if outputsEqual([]float32{1, 2}, []float32{1, 3}) {
		t.Fatal("unequal vectors reported equal")
	}
	if outputsEqual([]float32{1}, []float32{1, 1}) {
		t.Fatal("length mismatch reported equal")
	}
}

// Package rng provides deterministic pseudo-random number generation for
// the whole repository. Every stochastic component (zoo construction,
// dataset generation, training initialization, simulated measurement
// noise) derives its randomness from an explicit seed so experiments are
// reproducible bit-for-bit.
//
// Seeds are derived from human-readable labels with FNV-1a, which lets
// call sites write rng.New(rng.Seed("zoo", model.Name, "pretrain"))
// instead of threading integer seeds through every layer.
package rng

import "math"

// RNG is a small, fast, deterministic generator (xorshift* variant,
// splitmix64 seeded). It intentionally does not wrap math/rand so that the
// stream is stable across Go releases.
type RNG struct {
	state uint64
	// spare holds a cached second Gaussian sample from the Box-Muller
	// transform; spareOK reports whether it is valid.
	spare   float64
	spareOK bool
}

// New returns a generator seeded with seed. Two generators built from the
// same seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{state: seed}
	// Run splitmix64 a few times so small / similar seeds diverge.
	r.Uint64()
	r.Uint64()
	return r
}

// Seed derives a 64-bit seed from a list of string labels using FNV-1a.
// It is the canonical way to name a random stream.
func Seed(labels ...string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	var h uint64 = offset
	for _, l := range labels {
		for i := 0; i < len(l); i++ {
			h ^= uint64(l[i])
			h *= prime
		}
		h ^= 0xff // label separator
		h *= prime
	}
	return h
}

// Derive returns a new generator whose stream is a deterministic function
// of the parent seed and the given labels, without disturbing r's stream.
func (r *RNG) Derive(labels ...string) *RNG {
	return New(r.state ^ Seed(labels...))
}

// State exposes the generator's internal state for checkpointing. A
// stream restored with FromState(State()) continues exactly where this
// one stands. The cached Box-Muller spare is deliberately not part of
// the state: streams that need to survive a checkpoint boundary must
// draw uniforms only (every channel-noise stream in this repo does).
func (r *RNG) State() uint64 { return r.state }

// FromState reconstructs a generator from a State() value. Unlike New it
// applies no warmup steps — the state is resumed verbatim.
func FromState(state uint64) *RNG { return &RNG{state: state} }

// Uint64 returns the next 64 pseudo-random bits (splitmix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// NormFloat64 returns a standard normal sample (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	if r.spareOK {
		r.spareOK = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.spareOK = true
	return u * m
}

// Normal returns a Gaussian sample with the given mean and standard
// deviation as a float32 (the repository's native weight type).
func (r *RNG) Normal(mean, std float64) float32 {
	return float32(mean + std*r.NormFloat64())
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices in place using swap, mirroring
// math/rand.Shuffle's contract.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Choice returns a uniformly chosen index weighted by the non-negative
// weights. The weights need not sum to 1; a zero total panics.
func (r *RNG) Choice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if total == 0 {
		panic("rng: zero total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedLabelSensitivity(t *testing.T) {
	if Seed("a", "b") == Seed("ab") {
		t.Fatal("label boundaries must affect the seed")
	}
	if Seed("model-1") == Seed("model-2") {
		t.Fatal("different labels must give different seeds")
	}
	if Seed("x") != Seed("x") {
		t.Fatal("Seed must be deterministic")
	}
}

func TestDeriveIndependence(t *testing.T) {
	parent := New(7)
	before := parent.state
	child := parent.Derive("child")
	if parent.state != before {
		t.Fatal("Derive must not advance the parent stream")
	}
	c2 := New(7).Derive("child")
	for i := 0; i < 100; i++ {
		if child.Uint64() != c2.Uint64() {
			t.Fatal("Derive must be deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(2)
	for i := 0; i < 10000; i++ {
		f := r.Float32()
		if f < 0 || f >= 1 {
			t.Fatalf("Float32 out of range: %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[r.Intn(10)]++
	}
	for v, c := range counts {
		if c == 0 {
			t.Fatalf("value %d never produced", v)
		}
		if c < 500 || c > 1500 {
			t.Fatalf("value %d count %d far from uniform", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(4)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Fatalf("mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("variance %v too far from 1", variance)
	}
}

func TestNormalScaled(t *testing.T) {
	r := New(5)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Normal(3, 0.5))
	}
	if mean := sum / n; math.Abs(mean-3) > 0.02 {
		t.Fatalf("scaled mean %v too far from 3", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		n := 1 + int(seed%64)
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	r := New(6)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[r.Choice([]float64{1, 2, 7})]++
	}
	if counts[2] < counts[1] || counts[1] < counts[0] {
		t.Fatalf("weighted choice ordering violated: %v", counts)
	}
	if counts[2] < 18000 {
		t.Fatalf("heaviest weight picked too rarely: %v", counts)
	}
}

func TestChoicePanics(t *testing.T) {
	for _, w := range [][]float64{{0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Choice(%v) must panic", w)
				}
			}()
			New(1).Choice(w)
		}()
	}
}

func TestShuffleMatchesPermDistribution(t *testing.T) {
	r := New(9)
	s := []int{0, 1, 2, 3, 4}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	seen := make(map[int]bool)
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("shuffle lost elements: %v", s)
	}
}

package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"decepticon/internal/fsatomic"
	"decepticon/internal/sidechannel"
)

// campaign is the in-memory handle of one durable campaign directory:
//
//	<dir>/spec.json       the submitted CampaignSpec, immutable
//	<dir>/status.json     CampaignStatus, atomically rewritten on change
//	<dir>/ckpt/           per-victim extraction checkpoints + flight dumps
//	<dir>/results.ndjson  one VictimResult line per victim, input order
//
// results.ndjson is rewritten from line zero on every (re)start of the
// campaign: redelivered reports reproduce the prefix bit-for-bit (the
// pipeline is deterministic and resume restores exact Stats), so the
// final file of an interrupted-then-resumed campaign is byte-identical
// to an uninterrupted control run's.
type campaign struct {
	srv  *Server
	dir  string
	spec CampaignSpec

	mu         sync.Mutex
	st         CampaignStatus
	resultsLen int64         // bytes of results.ndjson visible to readers
	change     chan struct{} // closed and replaced on every mutation
	enqueued   time.Time     // when it last joined the queue (for wait hist)
}

func newCampaign(s *Server, dir string, spec CampaignSpec, st CampaignStatus) *campaign {
	return &campaign{
		srv:      s,
		dir:      dir,
		spec:     spec,
		st:       st,
		change:   make(chan struct{}),
		enqueued: time.Now(),
	}
}

// loadCampaign restores a campaign handle from its directory.
func loadCampaign(s *Server, dir string) (*campaign, error) {
	var spec CampaignSpec
	if err := readJSON(filepath.Join(dir, "spec.json"), &spec); err != nil {
		return nil, err
	}
	var st CampaignStatus
	if err := readJSON(filepath.Join(dir, "status.json"), &st); err != nil {
		return nil, err
	}
	c := newCampaign(s, dir, spec, st)
	if st.Terminal() {
		// A finished campaign's results file is complete and immutable;
		// expose it as-is. Non-terminal campaigns re-expose their results
		// only as the resumed run redelivers them, so readers never see a
		// file the next execute is about to truncate.
		if fi, err := os.Stat(c.resultsPath()); err == nil {
			c.resultsLen = fi.Size()
		}
	}
	return c, nil
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func (c *campaign) resultsPath() string { return filepath.Join(c.dir, "results.ndjson") }

// persistNew creates the campaign directory and writes spec + status.
// Called once at submission, before the id is announced.
func (c *campaign) persistNew() error {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return fmt.Errorf("service: create campaign dir: %w", err)
	}
	spec, err := json.Marshal(c.spec)
	if err != nil {
		return fmt.Errorf("service: marshal spec: %w", err)
	}
	if err := fsatomic.WriteFile(filepath.Join(c.dir, "spec.json"), append(spec, '\n')); err != nil {
		return fmt.Errorf("service: persist spec: %w", err)
	}
	c.persistStatus()
	return nil
}

// persistStatus atomically rewrites status.json from c.st. Callers hold
// c.mu (or have exclusive access during construction/recovery). Errors
// are logged, not fatal: the in-memory state stays authoritative for
// this process and the next restart re-derives what it can.
func (c *campaign) persistStatus() {
	data, err := json.Marshal(&c.st)
	if err == nil {
		err = fsatomic.WriteFile(filepath.Join(c.dir, "status.json"), append(data, '\n'))
	}
	if err != nil {
		c.srv.reg.Log().Error("service: persist status", "campaign", c.st.ID, "err", err)
	}
}

// bump wakes every watcher. c.mu held.
func (c *campaign) bump() {
	close(c.change)
	c.change = make(chan struct{})
}

// watch returns a channel closed at the campaign's next mutation.
func (c *campaign) watch() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.change
}

// snapshot returns a copy of the status (Summary shared, but it is
// written once and never mutated after).
func (c *campaign) snapshot() CampaignStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st
}

// progress returns what a results reader needs: bytes available, and
// whether the campaign can still produce more in this process.
func (c *campaign) progress() (avail int64, active bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resultsLen, c.st.State == StateQueued || c.st.State == StateRunning
}

// setRunning transitions queued → running and returns how long the
// campaign waited in the queue.
func (c *campaign) setRunning() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	wait := time.Since(c.enqueued)
	c.st.State = StateRunning
	c.st.Reason = ""
	c.st.Error = ""
	// The run redelivers from victim zero (resume makes redelivery cheap
	// and exact); expose results only as they rematerialize.
	c.st.Delivered = 0
	c.resultsLen = 0
	c.persistStatus()
	c.bump()
	return wait
}

// park marks a queued campaign interrupted without running it (tenant
// budget exhausted before it reached a runner).
func (c *campaign) park(reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.st.State = StateInterrupted
	c.st.Reason = reason
	c.persistStatus()
	c.bump()
}

// finish records a terminal or interrupted state.
func (c *campaign) finish(state, reason, errMsg string, sum *Summary) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.st.State = state
	c.st.Reason = reason
	c.st.Error = errMsg
	if sum != nil {
		c.st.Summary = sum
	}
	c.persistStatus()
	c.bump()
}

// resultSink is the append path of results.ndjson for one execution.
type resultSink struct {
	f  *os.File
	bw *bufio.Writer
}

// openResults truncates and reopens the results file for a fresh
// delivery sequence.
func (c *campaign) openResults() (*resultSink, error) {
	f, err := os.Create(c.resultsPath())
	if err != nil {
		return nil, fmt.Errorf("open results: %w", err)
	}
	return &resultSink{f: f, bw: bufio.NewWriter(f)}, nil
}

func (k *resultSink) Close() error {
	k.bw.Flush()
	return k.f.Close()
}

// deliver appends one result line, publishes it to readers, ratchets the
// campaign's metered spend to cum (monotonic: a resumed run's recount
// climbs through the old value, never below it), and returns the spend
// delta to charge against the tenant.
func (c *campaign) deliver(sink *resultSink, line []byte, cum int64) (delta int64, err error) {
	if _, err := sink.bw.Write(line); err != nil {
		return 0, err
	}
	if err := sink.bw.WriteByte('\n'); err != nil {
		return 0, err
	}
	// Flush before publishing: readers follow the file on disk, so the
	// visible length must never run ahead of the written bytes.
	if err := sink.bw.Flush(); err != nil {
		return 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resultsLen += int64(len(line)) + 1
	c.st.Delivered++
	if cum > c.st.Spent {
		delta = cum - c.st.Spent
		c.st.Spent = cum
	}
	c.persistStatus()
	c.bump()
	return delta, nil
}

// parseFaults wraps sidechannel.ParseFaultPlan ("" → nil plan).
func parseFaults(spec string) (*sidechannel.FaultPlan, error) {
	return sidechannel.ParseFaultPlan(spec)
}

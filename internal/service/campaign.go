package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"decepticon/internal/fsatomic"
	"decepticon/internal/obs"
	"decepticon/internal/sidechannel"
)

// campaign is the in-memory handle of one durable campaign directory:
//
//	<dir>/spec.json       the submitted CampaignSpec, immutable
//	<dir>/status.json     CampaignStatus, atomically rewritten on change
//	<dir>/ckpt/           per-victim extraction checkpoints + flight dumps
//	<dir>/results.ndjson  one VictimResult line per victim, input order
//
// results.ndjson is rewritten from line zero on every (re)start of the
// campaign: redelivered reports reproduce the prefix bit-for-bit (the
// pipeline is deterministic and resume restores exact Stats), so the
// final file of an interrupted-then-resumed campaign is byte-identical
// to an uninterrupted control run's.
type campaign struct {
	srv  *Server
	dir  string
	spec CampaignSpec

	mu         sync.Mutex
	st         CampaignStatus
	resultsLen int64         // bytes of results.ndjson visible to readers
	eventsLen  int64         // bytes of events.ndjson visible to readers
	change     chan struct{} // closed and replaced on every mutation
	enqueued   time.Time     // when it last joined the queue (for wait hist)
	tracker    *obs.ProgressTracker
	lastProg   time.Time // last throttled progress persist

	ledMu sync.Mutex // guards led open/close, never taken under c.mu
	led   *ledger
}

func newCampaign(s *Server, dir string, spec CampaignSpec, st CampaignStatus) *campaign {
	enq := time.Now()
	if st.SubmittedAt != nil {
		// Queue-wait accounting survives restarts: the admission time is
		// the persisted one, not this process's start.
		enq = *st.SubmittedAt
	}
	return &campaign{
		srv:      s,
		dir:      dir,
		spec:     spec,
		st:       st,
		change:   make(chan struct{}),
		enqueued: enq,
	}
}

// loadCampaign restores a campaign handle from its directory.
func loadCampaign(s *Server, dir string) (*campaign, error) {
	var spec CampaignSpec
	if err := readJSON(filepath.Join(dir, "spec.json"), &spec); err != nil {
		return nil, err
	}
	var st CampaignStatus
	if err := readJSON(filepath.Join(dir, "status.json"), &st); err != nil {
		return nil, err
	}
	c := newCampaign(s, dir, spec, st)
	if st.Terminal() {
		// A finished campaign's results file is complete and immutable;
		// expose it as-is. Non-terminal campaigns re-expose their results
		// only as the resumed run redelivers them, so readers never see a
		// file the next execute is about to truncate.
		if fi, err := os.Stat(c.resultsPath()); err == nil {
			c.resultsLen = fi.Size()
		}
	}
	return c, nil
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func (c *campaign) resultsPath() string { return filepath.Join(c.dir, "results.ndjson") }
func (c *campaign) eventsPath() string  { return filepath.Join(c.dir, "events.ndjson") }

// ledger returns the campaign's event ledger, opening it on first use
// (recovery truncates a torn tail and continues the sequence).
func (c *campaign) ledger() (*ledger, error) {
	c.ledMu.Lock()
	defer c.ledMu.Unlock()
	if c.led == nil {
		led, err := openLedger(c.eventsPath())
		if err != nil {
			return nil, err
		}
		c.led = led
		c.mu.Lock()
		if led.bytes() > c.eventsLen {
			c.eventsLen = led.bytes()
		}
		c.mu.Unlock()
	}
	return c.led, nil
}

// event appends one ledger line and wakes watchers. Ledger errors are
// logged, never fatal: the campaign keeps running with a gap in its
// audit trail rather than dying over telemetry. Never called with c.mu
// held (the ledger's lock orders before the campaign's).
func (c *campaign) event(ev Event) {
	led, err := c.ledger()
	if err != nil {
		c.srv.reg.Log().Error("service: open ledger", "campaign", c.st.ID, "err", err)
		return
	}
	size, err := led.append(ev)
	if err != nil {
		c.srv.reg.Log().Error("service: append ledger", "campaign", c.st.ID, "err", err)
		return
	}
	c.srv.counter("service.ledger_events").Inc()
	c.mu.Lock()
	c.eventsLen = size
	c.bump()
	c.mu.Unlock()
}

// persistNew creates the campaign directory and writes spec + status.
// Called once at submission, before the id is announced.
func (c *campaign) persistNew() error {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return fmt.Errorf("service: create campaign dir: %w", err)
	}
	spec, err := json.Marshal(c.spec)
	if err != nil {
		return fmt.Errorf("service: marshal spec: %w", err)
	}
	if err := fsatomic.WriteFile(filepath.Join(c.dir, "spec.json"), append(spec, '\n')); err != nil {
		return fmt.Errorf("service: persist spec: %w", err)
	}
	c.persistStatus()
	return nil
}

// persistStatus atomically rewrites status.json from c.st. Callers hold
// c.mu (or have exclusive access during construction/recovery). Errors
// are logged, not fatal: the in-memory state stays authoritative for
// this process and the next restart re-derives what it can.
func (c *campaign) persistStatus() {
	data, err := json.Marshal(&c.st)
	if err == nil {
		err = fsatomic.WriteFile(filepath.Join(c.dir, "status.json"), append(data, '\n'))
	}
	if err != nil {
		c.srv.reg.Log().Error("service: persist status", "campaign", c.st.ID, "err", err)
	}
}

// bump wakes every watcher. c.mu held.
func (c *campaign) bump() {
	close(c.change)
	c.change = make(chan struct{})
}

// watch returns a channel closed at the campaign's next mutation.
func (c *campaign) watch() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.change
}

// snapshot returns a copy of the status (Summary and Progress shared,
// but both are replaced wholesale, never mutated in place). When a live
// tracker is attached, Progress and the wall-clock ETA refresh from it —
// between tensor boundaries the persisted copy would lag.
func (c *campaign) snapshot() CampaignStatus {
	c.mu.Lock()
	st := c.st
	tr := c.tracker
	c.mu.Unlock()
	if tr != nil {
		pv := tr.Snapshot()
		st.Progress = campaignProgress(pv)
		st.ETASeconds = pv.ETASeconds
	}
	return st
}

// progress returns what a results reader needs: bytes available, and
// whether the campaign can still produce more in this process.
func (c *campaign) progress() (avail int64, active bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resultsLen, c.st.State == StateQueued || c.st.State == StateRunning
}

// eventsProgress is the ledger-stream twin of progress: whole-line bytes
// available in events.ndjson, and whether this process can still append.
// The ledger is opened on demand so a reader attached to a recovered
// campaign sees its full (tail-truncated) history immediately.
func (c *campaign) eventsProgress() (avail int64, active bool) {
	if _, err := c.ledger(); err != nil {
		c.srv.reg.Log().Error("service: open ledger", "campaign", c.st.ID, "err", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.eventsLen, c.st.State == StateQueued || c.st.State == StateRunning
}

// setTracker attaches the execution's progress tracker (snapshot reads
// it live from then on).
func (c *campaign) setTracker(tr *obs.ProgressTracker) {
	c.mu.Lock()
	c.tracker = tr
	c.mu.Unlock()
}

// observeProgress folds a fresh tracker snapshot into the status.
// Persisting every tensor boundary would hammer status.json, so disk
// writes are throttled to one per 200ms unless forced; the in-memory
// status (what /progress serves) always updates, and watchers wake.
func (c *campaign) observeProgress(pv obs.ProgressValue, force bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.st.Progress = campaignProgress(pv)
	if now := time.Now(); force || now.Sub(c.lastProg) >= 200*time.Millisecond {
		c.lastProg = now
		c.persistStatus()
	}
	c.bump()
}

// setRunning transitions queued → running and returns how long the
// campaign waited in the queue. The ledger gets "started" on the first
// run ever and "resumed" on every later one — StartedAt persists, so
// the distinction survives daemon restarts.
func (c *campaign) setRunning() time.Duration {
	c.mu.Lock()
	wait := time.Since(c.enqueued)
	first := c.st.StartedAt == nil
	if first {
		now := time.Now().UTC()
		c.st.StartedAt = &now
	}
	c.st.State = StateRunning
	c.st.Reason = ""
	c.st.Error = ""
	// The run redelivers from victim zero (resume makes redelivery cheap
	// and exact); expose results only as they rematerialize.
	c.st.Delivered = 0
	c.resultsLen = 0
	c.persistStatus()
	c.bump()
	c.mu.Unlock()
	if first {
		c.event(Event{Event: EventStarted})
	} else {
		c.event(Event{Event: EventResumed})
	}
	return wait
}

// park marks a queued campaign interrupted without running it (tenant
// budget exhausted before it reached a runner).
func (c *campaign) park(reason string) {
	c.event(Event{Event: EventInterrupted, Reason: reason})
	c.mu.Lock()
	defer c.mu.Unlock()
	c.st.State = StateInterrupted
	c.st.Reason = reason
	c.persistStatus()
	c.bump()
}

// finish records a terminal or interrupted state, stamping FinishedAt on
// the terminal ones (an interrupted campaign is still in flight). The
// matching ledger event is appended first so an events follower that
// wakes on the state change finds the line already on disk.
func (c *campaign) finish(state, reason, errMsg string, sum *Summary) {
	switch state {
	case StateDone:
		c.event(Event{Event: EventDone})
	case StateFailed:
		c.event(Event{Event: EventFailed, Reason: errMsg})
	case StateInterrupted:
		c.event(Event{Event: EventInterrupted, Reason: reason})
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.st.State = state
	c.st.Reason = reason
	c.st.Error = errMsg
	if sum != nil {
		c.st.Summary = sum
	}
	if state == StateDone || state == StateFailed {
		now := time.Now().UTC()
		c.st.FinishedAt = &now
	}
	c.persistStatus()
	c.bump()
}

// resultSink is the append path of results.ndjson for one execution.
type resultSink struct {
	f  *os.File
	bw *bufio.Writer
}

// openResults truncates and reopens the results file for a fresh
// delivery sequence.
func (c *campaign) openResults() (*resultSink, error) {
	f, err := os.Create(c.resultsPath())
	if err != nil {
		return nil, fmt.Errorf("open results: %w", err)
	}
	return &resultSink{f: f, bw: bufio.NewWriter(f)}, nil
}

func (k *resultSink) Close() error {
	k.bw.Flush()
	return k.f.Close()
}

// deliver appends one result line, publishes it to readers, ratchets the
// campaign's metered spend to cum (monotonic: a resumed run's recount
// climbs through the old value, never below it), and returns the spend
// delta to charge against the tenant.
func (c *campaign) deliver(sink *resultSink, line []byte, cum int64) (delta int64, err error) {
	if _, err := sink.bw.Write(line); err != nil {
		return 0, err
	}
	if err := sink.bw.WriteByte('\n'); err != nil {
		return 0, err
	}
	// Flush before publishing: readers follow the file on disk, so the
	// visible length must never run ahead of the written bytes.
	if err := sink.bw.Flush(); err != nil {
		return 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resultsLen += int64(len(line)) + 1
	c.st.Delivered++
	if cum > c.st.Spent {
		delta = cum - c.st.Spent
		c.st.Spent = cum
	}
	c.persistStatus()
	c.bump()
	return delta, nil
}

// parseFaults wraps sidechannel.ParseFaultPlan ("" → nil plan).
func parseFaults(spec string) (*sidechannel.FaultPlan, error) {
	return sidechannel.ParseFaultPlan(spec)
}

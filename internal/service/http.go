package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"

	"decepticon/internal/obs"
)

// Handler returns the daemon's full HTTP surface:
//
//	POST /campaigns           submit a CampaignSpec → 202 + CampaignStatus
//	                          (429 + Retry-After: queue full or tenant
//	                          budget exhausted; 503: draining; 400: bad spec)
//	GET  /campaigns           every campaign's status, admission order
//	GET  /campaigns/{id}      one campaign's status
//	GET  /campaigns/{id}/results
//	                          the campaign's NDJSON result stream; follows
//	                          live delivery until the campaign stops
//	GET  /campaigns/{id}/progress
//	                          live progress: fraction, planned/completed
//	                          simulated units, per-victim breakdown, ETA
//	GET  /campaigns/{id}/events
//	                          the campaign's append-only event ledger as
//	                          NDJSON; follows live appends like /results
//	GET  /tenants             per-tenant budget positions
//	GET  /victims             attackable victim names from the shared zoo
//	GET  /healthz             {"status":"ok"|"draining", ...}
//
// plus the obs ops surface (/metrics, /metrics.json, /debug/vars,
// /debug/pprof/) mounted from obs.Handler — one process, one port, one
// diagnostics story.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns", s.handleList)
	mux.HandleFunc("GET /campaigns/{id}", s.handleCampaign)
	mux.HandleFunc("GET /campaigns/{id}/results", s.handleResults)
	mux.HandleFunc("GET /campaigns/{id}/progress", s.handleProgress)
	mux.HandleFunc("GET /campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /tenants", s.handleTenants)
	mux.HandleFunc("GET /victims", s.handleVictims)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	ops := obs.Handler(s.reg)
	mux.Handle("/metrics", ops)
	mux.Handle("/metrics.json", ops)
	mux.Handle("/debug/", ops)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec CampaignSpec
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("decode spec: %v", err)})
		return
	}
	st, err := s.Submit(spec)
	if err != nil {
		var verr *ValidationError
		switch {
		case errors.As(err, &verr):
			writeJSON(w, http.StatusBadRequest, apiError{Error: verr.Error()})
		case errors.Is(err, ErrQueueFull), errors.Is(err, ErrBudgetExhausted):
			w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds()+0.5)))
			writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
		case errors.Is(err, ErrDraining):
			writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
		default:
			writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Campaigns())
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Campaign(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown campaign"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleResults streams a campaign's results.ndjson, following live
// appends: bytes flow as victims complete (order preserved — the file is
// written in victim input order) and the stream ends when the campaign
// reaches a state that cannot produce more output in this process
// (done, failed, or interrupted/parked).
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	c := s.campaigns[r.PathValue("id")]
	s.mu.Unlock()
	if c == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown campaign"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	var f *os.File
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	var off int64
	for {
		// Snapshot the watch channel BEFORE reading progress: a mutation
		// between the two is then guaranteed to have closed the channel we
		// wait on, so no update can slip by unseen.
		ch := c.watch()
		avail, active := c.progress()
		if off < avail {
			if f == nil {
				var err error
				f, err = os.Open(c.resultsPath())
				if err != nil {
					// Published bytes with no file is an internal inconsistency.
					http.Error(w, err.Error(), http.StatusInternalServerError)
					return
				}
			}
			if _, err := f.Seek(off, io.SeekStart); err != nil {
				return
			}
			n, err := io.CopyN(w, f, avail-off)
			off += n
			if err != nil {
				return // client gone or short file; either way stop
			}
			if flusher != nil {
				flusher.Flush()
			}
			continue
		}
		if !active {
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

// ProgressResponse is the /campaigns/{id}/progress payload. ID, State,
// and Progress are deterministic (byte-identical for any worker count
// and across kill/resume); ETASeconds is wall clock.
type ProgressResponse struct {
	ID         string            `json:"id"`
	State      string            `json:"state"`
	Progress   *CampaignProgress `json:"progress,omitempty"`
	ETASeconds float64           `json:"eta_seconds,omitempty"`
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Campaign(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown campaign"})
		return
	}
	writeJSON(w, http.StatusOK, ProgressResponse{
		ID: st.ID, State: st.State, Progress: st.Progress, ETASeconds: st.ETASeconds,
	})
}

// handleEvents streams a campaign's event ledger, following live
// appends exactly like handleResults follows results.ndjson. The ledger
// is append-only across restarts, so unlike /results a reader always
// sees the campaign's full history from the first "queued" line.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	c := s.campaigns[r.PathValue("id")]
	s.mu.Unlock()
	if c == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown campaign"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	var f *os.File
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	var off int64
	for {
		// Same watch-before-progress ordering as handleResults: a mutation
		// between the two calls has closed the channel we then wait on.
		ch := c.watch()
		avail, active := c.eventsProgress()
		if off < avail {
			if f == nil {
				var err error
				f, err = os.Open(c.eventsPath())
				if err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
					return
				}
			}
			if _, err := f.Seek(off, io.SeekStart); err != nil {
				return
			}
			n, err := io.CopyN(w, f, avail-off)
			off += n
			if err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			continue
		}
		if !active {
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleTenants(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Tenants())
}

func (s *Server) handleVictims(w http.ResponseWriter, _ *http.Request) {
	names := make([]string, 0, len(s.cfg.Attack.Zoo.FineTuned))
	for _, ft := range s.cfg.Attack.Zoo.FineTuned {
		names = append(names, ft.Name)
	}
	writeJSON(w, http.StatusOK, names)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	queued, running := s.QueueDepth()
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  status,
		"queued":  queued,
		"running": running,
	})
}

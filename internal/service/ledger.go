package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// The campaign event ledger: <dir>/events.ndjson, one Event per line,
// append-only. Unlike results.ndjson — which each (re)start truncates
// and redelivers bit-for-bit — the ledger is the campaign's history and
// is NEVER truncated: restarts scan it, drop a torn final line (a crash
// mid-append), and keep appending with the sequence numbers continuing
// where the scan ended. Seq is strictly monotonic within a campaign and
// the event kinds walk a fixed state machine (ValidateLedger), so the
// file doubles as a machine-checkable audit trail of every admission,
// interruption, and resume the campaign lived through.

// Ledger event kinds, in rough lifecycle order.
const (
	EventQueued          = "queued"
	EventStarted         = "started"
	EventTensorComplete  = "tensor-complete"
	EventVictimDelivered = "victim-delivered"
	EventDegraded        = "degraded"
	EventInterrupted     = "interrupted"
	EventResumed         = "resumed"
	EventDone            = "done"
	EventFailed          = "failed"
)

// Event is one ledger line. Seq and the sim-unit fields (Completed,
// Planned) are deterministic; Time is wall clock and explicitly outside
// the determinism contract — comparisons strip it.
type Event struct {
	Seq int64 `json:"seq"`
	// Time is the append wall time (RFC3339Nano). Operational context
	// only; excluded from determinism checks like every Timer.
	Time string `json:"time,omitempty"`
	// Event is the kind (one of the Event* constants).
	Event string `json:"event"`
	// Victim names the victim a tensor-complete / victim-delivered /
	// degraded event belongs to.
	Victim string `json:"victim,omitempty"`
	// Tensor is the boundary that fired a tensor-complete ("restored"
	// when a resume re-credits checkpointed work in one jump).
	Tensor string `json:"tensor,omitempty"`
	// Completed/Planned carry the victim's cumulative simulated units at
	// a tensor-complete boundary.
	Completed int64 `json:"completed,omitempty"`
	Planned   int64 `json:"planned,omitempty"`
	// Reason annotates interrupted (shutdown/budget), degraded, and
	// failed events.
	Reason string `json:"reason,omitempty"`
}

// ledger is the append handle of one campaign's events.ndjson.
type ledger struct {
	mu   sync.Mutex
	f    *os.File
	seq  int64
	size int64 // bytes of whole lines on disk (readers never see a torn tail)
}

// openLedger opens (creating if absent) a campaign's ledger for append.
// An existing file is scanned first: the last full line fixes the next
// sequence number, and a torn final line — a crash mid-append — is
// truncated away so the file holds only whole events.
func openLedger(path string) (*ledger, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("service: read ledger: %w", err)
	}
	whole := len(data)
	if i := bytes.LastIndexByte(data, '\n'); i < len(data)-1 {
		whole = i + 1 // torn tail: keep through the last newline
	}
	var seq int64
	for _, line := range bytes.Split(data[:whole], []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		var ev Event
		if json.Unmarshal(line, &ev) == nil && ev.Seq > seq {
			seq = ev.Seq
		}
	}
	if whole < len(data) {
		if err := os.Truncate(path, int64(whole)); err != nil {
			return nil, fmt.Errorf("service: truncate torn ledger tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: open ledger: %w", err)
	}
	return &ledger{f: f, seq: seq, size: int64(whole)}, nil
}

// append stamps the event with the next sequence number and the current
// wall time, writes it as one line, and returns the bytes now visible.
func (l *ledger) append(ev Event) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	ev.Seq = l.seq
	ev.Time = time.Now().UTC().Format(time.RFC3339Nano)
	line, err := json.Marshal(&ev)
	if err != nil {
		return l.size, err
	}
	if _, err := l.f.Write(append(line, '\n')); err != nil {
		return l.size, err
	}
	l.size += int64(len(line)) + 1
	return l.size, nil
}

// bytes returns how many whole-line bytes the ledger holds.
func (l *ledger) bytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

func (l *ledger) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// ReadLedgerFile parses a campaign's events.ndjson. A torn final line
// (crash mid-append) is skipped, matching what openLedger would truncate.
func ReadLedgerFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readLedger(f)
}

func readLedger(r io.Reader) ([]Event, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if i := bytes.LastIndexByte(data, '\n'); i >= 0 {
		data = data[:i+1]
	} else {
		data = nil
	}
	var events []Event
	for ln, line := range bytes.Split(data, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("ledger line %d: %w", ln+1, err)
		}
		events = append(events, ev)
	}
	return events, nil
}

// runningSet is the set of kinds a live campaign emits between start and
// its next pause or terminal.
var runningSet = map[string]bool{
	EventStarted:         true,
	EventResumed:         true,
	EventTensorComplete:  true,
	EventVictimDelivered: true,
	EventDegraded:        true,
}

// ValidateLedger checks a campaign ledger's invariants:
//
//   - Seq strictly increases (no duplicates, no regressions);
//   - the first event is "queued" and every transition is legal:
//     queued → started | interrupted | failed; any running-set event
//     (started, resumed, tensor-complete, victim-delivered, degraded) →
//     running-set | interrupted | done | failed; interrupted → resumed,
//     or started when the campaign was parked before it ever ran;
//   - "done" and "failed" are terminal and appear at most once;
//   - tensor-complete unit counters never regress per victim.
func ValidateLedger(events []Event) error {
	if len(events) == 0 {
		return fmt.Errorf("ledger is empty")
	}
	var lastSeq int64
	prev := ""
	started := false
	unitFloor := map[string]int64{}
	for i, ev := range events {
		if ev.Seq <= lastSeq {
			return fmt.Errorf("event %d (%s): seq %d not after %d", i, ev.Event, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		legal := false
		switch {
		case prev == "":
			legal = ev.Event == EventQueued
		case prev == EventQueued:
			legal = ev.Event == EventStarted || ev.Event == EventInterrupted || ev.Event == EventFailed
		case runningSet[prev]:
			legal = (runningSet[ev.Event] && ev.Event != EventStarted) ||
				ev.Event == EventInterrupted || ev.Event == EventDone || ev.Event == EventFailed
		case prev == EventInterrupted:
			// A resume continues; "started" is the parked-before-first-run
			// case (queued → interrupted by budget → eventually started).
			legal = ev.Event == EventResumed || (ev.Event == EventStarted && !started)
		}
		if !legal {
			return fmt.Errorf("event %d: illegal transition %q → %q", i, prev, ev.Event)
		}
		if ev.Event == EventStarted {
			started = true
		}
		if ev.Event == EventTensorComplete {
			if ev.Completed < unitFloor[ev.Victim] {
				return fmt.Errorf("event %d: victim %q completed units regressed %d → %d",
					i, ev.Victim, unitFloor[ev.Victim], ev.Completed)
			}
			unitFloor[ev.Victim] = ev.Completed
		}
		prev = ev.Event
	}
	return nil
}

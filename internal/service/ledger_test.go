package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

func TestLedgerSeqContinuesAndTornTailTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.ndjson")
	l, err := openLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{EventQueued, EventStarted} {
		if _, err := l.append(Event{Event: kind}); err != nil {
			t.Fatal(err)
		}
	}
	l.close()

	// Simulate a crash mid-append: a torn final line with no newline.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString(`{"seq":3,"event":"tensor-`)
	f.Close()

	l2, err := openLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.append(Event{Event: EventInterrupted, Reason: ReasonShutdown}); err != nil {
		t.Fatal(err)
	}
	l2.close()

	events, err := ReadLedgerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3 (torn tail dropped): %+v", len(events), events)
	}
	// The reopened ledger continues the sequence from the last whole line.
	if events[2].Seq != 3 || events[2].Event != EventInterrupted {
		t.Fatalf("post-recovery event = %+v, want seq 3 interrupted", events[2])
	}
	if err := ValidateLedger(events); err != nil {
		t.Fatal(err)
	}
}

func TestValidateLedgerRejectsIllegalHistories(t *testing.T) {
	ev := func(seq int64, kind string) Event { return Event{Seq: seq, Event: kind} }
	cases := []struct {
		name   string
		events []Event
	}{
		{"empty", nil},
		{"starts unqueued", []Event{ev(1, EventStarted)}},
		{"seq regresses", []Event{ev(1, EventQueued), ev(1, EventStarted)}},
		{"done then more", []Event{ev(1, EventQueued), ev(2, EventStarted), ev(3, EventDone), ev(4, EventResumed)}},
		{"double done", []Event{ev(1, EventQueued), ev(2, EventStarted), ev(3, EventDone), ev(4, EventDone)}},
		{"resume without interrupt", []Event{ev(1, EventQueued), ev(2, EventResumed)}},
		{"restart mid-run", []Event{ev(1, EventQueued), ev(2, EventStarted), ev(3, EventStarted)}},
		{"units regress", []Event{ev(1, EventQueued), ev(2, EventStarted),
			{Seq: 3, Event: EventTensorComplete, Victim: "v", Completed: 10},
			{Seq: 4, Event: EventTensorComplete, Victim: "v", Completed: 4}}},
	}
	for _, tc := range cases {
		if err := ValidateLedger(tc.events); err == nil {
			t.Fatalf("%s: validated, want error", tc.name)
		}
	}
	legal := []Event{
		ev(1, EventQueued), ev(2, EventStarted),
		{Seq: 3, Event: EventTensorComplete, Victim: "v", Completed: 4, Planned: 10},
		ev(4, EventInterrupted), ev(5, EventResumed),
		{Seq: 6, Event: EventTensorComplete, Victim: "v", Completed: 10, Planned: 10},
		ev(7, EventVictimDelivered), ev(8, EventDone),
	}
	if err := ValidateLedger(legal); err != nil {
		t.Fatalf("legal history rejected: %v", err)
	}
}

// readLedgerDir loads and validates a campaign's ledger from disk.
func readLedgerDir(t *testing.T, dir, id string) []Event {
	t.Helper()
	events, err := ReadLedgerFile(filepath.Join(dir, "campaigns", id, "events.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateLedger(events); err != nil {
		t.Fatalf("ledger invalid: %v\nevents: %+v", err, events)
	}
	return events
}

func kinds(events []Event) map[string]int {
	m := map[string]int{}
	for _, ev := range events {
		m[ev.Event]++
	}
	return m
}

// TestTelemetryKillResumeAndWorkerInvariance is the tentpole's service
// acceptance: a campaign killed mid-extraction and restarted yields one
// valid ledger (monotonic seq, legal transitions, interrupted→resumed),
// its progress never regresses and ends at exactly 1.0, and the
// deterministic progress fields are byte-identical to an uninterrupted
// 1-worker control AND to a 4-worker run.
func TestTelemetryKillResumeAndWorkerInvariance(t *testing.T) {
	_, z := getAttack(t)
	victims := victimNames(z, len(z.FineTuned))
	spec := CampaignSpec{Tenant: "ops", Victims: victims, MeasureSeed: 3}

	finalProgress := func(dir string, workers int, interrupt bool) (CampaignStatus, []Event) {
		sp := spec
		sp.Workers = workers
		s1 := newServer(t, dir, nil)
		st, err := s1.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		if interrupt {
			waitState(t, s1, st.ID, StateRunning, StateDone)
			drain(t, s1) // the in-process stand-in for a daemon kill
			s2 := newServer(t, dir, nil)
			final := waitState(t, s2, st.ID, StateDone, StateFailed)
			drain(t, s2)
			if final.State != StateDone {
				t.Fatalf("resumed campaign: %+v", final)
			}
			return final, readLedgerDir(t, dir, st.ID)
		}
		final := waitState(t, s1, st.ID, StateDone, StateFailed)
		drain(t, s1)
		if final.State != StateDone {
			t.Fatalf("campaign: %+v", final)
		}
		return final, readLedgerDir(t, dir, st.ID)
	}

	control, controlLedger := finalProgress(t.TempDir(), 1, false)
	if control.Progress == nil || control.Progress.Fraction != 1.0 {
		t.Fatalf("control progress = %+v, want fraction exactly 1.0", control.Progress)
	}
	if control.Progress.PlannedUnits == 0 ||
		control.Progress.CompletedUnits != control.Progress.PlannedUnits {
		t.Fatalf("control units = %d/%d, want equal and nonzero",
			control.Progress.CompletedUnits, control.Progress.PlannedUnits)
	}
	if control.Progress.VictimsDone != len(victims) {
		t.Fatalf("control victims done = %d, want %d", control.Progress.VictimsDone, len(victims))
	}
	ck := kinds(controlLedger)
	if ck[EventQueued] != 1 || ck[EventStarted] != 1 || ck[EventDone] != 1 ||
		ck[EventVictimDelivered] != len(victims) || ck[EventTensorComplete] == 0 {
		t.Fatalf("control ledger kinds = %v", ck)
	}
	// Timestamps persist through the lifecycle (satellite: the old code
	// kept admission time in memory only).
	if control.SubmittedAt == nil || control.StartedAt == nil || control.FinishedAt == nil {
		t.Fatalf("missing lifecycle timestamps: %+v", control)
	}
	if control.StartedAt.Before(*control.SubmittedAt) || control.FinishedAt.Before(*control.StartedAt) {
		t.Fatalf("timestamps out of order: %v / %v / %v",
			control.SubmittedAt, control.StartedAt, control.FinishedAt)
	}
	controlJSON, _ := json.Marshal(control.Progress)

	// Kill mid-run, restart, finish: one ledger spanning both processes.
	resumed, resumedLedger := finalProgress(t.TempDir(), 1, true)
	rk := kinds(resumedLedger)
	if rk[EventInterrupted] == 0 || rk[EventResumed] == 0 {
		t.Fatalf("resumed ledger never interrupted/resumed: %v", rk)
	}
	if rk[EventDone] != 1 {
		t.Fatalf("resumed ledger done count = %d, want 1", rk[EventDone])
	}
	resumedJSON, _ := json.Marshal(resumed.Progress)
	if !bytes.Equal(resumedJSON, controlJSON) {
		t.Fatalf("kill/resume progress differs from control:\ncontrol: %s\nresumed: %s",
			controlJSON, resumedJSON)
	}

	// Worker invariance: 4 victim workers, same deterministic snapshot.
	wide, _ := finalProgress(t.TempDir(), 4, false)
	wideJSON, _ := json.Marshal(wide.Progress)
	if !bytes.Equal(wideJSON, controlJSON) {
		t.Fatalf("4-worker progress differs from control:\ncontrol: %s\n4w: %s",
			controlJSON, wideJSON)
	}
}

// TestProgressAndEventsEndpoints drives the two new HTTP surfaces: the
// progress document and the follow-mode NDJSON event stream.
func TestProgressAndEventsEndpoints(t *testing.T) {
	_, z := getAttack(t)
	dir := t.TempDir()
	s := newServer(t, dir, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(CampaignSpec{Tenant: "web", Victims: victimNames(z, 2)})
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st CampaignStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()

	// Follow the event stream while the campaign runs: lines arrive with
	// strictly increasing seq and the stream closes at the terminal event.
	eresp, err := http.Get(ts.URL + "/campaigns/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	sc := bufio.NewScanner(eresp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	eresp.Body.Close()
	if err := ValidateLedger(events); err != nil {
		t.Fatalf("streamed ledger invalid: %v", err)
	}
	if last := events[len(events)-1].Event; last != EventDone {
		t.Fatalf("stream ended on %q, want done", last)
	}

	var pr ProgressResponse
	presp, err := http.Get(ts.URL + "/campaigns/" + st.ID + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(presp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if pr.ID != st.ID || pr.State != StateDone {
		t.Fatalf("progress response = %+v", pr)
	}
	if pr.Progress == nil || pr.Progress.Fraction != 1.0 || len(pr.Progress.Victims) != 2 {
		t.Fatalf("progress payload = %+v, want fraction 1.0 over 2 victims", pr.Progress)
	}

	if resp, err := http.Get(ts.URL + "/campaigns/nope/progress"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign progress: %v %v", resp.StatusCode, err)
	}
	drain(t, s)
}

package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"decepticon/internal/core"
	"decepticon/internal/obs"
	"decepticon/internal/zoo"
)

// Config configures a campaign server.
type Config struct {
	// Dir is the durable root: Dir/campaigns/<id>/{spec.json, status.json,
	// ckpt/, results.ndjson}. A server restarted on the same Dir recovers
	// every campaign: queued ones re-queue, interrupted ones resume from
	// their extraction checkpoints byte-identically.
	Dir string
	// Attack is the prepared attack shared by every campaign (the zoo and
	// classifier are read-only across concurrent campaigns).
	Attack *core.Attack
	// Obs receives the service metrics; nil runs un-instrumented.
	Obs *obs.Registry
	// QueueLimit bounds campaigns waiting for a runner (running campaigns
	// excluded); submissions beyond it are rejected with ErrQueueFull.
	// <= 0 selects 16.
	QueueLimit int
	// Runners is how many campaigns execute concurrently. <= 0 selects 1.
	Runners int
	// VictimWorkers is the per-campaign victim concurrency when the spec
	// does not choose. <= 0 selects 1.
	VictimWorkers int
	// Tenants maps tenant names to their budgets and priorities; a tenant
	// not listed gets DefaultTenant.
	Tenants map[string]TenantConfig
	// DefaultTenant is the allowance for tenants absent from Tenants
	// (zero value: unlimited budget, priority 0).
	DefaultTenant TenantConfig
	// RetryAfter is the backoff hint attached to 429 responses. <= 0
	// selects 1s.
	RetryAfter time.Duration
}

// Admission errors. The HTTP layer maps them onto status codes; embedded
// users can errors.Is against them.
var (
	// ErrQueueFull: the bounded campaign queue is at QueueLimit (429).
	ErrQueueFull = errors.New("service: campaign queue full")
	// ErrBudgetExhausted: the tenant has no oracle budget left (429) —
	// raising the budget and resubmitting (or restarting the daemon with
	// a bigger allowance) resumes parked campaigns.
	ErrBudgetExhausted = errors.New("service: tenant read budget exhausted")
	// ErrDraining: the server got its shutdown signal and admits nothing
	// new (503).
	ErrDraining = errors.New("service: draining")
)

// ValidationError marks a malformed spec (HTTP 400).
type ValidationError struct{ msg string }

func (e *ValidationError) Error() string { return e.msg }

func validationErrf(format string, args ...any) error {
	return &ValidationError{msg: fmt.Sprintf(format, args...)}
}

// Server is a running campaign service: a durable queue of campaigns
// executed by a fixed pool of runners over one shared Attack.
type Server struct {
	cfg Config
	reg *obs.Registry

	mu        sync.Mutex
	sched     *sync.Cond           // wakes runners: queue grew or drain began
	campaigns map[string]*campaign // by id
	queue     []*campaign          // StateQueued, awaiting a runner
	spent     map[string]int64     // tenant → oracle attempts charged
	burn      map[string]*burnState
	tenants   map[string]bool // every tenant ever seen (for /tenants)
	running   int
	draining  bool
	nextSeq   int64

	runCtx    context.Context
	runCancel context.CancelFunc
	wg        sync.WaitGroup
}

// New recovers the durable state under cfg.Dir and starts the runner
// pool. Campaigns found queued are re-queued; campaigns found running or
// interrupted-by-shutdown resume from their checkpoints; campaigns
// interrupted by budget re-queue only if their tenant now has budget.
// Call Drain to stop.
func New(cfg Config) (*Server, error) {
	if cfg.Attack == nil {
		return nil, errors.New("service: Config.Attack is required")
	}
	if cfg.Dir == "" {
		return nil, errors.New("service: Config.Dir is required")
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 16
	}
	if cfg.Runners <= 0 {
		cfg.Runners = 1
	}
	if cfg.VictimWorkers <= 0 {
		cfg.VictimWorkers = 1
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "campaigns"), 0o755); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	s := &Server{
		cfg:       cfg,
		reg:       cfg.Obs,
		campaigns: map[string]*campaign{},
		spent:     map[string]int64{},
		burn:      map[string]*burnState{},
		tenants:   map[string]bool{},
		nextSeq:   1,
	}
	s.sched = sync.NewCond(&s.mu)
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	for name := range cfg.Tenants {
		s.tenants[name] = true
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Runners; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	return s, nil
}

// tenant returns the allowance for a tenant name.
func (s *Server) tenant(name string) TenantConfig {
	if tc, ok := s.cfg.Tenants[name]; ok {
		return tc
	}
	return s.cfg.DefaultTenant
}

// remainingLocked returns the tenant's unspent budget; s.mu held.
// Unlimited tenants report a large positive number.
func (s *Server) remainingLocked(name string) int64 {
	tc := s.tenant(name)
	if tc.ReadBudget <= 0 {
		return 1 << 62
	}
	return tc.ReadBudget - s.spent[name]
}

// recover rebuilds in-memory state from Dir after a restart.
func (s *Server) recover() error {
	root := filepath.Join(s.cfg.Dir, "campaigns")
	entries, err := os.ReadDir(root)
	if err != nil {
		return fmt.Errorf("service: recover: %w", err)
	}
	log := s.reg.Log()
	var recovered []*campaign
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		c, err := loadCampaign(s, filepath.Join(root, e.Name()))
		if err != nil {
			log.Warn("service: skipping unreadable campaign dir", "dir", e.Name(), "err", err)
			continue
		}
		s.campaigns[c.st.ID] = c
		s.tenants[c.st.Tenant] = true
		if c.st.Seq >= s.nextSeq {
			s.nextSeq = c.st.Seq + 1
		}
		// Spend already paid is real regardless of state: the ledger must
		// survive restarts or a crash would mint budget.
		s.spent[c.st.Tenant] += c.st.Spent
		recovered = append(recovered, c)
	}
	sort.Slice(recovered, func(i, j int) bool { return recovered[i].st.Seq < recovered[j].st.Seq })
	for _, c := range recovered {
		switch c.st.State {
		case StateQueued:
			s.queue = append(s.queue, c)
		case StateRunning:
			// The previous process died mid-run; the checkpoints on disk are
			// the truth. Close the ledger's open lifecycle (the crash never
			// got to write its own interruption) and re-queue for resume.
			c.event(Event{Event: EventInterrupted, Reason: ReasonShutdown})
			c.st.State = StateQueued
			c.st.Reason = ""
			c.persistStatus()
			s.queue = append(s.queue, c)
			s.counter("service.campaigns_recovered").Inc()
			log.Info("service: recovered in-flight campaign", "id", c.st.ID)
		case StateInterrupted:
			if c.st.Reason == ReasonBudget && s.remainingLocked(c.st.Tenant) <= 0 {
				// Still parked: the tenant's allowance has not grown.
				continue
			}
			c.st.State = StateQueued
			c.st.Reason = ""
			c.persistStatus()
			s.queue = append(s.queue, c)
			s.counter("service.campaigns_recovered").Inc()
			log.Info("service: resuming interrupted campaign", "id", c.st.ID)
		}
	}
	s.queueGaugeLocked()
	return nil
}

// counter is the registry counter helper (nil-safe through obs).
func (s *Server) counter(name string) *obs.Counter { return s.reg.Counter(name) }

func (s *Server) queueGaugeLocked() {
	s.reg.Gauge("service.queue_depth").Set(float64(len(s.queue)))
	s.reg.Gauge("service.campaigns_running").Set(float64(s.running))
}

// resolveVictims maps a spec's victim names onto zoo models; empty
// attacks the whole fine-tuned population.
func (s *Server) resolveVictims(spec CampaignSpec) ([]*zoo.FineTuned, error) {
	z := s.cfg.Attack.Zoo
	if len(spec.Victims) == 0 {
		return z.FineTuned, nil
	}
	out := make([]*zoo.FineTuned, 0, len(spec.Victims))
	for _, name := range spec.Victims {
		ft := z.FineTunedByName(name)
		if ft == nil {
			return nil, validationErrf("unknown victim %q", name)
		}
		out = append(out, ft)
	}
	return out, nil
}

// Submit validates a spec, admits it through the queue/budget gates, and
// persists it durably before returning — the returned status's spec file
// is on disk, so a crash immediately after Submit loses nothing.
func (s *Server) Submit(spec CampaignSpec) (CampaignStatus, error) {
	if spec.Tenant == "" {
		return CampaignStatus{}, validationErrf("spec.tenant is required")
	}
	victims, err := s.resolveVictims(spec)
	if err != nil {
		return CampaignStatus{}, err
	}
	if _, err := parseFaults(spec.Faults); err != nil {
		return CampaignStatus{}, validationErrf("spec.faults: %v", err)
	}
	if spec.ReadBudget < 0 {
		return CampaignStatus{}, validationErrf("spec.read_budget must be >= 0")
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.counter("service.rejected_draining").Inc()
		return CampaignStatus{}, ErrDraining
	}
	if len(s.queue) >= s.cfg.QueueLimit {
		s.mu.Unlock()
		s.counter("service.rejected_queue_full").Inc()
		return CampaignStatus{}, ErrQueueFull
	}
	if s.remainingLocked(spec.Tenant) <= 0 {
		s.mu.Unlock()
		s.counter("service.rejected_budget").Inc()
		s.counter("service.tenant." + metricName(spec.Tenant) + ".rejected_budget").Inc()
		return CampaignStatus{}, ErrBudgetExhausted
	}
	seq := s.nextSeq
	s.nextSeq++
	id := fmt.Sprintf("c%06d", seq)
	now := time.Now().UTC()
	c := newCampaign(s, filepath.Join(s.cfg.Dir, "campaigns", id), spec, CampaignStatus{
		ID:          id,
		Seq:         seq,
		Tenant:      spec.Tenant,
		State:       StateQueued,
		Victims:     len(victims),
		SubmittedAt: &now,
	})
	// Depth observed by this admission, before it joins the queue.
	s.reg.Histogram("service.admit_queue_depth").Observe(float64(len(s.queue)))
	if err := c.persistNew(); err != nil {
		s.mu.Unlock()
		return CampaignStatus{}, err
	}
	s.campaigns[id] = c
	s.tenants[spec.Tenant] = true
	c.event(Event{Event: EventQueued})
	s.queue = append(s.queue, c)
	s.queueGaugeLocked()
	s.counter("service.campaigns_admitted").Inc()
	s.counter("service.tenant." + metricName(spec.Tenant) + ".campaigns").Inc()
	st := c.snapshot()
	s.sched.Broadcast()
	s.mu.Unlock()
	return st, nil
}

// Campaign returns a campaign's current status.
func (s *Server) Campaign(id string) (CampaignStatus, bool) {
	s.mu.Lock()
	c := s.campaigns[id]
	s.mu.Unlock()
	if c == nil {
		return CampaignStatus{}, false
	}
	return c.snapshot(), true
}

// Campaigns lists every known campaign in admission order.
func (s *Server) Campaigns() []CampaignStatus {
	s.mu.Lock()
	all := make([]*campaign, 0, len(s.campaigns))
	for _, c := range s.campaigns {
		all = append(all, c)
	}
	s.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].st.Seq < all[j].st.Seq })
	out := make([]CampaignStatus, len(all))
	for i, c := range all {
		out[i] = c.snapshot()
	}
	return out
}

// Tenants reports every tenant's budget position, sorted by name.
func (s *Server) Tenants() []TenantStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]TenantStatus, 0, len(names))
	for _, name := range names {
		tc := s.tenant(name)
		n := 0
		for _, c := range s.campaigns {
			if c.st.Tenant == name {
				n++
			}
		}
		out = append(out, TenantStatus{
			Name:      name,
			Priority:  tc.Priority,
			Budget:    tc.ReadBudget,
			Spent:     s.spent[name],
			Campaigns: n,
		})
	}
	return out
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// QueueDepth returns (queued, running) — exposed for the load harness's
// bounded-queue assertion.
func (s *Server) QueueDepth() (int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue), s.running
}

// Drain gracefully stops the server: admission closes (ErrDraining),
// every running campaign's context is cancelled so its in-flight
// extractions checkpoint at the next tensor boundary, the interrupted
// statuses persist, and Drain returns when the runner pool has wound
// down (or ctx expires first, returning its error — the durable state is
// still consistent: statuses persist as each runner exits).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.reg.Log().Info("service: draining", "queued", len(s.queue), "running", s.running)
	}
	s.sched.Broadcast()
	s.mu.Unlock()
	s.runCancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain: %w", ctx.Err())
	}
}

// runner executes campaigns until drain.
func (s *Server) runner() {
	defer s.wg.Done()
	for {
		c := s.next()
		if c == nil {
			return
		}
		s.execute(c)
	}
}

// next blocks until a campaign is runnable (or drain), picking the
// highest-priority tenant's oldest campaign. Queued campaigns whose
// tenant is already exhausted are parked as interrupted-by-budget
// instead of occupying a runner.
func (s *Server) next() *campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.draining {
			return nil
		}
		if c := s.pickLocked(); c != nil {
			s.running++
			s.queueGaugeLocked()
			return c
		}
		s.sched.Wait()
	}
}

// pickLocked removes and returns the best runnable queued campaign, or
// nil. s.mu held.
func (s *Server) pickLocked() *campaign {
	for {
		best := -1
		for i, c := range s.queue {
			if best < 0 {
				best = i
				continue
			}
			pi := s.tenant(s.queue[i].st.Tenant).Priority
			pb := s.tenant(s.queue[best].st.Tenant).Priority
			if pi > pb || (pi == pb && c.st.Seq < s.queue[best].st.Seq) {
				best = i
			}
		}
		if best < 0 {
			return nil
		}
		c := s.queue[best]
		s.queue = append(s.queue[:best], s.queue[best+1:]...)
		if s.remainingLocked(c.st.Tenant) <= 0 {
			// Exhausted before it ever ran: park it resumable.
			c.park(ReasonBudget)
			s.counter("service.campaigns_interrupted").Inc()
			s.queueGaugeLocked()
			continue
		}
		s.queueGaugeLocked()
		return c
	}
}

// burnState is one tenant's EWMA spend rate (oracle attempts/second) —
// wall-clock telemetry feeding the burn-rate and time-to-exhaustion
// gauges, same ~30s horizon as the progress tracker's ETA.
type burnState struct {
	seen bool
	last time.Time
	rate float64
}

// noteBurnLocked folds a spend delta into the tenant's burn gauges.
// s.mu held. ttl_exhaustion_s is -1 when unknowable (unlimited budget,
// or no observed rate yet).
func (s *Server) noteBurnLocked(tenant string, delta int64) {
	b := s.burn[tenant]
	if b == nil {
		b = &burnState{}
		s.burn[tenant] = b
	}
	now := time.Now()
	if !b.seen {
		b.seen = true
		b.last = now
	} else if dt := now.Sub(b.last).Seconds(); dt > 0 {
		inst := float64(delta) / dt
		alpha := 1 - math.Exp(-dt/30)
		b.rate += alpha * (inst - b.rate)
		b.last = now
	}
	name := metricName(tenant)
	s.reg.Gauge("service.tenant." + name + ".burn_rate").Set(b.rate)
	ttl := -1.0
	if tc := s.tenant(tenant); tc.ReadBudget > 0 && b.rate > 1e-9 {
		remaining := tc.ReadBudget - s.spent[tenant]
		if remaining < 0 {
			remaining = 0
		}
		ttl = float64(remaining) / b.rate
	}
	s.reg.Gauge("service.tenant." + name + ".ttl_exhaustion_s").Set(ttl)
}

// chargeTenant books a campaign's freshly recounted spend and reports
// whether the tenant is now exhausted.
func (s *Server) chargeTenant(tenant string, delta int64) (exhausted bool) {
	if delta > 0 {
		s.counter("service.tenant." + metricName(tenant) + ".spent").Add(delta)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spent[tenant] += delta
	s.noteBurnLocked(tenant, delta)
	return s.remainingLocked(tenant) <= 0
}

// execute runs one campaign to a terminal or interrupted state.
func (s *Server) execute(c *campaign) {
	defer func() {
		s.mu.Lock()
		s.running--
		s.queueGaugeLocked()
		s.mu.Unlock()
	}()
	ctx, cancel := context.WithCancel(s.runCtx)
	defer cancel()

	victims, err := s.resolveVictims(c.spec)
	if err == nil && len(victims) == 0 {
		err = errors.New("no victims in zoo")
	}
	plan, perr := parseFaults(c.spec.Faults)
	if err == nil {
		err = perr
	}
	var sink *resultSink
	if err == nil {
		sink, err = c.openResults()
	}
	log := s.reg.Log().With("campaign", c.st.ID, "tenant", c.st.Tenant)
	if err != nil {
		c.finish(StateFailed, "", err.Error(), nil)
		s.counter("service.campaigns_failed").Inc()
		log.Error("campaign failed before start", "err", err)
		return
	}
	defer sink.Close()

	// The progress tracker. Items pre-register in resolved victim input
	// order — the exported breakdown is then worker-invariant — and a
	// restarted campaign seeds each victim's ratchets from the persisted
	// progress before the stream starts, so the exposed fraction never
	// regresses across a kill/resume (extraction re-credits the same
	// units from its checkpoint and climbs onward from here).
	tracker := obs.NewProgress()
	tracker.SetTotalItems(len(victims))
	for _, v := range victims {
		tracker.Item(v.Name)
	}
	c.mu.Lock()
	prior := c.st.Progress
	c.mu.Unlock()
	if prior != nil {
		for _, vp := range prior.Victims {
			it := tracker.Item(vp.Victim)
			it.SetPlanned(vp.Planned)
			it.Complete(vp.Completed, "restored")
			if vp.Done {
				it.MarkDone()
			}
		}
	}
	// Installed after seeding: the seed replay above is bookkeeping, not
	// fresh work, and must not emit ledger events before "resumed".
	tracker.OnEvent(func(ev obs.ProgressEvent) {
		if ev.Kind == obs.ProgressUnits {
			c.event(Event{
				Event: EventTensorComplete, Victim: ev.Item, Tensor: ev.Detail,
				Completed: ev.Completed, Planned: ev.Planned,
			})
		}
		c.observeProgress(tracker.Snapshot(), ev.Kind == obs.ProgressDone)
	})
	c.setTracker(tracker)

	wait := c.setRunning()
	s.reg.Histogram("service.queue_wait_ms").Observe(float64(wait.Milliseconds()))
	log.Info("campaign start", "victims", c.st.Victims)

	seed := c.spec.MeasureSeed
	if seed == 0 {
		seed = 1
	}
	workers := c.spec.Workers
	if workers <= 0 {
		workers = s.cfg.VictimWorkers
	}
	opt := core.RunOptions{
		MeasureSeed:         seed,
		FaultPlan:           plan,
		ScheduledExtraction: c.spec.Scheduled,
		CheckpointDir:       filepath.Join(c.dir, "ckpt"),
		Resume:              true,
		ReadBudget:          c.spec.ReadBudget,
		Workers:             workers,
		Progress:            tracker,
		// A long-running daemon must not accumulate every attacked
		// victim's tensors: drop them once each report is final. With a
		// store-backed zoo the resident set tracks the victims in flight;
		// for a built-in-memory zoo Release is a no-op.
		ReleaseModels: true,
	}
	rs := s.cfg.Attack.RunAllStream(ctx, victims, opt)
	var cum int64 // this run's cumulative oracle attempts (restored included)
	budgetStop := false
	idx := 0
	for {
		rep, ok := rs.Next()
		if !ok {
			break
		}
		line, merr := json.Marshal(victimResult(idx, rep))
		if merr != nil {
			// A report that cannot serialize is a programming error; fail
			// the campaign loudly rather than drop the line silently.
			cancel()
			c.finish(StateFailed, "", fmt.Sprintf("marshal report: %v", merr), nil)
			s.counter("service.campaigns_failed").Inc()
			return
		}
		if rep.Extract != nil {
			cum += rep.Extract.OracleAttempts()
		}
		delta, werr := c.deliver(sink, line, cum)
		if werr != nil {
			cancel()
			c.finish(StateFailed, "", fmt.Sprintf("write results: %v", werr), nil)
			s.counter("service.campaigns_failed").Inc()
			return
		}
		c.event(Event{Event: EventVictimDelivered, Victim: rep.Victim})
		if rep.IdentifyDegraded || (rep.Extract != nil && rep.Extract.TensorsDegraded > 0) {
			reason := "identify degraded to surviving modalities"
			if rep.Extract != nil && rep.Extract.TensorsDegraded > 0 {
				reason = fmt.Sprintf("%d tensors fell back to baseline under faults",
					rep.Extract.TensorsDegraded)
			}
			c.event(Event{Event: EventDegraded, Victim: rep.Victim, Reason: reason})
		}
		if s.chargeTenant(c.st.Tenant, delta) && !budgetStop {
			// Tenant budget gone: stop the campaign through the checkpoint
			// door. Reports already buffered in the stream's window still
			// deliver; in-flight victims checkpoint.
			budgetStop = true
			log.Warn("tenant budget exhausted; interrupting campaign")
			cancel()
		}
		idx++
	}
	runErr := rs.Err()
	// The final deterministic progress position rides in the same
	// status.json write as the terminal state below (forced persist).
	c.observeProgress(tracker.Snapshot(), true)
	sum := summarize(rs.Campaign())
	switch {
	case runErr == nil:
		c.finish(StateDone, "", "", sum)
		s.counter("service.campaigns_done").Inc()
		log.Info("campaign done", "identified", sum.Identified, "victims", sum.Victims)
	case errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded):
		reason := ReasonShutdown
		if budgetStop {
			reason = ReasonBudget
		}
		c.finish(StateInterrupted, reason, "", nil)
		s.counter("service.campaigns_interrupted").Inc()
		log.Warn("campaign interrupted", "reason", reason, "delivered", idx)
	default:
		c.finish(StateFailed, "", runErr.Error(), nil)
		s.counter("service.campaigns_failed").Inc()
		log.Error("campaign failed", "err", runErr)
	}
}

package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"decepticon/internal/core"
	"decepticon/internal/zoo"
)

var (
	prepOnce sync.Once
	testZ    *zoo.Zoo
	testAtk  *core.Attack
)

// getAttack prepares one shared tiny attack for every service test: the
// service itself is what is under test, so the smallest population that
// exercises real extractions keeps the suite fast.
func getAttack(t *testing.T) (*core.Attack, *zoo.Zoo) {
	t.Helper()
	prepOnce.Do(func() {
		testZ = zoo.MustBuild(zoo.TinyBuildConfig())
		atk, err := core.Prepare(testZ, core.PrepareConfig{
			SamplesPerModel: 2, ImgSize: 32, Epochs: 8,
		})
		if err != nil {
			panic(err)
		}
		testAtk = atk
	})
	return testAtk, testZ
}

// newServer builds a server over the shared attack; the default config
// suits most tests and overrides tweak it.
func newServer(t *testing.T, dir string, mut func(*Config)) *Server {
	t.Helper()
	atk, _ := getAttack(t)
	cfg := Config{Dir: dir, Attack: atk, QueueLimit: 4, Runners: 1}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func drain(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// waitState polls until the campaign reaches one of the wanted states.
func waitState(t *testing.T, s *Server, id string, states ...string) CampaignStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, ok := s.Campaign(id)
		if !ok {
			t.Fatalf("campaign %s unknown", id)
		}
		for _, want := range states {
			if st.State == want {
				return st
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck in %s, wanted one of %v", id, st.State, states)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func victimNames(z *zoo.Zoo, n int) []string {
	names := make([]string, 0, n)
	for _, f := range z.FineTuned[:n] {
		names = append(names, f.Name)
	}
	return names
}

func readResults(t *testing.T, dir, id string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "campaigns", id, "results.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestSubmitValidation(t *testing.T) {
	s := newServer(t, t.TempDir(), nil)
	defer drain(t, s)
	var verr *ValidationError
	if _, err := s.Submit(CampaignSpec{}); !errors.As(err, &verr) {
		t.Fatalf("missing tenant: got %v, want ValidationError", err)
	}
	if _, err := s.Submit(CampaignSpec{Tenant: "a", Victims: []string{"nope"}}); !errors.As(err, &verr) {
		t.Fatalf("unknown victim: got %v, want ValidationError", err)
	}
	if _, err := s.Submit(CampaignSpec{Tenant: "a", Faults: "bogus-spec"}); !errors.As(err, &verr) {
		t.Fatalf("bad faults: got %v, want ValidationError", err)
	}
}

// A full queue must reject with ErrQueueFull while the running campaign
// is unaffected — the bounded-queue half of admission control.
func TestQueueFullRejects(t *testing.T) {
	_, z := getAttack(t)
	dir := t.TempDir()
	s := newServer(t, dir, func(c *Config) { c.QueueLimit = 1 })
	defer drain(t, s)

	all := victimNames(z, len(z.FineTuned))
	first, err := s.Submit(CampaignSpec{Tenant: "a", Victims: all})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the runner holds the first campaign so the queue is
	// empty and the accounting below is deterministic.
	waitState(t, s, first.ID, StateRunning, StateDone)
	if _, err := s.Submit(CampaignSpec{Tenant: "a", Victims: all[:1]}); err != nil {
		t.Fatalf("queued submission rejected: %v", err)
	}
	if _, err := s.Submit(CampaignSpec{Tenant: "a", Victims: all[:1]}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-limit submission: got %v, want ErrQueueFull", err)
	}
}

// The byte-identical resume contract, end to end through the service:
// a campaign interrupted by its tenant's budget must park resumable,
// and a restarted server with a raised budget must finish it with
// results and summary byte-identical to an uninterrupted control run.
func TestBudgetInterruptsThenResumesByteIdentical(t *testing.T) {
	// All four tiny victims with a budget below even one victim's spend:
	// the charge check trips at the first delivered extraction, while
	// later victims are still unclaimed, so the interruption cannot race
	// the campaign's natural completion (the overshoot is bounded by the
	// in-flight window, which at tiny scale can cover whole victims).
	_, z := getAttack(t)
	victims := victimNames(z, len(z.FineTuned))
	spec := CampaignSpec{Tenant: "bob", Victims: victims, MeasureSeed: 5}

	// Control: unlimited budget, uninterrupted.
	controlDir := t.TempDir()
	sc := newServer(t, controlDir, nil)
	control, err := sc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	controlSt := waitState(t, sc, control.ID, StateDone, StateFailed)
	if controlSt.State != StateDone {
		t.Fatalf("control campaign: %+v", controlSt)
	}
	drain(t, sc)
	controlBytes := readResults(t, controlDir, control.ID)
	spent := controlSt.Spent
	if spent <= 0 {
		t.Fatalf("control spent %d, want > 0", spent)
	}

	// Budgeted: the allowance covers roughly one of the two victims, so
	// the campaign must be interrupted by budget, not finish.
	dir := t.TempDir()
	s1 := newServer(t, dir, func(c *Config) {
		c.Tenants = map[string]TenantConfig{"bob": {ReadBudget: 1}}
	})
	st, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, s1, st.ID, StateInterrupted, StateDone, StateFailed)
	if got.State != StateInterrupted || got.Reason != ReasonBudget {
		t.Fatalf("budgeted campaign: state %s reason %q, want interrupted/budget", got.State, got.Reason)
	}
	if got.Delivered >= len(victims) {
		t.Fatalf("budget interrupt delivered all %d victims — budget did nothing", got.Delivered)
	}
	drain(t, s1)

	// Same dir, raised budget: recovery must re-queue and resume it.
	s2 := newServer(t, dir, func(c *Config) {
		c.Tenants = map[string]TenantConfig{"bob": {ReadBudget: 100 * spent}}
	})
	final := waitState(t, s2, st.ID, StateDone, StateFailed)
	if final.State != StateDone {
		t.Fatalf("resumed campaign: %+v", final)
	}
	drain(t, s2)

	if resumed := readResults(t, dir, st.ID); !bytes.Equal(resumed, controlBytes) {
		t.Fatalf("resumed results differ from control:\ncontrol:\n%s\nresumed:\n%s", controlBytes, resumed)
	}
	cj, _ := json.Marshal(controlSt.Summary)
	rj, _ := json.Marshal(final.Summary)
	if !bytes.Equal(cj, rj) {
		t.Fatalf("resumed summary differs from control:\n%s\n%s", cj, rj)
	}
	if final.Spent != spent {
		t.Fatalf("resumed spend %d, control %d — resume re-paid or dropped oracle attempts", final.Spent, spent)
	}
}

// Drain must leave a running campaign interrupted-but-resumable, and a
// restart on the same dir must finish it byte-identically to a control.
func TestDrainThenRestartResumes(t *testing.T) {
	_, z := getAttack(t)
	victims := victimNames(z, len(z.FineTuned))
	spec := CampaignSpec{Tenant: "a", Victims: victims, MeasureSeed: 9}

	controlDir := t.TempDir()
	sc := newServer(t, controlDir, nil)
	control, err := sc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	controlSt := waitState(t, sc, control.ID, StateDone, StateFailed)
	if controlSt.State != StateDone {
		t.Fatalf("control: %+v", controlSt)
	}
	drain(t, sc)
	controlBytes := readResults(t, controlDir, control.ID)

	dir := t.TempDir()
	s1 := newServer(t, dir, nil)
	st, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s1, st.ID, StateRunning, StateDone)
	drain(t, s1) // cancel mid-extraction; checkpoints land under the campaign dir
	mid, _ := s1.Campaign(st.ID)
	if mid.State == StateFailed {
		t.Fatalf("drained campaign failed: %+v", mid)
	}

	s2 := newServer(t, dir, nil)
	final := waitState(t, s2, st.ID, StateDone, StateFailed)
	drain(t, s2)
	if final.State != StateDone {
		t.Fatalf("recovered campaign: %+v", final)
	}
	if got := readResults(t, dir, st.ID); !bytes.Equal(got, controlBytes) {
		t.Fatalf("post-restart results differ from control")
	}
}

// The HTTP surface: submit → 202, stream follows a live campaign in
// order, queue-full → 429 with Retry-After, draining → 503.
func TestHTTPEndToEnd(t *testing.T) {
	_, z := getAttack(t)
	dir := t.TempDir()
	s := newServer(t, dir, func(c *Config) { c.QueueLimit = 1 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	all := victimNames(z, len(z.FineTuned))
	body, _ := json.Marshal(CampaignSpec{Tenant: "web", Victims: all})
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st CampaignStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, st)
	}

	// Stream while running: lines must arrive in index order and the
	// stream must end only when the campaign stops.
	rresp, err := http.Get(ts.URL + "/campaigns/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(rresp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		var line VictimResult
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.Index != n {
			t.Fatalf("stream out of order: index %d at position %d", line.Index, n)
		}
		n++
	}
	rresp.Body.Close()
	if n != len(all) {
		t.Fatalf("streamed %d lines, want %d", n, len(all))
	}
	final, _ := s.Campaign(st.ID)
	if final.State != StateDone {
		t.Fatalf("campaign after full stream: %+v", final)
	}

	// Fill the queue past its bound: each accepted campaign adds ~300ms
	// of runner backlog against microsecond POSTs, so within a few
	// submissions one must land while the queue is full and bounce with
	// 429 + Retry-After. (A fixed-count two-submission version flaked
	// when a loaded scheduler let the runner drain between POSTs.)
	saw429 := false
	for i := 0; i < 12 && !saw429; i++ {
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			saw429 = true
		} else if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: unexpected %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if !saw429 {
		t.Fatal("never saw 429 with QueueLimit=1 and 3 extra submissions")
	}

	drain(t, s)
	resp, err = http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}

	// Ops surface rides the same mux.
	for _, path := range []string{"/metrics", "/metrics.json", "/debug/vars", "/healthz", "/tenants", "/victims"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
	}
}

// Package service runs the Decepticon attack as a long-running,
// multi-tenant campaign server — the daemon behind cmd/decepticond.
//
// The paper's adversary is not a batch job: one attacker fingerprints
// and extracts secrets from many victim deployments over a long window,
// under a bounded hammer budget. The service models exactly that:
//
//   - campaigns are submitted over HTTP/JSON and queued durably (a spec
//     file on disk before the submit call returns);
//   - a bounded queue plus per-tenant read budgets and priorities form
//     the admission control — a full queue answers 429 with Retry-After,
//     an exhausted tenant's campaigns are interrupted, checkpointed, and
//     parked until the budget is raised;
//   - every campaign runs over core.Attack's streaming pipeline
//     (RunAllStream) with per-victim extraction checkpoints rooted in
//     the campaign's own directory, so a killed daemon resumes every
//     in-flight extraction byte-identically on restart — same clones,
//     same Stats, zero re-paid hammer rounds;
//   - per-victim reports stream out as NDJSON, in victim order, with
//     bounded buffering (readers follow the durable results file, the
//     server never holds a campaign's reports in memory);
//   - SIGTERM drains gracefully: admission stops, in-flight extractions
//     checkpoint at the next tensor boundary, statuses persist, and the
//     artifact flush rides the caller's cliconfig.Runtime teardown.
//
// The obs layer is the ops surface: the daemon's mux exposes /metrics,
// /metrics.json, /debug/vars, and /debug/pprof alongside the campaign
// API, with per-tenant counters and queue-depth/admission histograms.
package service

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"time"

	"decepticon/internal/core"
	"decepticon/internal/obs"
)

// CampaignSpec is the submitted description of one campaign: which
// victims to attack and under what channel/budget regime. It is stored
// verbatim (spec.json) and is the unit of resume — a restarted daemon
// re-runs the spec with Resume semantics.
type CampaignSpec struct {
	// Tenant names the budget/priority bucket this campaign charges.
	Tenant string `json:"tenant"`
	// Victims lists fine-tuned model names from the shared zoo; empty
	// attacks every victim.
	Victims []string `json:"victims,omitempty"`
	// Workers bounds the victims attacked concurrently (<= 0 selects the
	// server default). Results are identical for any value.
	Workers int `json:"workers,omitempty"`
	// MeasureSeed seeds the victim trace measurements (0 selects 1), so
	// distinct campaigns can attack the same victims with independent
	// measurement noise while staying reproducible.
	MeasureSeed uint64 `json:"measure_seed,omitempty"`
	// ReadBudget, when > 0, bounds each victim's oracle attempts; an
	// exceeded victim checkpoints and reports interrupted (the tenant
	// budget is enforced on top, at campaign granularity).
	ReadBudget int64 `json:"read_budget,omitempty"`
	// Faults is a sidechannel.ParseFaultPlan spec for the campaign's
	// rowhammer channel ("" = fault-free).
	Faults string `json:"faults,omitempty"`
	// Scheduled switches extraction to the information-ordered scheduler.
	Scheduled bool `json:"scheduled,omitempty"`
}

// Campaign states.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateInterrupted = "interrupted" // resumable: checkpoints on disk
	StateFailed      = "failed"
)

// Interrupt reasons (CampaignStatus.Reason when State == interrupted).
const (
	ReasonShutdown = "shutdown" // daemon drained or died; resumed on restart
	ReasonBudget   = "budget"   // tenant budget exhausted; parked until raised
)

// CampaignStatus is the durable, queryable state of one campaign
// (status.json, rewritten atomically on every transition and delivery).
type CampaignStatus struct {
	ID     string `json:"id"`
	Seq    int64  `json:"seq"` // admission order, FIFO key within a priority
	Tenant string `json:"tenant"`
	State  string `json:"state"`
	Reason string `json:"reason,omitempty"`
	Error  string `json:"error,omitempty"`
	// Victims is the resolved victim count; Delivered counts reports
	// written to results.ndjson so far (== Victims when done).
	Victims   int `json:"victims"`
	Delivered int `json:"delivered"`
	// Spent is the campaign's metered oracle attempts so far — the
	// quantity charged against the tenant budget. Monotonic across
	// restarts: a resumed run's recount (which includes restored work)
	// only ever ratchets it up.
	Spent int64 `json:"spent"`
	// SubmittedAt/StartedAt/FinishedAt are the campaign's admission,
	// first-start, and terminal wall times. Persisted in status.json (the
	// old in-memory enqueued time silently reset to "now" on every daemon
	// restart, wrecking queue-wait accounting); StartedAt survives
	// restarts so a resume is labelled "resumed", not "started".
	// Wall-clock: excluded from determinism checks.
	SubmittedAt *time.Time `json:"submitted_at,omitempty"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// Progress is the campaign's live sim-unit position (nil until it
	// first runs). Every field is deterministic: byte-identical for any
	// worker count and across kill/resume.
	Progress *CampaignProgress `json:"progress,omitempty"`
	// ETASeconds estimates wall time to completion from the tracker's
	// EWMA rate; 0 when unknown or finished. Wall-clock: set only on live
	// snapshots, never persisted.
	ETASeconds float64 `json:"eta_seconds,omitempty"`
	// Summary is the deterministic campaign aggregate, set on completion.
	Summary *Summary `json:"summary,omitempty"`
}

// CampaignProgress is the deterministic projection of the campaign's
// progress tracker: planned vs completed simulated units (bit reads the
// extraction plan committed to), overall fraction, and the per-victim
// breakdown in victim input order.
type CampaignProgress struct {
	Fraction       float64          `json:"fraction"`
	PlannedUnits   int64            `json:"planned_units"`
	CompletedUnits int64            `json:"completed_units"`
	VictimsDone    int              `json:"victims_done"`
	Victims        []VictimProgress `json:"victims,omitempty"`
}

// VictimProgress is one victim's live position.
type VictimProgress struct {
	Victim    string  `json:"victim"`
	Stage     string  `json:"stage,omitempty"`
	Planned   int64   `json:"planned"`
	Completed int64   `json:"completed"`
	Done      bool    `json:"done"`
	Fraction  float64 `json:"fraction"`
}

// campaignProgress projects a tracker snapshot onto the wire form,
// keeping only the deterministic side (rate/ETA ride separately).
func campaignProgress(pv obs.ProgressValue) *CampaignProgress {
	cp := &CampaignProgress{
		Fraction:       pv.Fraction,
		PlannedUnits:   pv.PlannedUnits,
		CompletedUnits: pv.CompletedUnits,
		VictimsDone:    pv.ItemsDone,
	}
	for _, it := range pv.Items {
		cp.Victims = append(cp.Victims, VictimProgress{
			Victim: it.Name, Stage: it.Stage,
			Planned: it.Planned, Completed: it.Completed,
			Done: it.Done, Fraction: it.Fraction,
		})
	}
	return cp
}

// Terminal reports whether the campaign has stopped moving (done or
// failed — an interrupted campaign is expected to resume).
func (st *CampaignStatus) Terminal() bool {
	return st.State == StateDone || st.State == StateFailed
}

// Summary is the deterministic projection of core.Campaign persisted in
// a campaign's status: every field is a pure function of the per-victim
// reports, so an interrupted-then-resumed campaign's summary is
// byte-identical to an uninterrupted one's.
type Summary struct {
	Victims             int     `json:"victims"`
	Identified          int     `json:"identified"`
	ProbeResolved       int     `json:"probe_resolved"`
	ArchConfirmed       int     `json:"arch_confirmed"`
	ExtractFailed       int     `json:"extract_failed"`
	ExtractSkipped      int     `json:"extract_skipped"`
	ExtractInterrupted  int     `json:"extract_interrupted"`
	TensorsDegraded     int     `json:"tensors_degraded"`
	MeanCoverage        float64 `json:"mean_coverage"`
	MeanMatchRate       float64 `json:"mean_match_rate"`
	MeanReduction       float64 `json:"mean_reduction"`
	TotalBitsRead       int64   `json:"total_bits_read"`
	TotalPhysicalReads  int64   `json:"total_physical_reads"`
	TotalOracleAttempts int64   `json:"total_oracle_attempts"`
	TotalHammerRounds   int64   `json:"total_hammer_rounds"`
}

func summarize(c *core.Campaign) *Summary {
	return &Summary{
		Victims:             c.Victims,
		Identified:          c.Identified,
		ProbeResolved:       c.ProbeResolved,
		ArchConfirmed:       c.ArchConfirmed,
		ExtractFailed:       c.ExtractFailed,
		ExtractSkipped:      c.ExtractSkipped,
		ExtractInterrupted:  c.ExtractInterrupted,
		TensorsDegraded:     c.TensorsDegraded,
		MeanCoverage:        c.MeanCoverage,
		MeanMatchRate:       c.MeanMatchRate,
		MeanReduction:       c.MeanReduction,
		TotalBitsRead:       c.TotalBitsRead,
		TotalPhysicalReads:  c.TotalPhysicalReads,
		TotalOracleAttempts: c.TotalOracleAttempts,
		TotalHammerRounds:   c.TotalHammerRounds(),
	}
}

// VictimResult is one NDJSON line of a campaign's result stream: the
// deterministic projection of a core.Report (the clone model itself
// stays out of band — CloneHash attests it). Lines are written in victim
// input order for any worker count.
type VictimResult struct {
	Index          int     `json:"index"`
	Victim         string  `json:"victim"`
	TruePretrained string  `json:"true_pretrained"`
	Identified     string  `json:"identified"`
	Correct        bool    `json:"correct"`
	ProbeQueries   int     `json:"probe_queries,omitempty"`
	ArchConfirmed  bool    `json:"arch_confirmed"`
	ExtractError   string  `json:"extract_error,omitempty"`
	ExtractSkipped string  `json:"extract_skipped,omitempty"`
	Interrupted    bool    `json:"interrupted,omitempty"`
	MatchRate      float64 `json:"match_rate"`
	VictimAcc      float64 `json:"victim_acc"`
	CloneAcc       float64 `json:"clone_acc"`
	LogicalBits    int64   `json:"logical_bits"`
	PhysicalReads  int64   `json:"physical_reads"`
	OracleAttempts int64   `json:"oracle_attempts"`
	HammerRounds   int64   `json:"hammer_rounds"`
	Coverage       float64 `json:"coverage"`
	// CloneHash is an FNV-64a digest over the clone's tensor names and
	// weight bits: two campaigns produced the same clone iff the hashes
	// match, which is how the smoke test pins "byte-identical resume"
	// without shipping models over HTTP.
	CloneHash string `json:"clone_hash,omitempty"`
}

// victimResult projects a report onto its wire form.
func victimResult(index int, rep *core.Report) VictimResult {
	vr := VictimResult{
		Index:          index,
		Victim:         rep.Victim,
		TruePretrained: rep.TruePretrained,
		Identified:     rep.Identified,
		Correct:        rep.CorrectIdentity,
		ProbeQueries:   rep.ProbeQueries,
		ArchConfirmed:  rep.ArchConfirmed,
		ExtractError:   rep.ExtractError,
		ExtractSkipped: rep.ExtractSkipped,
		Interrupted:    rep.ExtractInterrupted,
		MatchRate:      rep.MatchRate,
		VictimAcc:      rep.VictimAcc,
		CloneAcc:       rep.CloneAcc,
	}
	if rep.Extract != nil {
		vr.LogicalBits = rep.Extract.LogicalBitsRead()
		vr.PhysicalReads = rep.Extract.PhysicalBitReads
		vr.OracleAttempts = rep.Extract.OracleAttempts()
		vr.HammerRounds = rep.Extract.HammerRounds()
		vr.Coverage = rep.Extract.Coverage()
	}
	if rep.Clone != nil {
		h := fnv.New64a()
		var buf [4]byte
		for _, p := range rep.Clone.Params() {
			h.Write([]byte(p.Name))
			for _, v := range p.Value.Data {
				binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
				h.Write(buf[:])
			}
		}
		vr.CloneHash = fmt.Sprintf("%016x", h.Sum64())
	}
	return vr
}

// TenantConfig is one tenant's standing allowance.
type TenantConfig struct {
	// ReadBudget bounds the tenant's total oracle attempts across all its
	// campaigns; 0 is unlimited. Enforcement granularity: the budget is
	// re-checked as every victim report is delivered, and an exhausted
	// tenant's running campaigns are cancelled — in-flight extractions
	// checkpoint, so nothing is lost when the budget is raised.
	ReadBudget int64 `json:"read_budget"`
	// Priority orders the queue: higher runs first, FIFO within a level.
	Priority int `json:"priority"`
}

// TenantStatus is the queryable budget position of one tenant.
type TenantStatus struct {
	Name      string `json:"name"`
	Priority  int    `json:"priority"`
	Budget    int64  `json:"budget"` // 0 = unlimited
	Spent     int64  `json:"spent"`
	Campaigns int    `json:"campaigns"`
}

// metricName sanitizes a tenant name into a metric-name segment.
func metricName(tenant string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		}
		return '_'
	}, tenant)
}

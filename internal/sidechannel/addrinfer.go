package sidechannel

import (
	"fmt"
	"math"

	"decepticon/internal/transformer"
)

// InferArchitecture recovers a transformer's architecture from the
// anonymous allocation sizes bus probing reveals (§3: the attacker can
// collect "memory addresses" on the CPU-GPU interconnect). The attacker
// sees tensor sizes and allocation order, never names:
//
//   - the embedding allocations come first (Vocab×H, MaxSeq×H);
//   - encoder blocks repeat a fixed 16-allocation group whose largest
//     square member is H×H and whose largest member is H×FFN;
//   - the trailing pair is the task head (H×Labels, Labels).
//
// Head count is not memory-visible (all heads share the Q/K/V matrices),
// so Heads is left at 0 for the caller to fill from other hints.
func InferArchitecture(sizes []int) (transformer.Config, error) {
	// Embeddings (2) + at least one block (16) + head (2).
	const perBlock = 16
	if len(sizes) < 2+perBlock+2 {
		return transformer.Config{}, fmt.Errorf("sidechannel: %d allocations, too few for a transformer", len(sizes))
	}
	body := sizes[2 : len(sizes)-2]
	if len(body)%perBlock != 0 {
		return transformer.Config{}, fmt.Errorf("sidechannel: %d block allocations not divisible by %d", len(body), perBlock)
	}
	layers := len(body) / perBlock
	// Verify the periodicity: every block's size pattern must repeat.
	for l := 1; l < layers; l++ {
		for j := 0; j < perBlock; j++ {
			if body[l*perBlock+j] != body[j] {
				return transformer.Config{}, fmt.Errorf("sidechannel: block %d allocation %d breaks the repetition", l, j)
			}
		}
	}
	// Hidden: the largest perfect square in a block (the H×H projections).
	hidden := 0
	for _, s := range body[:perBlock] {
		r := int(math.Sqrt(float64(s)))
		if r*r == s && r > hidden {
			hidden = r
		}
	}
	if hidden == 0 {
		return transformer.Config{}, fmt.Errorf("sidechannel: no square projection allocation found")
	}
	// FFN: the largest block allocation divided by hidden.
	largest := 0
	for _, s := range body[:perBlock] {
		if s > largest {
			largest = s
		}
	}
	ffn := largest / hidden
	if ffn*hidden != largest {
		return transformer.Config{}, fmt.Errorf("sidechannel: FFN allocation %d not a multiple of hidden %d", largest, hidden)
	}
	if ffn < hidden {
		ffn = hidden // degenerate FFN smaller than hidden: square dominates
	}
	cfg := transformer.Config{
		Name:   "inferred",
		Layers: layers,
		Hidden: hidden,
		FFN:    ffn,
		Vocab:  sizes[0] / hidden,
		MaxSeq: sizes[1] / hidden,
		Labels: sizes[len(sizes)-1],
	}
	if cfg.Vocab*hidden != sizes[0] || cfg.MaxSeq*hidden != sizes[1] {
		return transformer.Config{}, fmt.Errorf("sidechannel: embedding allocations inconsistent with hidden %d", hidden)
	}
	if headW := sizes[len(sizes)-2]; headW != hidden*cfg.Labels {
		return transformer.Config{}, fmt.Errorf("sidechannel: head allocation %d inconsistent with %d labels", headW, cfg.Labels)
	}
	return cfg, nil
}

// Sizes returns the allocation sizes of an address map in order — the
// attacker-visible view used by InferArchitecture.
func (am *AddressMap) Sizes() []int {
	out := make([]int, len(am.Regions))
	for i, r := range am.Regions {
		out[i] = r.Count
	}
	return out
}

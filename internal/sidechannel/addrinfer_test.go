package sidechannel

import (
	"testing"

	"decepticon/internal/transformer"
)

func TestInferArchitectureAllFamilies(t *testing.T) {
	for name, cfg := range transformer.Family() {
		m := transformer.New(cfg.WithLabels(3), 1)
		am := MapModel(m)
		got, err := InferArchitecture(am.Sizes())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Layers != cfg.Layers || got.Hidden != cfg.Hidden || got.FFN != cfg.FFN {
			t.Fatalf("%s: inferred L%d H%d F%d, want L%d H%d F%d",
				name, got.Layers, got.Hidden, got.FFN, cfg.Layers, cfg.Hidden, cfg.FFN)
		}
		if got.Vocab != cfg.Vocab || got.MaxSeq != cfg.MaxSeq || got.Labels != 3 {
			t.Fatalf("%s: inferred V%d S%d C%d, want V%d S%d C3",
				name, got.Vocab, got.MaxSeq, got.Labels, cfg.Vocab, cfg.MaxSeq)
		}
	}
}

func TestInferArchitectureRejectsJunk(t *testing.T) {
	cases := [][]int{
		nil,
		{1, 2, 3},
		// Non-repeating body.
		append(append([]int{96 * 16, 16 * 16}, make([]int, 32)...), 16, 2),
	}
	for i, sizes := range cases {
		if _, err := InferArchitecture(sizes); err == nil {
			t.Fatalf("case %d: junk sizes accepted", i)
		}
	}
}

func TestInferArchitectureNoHeadsFromMemory(t *testing.T) {
	// Head count is not memory-visible: two configs differing only in
	// Heads produce identical allocation sequences.
	a := transformer.Config{Name: "a", Layers: 2, Hidden: 16, Heads: 2, FFN: 32, Vocab: 48, MaxSeq: 8, Labels: 2}
	b := a
	b.Heads = 4
	sa := MapModel(transformer.New(a, 1)).Sizes()
	sb := MapModel(transformer.New(b, 2)).Sizes()
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("head count leaked through allocation sizes")
		}
	}
	got, err := InferArchitecture(sa)
	if err != nil {
		t.Fatal(err)
	}
	if got.Heads != 0 {
		t.Fatalf("inferred heads %d, want 0 (unknown)", got.Heads)
	}
}
